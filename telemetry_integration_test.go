package pardis

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestTwoProcessTelemetry runs pardisd in one OS process with its
// metrics endpoint enabled, invokes it from a second process (pardisd
// -list) with trace sampling on, and verifies the observability
// surface end to end: the client's trace id shows up in the server's
// span recorder (cross-process propagation over the wire), /metrics
// reports the request, and /healthz answers while serving.
func TestTwoProcessTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and compiles a binary")
	}
	bin := filepath.Join(t.TempDir(), "pardisd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/pardisd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build pardisd: %v\n%s", err, out)
	}

	server := exec.Command(bin,
		"-listen", "tcp:127.0.0.1:0",
		"-metrics-listen", "127.0.0.1:0",
		"-log-level", "info")
	serverOut, err := server.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	server.Stderr = &logWriter{t: t, prefix: "server! "}
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { server.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			server.Process.Kill()
			<-done
		}
	}()

	// Scrape the naming and metrics endpoints off the server's stdout.
	namingCh := make(chan string, 1)
	metricsCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(serverOut)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("server: %s", line)
			if ep, ok := strings.CutPrefix(line, "pardisd: naming service at "); ok {
				namingCh <- ep
			}
			if addr, ok := strings.CutPrefix(line, "METRICS="); ok {
				metricsCh <- addr
			}
		}
	}()
	var naming, metrics string
	deadline := time.After(30 * time.Second)
	for naming == "" || metrics == "" {
		select {
		case naming = <-namingCh:
		case metrics = <-metricsCh:
		case <-deadline:
			t.Fatalf("server never printed endpoints (naming=%q metrics=%q)", naming, metrics)
		}
	}

	// Second process: list the domain with tracing sampled on. The
	// root span's trace id rides the PIOP request header into the
	// server.
	list := exec.Command(bin, "-list", "-at", naming, "-trace-sample", "1")
	listOut, err := list.CombinedOutput()
	t.Logf("pardisd -list:\n%s", listOut)
	if err != nil {
		t.Fatalf("pardisd -list: %v", err)
	}
	traceID := ""
	for _, line := range strings.Split(string(listOut), "\n") {
		if id, ok := strings.CutPrefix(line, "TRACE="); ok {
			traceID = id
		}
	}
	if traceID == "" {
		t.Fatal("client never printed TRACE=")
	}

	// The server must have recorded spans under the client's trace id.
	// The span is recorded when the handler finishes, which can trail
	// the client's exit by a moment, so poll briefly.
	var tree string
	for i := 0; i < 50; i++ {
		tree = httpGet(t, fmt.Sprintf("http://%s/debug/traces?id=%s&format=tree", metrics, traceID))
		if strings.Contains(tree, "server:list") {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !strings.Contains(tree, "server:list") {
		t.Fatalf("server trace %s has no server:list span:\n%s", traceID, tree)
	}
	if !strings.Contains(tree, "key=pardis/naming") {
		t.Fatalf("server span is missing the object-key attribute:\n%s", tree)
	}

	// The request must be visible on /metrics.
	mtext := httpGet(t, "http://"+metrics+"/metrics")
	if !strings.Contains(mtext, `pardis_server_requests_total{key="pardis/naming"}`) {
		t.Fatalf("/metrics has no pardis_server_requests_total for the naming key:\n%s", mtext)
	}
	if !strings.Contains(mtext, "pardis_transport_accepts_total") {
		t.Fatalf("/metrics has no transport accept counter:\n%s", mtext)
	}

	// Health answers while serving.
	if h := httpGet(t, "http://"+metrics+"/healthz"); !strings.Contains(h, "ok") {
		t.Fatalf("/healthz = %q, want ok", h)
	}
}

// httpGet fetches a URL and returns the body, failing the test on
// transport errors.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(b)
}
