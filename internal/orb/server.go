package orb

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/telemetry"
	"pardis/internal/transport"
)

// Handler processes one inbound request. It runs on its own goroutine
// and must eventually call exactly one of the Incoming reply methods
// (unless the request is oneway).
type Handler func(in *Incoming)

// Incoming is one request as seen by a Handler.
type Incoming struct {
	// Header is the decoded request header.
	Header giop.RequestHeader
	// Order is the byte order of Body.
	Order cdr.ByteOrder
	// Body is the CDR-encoded in-arguments (stream offset continues
	// from the request header).
	Body []byte
	// BodyBase is the stream offset at which Body starts, for
	// alignment-correct decoding.
	BodyBase int
	// Ctx is canceled if the client sends CancelRequest or the
	// connection drops, and carries the client's propagated deadline
	// when the request header had one.
	Ctx context.Context
	// Expiry is the propagated deadline rebased onto this host's
	// clock (zero when the client sent no deadline): the moment the
	// caller stops waiting for a reply.
	Expiry time.Time

	// Endpoint is the bound endpoint the request arrived at — for
	// SPMD servers, which thread's port.
	Endpoint string

	conn *serverConn
}

// Decoder returns a CDR decoder positioned at the first in-argument.
func (in *Incoming) Decoder() *cdr.Decoder {
	return cdr.NewDecoderAt(in.Order, in.Body, in.BodyBase)
}

// Reply sends a normal or exceptional reply with a marshaled body.
func (in *Incoming) Reply(status giop.ReplyStatus, body func(*cdr.Encoder)) error {
	if !in.Header.ResponseExpected {
		return nil
	}
	e := giop.AcquireEncoder(in.conn.srv.order)
	(&giop.ReplyHeader{RequestID: in.Header.RequestID, Status: status}).Encode(e.Encoder)
	if body != nil {
		body(e.Encoder)
	}
	err := in.conn.write(giop.MsgReply, e.Bytes())
	e.Release()
	return err
}

// ReplySystemException reports a PIOP-level failure.
func (in *Incoming) ReplySystemException(code, detail string) error {
	ex := &giop.SystemException{Code: code, Detail: detail}
	return in.Reply(giop.ReplySystemException, ex.Encode)
}

// ReplyForward redirects the client to another object location; the
// client's ORB transparently retries there.
func (in *Incoming) ReplyForward(stringifiedIOR string) error {
	return in.Reply(giop.ReplyLocationForward, func(e *cdr.Encoder) {
		e.PutString(stringifiedIOR)
	})
}

// Server is the object-adapter side of the ORB: it owns listeners,
// dispatches requests to handlers by object key, answers locate
// queries, and routes inbound block transfers.
type Server struct {
	reg   *transport.Registry
	order cdr.ByteOrder

	mu        sync.Mutex
	listeners []transport.Listener
	handlers  map[string]Handler
	conns     map[*serverConn]struct{}
	draining  bool
	closed    bool

	adm *admission // nil = no admission control

	blocks   *blockRouter
	quit     chan struct{} // closed once on Close/Shutdown; stops the sweeper
	quitOnce sync.Once
	wg       sync.WaitGroup // accept loops, connection readers, sweeper
	reqWG    sync.WaitGroup // in-flight request handlers

	// Interned per-object-key instruments, cached because the registry
	// lookup builds a label key per call — too hot for dispatch.
	keyMetrics sync.Map // object key → *serverKeyMetrics
}

// serverInflight is the process-wide in-dispatch gauge (no labels, so
// it is interned once at package load).
var serverInflight = telemetry.Default.Gauge("pardis_server_inflight")

// serverKeyMetrics holds the per-key instruments touched on every
// dispatched request.
type serverKeyMetrics struct {
	requests *telemetry.Counter
	latency  *telemetry.Histogram
}

func (s *Server) keyMetricsFor(key string) *serverKeyMetrics {
	if m, ok := s.keyMetrics.Load(key); ok {
		return m.(*serverKeyMetrics)
	}
	m := &serverKeyMetrics{
		requests: telemetry.Default.Counter("pardis_server_requests_total", "key", key),
		latency:  telemetry.Default.Histogram("pardis_server_request_seconds", "key", key),
	}
	actual, _ := s.keyMetrics.LoadOrStore(key, m)
	return actual.(*serverKeyMetrics)
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerByteOrder sets the byte order replies are marshaled in.
func WithServerByteOrder(o cdr.ByteOrder) ServerOption {
	return func(s *Server) { s.order = o }
}

// WithPendingPolicy bounds the server's early-block pending buffer
// (block count, byte budget, abandonment TTL and sweep cadence). Zero
// fields take the package defaults.
func WithPendingPolicy(p PendingPolicy) ServerOption {
	return func(s *Server) { s.blocks.pol = p.withDefaults() }
}

// NewServer creates a server using the given transport registry (nil
// means transport.Default).
func NewServer(reg *transport.Registry, opts ...ServerOption) *Server {
	if reg == nil {
		reg = transport.Default
	}
	s := &Server{
		reg:      reg,
		order:    cdr.BigEndian,
		handlers: make(map[string]Handler),
		conns:    make(map[*serverConn]struct{}),
		blocks:   newBlockRouter(),
		quit:     make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	// The pending sweeper reclaims early-block buffers abandoned past
	// the TTL — the residue of clients that died between shipping
	// blocks and issuing the invocation that would have consumed them.
	s.wg.Add(1)
	go s.pendingSweepLoop()
	return s
}

func (s *Server) pendingSweepLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.blocks.pol.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			now := time.Now()
			s.blocks.sweep(now)
			s.blocks.sweepWindows(now)
		case <-s.quit:
			return
		}
	}
}

// stopSweeper releases the background sweeper; safe to call from both
// shutdown paths (and more than once).
func (s *Server) stopSweeper() {
	s.quitOnce.Do(func() { close(s.quit) })
}

// Order returns the byte order the server marshals replies in.
func (s *Server) Order() cdr.ByteOrder { return s.order }

// Handle installs a handler for an object key.
func (s *Server) Handle(key string, h Handler) {
	s.mu.Lock()
	s.handlers[key] = h
	s.mu.Unlock()
}

// Unhandle removes a handler.
func (s *Server) Unhandle(key string) {
	s.mu.Lock()
	delete(s.handlers, key)
	s.mu.Unlock()
}

// handler looks up the handler for a key.
func (s *Server) handler(key string) (Handler, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.handlers[key]
	return h, ok
}

// ExpectBlocks registers a sink for inbound block transfers under an
// invocation id (in-arguments of multi-port invocations). The channel
// must have capacity for the whole expected plan.
func (s *Server) ExpectBlocks(inv uint64, ch chan<- Block) (func(), error) {
	return s.blocks.register(inv, ch)
}

// ExpectBlocksFunc registers a callback sink: blocks for inv are
// handed to fn directly on the delivering connection's read goroutine,
// so blocks from different senders (different connections) are
// assembled concurrently. fn must be safe for concurrent use and must
// not block; returning an error tears down that connection.
func (s *Server) ExpectBlocksFunc(inv uint64, fn func(Block) error) (func(), error) {
	return s.blocks.registerFunc(inv, fn)
}

// RegisterWindow exposes dst as a one-sided destination window:
// MsgWindowPut frames addressed to id land straight off the delivering
// connection's read buffer into dst[DstOff:DstOff+Count], bounds
// checked, until expect elements have arrived (puts that raced the
// registration are flushed from the pending buffer first). The
// returned cancel must be called on every exit path — it removes the
// registration so later strays buffer (and age out) instead of
// writing into a reclaimed slice.
// onPut, when non-nil, runs after every landed put on the delivering
// connection's read goroutine (a liveness hook; it must not block).
func (s *Server) RegisterWindow(id uint64, dst []float64, expect int64, onPut func()) (*Window, func(), error) {
	return s.blocks.registerWindow(id, dst, expect, onPut)
}

// BlockStats reports the server block router's sink/pending counts.
func (s *Server) BlockStats() BlockRouterStats { return s.blocks.stats() }

// Listen binds an endpoint ("tcp:host:port", port 0 for ephemeral, or
// "inproc:name"/"inproc:*") and serves connections on it until Close.
// It returns the resolved endpoint to advertise in object references.
func (s *Server) Listen(endpoint string) (string, error) {
	l, err := s.reg.Listen(endpoint)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return "", ErrClosed
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Endpoint(), nil
}

func (s *Server) acceptLoop(l transport.Listener) {
	defer s.wg.Done()
	for {
		raw, err := l.Accept()
		if err != nil {
			return
		}
		sc := &serverConn{
			srv:      s,
			raw:      raw,
			endpoint: l.Endpoint(),
			inflight: make(map[uint32]context.CancelFunc),
		}
		if s.adm != nil && s.adm.cfg.MaxPerConn > 0 {
			sc.slots = make(chan struct{}, s.adm.cfg.MaxPerConn)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			raw.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sc.readLoop()
			s.mu.Lock()
			delete(s.conns, sc)
			s.mu.Unlock()
		}()
	}
}

// Close stops all listeners and connections immediately and waits for
// the serving goroutines to drain. In-flight requests are canceled.
// For an orderly stop that lets clients fail over, use Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ls := s.listeners
	s.listeners = nil
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	s.stopSweeper()
	for _, l := range ls {
		l.Close()
	}
	for _, sc := range conns {
		sc.close()
	}
	s.wg.Wait()
	return nil
}

// Shutdown stops the server gracefully: it stops accepting
// connections, rejects newly arriving requests with a TRANSIENT
// system exception (which the client retry layer treats as an
// invitation to fail over), waits for in-flight requests to complete
// until ctx expires, then announces MsgCloseConnection on every
// connection — so clients see an orderly close and re-issue pending
// work elsewhere instead of hitting raw resets — and finally tears
// the connections down.
//
// It returns ctx.Err() when the drain deadline expired before all
// in-flight requests finished (they were then canceled), nil on a
// clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	alreadyDraining := s.draining
	s.draining = true
	ls := s.listeners
	s.listeners = nil
	s.mu.Unlock()
	if alreadyDraining {
		return nil // a concurrent Shutdown is already in charge
	}
	for _, l := range ls {
		l.Close()
	}

	// Drain in-flight handlers up to the deadline.
	drainStart := time.Now()
	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
	}
	telemetry.Default.Histogram("pardis_server_drain_seconds").ObserveDuration(time.Since(drainStart))
	if telemetry.LogEnabled(slog.LevelInfo) {
		telemetry.Logger().Info("server drained",
			"duration", time.Since(drainStart), "clean", drainErr == nil)
	}

	s.mu.Lock()
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	s.stopSweeper()
	for _, sc := range conns {
		// Best-effort goodbye; the close that follows is what
		// guarantees progress.
		_ = sc.write(giop.MsgCloseConnection, nil)
		sc.close()
	}
	s.wg.Wait()
	return drainErr
}

// Draining reports whether the server is in a graceful shutdown.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// serverConn is one accepted connection.
type serverConn struct {
	srv      *Server
	raw      transport.Conn
	endpoint string

	writeMu sync.Mutex

	// slots is the per-connection admission gate (nil = unlimited).
	slots chan struct{}

	mu       sync.Mutex
	inflight map[uint32]context.CancelFunc
	dead     bool
}

func (sc *serverConn) write(t giop.MsgType, body []byte) error {
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	if err := giop.WriteMessage(sc.raw, sc.srv.order, t, body); err != nil {
		sc.close()
		return fmt.Errorf("%w: %v", ErrConnectionLost, err)
	}
	return nil
}

func (sc *serverConn) close() {
	sc.mu.Lock()
	if sc.dead {
		sc.mu.Unlock()
		return
	}
	sc.dead = true
	cancels := make([]context.CancelFunc, 0, len(sc.inflight))
	for _, c := range sc.inflight {
		cancels = append(cancels, c)
	}
	sc.inflight = make(map[uint32]context.CancelFunc)
	sc.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	sc.raw.Close()
}

func (sc *serverConn) readLoop() {
	defer sc.close()
	// The FrameReader buffers the socket (one raw Read per header+body
	// in the common case) and surfaces the sender's protocol minor
	// version, which the header decoder needs: 1.0 peers frame request
	// headers without trace bytes. Control-frame bodies are pooled and
	// released here once decoded; Request/BlockTransfer bodies escape
	// to handlers and block sinks, so ownership transfers with them.
	fr := giop.NewFrameReader(sc.raw)
	for {
		fh, err := fr.ReadFrameHeader()
		if err != nil {
			return
		}
		// Window puts take the one-sided fast path before the body is
		// read: a registered window receives its payload straight off
		// the read buffer with no body allocation.
		if fh.Type == giop.MsgWindowPut {
			if err := sc.handleWindowPut(fr, fh); err != nil {
				return
			}
			continue
		}
		f, err := fr.ReadFrameBody(fh)
		if err != nil {
			return
		}
		t, order, body := f.Type, f.Order, f.Body
		switch t {
		case giop.MsgRequest:
			if err := sc.handleRequest(f.Minor, order, body); err != nil {
				return
			}
		case giop.MsgLocateRequest:
			err := sc.handleLocate(order, body)
			f.Release()
			if err != nil {
				return
			}
		case giop.MsgCancelRequest:
			d := cdr.NewDecoder(order, body)
			ch, err := giop.DecodeCancelRequestHeader(d)
			f.Release()
			if err != nil {
				return
			}
			sc.mu.Lock()
			cancel := sc.inflight[ch.RequestID]
			sc.mu.Unlock()
			if cancel != nil {
				cancel()
			}
		case giop.MsgBlockTransfer:
			d := cdr.NewDecoder(order, body)
			bh, err := giop.DecodeBlockTransferHeader(d)
			if err != nil {
				return
			}
			blk := Block{Header: bh, Order: order, Payload: body[d.Pos():]}
			if err := sc.srv.blocks.deliver(blk); err != nil {
				return
			}
		case giop.MsgCloseConnection, giop.MsgError:
			f.Release()
			return
		default:
			// Replies have no business arriving at a server.
			f.Release()
			_ = giop.WriteMessage(sc.raw, sc.srv.order, giop.MsgError, nil)
			return
		}
	}
}

// handleWindowPut lands one MsgWindowPut. Registered window: payload
// streams wire → destination slice (bounds checked first; a range
// violation poisons the window, not the connection, and the payload is
// skimmed to keep the stream framed). Unregistered window: the payload
// is buffered under the pending budgets until registration, exactly
// like an early routed block. Only stream-level failures tear the
// connection down.
func (sc *serverConn) handleWindowPut(fr *giop.FrameReader, fh giop.FrameHeader) error {
	wh, err := fr.ReadWindowPut(fh)
	if err != nil {
		return err
	}
	if w, ok := sc.srv.blocks.windowFor(wh.WindowID); ok {
		if err := w.checkRange(wh); err != nil {
			w.fail(err)
			return fr.DiscardPayload(int(wh.Count) * 8)
		}
		dst := w.dst[wh.DstOff : int64(wh.DstOff)+int64(wh.Count)]
		if err := fr.ReadWindowPayload(fh.Order, dst); err != nil {
			return err
		}
		w.landed(wh.Count)
		return nil
	}
	payload, err := fr.ReadPayloadBytes(int(wh.Count) * 8)
	if err != nil {
		return err
	}
	return sc.srv.blocks.bufferWindowPut(wh, fh.Order, payload)
}

func (sc *serverConn) handleRequest(minor byte, order cdr.ByteOrder, body []byte) error {
	d := cdr.NewDecoder(order, body)
	hdr, err := giop.DecodeRequestHeaderV(d, minor)
	if err != nil {
		// Unparseable request: poison the stream, give up.
		return fmt.Errorf("orb: bad request header: %w", err)
	}
	in := &Incoming{
		Header:   hdr,
		Order:    order,
		Body:     body[d.Pos():],
		BodyBase: d.Pos(),
		Endpoint: sc.endpoint,
		conn:     sc,
	}
	h, ok := sc.srv.handler(hdr.ObjectKey)
	if !ok {
		telemetry.Default.Counter("pardis_server_no_object_total", "key", hdr.ObjectKey).Inc()
		_ = in.ReplySystemException("OBJECT_NOT_EXIST",
			fmt.Sprintf("no object with key %q", hdr.ObjectKey))
		return nil
	}
	// Admission is gated on the drain flag under the server mutex, so
	// Shutdown's reqWG.Wait cannot race a late Add: once draining is
	// observed set, no new handler starts; requests arriving during
	// the drain are bounced with TRANSIENT, which the client retry
	// layer converts into failover.
	sc.srv.mu.Lock()
	if sc.srv.draining {
		sc.srv.mu.Unlock()
		telemetry.Default.Counter("pardis_server_transient_rejections_total").Inc()
		_ = in.ReplySystemException("TRANSIENT", "server draining")
		return nil
	}
	sc.srv.reqWG.Add(1)
	sc.srv.mu.Unlock()
	// The propagated deadline is a relative budget (microseconds left
	// when the client wrote the request), immune to clock skew: it is
	// rebased onto this host's clock on arrival and becomes the
	// handler context's deadline, so servants and anything they invoke
	// downstream inherit the caller's remaining patience.
	var ctx context.Context
	var cancel context.CancelFunc
	if hdr.DeadlineMicros > 0 {
		in.Expiry = time.Now().Add(time.Duration(hdr.DeadlineMicros) * time.Microsecond)
		ctx, cancel = context.WithDeadline(context.Background(), in.Expiry)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	// A trace identity on the wire continues the caller's trace: the
	// handler span (and anything the handler invokes through a client
	// with this ctx) attaches under the client's attempt span.
	if hdr.Trace.Valid() {
		ctx = telemetry.ContextWithTrace(ctx, hdr.Trace)
	}
	var span *telemetry.Span
	if telemetry.TraceActive(ctx) {
		ctx, span = telemetry.StartSpan(ctx, "server:"+hdr.Operation,
			telemetry.Attr{Key: "key", Value: hdr.ObjectKey},
			telemetry.Attr{Key: "endpoint", Value: sc.endpoint})
	}
	in.Ctx = ctx
	if hdr.ResponseExpected {
		sc.mu.Lock()
		if sc.dead {
			sc.mu.Unlock()
			cancel()
			span.End()
			sc.srv.reqWG.Done()
			return nil
		}
		sc.inflight[hdr.RequestID] = cancel
		sc.mu.Unlock()
	}
	km := sc.srv.keyMetricsFor(hdr.ObjectKey)
	serverInflight.Inc()
	start := time.Now()
	go func() {
		// Dispatch accounting for the flight recorder: how long the
		// request sat in the admission gate, how much deadline budget
		// was left when the handler finally started, and why it was
		// shed (when it was). Written in the goroutine body, read only
		// by its own deferred record below.
		var queueWait, dispatchRem time.Duration
		var failure string
		defer func() {
			if hdr.ResponseExpected {
				sc.mu.Lock()
				delete(sc.inflight, hdr.RequestID)
				sc.mu.Unlock()
			}
			cancel()
			if p := recover(); p != nil {
				// A panicking servant becomes a system exception,
				// not a dead server.
				telemetry.Default.Counter("pardis_server_panics_total", "key", hdr.ObjectKey).Inc()
				span.Annotate("panic", fmt.Sprint(p))
				if telemetry.LogEnabled(slog.LevelError) {
					telemetry.Logger().Error("servant panic",
						"key", hdr.ObjectKey, "op", hdr.Operation, "panic", fmt.Sprint(p))
				}
				_ = in.ReplySystemException("UNKNOWN", fmt.Sprintf("servant panic: %v", p))
				failure = fmt.Sprintf("servant panic: %v", p)
			}
			span.End()
			serverInflight.Dec()
			km.requests.Inc()
			dur := time.Since(start)
			var tid uint64
			if span != nil {
				tid = span.TraceID
			}
			km.latency.ObserveDurationExemplar(dur, tid)
			telemetry.DefaultFlight.Record(telemetry.FlightRecord{
				Side: "server", Op: hdr.Operation, Key: hdr.ObjectKey,
				Endpoint: sc.endpoint, Start: start, Duration: dur,
				Error: failure, TraceID: tid,
				QueueWait: queueWait, DeadlineRemaining: dispatchRem,
			})
			sc.srv.reqWG.Done()
		}()
		// Shed work whose budget is already gone before dispatching the
		// handler: the caller has stopped waiting, so the TIMEOUT reply
		// only tells its ORB to stop too.
		if !in.Expiry.IsZero() && !time.Now().Before(in.Expiry) {
			shedExpired.Inc()
			failure = "deadline expired before dispatch"
			_ = in.ReplySystemException("TIMEOUT", "request deadline expired before dispatch")
			return
		}
		if sc.srv.adm != nil {
			admitStart := time.Now()
			release, ok := sc.srv.admit(in)
			queueWait = time.Since(admitStart)
			if !ok {
				failure = "shed by admission control"
				return
			}
			defer release()
		}
		if !in.Expiry.IsZero() {
			dispatchRem = time.Until(in.Expiry)
		}
		h(in)
	}()
	return nil
}

func (sc *serverConn) handleLocate(order cdr.ByteOrder, body []byte) error {
	d := cdr.NewDecoder(order, body)
	lh, err := giop.DecodeLocateRequestHeader(d)
	if err != nil {
		return fmt.Errorf("orb: bad locate header: %w", err)
	}
	status := giop.LocateUnknown
	if _, ok := sc.srv.handler(lh.ObjectKey); ok {
		status = giop.LocateHere
	}
	e := giop.AcquireEncoder(sc.srv.order)
	(&giop.LocateReplyHeader{RequestID: lh.RequestID, Status: status}).Encode(e.Encoder)
	err = sc.write(giop.MsgLocateReply, e.Bytes())
	e.Release()
	return err
}
