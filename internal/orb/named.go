// Name-level invocation: one rung above InvokeRef's endpoint
// failover. A RefSource (typically an agent.Resolver) maps an object
// name to its current best reference; InvokeNamed walks that
// reference's replica profiles and, when an entire resolution has
// failed, invalidates it and re-resolves — so a client in a burst
// survives replicas dying faster than any cached ranking can track.
package orb

import (
	"context"
	"fmt"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/ior"
	"pardis/internal/telemetry"
)

// RefSource yields the reference currently bound to an object name.
// Implementations may cache; Invalidate tells them the cached answer's
// endpoints all failed, so the next RefFor must consult upstream.
type RefSource interface {
	RefFor(ctx context.Context, name string) (*ior.Ref, error)
	Invalidate(name string)
}

// maxResolveRounds bounds how many fresh resolutions one logical
// invocation may consume. Each round already spends the full retry
// policy across the resolved replica set, so three rounds is a lot of
// dying infrastructure.
const maxResolveRounds = 3

var reResolves = telemetry.Default.Counter("pardis_client_reresolves_total")

// InvokeNamed resolves name through src and invokes across the
// resolved reference's failover endpoints. When every endpoint of a
// resolution fails inside the safe-to-retry window, the resolution is
// invalidated and the name re-resolved (up to maxResolveRounds
// rounds) — the client-visible contract is that a request keeps
// completing as long as *some* live replica exists, even if the one
// it was routed to died mid-burst.
func (c *Client) InvokeNamed(ctx context.Context, src RefSource, name string, hdr giop.RequestHeader, body func(*cdr.Encoder)) (giop.ReplyHeader, cdr.ByteOrder, []byte, error) {
	var lastErr error
	for round := 0; round < maxResolveRounds; round++ {
		ref, err := src.RefFor(ctx, name)
		if err != nil {
			if lastErr != nil {
				return giop.ReplyHeader{}, 0, nil,
					fmt.Errorf("orb: re-resolving %q after %w: %v", name, lastErr, err)
			}
			return giop.ReplyHeader{}, 0, nil, err
		}
		// round doubles as the invocation's re-resolve count so the
		// flight record of the attempt that finally lands shows how
		// many resolutions it burned getting there.
		rh, order, raw, err := c.invokeEndpoints(ctx, ref.FailoverEndpoints(), hdr, body, round)
		if err == nil || !retryable(err) || ctx.Err() != nil {
			return rh, order, raw, err
		}
		// The whole resolved replica set failed: the ranking is stale
		// (dead replicas, moved object). Drop it and ask again.
		src.Invalidate(name)
		reResolves.Inc()
		lastErr = err
	}
	return giop.ReplyHeader{}, 0, nil,
		fmt.Errorf("orb: %q failed across %d resolutions: %w", name, maxResolveRounds, lastErr)
}
