// One-sided destination windows: the receiving half of the peer data
// plane. A Window is a caller-owned []float64 registered under a
// 64-bit ID before the sender is told the ID exists; MsgWindowPut
// frames addressed to it are landed by the connection read loop
// straight off the read buffer into dst[DstOff:DstOff+Count] — no body
// allocation, no pending-buffer hop, no CDR sequence framing. Puts
// that race the registration (the same race routed block transfers
// have) are buffered under the router's existing pending budgets and
// flushed into the window when it registers.
//
// The safety argument mirrors the routed blockAssembler: every put is
// bounds-checked against the registered destination before any byte
// lands; the sender derives disjoint [DstOff, DstOff+Count) ranges
// from the same transfer plan both sides computed, so concurrent
// lands from multiple connections never overlap; and completion is
// element-counted against the plan total, so a short stream can only
// end in a failed window, never a silently partial one.
package orb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/telemetry"
)

// windowsActive counts currently registered (not yet cancelled)
// destination windows across the process — the leak canary for the
// peer data plane.
var windowsActive = telemetry.Default.Gauge("pardis_orb_windows_active")

// Window is one registered one-sided destination. It completes when
// the expected element count has landed, or fails on the first
// out-of-range put; Done/Err expose that to the waiter. All methods
// are safe for concurrent use — puts land from connection read
// goroutines while the owner waits.
type Window struct {
	id     uint64
	dst    []float64
	expect int64
	// onPut, when set, runs after each landed put (on the delivering
	// connection's read goroutine — it must be cheap and non-blocking).
	// Receivers use it as a liveness signal, e.g. lease renewal.
	onPut func()

	got    atomic.Int64
	nbytes atomic.Int64

	mu   sync.Mutex
	err  error
	once sync.Once
	done chan struct{}
}

// Done is closed once the window has completed or failed.
func (w *Window) Done() <-chan struct{} { return w.done }

// Err reports the window's failure, if any, once Done is closed.
func (w *Window) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Bytes is the payload volume landed so far.
func (w *Window) Bytes() int64 { return w.nbytes.Load() }

func (w *Window) fail(err error) {
	w.once.Do(func() {
		w.mu.Lock()
		w.err = err
		w.mu.Unlock()
		close(w.done)
	})
}

func (w *Window) complete() {
	w.once.Do(func() { close(w.done) })
}

// checkRange validates a put against the registered destination before
// any byte lands, exactly as blockAssembler.accept does for routed
// blocks.
func (w *Window) checkRange(h giop.WindowPutHeader) error {
	if int64(h.DstOff)+int64(h.Count) > int64(len(w.dst)) {
		return fmt.Errorf("orb: window %#x put [%d,%d) exceeds destination of %d elements",
			w.id, h.DstOff, int64(h.DstOff)+int64(h.Count), len(w.dst))
	}
	return nil
}

// landed accounts count elements already written into dst, completing
// the window when the plan total is reached.
func (w *Window) landed(count uint32) {
	w.nbytes.Add(int64(count) * 8)
	if w.onPut != nil {
		w.onPut()
	}
	if w.got.Add(int64(count)) >= w.expect {
		w.complete()
	}
}

// windowPut is one buffered early put: raw element bytes held until
// the window registers.
type windowPut struct {
	h       giop.WindowPutHeader
	order   cdr.ByteOrder
	payload []byte
}

// windowPendingEntry mirrors pendingEntry for window puts.
type windowPendingEntry struct {
	puts  []windowPut
	bytes int
	last  time.Time
}

// windowFor resolves a put's destination window, if registered.
func (r *blockRouter) windowFor(id uint64) (*Window, bool) {
	r.mu.Lock()
	w, ok := r.windows[id]
	r.mu.Unlock()
	return w, ok
}

// bufferWindowPut parks an early put under the router's pending
// budgets until its window registers (or the sweep reclaims it). The
// window table is re-checked under the router lock first: the read
// loop's lookup miss and this call are not one critical section, so
// the window may have registered — and flushed an empty pending set —
// in between. Landing the put here instead of parking it closes that
// gap; buffering would strand the put forever.
func (r *blockRouter) bufferWindowPut(h giop.WindowPutHeader, order cdr.ByteOrder, payload []byte) error {
	r.mu.Lock()
	if w, ok := r.windows[h.WindowID]; ok {
		r.mu.Unlock()
		if err := w.checkRange(h); err != nil {
			w.fail(err)
			return nil
		}
		cdr.DecodeDoubles(w.dst[h.DstOff:int64(h.DstOff)+int64(h.Count)], payload, order)
		w.landed(h.Count)
		return nil
	}
	if r.pendingLen >= r.pol.MaxBlocks {
		r.mu.Unlock()
		return fmt.Errorf("%w: window %#x", ErrTooManyBlocks, h.WindowID)
	}
	if r.pendingBytes+len(payload) > r.pol.MaxBytes {
		r.mu.Unlock()
		return fmt.Errorf("%w: window %#x (%d buffered + %d new > %d)",
			ErrPendingBlockBytes, h.WindowID, r.pendingBytes, len(payload), r.pol.MaxBytes)
	}
	pe := r.wpending[h.WindowID]
	if pe == nil {
		pe = &windowPendingEntry{}
		r.wpending[h.WindowID] = pe
	}
	pe.puts = append(pe.puts, windowPut{h: h, order: order, payload: payload})
	pe.bytes += len(payload)
	pe.last = time.Now()
	r.pendingLen++
	r.pendingBytes += len(payload)
	pendingBlockBytes.Add(int64(len(payload)))
	r.mu.Unlock()
	return nil
}

// registerWindow installs a destination window, flushing any puts that
// arrived early. expect is the total element count after which the
// window completes (a non-positive expectation completes immediately).
// The returned cancel removes the registration; it must be called on
// every exit path, success or failure, so windows never leak.
func (r *blockRouter) registerWindow(id uint64, dst []float64, expect int64, onPut func()) (*Window, func(), error) {
	w := &Window{id: id, dst: dst, expect: expect, onPut: onPut, done: make(chan struct{})}
	r.mu.Lock()
	if _, dup := r.windows[id]; dup {
		r.mu.Unlock()
		return nil, nil, fmt.Errorf("orb: duplicate window %#x", id)
	}
	r.windows[id] = w
	var early []windowPut
	if pe := r.wpending[id]; pe != nil {
		early = pe.puts
		delete(r.wpending, id)
		r.pendingLen -= len(pe.puts)
		r.pendingBytes -= pe.bytes
		pendingBlockBytes.Add(-int64(pe.bytes))
	}
	r.mu.Unlock()
	windowsActive.Add(1)
	var cancelled atomic.Bool
	cancel := func() {
		if cancelled.Swap(true) {
			return
		}
		r.mu.Lock()
		delete(r.windows, id)
		r.mu.Unlock()
		windowsActive.Add(-1)
	}
	if expect <= 0 {
		w.complete()
	}
	for _, p := range early {
		if err := w.checkRange(p.h); err != nil {
			w.fail(err)
			break
		}
		cdr.DecodeDoubles(dst[p.h.DstOff:int64(p.h.DstOff)+int64(p.h.Count)], p.payload, p.order)
		w.landed(p.h.Count)
	}
	return w, cancel, nil
}

// sweepWindows reclaims early-put buffers whose last arrival is older
// than the TTL, returning the number of puts dropped.
func (r *blockRouter) sweepWindows(now time.Time) int {
	r.mu.Lock()
	var dropped, droppedBytes int
	for id, pe := range r.wpending {
		if now.Sub(pe.last) < r.pol.TTL {
			continue
		}
		dropped += len(pe.puts)
		droppedBytes += pe.bytes
		r.pendingLen -= len(pe.puts)
		r.pendingBytes -= pe.bytes
		delete(r.wpending, id)
	}
	r.mu.Unlock()
	if droppedBytes > 0 {
		pendingBlockBytes.Add(-int64(droppedBytes))
	}
	if dropped > 0 {
		pendingBlockReclaimed.Add(uint64(dropped))
	}
	return dropped
}
