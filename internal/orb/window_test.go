package orb

import (
	"context"
	"strings"
	"testing"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/transport"
)

func windowKey(t *testing.T, inv uint64, argIdx uint32) uint64 {
	t.Helper()
	key, err := giop.BlockSinkKey(inv, argIdx)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func waitDone(t *testing.T, w *Window) {
	t.Helper()
	select {
	case <-w.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("window did not complete")
	}
}

func TestWindowPutEndToEnd(t *testing.T) {
	cli, srv, ep := newPair(t)
	const n = 512
	dst := make([]float64, n)
	key := windowKey(t, 21, 0)
	win, cancel, err := srv.RegisterWindow(key, dst, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i) * 0.5
	}
	// Two puts, highest offset first: landing is element-counted, not
	// ordered.
	for _, off := range []int{n / 2, 0} {
		h := giop.WindowPutHeader{WindowID: key, FromThread: 3, DstOff: uint32(off), Last: off == 0}
		nb, err := cli.PutWindow(ep, h, want[off:off+n/2])
		if err != nil {
			t.Fatal(err)
		}
		if nb != n/2*8 {
			t.Fatalf("put accounted %d bytes, want %d", nb, n/2*8)
		}
	}
	waitDone(t, win)
	if err := win.Err(); err != nil {
		t.Fatal(err)
	}
	if win.Bytes() != n*8 {
		t.Fatalf("window landed %d bytes, want %d", win.Bytes(), n*8)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, dst[i], want[i])
		}
	}
	cancel()
	if st := srv.BlockStats(); st.Windows != 0 || st.Pending != 0 {
		t.Fatalf("window leak after cancel: %+v", st)
	}
}

func TestWindowPutBeforeRegistrationBuffered(t *testing.T) {
	cli, srv, ep := newPair(t)
	const n = 64
	key := windowKey(t, 22, 1)
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i + 1)
	}
	h := giop.WindowPutHeader{WindowID: key, FromThread: 0, DstOff: 0, Last: true}
	if _, err := cli.PutWindow(ep, h, want); err != nil {
		t.Fatal(err)
	}
	// The put raced ahead of registration; wait until the router has
	// parked it under the pending budgets.
	deadline := time.Now().Add(10 * time.Second)
	for srv.BlockStats().Pending == 0 {
		if time.Now().After(deadline) {
			t.Fatal("early put never buffered")
		}
		time.Sleep(time.Millisecond)
	}
	dst := make([]float64, n)
	win, cancel, err := srv.RegisterWindow(key, dst, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	waitDone(t, win)
	if err := win.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, dst[i], want[i])
		}
	}
	if st := srv.BlockStats(); st.Pending != 0 || st.PendingBytes != 0 {
		t.Fatalf("flushed put still accounted as pending: %+v", st)
	}
}

// TestWindowRegistrationRaceLandsPut pins the race the read loop cannot
// avoid: its window lookup misses, the window registers (flushing an
// empty pending set), and only then does the read loop try to buffer
// the put. bufferWindowPut must land the put into the now-registered
// window instead of parking it forever.
func TestWindowRegistrationRaceLandsPut(t *testing.T) {
	_, srv, _ := newPair(t)
	const n = 16
	key := windowKey(t, 23, 0)
	dst := make([]float64, n)
	win, cancel, err := srv.RegisterWindow(key, dst, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i) * 3
	}
	e := cdr.NewEncoder(cdr.NativeOrder)
	e.PutDoubles(want)
	h := giop.WindowPutHeader{WindowID: key, FromThread: 0, DstOff: 0, Count: n, Last: true}
	if err := srv.blocks.bufferWindowPut(h, cdr.NativeOrder, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	waitDone(t, win)
	if err := win.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, dst[i], want[i])
		}
	}
	if st := srv.BlockStats(); st.Pending != 0 {
		t.Fatalf("raced put parked as pending instead of landing: %+v", st)
	}
}

func TestWindowRangeViolationPoisonsWindowNotConnection(t *testing.T) {
	cli, srv, ep := newPair(t)
	const n = 32
	dst := make([]float64, n)
	key := windowKey(t, 24, 0)
	win, cancel, err := srv.RegisterWindow(key, dst, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	h := giop.WindowPutHeader{WindowID: key, FromThread: 0, DstOff: n, Last: true}
	if _, err := cli.PutWindow(ep, h, make([]float64, 8)); err != nil {
		t.Fatal(err)
	}
	waitDone(t, win)
	if err := win.Err(); err == nil || !strings.Contains(err.Error(), "exceeds destination") {
		t.Fatalf("want range violation, got %v", err)
	}
	// The violation poisons the window, not the stream: the same
	// connection must still answer requests.
	if _, _, _, err := cli.Invoke(context.Background(), ep,
		requestHeader(cli, "echo", "op"),
		func(e *cdr.Encoder) { e.PutString("still-alive") }); err != nil {
		t.Fatalf("connection unusable after poisoned window: %v", err)
	}
}

func TestDuplicateWindowRejected(t *testing.T) {
	_, srv, _ := newPair(t)
	key := windowKey(t, 25, 0)
	_, cancel, err := srv.RegisterWindow(key, make([]float64, 4), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if _, _, err := srv.RegisterWindow(key, make([]float64, 4), 4, nil); err == nil {
		t.Fatal("duplicate window registration accepted")
	}
	cancel()
	cancel() // idempotent
	if st := srv.BlockStats(); st.Windows != 0 {
		t.Fatalf("window survives cancel: %+v", st)
	}
}

func TestWindowPutCrossOrder(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg)
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	foreign := cdr.BigEndian
	if cdr.NativeOrder == cdr.BigEndian {
		foreign = cdr.LittleEndian
	}
	cli := NewClient(reg, WithByteOrder(foreign))
	defer cli.Close()

	const n = 100_000 // several swap chunks on the cross-order land path
	dst := make([]float64, n)
	key := windowKey(t, 26, 0)
	win, cancel, err := srv.RegisterWindow(key, dst, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i) / 7
	}
	h := giop.WindowPutHeader{WindowID: key, FromThread: 0, DstOff: 0, Last: true}
	if _, err := cli.PutWindow(ep, h, want); err != nil {
		t.Fatal(err)
	}
	waitDone(t, win)
	if err := win.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestWindowOnPutRunsPerLandedPut(t *testing.T) {
	cli, srv, ep := newPair(t)
	const n = 8
	dst := make([]float64, 2*n)
	key := windowKey(t, 27, 0)
	ch := make(chan struct{}, 4)
	win, cancel, err := srv.RegisterWindow(key, dst, 2*n, func() {
		ch <- struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	blk := make([]float64, n)
	for _, off := range []uint32{0, n} {
		h := giop.WindowPutHeader{WindowID: key, FromThread: 0, DstOff: off, Last: off == n}
		if _, err := cli.PutWindow(ep, h, blk); err != nil {
			t.Fatal(err)
		}
	}
	waitDone(t, win)
	for i := 0; i < 2; i++ {
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatal("onPut did not run for each landed put")
		}
	}
}
