package orb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/transport"
)

// newPair starts a server on an inproc endpoint with an echo handler
// for key "echo" and returns (client, server, endpoint).
func newPair(t *testing.T) (*Client, *Server, string) {
	t.Helper()
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg)
	srv.Handle("echo", func(in *Incoming) {
		d := in.Decoder()
		s, err := d.String()
		if err != nil {
			_ = in.ReplySystemException("MARSHAL", err.Error())
			return
		}
		_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) { e.PutString("echo:" + s) })
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(reg)
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	return cli, srv, ep
}

func requestHeader(cli *Client, key, op string) giop.RequestHeader {
	return giop.RequestHeader{
		InvocationID:     cli.NewInvocationID(),
		ResponseExpected: true,
		ObjectKey:        key,
		Operation:        op,
		ThreadRank:       -1,
		ThreadCount:      1,
	}
}

func TestInvokeRoundTrip(t *testing.T) {
	cli, _, ep := newPair(t)
	hdr, order, body, err := cli.Invoke(context.Background(), ep,
		requestHeader(cli, "echo", "op"),
		func(e *cdr.Encoder) { e.PutString("hello") })
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Status != giop.ReplyOK {
		t.Fatalf("status = %v", hdr.Status)
	}
	d := cdr.NewDecoder(order, body)
	s, err := d.String()
	if err != nil || s != "echo:hello" {
		t.Fatalf("reply = %q %v", s, err)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	cli, _, ep := newPair(t)
	const N = 30
	var wg sync.WaitGroup
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := fmt.Sprintf("msg-%d", i)
			_, order, body, err := cli.Invoke(context.Background(), ep,
				requestHeader(cli, "echo", "op"),
				func(e *cdr.Encoder) { e.PutString(msg) })
			if err != nil {
				errs <- err
				return
			}
			s, err := cdr.NewDecoder(order, body).String()
			if err != nil || s != "echo:"+msg {
				errs <- fmt.Errorf("reply %q %v", s, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestUnknownObjectKey(t *testing.T) {
	cli, _, ep := newPair(t)
	hdr, order, body, err := cli.Invoke(context.Background(), ep,
		requestHeader(cli, "nobody", "op"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Status != giop.ReplySystemException {
		t.Fatalf("status = %v", hdr.Status)
	}
	ex, err := giop.DecodeSystemException(cdr.NewDecoder(order, body))
	if err != nil || ex.Code != "OBJECT_NOT_EXIST" {
		t.Fatalf("exception = %+v %v", ex, err)
	}
}

func TestServantPanicBecomesSystemException(t *testing.T) {
	cli, srv, ep := newPair(t)
	srv.Handle("boom", func(in *Incoming) { panic("kaput") })
	hdr, order, body, err := cli.Invoke(context.Background(), ep,
		requestHeader(cli, "boom", "op"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Status != giop.ReplySystemException {
		t.Fatalf("status = %v", hdr.Status)
	}
	ex, err := giop.DecodeSystemException(cdr.NewDecoder(order, body))
	if err != nil || ex.Code != "UNKNOWN" || !strings.Contains(ex.Detail, "kaput") {
		t.Fatalf("exception = %+v %v", ex, err)
	}
	// The connection must survive for further requests.
	_, _, _, err = cli.Invoke(context.Background(), ep,
		requestHeader(cli, "echo", "op"),
		func(e *cdr.Encoder) { e.PutString("x") })
	if err != nil {
		t.Fatalf("connection died after panic: %v", err)
	}
}

func TestOnewayInvocation(t *testing.T) {
	cli, srv, ep := newPair(t)
	got := make(chan string, 1)
	srv.Handle("sink", func(in *Incoming) {
		s, _ := in.Decoder().String()
		got <- s
	})
	h := requestHeader(cli, "sink", "notify")
	h.ResponseExpected = false
	_, _, _, err := cli.Invoke(context.Background(), ep, h,
		func(e *cdr.Encoder) { e.PutString("fire-and-forget") })
	if err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "fire-and-forget" {
			t.Fatalf("oneway body = %q", s)
		}
	case <-time.After(time.Second):
		t.Fatal("oneway request never arrived")
	}
}

func TestCancellation(t *testing.T) {
	cli, srv, ep := newPair(t)
	started := make(chan struct{})
	canceled := make(chan struct{})
	srv.Handle("slow", func(in *Incoming) {
		close(started)
		<-in.Ctx.Done()
		close(canceled)
		// Reply after cancel; client must have moved on.
		_ = in.Reply(giop.ReplyOK, nil)
	})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, _, err := cli.Invoke(ctx, ep, requestHeader(cli, "slow", "op"), nil)
		errc <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("invoke never returned after cancel")
	}
	select {
	case <-canceled:
	case <-time.After(time.Second):
		t.Fatal("server never observed the cancellation")
	}
}

func TestLocate(t *testing.T) {
	cli, _, ep := newPair(t)
	st, _, err := cli.Locate(context.Background(), ep, "echo")
	if err != nil || st != giop.LocateHere {
		t.Fatalf("locate echo = %v %v", st, err)
	}
	st, _, err = cli.Locate(context.Background(), ep, "ghost")
	if err != nil || st != giop.LocateUnknown {
		t.Fatalf("locate ghost = %v %v", st, err)
	}
}

func TestServerCloseFailsInflight(t *testing.T) {
	cli, srv, ep := newPair(t)
	block := make(chan struct{})
	srv.Handle("hang", func(in *Incoming) {
		<-block
		_ = in.Reply(giop.ReplyOK, nil)
	})
	errc := make(chan error, 1)
	go func() {
		_, _, _, err := cli.Invoke(context.Background(), ep, requestHeader(cli, "hang", "op"), nil)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(block) // let the handler finish so Close's wg drains
	srv.Close()
	select {
	case err := <-errc:
		// Either the reply made it out before close, or the
		// connection loss surfaced; both are acceptable, hanging is
		// not.
		if err != nil && !errors.Is(err, ErrConnectionLost) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("invoke hung across server close")
	}
}

func TestClientCloseFailsInflight(t *testing.T) {
	cli, srv, ep := newPair(t)
	started := make(chan struct{})
	srv.Handle("hang", func(in *Incoming) {
		close(started)
		<-in.Ctx.Done()
	})
	errc := make(chan error, 1)
	go func() {
		_, _, _, err := cli.Invoke(context.Background(), ep, requestHeader(cli, "hang", "op"), nil)
		errc <- err
	}()
	<-started
	cli.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("invoke succeeded after client close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("invoke hung across client close")
	}
	// Further use fails fast.
	if _, _, _, err := cli.Invoke(context.Background(), ep, requestHeader(cli, "echo", "op"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close invoke: %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	cli := NewClient(reg)
	defer cli.Close()
	if _, _, _, err := cli.Invoke(context.Background(), "inproc:nobody",
		requestHeader(cli, "echo", "op"), nil); err == nil {
		t.Fatal("invoke to nonexistent endpoint succeeded")
	}
}

func TestBlockTransferClientToServer(t *testing.T) {
	cli, srv, ep := newPair(t)
	inv := cli.NewInvocationID()
	sink := make(chan Block, 4)
	cancel, err := srv.ExpectBlocks(inv, sink)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	hdr := giop.BlockTransferHeader{
		InvocationID: inv, ArgIndex: 0, FromThread: 1, ToThread: 2,
		DstOff: 10, Count: 3, Last: true,
	}
	_, err = cli.SendBlock(ep, hdr, func(e *cdr.Encoder) {
		e.PutDoubleSeq([]float64{1, 2, 3})
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case blk := <-sink:
		if blk.Header != hdr {
			t.Fatalf("header = %+v", blk.Header)
		}
		d := cdr.NewDecoderAt(blk.Order, blk.Payload, payloadBase(blk))
		v, err := d.DoubleSeq()
		if err != nil || len(v) != 3 || v[2] != 3 {
			t.Fatalf("payload = %v %v", v, err)
		}
	case <-time.After(time.Second):
		t.Fatal("block never delivered")
	}
}

// payloadBase computes the stream offset of a block payload: the CDR
// position right after the header.
func payloadBase(b Block) int {
	e := cdr.NewEncoder(b.Order)
	b.Header.Encode(e)
	return e.Len()
}

func TestBlockArrivingBeforeSinkIsBuffered(t *testing.T) {
	cli, srv, ep := newPair(t)
	inv := cli.NewInvocationID()
	hdr := giop.BlockTransferHeader{InvocationID: inv, Count: 1, Last: true}
	if _, err := cli.SendBlock(ep, hdr, func(e *cdr.Encoder) { e.PutDoubleSeq([]float64{9}) }); err != nil {
		t.Fatal(err)
	}
	// Give the block time to arrive before the sink exists.
	time.Sleep(20 * time.Millisecond)
	sink := make(chan Block, 1)
	cancel, err := srv.ExpectBlocks(inv, sink)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	select {
	case blk := <-sink:
		if blk.Header.InvocationID != inv {
			t.Fatalf("wrong invocation: %+v", blk.Header)
		}
	case <-time.After(time.Second):
		t.Fatal("buffered block never flushed")
	}
}

func TestDuplicateSinkRejected(t *testing.T) {
	_, srv, _ := newPair(t)
	ch := make(chan Block, 1)
	cancel, err := srv.ExpectBlocks(7, ch)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if _, err := srv.ExpectBlocks(7, ch); err == nil {
		t.Fatal("duplicate sink accepted")
	}
}

func TestInvocationIDsUnique(t *testing.T) {
	cli := NewClient(nil)
	defer cli.Close()
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := cli.NewInvocationID()
		if seen[id] {
			t.Fatalf("duplicate invocation id %d", id)
		}
		seen[id] = true
	}
}

func TestCrossByteOrderInterop(t *testing.T) {
	// Little-endian client against big-endian server: receiver makes
	// right.
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg, WithServerByteOrder(cdr.BigEndian))
	srv.Handle("sum", func(in *Incoming) {
		d := in.Decoder()
		a, _ := d.Long()
		b, err := d.Long()
		if err != nil {
			_ = in.ReplySystemException("MARSHAL", err.Error())
			return
		}
		_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) { e.PutLong(a + b) })
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(reg, WithByteOrder(cdr.LittleEndian))
	defer cli.Close()
	_, order, body, err := cli.Invoke(context.Background(), ep,
		requestHeader(cli, "sum", "add"),
		func(e *cdr.Encoder) { e.PutLong(40); e.PutLong(2) })
	if err != nil {
		t.Fatal(err)
	}
	if order != cdr.BigEndian {
		t.Fatalf("reply order = %v", order)
	}
	v, err := cdr.NewDecoder(order, body).Long()
	if err != nil || v != 42 {
		t.Fatalf("sum = %d %v", v, err)
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	srv := NewServer(nil)
	srv.Handle("echo", func(in *Incoming) {
		s, _ := in.Decoder().String()
		_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) { e.PutString(s) })
	})
	ep, err := srv.Listen("tcp:127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(nil)
	defer cli.Close()
	_, order, body, err := cli.Invoke(context.Background(), ep,
		requestHeader(cli, "echo", "op"),
		func(e *cdr.Encoder) { e.PutString("over tcp") })
	if err != nil {
		t.Fatal(err)
	}
	s, err := cdr.NewDecoder(order, body).String()
	if err != nil || s != "over tcp" {
		t.Fatalf("reply = %q %v", s, err)
	}
}
