// Fault-tolerant invocation support: retry policy with exponential
// backoff and a shared retry budget, plus the per-endpoint health
// table (a consecutive-failure circuit breaker with half-open probes)
// that drives failover across a reference's replica endpoints.
package orb

import (
	"context"
	"errors"
	"log/slog"
	"math/rand"
	"sync"
	"time"

	"pardis/internal/telemetry"
)

// RetryPolicy governs how a Client re-issues invocations that failed
// inside the safe-to-retry window (dial and write failures, and
// connection loss before the reply message arrived — see
// DESIGN.md "Failure semantics"). The zero value never retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per invocation
	// (1 or 0 means a single attempt, i.e. no retries).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 5ms
	// when retries are enabled).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 500ms).
	MaxBackoff time.Duration
	// Multiplier scales the delay between retries (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay randomized away, in
	// [0, 1] (default 0.2): delay*(1-Jitter) .. delay. Jitter breaks
	// retry synchronization across clients hammering a recovering
	// server.
	Jitter float64
	// Budget, when set, rate-limits retries client-wide so that a
	// hard outage cannot multiply load (retry storms). Attempts
	// beyond the first each spend one token; exhausted budget stops
	// retrying and surfaces the last error.
	Budget *RetryBudget
}

// DefaultRetryPolicy is a sensible production policy: three attempts,
// 5ms initial backoff doubling to 500ms, 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond,
		MaxBackoff: 500 * time.Millisecond, Multiplier: 2, Jitter: 0.2}
}

// attempts returns the effective total attempt count.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the jittered delay to sleep before retry number n
// (n = 1 is the first retry).
func (p RetryPolicy) backoff(n int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 500 * time.Millisecond
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(base)
	for i := 1; i < n; i++ {
		d *= mult
		if d >= float64(maxB) {
			d = float64(maxB)
			break
		}
	}
	jitter := p.Jitter
	if jitter < 0 {
		jitter = 0
	} else if jitter > 1 {
		jitter = 1
	}
	if jitter > 0 {
		d *= 1 - jitter*jitterRand()
	}
	return time.Duration(d)
}

// jitterRand samples the shared jitter RNG.
var jitterRand = func() func() float64 {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return rng.Float64()
	}
}()

// RetryBudget is a token bucket shared by all invocations of one or
// more clients: each retry spends a token, each success earns back a
// fraction. When the bucket is empty retries are suppressed, bounding
// the load amplification a dead backend can cause to (1 + earn rate).
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	earn   float64
}

// NewRetryBudget returns a budget holding up to max tokens (starting
// full) and earning earnPerSuccess tokens back per successful
// invocation. Typical values: max 10, earnPerSuccess 0.1.
func NewRetryBudget(max, earnPerSuccess float64) *RetryBudget {
	if max <= 0 {
		max = 10
	}
	return &RetryBudget{tokens: max, max: max, earn: earnPerSuccess}
}

// spend takes one token, reporting whether a retry is allowed.
func (b *RetryBudget) spend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// onSuccess earns back a fraction of a token.
func (b *RetryBudget) onSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.earn
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// Circuit-breaker defaults.
const (
	// defaultBreakerThreshold is the consecutive-failure count that
	// opens an endpoint's breaker.
	defaultBreakerThreshold = 3
	// defaultBreakerCooldown is how long an open breaker rejects the
	// endpoint before allowing a half-open probe.
	defaultBreakerCooldown = 2 * time.Second
)

// breakerState is one endpoint's circuit-breaker state.
type breakerState int

const (
	breakerClosed   breakerState = iota // healthy, requests flow
	breakerOpen                         // failing, skipped until cooldown
	breakerHalfOpen                     // one probe in flight
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// endpointHealth tracks one endpoint.
type endpointHealth struct {
	state       breakerState
	consecFails int
	openUntil   time.Time
	// lastChange and lastReason record the breaker's most recent state
	// transition — when it happened and why — for Health snapshots.
	lastChange time.Time
	lastReason string
}

// healthTable is a Client's per-endpoint circuit breaker: after
// threshold consecutive transport-level failures an endpoint is
// marked down for cooldown; the first caller after the cooldown gets
// through as a half-open probe whose outcome closes or re-opens the
// breaker.
type healthTable struct {
	mu        sync.Mutex
	m         map[string]*endpointHealth
	threshold int
	cooldown  time.Duration
	now       func() time.Time
}

func newHealthTable(threshold int, cooldown time.Duration) *healthTable {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &healthTable{
		m:         make(map[string]*endpointHealth),
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
	}
}

func (h *healthTable) get(ep string) *endpointHealth {
	e, ok := h.m[ep]
	if !ok {
		e = &endpointHealth{}
		h.m[ep] = e
	}
	return e
}

// transition moves one endpoint's breaker to a new state, stamping
// when and why, and mirrors the change into the telemetry registry.
// Caller holds h.mu. A no-op when the state is unchanged.
func (h *healthTable) transition(ep string, e *endpointHealth, to breakerState, reason string) {
	if e.state == to {
		return
	}
	from := e.state
	e.state = to
	e.lastChange = h.now()
	e.lastReason = reason
	telemetry.Default.Counter("pardis_client_breaker_transitions_total",
		"endpoint", ep, "to", to.String()).Inc()
	telemetry.Default.Gauge("pardis_client_breaker_state", "endpoint", ep).Set(int64(to))
	if telemetry.LogEnabled(slog.LevelInfo) {
		telemetry.Logger().Info("breaker transition",
			"endpoint", ep, "from", from.String(), "to", to.String(), "reason", reason)
	}
}

// allow reports whether the endpoint should be tried now. An expired
// open breaker transitions to half-open and admits this caller as the
// probe.
func (h *healthTable) allow(ep string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.get(ep)
	switch e.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		return false // a probe is already in flight
	default: // open
		if h.now().Before(e.openUntil) {
			return false
		}
		h.transition(ep, e, breakerHalfOpen, "cooldown expired; admitting probe")
		return true
	}
}

// onSuccess records a successful invocation at ep, closing its
// breaker.
func (h *healthTable) onSuccess(ep string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.get(ep)
	h.transition(ep, e, breakerClosed, "invocation succeeded")
	e.consecFails = 0
}

// onFailure records a transport-level failure at ep (cause says what
// went wrong); enough in a row (or a failed half-open probe) opens the
// breaker.
func (h *healthTable) onFailure(ep string, cause error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.get(ep)
	e.consecFails++
	if e.state == breakerHalfOpen || e.consecFails >= h.threshold {
		reason := "transport failure"
		if cause != nil {
			reason = cause.Error()
		}
		if e.state == breakerHalfOpen {
			reason = "half-open probe failed: " + reason
		}
		h.transition(ep, e, breakerOpen, reason)
		e.openUntil = h.now().Add(h.cooldown)
	}
}

// up reports whether the endpoint is currently believed healthy
// (breaker not open). Unknown endpoints are presumed healthy.
func (h *healthTable) up(ep string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	e, ok := h.m[ep]
	if !ok {
		return true
	}
	if e.state == breakerOpen && h.now().Before(e.openUntil) {
		return false
	}
	return true
}

// EndpointState is an exported snapshot of one endpoint's breaker.
type EndpointState struct {
	// State is "closed", "open" or "half-open".
	State string
	// ConsecutiveFailures counts transport failures since the last
	// success.
	ConsecutiveFailures int
	// Since is when the breaker last changed state (zero if it has
	// never transitioned).
	Since time.Time
	// Reason explains the last transition — the failure that opened
	// the breaker, the probe admission, or the success that closed it.
	Reason string
}

// snapshot exports the table for diagnostics.
func (h *healthTable) snapshot() map[string]EndpointState {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]EndpointState, len(h.m))
	for ep, e := range h.m {
		out[ep] = EndpointState{
			State:               e.state.String(),
			ConsecutiveFailures: e.consecFails,
			Since:               e.lastChange,
			Reason:              e.lastReason,
		}
	}
	return out
}

// retryable reports whether an invocation error happened inside the
// safe-to-retry window: the request provably did not produce a reply.
// Dial failures and write failures never reached the server intact;
// ErrServerClosed means the server drained us off deliberately;
// ErrConnectionLost means the connection died with no reply framed
// for this request (the server may still have executed it — see
// "Failure semantics" in DESIGN.md for the at-least-once caveat).
func retryable(err error) bool {
	return errors.Is(err, ErrConnectionLost) ||
		errors.Is(err, ErrServerClosed) ||
		errors.Is(err, ErrUnreachable) ||
		errors.Is(err, ErrTransient)
}

// sleepCtx sleeps for d unless the context ends first, in which case
// it returns the context error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
