package orb

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"time"

	"pardis/internal/telemetry"
)

// AdmissionConfig caps how much concurrent work a Server accepts.
// Requests beyond the caps wait in a bounded, deadline-aware queue;
// requests the queue cannot hold — or whose propagated deadline
// cannot be met while they wait — are shed with a system exception
// the client retry layer already knows how to handle (TRANSIENT →
// retry/failover, TIMEOUT → give up, the budget is gone).
type AdmissionConfig struct {
	// MaxConcurrent caps handlers running at once across the whole
	// server (<= 0 = unlimited).
	MaxConcurrent int
	// MaxPerConn caps handlers running at once on behalf of a single
	// connection (<= 0 = unlimited), so one chatty client cannot
	// monopolize the global slots.
	MaxPerConn int
	// MaxQueue bounds how many requests may wait for a slot across
	// the server. At the bound new over-cap requests are shed
	// immediately with TRANSIENT (<= 0 = no waiting at all: over-cap
	// requests are shed without queuing).
	MaxQueue int
	// MaxWait bounds one request's time in the queue (<= 0 = bounded
	// only by the request's own deadline).
	MaxWait time.Duration
}

// DefaultAdmissionConfig returns generous caps scaled to the host:
// enough parallelism that a healthy server never queues, small enough
// that a saturating burst degrades by shedding rather than by
// unbounded goroutine and memory growth.
func DefaultAdmissionConfig() AdmissionConfig {
	n := runtime.GOMAXPROCS(0)
	return AdmissionConfig{
		MaxConcurrent: 16 * n,
		MaxPerConn:    8 * n,
		MaxQueue:      32 * n,
		MaxWait:       time.Second,
	}
}

// WithAdmission enables admission control on a Server.
func WithAdmission(cfg AdmissionConfig) ServerOption {
	return func(s *Server) {
		a := &admission{cfg: cfg}
		if cfg.MaxConcurrent > 0 {
			a.global = make(chan struct{}, cfg.MaxConcurrent)
		}
		s.adm = a
	}
}

// Shed instruments are process-wide and interned once; the queue-depth
// gauge is shared by every admission-controlled server in the process
// (accounted in deltas).
var (
	admissionQueueDepth = telemetry.Default.Gauge("pardis_server_admission_queue_depth")
	shedExpired         = telemetry.Default.Counter("pardis_server_shed_total", "reason", "expired")
	shedQueueFull       = telemetry.Default.Counter("pardis_server_shed_total", "reason", "queue_full")
	shedQueueWait       = telemetry.Default.Counter("pardis_server_shed_total", "reason", "queue_wait")
	shedCanceled        = telemetry.Default.Counter("pardis_server_shed_total", "reason", "canceled")
)

// admission is the runtime state behind an AdmissionConfig: a global
// slot semaphore (per-connection semaphores live on the serverConns)
// plus the shared wait-queue accounting.
type admission struct {
	cfg    AdmissionConfig
	global chan struct{} // nil = unlimited
	queued atomic.Int64
}

// AdmissionStats is a point-in-time snapshot of the admission gate.
type AdmissionStats struct {
	// MaxConcurrent and MaxQueue echo the configured caps (0 when
	// admission control is disabled).
	MaxConcurrent int
	MaxQueue      int
	// Running is the number of admitted handler slots currently held.
	Running int
	// Queued is the number of requests waiting for a slot.
	Queued int
}

// AdmissionStats reports the server's admission gate state; zero
// values when admission control is not configured.
func (s *Server) AdmissionStats() AdmissionStats {
	a := s.adm
	if a == nil {
		return AdmissionStats{}
	}
	st := AdmissionStats{
		MaxConcurrent: a.cfg.MaxConcurrent,
		MaxQueue:      a.cfg.MaxQueue,
		Queued:        int(a.queued.Load()),
	}
	if a.global != nil {
		st.Running = len(a.global)
	}
	return st
}

// AdmissionSaturated reports whether the admission wait queue is at
// its bound — the point where new over-cap requests are shed and an
// external load balancer should stop routing here.
func (s *Server) AdmissionSaturated() bool {
	a := s.adm
	if a == nil || a.cfg.MaxQueue <= 0 {
		return false
	}
	return a.queued.Load() >= int64(a.cfg.MaxQueue)
}

// admit blocks the request's goroutine until a handler slot is free on
// both the per-connection and the global gate. It returns a release
// function when the request is admitted; otherwise it has already
// written the shed reply (TIMEOUT when the propagated deadline died in
// the queue... per the protocol contract: TRANSIENT for queue
// overflow/wait-limit, silence for a client-side cancel) and returns
// ok=false.
func (s *Server) admit(in *Incoming) (release func(), ok bool) {
	a := s.adm
	var held [2]chan struct{}
	nheld := 0
	releaseAll := func() {
		for i := 0; i < nheld; i++ {
			<-held[i]
		}
	}
	// The per-connection gate comes first: while a request waits for
	// it, it consumes no shared resource beyond its queue ticket; once
	// it holds a global slot it must never block again.
	for _, gate := range [2]chan struct{}{in.conn.slots, a.global} {
		if gate == nil {
			continue
		}
		select {
		case gate <- struct{}{}:
			held[nheld] = gate
			nheld++
			continue
		default:
		}
		// The gate is full: join the bounded wait queue.
		if a.cfg.MaxQueue <= 0 || a.queued.Add(1) > int64(a.cfg.MaxQueue) {
			if a.cfg.MaxQueue > 0 {
				a.queued.Add(-1)
			}
			releaseAll()
			shedQueueFull.Inc()
			_ = in.ReplySystemException("TRANSIENT", "admission queue full")
			return nil, false
		}
		admissionQueueDepth.Inc()
		got := a.waitGate(in, gate)
		a.queued.Add(-1)
		admissionQueueDepth.Dec()
		if !got {
			releaseAll()
			return nil, false
		}
		held[nheld] = gate
		nheld++
	}
	return releaseAll, true
}

// waitGate parks one queued request on a gate until a slot frees, the
// request's context dies, or the configured wait limit passes —
// writing the shed reply for the latter two. A propagated deadline
// that expires while queued sheds with TRANSIENT ("this replica could
// not schedule you in time; another might"), while a client cancel
// (CancelRequest or a dropped connection) sheds silently: nobody is
// listening for a reply.
func (a *admission) waitGate(in *Incoming, gate chan struct{}) bool {
	var limit <-chan time.Time
	if a.cfg.MaxWait > 0 {
		t := time.NewTimer(a.cfg.MaxWait)
		defer t.Stop()
		limit = t.C
	}
	select {
	case gate <- struct{}{}:
		return true
	case <-in.Ctx.Done():
		if errors.Is(in.Ctx.Err(), context.DeadlineExceeded) {
			shedExpired.Inc()
			_ = in.ReplySystemException("TRANSIENT", "deadline cannot be met: expired while queued for admission")
		} else {
			shedCanceled.Inc()
		}
		return false
	case <-limit:
		shedQueueWait.Inc()
		_ = in.ReplySystemException("TRANSIENT", "admission wait limit exceeded")
		return false
	}
}
