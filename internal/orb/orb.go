// Package orb implements the PARDIS Object Request Broker core: the
// client-side invocation engine (connection caching, request/reply
// matching, cancellation, locate queries) and the server-side object
// adapter (endpoint listeners, request dispatch, reply writing), plus
// the routing of multi-port block-transfer messages that distinguishes
// PARDIS from a conventional ORB.
//
// The ORB is deliberately mechanism-only: argument marshaling lives in
// compiler-generated stubs (package idlgen) and the SPMD collective
// logic lives in package spmd. Both sides of an SPMD object — client
// threads and server threads — each hold a Client and/or Server from
// this package.
package orb

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/telemetry"
)

// Errors returned by ORB operations.
var (
	ErrClosed         = errors.New("orb: closed")
	ErrCanceled       = errors.New("orb: request canceled")
	ErrConnectionLost = errors.New("orb: connection lost")
	ErrTooManyBlocks  = errors.New("orb: too many unmatched block transfers buffered")
	// ErrPendingBlockBytes means the byte budget for unmatched block
	// transfers is exhausted: a peer pushed more early-block payload
	// than the router is willing to buffer before a sink registers.
	ErrPendingBlockBytes = errors.New("orb: unmatched block-transfer byte budget exceeded")
	// ErrDeadlineExpired wraps a TIMEOUT system exception: the server
	// shed the request because its propagated deadline had already
	// passed. Retrying cannot help — the caller's budget is gone — so
	// the retry layer returns it immediately instead of failing over.
	ErrDeadlineExpired = errors.New("orb: request deadline expired at server")
	// ErrServerClosed means the server announced an orderly shutdown
	// (MsgCloseConnection): it processed nothing further on this
	// connection, so pending invocations are always safe to re-issue
	// at another endpoint.
	ErrServerClosed = errors.New("orb: server closed connection")
	// ErrUnreachable marks dial-stage failures: the request never
	// left this process, so retrying elsewhere is always safe.
	ErrUnreachable = errors.New("orb: endpoint unreachable")
	// ErrTransient wraps a TRANSIENT system exception: the server
	// explicitly asked the client to retry (e.g. it is draining).
	ErrTransient = errors.New("orb: transient server condition")
	// ErrForwardCycle reports a LOCATION_FORWARD loop (an endpoint
	// forwarded back to a location already visited).
	ErrForwardCycle = errors.New("orb: location forward cycle")
)

// Block is one received block-transfer message: a slice of a
// distributed argument in flight between a client thread and a server
// thread.
type Block struct {
	// Header describes where the payload lands.
	Header giop.BlockTransferHeader
	// Order is the byte order of Payload.
	Order cdr.ByteOrder
	// Payload is the CDR-encoded element data following the header.
	Payload []byte
}

// Defaults for the pending-block buffer (blocks race the invocation
// header across separate connections, so a router must buffer early
// arrivals — but only so much, for so long).
const (
	// defaultMaxPendingBlocks bounds how many block transfers may be
	// buffered while waiting for their invocation to register a sink.
	defaultMaxPendingBlocks = 4096
	// defaultMaxPendingBytes bounds the payload bytes those buffered
	// blocks may hold in total, so a peer cannot park 4096 maximal
	// frames (a multi-GiB hostage) behind an invocation that never
	// registers.
	defaultMaxPendingBytes = 64 << 20
	// defaultPendingTTL is how long an invocation's early blocks may
	// sit without any new arrival before a sweep reclaims them — the
	// signature of a client that died between sending blocks and
	// issuing (or completing) the invocation.
	defaultPendingTTL = 30 * time.Second
	// defaultPendingSweepInterval is how often a Server's background
	// sweeper scans for abandoned pending buffers.
	defaultPendingSweepInterval = 5 * time.Second
)

// PendingPolicy bounds the early-block pending buffer of a Server (or
// any block router): how many blocks and payload bytes may wait for a
// sink, and how long an invocation's buffer may go without traffic
// before the periodic sweep reclaims it. Zero fields take the
// defaults above.
type PendingPolicy struct {
	MaxBlocks     int
	MaxBytes      int
	TTL           time.Duration
	SweepInterval time.Duration
}

// DefaultPendingPolicy returns the default pending-buffer bounds.
func DefaultPendingPolicy() PendingPolicy {
	return PendingPolicy{
		MaxBlocks:     defaultMaxPendingBlocks,
		MaxBytes:      defaultMaxPendingBytes,
		TTL:           defaultPendingTTL,
		SweepInterval: defaultPendingSweepInterval,
	}
}

func (p PendingPolicy) withDefaults() PendingPolicy {
	d := DefaultPendingPolicy()
	if p.MaxBlocks <= 0 {
		p.MaxBlocks = d.MaxBlocks
	}
	if p.MaxBytes <= 0 {
		p.MaxBytes = d.MaxBytes
	}
	if p.TTL <= 0 {
		p.TTL = d.TTL
	}
	if p.SweepInterval <= 0 {
		p.SweepInterval = d.SweepInterval
	}
	return p
}

// Pending-buffer instruments are process-wide (no labels), interned
// once: routers account deltas so the gauge stays correct across any
// number of clients and servers in the process.
var (
	pendingBlockBytes     = telemetry.Default.Gauge("pardis_orb_pending_blocks_bytes")
	pendingBlockReclaimed = telemetry.Default.Counter("pardis_orb_pending_reclaimed_total")
)

// blockSink is one registered consumer of block transfers: either a
// buffered channel (legacy path) or a callback invoked directly on the
// connection's read goroutine (the fast path for parallel assembly —
// multiple connections delivering to the same invocation run their
// callbacks concurrently, so callbacks must be safe for concurrent
// use and must not block).
type blockSink struct {
	ch chan<- Block
	fn func(Block) error
}

func (s blockSink) send(b Block) error {
	if s.fn != nil {
		return s.fn(b)
	}
	select {
	case s.ch <- b:
		return nil
	default:
		return fmt.Errorf("orb: block sink full for invocation %d", b.Header.InvocationID)
	}
}

// pendingEntry is one invocation's buffered early blocks plus the
// accounting the byte budget and TTL sweep need.
type pendingEntry struct {
	blocks []Block
	bytes  int
	last   time.Time // most recent arrival; staleness is measured from here
}

// blockRouter delivers incoming blocks to the invocation engines
// expecting them, buffering early arrivals under a block-count and
// byte budget and reclaiming buffers abandoned past a TTL.
type blockRouter struct {
	mu           sync.Mutex
	sinks        map[uint64]blockSink
	pending      map[uint64]*pendingEntry
	windows      map[uint64]*Window
	wpending     map[uint64]*windowPendingEntry
	pendingLen   int
	pendingBytes int
	pol          PendingPolicy
}

func newBlockRouter() *blockRouter {
	return &blockRouter{
		sinks:    make(map[uint64]blockSink),
		pending:  make(map[uint64]*pendingEntry),
		windows:  make(map[uint64]*Window),
		wpending: make(map[uint64]*windowPendingEntry),
		pol:      DefaultPendingPolicy(),
	}
}

// BlockRouterStats is a point-in-time snapshot of a block router, used
// by tests and health checks to assert sinks are not leaked.
type BlockRouterStats struct {
	// Sinks is the number of registered (not yet cancelled) sinks.
	Sinks int
	// Windows is the number of registered (not yet cancelled)
	// one-sided destination windows.
	Windows int
	// Pending is the number of buffered early blocks and window puts
	// awaiting a sink or window.
	Pending int
	// PendingBytes is the payload bytes those blocks hold.
	PendingBytes int
}

func (r *blockRouter) stats() BlockRouterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return BlockRouterStats{
		Sinks:        len(r.sinks),
		Windows:      len(r.windows),
		Pending:      r.pendingLen,
		PendingBytes: r.pendingBytes,
	}
}

// deliver hands a block to its registered sink, or buffers it until
// the sink registers. Channel sinks must be buffered generously (at
// least the plan size) — delivery never blocks on a channel; callback
// sinks run inline on the calling goroutine.
func (r *blockRouter) deliver(b Block) error {
	r.mu.Lock()
	sink, ok := r.sinks[b.Header.InvocationID]
	if !ok {
		if r.pendingLen >= r.pol.MaxBlocks {
			r.mu.Unlock()
			return fmt.Errorf("%w: invocation %d", ErrTooManyBlocks, b.Header.InvocationID)
		}
		if r.pendingBytes+len(b.Payload) > r.pol.MaxBytes {
			r.mu.Unlock()
			return fmt.Errorf("%w: invocation %d (%d buffered + %d new > %d)",
				ErrPendingBlockBytes, b.Header.InvocationID, r.pendingBytes, len(b.Payload), r.pol.MaxBytes)
		}
		pe := r.pending[b.Header.InvocationID]
		if pe == nil {
			pe = &pendingEntry{}
			r.pending[b.Header.InvocationID] = pe
		}
		pe.blocks = append(pe.blocks, b)
		pe.bytes += len(b.Payload)
		pe.last = time.Now()
		r.pendingLen++
		r.pendingBytes += len(b.Payload)
		pendingBlockBytes.Add(int64(len(b.Payload)))
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()
	return sink.send(b)
}

// sweep reclaims every pending buffer whose last arrival is older than
// the router's TTL (an invocation that will plainly never register a
// sink — its client died or gave up). It returns the number of blocks
// dropped.
func (r *blockRouter) sweep(now time.Time) int {
	r.mu.Lock()
	var dropped, droppedBytes int
	for inv, pe := range r.pending {
		if now.Sub(pe.last) < r.pol.TTL {
			continue
		}
		dropped += len(pe.blocks)
		droppedBytes += pe.bytes
		r.pendingLen -= len(pe.blocks)
		r.pendingBytes -= pe.bytes
		delete(r.pending, inv)
	}
	r.mu.Unlock()
	if droppedBytes > 0 {
		pendingBlockBytes.Add(-int64(droppedBytes))
	}
	if dropped > 0 {
		pendingBlockReclaimed.Add(uint64(dropped))
	}
	return dropped
}

// register installs a channel sink for an invocation id, flushing any
// blocks that arrived early. The returned cancel function removes the
// sink and discards later strays.
func (r *blockRouter) register(inv uint64, ch chan<- Block) (cancel func(), err error) {
	return r.install(inv, blockSink{ch: ch})
}

// registerFunc installs a callback sink: every block for inv is handed
// to fn on the delivering connection's read goroutine. fn may be
// called concurrently from multiple connections and must not block; a
// non-nil error from fn tears down the delivering connection.
func (r *blockRouter) registerFunc(inv uint64, fn func(Block) error) (cancel func(), err error) {
	return r.install(inv, blockSink{fn: fn})
}

func (r *blockRouter) install(inv uint64, sink blockSink) (cancel func(), err error) {
	r.mu.Lock()
	if _, dup := r.sinks[inv]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("orb: duplicate block sink for invocation %d", inv)
	}
	r.sinks[inv] = sink
	var early []Block
	if pe := r.pending[inv]; pe != nil {
		early = pe.blocks
		delete(r.pending, inv)
		r.pendingLen -= len(pe.blocks)
		r.pendingBytes -= pe.bytes
		pendingBlockBytes.Add(-int64(pe.bytes))
	}
	r.mu.Unlock()
	cancel = func() {
		r.mu.Lock()
		delete(r.sinks, inv)
		r.mu.Unlock()
	}
	for _, b := range early {
		if err := sink.send(b); err != nil {
			cancel()
			return nil, err
		}
	}
	return cancel, nil
}
