// Package orb implements the PARDIS Object Request Broker core: the
// client-side invocation engine (connection caching, request/reply
// matching, cancellation, locate queries) and the server-side object
// adapter (endpoint listeners, request dispatch, reply writing), plus
// the routing of multi-port block-transfer messages that distinguishes
// PARDIS from a conventional ORB.
//
// The ORB is deliberately mechanism-only: argument marshaling lives in
// compiler-generated stubs (package idlgen) and the SPMD collective
// logic lives in package spmd. Both sides of an SPMD object — client
// threads and server threads — each hold a Client and/or Server from
// this package.
package orb

import (
	"errors"
	"fmt"
	"sync"

	"pardis/internal/cdr"
	"pardis/internal/giop"
)

// Errors returned by ORB operations.
var (
	ErrClosed         = errors.New("orb: closed")
	ErrCanceled       = errors.New("orb: request canceled")
	ErrConnectionLost = errors.New("orb: connection lost")
	ErrTooManyBlocks  = errors.New("orb: too many unmatched block transfers buffered")
	// ErrServerClosed means the server announced an orderly shutdown
	// (MsgCloseConnection): it processed nothing further on this
	// connection, so pending invocations are always safe to re-issue
	// at another endpoint.
	ErrServerClosed = errors.New("orb: server closed connection")
	// ErrUnreachable marks dial-stage failures: the request never
	// left this process, so retrying elsewhere is always safe.
	ErrUnreachable = errors.New("orb: endpoint unreachable")
	// ErrTransient wraps a TRANSIENT system exception: the server
	// explicitly asked the client to retry (e.g. it is draining).
	ErrTransient = errors.New("orb: transient server condition")
	// ErrForwardCycle reports a LOCATION_FORWARD loop (an endpoint
	// forwarded back to a location already visited).
	ErrForwardCycle = errors.New("orb: location forward cycle")
)

// Block is one received block-transfer message: a slice of a
// distributed argument in flight between a client thread and a server
// thread.
type Block struct {
	// Header describes where the payload lands.
	Header giop.BlockTransferHeader
	// Order is the byte order of Payload.
	Order cdr.ByteOrder
	// Payload is the CDR-encoded element data following the header.
	Payload []byte
}

// defaultMaxPendingBlocks bounds how many block transfers may be
// buffered while waiting for their invocation to register a sink
// (blocks race the invocation header across separate connections).
const defaultMaxPendingBlocks = 4096

// blockSink is one registered consumer of block transfers: either a
// buffered channel (legacy path) or a callback invoked directly on the
// connection's read goroutine (the fast path for parallel assembly —
// multiple connections delivering to the same invocation run their
// callbacks concurrently, so callbacks must be safe for concurrent
// use and must not block).
type blockSink struct {
	ch chan<- Block
	fn func(Block) error
}

func (s blockSink) send(b Block) error {
	if s.fn != nil {
		return s.fn(b)
	}
	select {
	case s.ch <- b:
		return nil
	default:
		return fmt.Errorf("orb: block sink full for invocation %d", b.Header.InvocationID)
	}
}

// blockRouter delivers incoming blocks to the invocation engines
// expecting them, buffering early arrivals.
type blockRouter struct {
	mu         sync.Mutex
	sinks      map[uint64]blockSink
	pending    map[uint64][]Block
	pendingLen int
	maxPending int
}

func newBlockRouter() *blockRouter {
	return &blockRouter{
		sinks:      make(map[uint64]blockSink),
		pending:    make(map[uint64][]Block),
		maxPending: defaultMaxPendingBlocks,
	}
}

// BlockRouterStats is a point-in-time snapshot of a block router, used
// by tests and health checks to assert sinks are not leaked.
type BlockRouterStats struct {
	// Sinks is the number of registered (not yet cancelled) sinks.
	Sinks int
	// Pending is the number of buffered early blocks awaiting a sink.
	Pending int
}

func (r *blockRouter) stats() BlockRouterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return BlockRouterStats{Sinks: len(r.sinks), Pending: r.pendingLen}
}

// deliver hands a block to its registered sink, or buffers it until
// the sink registers. Channel sinks must be buffered generously (at
// least the plan size) — delivery never blocks on a channel; callback
// sinks run inline on the calling goroutine.
func (r *blockRouter) deliver(b Block) error {
	r.mu.Lock()
	sink, ok := r.sinks[b.Header.InvocationID]
	if !ok {
		if r.pendingLen >= r.maxPending {
			r.mu.Unlock()
			return fmt.Errorf("%w: invocation %d", ErrTooManyBlocks, b.Header.InvocationID)
		}
		r.pending[b.Header.InvocationID] = append(r.pending[b.Header.InvocationID], b)
		r.pendingLen++
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()
	return sink.send(b)
}

// register installs a channel sink for an invocation id, flushing any
// blocks that arrived early. The returned cancel function removes the
// sink and discards later strays.
func (r *blockRouter) register(inv uint64, ch chan<- Block) (cancel func(), err error) {
	return r.install(inv, blockSink{ch: ch})
}

// registerFunc installs a callback sink: every block for inv is handed
// to fn on the delivering connection's read goroutine. fn may be
// called concurrently from multiple connections and must not block; a
// non-nil error from fn tears down the delivering connection.
func (r *blockRouter) registerFunc(inv uint64, fn func(Block) error) (cancel func(), err error) {
	return r.install(inv, blockSink{fn: fn})
}

func (r *blockRouter) install(inv uint64, sink blockSink) (cancel func(), err error) {
	r.mu.Lock()
	if _, dup := r.sinks[inv]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("orb: duplicate block sink for invocation %d", inv)
	}
	r.sinks[inv] = sink
	early := r.pending[inv]
	delete(r.pending, inv)
	r.pendingLen -= len(early)
	r.mu.Unlock()
	cancel = func() {
		r.mu.Lock()
		delete(r.sinks, inv)
		r.mu.Unlock()
	}
	for _, b := range early {
		if err := sink.send(b); err != nil {
			cancel()
			return nil, err
		}
	}
	return cancel, nil
}
