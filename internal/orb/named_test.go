package orb

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/ior"
	"pardis/internal/transport"
)

// scriptedSource is a RefSource whose answers rotate on Invalidate —
// the shape of a resolver whose upstream re-ranks after a death.
type scriptedSource struct {
	mu           sync.Mutex
	refs         []*ior.Ref
	idx          int
	invalidatons int
}

func (s *scriptedSource) RefFor(_ context.Context, _ string) (*ior.Ref, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.idx
	if i >= len(s.refs) {
		i = len(s.refs) - 1
	}
	return s.refs[i], nil
}

func (s *scriptedSource) Invalidate(_ string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invalidatons++
	if s.idx < len(s.refs)-1 {
		s.idx++
	}
}

func namedEcho(t *testing.T, reg *transport.Registry, id string) (*Server, string) {
	t.Helper()
	srv := NewServer(reg)
	srv.Handle("echo", func(in *Incoming) {
		_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) { e.PutString(id) })
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	return srv, ep
}

// TestFaultNamedReResolve: when every endpoint of a resolution dies,
// InvokeNamed invalidates it, re-resolves, and completes on the
// freshly resolved replica — the client-visible contract that a
// request keeps completing as long as some live replica exists.
func TestFaultNamedReResolve(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	a, epA := namedEcho(t, reg, "replica-a")
	b, epB := namedEcho(t, reg, "replica-b")
	defer b.Close()

	src := &scriptedSource{refs: []*ior.Ref{
		{TypeID: "t", Key: "echo", Threads: 1, Endpoints: []string{epA}},
		{TypeID: "t", Key: "echo", Threads: 1, Endpoints: []string{epB}},
	}}
	cli := NewClient(reg,
		WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond,
			MaxBackoff: 5 * time.Millisecond}),
		WithDefaultDeadline(2*time.Second))
	defer cli.Close()

	// Warm path: the first resolution answers.
	_, order, body, err := cli.InvokeNamed(context.Background(), src, "svc/echo",
		requestHeader(cli, "echo", "op"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := cdr.NewDecoderAt(order, body, 8).String(); s != "replica-a" {
		t.Fatalf("reply from %q, want replica-a", s)
	}

	// Kill the resolved replica: the stale resolution's only endpoint
	// is gone, so the invocation must re-resolve and land on b.
	a.Close()
	_, order, body, err = cli.InvokeNamed(context.Background(), src, "svc/echo",
		requestHeader(cli, "echo", "op"), nil)
	if err != nil {
		t.Fatalf("invocation lost despite re-resolution: %v", err)
	}
	if s, _ := cdr.NewDecoderAt(order, body, 8).String(); s != "replica-b" {
		t.Fatalf("reply from %q, want replica-b", s)
	}
	src.mu.Lock()
	inv := src.invalidatons
	src.mu.Unlock()
	if inv != 1 {
		t.Fatalf("invalidations = %d, want exactly 1", inv)
	}
}

// TestFaultNamedResolutionRoundsBounded: a name whose every resolution
// is dead fails after maxResolveRounds rounds instead of spinning.
func TestFaultNamedResolutionRoundsBounded(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	src := &scriptedSource{refs: []*ior.Ref{
		{TypeID: "t", Key: "echo", Threads: 1, Endpoints: []string{"inproc:nowhere"}},
	}}
	cli := NewClient(reg, WithRetryPolicy(RetryPolicy{MaxAttempts: 2,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}))
	defer cli.Close()

	_, _, _, err := cli.InvokeNamed(context.Background(), src, "svc/echo",
		requestHeader(cli, "echo", "op"), nil)
	if err == nil || !strings.Contains(err.Error(), "resolutions") {
		t.Fatalf("err = %v, want bounded-resolutions failure", err)
	}
	src.mu.Lock()
	inv := src.invalidatons
	src.mu.Unlock()
	if inv != maxResolveRounds {
		t.Fatalf("invalidations = %d, want %d", inv, maxResolveRounds)
	}
}
