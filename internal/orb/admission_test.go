package orb

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/transport"
)

// newAdmissionServer starts a server with the given admission caps and
// a "work" handler that parks for each received request until the
// returned release channel is closed (or replies after holdFor when
// the channel is nil).
func newAdmissionServer(t *testing.T, cfg AdmissionConfig, holdFor time.Duration) (*Server, string, *transport.Registry) {
	t.Helper()
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg, WithAdmission(cfg))
	srv.Handle("work", func(in *Incoming) {
		if holdFor > 0 {
			time.Sleep(holdFor)
		}
		_ = in.Reply(giop.ReplyOK, nil)
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, ep, reg
}

// TestAdmissionCapsConcurrency: with MaxConcurrent = 2 and a deep
// queue, a 16-way client burst completes fully while the server never
// runs more than two handlers at once.
func TestAdmissionCapsConcurrency(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg, WithAdmission(AdmissionConfig{
		MaxConcurrent: 2, MaxQueue: 64, MaxWait: 10 * time.Second}))
	var cur, peak atomic.Int64
	srv.Handle("work", func(in *Incoming) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		_ = in.Reply(giop.ReplyOK, nil)
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(reg)
	defer cli.Close()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, _, err := cli.Invoke(context.Background(), ep,
				requestHeader(cli, "work", "op"), nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("handler concurrency peaked at %d, cap 2", p)
	}
	st := srv.AdmissionStats()
	if st.Queued != 0 {
		t.Fatalf("queue did not drain: %+v", st)
	}
}

// TestAdmissionQueueFullShedsTransient: a request beyond both the
// concurrency cap and the queue bound is shed immediately with a
// TRANSIENT verdict (mapped to the retryable ErrTransient), and the
// requests already admitted or queued still complete.
func TestAdmissionQueueFullShedsTransient(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg, WithAdmission(AdmissionConfig{
		MaxConcurrent: 1, MaxQueue: 1, MaxWait: 30 * time.Second}))
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	srv.Handle("work", func(in *Incoming) {
		started <- struct{}{}
		<-release
		_ = in.Reply(giop.ReplyOK, nil)
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(reg)
	defer cli.Close()

	errs := make(chan error, 2)
	invoke := func() {
		_, _, _, err := cli.Invoke(context.Background(), ep,
			requestHeader(cli, "work", "op"), nil)
		errs <- err
	}
	go invoke() // occupies the slot
	<-started
	go invoke() // occupies the queue
	deadline := time.Now().Add(5 * time.Second)
	for srv.AdmissionStats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if !srv.AdmissionSaturated() {
		t.Fatal("AdmissionSaturated() = false with the queue at its bound")
	}

	// The third request finds slot and queue full: immediate shed.
	_, _, _, err = cli.Invoke(context.Background(), ep,
		requestHeader(cli, "work", "op"), nil)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("over-capacity request: want ErrTransient, got %v", err)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("admitted request %d failed: %v", i, err)
		}
	}
	if st := srv.AdmissionStats(); st.Queued != 0 {
		t.Fatalf("queue did not drain: %+v", st)
	}
}

// TestCancelRequestCancelsInflightHandler is the cancellation e2e
// regression: a client-side context cancel must reach the running
// handler as Incoming.Ctx cancellation (via MsgCancelRequest), with
// context.Canceled as the cause.
func TestCancelRequestCancelsInflightHandler(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg)
	started := make(chan struct{})
	observed := make(chan error, 1)
	srv.Handle("hang", func(in *Incoming) {
		close(started)
		<-in.Ctx.Done()
		observed <- in.Ctx.Err()
		_ = in.Reply(giop.ReplyOK, nil)
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(reg)
	defer cli.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, _, err := cli.Invoke(ctx, ep, requestHeader(cli, "hang", "op"), nil)
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, ErrCanceled) {
		t.Fatalf("invoke after cancel: want ErrCanceled, got %v", err)
	}
	select {
	case err := <-observed:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("handler context ended with %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler never observed the cancellation")
	}
}

// TestCancelRequestCancelsQueuedRequest: MsgCancelRequest must reach a
// request still waiting in the admission queue — it leaves the queue
// silently and its handler never runs.
func TestCancelRequestCancelsQueuedRequest(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg, WithAdmission(AdmissionConfig{
		MaxConcurrent: 1, MaxQueue: 4, MaxWait: 30 * time.Second}))
	release := make(chan struct{})
	var handlerRuns atomic.Int64
	srv.Handle("work", func(in *Incoming) {
		handlerRuns.Add(1)
		<-release
		_ = in.Reply(giop.ReplyOK, nil)
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(reg)
	defer cli.Close()

	first := make(chan error, 1)
	go func() {
		_, _, _, err := cli.Invoke(context.Background(), ep,
			requestHeader(cli, "work", "op"), nil)
		first <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for handlerRuns.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	second := make(chan error, 1)
	go func() {
		_, _, _, err := cli.Invoke(ctx, ep, requestHeader(cli, "work", "op"), nil)
		second <- err
	}()
	for srv.AdmissionStats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-second; !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled queued invoke: want ErrCanceled, got %v", err)
	}
	for srv.AdmissionStats().Queued != 0 {
		if time.Now().After(deadline) {
			t.Fatal("canceled request never left the queue")
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	if err := <-first; err != nil {
		t.Fatalf("first request failed: %v", err)
	}
	// The canceled request's handler must never have run.
	if n := handlerRuns.Load(); n != 1 {
		t.Fatalf("handler ran %d times, want 1 (canceled request dispatched)", n)
	}
}

// TestOldPeerInteropLiveServer pins PIOP 1.0 <-> 1.1 interop against a
// live admission-controlled server: a raw peer framing its request at
// minor version 0 (no trace, no deadline bytes after ThreadCount) gets
// a normal OK reply.
func TestOldPeerInteropLiveServer(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg, WithAdmission(DefaultAdmissionConfig()))
	srv.Handle("echo", func(in *Incoming) {
		s, err := in.Decoder().String()
		if err != nil {
			_ = in.ReplySystemException("MARSHAL", err.Error())
			return
		}
		if !in.Expiry.IsZero() {
			_ = in.ReplySystemException("BAD_PARAM", "1.0 request grew a deadline")
			return
		}
		_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) { e.PutString("old:" + s) })
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raw, err := reg.Dial(ep)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	h := giop.RequestHeader{
		RequestID:        7,
		InvocationID:     42,
		ResponseExpected: true,
		ObjectKey:        "echo",
		Operation:        "op",
		ThreadRank:       -1,
		ThreadCount:      1,
	}
	e := cdr.NewEncoder(cdr.BigEndian)
	h.EncodeV10(e)
	e.PutString("ping")
	var buf bytes.Buffer
	if err := giop.WriteMessage(&buf, cdr.BigEndian, giop.MsgRequest, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[5] = 0 // a true 1.0 peer stamps minor version 0
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}

	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	mt, order, body, err := giop.ReadMessage(raw)
	if err != nil {
		t.Fatalf("no reply for the 1.0 request: %v", err)
	}
	if mt != giop.MsgReply {
		t.Fatalf("reply type = %v", mt)
	}
	d := cdr.NewDecoder(order, body)
	rh, err := giop.DecodeReplyHeader(d)
	if err != nil {
		t.Fatal(err)
	}
	if rh.RequestID != 7 || rh.Status != giop.ReplyOK {
		t.Fatalf("reply = %+v, want OK for id 7", rh)
	}
	s, err := d.String()
	if err != nil || s != "old:ping" {
		t.Fatalf("reply body = %q, %v", s, err)
	}
}

// TestFaultAdmissionSaturatingBurst is the overload acceptance
// scenario: a saturating burst of short-deadline requests against a
// tightly capped server may only end in timeout/transient-class
// verdicts (never a deadlock, never queue growth beyond the bound),
// while concurrent long-deadline requests with retry all complete.
func TestFaultAdmissionSaturatingBurst(t *testing.T) {
	srv, ep, reg := newAdmissionServer(t, AdmissionConfig{
		MaxConcurrent: 2, MaxPerConn: 2, MaxQueue: 4, MaxWait: 50 * time.Millisecond,
	}, 2*time.Millisecond)

	var wg sync.WaitGroup
	var ok, shed atomic.Int64
	unexpected := make(chan error, 80)

	// Short-deadline population: 4 clients x 10 requests, 1-5ms
	// budgets, no retries. Each must finish fast with a clean verdict.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli := NewClient(reg)
			defer cli.Close()
			for i := 0; i < 10; i++ {
				d := time.Duration(1+(c+i)%5) * time.Millisecond
				ctx, cancel := context.WithTimeout(context.Background(), d)
				_, _, _, err := cli.Invoke(ctx, ep, requestHeader(cli, "work", "op"), nil)
				cancel()
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrTransient),
					errors.Is(err, ErrDeadlineExpired),
					// The client's own timer can win the race against the
					// server's shed reply; that local loss surfaces as
					// ErrCanceled wrapping the context error.
					errors.Is(err, ErrCanceled),
					errors.Is(err, context.DeadlineExceeded):
					shed.Add(1)
				default:
					unexpected <- err
				}
			}
		}(c)
	}

	// Long-deadline population: generous budget and retry — every one
	// must complete despite the burst.
	var longFailed atomic.Int64
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli := NewClient(reg, WithRetryPolicy(RetryPolicy{
				MaxAttempts: 100, BaseBackoff: time.Millisecond,
				MaxBackoff: 5 * time.Millisecond, Multiplier: 2}))
			defer cli.Close()
			for i := 0; i < 10; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				_, _, _, err := cli.Invoke(ctx, ep, requestHeader(cli, "work", "op"), nil)
				cancel()
				if err != nil {
					longFailed.Add(1)
					unexpected <- err
				}
			}
		}()
	}
	wg.Wait()
	close(unexpected)
	for err := range unexpected {
		t.Errorf("verdict outside the overload contract: %v", err)
	}
	if n := longFailed.Load(); n != 0 {
		t.Fatalf("%d long-deadline requests failed under the burst", n)
	}
	t.Logf("short population: %d completed, %d shed/expired", ok.Load(), shed.Load())

	// The gate must drain completely — no slot or ticket leaks.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.AdmissionStats()
		if st.Queued == 0 && st.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission gate did not drain: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}
