package orb

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/ior"
	"pardis/internal/telemetry"
	"pardis/internal/transport"
)

// Client is the invocation side of the ORB. It stripes each endpoint
// across a small pool of cached connections (grown on demand up to the
// configured width), multiplexes concurrent requests over each, and
// routes inbound block transfers (out-arguments of multi-port
// invocations) to the engines expecting them. A Client is safe for
// concurrent use.
//
// Invocations are fault-tolerant to the extent the configured
// RetryPolicy allows: failures inside the safe-to-retry window are
// re-issued with exponential backoff, rotating across the endpoints
// offered to InvokeRef, steered by a per-endpoint circuit breaker.
type Client struct {
	reg   *transport.Registry
	order cdr.ByteOrder

	retry       RetryPolicy
	deadline    time.Duration // default per-invoke deadline (0 = none)
	health      *healthTable
	stripeWidth int                       // max connections per endpoint
	stripeCap   func(endpoint string) int // dynamic ceiling (nil/<=0 = stripeWidth)

	mu      sync.Mutex
	stripes map[string]*stripe
	closed  bool

	invPrefix  uint64
	invCounter atomic.Uint64
	blocks     *blockRouter

	// Interned-instrument caches: the telemetry registry's lookup
	// builds a label key per call, which is too hot for the invoke
	// path, so instruments are resolved once per op / endpoint.
	opMetrics sync.Map // operation → *clientOpMetrics
	epHists   sync.Map // endpoint → *telemetry.Histogram (attempt latency)
}

// clientOpMetrics holds the per-operation instruments the invoke path
// touches on every call.
type clientOpMetrics struct {
	invokes   *telemetry.Counter
	errors    *telemetry.Counter
	deadlines *telemetry.Counter
	retries   *telemetry.Counter
	latency   *telemetry.Histogram
}

func (c *Client) opMetricsFor(op string) *clientOpMetrics {
	if m, ok := c.opMetrics.Load(op); ok {
		return m.(*clientOpMetrics)
	}
	m := &clientOpMetrics{
		invokes:   telemetry.Default.Counter("pardis_client_invokes_total", "op", op),
		errors:    telemetry.Default.Counter("pardis_client_invoke_errors_total", "op", op),
		deadlines: telemetry.Default.Counter("pardis_client_deadline_misses_total", "op", op),
		retries:   telemetry.Default.Counter("pardis_client_retries_total", "op", op),
		latency:   telemetry.Default.Histogram("pardis_client_invoke_seconds", "op", op),
	}
	actual, _ := c.opMetrics.LoadOrStore(op, m)
	return actual.(*clientOpMetrics)
}

func (c *Client) attemptHist(ep string) *telemetry.Histogram {
	if h, ok := c.epHists.Load(ep); ok {
		return h.(*telemetry.Histogram)
	}
	h := telemetry.Default.Histogram("pardis_client_attempt_seconds", "endpoint", ep)
	actual, _ := c.epHists.LoadOrStore(ep, h)
	return actual.(*telemetry.Histogram)
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithByteOrder sets the byte order the client marshals in.
func WithByteOrder(o cdr.ByteOrder) ClientOption {
	return func(c *Client) { c.order = o }
}

// WithRetryPolicy enables transparent retry of invocations that
// failed inside the safe-to-retry window.
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// WithDefaultDeadline applies a deadline to every invocation whose
// context does not already carry one, so a hung or partitioned server
// cannot block Invoke forever.
func WithDefaultDeadline(d time.Duration) ClientOption {
	return func(c *Client) { c.deadline = d }
}

// WithBreaker tunes the endpoint circuit breaker: an endpoint is
// marked down after threshold consecutive transport failures and
// skipped by failover for cooldown, after which a single half-open
// probe decides whether it is back.
func WithBreaker(threshold int, cooldown time.Duration) ClientOption {
	return func(c *Client) { c.health = newHealthTable(threshold, cooldown) }
}

// DefaultStripeWidth is the per-endpoint connection-pool width used
// when WithStripes is not given: enough parallelism to stop concurrent
// invokes serializing on one write lock and read loop, without
// flooding servers with sockets.
func DefaultStripeWidth() int {
	if n := runtime.GOMAXPROCS(0); n < 4 {
		return n
	}
	return 4
}

// WithStripes sets how many connections the client may open per
// endpoint. Connections are added lazily: a serial caller stays on
// one, and a new stripe connection is dialed only when every existing
// one is busy. Values below 1 are clamped to 1 (the pre-striping
// single-connection behavior).
func WithStripes(n int) ClientOption {
	return func(c *Client) {
		if n < 1 {
			n = 1
		}
		c.stripeWidth = n
	}
}

// WithStripeCap installs a dynamic per-endpoint stripe ceiling: before
// each growth decision, conn consults cap(endpoint) and may open
// connections past the static width up to that value (a return <= 0
// means "no opinion" and the static width applies). Growth stays lazy —
// a new connection is still dialed only when every existing one is
// busy — so a larger cap costs nothing on an idle path. The self-tuning
// transport uses this to let its stripe recommendation take effect
// without rebuilding clients.
func WithStripeCap(capFn func(endpoint string) int) ClientOption {
	return func(c *Client) { c.stripeCap = capFn }
}

// NewClient creates a client using the given transport registry (nil
// means transport.Default).
func NewClient(reg *transport.Registry, opts ...ClientOption) *Client {
	if reg == nil {
		reg = transport.Default
	}
	c := &Client{
		reg:         reg,
		order:       cdr.BigEndian,
		health:      newHealthTable(0, 0),
		stripeWidth: DefaultStripeWidth(),
		stripes:     make(map[string]*stripe),
		blocks:      newBlockRouter(),
	}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		// 24 random bits at positions 32-55: invocation ids stay
		// within giop.MaxBlockInvocationID so block sink keys
		// (inv<<8|arg) never truncate the prefix.
		c.invPrefix = binary.BigEndian.Uint64(seed[:]) & 0x00FFFFFF_00000000
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Order returns the byte order the client marshals in.
func (c *Client) Order() cdr.ByteOrder { return c.order }

// EndpointUp reports whether the client's health table currently
// believes endpoint is reachable (its circuit breaker is not open).
// Unknown endpoints are presumed up.
func (c *Client) EndpointUp(endpoint string) bool { return c.health.up(endpoint) }

// Health returns a snapshot of the per-endpoint circuit-breaker
// states, keyed by endpoint.
func (c *Client) Health() map[string]EndpointState { return c.health.snapshot() }

// NewInvocationID allocates an invocation id unique across this
// client process (random 24-bit prefix + 32-bit counter, always
// within giop.MaxBlockInvocationID).
func (c *Client) NewInvocationID() uint64 {
	return c.invPrefix | (c.invCounter.Add(1) & 0xFFFFFFFF)
}

// ExpectBlocks registers a sink for block transfers addressed to this
// client under the given invocation id. The channel must have
// capacity for the whole expected plan. The returned cancel must be
// called when the transfer completes.
func (c *Client) ExpectBlocks(inv uint64, ch chan<- Block) (func(), error) {
	return c.blocks.register(inv, ch)
}

// ExpectBlocksFunc registers a callback sink: blocks for inv are
// handed to fn directly on the delivering connection's read goroutine.
// fn may run concurrently (one call per delivering connection) and
// must not block; returning an error tears down that connection.
func (c *Client) ExpectBlocksFunc(inv uint64, fn func(Block) error) (func(), error) {
	return c.blocks.registerFunc(inv, fn)
}

// BlockStats reports the client block router's sink/pending counts.
func (c *Client) BlockStats() BlockRouterStats { return c.blocks.stats() }

// stripe is one endpoint's small pool of connections. Concurrent
// invocations spread across its members by outstanding-request depth,
// so they stop contending on a single write lock and read loop.
type stripe struct {
	endpoint string
	conns    []*clientConn
	gauge    *telemetry.Gauge // pardis_client_stripe_conns{endpoint}
}

// freeSlot returns the smallest stripe index not held by a live
// connection, so the per-stripe depth gauges stay bounded by the
// stripe width however often connections churn.
func (st *stripe) freeSlot() int {
	for s := 0; ; s++ {
		used := false
		for _, cc := range st.conns {
			if cc.slot == s {
				used = true
				break
			}
		}
		if !used {
			return s
		}
	}
}

// conn returns a connection for endpoint from its stripe: the
// least-loaded live one, or — when every live connection is busy and
// the stripe has room — a freshly dialed one. Dial failures for the
// first connection are tagged ErrUnreachable (the request never left
// the process, so the retry layer may re-issue it freely); a failed
// growth dial falls back to the busiest-but-alive pick instead of
// failing the request.
func (c *Client) conn(endpoint string) (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	st := c.stripes[endpoint]
	if st == nil {
		st = &stripe{
			endpoint: endpoint,
			gauge:    telemetry.Default.Gauge("pardis_client_stripe_conns", "endpoint", endpoint),
		}
		c.stripes[endpoint] = st
	}
	var best *clientConn
	var bestDepth int64
	for _, cc := range st.conns {
		// Load = pending request/replies plus one-way sends in flight,
		// so pure block/put streams spread and grow stripes too.
		if d := cc.depth.Value() + cc.sending.Load(); best == nil || d < bestDepth {
			best, bestDepth = cc, d
		}
	}
	width := c.stripeWidth
	if c.stripeCap != nil {
		if w := c.stripeCap(endpoint); w > width {
			width = w
		}
	}
	if best != nil && (bestDepth == 0 || len(st.conns) >= width) {
		return best, nil
	}
	raw, err := c.reg.Dial(endpoint)
	if err != nil {
		if best != nil {
			return best, nil
		}
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, endpoint, err)
	}
	slot := st.freeSlot()
	cc := &clientConn{
		owner:    c,
		endpoint: endpoint,
		slot:     slot,
		raw:      raw,
		pending:  make(map[uint32]chan reply),
		depth: telemetry.Default.Gauge("pardis_client_stripe_depth",
			"endpoint", endpoint, "stripe", strconv.Itoa(slot)),
	}
	st.conns = append(st.conns, cc)
	st.gauge.Set(int64(len(st.conns)))
	go cc.readLoop()
	return cc, nil
}

// dropConn removes a dead connection from its stripe.
func (c *Client) dropConn(cc *clientConn) {
	c.mu.Lock()
	if st := c.stripes[cc.endpoint]; st != nil {
		for i, other := range st.conns {
			if other == cc {
				st.conns = append(st.conns[:i], st.conns[i+1:]...)
				break
			}
		}
		st.gauge.Set(int64(len(st.conns)))
		if len(st.conns) == 0 {
			delete(c.stripes, cc.endpoint)
		}
	}
	c.mu.Unlock()
}

// maxForwards bounds LOCATION_FORWARD chains.
const maxForwards = 4

// Invoke sends a request to endpoint and, unless the header marks it
// oneway, waits for the matching reply. The client assigns
// hdr.RequestID. body is the CDR-marshaled in-arguments, encoded in
// c.Order() starting at the offset right after the request header.
// Cancellation via ctx sends a CancelRequest and abandons the wait.
//
// Failures inside the safe-to-retry window are retried per the
// client's RetryPolicy, and the client's default deadline applies
// when ctx carries none.
//
// LOCATION_FORWARD replies are followed transparently (up to
// maxForwards hops, with cycle detection): the reply body carries a
// stringified IOR and the request is re-issued at the forwarded
// endpoints — the CORBA mechanism that lets objects migrate without
// breaking clients.
func (c *Client) Invoke(ctx context.Context, endpoint string, hdr giop.RequestHeader, body func(*cdr.Encoder)) (giop.ReplyHeader, cdr.ByteOrder, []byte, error) {
	return c.invokeEndpoints(ctx, []string{endpoint}, hdr, body, 0)
}

// InvokeRef invokes across all of a reference's failover endpoints:
// the attempt rotates to the next replica when one fails inside the
// safe-to-retry window, skipping endpoints whose circuit breaker is
// open. For SPMD references only the communicator endpoint is used.
func (c *Client) InvokeRef(ctx context.Context, ref *ior.Ref, hdr giop.RequestHeader, body func(*cdr.Encoder)) (giop.ReplyHeader, cdr.ByteOrder, []byte, error) {
	return c.invokeEndpoints(ctx, ref.FailoverEndpoints(), hdr, body, 0)
}

// invStats accumulates one logical invocation's attempt path — how
// many attempts ran, how often it hopped replicas, which endpoint
// answered (or failed last), and the sampled trace it rode — for the
// flight recorder and the latency exemplar.
type invStats struct {
	attempts  int
	failovers int
	endpoint  string
	traceID   uint64
}

// invokeEndpoints applies the default deadline, records the
// invocation's outcome and end-to-end latency (with a trace exemplar
// when sampled), offers the invocation to the flight recorder, and
// delegates to the forward-following engine. reresolves counts the
// InvokeNamed re-resolution rounds that preceded this call (0 for
// direct invokes).
func (c *Client) invokeEndpoints(ctx context.Context, endpoints []string, hdr giop.RequestHeader, body func(*cdr.Encoder), reresolves int) (giop.ReplyHeader, cdr.ByteOrder, []byte, error) {
	if len(endpoints) == 0 {
		return giop.ReplyHeader{}, 0, nil, fmt.Errorf("%w: no endpoints", ErrUnreachable)
	}
	if c.deadline > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.deadline)
			defer cancel()
		}
	}
	var deadlineRem time.Duration
	if dl, ok := ctx.Deadline(); ok {
		deadlineRem = time.Until(dl)
	}
	m := c.opMetricsFor(hdr.Operation)
	st := &invStats{}
	start := time.Now()
	rh, order, raw, err := c.invokeForward(ctx, endpoints, hdr, body, st)
	dur := time.Since(start)
	m.invokes.Inc()
	m.latency.ObserveDurationExemplar(dur, st.traceID)
	errStr := ""
	if err != nil {
		errStr = err.Error()
		m.errors.Inc()
		if errors.Is(err, ErrDeadlineExpired) ||
			(errors.Is(err, ErrCanceled) && errors.Is(ctx.Err(), context.DeadlineExceeded)) {
			m.deadlines.Inc()
		}
		if telemetry.LogEnabled(slog.LevelWarn) {
			telemetry.Logger().Warn("invoke failed", "op", hdr.Operation, "key", hdr.ObjectKey, "err", err)
		}
	}
	retries := st.attempts - 1
	if retries < 0 {
		retries = 0
	}
	telemetry.DefaultFlight.Record(telemetry.FlightRecord{
		Side: "client", Op: hdr.Operation, Key: hdr.ObjectKey,
		Endpoint: st.endpoint, Start: start, Duration: dur,
		Error: errStr, TraceID: st.traceID,
		Attempts: st.attempts, Retries: retries, Failovers: st.failovers,
		ReResolves: reresolves, DeadlineRemaining: deadlineRem,
	})
	return rh, order, raw, err
}

// invokeForward follows location forwards (bounded, cycle-checked),
// delegating each hop to the retry/failover engine.
func (c *Client) invokeForward(ctx context.Context, endpoints []string, hdr giop.RequestHeader, body func(*cdr.Encoder), st *invStats) (giop.ReplyHeader, cdr.ByteOrder, []byte, error) {
	seen := map[string]bool{endpoints[0]: true}
	for hop := 0; ; hop++ {
		rh, order, raw, err := c.invokeRetry(ctx, endpoints, hdr, body, st)
		if err != nil || rh.Status != giop.ReplyLocationForward {
			return rh, order, raw, err
		}
		if hop >= maxForwards {
			return rh, order, raw, fmt.Errorf("orb: too many location forwards (%d)", hop+1)
		}
		fwd, err := decodeForward(order, raw)
		if err != nil {
			return rh, order, raw, err
		}
		if seen[fwd[0]] {
			return rh, order, raw, fmt.Errorf("%w: %s seen twice after %d forwards",
				ErrForwardCycle, fwd[0], hop+1)
		}
		seen[fwd[0]] = true
		endpoints = fwd
	}
}

// invokeRetry runs the retry/backoff/failover loop for one logical
// request at one location (forward hops restart it).
func (c *Client) invokeRetry(ctx context.Context, endpoints []string, hdr giop.RequestHeader, body func(*cdr.Encoder), st *invStats) (giop.ReplyHeader, cdr.ByteOrder, []byte, error) {
	pol := c.retry
	attempts := pol.attempts()
	rotor := 0
	var lastErr error
	prevEp := ""
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if !pol.Budget.spend() {
				return giop.ReplyHeader{}, 0, nil,
					fmt.Errorf("orb: retry budget exhausted after %d attempts: %w", attempt-1, lastErr)
			}
			if err := sleepCtx(ctx, pol.backoff(attempt-1)); err != nil {
				return giop.ReplyHeader{}, 0, nil, fmt.Errorf("%w: %v (last error: %v)", ErrCanceled, err, lastErr)
			}
			c.opMetricsFor(hdr.Operation).retries.Inc()
		}
		ep := c.pickEndpoint(endpoints, rotor)
		if prevEp != "" && ep != prevEp {
			st.failovers++
			telemetry.Default.Counter("pardis_client_failovers_total").Inc()
			if telemetry.LogEnabled(slog.LevelInfo) {
				telemetry.Logger().Info("failing over",
					"op", hdr.Operation, "from", prevEp, "to", ep, "attempt", attempt)
			}
		}
		prevEp = ep
		st.attempts, st.endpoint = attempt, ep
		// Each attempt is its own span: the span's identity rides the
		// request header onto the wire, so the server's handler span
		// attaches under this exact attempt (not a sibling retry).
		attemptCtx := ctx
		var span *telemetry.Span
		if telemetry.TraceActive(ctx) {
			attemptCtx, span = telemetry.StartSpan(ctx, "client:"+hdr.Operation,
				telemetry.Attr{Key: "endpoint", Value: ep},
				telemetry.Attr{Key: "attempt", Value: strconv.Itoa(attempt)})
			if span != nil {
				st.traceID = span.TraceID
			}
		}
		attemptStart := time.Now()
		rh, order, raw, err := c.invokeOnce(attemptCtx, ep, hdr, body)
		c.attemptHist(ep).ObserveDuration(time.Since(attemptStart))
		if err == nil && rh.Status == giop.ReplySystemException {
			if ex, derr := giop.DecodeSystemException(cdr.NewDecoder(order, raw)); derr == nil {
				switch ex.Code {
				case "TRANSIENT":
					// A draining or overloaded server answers TRANSIENT:
					// treat it like a transport failure and move to
					// another replica.
					err = fmt.Errorf("%w: %s: %s", ErrTransient, ep, ex.Detail)
				case "TIMEOUT":
					// The server shed the request because the propagated
					// deadline expired. ErrDeadlineExpired is not
					// retryable — the budget is gone everywhere, not just
					// at that replica — so the loop returns it below.
					err = fmt.Errorf("%w: %s: %s", ErrDeadlineExpired, ep, ex.Detail)
				}
			}
		}
		if err != nil {
			span.Annotate("error", err.Error())
		}
		span.End()
		if err == nil {
			c.health.onSuccess(ep)
			pol.Budget.onSuccess()
			return rh, order, raw, nil
		}
		if retryable(err) {
			c.health.onFailure(ep, err)
		}
		if !retryable(err) || ctx.Err() != nil {
			return giop.ReplyHeader{}, 0, nil, err
		}
		lastErr = err
		rotor++ // prefer a different replica on the next attempt
	}
	if attempts > 1 {
		return giop.ReplyHeader{}, 0, nil,
			fmt.Errorf("orb: %d attempts across %d endpoints failed: %w", attempts, len(endpoints), lastErr)
	}
	return giop.ReplyHeader{}, 0, nil, lastErr
}

// pickEndpoint chooses the attempt's endpoint: the first one from
// position start (wrapping) whose breaker admits traffic, or — when
// every breaker is open — the nominal choice anyway, as a forced
// probe beats certain failure.
func (c *Client) pickEndpoint(endpoints []string, start int) string {
	n := len(endpoints)
	for i := 0; i < n; i++ {
		ep := endpoints[(start+i)%n]
		if c.health.allow(ep) {
			return ep
		}
	}
	return endpoints[start%n]
}

// decodeForward extracts the forwarded failover endpoints from a
// LOCATION_FORWARD reply body (a stringified IOR).
func decodeForward(order cdr.ByteOrder, body []byte) ([]string, error) {
	d := cdr.NewDecoderAt(order, body, 8)
	s, err := d.String()
	if err != nil {
		return nil, fmt.Errorf("orb: undecodable forward body: %w", err)
	}
	ref, err := ior.Parse(s)
	if err != nil {
		return nil, fmt.Errorf("orb: forward carries bad IOR: %w", err)
	}
	return ref.FailoverEndpoints(), nil
}

func (c *Client) invokeOnce(ctx context.Context, endpoint string, hdr giop.RequestHeader, body func(*cdr.Encoder)) (giop.ReplyHeader, cdr.ByteOrder, []byte, error) {
	cc, err := c.conn(endpoint)
	if err != nil {
		return giop.ReplyHeader{}, 0, nil, err
	}
	hdr.RequestID = cc.nextID.Add(1)
	// The attempt's trace identity (if any) rides the request header,
	// so the server continues this trace rather than rooting its own.
	hdr.Trace = telemetry.TraceFromContext(ctx)
	// So does the remaining deadline budget, as a relative duration
	// (immune to clock skew): the server rebases it on arrival, runs
	// the handler under it, and sheds the request outright when the
	// budget is already gone. An exhausted budget is stamped as one
	// microsecond rather than zero — zero means "no deadline".
	if dl, has := ctx.Deadline(); has {
		if rem := time.Until(dl); rem > 0 {
			hdr.DeadlineMicros = uint64(rem / time.Microsecond)
		}
		if hdr.DeadlineMicros == 0 {
			hdr.DeadlineMicros = 1
		}
	}

	// The request is marshaled into a pooled encoder, released as soon
	// as the frame write has consumed the bytes.
	e := giop.AcquireEncoder(c.order)
	hdr.Encode(e.Encoder)
	if body != nil {
		body(e.Encoder)
	}

	if !hdr.ResponseExpected {
		err := cc.write(giop.MsgRequest, e.Bytes())
		e.Release()
		if err != nil {
			return giop.ReplyHeader{}, 0, nil, err
		}
		return giop.ReplyHeader{RequestID: hdr.RequestID, Status: giop.ReplyOK}, c.order, nil, nil
	}

	ch := make(chan reply, 1)
	cc.addPending(hdr.RequestID, ch)
	defer cc.removePending(hdr.RequestID)

	werr := cc.write(giop.MsgRequest, e.Bytes())
	e.Release()
	if werr != nil {
		return giop.ReplyHeader{}, 0, nil, werr
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return giop.ReplyHeader{}, 0, nil, r.err
		}
		return r.hdr, r.order, r.body, nil
	case <-ctx.Done():
		// Best-effort cancel through the connection's preallocated
		// cancel frame; the reply, if it still comes, is discarded by
		// removePending.
		_ = cc.sendCancel(hdr.RequestID)
		// A deadline expiring with nothing framed back is a strike
		// against the connection — connDeadlineStrikes of them in a row
		// and it is evicted so the next attempt redials instead of
		// reusing a flow a one-way partition may have silently killed.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) &&
			cc.strikes.Add(1) >= connDeadlineStrikes {
			connEvictions.Inc()
			cc.shutdown(fmt.Errorf("%w: evicted after %d consecutive deadline misses",
				ErrConnectionLost, connDeadlineStrikes))
		}
		return giop.ReplyHeader{}, 0, nil, fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
}

// SendBlock ships one block-transfer message to endpoint. payload is
// encoded by the callback at the correct stream offset. It returns the
// number of encoded payload bytes (the body minus the transfer
// header), so callers can account actual wire traffic for any element
// type.
func (c *Client) SendBlock(endpoint string, hdr giop.BlockTransferHeader, payload func(*cdr.Encoder)) (int, error) {
	cc, err := c.conn(endpoint)
	if err != nil {
		return 0, err
	}
	cc.sending.Add(1)
	defer cc.sending.Add(-1)
	e := giop.AcquireEncoder(c.order)
	hdr.Encode(e.Encoder)
	hdrLen := e.Len()
	if payload != nil {
		payload(e.Encoder)
	}
	n := e.Len() - hdrLen
	err = cc.write(giop.MsgBlockTransfer, e.Bytes())
	e.Release()
	return n, err
}

// PutWindow ships one one-sided window put to endpoint. The header
// comes from a pooled encoder; on the native-byte-order path the
// element payload gather-writes straight from blk (one writev, zero
// copies into frame buffers), so blk must stay unmodified until
// PutWindow returns. Count is taken from len(blk), keeping header and
// payload consistent by construction. Returns the payload byte count.
func (c *Client) PutWindow(endpoint string, hdr giop.WindowPutHeader, blk []float64) (int, error) {
	cc, err := c.conn(endpoint)
	if err != nil {
		return 0, err
	}
	cc.sending.Add(1)
	defer cc.sending.Add(-1)
	hdr.Count = uint32(len(blk))
	e := giop.AcquireEncoder(c.order)
	hdr.Encode(e.Encoder)
	n := len(blk) * 8
	if c.order == cdr.NativeOrder {
		err = cc.writeTail(giop.MsgWindowPut, e.Bytes(), cdr.Float64Bytes(blk))
	} else {
		e.PutDoubles(blk)
		err = cc.write(giop.MsgWindowPut, e.Bytes())
	}
	e.Release()
	return n, err
}

// Locate asks whether endpoint serves the object key, returning the
// locate status and, for LocateForward, the stringified IOR to retry.
func (c *Client) Locate(ctx context.Context, endpoint, key string) (giop.LocateStatus, string, error) {
	cc, err := c.conn(endpoint)
	if err != nil {
		return 0, "", err
	}
	id := cc.nextID.Add(1)
	e := giop.AcquireEncoder(c.order)
	(&giop.LocateRequestHeader{RequestID: id, ObjectKey: key}).Encode(e.Encoder)

	ch := make(chan reply, 1)
	cc.addPending(id, ch)
	defer cc.removePending(id)
	werr := cc.write(giop.MsgLocateRequest, e.Bytes())
	e.Release()
	if werr != nil {
		return 0, "", werr
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return 0, "", r.err
		}
		d := cdr.NewDecoder(r.order, r.body)
		lh, err := giop.DecodeLocateReplyHeader(d)
		if err != nil {
			return 0, "", err
		}
		fwd := ""
		if lh.Status == giop.LocateForward {
			if fwd, err = d.String(); err != nil {
				return 0, "", err
			}
		}
		return lh.Status, fwd, nil
	case <-ctx.Done():
		return 0, "", fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
}

// Close shuts down every cached connection. In-flight invocations
// fail with ErrConnectionLost.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*clientConn, 0, len(c.stripes))
	for _, st := range c.stripes {
		conns = append(conns, st.conns...)
	}
	c.stripes = make(map[string]*stripe)
	c.mu.Unlock()
	for _, cc := range conns {
		cc.shutdown(ErrClosed)
	}
	return nil
}

// reply is what the read loop hands back to a waiting invoker.
type reply struct {
	hdr   giop.ReplyHeader
	order cdr.ByteOrder
	body  []byte
	err   error
}

// clientConn is one stripe member: a cached connection with a reader
// goroutine and an outstanding-request depth gauge the stripe's
// least-loaded pick reads.
// connDeadlineStrikes is how many consecutive deadline-expired waits
// (with no reply delivered in between) a pooled connection survives
// before it is evicted as suspect. A one-way partition — writes
// swallowed, nothing framed back, the socket itself never erroring —
// would otherwise wedge the pool: every later invoke reuses the dead
// connection and pays a full timeout, forever. Three strikes tolerate
// a genuinely slow server (any reply resets the count) while bounding
// how long a blackholed flow can haunt an endpoint.
const connDeadlineStrikes = 3

var connEvictions = telemetry.Default.Counter("pardis_client_conn_evictions_total")

type clientConn struct {
	owner    *Client
	endpoint string
	slot     int // stripe index, stable for this connection's lifetime
	raw      transport.Conn
	nextID   atomic.Uint32
	depth    *telemetry.Gauge // pardis_client_stripe_depth{endpoint,stripe}
	sending  atomic.Int64     // one-way writes (block/put) in flight
	strikes  atomic.Int32     // consecutive deadline misses, reset by any reply

	writeMu   sync.Mutex
	cancelBuf [4]byte // preallocated CancelRequest body, guarded by writeMu

	mu      sync.Mutex
	pending map[uint32]chan reply
	dead    bool
}

func (cc *clientConn) write(t giop.MsgType, body []byte) error {
	cc.writeMu.Lock()
	defer cc.writeMu.Unlock()
	if err := giop.WriteMessage(cc.raw, cc.owner.order, t, body); err != nil {
		cc.shutdown(fmt.Errorf("%w: %v", ErrConnectionLost, err))
		return fmt.Errorf("%w: %v", ErrConnectionLost, err)
	}
	return nil
}

// writeTail frames head+tail as one message under the write lock; see
// giop.WriteMessageTail.
func (cc *clientConn) writeTail(t giop.MsgType, head, tail []byte) error {
	cc.writeMu.Lock()
	defer cc.writeMu.Unlock()
	if err := giop.WriteMessageTail(cc.raw, cc.owner.order, t, head, tail); err != nil {
		cc.shutdown(fmt.Errorf("%w: %v", ErrConnectionLost, err))
		return fmt.Errorf("%w: %v", ErrConnectionLost, err)
	}
	return nil
}

// sendCancel writes a CancelRequest for id through the connection's
// preallocated single-ULong body (wire-identical to encoding a
// CancelRequestHeader), so the cancel path — usually taken under
// deadline pressure — allocates nothing.
func (cc *clientConn) sendCancel(id uint32) error {
	cc.writeMu.Lock()
	defer cc.writeMu.Unlock()
	if cc.owner.order == cdr.BigEndian {
		binary.BigEndian.PutUint32(cc.cancelBuf[:], id)
	} else {
		binary.LittleEndian.PutUint32(cc.cancelBuf[:], id)
	}
	if err := giop.WriteMessage(cc.raw, cc.owner.order, giop.MsgCancelRequest, cc.cancelBuf[:]); err != nil {
		cc.shutdown(fmt.Errorf("%w: %v", ErrConnectionLost, err))
		return fmt.Errorf("%w: %v", ErrConnectionLost, err)
	}
	return nil
}

func (cc *clientConn) addPending(id uint32, ch chan reply) {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		ch <- reply{err: ErrConnectionLost}
		return
	}
	cc.pending[id] = ch
	cc.depth.Inc()
	cc.mu.Unlock()
}

// takePending removes and returns the waiter for id. The depth gauge
// is decremented only when an entry was actually removed, so the read
// loop and the invoker's deferred removePending cannot double-count.
func (cc *clientConn) takePending(id uint32) (chan reply, bool) {
	cc.mu.Lock()
	ch, ok := cc.pending[id]
	if ok {
		delete(cc.pending, id)
		cc.depth.Dec()
	}
	cc.mu.Unlock()
	return ch, ok
}

func (cc *clientConn) removePending(id uint32) {
	cc.takePending(id)
}

// shutdown closes the socket and fails all waiters exactly once.
func (cc *clientConn) shutdown(cause error) {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return
	}
	cc.dead = true
	waiters := cc.pending
	cc.pending = make(map[uint32]chan reply)
	if n := len(waiters); n > 0 {
		cc.depth.Add(-int64(n))
	}
	cc.mu.Unlock()
	cc.raw.Close()
	cc.owner.dropConn(cc)
	for _, ch := range waiters {
		select {
		case ch <- reply{err: cause}:
		default:
		}
	}
}

func (cc *clientConn) readLoop() {
	// A FrameReader buffers the socket so a header+body pair costs one
	// raw Read in the common case. Reply/LocateReply/BlockTransfer
	// bodies transfer ownership out of the loop (never pooled), so
	// slicing them into reply/Block values is safe; control-frame
	// bodies are released back to the frame pool here.
	fr := giop.NewFrameReader(cc.raw)
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			cc.shutdown(fmt.Errorf("%w: %v", ErrConnectionLost, err))
			return
		}
		switch f.Type {
		case giop.MsgReply:
			d := cdr.NewDecoder(f.Order, f.Body)
			rh, err := giop.DecodeReplyHeader(d)
			if err != nil {
				cc.shutdown(fmt.Errorf("%w: bad reply header: %v", ErrConnectionLost, err))
				return
			}
			cc.strikes.Store(0) // the flow demonstrably delivers replies
			if ch, ok := cc.takePending(rh.RequestID); ok {
				ch <- reply{hdr: rh, order: f.Order, body: f.Body[d.Pos():]}
			}
		case giop.MsgLocateReply:
			// LocateReply shares the pending table; the request id
			// is the header's first field in both layouts.
			d := cdr.NewDecoder(f.Order, f.Body)
			id, err := d.ULong()
			if err != nil {
				cc.shutdown(fmt.Errorf("%w: bad locate reply: %v", ErrConnectionLost, err))
				return
			}
			if ch, ok := cc.takePending(id); ok {
				ch <- reply{order: f.Order, body: f.Body}
			}
		case giop.MsgBlockTransfer:
			d := cdr.NewDecoder(f.Order, f.Body)
			bh, err := giop.DecodeBlockTransferHeader(d)
			if err != nil {
				cc.shutdown(fmt.Errorf("%w: bad block header: %v", ErrConnectionLost, err))
				return
			}
			blk := Block{Header: bh, Order: f.Order, Payload: f.Body[d.Pos():]}
			if err := cc.owner.blocks.deliver(blk); err != nil {
				cc.shutdown(err)
				return
			}
		case giop.MsgCloseConnection:
			// Orderly shutdown: the server promises it processed
			// nothing further, so waiters may re-issue elsewhere.
			f.Release()
			cc.shutdown(ErrServerClosed)
			return
		case giop.MsgError:
			f.Release()
			cc.shutdown(ErrConnectionLost)
			return
		default:
			// Requests arriving at a client connection are a
			// protocol violation.
			f.Release()
			cc.shutdown(fmt.Errorf("%w: unexpected %v on client connection", ErrConnectionLost, f.Type))
			return
		}
	}
}
