package orb

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/ior"
	"pardis/internal/transport"
)

// Client is the invocation side of the ORB. It caches one connection
// per endpoint, multiplexes concurrent requests over each, and routes
// inbound block transfers (out-arguments of multi-port invocations) to
// the engines expecting them. A Client is safe for concurrent use.
type Client struct {
	reg   *transport.Registry
	order cdr.ByteOrder

	mu     sync.Mutex
	conns  map[string]*clientConn
	closed bool

	invPrefix  uint64
	invCounter atomic.Uint64
	blocks     *blockRouter
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithByteOrder sets the byte order the client marshals in.
func WithByteOrder(o cdr.ByteOrder) ClientOption {
	return func(c *Client) { c.order = o }
}

// NewClient creates a client using the given transport registry (nil
// means transport.Default).
func NewClient(reg *transport.Registry, opts ...ClientOption) *Client {
	if reg == nil {
		reg = transport.Default
	}
	c := &Client{
		reg:    reg,
		order:  cdr.BigEndian,
		conns:  make(map[string]*clientConn),
		blocks: newBlockRouter(),
	}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		c.invPrefix = binary.BigEndian.Uint64(seed[:]) &^ 0xFFFFFFFF
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Order returns the byte order the client marshals in.
func (c *Client) Order() cdr.ByteOrder { return c.order }

// NewInvocationID allocates an invocation id unique across this
// client process (random 32-bit prefix + counter).
func (c *Client) NewInvocationID() uint64 {
	return c.invPrefix | (c.invCounter.Add(1) & 0xFFFFFFFF)
}

// ExpectBlocks registers a sink for block transfers addressed to this
// client under the given invocation id. The channel must have
// capacity for the whole expected plan. The returned cancel must be
// called when the transfer completes.
func (c *Client) ExpectBlocks(inv uint64, ch chan<- Block) (func(), error) {
	return c.blocks.register(inv, ch)
}

// conn returns the cached connection for endpoint, dialing if needed.
func (c *Client) conn(endpoint string) (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if cc, ok := c.conns[endpoint]; ok {
		return cc, nil
	}
	raw, err := c.reg.Dial(endpoint)
	if err != nil {
		return nil, err
	}
	cc := &clientConn{
		owner:    c,
		endpoint: endpoint,
		raw:      raw,
		pending:  make(map[uint32]chan reply),
	}
	c.conns[endpoint] = cc
	go cc.readLoop()
	return cc, nil
}

// dropConn removes a dead connection from the cache.
func (c *Client) dropConn(cc *clientConn) {
	c.mu.Lock()
	if c.conns[cc.endpoint] == cc {
		delete(c.conns, cc.endpoint)
	}
	c.mu.Unlock()
}

// maxForwards bounds LOCATION_FORWARD chains.
const maxForwards = 4

// Invoke sends a request to endpoint and, unless the header marks it
// oneway, waits for the matching reply. The client assigns
// hdr.RequestID. body is the CDR-marshaled in-arguments, encoded in
// c.Order() starting at the offset right after the request header.
// Cancellation via ctx sends a CancelRequest and abandons the wait.
//
// LOCATION_FORWARD replies are followed transparently (up to
// maxForwards hops): the reply body carries a stringified IOR and the
// request is re-issued at the forwarded communicator endpoint — the
// CORBA mechanism that lets objects migrate without breaking clients.
func (c *Client) Invoke(ctx context.Context, endpoint string, hdr giop.RequestHeader, body func(*cdr.Encoder)) (giop.ReplyHeader, cdr.ByteOrder, []byte, error) {
	for hop := 0; ; hop++ {
		rh, order, raw, err := c.invokeOnce(ctx, endpoint, hdr, body)
		if err != nil || rh.Status != giop.ReplyLocationForward {
			return rh, order, raw, err
		}
		if hop >= maxForwards {
			return rh, order, raw, fmt.Errorf("orb: too many location forwards (%d)", hop+1)
		}
		fwd, err := decodeForward(order, raw)
		if err != nil {
			return rh, order, raw, err
		}
		endpoint = fwd
	}
}

// decodeForward extracts the forwarded communicator endpoint from a
// LOCATION_FORWARD reply body (a stringified IOR).
func decodeForward(order cdr.ByteOrder, body []byte) (string, error) {
	d := cdr.NewDecoderAt(order, body, 8)
	s, err := d.String()
	if err != nil {
		return "", fmt.Errorf("orb: undecodable forward body: %w", err)
	}
	ref, err := ior.Parse(s)
	if err != nil {
		return "", fmt.Errorf("orb: forward carries bad IOR: %w", err)
	}
	return ref.CommunicatorEndpoint(), nil
}

func (c *Client) invokeOnce(ctx context.Context, endpoint string, hdr giop.RequestHeader, body func(*cdr.Encoder)) (giop.ReplyHeader, cdr.ByteOrder, []byte, error) {
	cc, err := c.conn(endpoint)
	if err != nil {
		return giop.ReplyHeader{}, 0, nil, err
	}
	hdr.RequestID = cc.nextID.Add(1)

	e := cdr.NewEncoder(c.order)
	hdr.Encode(e)
	if body != nil {
		body(e)
	}

	if !hdr.ResponseExpected {
		if err := cc.write(giop.MsgRequest, e.Bytes()); err != nil {
			return giop.ReplyHeader{}, 0, nil, err
		}
		return giop.ReplyHeader{RequestID: hdr.RequestID, Status: giop.ReplyOK}, c.order, nil, nil
	}

	ch := make(chan reply, 1)
	cc.addPending(hdr.RequestID, ch)
	defer cc.removePending(hdr.RequestID)

	if err := cc.write(giop.MsgRequest, e.Bytes()); err != nil {
		return giop.ReplyHeader{}, 0, nil, err
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return giop.ReplyHeader{}, 0, nil, r.err
		}
		return r.hdr, r.order, r.body, nil
	case <-ctx.Done():
		// Best-effort cancel; the reply, if it still comes, is
		// discarded by removePending.
		ce := cdr.NewEncoder(c.order)
		(&giop.CancelRequestHeader{RequestID: hdr.RequestID}).Encode(ce)
		_ = cc.write(giop.MsgCancelRequest, ce.Bytes())
		return giop.ReplyHeader{}, 0, nil, fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
}

// SendBlock ships one block-transfer message to endpoint. payload is
// encoded by the callback at the correct stream offset.
func (c *Client) SendBlock(endpoint string, hdr giop.BlockTransferHeader, payload func(*cdr.Encoder)) error {
	cc, err := c.conn(endpoint)
	if err != nil {
		return err
	}
	e := cdr.NewEncoder(c.order)
	hdr.Encode(e)
	if payload != nil {
		payload(e)
	}
	return cc.write(giop.MsgBlockTransfer, e.Bytes())
}

// Locate asks whether endpoint serves the object key, returning the
// locate status and, for LocateForward, the stringified IOR to retry.
func (c *Client) Locate(ctx context.Context, endpoint, key string) (giop.LocateStatus, string, error) {
	cc, err := c.conn(endpoint)
	if err != nil {
		return 0, "", err
	}
	id := cc.nextID.Add(1)
	e := cdr.NewEncoder(c.order)
	(&giop.LocateRequestHeader{RequestID: id, ObjectKey: key}).Encode(e)

	ch := make(chan reply, 1)
	cc.addPending(id, ch)
	defer cc.removePending(id)
	if err := cc.write(giop.MsgLocateRequest, e.Bytes()); err != nil {
		return 0, "", err
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return 0, "", r.err
		}
		d := cdr.NewDecoder(r.order, r.body)
		lh, err := giop.DecodeLocateReplyHeader(d)
		if err != nil {
			return 0, "", err
		}
		fwd := ""
		if lh.Status == giop.LocateForward {
			if fwd, err = d.String(); err != nil {
				return 0, "", err
			}
		}
		return lh.Status, fwd, nil
	case <-ctx.Done():
		return 0, "", fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
}

// Close shuts down every cached connection. In-flight invocations
// fail with ErrConnectionLost.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*clientConn, 0, len(c.conns))
	for _, cc := range c.conns {
		conns = append(conns, cc)
	}
	c.conns = make(map[string]*clientConn)
	c.mu.Unlock()
	for _, cc := range conns {
		cc.shutdown(ErrClosed)
	}
	return nil
}

// reply is what the read loop hands back to a waiting invoker.
type reply struct {
	hdr   giop.ReplyHeader
	order cdr.ByteOrder
	body  []byte
	err   error
}

// clientConn is one cached connection with a reader goroutine.
type clientConn struct {
	owner    *Client
	endpoint string
	raw      transport.Conn
	nextID   atomic.Uint32

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint32]chan reply
	dead    bool
}

func (cc *clientConn) write(t giop.MsgType, body []byte) error {
	cc.writeMu.Lock()
	defer cc.writeMu.Unlock()
	if err := giop.WriteMessage(cc.raw, cc.owner.order, t, body); err != nil {
		cc.shutdown(fmt.Errorf("%w: %v", ErrConnectionLost, err))
		return fmt.Errorf("%w: %v", ErrConnectionLost, err)
	}
	return nil
}

func (cc *clientConn) addPending(id uint32, ch chan reply) {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		ch <- reply{err: ErrConnectionLost}
		return
	}
	cc.pending[id] = ch
	cc.mu.Unlock()
}

func (cc *clientConn) removePending(id uint32) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

// shutdown closes the socket and fails all waiters exactly once.
func (cc *clientConn) shutdown(cause error) {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return
	}
	cc.dead = true
	waiters := cc.pending
	cc.pending = make(map[uint32]chan reply)
	cc.mu.Unlock()
	cc.raw.Close()
	cc.owner.dropConn(cc)
	for _, ch := range waiters {
		select {
		case ch <- reply{err: cause}:
		default:
		}
	}
}

func (cc *clientConn) readLoop() {
	for {
		t, order, body, err := giop.ReadMessage(cc.raw)
		if err != nil {
			cc.shutdown(fmt.Errorf("%w: %v", ErrConnectionLost, err))
			return
		}
		switch t {
		case giop.MsgReply:
			d := cdr.NewDecoder(order, body)
			rh, err := giop.DecodeReplyHeader(d)
			if err != nil {
				cc.shutdown(fmt.Errorf("%w: bad reply header: %v", ErrConnectionLost, err))
				return
			}
			cc.mu.Lock()
			ch, ok := cc.pending[rh.RequestID]
			delete(cc.pending, rh.RequestID)
			cc.mu.Unlock()
			if ok {
				ch <- reply{hdr: rh, order: order, body: body[d.Pos():]}
			}
		case giop.MsgLocateReply:
			// LocateReply shares the pending table; the request id
			// is the header's first field in both layouts.
			d := cdr.NewDecoder(order, body)
			id, err := d.ULong()
			if err != nil {
				cc.shutdown(fmt.Errorf("%w: bad locate reply: %v", ErrConnectionLost, err))
				return
			}
			cc.mu.Lock()
			ch, ok := cc.pending[id]
			delete(cc.pending, id)
			cc.mu.Unlock()
			if ok {
				ch <- reply{order: order, body: body}
			}
		case giop.MsgBlockTransfer:
			d := cdr.NewDecoder(order, body)
			bh, err := giop.DecodeBlockTransferHeader(d)
			if err != nil {
				cc.shutdown(fmt.Errorf("%w: bad block header: %v", ErrConnectionLost, err))
				return
			}
			blk := Block{Header: bh, Order: order, Payload: body[d.Pos():]}
			if err := cc.owner.blocks.deliver(blk); err != nil {
				cc.shutdown(err)
				return
			}
		case giop.MsgCloseConnection, giop.MsgError:
			cc.shutdown(ErrConnectionLost)
			return
		default:
			// Requests arriving at a client connection are a
			// protocol violation.
			cc.shutdown(fmt.Errorf("%w: unexpected %v on client connection", ErrConnectionLost, t))
			return
		}
	}
}
