package orb

import (
	"context"
	"testing"
	"time"

	"pardis/internal/giop"
	"pardis/internal/telemetry"
	"pardis/internal/transport"
)

// TestFlightRecorderCapturesInvocation drives a sampled echo through a
// real client/server pair and asserts both sides' flight records and
// the latency exemplars share the invocation's trace.
func TestFlightRecorderCapturesInvocation(t *testing.T) {
	telemetry.DefaultFlight.Reset()
	defer telemetry.DefaultFlight.Reset()
	telemetry.SetTraceSampling(1)
	defer telemetry.SetTraceSampling(0)

	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg)
	srv.Handle("flightobj", func(in *Incoming) {
		time.Sleep(time.Millisecond)
		_ = in.Reply(giop.ReplyOK, nil)
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(reg)
	defer cli.Close()

	ctx, span := telemetry.StartSpan(context.Background(), "test-root")
	if span == nil {
		t.Fatal("sampling at 1.0 produced no root span")
	}
	traceID := span.TraceID
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, _, _, err := cli.Invoke(ctx, ep, requestHeader(cli, "flightobj", "fly"), nil); err != nil {
		t.Fatal(err)
	}
	span.End()

	// The server side records its flight entry in a defer that runs
	// after the reply is already back here, so give it a moment.
	var clientRec, serverRec bool
	waitUntil := time.Now().Add(2 * time.Second)
	for {
		clientRec, serverRec = false, false
		for _, rec := range telemetry.DefaultFlight.ByTrace(traceID) {
			switch rec.Side {
			case "client":
				clientRec = true
				if rec.Op != "fly" || rec.Key != "flightobj" || rec.Endpoint != ep {
					t.Errorf("client record = %+v", rec)
				}
				if rec.Attempts != 1 || rec.Retries != 0 || rec.Failovers != 0 {
					t.Errorf("client attempt accounting = %+v", rec)
				}
				if rec.DeadlineRemaining <= 0 || rec.DeadlineRemaining > 5*time.Second {
					t.Errorf("client deadline budget = %v", rec.DeadlineRemaining)
				}
			case "server":
				serverRec = true
				if rec.Error != "" || rec.Duration < time.Millisecond {
					t.Errorf("server record = %+v", rec)
				}
				if rec.DeadlineRemaining <= 0 {
					t.Errorf("server dispatch budget = %v, want > 0", rec.DeadlineRemaining)
				}
			}
		}
		if clientRec && serverRec {
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatalf("missing flight records for trace %016x: client=%v server=%v (snapshot: %+v)",
				traceID, clientRec, serverRec, telemetry.DefaultFlight.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}

	// The invoke/request histograms must carry exemplars pointing at
	// this same trace.
	assertExemplar := func(name string) {
		t.Helper()
		for _, s := range telemetry.Default.HistogramsByName(name) {
			for _, ex := range s.Exemplars {
				if ex.TraceID == traceID {
					return
				}
			}
		}
		t.Errorf("no exemplar with trace %016x on %s", traceID, name)
	}
	assertExemplar("pardis_client_invoke_seconds")
	assertExemplar("pardis_server_request_seconds")
}

// TestFlightRecorderCapturesShed asserts a request shed before
// dispatch leaves an errored server-side flight record.
func TestFlightRecorderCapturesShed(t *testing.T) {
	telemetry.DefaultFlight.Reset()
	defer telemetry.DefaultFlight.Reset()

	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg)
	srv.Handle("shedobj", func(in *Incoming) { _ = in.Reply(giop.ReplyOK, nil) })
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(reg)
	defer cli.Close()

	hdr := requestHeader(cli, "shedobj", "late")
	hdr.DeadlineMicros = 1 // expires long before the goroutine dispatches
	_, _, _, _ = cli.Invoke(context.Background(), ep, hdr, nil)

	deadline := time.Now().Add(2 * time.Second)
	for {
		found := false
		for _, op := range telemetry.DefaultFlight.Snapshot() {
			if op.Side != "server" || op.Op != "late" {
				continue
			}
			for _, rec := range op.Errors {
				if rec.Error == "deadline expired before dispatch" {
					found = true
				}
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no shed flight record: %+v", telemetry.DefaultFlight.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
}
