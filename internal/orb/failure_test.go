package orb

import (
	"context"
	"errors"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/ior"
	"pardis/internal/transport"
)

// TestLocationForwardFollowed: a "moved" object redirects clients to
// its new home transparently.
func TestLocationForwardFollowed(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())

	// New home.
	home := NewServer(reg)
	home.Handle("obj", func(in *Incoming) {
		_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) { e.PutString("from new home") })
	})
	homeEp, err := home.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer home.Close()
	fwdRef := &ior.Ref{TypeID: "IDL:obj:1.0", Key: "obj", Threads: 1, Endpoints: []string{homeEp}}

	// Old home forwards.
	old := NewServer(reg)
	old.Handle("obj", func(in *Incoming) {
		_ = in.ReplyForward(fwdRef.Stringify())
	})
	oldEp, err := old.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()

	cli := NewClient(reg)
	defer cli.Close()
	rh, order, body, err := cli.Invoke(context.Background(), oldEp,
		requestHeader(cli, "obj", "op"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rh.Status != giop.ReplyOK {
		t.Fatalf("status = %v", rh.Status)
	}
	s, err := cdr.NewDecoderAt(order, body, 8).String()
	if err != nil || s != "from new home" {
		t.Fatalf("reply = %q %v", s, err)
	}
}

// TestForwardLoopBounded: a forward cycle is detected as soon as an
// endpoint is seen twice, instead of burning all maxForwards hops.
func TestForwardLoopBounded(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg)
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	self := &ior.Ref{TypeID: "t", Key: "obj", Threads: 1, Endpoints: []string{ep}}
	var hops atomic.Int32
	srv.Handle("obj", func(in *Incoming) {
		hops.Add(1)
		_ = in.ReplyForward(self.Stringify()) // forward to itself forever
	})
	cli := NewClient(reg)
	defer cli.Close()
	_, _, _, err = cli.Invoke(context.Background(), ep, requestHeader(cli, "obj", "op"), nil)
	if !errors.Is(err, ErrForwardCycle) {
		t.Fatalf("err = %v", err)
	}
	// The self-cycle is caught after the first forward, not after
	// maxForwards round-trips.
	if n := hops.Load(); n != 1 {
		t.Fatalf("server dispatched %d times; cycle not detected early", n)
	}
}

// TestForwardCycleTwoServers: an A→B→A forward cycle is detected when
// A's endpoint shows up the second time.
func TestForwardCycleTwoServers(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	a, b := NewServer(reg), NewServer(reg)
	epA, err := a.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	epB, err := b.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	refA := &ior.Ref{TypeID: "t", Key: "obj", Threads: 1, Endpoints: []string{epA}}
	refB := &ior.Ref{TypeID: "t", Key: "obj", Threads: 1, Endpoints: []string{epB}}
	a.Handle("obj", func(in *Incoming) { _ = in.ReplyForward(refB.Stringify()) })
	b.Handle("obj", func(in *Incoming) { _ = in.ReplyForward(refA.Stringify()) })
	cli := NewClient(reg)
	defer cli.Close()
	_, _, _, err = cli.Invoke(context.Background(), epA, requestHeader(cli, "obj", "op"), nil)
	if !errors.Is(err, ErrForwardCycle) {
		t.Fatalf("err = %v", err)
	}
}

// TestForwardWithBadIORFails: a malformed forward body surfaces as an
// error rather than a retry storm.
func TestForwardWithBadIORFails(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg)
	srv.Handle("obj", func(in *Incoming) {
		_ = in.Reply(giop.ReplyLocationForward, func(e *cdr.Encoder) {
			e.PutString("IOR:not-hex!")
		})
	})
	ep, _ := srv.Listen("inproc:*")
	defer srv.Close()
	cli := NewClient(reg)
	defer cli.Close()
	_, _, _, err := cli.Invoke(context.Background(), ep, requestHeader(cli, "obj", "op"), nil)
	if err == nil || !strings.Contains(err.Error(), "bad IOR") {
		t.Fatalf("err = %v", err)
	}
}

// TestGarbageBytesOnServer: a connection spewing garbage must not
// take the server down; other connections keep working.
func TestGarbageBytesOnServer(t *testing.T) {
	reg := transport.NewRegistry()
	inproc := transport.NewInproc()
	reg.Register(inproc)
	srv := NewServer(reg)
	srv.Handle("echo", func(in *Incoming) {
		_ = in.Reply(giop.ReplyOK, nil)
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Raw garbage connection.
	raw, err := reg.Dial(ep)
	if err != nil {
		t.Fatal(err)
	}
	// The write may fail midway if the server already detected the
	// bad magic and closed the synchronous pipe — both outcomes are
	// fine; the assertion is that the server survives.
	_, _ = raw.Write([]byte("GET / HTTP/1.1\r\n\r\n lots of garbage"))
	// The server should drop it; reads eventually fail.
	raw.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 16)
	for {
		if _, err := raw.Read(buf); err != nil {
			break
		}
	}
	raw.Close()

	// A proper client still works.
	cli := NewClient(reg)
	defer cli.Close()
	if _, _, _, err := cli.Invoke(context.Background(), ep, requestHeader(cli, "echo", "op"), nil); err != nil {
		t.Fatalf("server damaged by garbage connection: %v", err)
	}
}

// TestTruncatedFrameKillsOnlyThatConnection: a frame that announces a
// large body and then hangs up must not wedge the server.
func TestTruncatedFrameKillsOnlyThatConnection(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg)
	srv.Handle("echo", func(in *Incoming) { _ = in.Reply(giop.ReplyOK, nil) })
	ep, _ := srv.Listen("inproc:*")
	defer srv.Close()

	raw, err := reg.Dial(ep)
	if err != nil {
		t.Fatal(err)
	}
	// Valid header, 1 MB announced, then close.
	hdr := []byte{'P', 'I', 'O', 'P', 1, 0, 0, byte(giop.MsgRequest), 0, 0x10, 0, 0}
	if _, err := raw.Write(hdr); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	cli := NewClient(reg)
	defer cli.Close()
	if _, _, _, err := cli.Invoke(context.Background(), ep, requestHeader(cli, "echo", "op"), nil); err != nil {
		t.Fatalf("server wedged by truncated frame: %v", err)
	}
}

// TestServerDiesMidInvocation: killing the server while a request is
// in flight surfaces ErrConnectionLost quickly.
func TestServerDiesMidInvocation(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg)
	started := make(chan struct{})
	srv.Handle("hang", func(in *Incoming) {
		close(started)
		<-in.Ctx.Done()
	})
	ep, _ := srv.Listen("inproc:*")
	cli := NewClient(reg)
	defer cli.Close()
	errc := make(chan error, 1)
	go func() {
		_, _, _, err := cli.Invoke(context.Background(), ep, requestHeader(cli, "hang", "op"), nil)
		errc <- err
	}()
	<-started
	srv.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrConnectionLost) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("invocation hung after server death")
	}
}

// TestOversizedBlockSinkBackpressure: more unmatched blocks than the
// router's buffer kills the connection instead of consuming unbounded
// memory.
func TestUnmatchedBlockFloodBounded(t *testing.T) {
	r := newBlockRouter()
	r.pol.MaxBlocks = 8
	for i := 0; i < 8; i++ {
		if err := r.deliver(Block{Header: giop.BlockTransferHeader{InvocationID: uint64(i)}}); err != nil {
			t.Fatalf("deliver %d: %v", i, err)
		}
	}
	err := r.deliver(Block{Header: giop.BlockTransferHeader{InvocationID: 99}})
	if !errors.Is(err, ErrTooManyBlocks) {
		t.Fatalf("flood not bounded: %v", err)
	}
}

// TestUnmatchedBlockByteBudget: the pending buffer is bounded in bytes
// as well as blocks — a peer cannot park a handful of maximal frames
// behind an invocation that never registers a sink.
func TestUnmatchedBlockByteBudget(t *testing.T) {
	r := newBlockRouter()
	r.pol.MaxBytes = 1024
	payload := make([]byte, 512)
	for i := 0; i < 2; i++ {
		blk := Block{Header: giop.BlockTransferHeader{InvocationID: uint64(i)}, Payload: payload}
		if err := r.deliver(blk); err != nil {
			t.Fatalf("deliver %d: %v", i, err)
		}
	}
	err := r.deliver(Block{Header: giop.BlockTransferHeader{InvocationID: 99}, Payload: payload[:1]})
	if !errors.Is(err, ErrPendingBlockBytes) {
		t.Fatalf("byte flood not bounded: %v", err)
	}
	if st := r.stats(); st.PendingBytes != 1024 {
		t.Fatalf("PendingBytes = %d, want 1024", st.PendingBytes)
	}
	// Registering a sink flushes the buffered blocks and returns their
	// bytes to the budget.
	got := 0
	cancel, err := r.registerFunc(0, func(Block) error { got++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if got != 1 {
		t.Fatalf("flushed %d blocks, want 1", got)
	}
	if st := r.stats(); st.PendingBytes != 512 || st.Pending != 1 {
		t.Fatalf("after flush: %+v", st)
	}
}

// TestPendingSweepReclaimsAbandonedBlocks: a TTL sweep drops pending
// buffers with no recent arrivals while keeping fresh ones.
func TestPendingSweepReclaimsAbandonedBlocks(t *testing.T) {
	r := newBlockRouter()
	r.pol.TTL = 50 * time.Millisecond
	old := Block{Header: giop.BlockTransferHeader{InvocationID: 1}, Payload: make([]byte, 64)}
	if err := r.deliver(old); err != nil {
		t.Fatal(err)
	}
	if n := r.sweep(time.Now()); n != 0 {
		t.Fatalf("fresh buffer swept: %d", n)
	}
	if n := r.sweep(time.Now().Add(100 * time.Millisecond)); n != 1 {
		t.Fatalf("stale buffer not swept: %d", n)
	}
	if st := r.stats(); st.Pending != 0 || st.PendingBytes != 0 {
		t.Fatalf("after sweep: %+v", st)
	}
}

// TestClientReadsGarbageReply: a server that answers with garbage
// bytes fails the invocation cleanly.
func TestClientReadsGarbageReply(t *testing.T) {
	reg := transport.NewRegistry()
	inproc := transport.NewInproc()
	reg.Register(inproc)
	l, err := inproc.Listen("garbage")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		// Drain the request frame, then answer nonsense.
		buf := make([]byte, 4096)
		if _, err := c.Read(buf); err != nil && err != io.EOF {
			return
		}
		c.Write([]byte("***not a piop frame***"))
	}()
	cli := NewClient(reg)
	defer cli.Close()
	_, _, _, err = cli.Invoke(context.Background(), "inproc:garbage",
		requestHeader(cli, "x", "op"), nil)
	if !errors.Is(err, ErrConnectionLost) {
		t.Fatalf("err = %v", err)
	}
}
