// Fault-injection suite for the fault-tolerant invocation layer. All
// tests here match -run Fault so the chaos tier (`go test -run Fault
// -race ./...`, `make chaos`) exercises exactly this file plus the
// spmd fault tests.
package orb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/ior"
	"pardis/internal/transport"
)

// replicaFixture is a set of identical echo servers reachable through
// one Faulty transport layer.
type replicaFixture struct {
	reg     *transport.Registry
	faulty  *transport.Faulty
	servers []*Server
	ref     *ior.Ref
}

// newReplicas starts n echo servers behind a faulty+inproc transport
// and assembles the replicated reference. Each server's reply names
// it, so tests can observe which replica answered.
func newReplicas(t *testing.T, n int, plan transport.FaultPlan) *replicaFixture {
	t.Helper()
	reg := transport.NewRegistry()
	inner := transport.NewInproc()
	inner.DialTimeout = 2 * time.Second
	faulty := transport.NewFaulty(inner, plan)
	reg.Register(inner)
	reg.Register(faulty)

	fx := &replicaFixture{reg: reg, faulty: faulty}
	endpoints := make([]string, n)
	for i := 0; i < n; i++ {
		srv := NewServer(reg)
		id := fmt.Sprintf("replica-%d", i)
		srv.Handle("echo", func(in *Incoming) {
			s, err := in.Decoder().String()
			if err != nil {
				_ = in.ReplySystemException("MARSHAL", err.Error())
				return
			}
			_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) { e.PutString(id + ":" + s) })
		})
		ep, err := srv.Listen("faulty+inproc:*")
		if err != nil {
			t.Fatal(err)
		}
		endpoints[i] = ep
		fx.servers = append(fx.servers, srv)
	}
	fx.ref = &ior.Ref{TypeID: "IDL:echo:1.0", Key: "echo", Threads: 1, Endpoints: endpoints}
	t.Cleanup(func() {
		for _, s := range fx.servers {
			s.Close()
		}
	})
	return fx
}

// TestFaultFailoverUnderConnectionCuts is the acceptance scenario:
// with the Faulty transport killing ~30% of connections mid-request,
// every idempotent invocation against a 3-endpoint replicated object
// must still complete via retry and failover.
func TestFaultFailoverUnderConnectionCuts(t *testing.T) {
	iterations := 200
	if testing.Short() {
		iterations = 40
	}
	fx := newReplicas(t, 3, transport.FaultPlan{Seed: 7, Cut: 0.3})

	// One client per invocation: the orb client pools connections per
	// endpoint, so a single long-lived client would settle onto one
	// healthy pooled connection and stop dialing — and dial time is
	// when the fault plan rolls each connection's fate. Fresh clients
	// model independent callers, each of whose connections has a 30%
	// chance of being cut mid-request. The shared seeded Faulty layer
	// keeps the whole run deterministic.
	for i := 0; i < iterations; i++ {
		cli := NewClient(fx.reg,
			WithRetryPolicy(RetryPolicy{MaxAttempts: 12, BaseBackoff: time.Millisecond,
				MaxBackoff: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.2}),
			WithDefaultDeadline(5*time.Second),
			WithBreaker(3, 20*time.Millisecond))
		msg := fmt.Sprintf("msg-%d", i)
		rh, order, body, err := cli.InvokeRef(context.Background(), fx.ref,
			requestHeader(cli, "echo", "op"),
			func(e *cdr.Encoder) { e.PutString(msg) })
		if err != nil {
			cli.Close()
			t.Fatalf("invocation %d lost despite retry+failover: %v", i, err)
		}
		if rh.Status != giop.ReplyOK {
			cli.Close()
			t.Fatalf("invocation %d: status %v", i, rh.Status)
		}
		s, derr := cdr.NewDecoderAt(order, body, 8).String()
		cli.Close()
		if derr != nil || !strings.HasSuffix(s, ":"+msg) {
			t.Fatalf("invocation %d: reply %q, %v", i, s, derr)
		}
	}
	if s := fx.faulty.Stats(); s.CutConns == 0 {
		t.Fatalf("fault plan injected nothing (stats %+v); the test proved nothing", s)
	} else {
		t.Logf("completed %d/%d invocations; faults injected: %+v", iterations, iterations, s)
	}
}

// TestFaultDialRefusalFailover: refused dials (endpoint down) roll
// over to the other replicas.
func TestFaultDialRefusalFailover(t *testing.T) {
	fx := newReplicas(t, 3, transport.FaultPlan{Seed: 3, DialRefuse: 0.5})
	// Fresh client per invocation so every call dials (see the pooling
	// note in TestFaultFailoverUnderConnectionCuts).
	for i := 0; i < 50; i++ {
		cli := NewClient(fx.reg,
			WithRetryPolicy(RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Millisecond,
				MaxBackoff: 5 * time.Millisecond}),
			WithBreaker(2, 10*time.Millisecond))
		_, _, _, err := cli.InvokeRef(context.Background(), fx.ref,
			requestHeader(cli, "echo", "op"),
			func(e *cdr.Encoder) { e.PutString("x") })
		cli.Close()
		if err != nil {
			t.Fatalf("invocation %d: %v", i, err)
		}
	}
	if s := fx.faulty.Stats(); s.RefusedDials == 0 {
		t.Fatalf("no dials refused (stats %+v)", s)
	}
}

// TestFaultHungServerDeadline: a one-way partition (request vanishes,
// server never replies) must not block Invoke past its deadline.
func TestFaultHungServerDeadline(t *testing.T) {
	fx := newReplicas(t, 1, transport.FaultPlan{Seed: 5, Blackhole: 1})
	cli := NewClient(fx.reg, WithDefaultDeadline(150*time.Millisecond))
	defer cli.Close()
	start := time.Now()
	_, _, _, err := cli.InvokeRef(context.Background(), fx.ref,
		requestHeader(cli, "echo", "op"),
		func(e *cdr.Encoder) { e.PutString("x") })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Invoke blocked %v past its 150ms deadline", d)
	}
}

// TestFaultHungHandlerDeadline: the deadline also covers a server
// that accepted the request but never replies.
func TestFaultHungHandlerDeadline(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg)
	srv.Handle("hang", func(in *Incoming) { <-in.Ctx.Done() })
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(reg, WithDefaultDeadline(100*time.Millisecond))
	defer cli.Close()
	start := time.Now()
	_, _, _, err = cli.Invoke(context.Background(), ep, requestHeader(cli, "hang", "op"), nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Invoke blocked %v past its 100ms deadline", d)
	}
}

// TestFaultBreakerOpensAndRecovers: consecutive failures open an
// endpoint's breaker; after the cooldown a half-open probe closes it
// again once the endpoint is back.
func TestFaultBreakerOpensAndRecovers(t *testing.T) {
	reg := transport.NewRegistry()
	inner := transport.NewInproc()
	reg.Register(inner)
	cli := NewClient(reg, WithBreaker(3, 50*time.Millisecond))
	defer cli.Close()
	ep := "inproc:replica"

	for i := 0; i < 3; i++ {
		if _, _, _, err := cli.Invoke(context.Background(), ep,
			requestHeader(cli, "echo", "op"), nil); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("dial %d: %v", i, err)
		}
	}
	if cli.EndpointUp(ep) {
		t.Fatalf("breaker still closed after 3 consecutive failures: %+v", cli.Health())
	}

	// Bring the endpoint up and wait out the cooldown.
	srv := NewServer(reg)
	srv.Handle("echo", func(in *Incoming) { _ = in.Reply(giop.ReplyOK, nil) })
	if _, err := srv.Listen(ep); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	time.Sleep(60 * time.Millisecond)

	if _, _, _, err := cli.Invoke(context.Background(), ep,
		requestHeader(cli, "echo", "op"), nil); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if !cli.EndpointUp(ep) {
		t.Fatalf("breaker did not close after successful probe: %+v", cli.Health())
	}
}

// TestFaultRetryBudgetExhausted: a hard outage stops retrying once
// the budget runs dry instead of hammering the dead endpoint.
func TestFaultRetryBudgetExhausted(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	cli := NewClient(reg, WithRetryPolicy(RetryPolicy{
		MaxAttempts: 10, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		Budget: NewRetryBudget(2, 0),
	}))
	defer cli.Close()
	_, _, _, err := cli.Invoke(context.Background(), "inproc:nowhere",
		requestHeader(cli, "echo", "op"), nil)
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("err = %v", err)
	}
}

// TestFaultGracefulShutdownDrains: Shutdown completes in-flight work,
// bounces new requests with TRANSIENT (failover fodder), and says
// goodbye with MsgCloseConnection rather than a raw reset.
func TestFaultGracefulShutdownDrains(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())

	slow := NewServer(reg)
	started := make(chan struct{})
	slow.Handle("echo", func(in *Incoming) {
		close(started)
		time.Sleep(100 * time.Millisecond)
		_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) { e.PutString("drained") })
	})
	epA, err := slow.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}

	backup := NewServer(reg)
	backup.Handle("echo", func(in *Incoming) {
		_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) { e.PutString("backup") })
	})
	epB, err := backup.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()

	cli := NewClient(reg, WithRetryPolicy(DefaultRetryPolicy()))
	defer cli.Close()
	ref := &ior.Ref{TypeID: "t", Key: "echo", Threads: 1, Endpoints: []string{epA, epB}}

	// In-flight invocation rides out the drain.
	var wg sync.WaitGroup
	wg.Add(1)
	var inflightReply string
	var inflightErr error
	go func() {
		defer wg.Done()
		_, order, body, err := cli.Invoke(context.Background(), epA,
			requestHeader(cli, "echo", "op"), nil)
		if err != nil {
			inflightErr = err
			return
		}
		inflightReply, inflightErr = cdr.NewDecoderAt(order, body, 8).String()
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := slow.Shutdown(ctx); err != nil {
		t.Fatalf("drain did not complete in time: %v", err)
	}
	wg.Wait()
	if inflightErr != nil || inflightReply != "drained" {
		t.Fatalf("in-flight request not drained: %q, %v", inflightReply, inflightErr)
	}

	// New work fails over to the backup replica.
	_, order, body, err := cli.InvokeRef(context.Background(), ref,
		requestHeader(cli, "echo", "op"), nil)
	if err != nil {
		t.Fatalf("failover after shutdown: %v", err)
	}
	if s, _ := cdr.NewDecoderAt(order, body, 8).String(); s != "backup" {
		t.Fatalf("reply came from %q, want the backup replica", s)
	}
}

// TestFaultShutdownDeadlineForcesClose: a handler that outlives the
// drain deadline is cut off; Shutdown reports the deadline error.
func TestFaultShutdownDeadlineForcesClose(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg)
	started := make(chan struct{})
	srv.Handle("stuck", func(in *Incoming) {
		close(started)
		<-in.Ctx.Done()
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(reg)
	defer cli.Close()
	errc := make(chan error, 1)
	go func() {
		_, _, _, err := cli.Invoke(context.Background(), ep, requestHeader(cli, "stuck", "op"), nil)
		errc <- err
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("stuck invocation reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("client still blocked after forced close")
	}
}

// TestFaultTransientRejectionDuringDrain: a request arriving during
// the drain window is answered TRANSIENT and the retry layer carries
// it to another replica.
func TestFaultTransientRejectionDuringDrain(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())

	draining := NewServer(reg)
	release := make(chan struct{})
	started := make(chan struct{})
	draining.Handle("echo", func(in *Incoming) {
		close(started)
		<-release
		_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) { e.PutString("slow") })
	})
	epA, err := draining.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	backup := NewServer(reg)
	backup.Handle("echo", func(in *Incoming) {
		_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) { e.PutString("backup") })
	})
	epB, err := backup.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()

	cli := NewClient(reg, WithRetryPolicy(DefaultRetryPolicy()))
	defer cli.Close()
	ref := &ior.Ref{TypeID: "t", Key: "echo", Threads: 1, Endpoints: []string{epA, epB}}

	// Occupy the draining server, then start its shutdown.
	go func() {
		_, _, _, _ = cli.Invoke(context.Background(), epA, requestHeader(cli, "echo", "op"), nil)
	}()
	<-started
	shutdownDone := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = draining.Shutdown(ctx)
		close(shutdownDone)
	}()
	for !draining.Draining() {
		time.Sleep(time.Millisecond)
	}

	// A request sent mid-drain must land on the backup.
	_, order, body, err := cli.InvokeRef(context.Background(), ref,
		requestHeader(cli, "echo", "op"), nil)
	if err != nil {
		t.Fatalf("mid-drain invocation: %v", err)
	}
	if s, _ := cdr.NewDecoderAt(order, body, 8).String(); s != "backup" {
		t.Fatalf("mid-drain reply from %q, want backup", s)
	}
	close(release)
	<-shutdownDone
}
