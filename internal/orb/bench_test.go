package orb

import (
	"context"
	"fmt"
	"testing"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/transport"
)

// newBenchPair builds a client/server pair over inproc with an echo
// handler for benchmarks. The server runs with admission control at
// the default caps so every benchmark exercises the admit fast path —
// the allocs/op gate in benchdiff then covers its cost.
func newBenchPair(b *testing.B, payload int, opts ...ClientOption) (*Client, string) {
	b.Helper()
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg, WithAdmission(DefaultAdmissionConfig()))
	srv.Handle("echo", func(in *Incoming) {
		d := in.Decoder()
		data, err := d.DoubleSeq()
		if err != nil {
			_ = in.ReplySystemException("MARSHAL", err.Error())
			return
		}
		_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) { e.PutDoubleSeq(data) })
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		b.Fatal(err)
	}
	cli := NewClient(reg, opts...)
	b.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	return cli, ep
}

// BenchmarkInvokeEcho measures request/reply round trips carrying a
// double-sequence payload of various sizes.
func BenchmarkInvokeEcho(b *testing.B) {
	for _, n := range []int{0, 1 << 10, 1 << 14} {
		n := n
		b.Run(fmt.Sprintf("doubles=%d", n), func(b *testing.B) {
			cli, ep := newBenchPair(b, n)
			data := make([]float64, n)
			hdr := giop.RequestHeader{
				ResponseExpected: true,
				ObjectKey:        "echo",
				Operation:        "op",
				ThreadRank:       -1,
				ThreadCount:      1,
			}
			b.SetBytes(int64(n * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hdr.InvocationID = cli.NewInvocationID()
				rh, _, _, err := cli.Invoke(context.Background(), ep, hdr,
					func(e *cdr.Encoder) { e.PutDoubleSeq(data) })
				if err != nil || rh.Status != giop.ReplyOK {
					b.Fatalf("%v %v", rh.Status, err)
				}
			}
		})
	}
}

// BenchmarkInvokeConcurrent measures pipelined invocations over one
// connection.
func BenchmarkInvokeConcurrent(b *testing.B) {
	cli, ep := newBenchPair(b, 0)
	data := make([]float64, 64)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			hdr := giop.RequestHeader{
				InvocationID:     cli.NewInvocationID(),
				ResponseExpected: true,
				ObjectKey:        "echo",
				Operation:        "op",
				ThreadRank:       -1,
				ThreadCount:      1,
			}
			rh, _, _, err := cli.Invoke(context.Background(), ep, hdr,
				func(e *cdr.Encoder) { e.PutDoubleSeq(data) })
			if err != nil || rh.Status != giop.ReplyOK {
				b.Fatalf("%v %v", rh.Status, err)
			}
		}
	})
}

// BenchmarkInvokeConcurrent8 drives at least eight concurrent
// invokers, the acceptance workload for connection striping: one
// stripe serializes every frame on a single write lock and read loop,
// wider stripes spread them.
func BenchmarkInvokeConcurrent8(b *testing.B) {
	for _, stripes := range []int{1, 4} {
		stripes := stripes
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			cli, ep := newBenchPair(b, 0, WithStripes(stripes))
			data := make([]float64, 64)
			b.SetParallelism(8)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					hdr := giop.RequestHeader{
						InvocationID:     cli.NewInvocationID(),
						ResponseExpected: true,
						ObjectKey:        "echo",
						Operation:        "op",
						ThreadRank:       -1,
						ThreadCount:      1,
					}
					rh, _, _, err := cli.Invoke(context.Background(), ep, hdr,
						func(e *cdr.Encoder) { e.PutDoubleSeq(data) })
					if err != nil || rh.Status != giop.ReplyOK {
						b.Fatalf("%v %v", rh.Status, err)
					}
				}
			})
		})
	}
}

// BenchmarkSendBlock measures one-way block shipping throughput.
func BenchmarkSendBlock(b *testing.B) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg)
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(reg)
	defer cli.Close()
	sink := make(chan Block, 64)
	cancel, err := srv.ExpectBlocks(1, sink)
	if err != nil {
		b.Fatal(err)
	}
	defer cancel()
	payload := make([]float64, 1<<12)
	hdr := giop.BlockTransferHeader{InvocationID: 1, Count: uint32(len(payload))}
	b.SetBytes(int64(len(payload) * 8))
	b.ResetTimer()
	// Receive each block inline: SendBlock is fire-and-forget, so the
	// consumer must keep pace or the sink overflows by design (the
	// router enforces bounded buffering).
	for i := 0; i < b.N; i++ {
		if _, err := cli.SendBlock(ep, hdr, func(e *cdr.Encoder) { e.PutDoubleSeq(payload) }); err != nil {
			b.Fatal(err)
		}
		if blk := <-sink; blk.Header.InvocationID != 1 {
			b.Fatal("wrong block")
		}
	}
}

// BenchmarkWindowPut is BenchmarkSendBlock's one-sided counterpart:
// the same 32 KiB payload lands straight into a registered window with
// no CDR sequence framing and (native order) no payload copy on either
// side. The window is re-registered per put so each iteration measures
// a complete land, not a hot overshoot.
func BenchmarkWindowPut(b *testing.B) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg)
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(reg)
	defer cli.Close()
	payload := make([]float64, 1<<12)
	dst := make([]float64, 1<<12)
	hdr := giop.WindowPutHeader{WindowID: 1, Last: true}
	b.SetBytes(int64(len(payload) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		win, cancel, err := srv.RegisterWindow(1, dst, int64(len(payload)), nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cli.PutWindow(ep, hdr, payload); err != nil {
			b.Fatal(err)
		}
		<-win.Done()
		if err := win.Err(); err != nil {
			b.Fatal(err)
		}
		cancel()
	}
}
