package orb

import (
	"context"
	"sync"
	"testing"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/transport"
)

// stripeConns returns how many connections the client currently holds
// for endpoint.
func stripeConns(c *Client, endpoint string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stripes[endpoint]
	if st == nil {
		return 0
	}
	return len(st.conns)
}

// TestStripeSerialStaysOnOneConn: a strictly serial caller never has
// an outstanding request when the next begins, so lazy growth must
// keep the stripe at a single connection.
func TestStripeSerialStaysOnOneConn(t *testing.T) {
	cli, _, ep := newPair(t)
	for i := 0; i < 20; i++ {
		_, _, _, err := cli.Invoke(context.Background(), ep,
			requestHeader(cli, "echo", "op"),
			func(e *cdr.Encoder) { e.PutString("serial") })
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := stripeConns(cli, ep); n != 1 {
		t.Fatalf("serial caller grew the stripe to %d conns, want 1", n)
	}
}

// TestStripeGrowsUnderConcurrency: when every connection is busy the
// stripe dials more, up to the configured width and no further.
func TestStripeGrowsUnderConcurrency(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	srv := NewServer(reg)
	release := make(chan struct{})
	srv.Handle("slow", func(in *Incoming) {
		<-release
		_ = in.Reply(giop.ReplyOK, nil)
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	const width = 3
	cli := NewClient(reg, WithStripes(width))
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
	})

	var wg sync.WaitGroup
	for i := 0; i < 4*width; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _, err := cli.Invoke(context.Background(), ep,
				requestHeader(cli, "slow", "op"), nil)
			if err != nil {
				t.Error(err)
			}
		}()
	}
	// Wait until the stripe has saturated its width (every invoke
	// parks in the handler, so each new arrival sees all conns busy).
	deadline := time.After(5 * time.Second)
	for stripeConns(cli, ep) < width {
		select {
		case <-deadline:
			t.Fatalf("stripe stuck at %d conns, want %d", stripeConns(cli, ep), width)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()
	if n := stripeConns(cli, ep); n > width {
		t.Fatalf("stripe overgrew to %d conns, width %d", n, width)
	}
}

// TestStripeSurvivesMemberDeath: killing one stripe connection must
// fail only the requests riding it; subsequent invokes succeed and
// the dead member leaves the stripe.
func TestStripeSurvivesMemberDeath(t *testing.T) {
	cli, _, ep := newPair(t)
	if _, _, _, err := cli.Invoke(context.Background(), ep,
		requestHeader(cli, "echo", "op"),
		func(e *cdr.Encoder) { e.PutString("warm") }); err != nil {
		t.Fatal(err)
	}

	cli.mu.Lock()
	st := cli.stripes[ep]
	victim := st.conns[0]
	cli.mu.Unlock()
	victim.shutdown(ErrConnectionLost)

	for stripeConns(cli, ep) != 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		if _, _, _, err := cli.Invoke(context.Background(), ep,
			requestHeader(cli, "echo", "op"),
			func(e *cdr.Encoder) { e.PutString("after") }); err != nil {
			t.Fatalf("invoke %d after member death: %v", i, err)
		}
	}
}

// TestStripeDepthGaugeBalanced: after a run of request/reply traffic
// every stripe member's outstanding-depth gauge must read zero — the
// read loop and the invoker's deferred removal share one decrement.
func TestStripeDepthGaugeBalanced(t *testing.T) {
	cli, _, ep := newPair(t)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _, err := cli.Invoke(context.Background(), ep,
				requestHeader(cli, "echo", "op"),
				func(e *cdr.Encoder) { e.PutString("x") })
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	cli.mu.Lock()
	defer cli.mu.Unlock()
	for _, st := range cli.stripes {
		for _, cc := range st.conns {
			if d := cc.depth.Value(); d != 0 {
				t.Fatalf("stripe %d depth gauge leaked: %d", cc.slot, d)
			}
		}
	}
}

// TestStripeCapRaisesWidth: a dynamic stripe cap above the static
// width lets the stripe grow past it under load — but no further than
// the cap — while a cap with no opinion (<= 0) leaves the static width
// in force.
func TestStripeCapRaisesWidth(t *testing.T) {
	run := func(t *testing.T, capWidth, wantConns int) {
		reg := transport.NewRegistry()
		reg.Register(transport.NewInproc())
		srv := NewServer(reg)
		release := make(chan struct{})
		srv.Handle("slow", func(in *Incoming) {
			<-release
			_ = in.Reply(giop.ReplyOK, nil)
		})
		ep, err := srv.Listen("inproc:*")
		if err != nil {
			t.Fatal(err)
		}
		cli := NewClient(reg, WithStripes(2),
			WithStripeCap(func(string) int { return capWidth }))
		t.Cleanup(func() {
			cli.Close()
			srv.Close()
		})

		var wg sync.WaitGroup
		for i := 0; i < 4*(wantConns+1); i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _, _, err := cli.Invoke(context.Background(), ep,
					requestHeader(cli, "slow", "op"), nil)
				if err != nil {
					t.Error(err)
				}
			}()
		}
		deadline := time.After(5 * time.Second)
		for stripeConns(cli, ep) < wantConns {
			select {
			case <-deadline:
				t.Fatalf("stripe stuck at %d conns, want %d", stripeConns(cli, ep), wantConns)
			case <-time.After(time.Millisecond):
			}
		}
		// Give growth a moment to overshoot if it were going to.
		time.Sleep(10 * time.Millisecond)
		if n := stripeConns(cli, ep); n > wantConns {
			t.Fatalf("stripe overgrew to %d conns, cap %d", n, wantConns)
		}
		close(release)
		wg.Wait()
	}
	t.Run("raised", func(t *testing.T) { run(t, 5, 5) })
	t.Run("no-opinion", func(t *testing.T) { run(t, 0, 2) })
}

// TestWithStripesClamp: widths below one collapse to the single-conn
// behavior rather than disabling the endpoint.
func TestWithStripesClamp(t *testing.T) {
	c := NewClient(nil, WithStripes(-3))
	defer c.Close()
	if c.stripeWidth != 1 {
		t.Fatalf("stripeWidth = %d, want 1", c.stripeWidth)
	}
	if w := DefaultStripeWidth(); w < 1 || w > 4 {
		t.Fatalf("DefaultStripeWidth() = %d, want within [1,4]", w)
	}
}

// TestCancelSendsPreallocatedFrame: a canceled invoke must emit a
// CancelRequest the server can decode (the preallocated cancel body
// is wire-identical to an encoded CancelRequestHeader). The context
// is canceled explicitly rather than by deadline, so the server-side
// wakeup can only come from the cancel frame — not from a propagated
// deadline expiring on its own clock.
func TestCancelSendsPreallocatedFrame(t *testing.T) {
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		reg := transport.NewRegistry()
		reg.Register(transport.NewInproc())
		srv := NewServer(reg)
		canceled := make(chan uint32, 1)
		started := make(chan struct{}, 1)
		srv.Handle("hang", func(in *Incoming) {
			started <- struct{}{}
			<-in.Ctx.Done() // released by the CancelRequest
			canceled <- in.Header.RequestID
			_ = in.Reply(giop.ReplyOK, nil)
		})
		ep, err := srv.Listen("inproc:*")
		if err != nil {
			t.Fatal(err)
		}
		cli := NewClient(reg, WithByteOrder(order))

		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() {
			_, _, _, err := cli.Invoke(ctx, ep, requestHeader(cli, "hang", "op"), nil)
			errc <- err
		}()
		<-started
		cancel()
		if err := <-errc; err == nil {
			t.Fatal("hung invoke returned without error")
		}
		select {
		case <-canceled:
			// Server matched the CancelRequest to the in-flight id.
		case <-time.After(5 * time.Second):
			t.Fatalf("order %v: server never observed the cancel", order)
		}
		cli.Close()
		srv.Close()
	}
}
