package future_test

import (
	"fmt"

	"pardis/internal/future"
)

// A future stands in for a result that is still being computed
// remotely — the paper's diffusion_nb pattern.
func ExampleNew() {
	f, resolve := future.New[float64]()
	go resolve.Resolve(3.14)
	v, err := f.Get()
	fmt.Println(v, err)
	// Output:
	// 3.14 <nil>
}
