package future

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestResolve(t *testing.T) {
	f, r := New[int]()
	if f.Ready() {
		t.Fatal("fresh future is ready")
	}
	go r.Resolve(42)
	v, err := f.Get()
	if err != nil || v != 42 {
		t.Fatalf("Get = %d, %v", v, err)
	}
	if !f.Ready() {
		t.Fatal("resolved future not ready")
	}
}

func TestReject(t *testing.T) {
	sentinel := errors.New("remote failed")
	f, r := New[string]()
	r.Reject(sentinel)
	v, err := f.Get()
	if !errors.Is(err, sentinel) || v != "" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestRejectNilErrorBecomesErrRejected(t *testing.T) {
	f, r := New[int]()
	r.Reject(nil)
	_, err := f.Get()
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

func TestDoubleCompleteIgnored(t *testing.T) {
	f, r := New[int]()
	r.Resolve(1)
	r.Resolve(2)
	r.Reject(errors.New("late"))
	v, err := f.Get()
	if v != 1 || err != nil {
		t.Fatalf("Get = %d, %v", v, err)
	}
}

func TestGetBlocksUntilResolve(t *testing.T) {
	f, r := New[int]()
	got := make(chan int, 1)
	go func() {
		v, _ := f.Get()
		got <- v
	}()
	select {
	case <-got:
		t.Fatal("Get returned before Resolve")
	case <-time.After(10 * time.Millisecond):
	}
	r.Resolve(7)
	select {
	case v := <-got:
		if v != 7 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("Get never returned")
	}
}

func TestGetContextCancellation(t *testing.T) {
	f, _ := New[int]()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.GetContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestGetContextCompletes(t *testing.T) {
	f, r := New[int]()
	r.Resolve(5)
	v, err := f.GetContext(context.Background())
	if err != nil || v != 5 {
		t.Fatalf("GetContext = %d, %v", v, err)
	}
}

func TestManyWaiters(t *testing.T) {
	f, r := New[int]()
	const N = 20
	var wg sync.WaitGroup
	results := make([]int, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = f.Get()
		}(i)
	}
	r.Resolve(99)
	wg.Wait()
	for i, v := range results {
		if v != 99 {
			t.Fatalf("waiter %d got %d", i, v)
		}
	}
}

func TestThen(t *testing.T) {
	f, r := New[int]()
	got := make(chan int, 1)
	f.Then(func(v int, err error) { got <- v })
	r.Resolve(11)
	select {
	case v := <-got:
		if v != 11 {
			t.Fatalf("Then got %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("Then callback never ran")
	}
}

func TestDoneSelect(t *testing.T) {
	f, r := New[int]()
	select {
	case <-f.Done():
		t.Fatal("Done closed early")
	default:
	}
	r.Resolve(0)
	select {
	case <-f.Done():
	default:
		t.Fatal("Done not closed after resolve")
	}
}

func TestResolvedRejectedHelpers(t *testing.T) {
	v, err := Resolved("x").Get()
	if err != nil || v != "x" {
		t.Fatalf("Resolved: %q %v", v, err)
	}
	sentinel := errors.New("nope")
	_, err = Rejected[int](sentinel).Get()
	if !errors.Is(err, sentinel) {
		t.Fatalf("Rejected: %v", err)
	}
}
