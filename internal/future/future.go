// Package future provides the typed futures PARDIS returns from
// non-blocking invocations (the diffusion_nb style of stub in §2.1,
// modeled on ABC++ futures): a placeholder for an out-argument that is
// not yet available, letting a client use remote resources
// concurrently with its own.
package future

import (
	"context"
	"errors"
	"sync"
)

// ErrRejected wraps the cause when a future completes with an error
// and the caller asks for the value anyway.
var ErrRejected = errors.New("future: rejected")

// Future is the read side of a deferred value of type T. It is safe
// for concurrent use; any number of goroutines may wait on it.
type Future[T any] struct {
	mu    sync.Mutex
	done  chan struct{}
	value T
	err   error
}

// Resolver is the write side; exactly one of Resolve or Reject may be
// called, once.
type Resolver[T any] struct {
	f    *Future[T]
	once sync.Once
}

// New creates a linked Future/Resolver pair.
func New[T any]() (*Future[T], *Resolver[T]) {
	f := &Future[T]{done: make(chan struct{})}
	return f, &Resolver[T]{f: f}
}

// Resolve completes the future with a value. Subsequent calls to
// Resolve or Reject are no-ops.
func (r *Resolver[T]) Resolve(v T) {
	r.once.Do(func() {
		r.f.mu.Lock()
		r.f.value = v
		r.f.mu.Unlock()
		close(r.f.done)
	})
}

// Reject completes the future with an error.
func (r *Resolver[T]) Reject(err error) {
	if err == nil {
		err = ErrRejected
	}
	r.once.Do(func() {
		r.f.mu.Lock()
		r.f.err = err
		r.f.mu.Unlock()
		close(r.f.done)
	})
}

// Get blocks until the future completes and returns its value or the
// rejection error.
func (f *Future[T]) Get() (T, error) {
	<-f.done
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.value, f.err
}

// GetContext is Get with cancellation: it returns ctx.Err() if the
// context ends first (the future itself is unaffected and can still
// complete later).
func (f *Future[T]) GetContext(ctx context.Context) (T, error) {
	select {
	case <-f.done:
		return f.Get()
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// Ready reports whether the future has completed (either way) without
// blocking — the "touch" operation of classic future libraries.
func (f *Future[T]) Ready() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Done returns a channel closed when the future completes, for use in
// select statements alongside other events.
func (f *Future[T]) Done() <-chan struct{} { return f.done }

// Then registers fn to run in a new goroutine once the future
// completes; it returns immediately. Errors are delivered as the
// second argument.
func (f *Future[T]) Then(fn func(T, error)) {
	go func() {
		v, err := f.Get()
		fn(v, err)
	}()
}

// Resolved returns an already-completed future holding v.
func Resolved[T any](v T) *Future[T] {
	f, r := New[T]()
	r.Resolve(v)
	return f
}

// Rejected returns an already-failed future.
func Rejected[T any](err error) *Future[T] {
	f, r := New[T]()
	r.Reject(err)
	return f
}
