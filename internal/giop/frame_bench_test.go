package giop

import (
	"bytes"
	"net"
	"testing"

	"pardis/internal/cdr"
)

// discardBuffers swallows writes but keeps the gather-write fast path,
// so the write benchmark exercises the same code shape as a metered
// TCP conn.
type discardBuffers struct{}

func (discardBuffers) Write(p []byte) (int, error) { return len(p), nil }

func (discardBuffers) WriteBuffers(v *net.Buffers) (int64, error) {
	var n int64
	for _, b := range *v {
		n += int64(len(b))
	}
	*v = (*v)[:0]
	return n, nil
}

func BenchmarkWriteMessage(b *testing.B) {
	for _, n := range []int{0, 256, 64 << 10} {
		body := make([]byte, n)
		b.Run(byteCountName(n), func(b *testing.B) {
			b.SetBytes(int64(n) + HeaderLen)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := WriteMessage(discardBuffers{}, cdr.BigEndian, MsgRequest, body); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byteCountName(n int) string {
	switch {
	case n >= 1<<10:
		return "body=" + itoa(n>>10) + "KiB"
	default:
		return "body=" + itoa(n) + "B"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d [8]byte
	i := len(d)
	for n > 0 {
		i--
		d[i] = byte('0' + n%10)
		n /= 10
	}
	return string(d[i:])
}

// loopReader replays one frame forever, so the reader benchmark never
// rebuilds its input.
type loopReader struct {
	data []byte
	pos  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.pos == len(l.data) {
		l.pos = 0
	}
	n := copy(p, l.data[l.pos:])
	l.pos += n
	return n, nil
}

func BenchmarkFrameReader(b *testing.B) {
	for _, n := range []int{4, 256, 8 << 10} {
		var buf bytes.Buffer
		t := MsgCancelRequest // pooled when small
		if n > pooledBodyMax {
			t = MsgReply
		}
		if err := WriteMessage(&buf, cdr.BigEndian, t, make([]byte, n)); err != nil {
			b.Fatal(err)
		}
		b.Run(byteCountName(n), func(b *testing.B) {
			fr := NewFrameReader(&loopReader{data: buf.Bytes()})
			b.SetBytes(int64(n) + HeaderLen)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f, err := fr.ReadFrame()
				if err != nil {
					b.Fatal(err)
				}
				f.Release()
			}
		})
	}
}

func BenchmarkAcquireEncoder(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := AcquireEncoder(cdr.BigEndian)
		e.PutULong(uint32(i))
		e.Release()
	}
}
