package giop

import (
	"bytes"
	"testing"

	"pardis/internal/cdr"
	"pardis/internal/telemetry"
)

// TestTraceContextRoundTrip: the 1.1 request header carries the trace
// identity through framing in both byte orders.
func TestTraceContextRoundTrip(t *testing.T) {
	h := RequestHeader{
		RequestID:        7,
		InvocationID:     42,
		ResponseExpected: true,
		ObjectKey:        "objects/x",
		Operation:        "solve",
		ThreadRank:       -1,
		ThreadCount:      1,
		Trace: telemetry.TraceContext{
			TraceID: 0x0123456789ABCDEF,
			SpanID:  0xFEDCBA9876543210,
			Sampled: true,
		},
	}
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		e := cdr.NewEncoder(order)
		h.Encode(e)
		e.PutLong(99) // body data after the header must still align
		var buf bytes.Buffer
		if err := WriteMessage(&buf, order, MsgRequest, e.Bytes()); err != nil {
			t.Fatal(err)
		}
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.Minor != VersionMinor {
			t.Fatalf("frame minor = %d, want %d", f.Minor, VersionMinor)
		}
		d := cdr.NewDecoder(f.Order, f.Body)
		got, err := DecodeRequestHeaderV(d, f.Minor)
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, h)
		}
		if v, _ := d.Long(); v != 99 {
			t.Fatalf("body after traced header = %d", v)
		}
	}
}

// TestOldHeaderWithoutTraceBytes: a header framed by a 1.0 peer ends
// right after ThreadCount; the decoder must accept it, leave Trace
// zero, and hand the body bytes through undisturbed.
func TestOldHeaderWithoutTraceBytes(t *testing.T) {
	h := RequestHeader{
		RequestID:        3,
		InvocationID:     11,
		ResponseExpected: true,
		ObjectKey:        "objects/y",
		Operation:        "old",
		ThreadRank:       0,
		ThreadCount:      2,
	}
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		e := cdr.NewEncoder(order)
		h.EncodeV10(e)
		e.PutLong(1234)

		// Frame it exactly as a 1.0 peer would: minor version byte 0.
		var buf bytes.Buffer
		if err := WriteMessage(&buf, order, MsgRequest, e.Bytes()); err != nil {
			t.Fatal(err)
		}
		frame := buf.Bytes()
		frame[5] = 0 // downgrade the minor version on the wire

		f, err := ReadFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("1.0 frame rejected: %v", err)
		}
		if f.Minor != 0 {
			t.Fatalf("frame minor = %d, want 0", f.Minor)
		}
		d := cdr.NewDecoder(f.Order, f.Body)
		got, err := DecodeRequestHeaderV(d, f.Minor)
		if err != nil {
			t.Fatalf("1.0 header rejected: %v", err)
		}
		if got.Trace.Valid() || got.Trace.Sampled {
			t.Fatalf("1.0 header produced trace %+v", got.Trace)
		}
		got.Trace = telemetry.TraceContext{}
		if got != h {
			t.Fatalf("1.0 round trip:\n got %+v\nwant %+v", got, h)
		}
		if v, _ := d.Long(); v != 1234 {
			t.Fatalf("body after 1.0 header = %d", v)
		}
	}
}

// TestUntracedHeaderCostsZeros: an untraced 1.1 request carries a zero
// trace context, and decoding reports it invalid (so servers skip span
// creation entirely).
func TestUntracedHeaderCostsZeros(t *testing.T) {
	h := RequestHeader{RequestID: 1, ObjectKey: "k", Operation: "op", ThreadCount: 1}
	e := cdr.NewEncoder(cdr.BigEndian)
	h.Encode(e)
	got, err := DecodeRequestHeader(cdr.NewDecoder(cdr.BigEndian, e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace.Valid() {
		t.Fatalf("zero trace decoded as valid: %+v", got.Trace)
	}
}
