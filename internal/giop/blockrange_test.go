package giop

import (
	"errors"
	"testing"
)

func TestBlockSinkKey(t *testing.T) {
	key, err := BlockSinkKey(0x12345678, 0x9A)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(0x12345678)<<8 | 0x9A; key != want {
		t.Fatalf("key = %#x, want %#x", key, want)
	}
	if _, err := BlockSinkKey(MaxBlockInvocationID, MaxBlockArgIndex); err != nil {
		t.Fatalf("max-range key rejected: %v", err)
	}
	if _, err := BlockSinkKey(MaxBlockInvocationID+1, 0); !errors.Is(err, ErrBlockRange) {
		t.Fatalf("oversized invocation ID: got %v, want ErrBlockRange", err)
	}
	if _, err := BlockSinkKey(0, MaxBlockArgIndex+1); !errors.Is(err, ErrBlockRange) {
		t.Fatalf("oversized arg index: got %v, want ErrBlockRange", err)
	}
}

func TestCheckBlockRange(t *testing.T) {
	cases := []struct {
		name   string
		dstOff int
		count  int
		ok     bool
	}{
		{"zero", 0, 0, true},
		{"typical", 1 << 20, 1 << 20, true},
		{"max offset", 0xFFFFFFFF, 0, true},
		{"max count", 0, 0xFFFFFFFF, true},
		{"negative offset", -1, 8, false},
		{"negative count", 0, -1, false},
		{"offset truncates", 1 << 32, 0, false},
		{"count truncates", 0, 1 << 32, false},
		{"end overflows uint32", 0xFFFFFFFF, 1, false},
	}
	for _, tc := range cases {
		err := CheckBlockRange(tc.dstOff, tc.count)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && !errors.Is(err, ErrBlockRange) {
			t.Errorf("%s: got %v, want ErrBlockRange", tc.name, err)
		}
	}
}
