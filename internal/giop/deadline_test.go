package giop

import (
	"bytes"
	"testing"

	"pardis/internal/cdr"
	"pardis/internal/telemetry"
)

// TestDeadlineHeaderRoundTrip: the 1.1 request header carries the
// remaining-deadline budget through framing in both byte orders, with
// the trace fields in front of it and body data after it.
func TestDeadlineHeaderRoundTrip(t *testing.T) {
	h := RequestHeader{
		RequestID:        9,
		InvocationID:     1 << 40,
		ResponseExpected: true,
		ObjectKey:        "objects/z",
		Operation:        "solve",
		ThreadRank:       2,
		ThreadCount:      4,
		Trace: telemetry.TraceContext{
			TraceID: 0xA5A5A5A5A5A5A5A5,
			SpanID:  0x5A5A5A5A5A5A5A5A,
			Sampled: true,
		},
		DeadlineMicros: 1_500_000, // 1.5s of budget left
	}
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		e := cdr.NewEncoder(order)
		h.Encode(e)
		e.PutLong(77)
		var buf bytes.Buffer
		if err := WriteMessage(&buf, order, MsgRequest, e.Bytes()); err != nil {
			t.Fatal(err)
		}
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		d := cdr.NewDecoder(f.Order, f.Body)
		got, err := DecodeRequestHeaderV(d, f.Minor)
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, h)
		}
		if got.DeadlineMicros != 1_500_000 {
			t.Fatalf("DeadlineMicros = %d", got.DeadlineMicros)
		}
		if v, _ := d.Long(); v != 77 {
			t.Fatalf("body after deadline header = %d", v)
		}
	}
}

// TestOldHeaderWithoutDeadlineBytes: a header framed by a 1.0 peer
// ends right after ThreadCount — no trace bytes, no deadline budget.
// The decoder must treat the deadline as absent (0), exactly as it
// treats the trace as untraced.
func TestOldHeaderWithoutDeadlineBytes(t *testing.T) {
	h := RequestHeader{
		RequestID:        4,
		InvocationID:     21,
		ResponseExpected: true,
		ObjectKey:        "objects/w",
		Operation:        "legacy",
		ThreadRank:       -1,
		ThreadCount:      1,
	}
	e := cdr.NewEncoder(cdr.BigEndian)
	h.EncodeV10(e)
	e.PutLong(55)

	var buf bytes.Buffer
	if err := WriteMessage(&buf, cdr.BigEndian, MsgRequest, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[5] = 0 // downgrade the minor version on the wire

	f, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("1.0 frame rejected: %v", err)
	}
	d := cdr.NewDecoder(f.Order, f.Body)
	got, err := DecodeRequestHeaderV(d, f.Minor)
	if err != nil {
		t.Fatalf("1.0 header rejected: %v", err)
	}
	if got.DeadlineMicros != 0 {
		t.Fatalf("1.0 header produced deadline %d, want 0 (absent)", got.DeadlineMicros)
	}
	if v, _ := d.Long(); v != 55 {
		t.Fatalf("body after 1.0 header = %d", v)
	}
}
