package giop

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"

	"pardis/internal/cdr"
)

// buffersRecorder implements BuffersWriter and records whether the
// gather path was taken.
type buffersRecorder struct {
	bytes.Buffer
	gathered bool
}

func (r *buffersRecorder) WriteBuffers(v *net.Buffers) (int64, error) {
	r.gathered = true
	return v.WriteTo(&r.Buffer)
}

// TestWriteMessageGatherPath: a writer exposing WriteBuffers must
// receive the frame through it, and the wire bytes must be identical
// to the plain-io.Writer path.
func TestWriteMessageGatherPath(t *testing.T) {
	body := []byte("gathered body bytes")
	var plain bytes.Buffer
	if err := WriteMessage(&plain, cdr.BigEndian, MsgRequest, body); err != nil {
		t.Fatal(err)
	}
	var rec buffersRecorder
	if err := WriteMessage(&rec, cdr.BigEndian, MsgRequest, body); err != nil {
		t.Fatal(err)
	}
	if !rec.gathered {
		t.Fatal("WriteMessage did not use the BuffersWriter fast path")
	}
	if !bytes.Equal(plain.Bytes(), rec.Bytes()) {
		t.Fatalf("gather path wire bytes diverge:\n% x\n% x", plain.Bytes(), rec.Bytes())
	}
}

// TestFrameReaderRoundTrip streams a mixed sequence of frames through
// a FrameReader and checks types, orders and bodies survive.
func TestFrameReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []struct {
		t    MsgType
		o    cdr.ByteOrder
		body []byte
	}{
		{MsgRequest, cdr.BigEndian, []byte("request body")},
		{MsgCancelRequest, cdr.LittleEndian, []byte{1, 2, 3, 4}},
		{MsgReply, cdr.LittleEndian, bytes.Repeat([]byte("r"), 2048)},
		{MsgCloseConnection, cdr.BigEndian, nil},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m.o, m.t, m.body); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	for i, m := range msgs {
		f, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != m.t || f.Order != m.o || !bytes.Equal(f.Body, m.body) {
			t.Fatalf("frame %d: got %v/%v/% x", i, f.Type, f.Order, f.Body)
		}
		f.Release()
	}
	if _, err := fr.ReadFrame(); err != io.EOF {
		t.Fatalf("after stream end: %v", err)
	}
}

// TestPooledEncoderDoubleRelease: releasing an encoder twice must not
// hand the same buffer to two subsequent acquirers.
func TestPooledEncoderDoubleRelease(t *testing.T) {
	e := AcquireEncoder(cdr.BigEndian)
	e.PutULong(1)
	e.Release()
	e.Release() // must be a no-op

	a := AcquireEncoder(cdr.BigEndian)
	b := AcquireEncoder(cdr.BigEndian)
	if a == b {
		t.Fatal("double release put the encoder into the pool twice")
	}
	a.PutULong(0xAAAAAAAA)
	b.PutULong(0xBBBBBBBB)
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two live pooled encoders share a buffer")
	}
	a.Release()
	b.Release()
}

// TestFrameDoubleRelease: a pooled control-frame body released twice
// (directly and through a copy of the frame) must not corrupt later
// frames by entering the pool twice.
func TestFrameDoubleRelease(t *testing.T) {
	var buf bytes.Buffer
	for i := byte(0); i < 3; i++ {
		if err := WriteMessage(&buf, cdr.BigEndian, MsgCancelRequest, []byte{i, i, i, i}); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	f0, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	dup := f0
	f0.Release()
	dup.Release() // second release of the same pooled body: no-op

	// If the body had been pooled twice, these two live frames would
	// alias one buffer and the second read would clobber the first.
	f1, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f1.Body, []byte{1, 1, 1, 1}) {
		t.Fatalf("frame 1 body corrupted after double release: % x", f1.Body)
	}
	if !bytes.Equal(f2.Body, []byte{2, 2, 2, 2}) {
		t.Fatalf("frame 2 body corrupted: % x", f2.Body)
	}
	f1.Release()
	f2.Release()
}

// TestReplyBodyValidAfterRelease: reply bodies escape their read loop
// (they are handed to waiting invokers), so Release on a reply frame
// must be a no-op and the body must stay intact while later frames are
// read and released.
func TestReplyBodyValidAfterRelease(t *testing.T) {
	var buf bytes.Buffer
	replyBody := []byte("reply payload that outlives the frame")
	if err := WriteMessage(&buf, cdr.BigEndian, MsgReply, replyBody); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := WriteMessage(&buf, cdr.BigEndian, MsgCancelRequest, []byte{9, 9, 9, 9}); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	f, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	body := f.Body
	f.Release()
	for i := 0; i < 4; i++ {
		cf, err := fr.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		cf.Release()
	}
	if !bytes.Equal(body, replyBody) {
		t.Fatalf("reply body corrupted after release + later reads: % x", body)
	}
}

// TestPooledEncoderConcurrent hammers acquire/encode/write/release
// from many goroutines; run under -race it proves the pooling
// discipline is data-race free and buffers are never shared while
// live.
func TestPooledEncoderConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			pattern := byte(g + 1)
			for i := 0; i < 500; i++ {
				e := AcquireEncoder(cdr.LittleEndian)
				for j := 0; j < 16; j++ {
					e.PutOctet(pattern)
				}
				got := e.Bytes()
				for j, b := range got {
					if b != pattern {
						t.Errorf("goroutine %d: byte %d = %#x, buffer shared while live", g, j, b)
						break
					}
				}
				if err := WriteMessage(io.Discard, cdr.LittleEndian, MsgRequest, got); err != nil {
					t.Error(err)
				}
				e.Release()
			}
		}()
	}
	wg.Wait()
}

// TestFrameReaderPooledBodyOnlyControl: large control bodies and all
// request/reply bodies must bypass the pool (Release is a no-op for
// them).
func TestFrameReaderPooledBodyOnlyControl(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, pooledBodyMax+1)
	if err := WriteMessage(&buf, cdr.BigEndian, MsgError, big); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(&buf, cdr.BigEndian, MsgRequest, []byte{1}); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	f, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.pb != nil {
		t.Fatal("oversized control body drawn from pool")
	}
	f, err = fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.pb != nil {
		t.Fatal("request body drawn from pool despite escaping ownership")
	}
}
