// Package giop implements PIOP, the PARDIS Inter-ORB Protocol: a
// GIOP-style message layer carrying requests, replies, locate
// queries, cancellations and — beyond stock GIOP — the block-transfer
// messages of multi-port distributed-argument transfer (§3.3 of the
// paper, "transfer headers").
//
// Every message starts with a fixed 12-octet header:
//
//	octets 0-3  magic "PIOP"
//	octets 4-5  protocol version (major, minor)
//	octet  6    flags (bit 0: 1 = little-endian body and length)
//	octet  7    message type
//	octets 8-11 body length (in the flagged byte order)
//
// followed by a CDR-encoded body whose alignment is computed from
// offset 0 of the body.
package giop

import (
	"errors"
	"fmt"
	"io"
	"net"

	"pardis/internal/cdr"
	"pardis/internal/telemetry"
)

// Protocol constants.
const (
	// MagicLen is the length of the magic string.
	MagicLen = 4
	// HeaderLen is the fixed message-header length.
	HeaderLen = 12
	// VersionMajor and VersionMinor identify this PIOP revision.
	// 1.1 added the trace context and the remaining-deadline budget to
	// the request header; 1.0 peers (headers without either) are still
	// decoded — see DecodeRequestHeaderV.
	VersionMajor = 1
	VersionMinor = 1
	// MaxBodyLen bounds a message body; longer lengths are treated
	// as stream corruption.
	MaxBodyLen = 1 << 30
)

var magic = [MagicLen]byte{'P', 'I', 'O', 'P'}

// MsgType enumerates PIOP message types.
type MsgType byte

// Message types.
const (
	MsgRequest MsgType = iota
	MsgReply
	MsgCancelRequest
	MsgLocateRequest
	MsgLocateReply
	MsgCloseConnection
	MsgError
	MsgBlockTransfer
	// MsgWindowPut is a one-sided block delivery into a pre-registered
	// destination window. Added in PIOP 1.1; 1.0 frames carrying it are
	// rejected, and senders only emit it to peers that advertised the
	// capability (see WindowPutHeader).
	MsgWindowPut
	msgTypeCount
)

func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "Request"
	case MsgReply:
		return "Reply"
	case MsgCancelRequest:
		return "CancelRequest"
	case MsgLocateRequest:
		return "LocateRequest"
	case MsgLocateReply:
		return "LocateReply"
	case MsgCloseConnection:
		return "CloseConnection"
	case MsgError:
		return "MessageError"
	case MsgBlockTransfer:
		return "BlockTransfer"
	case MsgWindowPut:
		return "WindowPut"
	default:
		return fmt.Sprintf("MsgType(%d)", byte(t))
	}
}

// Errors surfaced by the message layer.
var (
	ErrBadMagic   = errors.New("giop: bad magic")
	ErrBadVersion = errors.New("giop: unsupported protocol version")
	ErrBadType    = errors.New("giop: unknown message type")
	ErrTooLong    = errors.New("giop: message body exceeds limit")
	ErrBlockRange = errors.New("giop: block transfer field out of range")
)

// WriteMessage frames and writes one PIOP message. Header and body go
// out as a gather write (writev on TCP, or via the BuffersWriter hook
// for wrapping conns), so the body is never copied after the header;
// callers serialize concurrent writers above us, keeping frames whole
// on the wire.
func WriteMessage(w io.Writer, order cdr.ByteOrder, t MsgType, body []byte) error {
	if t >= msgTypeCount {
		return fmt.Errorf("%w: %d", ErrBadType, t)
	}
	if len(body) > MaxBodyLen {
		return fmt.Errorf("%w: %d bytes", ErrTooLong, len(body))
	}
	s := writePool.Get().(*writeScratch)
	putHeader(&s.hdr, order, t, uint32(len(body)))
	var err error
	if len(body) == 0 {
		_, err = w.Write(s.hdr[:])
	} else {
		// The gather vector lives in the pooled scratch so taking its
		// address (WriteTo/WriteBuffers consume the slice in place)
		// does not force a per-call allocation.
		s.vec[0], s.vec[1] = s.hdr[:], body
		s.bufs = net.Buffers(s.vec[:2])
		if bw, ok := w.(BuffersWriter); ok {
			_, err = bw.WriteBuffers(&s.bufs)
		} else {
			_, err = s.bufs.WriteTo(w)
		}
		s.vec[0], s.vec[1] = nil, nil
		s.bufs = nil
	}
	writePool.Put(s)
	return err
}

// WriteMessageTail frames head followed by tail as one message body,
// gather-writing all three segments (header, head, tail) in a single
// writev. The tail — typically raw element data aliasing application
// memory on the window-put send path — is never copied into a frame
// buffer; the caller guarantees it stays unmodified for the duration
// of the write.
func WriteMessageTail(w io.Writer, order cdr.ByteOrder, t MsgType, head, tail []byte) error {
	if len(tail) == 0 {
		return WriteMessage(w, order, t, head)
	}
	if t >= msgTypeCount {
		return fmt.Errorf("%w: %d", ErrBadType, t)
	}
	n := len(head) + len(tail)
	if n > MaxBodyLen {
		return fmt.Errorf("%w: %d bytes", ErrTooLong, n)
	}
	s := writePool.Get().(*writeScratch)
	putHeader(&s.hdr, order, t, uint32(n))
	s.vec[0], s.vec[1], s.vec[2] = s.hdr[:], head, tail
	s.bufs = net.Buffers(s.vec[:3])
	var err error
	if bw, ok := w.(BuffersWriter); ok {
		_, err = bw.WriteBuffers(&s.bufs)
	} else {
		_, err = s.bufs.WriteTo(w)
	}
	s.vec[0], s.vec[1], s.vec[2] = nil, nil, nil
	s.bufs = nil
	writePool.Put(s)
	return err
}

// Frame is one framed PIOP message plus the protocol revision it was
// sent under. Decoders of version-evolved bodies (the request header
// gained trace bytes in 1.1) need Minor to pick the right layout.
type Frame struct {
	Type  MsgType
	Order cdr.ByteOrder
	Minor byte
	Body  []byte

	// pb is the pooled backing of Body for control frames read with a
	// FrameReader; see Frame.Release.
	pb *pooledBody
}

// ReadFrame reads and validates one PIOP message, keeping the sender's
// minor protocol version alongside the body. The header scratch is
// pooled; the body is always freshly allocated (ownership transfers
// to the caller). Read loops should prefer a FrameReader, which adds
// read buffering and body pooling.
func ReadFrame(r io.Reader) (Frame, error) {
	hdr := writePool.Get().(*writeScratch)
	f, err := readFrame(r, &hdr.hdr, false)
	writePool.Put(hdr)
	return f, err
}

// ReadMessage reads and validates one PIOP message, returning its
// type, body byte order and body. Callers that must decode
// version-evolved bodies should use ReadFrame to keep the sender's
// minor version.
func ReadMessage(r io.Reader) (MsgType, cdr.ByteOrder, []byte, error) {
	f, err := ReadFrame(r)
	if err != nil {
		return 0, 0, nil, err
	}
	return f.Type, f.Order, f.Body, nil
}

// ReplyStatus enumerates reply outcomes.
type ReplyStatus uint32

// Reply statuses.
const (
	// ReplyOK carries marshaled out-arguments.
	ReplyOK ReplyStatus = iota
	// ReplyUserException carries a user exception body.
	ReplyUserException
	// ReplySystemException carries a SystemException body.
	ReplySystemException
	// ReplyLocationForward carries a stringified IOR to retry at.
	ReplyLocationForward
)

func (s ReplyStatus) String() string {
	switch s {
	case ReplyOK:
		return "NO_EXCEPTION"
	case ReplyUserException:
		return "USER_EXCEPTION"
	case ReplySystemException:
		return "SYSTEM_EXCEPTION"
	case ReplyLocationForward:
		return "LOCATION_FORWARD"
	default:
		return fmt.Sprintf("ReplyStatus(%d)", uint32(s))
	}
}

// RequestHeader precedes the marshaled in-arguments in a Request body.
type RequestHeader struct {
	// RequestID pairs the request with its reply on the connection.
	RequestID uint32
	// InvocationID correlates this request with block transfers that
	// arrive on other connections (multi-port transfer). It must be
	// unique across all clients of the server for the lifetime of the
	// invocation; clients derive it from a per-process random prefix
	// plus a counter.
	InvocationID uint64
	// ResponseExpected is false for oneway operations.
	ResponseExpected bool
	// ObjectKey names the target object within its ORB.
	ObjectKey string
	// Operation is the IDL operation name.
	Operation string
	// ThreadRank is the client's SPMD rank issuing this request, or
	// -1 for a plain (non-SPMD) client.
	ThreadRank int32
	// ThreadCount is the client's SPMD section size (1 for plain
	// clients). The server uses it to compute transfer plans.
	ThreadCount int32
	// Trace carries the request's distributed tracing identity (trace
	// id, parent span id, sampled flag) across the process boundary.
	// Added in PIOP 1.1; a zero value means "untraced" and costs the
	// wire 17 zero bytes. Headers framed as 1.0 omit it entirely.
	Trace telemetry.TraceContext
	// DeadlineMicros is the client's remaining end-to-end time budget
	// for this request in microseconds, measured when the request was
	// written (0 = no deadline). It is a relative duration, not an
	// absolute timestamp, so it survives clock skew between peers; the
	// server rebases it against its own clock on arrival and sheds the
	// request with a TIMEOUT system exception once the budget is gone.
	// Added in PIOP 1.1 after the trace context; 1.0 headers omit it.
	DeadlineMicros uint64
}

// Encode appends the header to an encoder (PIOP 1.1 layout, trace
// context included).
func (h *RequestHeader) Encode(e *cdr.Encoder) {
	e.PutULong(h.RequestID)
	e.PutULongLong(h.InvocationID)
	e.PutBoolean(h.ResponseExpected)
	e.PutString(h.ObjectKey)
	e.PutString(h.Operation)
	e.PutLong(h.ThreadRank)
	e.PutLong(h.ThreadCount)
	e.PutULongLong(h.Trace.TraceID)
	e.PutULongLong(h.Trace.SpanID)
	e.PutBoolean(h.Trace.Sampled)
	e.PutULongLong(h.DeadlineMicros)
}

// DecodeRequestHeader reads a current-version RequestHeader. For
// bodies framed under an older minor version use
// DecodeRequestHeaderV.
func DecodeRequestHeader(d *cdr.Decoder) (RequestHeader, error) {
	return DecodeRequestHeaderV(d, VersionMinor)
}

// DecodeRequestHeaderV reads a RequestHeader laid out by the given
// minor protocol version: 1.0 headers carry no trace or deadline
// bytes (the decoder leaves Trace zero and DeadlineMicros 0, i.e. "no
// deadline"), 1.1 headers carry trace id, span id, the sampled flag
// and the remaining deadline budget.
func DecodeRequestHeaderV(d *cdr.Decoder, minor byte) (RequestHeader, error) {
	var h RequestHeader
	var err error
	if h.RequestID, err = d.ULong(); err != nil {
		return h, err
	}
	if h.InvocationID, err = d.ULongLong(); err != nil {
		return h, err
	}
	if h.ResponseExpected, err = d.Boolean(); err != nil {
		return h, err
	}
	if h.ObjectKey, err = d.String(); err != nil {
		return h, err
	}
	if h.Operation, err = d.String(); err != nil {
		return h, err
	}
	if h.ThreadRank, err = d.Long(); err != nil {
		return h, err
	}
	if h.ThreadCount, err = d.Long(); err != nil {
		return h, err
	}
	if minor == 0 {
		return h, nil // 1.0 header: no trace or deadline bytes on the wire
	}
	if h.Trace.TraceID, err = d.ULongLong(); err != nil {
		return h, err
	}
	if h.Trace.SpanID, err = d.ULongLong(); err != nil {
		return h, err
	}
	if h.Trace.Sampled, err = d.Boolean(); err != nil {
		return h, err
	}
	if h.DeadlineMicros, err = d.ULongLong(); err != nil {
		return h, err
	}
	return h, nil
}

// EncodeV10 appends the header in the PIOP 1.0 layout (no trace or
// deadline bytes) — used by tests that exercise old-peer
// compatibility.
func (h *RequestHeader) EncodeV10(e *cdr.Encoder) {
	e.PutULong(h.RequestID)
	e.PutULongLong(h.InvocationID)
	e.PutBoolean(h.ResponseExpected)
	e.PutString(h.ObjectKey)
	e.PutString(h.Operation)
	e.PutLong(h.ThreadRank)
	e.PutLong(h.ThreadCount)
}

// ReplyHeader precedes the marshaled out-arguments in a Reply body.
type ReplyHeader struct {
	RequestID uint32
	Status    ReplyStatus
}

// Encode appends the header to an encoder.
func (h *ReplyHeader) Encode(e *cdr.Encoder) {
	e.PutULong(h.RequestID)
	e.PutULong(uint32(h.Status))
}

// DecodeReplyHeader reads a ReplyHeader.
func DecodeReplyHeader(d *cdr.Decoder) (ReplyHeader, error) {
	var h ReplyHeader
	var err error
	if h.RequestID, err = d.ULong(); err != nil {
		return h, err
	}
	s, err := d.ULong()
	if err != nil {
		return h, err
	}
	h.Status = ReplyStatus(s)
	return h, nil
}

// CancelRequestHeader asks the server to abandon a pending request.
type CancelRequestHeader struct {
	RequestID uint32
}

// Encode appends the header to an encoder.
func (h *CancelRequestHeader) Encode(e *cdr.Encoder) { e.PutULong(h.RequestID) }

// DecodeCancelRequestHeader reads a CancelRequestHeader.
func DecodeCancelRequestHeader(d *cdr.Decoder) (CancelRequestHeader, error) {
	id, err := d.ULong()
	return CancelRequestHeader{RequestID: id}, err
}

// LocateStatus enumerates LocateReply outcomes.
type LocateStatus uint32

// Locate statuses.
const (
	// LocateUnknown means the object key is not served here.
	LocateUnknown LocateStatus = iota
	// LocateHere means the object is served on this connection.
	LocateHere
	// LocateForward carries a stringified IOR to retry at.
	LocateForward
)

// LocateRequestHeader asks whether an object key is served here.
type LocateRequestHeader struct {
	RequestID uint32
	ObjectKey string
}

// Encode appends the header to an encoder.
func (h *LocateRequestHeader) Encode(e *cdr.Encoder) {
	e.PutULong(h.RequestID)
	e.PutString(h.ObjectKey)
}

// DecodeLocateRequestHeader reads a LocateRequestHeader.
func DecodeLocateRequestHeader(d *cdr.Decoder) (LocateRequestHeader, error) {
	var h LocateRequestHeader
	var err error
	if h.RequestID, err = d.ULong(); err != nil {
		return h, err
	}
	h.ObjectKey, err = d.String()
	return h, err
}

// LocateReplyHeader answers a LocateRequest. For LocateForward the
// body continues with a stringified IOR.
type LocateReplyHeader struct {
	RequestID uint32
	Status    LocateStatus
}

// Encode appends the header to an encoder.
func (h *LocateReplyHeader) Encode(e *cdr.Encoder) {
	e.PutULong(h.RequestID)
	e.PutULong(uint32(h.Status))
}

// DecodeLocateReplyHeader reads a LocateReplyHeader.
func DecodeLocateReplyHeader(d *cdr.Decoder) (LocateReplyHeader, error) {
	var h LocateReplyHeader
	var err error
	if h.RequestID, err = d.ULong(); err != nil {
		return h, err
	}
	s, err := d.ULong()
	h.Status = LocateStatus(s)
	return h, err
}

// BlockTransferHeader precedes one block of a distributed argument in
// multi-port transfer (the paper's "transfer header": the receiver
// "unpacks them according to information contained in the transfer
// header"). The element payload follows in CDR.
type BlockTransferHeader struct {
	// InvocationID ties the block to its invocation across
	// connections; it matches the RequestHeader.InvocationID of the
	// invocation the block belongs to.
	InvocationID uint64
	// ArgIndex identifies which distributed argument of the
	// operation this block belongs to.
	ArgIndex uint32
	// FromThread and ToThread are SPMD ranks on the sending and
	// receiving sides.
	FromThread int32
	ToThread   int32
	// DstOff is the destination local offset of the block's first
	// element; Count is the element count.
	DstOff uint32
	Count  uint32
	// Last marks the final block this sender contributes to
	// (RequestID, ArgIndex, ToThread), letting the receiver detect
	// completion without knowing the full plan in advance.
	Last bool
}

// Encode appends the header to an encoder.
func (h *BlockTransferHeader) Encode(e *cdr.Encoder) {
	e.PutULongLong(h.InvocationID)
	e.PutULong(h.ArgIndex)
	e.PutLong(h.FromThread)
	e.PutLong(h.ToThread)
	e.PutULong(h.DstOff)
	e.PutULong(h.Count)
	e.PutBoolean(h.Last)
}

// DecodeBlockTransferHeader reads a BlockTransferHeader.
func DecodeBlockTransferHeader(d *cdr.Decoder) (BlockTransferHeader, error) {
	var h BlockTransferHeader
	var err error
	if h.InvocationID, err = d.ULongLong(); err != nil {
		return h, err
	}
	if h.ArgIndex, err = d.ULong(); err != nil {
		return h, err
	}
	if h.FromThread, err = d.Long(); err != nil {
		return h, err
	}
	if h.ToThread, err = d.Long(); err != nil {
		return h, err
	}
	if h.DstOff, err = d.ULong(); err != nil {
		return h, err
	}
	if h.Count, err = d.ULong(); err != nil {
		return h, err
	}
	h.Last, err = d.Boolean()
	return h, err
}

// WindowPutHeader precedes the raw element payload of a MsgWindowPut
// frame: a one-sided delivery into a destination window the receiver
// registered before advertising the window ID. Unlike a routed
// BlockTransfer, the payload carries no CDR sequence framing — the
// element count is here, so a receiver that has the window registered
// can land the bytes straight off its read buffer into
// dst[DstOff:DstOff+Count] without allocating a body.
type WindowPutHeader struct {
	// WindowID names the pre-registered destination window. The SPMD
	// data plane uses the block-sink key space (invocation<<8|argIndex)
	// so a window and its routed fallback address the same transfer.
	WindowID uint64
	// FromThread is the sending SPMD rank, for diagnostics and
	// partial-failure attribution.
	FromThread int32
	// DstOff is the destination element offset; Count the element
	// count. The body length must equal WindowPutPayloadBase+8*Count.
	DstOff uint32
	Count  uint32
	// Last marks the final put this sender contributes to the window.
	Last bool
}

// windowPutHeaderLen is the encoded header length (8+4+4+4+1); the
// payload starts at the next 8-byte boundary.
const windowPutHeaderLen = 21

// WindowPutPayloadBase is the fixed body offset of the raw element
// payload in a MsgWindowPut frame: the 21 header octets padded to
// 8-byte alignment so the elements land aligned on both ends.
const WindowPutPayloadBase = 24

// Encode appends the header to an encoder, padded to
// WindowPutPayloadBase so the element payload can follow directly.
func (h *WindowPutHeader) Encode(e *cdr.Encoder) {
	e.PutULongLong(h.WindowID)
	e.PutLong(h.FromThread)
	e.PutULong(h.DstOff)
	e.PutULong(h.Count)
	e.PutBoolean(h.Last)
	for i := windowPutHeaderLen; i < WindowPutPayloadBase; i++ {
		e.PutOctet(0)
	}
}

// DecodeWindowPutHeader reads a WindowPutHeader (the padding up to
// WindowPutPayloadBase is not consumed).
func DecodeWindowPutHeader(d *cdr.Decoder) (WindowPutHeader, error) {
	var h WindowPutHeader
	var err error
	if h.WindowID, err = d.ULongLong(); err != nil {
		return h, err
	}
	if h.FromThread, err = d.Long(); err != nil {
		return h, err
	}
	if h.DstOff, err = d.ULong(); err != nil {
		return h, err
	}
	if h.Count, err = d.ULong(); err != nil {
		return h, err
	}
	h.Last, err = d.Boolean()
	return h, err
}

// Block sinks are keyed by invocation ID and argument index packed
// into one uint64 (invocation in the high 56 bits, argument index in
// the low 8). The packing bounds both fields: invocation IDs above
// MaxBlockInvocationID would silently lose their high bits to the
// shift, and argument indexes above MaxBlockArgIndex would collide
// with the next invocation's key space.
const (
	MaxBlockInvocationID = 1<<56 - 1
	MaxBlockArgIndex     = 0xFF
)

// BlockSinkKey packs (invocation, argIndex) into the sink-routing key,
// validating that neither field overflows its packed width.
func BlockSinkKey(inv uint64, argIdx uint32) (uint64, error) {
	if inv > MaxBlockInvocationID {
		return 0, fmt.Errorf("%w: invocation id %#x exceeds 56 bits", ErrBlockRange, inv)
	}
	if argIdx > MaxBlockArgIndex {
		return 0, fmt.Errorf("%w: argument index %d exceeds %d", ErrBlockRange, argIdx, MaxBlockArgIndex)
	}
	return inv<<8 | uint64(argIdx), nil
}

// CheckBlockRange validates that a transfer's destination offset and
// element count fit the uint32 wire fields of BlockTransferHeader
// (including their sum, so DstOff+Count cannot wrap on the receiver).
func CheckBlockRange(dstOff, count int) error {
	if dstOff < 0 || uint64(dstOff) > 0xFFFFFFFF {
		return fmt.Errorf("%w: destination offset %d does not fit uint32", ErrBlockRange, dstOff)
	}
	if count < 0 || uint64(count) > 0xFFFFFFFF {
		return fmt.Errorf("%w: element count %d does not fit uint32", ErrBlockRange, count)
	}
	if uint64(dstOff)+uint64(count) > 0xFFFFFFFF {
		return fmt.Errorf("%w: offset %d + count %d overflows uint32", ErrBlockRange, dstOff, count)
	}
	return nil
}

// SystemException is the PIOP-level error a server returns when a
// request fails outside user code (unknown object, unmarshal failure,
// servant panic, ...).
type SystemException struct {
	// Code is a short machine-readable identifier, e.g.
	// "OBJECT_NOT_EXIST", "MARSHAL", "UNKNOWN".
	Code string
	// Detail is a human-readable explanation.
	Detail string
}

// Error implements error.
func (e *SystemException) Error() string {
	return fmt.Sprintf("pardis system exception %s: %s", e.Code, e.Detail)
}

// Encode appends the exception to an encoder.
func (e *SystemException) Encode(enc *cdr.Encoder) {
	enc.PutString(e.Code)
	enc.PutString(e.Detail)
}

// DecodeSystemException reads a SystemException.
func DecodeSystemException(d *cdr.Decoder) (*SystemException, error) {
	code, err := d.String()
	if err != nil {
		return nil, err
	}
	detail, err := d.String()
	if err != nil {
		return nil, err
	}
	return &SystemException{Code: code, Detail: detail}, nil
}
