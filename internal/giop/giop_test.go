package giop

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"pardis/internal/cdr"
)

func TestMessageRoundTrip(t *testing.T) {
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		var buf bytes.Buffer
		body := []byte{1, 2, 3, 4, 5}
		if err := WriteMessage(&buf, order, MsgRequest, body); err != nil {
			t.Fatal(err)
		}
		typ, gotOrder, gotBody, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != MsgRequest || gotOrder != order || !bytes.Equal(gotBody, body) {
			t.Fatalf("%v: got %v %v %v", order, typ, gotOrder, gotBody)
		}
	}
}

func TestEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, cdr.BigEndian, MsgCloseConnection, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != HeaderLen {
		t.Fatalf("frame length = %d", buf.Len())
	}
	typ, _, body, err := ReadMessage(&buf)
	if err != nil || typ != MsgCloseConnection || len(body) != 0 {
		t.Fatalf("read: %v %v %v", typ, body, err)
	}
}

func TestMultipleMessagesOnStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteMessage(&buf, cdr.LittleEndian, MsgReply, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		_, _, body, err := ReadMessage(&buf)
		if err != nil || body[0] != byte(i) {
			t.Fatalf("message %d: %v %v", i, body, err)
		}
	}
}

func TestBadMagic(t *testing.T) {
	frame := make([]byte, HeaderLen)
	copy(frame, "NOPE")
	_, _, _, err := ReadMessage(bytes.NewReader(frame))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadVersion(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteMessage(&buf, cdr.BigEndian, MsgRequest, nil)
	frame := buf.Bytes()
	frame[4] = 9
	_, _, _, err := ReadMessage(bytes.NewReader(frame))
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadType(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteMessage(&buf, cdr.BigEndian, MsgRequest, nil)
	frame := buf.Bytes()
	frame[7] = 200
	_, _, _, err := ReadMessage(bytes.NewReader(frame))
	if !errors.Is(err, ErrBadType) {
		t.Fatalf("err = %v", err)
	}
	if err := WriteMessage(io.Discard, cdr.BigEndian, MsgType(99), nil); !errors.Is(err, ErrBadType) {
		t.Fatalf("write bad type: %v", err)
	}
}

func TestOversizeLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteMessage(&buf, cdr.BigEndian, MsgRequest, nil)
	frame := buf.Bytes()
	frame[8], frame[9], frame[10], frame[11] = 0xFF, 0xFF, 0xFF, 0xFF
	_, _, _, err := ReadMessage(bytes.NewReader(frame))
	if !errors.Is(err, ErrTooLong) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteMessage(&buf, cdr.BigEndian, MsgRequest, []byte("full body"))
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, _, _, err := ReadMessage(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("cut=%d: no error", cut)
		}
	}
}

func TestRequestHeaderRoundTrip(t *testing.T) {
	h := RequestHeader{
		RequestID:        77,
		InvocationID:     0xDEADBEEF12345678,
		ResponseExpected: true,
		ObjectKey:        "objects/diffusion/0",
		Operation:        "diffusion",
		ThreadRank:       2,
		ThreadCount:      4,
	}
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		e := cdr.NewEncoder(order)
		h.Encode(e)
		e.PutLong(1234) // trailing body data must still align
		d := cdr.NewDecoder(order, e.Bytes())
		got, err := DecodeRequestHeader(d)
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("round trip: %+v != %+v", got, h)
		}
		if v, _ := d.Long(); v != 1234 {
			t.Fatalf("body after header = %d", v)
		}
	}
}

func TestReplyHeaderRoundTrip(t *testing.T) {
	for _, st := range []ReplyStatus{ReplyOK, ReplyUserException, ReplySystemException, ReplyLocationForward} {
		h := ReplyHeader{RequestID: 5, Status: st}
		e := cdr.NewEncoder(cdr.BigEndian)
		h.Encode(e)
		got, err := DecodeReplyHeader(cdr.NewDecoder(cdr.BigEndian, e.Bytes()))
		if err != nil || got != h {
			t.Fatalf("%v: %+v %v", st, got, err)
		}
	}
}

func TestLocateHeadersRoundTrip(t *testing.T) {
	lr := LocateRequestHeader{RequestID: 9, ObjectKey: "k"}
	e := cdr.NewEncoder(cdr.LittleEndian)
	lr.Encode(e)
	gotLR, err := DecodeLocateRequestHeader(cdr.NewDecoder(cdr.LittleEndian, e.Bytes()))
	if err != nil || gotLR != lr {
		t.Fatalf("locate request: %+v %v", gotLR, err)
	}
	lp := LocateReplyHeader{RequestID: 9, Status: LocateForward}
	e2 := cdr.NewEncoder(cdr.BigEndian)
	lp.Encode(e2)
	gotLP, err := DecodeLocateReplyHeader(cdr.NewDecoder(cdr.BigEndian, e2.Bytes()))
	if err != nil || gotLP != lp {
		t.Fatalf("locate reply: %+v %v", gotLP, err)
	}
}

func TestCancelHeaderRoundTrip(t *testing.T) {
	h := CancelRequestHeader{RequestID: 1 << 31}
	e := cdr.NewEncoder(cdr.BigEndian)
	h.Encode(e)
	got, err := DecodeCancelRequestHeader(cdr.NewDecoder(cdr.BigEndian, e.Bytes()))
	if err != nil || got != h {
		t.Fatalf("cancel: %+v %v", got, err)
	}
}

func TestBlockTransferHeaderRoundTrip(t *testing.T) {
	h := BlockTransferHeader{
		InvocationID: 3,
		ArgIndex:     1,
		FromThread:   2,
		ToThread:     5,
		DstOff:       16384,
		Count:        16384,
		Last:         true,
	}
	e := cdr.NewEncoder(cdr.LittleEndian)
	h.Encode(e)
	got, err := DecodeBlockTransferHeader(cdr.NewDecoder(cdr.LittleEndian, e.Bytes()))
	if err != nil || got != h {
		t.Fatalf("block transfer: %+v %v", got, err)
	}
}

func TestSystemExceptionRoundTrip(t *testing.T) {
	ex := &SystemException{Code: "OBJECT_NOT_EXIST", Detail: "no such key"}
	e := cdr.NewEncoder(cdr.BigEndian)
	ex.Encode(e)
	got, err := DecodeSystemException(cdr.NewDecoder(cdr.BigEndian, e.Bytes()))
	if err != nil || got.Code != ex.Code || got.Detail != ex.Detail {
		t.Fatalf("exception: %+v %v", got, err)
	}
	if got.Error() == "" {
		t.Fatal("empty error text")
	}
}

// Property: arbitrary request headers and bodies survive framing in
// both byte orders.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(id uint32, oneway bool, key, op string, rank, count int32, body []byte, le bool) bool {
		key = stripNUL(key)
		op = stripNUL(op)
		order := cdr.BigEndian
		if le {
			order = cdr.LittleEndian
		}
		h := RequestHeader{
			RequestID:        id,
			ResponseExpected: !oneway,
			ObjectKey:        key,
			Operation:        op,
			ThreadRank:       rank,
			ThreadCount:      count,
		}
		e := cdr.NewEncoder(order)
		h.Encode(e)
		e.PutOctetSeq(body)
		var buf bytes.Buffer
		if err := WriteMessage(&buf, order, MsgRequest, e.Bytes()); err != nil {
			return false
		}
		typ, gotOrder, raw, err := ReadMessage(&buf)
		if err != nil || typ != MsgRequest || gotOrder != order {
			return false
		}
		d := cdr.NewDecoder(gotOrder, raw)
		got, err := DecodeRequestHeader(d)
		if err != nil || got != h {
			return false
		}
		gotBody, err := d.OctetSeq()
		return err == nil && bytes.Equal(gotBody, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func stripNUL(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			return s[:i]
		}
	}
	return s
}
