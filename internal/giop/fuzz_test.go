package giop

import (
	"bytes"
	"testing"
)

// FuzzReadMessage: the wire reader must never panic or over-allocate
// on hostile frames.
func FuzzReadMessage(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteMessage(&buf, 0, MsgRequest, []byte("seed body"))
	f.Add(buf.Bytes())
	f.Add([]byte("PIOP"))
	f.Add([]byte{'P', 'I', 'O', 'P', 1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, frame []byte) {
		typ, order, body, err := ReadMessage(bytes.NewReader(frame))
		if err != nil {
			return
		}
		// A frame that parses must re-frame identically.
		var out bytes.Buffer
		if err := WriteMessage(&out, order, typ, body); err != nil {
			t.Fatalf("re-frame failed: %v", err)
		}
	})
}

// FuzzFrameReader: the buffered frame reader must agree with the
// unbuffered ReadMessage on every input — same accept/reject verdict,
// same frame contents — and never panic, whatever the pool state.
func FuzzFrameReader(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteMessage(&buf, 0, MsgRequest, []byte("seed body"))
	_ = WriteMessage(&buf, 1, MsgCancelRequest, []byte{1, 2, 3, 4})
	f.Add(buf.Bytes())
	f.Add([]byte("PIOP"))
	f.Add([]byte{'P', 'I', 'O', 'P', 1, 1, 0, 2, 0, 0, 0, 4, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, stream []byte) {
		fr := NewFrameReader(bytes.NewReader(stream))
		typ, order, body, refErr := ReadMessage(bytes.NewReader(stream))
		got, err := fr.ReadFrame()
		if (err == nil) != (refErr == nil) {
			t.Fatalf("verdicts diverge: FrameReader=%v ReadMessage=%v", err, refErr)
		}
		if err != nil {
			return
		}
		if got.Type != typ || got.Order != order || !bytes.Equal(got.Body, body) {
			t.Fatalf("frame diverges: %v/%v/% x vs %v/%v/% x",
				got.Type, got.Order, got.Body, typ, order, body)
		}
		got.Release()
	})
}
