package giop

import (
	"bytes"
	"testing"
)

// FuzzReadMessage: the wire reader must never panic or over-allocate
// on hostile frames.
func FuzzReadMessage(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteMessage(&buf, 0, MsgRequest, []byte("seed body"))
	f.Add(buf.Bytes())
	f.Add([]byte("PIOP"))
	f.Add([]byte{'P', 'I', 'O', 'P', 1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, frame []byte) {
		typ, order, body, err := ReadMessage(bytes.NewReader(frame))
		if err != nil {
			return
		}
		// A frame that parses must re-frame identically.
		var out bytes.Buffer
		if err := WriteMessage(&out, order, typ, body); err != nil {
			t.Fatalf("re-frame failed: %v", err)
		}
	})
}
