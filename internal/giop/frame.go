// Pooled zero-copy framing. The seed implementation allocated an
// encoder, a 12-byte header slice and a header+body copy per message,
// and paid two raw Read calls (header, then body) per inbound frame.
// This file removes all of that:
//
//   - WriteMessage gathers header and body with net.Buffers (writev on
//     TCP), so the body is never copied into a combined slice; the
//     12-byte header comes from a scratch pool.
//   - FrameReader reads frames through an internal bufio.Reader, so a
//     header+body pair costs at most one raw Read on the connection.
//   - AcquireEncoder hands out pooled cdr.Encoders with an explicit
//     Release discipline, so the request/reply encode path stops
//     allocating a fresh buffer per message.
//   - Control-frame bodies (CancelRequest, LocateRequest,
//     CloseConnection, MessageError) come from a body pool and are
//     returned with Frame.Release; bodies of Request/Reply/
//     BlockTransfer frames escape to their consumers and are therefore
//     always freshly allocated — ownership transfers with the frame.
//
// Pool traffic is accounted in pardis_giop_pool_gets_total and
// pardis_giop_pool_misses_total (labeled by pool), so the hit rate is
// 1 - misses/gets.
package giop

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"pardis/internal/cdr"
	"pardis/internal/telemetry"
)

// BuffersWriter lets a wrapping connection (metering, fault injection)
// forward a gather write to the transport underneath, preserving the
// single-writev path that net.Buffers only takes for raw *net.TCPConn.
type BuffersWriter interface {
	WriteBuffers(v *net.Buffers) (int64, error)
}

var (
	encPoolGets    = telemetry.Default.Counter("pardis_giop_pool_gets_total", "pool", "encoder")
	encPoolMisses  = telemetry.Default.Counter("pardis_giop_pool_misses_total", "pool", "encoder")
	bodyPoolGets   = telemetry.Default.Counter("pardis_giop_pool_gets_total", "pool", "frame_body")
	bodyPoolMisses = telemetry.Default.Counter("pardis_giop_pool_misses_total", "pool", "frame_body")
)

// writeScratch is the per-write header and gather vector, pooled so a
// message write allocates nothing.
type writeScratch struct {
	hdr  [HeaderLen]byte
	vec  [2][]byte
	bufs net.Buffers // aliases vec for the duration of one write
}

var writePool = sync.Pool{New: func() any { return new(writeScratch) }}

// putHeader fills a PIOP message header.
func putHeader(hdr *[HeaderLen]byte, order cdr.ByteOrder, t MsgType, n uint32) {
	copy(hdr[:], magic[:])
	hdr[4] = VersionMajor
	hdr[5] = VersionMinor
	hdr[6] = byte(order) & 1
	hdr[7] = byte(t)
	if order == cdr.BigEndian {
		hdr[8], hdr[9], hdr[10], hdr[11] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	} else {
		hdr[8], hdr[9], hdr[10], hdr[11] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	}
}

// maxRetainedEncoderBytes caps the buffer capacity a released encoder
// may bring back to the pool; encoders grown beyond it by a huge
// payload are dropped to the GC instead of pinning the memory.
const maxRetainedEncoderBytes = 1 << 20

// PooledEncoder is a cdr.Encoder drawn from the package pool by
// AcquireEncoder. Release returns it; after Release the encoder and
// any slice obtained from Bytes() must not be used (the buffer will
// back a later message). A second sequential Release is a safe no-op
// — the pool never receives the encoder twice, so a later frame
// cannot be corrupted by two owners sharing one buffer.
type PooledEncoder struct {
	*cdr.Encoder
	released atomic.Bool
}

var encPool = sync.Pool{New: func() any {
	encPoolMisses.Inc()
	return &PooledEncoder{Encoder: cdr.NewEncoder(cdr.BigEndian)}
}}

// AcquireEncoder returns a pooled encoder reset to the given byte
// order at stream offset 0. Callers must Release it after the encoded
// bytes have been written out.
func AcquireEncoder(order cdr.ByteOrder) *PooledEncoder {
	encPoolGets.Inc()
	pe := encPool.Get().(*PooledEncoder)
	pe.released.Store(false)
	pe.ResetTo(order, 0)
	return pe
}

// Release returns the encoder to the pool. Idempotent: double release
// does not hand the buffer out twice.
func (pe *PooledEncoder) Release() {
	if pe.released.Swap(true) {
		return
	}
	if cap(pe.Encoder.Bytes()) > maxRetainedEncoderBytes {
		return // oversized one-off: let the GC have it
	}
	encPool.Put(pe)
}

// pooledBodyMax bounds pooled control-frame bodies; larger (or
// escaping) bodies are allocated fresh.
const pooledBodyMax = 1 << 10

// pooledBody is a recyclable control-frame body with a double-release
// guard.
type pooledBody struct {
	b        [pooledBodyMax]byte
	released atomic.Bool
}

var bodyPool = sync.Pool{New: func() any {
	bodyPoolMisses.Inc()
	return new(pooledBody)
}}

// releasableType reports whether a message type's body never escapes
// its read loop, making it safe to draw from the body pool.
func releasableType(t MsgType) bool {
	switch t {
	case MsgCancelRequest, MsgLocateRequest, MsgCloseConnection, MsgError:
		return true
	}
	return false
}

// Release returns the frame's pooled body, if any, for reuse. Safe to
// call more than once (including on copies of the frame: the
// underlying buffer is returned at most once). After Release, Body
// must not be used. Frames whose bodies were not pooled (Request,
// Reply, BlockTransfer — their bodies transfer ownership to the
// consumer) make this a no-op.
func (f *Frame) Release() {
	pb := f.pb
	if pb == nil {
		return
	}
	f.pb = nil
	f.Body = nil
	if pb.released.Swap(true) {
		return
	}
	bodyPool.Put(pb)
}

// DefaultReadBufSize is the FrameReader's internal buffer size: large
// enough that a typical header+body pair arrives in one raw Read.
const DefaultReadBufSize = 64 << 10

// FrameReader reads PIOP frames through an internal buffered reader,
// with a reusable header scratch, so steady-state frame reads cost one
// body allocation (for escaping frame types) and usually one raw Read
// syscall. Not safe for concurrent use; each connection read loop owns
// one.
type FrameReader struct {
	br  *bufio.Reader
	hdr [HeaderLen]byte
}

// NewFrameReader returns a FrameReader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, DefaultReadBufSize)}
}

// ReadFrame reads and validates one PIOP message. Control-frame
// bodies are pooled: callers that finish with such a frame should call
// Frame.Release.
func (fr *FrameReader) ReadFrame() (Frame, error) {
	return readFrame(fr.br, &fr.hdr, true)
}

// readFrame reads one frame using the caller's header scratch. pooled
// enables drawing control-frame bodies from the body pool.
func readFrame(r io.Reader, hdr *[HeaderLen]byte, pooled bool) (Frame, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	if [MagicLen]byte(hdr[:MagicLen]) != magic {
		return Frame{}, fmt.Errorf("%w: % x", ErrBadMagic, hdr[:MagicLen])
	}
	if hdr[4] != VersionMajor || hdr[5] > VersionMinor {
		return Frame{}, fmt.Errorf("%w: %d.%d", ErrBadVersion, hdr[4], hdr[5])
	}
	order := cdr.ByteOrder(hdr[6] & 1)
	t := MsgType(hdr[7])
	if t >= msgTypeCount {
		return Frame{}, fmt.Errorf("%w: %d", ErrBadType, hdr[7])
	}
	var n uint32
	if order == cdr.BigEndian {
		n = uint32(hdr[8])<<24 | uint32(hdr[9])<<16 | uint32(hdr[10])<<8 | uint32(hdr[11])
	} else {
		n = uint32(hdr[11])<<24 | uint32(hdr[10])<<16 | uint32(hdr[9])<<8 | uint32(hdr[8])
	}
	if n > MaxBodyLen {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrTooLong, n)
	}
	f := Frame{Type: t, Order: order, Minor: hdr[5]}
	if n == 0 {
		return f, nil
	}
	if pooled && n <= pooledBodyMax && releasableType(t) {
		bodyPoolGets.Inc()
		pb := bodyPool.Get().(*pooledBody)
		pb.released.Store(false)
		f.pb = pb
		f.Body = pb.b[:n]
	} else {
		f.Body = make([]byte, n)
	}
	if _, err := io.ReadFull(r, f.Body); err != nil {
		f.Release()
		return Frame{}, err
	}
	return f, nil
}
