// Pooled zero-copy framing. The seed implementation allocated an
// encoder, a 12-byte header slice and a header+body copy per message,
// and paid two raw Read calls (header, then body) per inbound frame.
// This file removes all of that:
//
//   - WriteMessage gathers header and body with net.Buffers (writev on
//     TCP), so the body is never copied into a combined slice; the
//     12-byte header comes from a scratch pool.
//   - FrameReader reads frames through an internal bufio.Reader, so a
//     header+body pair costs at most one raw Read on the connection.
//   - AcquireEncoder hands out pooled cdr.Encoders with an explicit
//     Release discipline, so the request/reply encode path stops
//     allocating a fresh buffer per message.
//   - Control-frame bodies (CancelRequest, LocateRequest,
//     CloseConnection, MessageError) come from a body pool and are
//     returned with Frame.Release; bodies of Request/Reply/
//     BlockTransfer frames escape to their consumers and are therefore
//     always freshly allocated — ownership transfers with the frame.
//
// Pool traffic is accounted in pardis_giop_pool_gets_total and
// pardis_giop_pool_misses_total (labeled by pool), so the hit rate is
// 1 - misses/gets.
package giop

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"pardis/internal/cdr"
	"pardis/internal/telemetry"
)

// BuffersWriter lets a wrapping connection (metering, fault injection)
// forward a gather write to the transport underneath, preserving the
// single-writev path that net.Buffers only takes for raw *net.TCPConn.
type BuffersWriter interface {
	WriteBuffers(v *net.Buffers) (int64, error)
}

var (
	encPoolGets    = telemetry.Default.Counter("pardis_giop_pool_gets_total", "pool", "encoder")
	encPoolMisses  = telemetry.Default.Counter("pardis_giop_pool_misses_total", "pool", "encoder")
	bodyPoolGets   = telemetry.Default.Counter("pardis_giop_pool_gets_total", "pool", "frame_body")
	bodyPoolMisses = telemetry.Default.Counter("pardis_giop_pool_misses_total", "pool", "frame_body")
)

// writeScratch is the per-write header and gather vector, pooled so a
// message write allocates nothing. The vector has room for a third
// segment so WriteMessageTail can gather header, body head and a raw
// payload tail in one writev.
type writeScratch struct {
	hdr  [HeaderLen]byte
	vec  [3][]byte
	bufs net.Buffers // aliases vec for the duration of one write
}

var writePool = sync.Pool{New: func() any { return new(writeScratch) }}

// putHeader fills a PIOP message header.
func putHeader(hdr *[HeaderLen]byte, order cdr.ByteOrder, t MsgType, n uint32) {
	copy(hdr[:], magic[:])
	hdr[4] = VersionMajor
	hdr[5] = VersionMinor
	hdr[6] = byte(order) & 1
	hdr[7] = byte(t)
	if order == cdr.BigEndian {
		hdr[8], hdr[9], hdr[10], hdr[11] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	} else {
		hdr[8], hdr[9], hdr[10], hdr[11] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	}
}

// maxRetainedEncoderBytes caps the buffer capacity a released encoder
// may bring back to the pool; encoders grown beyond it by a huge
// payload are dropped to the GC instead of pinning the memory.
const maxRetainedEncoderBytes = 1 << 20

// PooledEncoder is a cdr.Encoder drawn from the package pool by
// AcquireEncoder. Release returns it; after Release the encoder and
// any slice obtained from Bytes() must not be used (the buffer will
// back a later message). A second sequential Release is a safe no-op
// — the pool never receives the encoder twice, so a later frame
// cannot be corrupted by two owners sharing one buffer.
type PooledEncoder struct {
	*cdr.Encoder
	released atomic.Bool
}

var encPool = sync.Pool{New: func() any {
	encPoolMisses.Inc()
	return &PooledEncoder{Encoder: cdr.NewEncoder(cdr.BigEndian)}
}}

// AcquireEncoder returns a pooled encoder reset to the given byte
// order at stream offset 0. Callers must Release it after the encoded
// bytes have been written out.
func AcquireEncoder(order cdr.ByteOrder) *PooledEncoder {
	encPoolGets.Inc()
	pe := encPool.Get().(*PooledEncoder)
	pe.released.Store(false)
	pe.ResetTo(order, 0)
	return pe
}

// Release returns the encoder to the pool. Idempotent: double release
// does not hand the buffer out twice.
func (pe *PooledEncoder) Release() {
	if pe.released.Swap(true) {
		return
	}
	if cap(pe.Encoder.Bytes()) > maxRetainedEncoderBytes {
		return // oversized one-off: let the GC have it
	}
	encPool.Put(pe)
}

// pooledBodyMax bounds pooled control-frame bodies; larger (or
// escaping) bodies are allocated fresh.
const pooledBodyMax = 1 << 10

// pooledBody is a recyclable control-frame body with a double-release
// guard.
type pooledBody struct {
	b        [pooledBodyMax]byte
	released atomic.Bool
}

var bodyPool = sync.Pool{New: func() any {
	bodyPoolMisses.Inc()
	return new(pooledBody)
}}

// releasableType reports whether a message type's body never escapes
// its read loop, making it safe to draw from the body pool.
func releasableType(t MsgType) bool {
	switch t {
	case MsgCancelRequest, MsgLocateRequest, MsgCloseConnection, MsgError:
		return true
	}
	return false
}

// Release returns the frame's pooled body, if any, for reuse. Safe to
// call more than once (including on copies of the frame: the
// underlying buffer is returned at most once). After Release, Body
// must not be used. Frames whose bodies were not pooled (Request,
// Reply, BlockTransfer — their bodies transfer ownership to the
// consumer) make this a no-op.
func (f *Frame) Release() {
	pb := f.pb
	if pb == nil {
		return
	}
	f.pb = nil
	f.Body = nil
	if pb.released.Swap(true) {
		return
	}
	bodyPool.Put(pb)
}

// DefaultReadBufSize is the FrameReader's internal buffer size: large
// enough that a typical header+body pair arrives in one raw Read.
const DefaultReadBufSize = 64 << 10

// FrameReader reads PIOP frames through an internal buffered reader,
// with a reusable header scratch, so steady-state frame reads cost one
// body allocation (for escaping frame types) and usually one raw Read
// syscall. Not safe for concurrent use; each connection read loop owns
// one.
type FrameReader struct {
	br  *bufio.Reader
	hdr [HeaderLen]byte
	// wp is the window-put preamble scratch for ReadWindowPut.
	wp [WindowPutPayloadBase]byte
}

// NewFrameReader returns a FrameReader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, DefaultReadBufSize)}
}

// ReadFrame reads and validates one PIOP message. Control-frame
// bodies are pooled: callers that finish with such a frame should call
// Frame.Release.
func (fr *FrameReader) ReadFrame() (Frame, error) {
	return readFrame(fr.br, &fr.hdr, true)
}

// FrameHeader is the validated fixed header of one PIOP message. After
// ReadFrameHeader the BodyLen body bytes remain unread on the stream;
// the caller must consume exactly that many — via ReadFrameBody, or
// for MsgWindowPut via ReadWindowPut plus a payload read — before the
// next header read.
type FrameHeader struct {
	Type    MsgType
	Order   cdr.ByteOrder
	Minor   byte
	BodyLen uint32
}

// ReadFrameHeader reads and validates just the 12-octet message
// header, leaving the body on the stream. Read loops that land
// window-put payloads directly into registered destination slices use
// this split form; everyone else should stay on ReadFrame.
func (fr *FrameReader) ReadFrameHeader() (FrameHeader, error) {
	return readFrameHeader(fr.br, &fr.hdr)
}

// ReadFrameBody completes a ReadFrameHeader into a Frame, with the
// same body pooling rules as ReadFrame.
func (fr *FrameReader) ReadFrameBody(h FrameHeader) (Frame, error) {
	return readFrameBody(fr.br, h, true)
}

// readFrameHeader reads and validates one message header using the
// caller's scratch.
func readFrameHeader(r io.Reader, hdr *[HeaderLen]byte) (FrameHeader, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return FrameHeader{}, err
	}
	if [MagicLen]byte(hdr[:MagicLen]) != magic {
		return FrameHeader{}, fmt.Errorf("%w: % x", ErrBadMagic, hdr[:MagicLen])
	}
	if hdr[4] != VersionMajor || hdr[5] > VersionMinor {
		return FrameHeader{}, fmt.Errorf("%w: %d.%d", ErrBadVersion, hdr[4], hdr[5])
	}
	order := cdr.ByteOrder(hdr[6] & 1)
	t := MsgType(hdr[7])
	if t >= msgTypeCount {
		return FrameHeader{}, fmt.Errorf("%w: %d", ErrBadType, hdr[7])
	}
	if t == MsgWindowPut && hdr[5] == 0 {
		// Window puts joined the protocol in 1.1; a 1.0 frame carrying
		// one is stream corruption, not an old peer.
		return FrameHeader{}, fmt.Errorf("%w: WindowPut in a 1.0 frame", ErrBadType)
	}
	var n uint32
	if order == cdr.BigEndian {
		n = uint32(hdr[8])<<24 | uint32(hdr[9])<<16 | uint32(hdr[10])<<8 | uint32(hdr[11])
	} else {
		n = uint32(hdr[11])<<24 | uint32(hdr[10])<<16 | uint32(hdr[9])<<8 | uint32(hdr[8])
	}
	if n > MaxBodyLen {
		return FrameHeader{}, fmt.Errorf("%w: %d bytes", ErrTooLong, n)
	}
	return FrameHeader{Type: t, Order: order, Minor: hdr[5], BodyLen: n}, nil
}

// readFrameBody reads the body announced by h. pooled enables drawing
// control-frame bodies from the body pool.
func readFrameBody(r io.Reader, h FrameHeader, pooled bool) (Frame, error) {
	f := Frame{Type: h.Type, Order: h.Order, Minor: h.Minor}
	n := h.BodyLen
	if n == 0 {
		return f, nil
	}
	if pooled && n <= pooledBodyMax && releasableType(h.Type) {
		bodyPoolGets.Inc()
		pb := bodyPool.Get().(*pooledBody)
		pb.released.Store(false)
		f.pb = pb
		f.Body = pb.b[:n]
	} else {
		f.Body = make([]byte, n)
	}
	if _, err := io.ReadFull(r, f.Body); err != nil {
		f.Release()
		return Frame{}, err
	}
	return f, nil
}

// readFrame reads one frame using the caller's header scratch. pooled
// enables drawing control-frame bodies from the body pool.
func readFrame(r io.Reader, hdr *[HeaderLen]byte, pooled bool) (Frame, error) {
	h, err := readFrameHeader(r, hdr)
	if err != nil {
		return Frame{}, err
	}
	return readFrameBody(r, h, pooled)
}

// ReadWindowPut reads the fixed window-put preamble (header plus its
// alignment padding) of a MsgWindowPut frame whose message header h
// was just read, validating that the announced body length matches the
// put's element count exactly. The Count*8 payload bytes remain on the
// stream for ReadWindowPayload, ReadPayloadBytes or DiscardPayload.
func (fr *FrameReader) ReadWindowPut(h FrameHeader) (WindowPutHeader, error) {
	if h.BodyLen < WindowPutPayloadBase {
		return WindowPutHeader{}, fmt.Errorf("%w: window put body %d bytes", ErrBlockRange, h.BodyLen)
	}
	if _, err := io.ReadFull(fr.br, fr.wp[:]); err != nil {
		return WindowPutHeader{}, err
	}
	wh, err := DecodeWindowPutHeader(cdr.NewDecoder(h.Order, fr.wp[:windowPutHeaderLen]))
	if err != nil {
		return WindowPutHeader{}, err
	}
	if uint64(h.BodyLen) != WindowPutPayloadBase+8*uint64(wh.Count) {
		return WindowPutHeader{}, fmt.Errorf("%w: window put of %d elements in a %d-byte body",
			ErrBlockRange, wh.Count, h.BodyLen)
	}
	return wh, nil
}

// swapPool holds scratch for landing cross-endianness window payloads
// in bounded chunks; the same-order path needs none.
var swapPool = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

// ReadWindowPayload lands a window put's element payload directly off
// the read buffer into dst, which must have exactly the put's Count
// elements. Same-endianness payloads move wire → destination slice
// with no intermediate buffer; cross-endianness payloads swap through
// a pooled scratch.
func (fr *FrameReader) ReadWindowPayload(order cdr.ByteOrder, dst []float64) error {
	if len(dst) == 0 {
		return nil
	}
	if order == cdr.NativeOrder {
		_, err := io.ReadFull(fr.br, cdr.Float64Bytes(dst))
		return err
	}
	bp := swapPool.Get().(*[]byte)
	b := *bp
	for len(dst) > 0 {
		n := len(b) / 8
		if n > len(dst) {
			n = len(dst)
		}
		if _, err := io.ReadFull(fr.br, b[:n*8]); err != nil {
			swapPool.Put(bp)
			return err
		}
		cdr.DecodeDoubles(dst[:n], b[:n*8], order)
		dst = dst[n:]
	}
	swapPool.Put(bp)
	return nil
}

// ReadPayloadBytes reads n remaining body bytes into a fresh slice —
// the buffered path for a window put that raced its registration.
func (fr *FrameReader) ReadPayloadBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(fr.br, b); err != nil {
		return nil, err
	}
	return b, nil
}

// DiscardPayload consumes and drops n remaining body bytes, keeping
// the stream framed after a put that cannot be landed or buffered.
func (fr *FrameReader) DiscardPayload(n int) error {
	_, err := fr.br.Discard(n)
	return err
}
