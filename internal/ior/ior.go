// Package ior implements PARDIS object references. A reference names
// an object (type id + object key) and carries the endpoints at which
// its server can be reached. For SPMD objects the reference holds one
// endpoint per computing thread — the multi-port profile of §3.3:
// "each computing thread of the SPMD object opens a network connection
// on a separate port. These connections become a part of object
// reference for this particular object and are accessible to clients
// wanting to connect."
//
// Endpoint 0 is always the communicator endpoint: the connection the
// centralized method uses exclusively, and over which multi-port
// invocations deliver their invocation header.
//
// References travel as stringified IORs — "IOR:" followed by the hex
// of a CDR encapsulation — exactly like CORBA object references, so
// they can be passed through naming services, command lines and
// environment variables.
package ior

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"pardis/internal/cdr"
)

// Errors returned by reference operations.
var (
	ErrBadRef = errors.New("ior: malformed object reference")
	ErrBadStr = errors.New("ior: malformed stringified IOR")
)

// Ref is a PARDIS object reference.
type Ref struct {
	// TypeID is the repository id of the object's interface, e.g.
	// "IDL:diffusion_object:1.0".
	TypeID string
	// Key names the object within its server ORB.
	Key string
	// Threads is the number of computing threads of the SPMD object
	// (1 for a conventional object).
	Threads int
	// Endpoints lists where the object is reachable. Endpoints[0] is
	// the communicator endpoint; when the server enables multi-port
	// transfer there is one endpoint per computing thread. A
	// conventional (Threads == 1) object may instead list several
	// endpoints — replica profiles of the same object, tried in order
	// by the client ORB's failover machinery.
	Endpoints []string
}

// Validate checks structural invariants.
func (r *Ref) Validate() error {
	if r.Key == "" {
		return fmt.Errorf("%w: empty object key", ErrBadRef)
	}
	if r.Threads < 1 {
		return fmt.Errorf("%w: thread count %d", ErrBadRef, r.Threads)
	}
	if len(r.Endpoints) == 0 {
		return fmt.Errorf("%w: no endpoints", ErrBadRef)
	}
	if r.Threads > 1 && len(r.Endpoints) != 1 && len(r.Endpoints) != r.Threads {
		return fmt.Errorf("%w: %d endpoints for %d threads (must be 1 or equal)",
			ErrBadRef, len(r.Endpoints), r.Threads)
	}
	for i, ep := range r.Endpoints {
		if !strings.Contains(ep, ":") {
			return fmt.Errorf("%w: endpoint %d = %q", ErrBadRef, i, ep)
		}
	}
	return nil
}

// IsSPMD reports whether the reference names a parallel object.
func (r *Ref) IsSPMD() bool { return r.Threads > 1 }

// MultiPort reports whether the reference carries one endpoint per
// computing thread, enabling multi-port argument transfer. A
// single-thread object is trivially multi-port capable: its
// endpoint doubles as the data port.
func (r *Ref) MultiPort() bool { return r.Threads == 1 || len(r.Endpoints) == r.Threads }

// CommunicatorEndpoint returns the endpoint of the communicator
// thread (thread 0).
func (r *Ref) CommunicatorEndpoint() string { return r.Endpoints[0] }

// Replicas returns the number of interchangeable endpoints a client
// may fail over between. SPMD references pin each thread to its own
// port, so only conventional objects carry replicas.
func (r *Ref) Replicas() int {
	if r.Threads == 1 {
		return len(r.Endpoints)
	}
	return 1
}

// FailoverEndpoints returns the endpoints an invocation may be issued
// at, in preference order. For a conventional object that is every
// replica endpoint; for an SPMD object invocations must target the
// communicator, so only its endpoint is returned.
func (r *Ref) FailoverEndpoints() []string {
	if r.Threads == 1 {
		return r.Endpoints
	}
	return r.Endpoints[:1]
}

// ThreadEndpoint returns the endpoint serving SPMD thread t, falling
// back to the communicator endpoint when the reference is not
// multi-port.
func (r *Ref) ThreadEndpoint(t int) string {
	if t >= 0 && t < len(r.Endpoints) {
		return r.Endpoints[t]
	}
	return r.Endpoints[0]
}

// Equal reports whether two references denote the same object at the
// same endpoints.
func (r *Ref) Equal(o *Ref) bool {
	if r.TypeID != o.TypeID || r.Key != o.Key || r.Threads != o.Threads ||
		len(r.Endpoints) != len(o.Endpoints) {
		return false
	}
	for i := range r.Endpoints {
		if r.Endpoints[i] != o.Endpoints[i] {
			return false
		}
	}
	return true
}

func (r *Ref) String() string {
	return fmt.Sprintf("Ref{%s key=%s threads=%d endpoints=%v}",
		r.TypeID, r.Key, r.Threads, r.Endpoints)
}

// Encode appends the reference to an encoder as a CDR encapsulation.
func (r *Ref) Encode(e *cdr.Encoder) {
	e.PutEncapsulation(e.Order(), func(ie *cdr.Encoder) {
		ie.PutString(r.TypeID)
		ie.PutString(r.Key)
		ie.PutULong(uint32(r.Threads))
		ie.PutStringSeq(r.Endpoints)
	})
}

// Decode reads a reference from a decoder.
func Decode(d *cdr.Decoder) (*Ref, error) {
	id, err := d.Encapsulation()
	if err != nil {
		return nil, err
	}
	var r Ref
	if r.TypeID, err = id.String(); err != nil {
		return nil, err
	}
	if r.Key, err = id.String(); err != nil {
		return nil, err
	}
	n, err := id.ULong()
	if err != nil {
		return nil, err
	}
	r.Threads = int(n)
	if r.Endpoints, err = id.StringSeq(); err != nil {
		return nil, err
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Stringify renders the reference in "IOR:<hex>" form.
func (r *Ref) Stringify() string {
	e := cdr.NewEncoder(cdr.BigEndian)
	r.Encode(e)
	return "IOR:" + hex.EncodeToString(e.Bytes())
}

// Parse decodes an "IOR:<hex>" string.
func Parse(s string) (*Ref, error) {
	if !strings.HasPrefix(s, "IOR:") {
		return nil, fmt.Errorf("%w: missing IOR: prefix", ErrBadStr)
	}
	raw, err := hex.DecodeString(s[4:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStr, err)
	}
	d := cdr.NewDecoder(cdr.BigEndian, raw)
	r, err := Decode(d)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStr, err)
	}
	return r, nil
}
