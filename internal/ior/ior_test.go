package ior

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"pardis/internal/cdr"
)

func sampleRef() *Ref {
	return &Ref{
		TypeID:  "IDL:diffusion_object:1.0",
		Key:     "objects/example",
		Threads: 4,
		Endpoints: []string{
			"tcp:10.0.0.1:9000",
			"tcp:10.0.0.1:9001",
			"tcp:10.0.0.1:9002",
			"tcp:10.0.0.1:9003",
		},
	}
}

func TestValidate(t *testing.T) {
	r := sampleRef()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Ref{
		{TypeID: "t", Key: "", Threads: 1, Endpoints: []string{"tcp:a:1"}},
		{TypeID: "t", Key: "k", Threads: 0, Endpoints: []string{"tcp:a:1"}},
		{TypeID: "t", Key: "k", Threads: 1, Endpoints: nil},
		{TypeID: "t", Key: "k", Threads: 3, Endpoints: []string{"tcp:a:1", "tcp:a:2"}},
		{TypeID: "t", Key: "k", Threads: 1, Endpoints: []string{"noscheme"}},
	}
	for i, r := range bad {
		if err := r.Validate(); !errors.Is(err, ErrBadRef) {
			t.Fatalf("bad ref %d accepted: %v", i, err)
		}
	}
}

func TestSPMDAndMultiPort(t *testing.T) {
	r := sampleRef()
	if !r.IsSPMD() || !r.MultiPort() {
		t.Fatal("4-endpoint 4-thread ref must be SPMD and multi-port")
	}
	central := &Ref{TypeID: "t", Key: "k", Threads: 4, Endpoints: []string{"tcp:a:1"}}
	if !central.IsSPMD() || central.MultiPort() {
		t.Fatal("single-endpoint SPMD ref must not be multi-port")
	}
	plain := &Ref{TypeID: "t", Key: "k", Threads: 1, Endpoints: []string{"tcp:a:1"}}
	if plain.IsSPMD() {
		t.Fatal("plain ref misclassified as SPMD")
	}
	if !plain.MultiPort() {
		t.Fatal("a single-thread object is trivially multi-port capable")
	}
}

func TestThreadEndpoint(t *testing.T) {
	r := sampleRef()
	if r.ThreadEndpoint(2) != "tcp:10.0.0.1:9002" {
		t.Fatalf("thread endpoint = %q", r.ThreadEndpoint(2))
	}
	if r.CommunicatorEndpoint() != "tcp:10.0.0.1:9000" {
		t.Fatalf("communicator endpoint = %q", r.CommunicatorEndpoint())
	}
	central := &Ref{TypeID: "t", Key: "k", Threads: 4, Endpoints: []string{"tcp:a:1"}}
	if central.ThreadEndpoint(3) != "tcp:a:1" {
		t.Fatal("fallback to communicator endpoint broken")
	}
}

func TestStringifyParseRoundTrip(t *testing.T) {
	r := sampleRef()
	s := r.Stringify()
	if !strings.HasPrefix(s, "IOR:") {
		t.Fatalf("stringified = %q", s)
	}
	got, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Fatalf("round trip: %v != %v", got, r)
	}
}

func TestEncodeDecodeInsideStream(t *testing.T) {
	r := sampleRef()
	e := cdr.NewEncoder(cdr.LittleEndian)
	e.PutLong(42)
	r.Encode(e)
	e.PutLong(43)
	d := cdr.NewDecoder(cdr.LittleEndian, e.Bytes())
	if v, _ := d.Long(); v != 42 {
		t.Fatal("prefix")
	}
	got, err := Decode(d)
	if err != nil || !got.Equal(r) {
		t.Fatalf("decode: %v %v", got, err)
	}
	if v, _ := d.Long(); v != 43 {
		t.Fatal("suffix")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"NOTANIOR",
		"IOR:zz",       // bad hex
		"IOR:00",       // truncated encapsulation
		"IOR:deadbeef", // garbage
	}
	for _, s := range cases {
		if _, err := Parse(s); !errors.Is(err, ErrBadStr) {
			t.Fatalf("Parse(%q) = %v", s, err)
		}
	}
}

func TestParseRejectsInvalidRef(t *testing.T) {
	// A structurally decodable ref that fails Validate (bad thread
	// count) must be rejected at parse time.
	r := &Ref{TypeID: "t", Key: "k", Threads: 1, Endpoints: []string{"tcp:a:1"}}
	e := cdr.NewEncoder(cdr.BigEndian)
	// Hand-encode with a zero thread count.
	e.PutEncapsulation(cdr.BigEndian, func(ie *cdr.Encoder) {
		ie.PutString(r.TypeID)
		ie.PutString(r.Key)
		ie.PutULong(0)
		ie.PutStringSeq(r.Endpoints)
	})
	s := "IOR:" + hexEncode(e.Bytes())
	if _, err := Parse(s); !errors.Is(err, ErrBadStr) {
		t.Fatalf("invalid ref parsed: %v", err)
	}
}

func hexEncode(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, len(b)*2)
	for _, x := range b {
		out = append(out, digits[x>>4], digits[x&0xF])
	}
	return string(out)
}

// Property: every valid reference survives stringify/parse.
func TestQuickStringifyRoundTrip(t *testing.T) {
	f := func(typeID, key string, threads uint8, host string, multi bool) bool {
		typeID = sanitize(typeID)
		key = sanitize(key)
		host = sanitize(host)
		if key == "" {
			key = "k"
		}
		if host == "" {
			host = "h"
		}
		n := int(threads%8) + 1
		eps := []string{"tcp:" + host + ":1"}
		if multi && n > 1 {
			eps = make([]string, n)
			for i := range eps {
				eps[i] = "tcp:" + host + ":" + string(rune('1'+i))
			}
		}
		r := &Ref{TypeID: typeID, Key: key, Threads: n, Endpoints: eps}
		if err := r.Validate(); err != nil {
			return false
		}
		got, err := Parse(r.Stringify())
		return err == nil && got.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r > 0 && r < 128 && r != ':' {
			b.WriteRune(r)
		}
	}
	return b.String()
}
