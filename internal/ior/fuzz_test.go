package ior

import "testing"

// FuzzParse: stringified-IOR parsing must never panic and accepted
// references must re-stringify to an equal reference.
func FuzzParse(f *testing.F) {
	sample := &Ref{TypeID: "IDL:x:1.0", Key: "k", Threads: 2,
		Endpoints: []string{"tcp:a:1", "tcp:a:2"}}
	f.Add(sample.Stringify())
	f.Add("IOR:00")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		ref, err := Parse(s)
		if err != nil {
			return
		}
		again, err := Parse(ref.Stringify())
		if err != nil || !again.Equal(ref) {
			t.Fatalf("round trip broke: %v %v", again, err)
		}
	})
}
