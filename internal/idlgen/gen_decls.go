package idlgen

import (
	"fmt"
	"strings"

	"pardis/internal/idl"
)

func (g *generator) typedef(full string, td *idl.Typedef) error {
	name, err := g.registerName(full)
	if err != nil {
		return err
	}
	if ds, ok := td.Type.(*idl.DSequence); ok {
		g.p("// %s is the IDL typedef %s = %s.", name, full, ds.TypeName())
		g.p("// It maps to a distributed double sequence.")
		g.p("type %s = dseq.Doubles", name)
		if ds.Bound > 0 {
			g.p("")
			g.p("// %sBound is the declared sequence bound.", name)
			g.p("const %sBound = %d", name, ds.Bound)
		}
		g.p("")
		return nil
	}
	if len(td.ArrayDims) > 0 {
		goT, err := g.goType(&idl.Named{Name: full, Target: td})
		if err != nil {
			return err
		}
		g.p("// %s is the IDL array typedef %s.", name, full)
		g.p("type %s = %s", name, goT)
		g.p("")
		return nil
	}
	goT, err := g.goType(td.Type)
	if err != nil {
		return err
	}
	g.p("// %s is the IDL typedef %s = %s.", name, full, td.Type.TypeName())
	g.p("type %s = %s", name, goT)
	g.p("")
	return nil
}

func (g *generator) structDef(full string, sd *idl.StructDef) error {
	name, err := g.registerName(full)
	if err != nil {
		return err
	}
	g.p("// %s is the IDL struct %s.", name, full)
	g.p("type %s struct {", name)
	for _, m := range sd.Members {
		goT, err := g.goType(m.Type)
		if err != nil {
			return err
		}
		g.p("\t%s %s", goName(m.Name), goT)
	}
	g.p("}")
	g.p("")
	g.p("// EncodeCDR marshals the struct field by field in declaration order.")
	g.p("func (v *%s) EncodeCDR(e *cdr.Encoder) {", name)
	for _, m := range sd.Members {
		stmt, err := g.encodeExpr(m.Type, "e", "v."+goName(m.Name))
		if err != nil {
			return err
		}
		g.p("\t%s", stmt)
	}
	g.p("}")
	g.p("")
	g.p("// Decode%s unmarshals the struct.", name)
	g.p("func Decode%s(d *cdr.Decoder) (%s, error) {", name, name)
	g.p("\tvar v %s", name)
	g.p("\terr := v.decodeInto(d)")
	g.p("\treturn v, err")
	g.p("}")
	g.p("")
	g.p("func (v *%s) decodeInto(d *cdr.Decoder) error {", name)
	g.p("\tvar err error")
	g.p("\t_ = err")
	for _, m := range sd.Members {
		stmt, err := g.decodeExpr(m.Type, "d", "v."+goName(m.Name))
		if err != nil {
			return err
		}
		g.p("\t%s", stmt)
	}
	g.p("\treturn nil")
	g.p("}")
	g.p("")
	return nil
}

func (g *generator) enumDef(full string, ed *idl.EnumDef) error {
	name, err := g.registerName(full)
	if err != nil {
		return err
	}
	g.p("// %s is the IDL enum %s.", name, full)
	g.p("type %s uint32", name)
	g.p("")
	g.p("// %s members.", name)
	g.p("const (")
	for i, m := range ed.Members {
		if i == 0 {
			g.p("\t%s%s %s = iota", name, goName(m), name)
		} else {
			g.p("\t%s%s", name, goName(m))
		}
	}
	g.p(")")
	g.p("")
	g.p("// String returns the IDL member name.")
	g.p("func (v %s) String() string {", name)
	g.p("\tswitch v {")
	for i, m := range ed.Members {
		g.p("\tcase %d:", i)
		g.p("\t\treturn %q", m)
	}
	g.p("\t}")
	g.p("\treturn fmt.Sprintf(\"%s(%%d)\", uint32(v))", name)
	g.p("}")
	g.p("")
	return nil
}

func (g *generator) constDef(full string, cd *idl.ConstDef) error {
	name, err := g.registerName(full)
	if err != nil {
		return err
	}
	goT, err := g.goType(cd.Type)
	if err != nil {
		return err
	}
	g.p("// %s is the IDL constant %s.", name, full)
	switch v := cd.Value.(type) {
	case int64:
		g.p("const %s %s = %d", name, goT, v)
	case float64:
		g.p("const %s %s = %g", name, goT, v)
	case string:
		g.p("const %s %s = %q", name, goT, v)
	case bool:
		g.p("const %s %s = %v", name, goT, v)
	default:
		return fmt.Errorf("idlgen: constant %s has unsupported value %T", full, cd.Value)
	}
	g.p("")
	return nil
}

func (g *generator) exceptionDef(full string, ed *idl.ExceptionDef) error {
	name, err := g.registerName(full)
	if err != nil {
		return err
	}
	g.p("// %s is the IDL exception %s; it implements error.", name, full)
	g.p("type %s struct {", name)
	for _, m := range ed.Members {
		goT, err := g.goType(m.Type)
		if err != nil {
			return err
		}
		g.p("\t%s %s", goName(m.Name), goT)
	}
	g.p("}")
	g.p("")
	g.p("// Error implements error.")
	g.p("func (e *%s) Error() string {", name)
	g.p("\treturn fmt.Sprintf(\"%s: %%+v\", *e)", full)
	g.p("}")
	g.p("")
	return nil
}

// opShape is the analyzed signature of an operation.
type opShape struct {
	op *idl.Operation
	// scalar params (non-dsequence) and dist params in declaration
	// order, with their indices among dist args.
	scalars []*idl.Param
	dists   []*idl.Param
	distIdx map[*idl.Param]int
}

func analyzeOp(op *idl.Operation) *opShape {
	sh := &opShape{op: op, distIdx: map[*idl.Param]int{}}
	for _, prm := range op.Params {
		if _, ok := isDSeq(prm.Type); ok {
			sh.distIdx[prm] = len(sh.dists)
			sh.dists = append(sh.dists, prm)
		} else {
			sh.scalars = append(sh.scalars, prm)
		}
	}
	return sh
}

// modeConst maps a parameter mode to the core constant name.
func modeConst(m idl.ParamMode) string {
	switch m {
	case idl.ModeIn:
		return "core.In"
	case idl.ModeOut:
		return "core.Out"
	default:
		return "core.InOut"
	}
}

func (g *generator) ifaceDef(scope, full string, iface *idl.Interface) error {
	name, err := g.registerName(full)
	if err != nil {
		return err
	}
	ops := g.c.AllOps(scope, iface)

	// ---- client proxy ----
	g.p("// %s is the client-side proxy for IDL interface %s.", name, full)
	g.p("// All methods are collective across the client's computing threads.")
	g.p("type %s struct {", name)
	g.p("\tb *core.Binding")
	g.p("}")
	g.p("")
	g.p("// %sTypeID is the interface repository id.", name)
	g.p("const %sTypeID = %q", name, "IDL:"+full+":1.0")
	g.p("")
	g.p("// Bind%s is the _spmd_bind of the paper: a collective bind to", name)
	g.p("// the named object from every computing thread. The resolved")
	g.p("// object's repository id must match %sTypeID.", name)
	g.p("func Bind%s(ctx context.Context, dom *core.Domain, th rts.Thread, objectName string, method core.TransferMethod) (*%s, error) {", name, name)
	g.p("\tb, err := dom.SPMDBind(ctx, th, objectName, method)")
	g.p("\tif err != nil {")
	g.p("\t\treturn nil, err")
	g.p("\t}")
	g.p("\tif id := b.Ref().TypeID; id != %sTypeID {", name)
	g.p("\t\tb.Close()")
	g.p("\t\treturn nil, fmt.Errorf(\"%%s is a %%s, not a %%s\", objectName, id, %sTypeID)", name)
	g.p("\t}")
	g.p("\treturn &%s{b: b}, nil", name)
	g.p("}")
	g.p("")
	g.p("// %sFromBinding wraps an existing binding.", name)
	g.p("func %sFromBinding(b *core.Binding) *%s { return &%s{b: b} }", name, name, name)
	g.p("")
	g.p("// Binding exposes the underlying binding.")
	g.p("func (o *%s) Binding() *core.Binding { return o.b }", name)
	g.p("")
	g.p("// Close releases the binding.")
	g.p("func (o *%s) Close() { o.b.Close() }", name)
	g.p("")

	for _, op := range ops {
		if err := g.clientMethod(name, op); err != nil {
			return err
		}
	}

	// ---- server skeleton ----
	g.p("// %sServant is the server-side interface: implement it and", name)
	g.p("// export with Export%s. Methods run once per computing thread", name)
	g.p("// per request (SPMD dispatch).")
	g.p("type %sServant interface {", name)
	for _, op := range ops {
		sig, err := g.servantSignature(op)
		if err != nil {
			return err
		}
		g.p("\t%s", sig)
	}
	g.p("}")
	g.p("")
	g.p("// %sOps builds the operation table for Export. Distribution", name)
	g.p("// overrides (§2.2's server-side Proportions) may be applied to")
	g.p("// the returned specs before exporting.")
	g.p("func %sOps(impl %sServant) map[string]*core.Op {", name, name)
	g.p("\treturn map[string]*core.Op{")
	for _, op := range ops {
		entry, err := g.skeletonEntry(op)
		if err != nil {
			return err
		}
		g.p("%s", entry)
	}
	g.p("\t}")
	g.p("}")
	g.p("")
	g.p("// Export%s exports an implementation as an SPMD object.", name)
	g.p("// Collective across the server's computing threads.")
	g.p("func Export%s(ctx context.Context, dom *core.Domain, th rts.Thread, objectName string, multiPort bool, impl %sServant) (*core.Object, error) {", name, name)
	g.p("\treturn dom.Export(ctx, core.ExportConfig{")
	g.p("\t\tThread:    th,")
	g.p("\t\tName:      objectName,")
	g.p("\t\tTypeID:    %sTypeID,", name)
	g.p("\t\tMultiPort: multiPort,")
	g.p("\t\tOps:       %sOps(impl),", name)
	g.p("\t})")
	g.p("}")
	g.p("")
	return nil
}

// clientMethod emits the blocking and Async proxy methods for one
// operation.
func (g *generator) clientMethod(iface string, op *idl.Operation) error {
	sh := analyzeOp(op)
	mName := goName(op.Name)

	// Build the parameter list.
	var params []string
	for _, prm := range op.Params {
		goT, err := g.goType(prm.Type)
		if err != nil {
			return err
		}
		if _, isDS := isDSeq(prm.Type); !isDS && prm.Mode != idl.ModeIn {
			goT = "*" + goT
		}
		params = append(params, fmt.Sprintf("%s %s", safeIdent(prm.Name), goT))
	}
	paramList := strings.Join(append([]string{"ctx context.Context"}, params...), ", ")

	// Return type.
	results := "error"
	if op.Result != nil {
		resT, err := g.goType(op.Result)
		if err != nil {
			return err
		}
		results = fmt.Sprintf("(%s, error)", resT)
	}

	spec, err := g.buildCallSpec(sh, "_result")
	if err != nil {
		return err
	}

	g.p("// %s invokes the IDL operation %q (blocking, collective).", mName, op.Name)
	g.p("func (o *%s) %s(%s) %s {", iface, mName, paramList, results)
	if op.Result != nil {
		resT, _ := g.goType(op.Result)
		g.p("\tvar _result %s", resT)
	}
	g.p("\t_spec := %s", spec)
	g.p("\terr := o.b.Invoke(ctx, _spec)")
	if op.Result != nil {
		g.p("\treturn _result, err")
	} else {
		g.p("\treturn err")
	}
	g.p("}")
	g.p("")

	// Non-blocking variant, unless oneway (already non-blocking).
	if !op.Oneway {
		asyncResults := "(*core.Pending, error)"
		g.p("// %sAsync begins a non-blocking invocation of %q; the", mName, op.Name)
		g.p("// returned Pending must be Waited collectively. Result and out")
		g.p("// parameters are filled during Wait — the futures model of the")
		g.p("// paper's *_nb stubs.")
		if op.Result != nil {
			resT, _ := g.goType(op.Result)
			g.p("func (o *%s) %sAsync(%s, _result *%s) %s {", iface, mName, paramList, resT, asyncResults)
		} else {
			g.p("func (o *%s) %sAsync(%s) %s {", iface, mName, paramList, asyncResults)
		}
		spec2, err := g.buildCallSpec(sh, "(*_result)")
		if err != nil {
			return err
		}
		g.p("\t_spec := %s", spec2)
		g.p("\treturn o.b.InvokeAsync(ctx, _spec)")
		g.p("}")
		g.p("")
	}
	return nil
}

// buildCallSpec emits the &core.CallSpec{...} literal for an
// operation. resultDst is the lvalue receiving the IDL return value.
func (g *generator) buildCallSpec(sh *opShape, resultDst string) (string, error) {
	op := sh.op
	var b strings.Builder
	fmt.Fprintf(&b, "&core.CallSpec{\n")
	fmt.Fprintf(&b, "\t\tOperation: %q,\n", op.Name)
	if op.Oneway {
		fmt.Fprintf(&b, "\t\tOneway: true,\n")
	}

	// Scalars: in and inout values in declaration order.
	var encStmts []string
	for _, prm := range sh.scalars {
		if prm.Mode == idl.ModeOut {
			continue
		}
		expr := safeIdent(prm.Name)
		if prm.Mode == idl.ModeInOut {
			expr = "(*" + expr + ")"
		}
		stmt, err := g.encodeExpr(prm.Type, "e", expr)
		if err != nil {
			return "", err
		}
		encStmts = append(encStmts, stmt)
	}
	if len(encStmts) > 0 {
		fmt.Fprintf(&b, "\t\tScalars: func(e *cdr.Encoder) {\n")
		for _, s := range encStmts {
			fmt.Fprintf(&b, "\t\t\t%s\n", s)
		}
		fmt.Fprintf(&b, "\t\t},\n")
	}

	// Distributed args.
	if len(sh.dists) > 0 {
		fmt.Fprintf(&b, "\t\tArgs: []core.DistArg{\n")
		for _, prm := range sh.dists {
			fmt.Fprintf(&b, "\t\t\t{Mode: %s, Seq: %s},\n", modeConst(prm.Mode), safeIdent(prm.Name))
		}
		fmt.Fprintf(&b, "\t\t},\n")
	}

	// Reply decoding: out/inout scalars in declaration order, then
	// the result.
	var decStmts []string
	for _, prm := range sh.scalars {
		if prm.Mode == idl.ModeIn {
			continue
		}
		stmt, err := g.decodeExpr(prm.Type, "d", "(*"+safeIdent(prm.Name)+")")
		if err != nil {
			return "", err
		}
		decStmts = append(decStmts, stmt)
	}
	if op.Result != nil {
		stmt, err := g.decodeExpr(op.Result, "d", resultDst)
		if err != nil {
			return "", err
		}
		decStmts = append(decStmts, stmt)
	}
	if len(decStmts) > 0 {
		fmt.Fprintf(&b, "\t\tDecodeReply: func(d *cdr.Decoder) error {\n")
		fmt.Fprintf(&b, "\t\t\tvar err error\n\t\t\t_ = err\n")
		for _, s := range decStmts {
			fmt.Fprintf(&b, "\t\t\t%s\n", s)
		}
		fmt.Fprintf(&b, "\t\t\treturn nil\n")
		fmt.Fprintf(&b, "\t\t},\n")
	}
	fmt.Fprintf(&b, "\t}")
	return b.String(), nil
}

// servantSignature emits the servant interface method signature.
func (g *generator) servantSignature(op *idl.Operation) (string, error) {
	var params []string
	for _, prm := range op.Params {
		goT, err := g.goType(prm.Type)
		if err != nil {
			return "", err
		}
		if _, isDS := isDSeq(prm.Type); !isDS && prm.Mode != idl.ModeIn {
			goT = "*" + goT
		}
		params = append(params, fmt.Sprintf("%s %s", safeIdent(prm.Name), goT))
	}
	results := "error"
	if op.Result != nil {
		resT, err := g.goType(op.Result)
		if err != nil {
			return "", err
		}
		results = fmt.Sprintf("(%s, error)", resT)
	}
	return fmt.Sprintf("%s(call *core.Call, %s) %s",
		goName(op.Name), strings.Join(params, ", "), results), nil
}

// skeletonEntry emits one "opname": {...} entry of the Ops table.
func (g *generator) skeletonEntry(op *idl.Operation) (string, error) {
	sh := analyzeOp(op)
	var b strings.Builder

	// Spec.
	fmt.Fprintf(&b, "\t\t%q: {\n", op.Name)
	fmt.Fprintf(&b, "\t\t\tSpec: core.OpSpec{")
	if len(sh.dists) > 0 {
		fmt.Fprintf(&b, "Args: []core.ArgSpec{\n")
		for _, prm := range sh.dists {
			fmt.Fprintf(&b, "\t\t\t\t{Mode: %s, Dist: dist.Block()},\n", modeConst(prm.Mode))
		}
		fmt.Fprintf(&b, "\t\t\t}")
	}
	fmt.Fprintf(&b, "},\n")

	// Handler.
	fmt.Fprintf(&b, "\t\t\tHandler: func(call *core.Call) error {\n")
	fmt.Fprintf(&b, "\t\t\t\tvar err error\n\t\t\t\t_ = err\n")
	// Declare and decode scalar params.
	for _, prm := range sh.scalars {
		goT, err := g.goType(prm.Type)
		if err != nil {
			return "", err
		}
		id := safeIdent(prm.Name)
		fmt.Fprintf(&b, "\t\t\t\tvar %s %s\n", id, goT)
		if prm.Mode != idl.ModeOut {
			stmt, err := g.decodeExpr(prm.Type, "call.Scalars", id)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "\t\t\t\t%s\n", stmt)
		}
	}
	// Call the implementation.
	var args []string
	for _, prm := range op.Params {
		if idx, ok := sh.distIdx[prm]; ok {
			args = append(args, fmt.Sprintf("call.Args[%d]", idx))
			continue
		}
		id := safeIdent(prm.Name)
		if prm.Mode != idl.ModeIn {
			id = "&" + id
		}
		args = append(args, id)
	}
	callExpr := fmt.Sprintf("impl.%s(call%s)", goName(op.Name), prefixJoin(args))
	if op.Result != nil {
		fmt.Fprintf(&b, "\t\t\t\t_result, err := %s\n", callExpr)
	} else {
		fmt.Fprintf(&b, "\t\t\t\terr = %s\n", callExpr)
	}
	fmt.Fprintf(&b, "\t\t\t\tif err != nil {\n\t\t\t\t\treturn err\n\t\t\t\t}\n")
	// Encode reply: out/inout scalars then result.
	for _, prm := range sh.scalars {
		if prm.Mode == idl.ModeIn {
			continue
		}
		stmt, err := g.encodeExpr(prm.Type, "call.Reply()", safeIdent(prm.Name))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\t\t\t\t%s\n", stmt)
	}
	if op.Result != nil {
		stmt, err := g.encodeExpr(op.Result, "call.Reply()", "_result")
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\t\t\t\t%s\n", stmt)
	}
	fmt.Fprintf(&b, "\t\t\t\treturn nil\n")
	fmt.Fprintf(&b, "\t\t\t},\n")
	fmt.Fprintf(&b, "\t\t},")
	return b.String(), nil
}

func prefixJoin(args []string) string {
	if len(args) == 0 {
		return ""
	}
	return ", " + strings.Join(args, ", ")
}

// goReserved lists identifiers that need renaming.
var goReserved = map[string]bool{
	"break": true, "case": true, "chan": true, "const": true,
	"continue": true, "default": true, "defer": true, "else": true,
	"fallthrough": true, "for": true, "func": true, "go": true,
	"goto": true, "if": true, "import": true, "interface": true,
	"map": true, "package": true, "range": true, "return": true,
	"select": true, "struct": true, "switch": true, "type": true,
	"var": true, "call": true, "ctx": true, "impl": true, "err": true,
}

// safeIdent makes an IDL parameter name usable as a Go identifier.
func safeIdent(name string) string {
	if goReserved[name] {
		return name + "_"
	}
	return name
}
