package idlgen

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"pardis/internal/idl"
)

func gen(t *testing.T, src string) string {
	t.Helper()
	c, err := idl.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(c, Options{Package: "p", Source: "test.idl"})
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestGeneratePaperExample(t *testing.T) {
	src := `
typedef dsequence<double, 1024, BLOCK> diffusion_array;
interface diffusion_object {
    void diffusion(in long timestep, inout diffusion_array myarray);
};
`
	out := gen(t, src)
	for _, want := range []string{
		"type DiffusionArray = dseq.Doubles",
		"type DiffusionObject struct",
		"func BindDiffusionObject(",
		"func (o *DiffusionObject) Diffusion(ctx context.Context, timestep int32, myarray *dseq.Doubles) error",
		"func (o *DiffusionObject) DiffusionAsync(",
		"type DiffusionObjectServant interface",
		"Diffusion(call *core.Call, timestep int32, myarray *dseq.Doubles) error",
		"func DiffusionObjectOps(impl DiffusionObjectServant) map[string]*core.Op",
		"func ExportDiffusionObject(",
		`"IDL:diffusion_object:1.0"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("generated code missing %q\n----\n%s", want, out)
		}
	}
}

func TestGenerateGoldenMatchesCommitted(t *testing.T) {
	src, err := os.ReadFile("gentest/spec.idl")
	if err != nil {
		t.Fatal(err)
	}
	c, err := idl.ParseAndCheck(string(src))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Generate(c, Options{Package: "gentest", Source: "internal/idlgen/gentest/spec.idl"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("gentest/spec_gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("gentest/spec_gen.go is stale: regenerate with " +
			"`go run ./cmd/pardisc -pkg gentest -o internal/idlgen/gentest/spec_gen.go internal/idlgen/gentest/spec.idl`")
	}
}

func TestGenerateNameCollision(t *testing.T) {
	src := `
interface my_thing { void f(); };
interface myThing { void f(); };
`
	c, err := idl.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(c, Options{}); err == nil {
		t.Fatal("colliding Go names accepted")
	}
}

func TestGenerateArrayTypedefInOperationRejected(t *testing.T) {
	src := `
typedef long grid[4];
interface i { void f(in grid g); };
`
	c, err := idl.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(c, Options{}); err == nil {
		t.Fatal("array typedef marshaling accepted")
	}
}

func TestGenerateModulesFlattenScopes(t *testing.T) {
	src := `
module sim {
    interface solver { void go_(in double x); };
};
`
	out := gen(t, src)
	if !strings.Contains(out, "type SimSolver struct") {
		t.Fatalf("scoped interface not flattened:\n%s", out)
	}
	if !strings.Contains(out, `"IDL:sim::solver:1.0"`) {
		t.Fatalf("repo id should keep IDL scoping:\n%s", out)
	}
}

func TestGenerateReservedIdentifiers(t *testing.T) {
	src := `interface i { void f(in long type, in double range); };`
	out := gen(t, src)
	if !strings.Contains(out, "type_ int32") || !strings.Contains(out, "range_ float64") {
		t.Fatalf("reserved identifiers not renamed:\n%s", out)
	}
}

func TestGenerateOnewaySpec(t *testing.T) {
	src := `interface mon { oneway void report(in string msg); };`
	out := gen(t, src)
	if !strings.Contains(out, "Oneway:") {
		t.Fatalf("oneway flag missing:\n%s", out)
	}
	if strings.Contains(out, "ReportAsync") {
		t.Fatalf("oneway ops must not get Async variants:\n%s", out)
	}
}

func TestGoNameMangling(t *testing.T) {
	cases := map[string]string{
		"diffusion_object": "DiffusionObject",
		"sim::inner::x":    "SimInnerX",
		"a":                "A",
		"MAX_STEPS":        "MAXSTEPS",
	}
	for in, want := range cases {
		if got := goName(in); got != want {
			t.Fatalf("goName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGenerateAttributes(t *testing.T) {
	src := `
interface account {
    readonly attribute double balance;
    attribute string owner;
};
`
	out := gen(t, src)
	for _, want := range []string{
		"func (o *Account) GetBalance(ctx context.Context) (float64, error)",
		"func (o *Account) GetOwner(ctx context.Context) (string, error)",
		"func (o *Account) SetOwner(ctx context.Context, value string) error",
		`"_get_balance"`,
		`"_set_owner"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("generated code missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "SetBalance") {
		t.Fatal("readonly attribute generated a setter")
	}
}
