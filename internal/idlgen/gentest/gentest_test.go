// Package gentest exercises pardisc-generated stubs end-to-end: the
// committed spec_gen.go (regenerate with
// `go run ./cmd/pardisc -pkg gentest -o internal/idlgen/gentest/spec_gen.go internal/idlgen/gentest/spec.idl`)
// is driven through a real export/bind/invoke cycle on both transfer
// methods.
package gentest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"pardis/internal/core"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/mp"
	"pardis/internal/rts"
	"pardis/internal/transport"
)

// solverImpl implements SolverServant per computing thread.
type solverImpl struct {
	mu     sync.Mutex
	traces []string
	resets int
}

func (s *solverImpl) Reset(call *core.Call) error {
	s.mu.Lock()
	s.resets++
	s.mu.Unlock()
	return nil
}

func (s *solverImpl) Relax(call *core.Call, steps int32, omega float64, grid *dseq.Doubles) error {
	local := grid.LocalData()
	for k := int32(0); k < steps; k++ {
		for i := range local {
			local[i] *= omega
		}
	}
	return nil
}

func (s *solverImpl) Gradient(call *core.Call, grid *dseq.Doubles, gradientOut *dseq.Doubles) error {
	// Same layout: local forward difference, boundary zero.
	g := grid.LocalData()
	out := gradientOut.LocalData()
	for i := range out {
		if i+1 < len(g) {
			out[i] = g[i+1] - g[i]
		} else {
			out[i] = 0
		}
	}
	return nil
}

func (s *solverImpl) Norm(call *core.Call, grid *dseq.Doubles, evaluations *int32) (float64, error) {
	sum := 0.0
	for _, v := range grid.LocalData() {
		sum += v * v
	}
	total, err := call.Thread.AllgatherU64(math.Float64bits(sum))
	if err != nil {
		return 0, err
	}
	all := 0.0
	for _, b := range total {
		all += math.Float64frombits(b)
	}
	*evaluations = int32(grid.Len())
	return math.Sqrt(all), nil
}

func (s *solverImpl) Status(call *core.Call, label string) (Report, error) {
	return Report{
		Domain:    Extent{Lo: -1, Hi: 1, Cells: 128},
		State:     PhaseRUNNING,
		Label:     "status:" + label,
		Residuals: []float64{1.0, 0.5, 0.25},
	}, nil
}

func (s *solverImpl) Advance(call *core.Call, current *Phase) (Phase, error) {
	prev := *current
	if *current < PhaseDONE {
		*current++
	}
	return prev, nil
}

func (s *solverImpl) Configure(call *core.Call, weights []float64, domain Extent) error {
	if len(weights) == 0 {
		return errors.New("no weights")
	}
	if domain.Cells <= 0 {
		return fmt.Errorf("bad extent %+v", domain)
	}
	return nil
}

func (s *solverImpl) Trace(call *core.Call, message string) error {
	s.mu.Lock()
	s.traces = append(s.traces, message)
	s.mu.Unlock()
	return nil
}

var _ SolverServant = (*solverImpl)(nil)

// fixture boots an m-thread solver and returns the domain plus stop.
func fixture(t *testing.T, m int) (*core.Domain, *solverImpl, func()) {
	t.Helper()
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	dom, err := core.JoinDomain(core.DomainConfig{Registry: reg, ListenEndpoint: "inproc:*"})
	if err != nil {
		t.Fatal(err)
	}
	impl := &solverImpl{}
	w := mp.MustWorld(m)
	var objs []*core.Object
	var mu sync.Mutex
	ready := make(chan error, m)
	for r := 0; r < m; r++ {
		go func(rank int) {
			th := rts.NewMessagePassing(w.Rank(rank))
			obj, err := ExportSolver(context.Background(), dom, th, "solver", true, impl)
			ready <- err
			if err != nil {
				return
			}
			mu.Lock()
			objs = append(objs, obj)
			mu.Unlock()
			_ = obj.Serve(context.Background())
		}(r)
	}
	for i := 0; i < m; i++ {
		if err := <-ready; err != nil {
			t.Fatal(err)
		}
	}
	stop := func() {
		mu.Lock()
		for _, o := range objs {
			o.Close()
		}
		mu.Unlock()
		w.Close()
		dom.Close()
	}
	return dom, impl, stop
}

// withClient runs fn on an n-thread client bound via the generated
// proxy.
func withClient(t *testing.T, dom *core.Domain, n int, method core.TransferMethod,
	fn func(s *Solver, th rts.Thread) error) {
	t.Helper()
	err := mp.Run(n, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		s, err := BindSolver(context.Background(), dom, th, "solver", method)
		if err != nil {
			return err
		}
		defer s.Close()
		return fn(s, th)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedRelax(t *testing.T) {
	for _, method := range []core.TransferMethod{core.Centralized, core.MultiPort} {
		t.Run(method.String(), func(t *testing.T) {
			dom, _, stop := fixture(t, 3)
			defer stop()
			withClient(t, dom, 2, method, func(s *Solver, th rts.Thread) error {
				grid, err := dseq.NewDoubles(64, dist.Block(), th.Size(), th.Rank())
				if err != nil {
					return err
				}
				for i := range grid.LocalData() {
					grid.LocalData()[i] = 2
				}
				if err := s.Relax(context.Background(), 3, 0.5, grid); err != nil {
					return err
				}
				for i, v := range grid.LocalData() {
					if v != 0.25 {
						return fmt.Errorf("[%d] = %v", i, v)
					}
				}
				return nil
			})
		})
	}
}

func TestGeneratedGradientOutArg(t *testing.T) {
	dom, _, stop := fixture(t, 2)
	defer stop()
	withClient(t, dom, 2, core.MultiPort, func(s *Solver, th rts.Thread) error {
		grid, _ := dseq.NewDoubles(32, dist.Block(), th.Size(), th.Rank())
		grad, _ := dseq.NewDoubles(32, dist.Block(), th.Size(), th.Rank())
		for i := range grid.LocalData() {
			grid.LocalData()[i] = float64(grid.Lo()+i) * 3
		}
		if err := s.Gradient(context.Background(), grid, grad); err != nil {
			return err
		}
		// Interior entries of each server-local block are 3.
		nonzero := 0
		for _, v := range grad.LocalData() {
			if v == 3 {
				nonzero++
			}
		}
		if nonzero == 0 {
			return errors.New("gradient is all zeros")
		}
		return nil
	})
}

func TestGeneratedScalarResultAndOutParam(t *testing.T) {
	dom, _, stop := fixture(t, 2)
	defer stop()
	withClient(t, dom, 2, core.Centralized, func(s *Solver, th rts.Thread) error {
		grid, _ := dseq.NewDoubles(16, dist.Block(), th.Size(), th.Rank())
		for i := range grid.LocalData() {
			grid.LocalData()[i] = 1
		}
		var evals int32
		norm, err := s.Norm(context.Background(), grid, &evals)
		if err != nil {
			return err
		}
		if math.Abs(norm-4) > 1e-12 {
			return fmt.Errorf("norm = %v, want 4", norm)
		}
		if evals != 16 {
			return fmt.Errorf("evaluations = %d", evals)
		}
		return nil
	})
}

func TestGeneratedStructResult(t *testing.T) {
	dom, _, stop := fixture(t, 2)
	defer stop()
	withClient(t, dom, 1, core.Centralized, func(s *Solver, th rts.Thread) error {
		rep, err := s.Status(context.Background(), "t0")
		if err != nil {
			return err
		}
		if rep.Label != "status:t0" || rep.State != PhaseRUNNING {
			return fmt.Errorf("report = %+v", rep)
		}
		if rep.Domain.Cells != 128 || rep.Domain.Lo != -1 {
			return fmt.Errorf("extent = %+v", rep.Domain)
		}
		if len(rep.Residuals) != 3 || rep.Residuals[2] != 0.25 {
			return fmt.Errorf("residuals = %v", rep.Residuals)
		}
		return nil
	})
}

func TestGeneratedEnumInOut(t *testing.T) {
	dom, _, stop := fixture(t, 2)
	defer stop()
	withClient(t, dom, 2, core.Centralized, func(s *Solver, th rts.Thread) error {
		cur := PhaseINIT
		prev, err := s.Advance(context.Background(), &cur)
		if err != nil {
			return err
		}
		if prev != PhaseINIT || cur != PhaseRUNNING {
			return fmt.Errorf("prev=%v cur=%v", prev, cur)
		}
		if cur.String() != "RUNNING" {
			return fmt.Errorf("enum string = %s", cur)
		}
		return nil
	})
}

func TestGeneratedSequenceAndStructArgs(t *testing.T) {
	dom, _, stop := fixture(t, 2)
	defer stop()
	withClient(t, dom, 1, core.Centralized, func(s *Solver, th rts.Thread) error {
		return s.Configure(context.Background(),
			[]float64{0.2, 0.8}, Extent{Lo: 0, Hi: 10, Cells: 100})
	})
}

func TestGeneratedServantErrorPropagates(t *testing.T) {
	dom, _, stop := fixture(t, 2)
	defer stop()
	withClient(t, dom, 1, core.Centralized, func(s *Solver, th rts.Thread) error {
		err := s.Configure(context.Background(), nil, Extent{Cells: 1})
		if err == nil || !strings.Contains(err.Error(), "no weights") {
			return fmt.Errorf("want servant error, got %v", err)
		}
		return nil
	})
}

func TestGeneratedOneway(t *testing.T) {
	dom, impl, stop := fixture(t, 2)
	defer stop()
	withClient(t, dom, 2, core.Centralized, func(s *Solver, th rts.Thread) error {
		if err := s.Trace(context.Background(), "checkpoint"); err != nil {
			return err
		}
		// A following blocking call flushes the oneway through the
		// serial server loop.
		return s.Reset(context.Background())
	})
	impl.mu.Lock()
	defer impl.mu.Unlock()
	found := 0
	for _, tr := range impl.traces {
		if tr == "checkpoint" {
			found++
		}
	}
	// The oneway ran on both server threads exactly once.
	if found != 2 {
		t.Fatalf("trace ran %d times, want 2 (once per server thread): %v", found, impl.traces)
	}
}

func TestGeneratedInheritedOp(t *testing.T) {
	dom, impl, stop := fixture(t, 3)
	defer stop()
	withClient(t, dom, 1, core.Centralized, func(s *Solver, th rts.Thread) error {
		return s.Reset(context.Background())
	})
	impl.mu.Lock()
	defer impl.mu.Unlock()
	if impl.resets != 3 {
		t.Fatalf("resets = %d, want 3 (once per server thread)", impl.resets)
	}
}

func TestGeneratedAsync(t *testing.T) {
	dom, _, stop := fixture(t, 2)
	defer stop()
	withClient(t, dom, 2, core.MultiPort, func(s *Solver, th rts.Thread) error {
		grid, _ := dseq.NewDoubles(32, dist.Block(), th.Size(), th.Rank())
		for i := range grid.LocalData() {
			grid.LocalData()[i] = 1
		}
		pending, err := s.RelaxAsync(context.Background(), 1, 2.0, grid)
		if err != nil {
			return err
		}
		if err := pending.Wait(context.Background()); err != nil {
			return err
		}
		for i, v := range grid.LocalData() {
			if v != 2 {
				return fmt.Errorf("[%d] = %v", i, v)
			}
		}
		return nil
	})
}

func TestGeneratedConstants(t *testing.T) {
	if MAXSTEPS != 64 {
		t.Fatalf("MAXSTEPS = %d", MAXSTEPS)
	}
	if TOLERANCE != 1.5e-6 {
		t.Fatalf("TOLERANCE = %v", TOLERANCE)
	}
	if ENGINE != "pardis-go" {
		t.Fatalf("ENGINE = %q", ENGINE)
	}
	if VERBOSE {
		t.Fatal("VERBOSE should be false")
	}
	if FieldBound != 4096 {
		t.Fatalf("FieldBound = %d", FieldBound)
	}
	if SolverTypeID != "IDL:solver:1.0" {
		t.Fatalf("type id = %s", SolverTypeID)
	}
}

func TestGeneratedExceptionType(t *testing.T) {
	var err error = &Diverged{Reason: "blew up", Residual: 1e9}
	if !strings.Contains(err.Error(), "blew up") {
		t.Fatalf("exception error = %q", err.Error())
	}
}

func TestBindRejectsWrongTypeID(t *testing.T) {
	// "solver" is exported as IDL:solver:1.0; binding it through the
	// SolverBase proxy (IDL:solver_base:1.0) must be rejected at
	// bind time.
	dom, _, stop := fixture(t, 2)
	defer stop()
	err := mp.Run(1, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		_, err := BindSolverBase(context.Background(), dom, th, "solver", core.Centralized)
		if err == nil {
			return errors.New("cross-type bind accepted")
		}
		if !strings.Contains(err.Error(), "IDL:solver_base:1.0") {
			return fmt.Errorf("unhelpful error: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
