package cdr

import "testing"

func BenchmarkPutDoubleSeq(b *testing.B) {
	data := make([]float64, 1<<15)
	for i := range data {
		data[i] = float64(i)
	}
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		order := order
		b.Run(order.String(), func(b *testing.B) {
			b.SetBytes(int64(len(data) * 8))
			e := NewEncoder(order)
			for i := 0; i < b.N; i++ {
				e.Reset()
				e.PutDoubleSeq(data)
			}
		})
	}
}

func BenchmarkDoubleSeqDecode(b *testing.B) {
	data := make([]float64, 1<<15)
	e := NewEncoder(LittleEndian)
	e.PutDoubleSeq(data)
	raw := e.Bytes()
	b.SetBytes(int64(len(data) * 8))
	for i := 0; i < b.N; i++ {
		d := NewDecoder(LittleEndian, raw)
		if _, err := d.DoubleSeq(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutString(b *testing.B) {
	s := "a moderately sized object key string"
	e := NewEncoder(BigEndian)
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutString(s)
	}
}
