package cdr

import "testing"

func BenchmarkPutDoubleSeq(b *testing.B) {
	data := make([]float64, 1<<15)
	for i := range data {
		data[i] = float64(i)
	}
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		order := order
		b.Run(order.String(), func(b *testing.B) {
			b.SetBytes(int64(len(data) * 8))
			e := NewEncoder(order)
			for i := 0; i < b.N; i++ {
				e.Reset()
				e.PutDoubleSeq(data)
			}
		})
	}
}

func BenchmarkDoubleSeqDecode(b *testing.B) {
	data := make([]float64, 1<<15)
	e := NewEncoder(LittleEndian)
	e.PutDoubleSeq(data)
	raw := e.Bytes()
	b.SetBytes(int64(len(data) * 8))
	for i := 0; i < b.N; i++ {
		d := NewDecoder(LittleEndian, raw)
		if _, err := d.DoubleSeq(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutString(b *testing.B) {
	s := "a moderately sized object key string"
	e := NewEncoder(BigEndian)
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutString(s)
	}
}

func BenchmarkPutLongSeq(b *testing.B) {
	data := make([]int32, 1<<15)
	for i := range data {
		data[i] = int32(i)
	}
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		order := order
		b.Run(order.String(), func(b *testing.B) {
			b.SetBytes(int64(len(data) * 4))
			b.ReportAllocs()
			e := NewEncoder(order)
			for i := 0; i < b.N; i++ {
				e.Reset()
				e.PutLongSeq(data)
			}
		})
	}
}

func BenchmarkPutStringSeq(b *testing.B) {
	data := make([]string, 256)
	for i := range data {
		data[i] = "element-string-payload"
	}
	b.ReportAllocs()
	e := NewEncoder(BigEndian)
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutStringSeq(data)
	}
}

func BenchmarkDoubleSeqInto(b *testing.B) {
	data := make([]float64, 1<<15)
	e := NewEncoder(LittleEndian)
	e.PutDoubleSeq(data)
	raw := e.Bytes()
	dst := make([]float64, 0, len(data))
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(LittleEndian, raw)
		var err error
		if dst, err = d.DoubleSeqInto(dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLongSeqInto(b *testing.B) {
	data := make([]int32, 1<<15)
	e := NewEncoder(LittleEndian)
	e.PutLongSeq(data)
	raw := e.Bytes()
	dst := make([]int32, 0, len(data))
	b.SetBytes(int64(len(data) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(LittleEndian, raw)
		var err error
		if dst, err = d.LongSeqInto(dst); err != nil {
			b.Fatal(err)
		}
	}
}
