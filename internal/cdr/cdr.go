// Package cdr implements the Common Data Representation used on the
// PARDIS wire, closely following the CORBA 2.0 CDR rules: primitive
// values are aligned to their natural boundary relative to the start of
// the stream, the sender chooses the byte order and announces it in the
// message header, and composite values are laid out field by field with
// no padding beyond alignment.
//
// The package provides an Encoder that appends values to a growable
// buffer and a Decoder that consumes them, plus encapsulation helpers
// (a CDR stream nested inside an octet sequence, carrying its own byte
// order flag) used by object references and typed headers.
package cdr

import (
	"errors"
	"fmt"
	"math"
)

// ByteOrder identifies the endianness of a CDR stream. CDR is
// receiver-makes-right: the sender writes in its native order and flags
// it, and the receiver swaps only if needed.
type ByteOrder byte

const (
	// BigEndian is the network-canonical order.
	BigEndian ByteOrder = 0
	// LittleEndian is the order flagged by a 1 octet in headers.
	LittleEndian ByteOrder = 1
)

func (o ByteOrder) String() string {
	if o == BigEndian {
		return "big-endian"
	}
	return "little-endian"
}

// Errors reported by the decoder. They are wrapped with positional
// context; use errors.Is to test for them.
var (
	ErrTruncated  = errors.New("cdr: truncated stream")
	ErrBadString  = errors.New("cdr: malformed string")
	ErrBadBoolean = errors.New("cdr: boolean octet not 0 or 1")
	ErrTooLarge   = errors.New("cdr: length exceeds stream bounds")
)

// Encoder appends CDR-encoded values to an internal buffer. The zero
// value is not usable; construct with NewEncoder.
type Encoder struct {
	buf   []byte
	order ByteOrder
	// base is the stream offset of buf[0]; alignment is computed
	// relative to the logical start of the stream, which matters when
	// an encoder continues a partially written message.
	base int
}

// NewEncoder returns an Encoder writing in the given byte order.
func NewEncoder(order ByteOrder) *Encoder {
	return &Encoder{order: order, buf: make([]byte, 0, 64)}
}

// NewEncoderAt returns an Encoder whose first byte sits at stream
// offset base. Alignment padding is computed against that offset.
func NewEncoderAt(order ByteOrder, base int) *Encoder {
	return &Encoder{order: order, buf: make([]byte, 0, 64), base: base}
}

// Order reports the byte order the encoder writes in.
func (e *Encoder) Order() ByteOrder { return e.order }

// Bytes returns the encoded stream. The slice aliases the encoder's
// internal buffer; it is valid until the next Write call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far (excluding base).
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// align pads the buffer with zero octets so the next write lands on a
// multiple of n relative to the stream start.
func (e *Encoder) align(n int) {
	pos := e.base + len(e.buf)
	if r := pos % n; r != 0 {
		for i := 0; i < n-r; i++ {
			e.buf = append(e.buf, 0)
		}
	}
}

func (e *Encoder) put16(v uint16) {
	e.align(2)
	if e.order == BigEndian {
		e.buf = append(e.buf, byte(v>>8), byte(v))
	} else {
		e.buf = append(e.buf, byte(v), byte(v>>8))
	}
}

func (e *Encoder) put32(v uint32) {
	e.align(4)
	if e.order == BigEndian {
		e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
}

func (e *Encoder) put64(v uint64) {
	e.align(8)
	if e.order == BigEndian {
		e.buf = append(e.buf,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		e.buf = append(e.buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
}

// PutOctet appends a single octet.
func (e *Encoder) PutOctet(v byte) { e.buf = append(e.buf, v) }

// PutBoolean appends a boolean as a 0/1 octet.
func (e *Encoder) PutBoolean(v bool) {
	if v {
		e.PutOctet(1)
	} else {
		e.PutOctet(0)
	}
}

// PutChar appends an IDL char (one octet, ISO 8859-1).
func (e *Encoder) PutChar(v byte) { e.PutOctet(v) }

// PutShort appends an IDL short (16-bit signed).
func (e *Encoder) PutShort(v int16) { e.put16(uint16(v)) }

// PutUShort appends an IDL unsigned short.
func (e *Encoder) PutUShort(v uint16) { e.put16(v) }

// PutLong appends an IDL long (32-bit signed).
func (e *Encoder) PutLong(v int32) { e.put32(uint32(v)) }

// PutULong appends an IDL unsigned long.
func (e *Encoder) PutULong(v uint32) { e.put32(v) }

// PutLongLong appends an IDL long long (64-bit signed).
func (e *Encoder) PutLongLong(v int64) { e.put64(uint64(v)) }

// PutULongLong appends an IDL unsigned long long.
func (e *Encoder) PutULongLong(v uint64) { e.put64(v) }

// PutFloat appends an IDL float (IEEE 754 single).
func (e *Encoder) PutFloat(v float32) { e.put32(math.Float32bits(v)) }

// PutDouble appends an IDL double (IEEE 754 double).
func (e *Encoder) PutDouble(v float64) { e.put64(math.Float64bits(v)) }

// PutString appends an IDL string: ulong byte count including the
// terminating NUL, the bytes, then the NUL.
func (e *Encoder) PutString(s string) {
	e.PutULong(uint32(len(s) + 1))
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, 0)
}

// PutOctets appends raw octets with no length prefix and no alignment.
func (e *Encoder) PutOctets(p []byte) { e.buf = append(e.buf, p...) }

// PutOctetSeq appends a sequence<octet>: ulong count then the bytes.
func (e *Encoder) PutOctetSeq(p []byte) {
	e.PutULong(uint32(len(p)))
	e.buf = append(e.buf, p...)
}

// PutDoubleSeq appends a sequence<double>: ulong count then each
// element. The element loop is unrolled through put64's fast path.
func (e *Encoder) PutDoubleSeq(v []float64) {
	e.PutULong(uint32(len(v)))
	if len(v) == 0 {
		return
	}
	e.align(8)
	need := len(v) * 8
	off := len(e.buf)
	e.buf = append(e.buf, make([]byte, need)...)
	b := e.buf[off:]
	if e.order == BigEndian {
		for i, x := range v {
			u := math.Float64bits(x)
			bi := b[i*8 : i*8+8]
			bi[0] = byte(u >> 56)
			bi[1] = byte(u >> 48)
			bi[2] = byte(u >> 40)
			bi[3] = byte(u >> 32)
			bi[4] = byte(u >> 24)
			bi[5] = byte(u >> 16)
			bi[6] = byte(u >> 8)
			bi[7] = byte(u)
		}
	} else {
		for i, x := range v {
			u := math.Float64bits(x)
			bi := b[i*8 : i*8+8]
			bi[0] = byte(u)
			bi[1] = byte(u >> 8)
			bi[2] = byte(u >> 16)
			bi[3] = byte(u >> 24)
			bi[4] = byte(u >> 32)
			bi[5] = byte(u >> 40)
			bi[6] = byte(u >> 48)
			bi[7] = byte(u >> 56)
		}
	}
}

// PutLongSeq appends a sequence<long>.
func (e *Encoder) PutLongSeq(v []int32) {
	e.PutULong(uint32(len(v)))
	for _, x := range v {
		e.PutLong(x)
	}
}

// PutULongSeq appends a sequence<unsigned long>.
func (e *Encoder) PutULongSeq(v []uint32) {
	e.PutULong(uint32(len(v)))
	for _, x := range v {
		e.PutULong(x)
	}
}

// PutStringSeq appends a sequence<string>.
func (e *Encoder) PutStringSeq(v []string) {
	e.PutULong(uint32(len(v)))
	for _, s := range v {
		e.PutString(s)
	}
}

// PutEncapsulation appends the body as a CDR encapsulation: a
// sequence<octet> whose first octet is the byte-order flag of the
// nested stream.
func (e *Encoder) PutEncapsulation(order ByteOrder, encode func(*Encoder)) {
	inner := NewEncoderAt(order, 1) // flag octet occupies offset 0
	encode(inner)
	e.PutULong(uint32(1 + inner.Len()))
	e.PutOctet(byte(order))
	e.PutOctets(inner.Bytes())
}

// Decoder consumes CDR-encoded values from a byte slice.
type Decoder struct {
	buf   []byte
	pos   int
	order ByteOrder
	base  int
}

// NewDecoder returns a Decoder reading buf in the given byte order.
func NewDecoder(order ByteOrder, buf []byte) *Decoder {
	return &Decoder{order: order, buf: buf}
}

// NewDecoderAt returns a Decoder whose buf[0] sits at stream offset
// base, so alignment skips match the encoder's.
func NewDecoderAt(order ByteOrder, buf []byte, base int) *Decoder {
	return &Decoder{order: order, buf: buf, base: base}
}

// Order reports the byte order the decoder assumes.
func (d *Decoder) Order() ByteOrder { return d.order }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Pos returns the current read offset within the buffer.
func (d *Decoder) Pos() int { return d.pos }

func (d *Decoder) align(n int) {
	pos := d.base + d.pos
	if r := pos % n; r != 0 {
		d.pos += n - r
	}
}

func (d *Decoder) need(n int) error {
	if d.pos+n > len(d.buf) {
		return fmt.Errorf("%w: need %d bytes at offset %d, have %d",
			ErrTruncated, n, d.pos, len(d.buf)-d.pos)
	}
	return nil
}

func (d *Decoder) get16() (uint16, error) {
	d.align(2)
	if err := d.need(2); err != nil {
		return 0, err
	}
	b := d.buf[d.pos:]
	d.pos += 2
	if d.order == BigEndian {
		return uint16(b[0])<<8 | uint16(b[1]), nil
	}
	return uint16(b[1])<<8 | uint16(b[0]), nil
}

func (d *Decoder) get32() (uint32, error) {
	d.align(4)
	if err := d.need(4); err != nil {
		return 0, err
	}
	b := d.buf[d.pos:]
	d.pos += 4
	if d.order == BigEndian {
		return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
	}
	return uint32(b[3])<<24 | uint32(b[2])<<16 | uint32(b[1])<<8 | uint32(b[0]), nil
}

func (d *Decoder) get64() (uint64, error) {
	d.align(8)
	if err := d.need(8); err != nil {
		return 0, err
	}
	b := d.buf[d.pos:]
	d.pos += 8
	if d.order == BigEndian {
		return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
			uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7]), nil
	}
	return uint64(b[7])<<56 | uint64(b[6])<<48 | uint64(b[5])<<40 | uint64(b[4])<<32 |
		uint64(b[3])<<24 | uint64(b[2])<<16 | uint64(b[1])<<8 | uint64(b[0]), nil
}

// Octet reads one octet.
func (d *Decoder) Octet() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.buf[d.pos]
	d.pos++
	return v, nil
}

// Boolean reads a boolean octet, rejecting values other than 0 and 1.
func (d *Decoder) Boolean() (bool, error) {
	v, err := d.Octet()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: got %d", ErrBadBoolean, v)
	}
}

// Char reads an IDL char.
func (d *Decoder) Char() (byte, error) { return d.Octet() }

// Short reads an IDL short.
func (d *Decoder) Short() (int16, error) {
	v, err := d.get16()
	return int16(v), err
}

// UShort reads an IDL unsigned short.
func (d *Decoder) UShort() (uint16, error) { return d.get16() }

// Long reads an IDL long.
func (d *Decoder) Long() (int32, error) {
	v, err := d.get32()
	return int32(v), err
}

// ULong reads an IDL unsigned long.
func (d *Decoder) ULong() (uint32, error) { return d.get32() }

// LongLong reads an IDL long long.
func (d *Decoder) LongLong() (int64, error) {
	v, err := d.get64()
	return int64(v), err
}

// ULongLong reads an IDL unsigned long long.
func (d *Decoder) ULongLong() (uint64, error) { return d.get64() }

// Float reads an IDL float.
func (d *Decoder) Float() (float32, error) {
	v, err := d.get32()
	return math.Float32frombits(v), err
}

// Double reads an IDL double.
func (d *Decoder) Double() (float64, error) {
	v, err := d.get64()
	return math.Float64frombits(v), err
}

// String reads an IDL string and validates its NUL terminator.
func (d *Decoder) String() (string, error) {
	n, err := d.ULong()
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", fmt.Errorf("%w: zero-length count (must include NUL)", ErrBadString)
	}
	if uint64(n) > uint64(d.Remaining()) {
		return "", fmt.Errorf("%w: string of %d bytes", ErrTooLarge, n)
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	if b[n-1] != 0 {
		return "", fmt.Errorf("%w: missing NUL terminator", ErrBadString)
	}
	return string(b[:n-1]), nil
}

// Octets reads n raw octets with no alignment. The returned slice
// aliases the decoder's buffer.
func (d *Decoder) Octets(n int) ([]byte, error) {
	if err := d.need(n); err != nil {
		return nil, err
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

// OctetSeq reads a sequence<octet>. The returned slice aliases the
// decoder's buffer.
func (d *Decoder) OctetSeq() ([]byte, error) {
	n, err := d.ULong()
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(d.Remaining()) {
		return nil, fmt.Errorf("%w: octet sequence of %d", ErrTooLarge, n)
	}
	return d.Octets(int(n))
}

// DoubleSeq reads a sequence<double>.
func (d *Decoder) DoubleSeq() ([]float64, error) {
	n, err := d.ULong()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if uint64(n) > uint64(d.Remaining())/8+1 {
		return nil, fmt.Errorf("%w: double sequence of %d", ErrTooLarge, n)
	}
	d.align(8)
	if err := d.need(int(n) * 8); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	b := d.buf[d.pos:]
	if d.order == BigEndian {
		for i := range out {
			bi := b[i*8 : i*8+8]
			u := uint64(bi[0])<<56 | uint64(bi[1])<<48 | uint64(bi[2])<<40 | uint64(bi[3])<<32 |
				uint64(bi[4])<<24 | uint64(bi[5])<<16 | uint64(bi[6])<<8 | uint64(bi[7])
			out[i] = math.Float64frombits(u)
		}
	} else {
		for i := range out {
			bi := b[i*8 : i*8+8]
			u := uint64(bi[7])<<56 | uint64(bi[6])<<48 | uint64(bi[5])<<40 | uint64(bi[4])<<32 |
				uint64(bi[3])<<24 | uint64(bi[2])<<16 | uint64(bi[1])<<8 | uint64(bi[0])
			out[i] = math.Float64frombits(u)
		}
	}
	d.pos += int(n) * 8
	return out, nil
}

// LongSeq reads a sequence<long>.
func (d *Decoder) LongSeq() ([]int32, error) {
	n, err := d.ULong()
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(d.Remaining())/4+1 {
		return nil, fmt.Errorf("%w: long sequence of %d", ErrTooLarge, n)
	}
	out := make([]int32, n)
	for i := range out {
		if out[i], err = d.Long(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ULongSeq reads a sequence<unsigned long>.
func (d *Decoder) ULongSeq() ([]uint32, error) {
	n, err := d.ULong()
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(d.Remaining())/4+1 {
		return nil, fmt.Errorf("%w: ulong sequence of %d", ErrTooLarge, n)
	}
	out := make([]uint32, n)
	for i := range out {
		if out[i], err = d.ULong(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// StringSeq reads a sequence<string>.
func (d *Decoder) StringSeq() ([]string, error) {
	n, err := d.ULong()
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(d.Remaining()) {
		return nil, fmt.Errorf("%w: string sequence of %d", ErrTooLarge, n)
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = d.String(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Encapsulation reads a CDR encapsulation and returns a Decoder for
// its body, using the byte-order flag carried in the first octet.
func (d *Decoder) Encapsulation() (*Decoder, error) {
	body, err := d.OctetSeq()
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("%w: empty encapsulation", ErrTruncated)
	}
	flag := body[0]
	if flag > 1 {
		return nil, fmt.Errorf("cdr: bad encapsulation byte-order flag %d", flag)
	}
	return NewDecoderAt(ByteOrder(flag), body[1:], 1), nil
}
