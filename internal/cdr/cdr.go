// Package cdr implements the Common Data Representation used on the
// PARDIS wire, closely following the CORBA 2.0 CDR rules: primitive
// values are aligned to their natural boundary relative to the start of
// the stream, the sender chooses the byte order and announces it in the
// message header, and composite values are laid out field by field with
// no padding beyond alignment.
//
// The package provides an Encoder that appends values to a growable
// buffer and a Decoder that consumes them, plus encapsulation helpers
// (a CDR stream nested inside an octet sequence, carrying its own byte
// order flag) used by object references and typed headers.
package cdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ByteOrder identifies the endianness of a CDR stream. CDR is
// receiver-makes-right: the sender writes in its native order and flags
// it, and the receiver swaps only if needed.
type ByteOrder byte

const (
	// BigEndian is the network-canonical order.
	BigEndian ByteOrder = 0
	// LittleEndian is the order flagged by a 1 octet in headers.
	LittleEndian ByteOrder = 1
)

func (o ByteOrder) String() string {
	if o == BigEndian {
		return "big-endian"
	}
	return "little-endian"
}

// Errors reported by the decoder. They are wrapped with positional
// context; use errors.Is to test for them.
var (
	ErrTruncated  = errors.New("cdr: truncated stream")
	ErrBadString  = errors.New("cdr: malformed string")
	ErrBadBoolean = errors.New("cdr: boolean octet not 0 or 1")
	ErrTooLarge   = errors.New("cdr: length exceeds stream bounds")
)

// Encoder appends CDR-encoded values to an internal buffer. The zero
// value is not usable; construct with NewEncoder.
type Encoder struct {
	buf   []byte
	order ByteOrder
	// base is the stream offset of buf[0]; alignment is computed
	// relative to the logical start of the stream, which matters when
	// an encoder continues a partially written message.
	base int
}

// NewEncoder returns an Encoder writing in the given byte order.
func NewEncoder(order ByteOrder) *Encoder {
	return &Encoder{order: order, buf: make([]byte, 0, 64)}
}

// NewEncoderAt returns an Encoder whose first byte sits at stream
// offset base. Alignment padding is computed against that offset.
func NewEncoderAt(order ByteOrder, base int) *Encoder {
	return &Encoder{order: order, buf: make([]byte, 0, 64), base: base}
}

// Order reports the byte order the encoder writes in.
func (e *Encoder) Order() ByteOrder { return e.order }

// Bytes returns the encoded stream. The slice aliases the encoder's
// internal buffer; it is valid until the next Write call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far (excluding base).
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// ResetTo discards the buffer contents and re-targets the encoder to a
// byte order and stream base, retaining capacity — how pooled encoders
// are recycled across messages.
func (e *Encoder) ResetTo(order ByteOrder, base int) {
	e.buf = e.buf[:0]
	e.order = order
	e.base = base
}

// grow extends the buffer by n zero bytes and returns the extension.
// The append(make) form is recognized by the compiler and does not
// allocate a temporary.
func (e *Encoder) grow(n int) []byte {
	off := len(e.buf)
	e.buf = append(e.buf, make([]byte, n)...)
	return e.buf[off:]
}

// align pads the buffer with zero octets so the next write lands on a
// multiple of n relative to the stream start.
func (e *Encoder) align(n int) {
	pos := e.base + len(e.buf)
	if r := pos % n; r != 0 {
		for i := 0; i < n-r; i++ {
			e.buf = append(e.buf, 0)
		}
	}
}

func (e *Encoder) put16(v uint16) {
	e.align(2)
	if e.order == BigEndian {
		e.buf = append(e.buf, byte(v>>8), byte(v))
	} else {
		e.buf = append(e.buf, byte(v), byte(v>>8))
	}
}

func (e *Encoder) put32(v uint32) {
	e.align(4)
	if e.order == BigEndian {
		e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
}

func (e *Encoder) put64(v uint64) {
	e.align(8)
	if e.order == BigEndian {
		e.buf = append(e.buf,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		e.buf = append(e.buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
}

// PutOctet appends a single octet.
func (e *Encoder) PutOctet(v byte) { e.buf = append(e.buf, v) }

// PutBoolean appends a boolean as a 0/1 octet.
func (e *Encoder) PutBoolean(v bool) {
	if v {
		e.PutOctet(1)
	} else {
		e.PutOctet(0)
	}
}

// PutChar appends an IDL char (one octet, ISO 8859-1).
func (e *Encoder) PutChar(v byte) { e.PutOctet(v) }

// PutShort appends an IDL short (16-bit signed).
func (e *Encoder) PutShort(v int16) { e.put16(uint16(v)) }

// PutUShort appends an IDL unsigned short.
func (e *Encoder) PutUShort(v uint16) { e.put16(v) }

// PutLong appends an IDL long (32-bit signed).
func (e *Encoder) PutLong(v int32) { e.put32(uint32(v)) }

// PutULong appends an IDL unsigned long.
func (e *Encoder) PutULong(v uint32) { e.put32(v) }

// PutLongLong appends an IDL long long (64-bit signed).
func (e *Encoder) PutLongLong(v int64) { e.put64(uint64(v)) }

// PutULongLong appends an IDL unsigned long long.
func (e *Encoder) PutULongLong(v uint64) { e.put64(v) }

// PutFloat appends an IDL float (IEEE 754 single).
func (e *Encoder) PutFloat(v float32) { e.put32(math.Float32bits(v)) }

// PutDouble appends an IDL double (IEEE 754 double).
func (e *Encoder) PutDouble(v float64) { e.put64(math.Float64bits(v)) }

// PutString appends an IDL string: ulong byte count including the
// terminating NUL, the bytes, then the NUL.
func (e *Encoder) PutString(s string) {
	e.PutULong(uint32(len(s) + 1))
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, 0)
}

// PutOctets appends raw octets with no length prefix and no alignment.
func (e *Encoder) PutOctets(p []byte) { e.buf = append(e.buf, p...) }

// PutOctetSeq appends a sequence<octet>: ulong count then the bytes.
func (e *Encoder) PutOctetSeq(p []byte) {
	e.PutULong(uint32(len(p)))
	e.buf = append(e.buf, p...)
}

// PutDoubleSeq appends a sequence<double>: ulong count then each
// element. When the stream order matches the host order the element
// data moves as one memcpy; otherwise a byte-swapping bulk loop runs
// over a single pre-grown region.
func (e *Encoder) PutDoubleSeq(v []float64) {
	e.PutULong(uint32(len(v)))
	if len(v) == 0 {
		return
	}
	e.align(8)
	b := e.grow(len(v) * 8)
	switch e.order {
	case NativeOrder:
		copy(b, f64Bytes(v))
	case BigEndian:
		for i, x := range v {
			binary.BigEndian.PutUint64(b[i*8:], math.Float64bits(x))
		}
	default:
		for i, x := range v {
			binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
		}
	}
}

// PutDoubles appends raw element data for len(v) doubles — 8-aligned,
// no count prefix — the payload form of a window put, whose element
// count travels in the message header instead of the body.
func (e *Encoder) PutDoubles(v []float64) {
	if len(v) == 0 {
		return
	}
	e.align(8)
	b := e.grow(len(v) * 8)
	switch e.order {
	case NativeOrder:
		copy(b, f64Bytes(v))
	case BigEndian:
		for i, x := range v {
			binary.BigEndian.PutUint64(b[i*8:], math.Float64bits(x))
		}
	default:
		for i, x := range v {
			binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
		}
	}
}

// DecodeDoubles fills dst from exactly len(dst)*8 bytes of raw element
// data in the given order (the payload form written by PutDoubles). A
// same-endianness stream moves as one memcpy.
func DecodeDoubles(dst []float64, b []byte, order ByteOrder) {
	if len(dst) == 0 {
		return
	}
	switch order {
	case NativeOrder:
		copy(f64Bytes(dst), b)
	case BigEndian:
		for i := range dst {
			dst[i] = math.Float64frombits(binary.BigEndian.Uint64(b[i*8:]))
		}
	default:
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
	}
}

// PutLongSeq appends a sequence<long> through the bulk ulong path.
func (e *Encoder) PutLongSeq(v []int32) {
	if len(v) == 0 {
		e.PutULong(0)
		return
	}
	e.putULongSeqBody(i32AsU32(v))
}

// PutULongSeq appends a sequence<unsigned long>: ulong count then the
// elements, laid out in one pre-grown region like PutDoubleSeq.
func (e *Encoder) PutULongSeq(v []uint32) {
	if len(v) == 0 {
		e.PutULong(0)
		return
	}
	e.putULongSeqBody(v)
}

func (e *Encoder) putULongSeqBody(v []uint32) {
	e.PutULong(uint32(len(v)))
	e.align(4) // count leaves us 4-aligned; explicit for clarity
	b := e.grow(len(v) * 4)
	switch e.order {
	case NativeOrder:
		copy(b, u32Bytes(v))
	case BigEndian:
		for i, x := range v {
			binary.BigEndian.PutUint32(b[i*4:], x)
		}
	default:
		for i, x := range v {
			binary.LittleEndian.PutUint32(b[i*4:], x)
		}
	}
}

// PutStringSeq appends a sequence<string>. The total wire size
// (per-element count, bytes, NUL, alignment) is computed up front so
// the buffer grows once for the whole sequence.
func (e *Encoder) PutStringSeq(v []string) {
	e.PutULong(uint32(len(v)))
	if len(v) == 0 {
		return
	}
	start := e.base + len(e.buf)
	total := 0
	for _, s := range v {
		if r := (start + total) % 4; r != 0 {
			total += 4 - r
		}
		total += 4 + len(s) + 1
	}
	b := e.grow(total) // zeroed, so padding and NULs are pre-written
	o := 0
	for _, s := range v {
		if r := (start + o) % 4; r != 0 {
			o += 4 - r
		}
		if e.order == BigEndian {
			binary.BigEndian.PutUint32(b[o:], uint32(len(s)+1))
		} else {
			binary.LittleEndian.PutUint32(b[o:], uint32(len(s)+1))
		}
		o += 4
		o += copy(b[o:], s)
		o++ // the NUL terminator, already zero
	}
}

// PutEncapsulation appends the body as a CDR encapsulation: a
// sequence<octet> whose first octet is the byte-order flag of the
// nested stream.
func (e *Encoder) PutEncapsulation(order ByteOrder, encode func(*Encoder)) {
	inner := NewEncoderAt(order, 1) // flag octet occupies offset 0
	encode(inner)
	e.PutULong(uint32(1 + inner.Len()))
	e.PutOctet(byte(order))
	e.PutOctets(inner.Bytes())
}

// Decoder consumes CDR-encoded values from a byte slice.
type Decoder struct {
	buf   []byte
	pos   int
	order ByteOrder
	base  int
}

// NewDecoder returns a Decoder reading buf in the given byte order.
func NewDecoder(order ByteOrder, buf []byte) *Decoder {
	return &Decoder{order: order, buf: buf}
}

// NewDecoderAt returns a Decoder whose buf[0] sits at stream offset
// base, so alignment skips match the encoder's.
func NewDecoderAt(order ByteOrder, buf []byte, base int) *Decoder {
	return &Decoder{order: order, buf: buf, base: base}
}

// Order reports the byte order the decoder assumes.
func (d *Decoder) Order() ByteOrder { return d.order }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Pos returns the current read offset within the buffer.
func (d *Decoder) Pos() int { return d.pos }

func (d *Decoder) align(n int) {
	pos := d.base + d.pos
	if r := pos % n; r != 0 {
		d.pos += n - r
	}
}

func (d *Decoder) need(n int) error {
	if d.pos+n > len(d.buf) {
		return fmt.Errorf("%w: need %d bytes at offset %d, have %d",
			ErrTruncated, n, d.pos, len(d.buf)-d.pos)
	}
	return nil
}

func (d *Decoder) get16() (uint16, error) {
	d.align(2)
	if err := d.need(2); err != nil {
		return 0, err
	}
	b := d.buf[d.pos:]
	d.pos += 2
	if d.order == BigEndian {
		return uint16(b[0])<<8 | uint16(b[1]), nil
	}
	return uint16(b[1])<<8 | uint16(b[0]), nil
}

func (d *Decoder) get32() (uint32, error) {
	d.align(4)
	if err := d.need(4); err != nil {
		return 0, err
	}
	b := d.buf[d.pos:]
	d.pos += 4
	if d.order == BigEndian {
		return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
	}
	return uint32(b[3])<<24 | uint32(b[2])<<16 | uint32(b[1])<<8 | uint32(b[0]), nil
}

func (d *Decoder) get64() (uint64, error) {
	d.align(8)
	if err := d.need(8); err != nil {
		return 0, err
	}
	b := d.buf[d.pos:]
	d.pos += 8
	if d.order == BigEndian {
		return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
			uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7]), nil
	}
	return uint64(b[7])<<56 | uint64(b[6])<<48 | uint64(b[5])<<40 | uint64(b[4])<<32 |
		uint64(b[3])<<24 | uint64(b[2])<<16 | uint64(b[1])<<8 | uint64(b[0]), nil
}

// Octet reads one octet.
func (d *Decoder) Octet() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.buf[d.pos]
	d.pos++
	return v, nil
}

// Boolean reads a boolean octet, rejecting values other than 0 and 1.
func (d *Decoder) Boolean() (bool, error) {
	v, err := d.Octet()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: got %d", ErrBadBoolean, v)
	}
}

// Char reads an IDL char.
func (d *Decoder) Char() (byte, error) { return d.Octet() }

// Short reads an IDL short.
func (d *Decoder) Short() (int16, error) {
	v, err := d.get16()
	return int16(v), err
}

// UShort reads an IDL unsigned short.
func (d *Decoder) UShort() (uint16, error) { return d.get16() }

// Long reads an IDL long.
func (d *Decoder) Long() (int32, error) {
	v, err := d.get32()
	return int32(v), err
}

// ULong reads an IDL unsigned long.
func (d *Decoder) ULong() (uint32, error) { return d.get32() }

// LongLong reads an IDL long long.
func (d *Decoder) LongLong() (int64, error) {
	v, err := d.get64()
	return int64(v), err
}

// ULongLong reads an IDL unsigned long long.
func (d *Decoder) ULongLong() (uint64, error) { return d.get64() }

// Float reads an IDL float.
func (d *Decoder) Float() (float32, error) {
	v, err := d.get32()
	return math.Float32frombits(v), err
}

// Double reads an IDL double.
func (d *Decoder) Double() (float64, error) {
	v, err := d.get64()
	return math.Float64frombits(v), err
}

// String reads an IDL string and validates its NUL terminator.
func (d *Decoder) String() (string, error) {
	n, err := d.ULong()
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", fmt.Errorf("%w: zero-length count (must include NUL)", ErrBadString)
	}
	if uint64(n) > uint64(d.Remaining()) {
		return "", fmt.Errorf("%w: string of %d bytes", ErrTooLarge, n)
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	if b[n-1] != 0 {
		return "", fmt.Errorf("%w: missing NUL terminator", ErrBadString)
	}
	return string(b[:n-1]), nil
}

// Octets reads n raw octets with no alignment. The returned slice
// aliases the decoder's buffer.
func (d *Decoder) Octets(n int) ([]byte, error) {
	if err := d.need(n); err != nil {
		return nil, err
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

// OctetSeq reads a sequence<octet>. The returned slice aliases the
// decoder's buffer.
func (d *Decoder) OctetSeq() ([]byte, error) {
	n, err := d.ULong()
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(d.Remaining()) {
		return nil, fmt.Errorf("%w: octet sequence of %d", ErrTooLarge, n)
	}
	return d.Octets(int(n))
}

// DoubleSeq reads a sequence<double>.
func (d *Decoder) DoubleSeq() ([]float64, error) { return d.DoubleSeqInto(nil) }

// DoubleSeqInto reads a sequence<double> into dst, reusing its storage
// when the capacity suffices (the bulk decoder for hot paths that
// decode into a caller-owned buffer instead of allocating per call).
// It returns the filled slice, whose length is the wire element count;
// a same-endianness stream moves as one memcpy.
func (d *Decoder) DoubleSeqInto(dst []float64) ([]float64, error) {
	n, err := d.ULong()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		if dst != nil {
			return dst[:0], nil
		}
		return nil, nil
	}
	if uint64(n) > uint64(d.Remaining())/8+1 {
		return nil, fmt.Errorf("%w: double sequence of %d", ErrTooLarge, n)
	}
	d.align(8)
	if err := d.need(int(n) * 8); err != nil {
		return nil, err
	}
	if cap(dst) >= int(n) {
		dst = dst[:n]
	} else {
		dst = make([]float64, n)
	}
	b := d.buf[d.pos : d.pos+int(n)*8]
	switch d.order {
	case NativeOrder:
		copy(f64Bytes(dst), b)
	case BigEndian:
		for i := range dst {
			dst[i] = math.Float64frombits(binary.BigEndian.Uint64(b[i*8:]))
		}
	default:
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
	}
	d.pos += int(n) * 8
	return dst, nil
}

// LongSeq reads a sequence<long>.
func (d *Decoder) LongSeq() ([]int32, error) { return d.LongSeqInto(nil) }

// LongSeqInto reads a sequence<long> into dst, reusing its storage
// when the capacity suffices (see DoubleSeqInto).
func (d *Decoder) LongSeqInto(dst []int32) ([]int32, error) {
	n, err := d.ulongSeqHeader("long")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		if dst != nil {
			return dst[:0], nil
		}
		return nil, nil
	}
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]int32, n)
	}
	d.ulongSeqBody(i32AsU32(dst))
	return dst, nil
}

// ULongSeq reads a sequence<unsigned long>.
func (d *Decoder) ULongSeq() ([]uint32, error) { return d.ULongSeqInto(nil) }

// ULongSeqInto reads a sequence<unsigned long> into dst, reusing its
// storage when the capacity suffices (see DoubleSeqInto).
func (d *Decoder) ULongSeqInto(dst []uint32) ([]uint32, error) {
	n, err := d.ulongSeqHeader("ulong")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		if dst != nil {
			return dst[:0], nil
		}
		return nil, nil
	}
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]uint32, n)
	}
	d.ulongSeqBody(dst)
	return dst, nil
}

// ulongSeqHeader reads and bounds-checks a 32-bit-element sequence
// count, leaving the decoder positioned at the first element.
func (d *Decoder) ulongSeqHeader(kind string) (int, error) {
	n, err := d.ULong()
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	if uint64(n) > uint64(d.Remaining())/4+1 {
		return 0, fmt.Errorf("%w: %s sequence of %d", ErrTooLarge, kind, n)
	}
	d.align(4)
	if err := d.need(int(n) * 4); err != nil {
		return 0, err
	}
	return int(n), nil
}

// ulongSeqBody bulk-decodes len(dst) contiguous ulongs; bounds were
// established by ulongSeqHeader.
func (d *Decoder) ulongSeqBody(dst []uint32) {
	b := d.buf[d.pos : d.pos+len(dst)*4]
	switch d.order {
	case NativeOrder:
		copy(u32Bytes(dst), b)
	case BigEndian:
		for i := range dst {
			dst[i] = binary.BigEndian.Uint32(b[i*4:])
		}
	default:
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint32(b[i*4:])
		}
	}
	d.pos += len(dst) * 4
}

// StringSeq reads a sequence<string>.
func (d *Decoder) StringSeq() ([]string, error) {
	n, err := d.ULong()
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(d.Remaining()) {
		return nil, fmt.Errorf("%w: string sequence of %d", ErrTooLarge, n)
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = d.String(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Encapsulation reads a CDR encapsulation and returns a Decoder for
// its body, using the byte-order flag carried in the first octet.
func (d *Decoder) Encapsulation() (*Decoder, error) {
	body, err := d.OctetSeq()
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("%w: empty encapsulation", ErrTruncated)
	}
	flag := body[0]
	if flag > 1 {
		return nil, fmt.Errorf("cdr: bad encapsulation byte-order flag %d", flag)
	}
	return NewDecoderAt(ByteOrder(flag), body[1:], 1), nil
}
