package cdr

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

var orders = []ByteOrder{BigEndian, LittleEndian}

func TestPrimitiveRoundTrip(t *testing.T) {
	for _, o := range orders {
		e := NewEncoder(o)
		e.PutOctet(0xAB)
		e.PutBoolean(true)
		e.PutBoolean(false)
		e.PutChar('x')
		e.PutShort(-12345)
		e.PutUShort(54321)
		e.PutLong(-123456789)
		e.PutULong(3123456789)
		e.PutLongLong(-1234567890123456789)
		e.PutULongLong(12345678901234567890)
		e.PutFloat(3.5)
		e.PutDouble(-math.Pi)
		e.PutString("hello, PARDIS")

		d := NewDecoder(o, e.Bytes())
		if v, _ := d.Octet(); v != 0xAB {
			t.Fatalf("%v octet = %x", o, v)
		}
		if v, _ := d.Boolean(); !v {
			t.Fatalf("%v bool true", o)
		}
		if v, _ := d.Boolean(); v {
			t.Fatalf("%v bool false", o)
		}
		if v, _ := d.Char(); v != 'x' {
			t.Fatalf("%v char = %c", o, v)
		}
		if v, _ := d.Short(); v != -12345 {
			t.Fatalf("%v short = %d", o, v)
		}
		if v, _ := d.UShort(); v != 54321 {
			t.Fatalf("%v ushort = %d", o, v)
		}
		if v, _ := d.Long(); v != -123456789 {
			t.Fatalf("%v long = %d", o, v)
		}
		if v, _ := d.ULong(); v != 3123456789 {
			t.Fatalf("%v ulong = %d", o, v)
		}
		if v, _ := d.LongLong(); v != -1234567890123456789 {
			t.Fatalf("%v longlong = %d", o, v)
		}
		if v, _ := d.ULongLong(); v != 12345678901234567890 {
			t.Fatalf("%v ulonglong = %d", o, v)
		}
		if v, _ := d.Float(); v != 3.5 {
			t.Fatalf("%v float = %v", o, v)
		}
		if v, _ := d.Double(); v != -math.Pi {
			t.Fatalf("%v double = %v", o, v)
		}
		if v, err := d.String(); err != nil || v != "hello, PARDIS" {
			t.Fatalf("%v string = %q err=%v", o, v, err)
		}
		if d.Remaining() != 0 {
			t.Fatalf("%v leftover %d bytes", o, d.Remaining())
		}
	}
}

func TestAlignment(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutOctet(1) // offset 0
	e.PutLong(7)  // must pad to offset 4
	if got := e.Bytes(); len(got) != 8 {
		t.Fatalf("len = %d, want 8", len(got))
	}
	e2 := NewEncoder(BigEndian)
	e2.PutOctet(1)
	e2.PutDouble(1.0) // must pad to offset 8
	if e2.Len() != 16 {
		t.Fatalf("double after octet: len = %d, want 16", e2.Len())
	}
	// Aligned writes add no padding.
	e3 := NewEncoder(BigEndian)
	e3.PutLong(1)
	e3.PutLong(2)
	if e3.Len() != 8 {
		t.Fatalf("two longs: len = %d, want 8", e3.Len())
	}
}

func TestAlignmentWithBase(t *testing.T) {
	// A stream continuing at offset 3 must pad 1 byte before a long.
	e := NewEncoderAt(BigEndian, 3)
	e.PutLong(42)
	if e.Len() != 5 {
		t.Fatalf("len = %d, want 5 (1 pad + 4)", e.Len())
	}
	d := NewDecoderAt(BigEndian, e.Bytes(), 3)
	v, err := d.Long()
	if err != nil || v != 42 {
		t.Fatalf("long = %d err=%v", v, err)
	}
}

func TestBigEndianWireFormat(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutULong(0x01020304)
	if !bytes.Equal(e.Bytes(), []byte{1, 2, 3, 4}) {
		t.Fatalf("BE ulong bytes = %v", e.Bytes())
	}
	e2 := NewEncoder(LittleEndian)
	e2.PutULong(0x01020304)
	if !bytes.Equal(e2.Bytes(), []byte{4, 3, 2, 1}) {
		t.Fatalf("LE ulong bytes = %v", e2.Bytes())
	}
}

func TestStringEncoding(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutString("ab")
	// ulong 3 (2 chars + NUL), 'a', 'b', 0
	want := []byte{0, 0, 0, 3, 'a', 'b', 0}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("string bytes = %v, want %v", e.Bytes(), want)
	}
}

func TestEmptyString(t *testing.T) {
	for _, o := range orders {
		e := NewEncoder(o)
		e.PutString("")
		d := NewDecoder(o, e.Bytes())
		s, err := d.String()
		if err != nil || s != "" {
			t.Fatalf("empty string round trip: %q, %v", s, err)
		}
	}
}

func TestSequences(t *testing.T) {
	for _, o := range orders {
		e := NewEncoder(o)
		ds := []float64{1.5, -2.25, math.Inf(1), 0, math.SmallestNonzeroFloat64}
		ls := []int32{-1, 0, 1 << 30}
		us := []uint32{0, 7, 1 << 31}
		ss := []string{"", "a", "longer string"}
		oc := []byte{9, 8, 7}
		e.PutDoubleSeq(ds)
		e.PutLongSeq(ls)
		e.PutULongSeq(us)
		e.PutStringSeq(ss)
		e.PutOctetSeq(oc)

		d := NewDecoder(o, e.Bytes())
		gotD, err := d.DoubleSeq()
		if err != nil {
			t.Fatal(err)
		}
		for i := range ds {
			if gotD[i] != ds[i] {
				t.Fatalf("%v double[%d] = %v want %v", o, i, gotD[i], ds[i])
			}
		}
		gotL, err := d.LongSeq()
		if err != nil {
			t.Fatal(err)
		}
		for i := range ls {
			if gotL[i] != ls[i] {
				t.Fatalf("long[%d] mismatch", i)
			}
		}
		gotU, err := d.ULongSeq()
		if err != nil {
			t.Fatal(err)
		}
		for i := range us {
			if gotU[i] != us[i] {
				t.Fatalf("ulong[%d] mismatch", i)
			}
		}
		gotS, err := d.StringSeq()
		if err != nil {
			t.Fatal(err)
		}
		for i := range ss {
			if gotS[i] != ss[i] {
				t.Fatalf("string[%d] = %q", i, gotS[i])
			}
		}
		gotO, err := d.OctetSeq()
		if err != nil || !bytes.Equal(gotO, oc) {
			t.Fatalf("octets = %v err=%v", gotO, err)
		}
	}
}

func TestNaNRoundTrip(t *testing.T) {
	e := NewEncoder(LittleEndian)
	e.PutDouble(math.NaN())
	d := NewDecoder(LittleEndian, e.Bytes())
	v, err := d.Double()
	if err != nil || !math.IsNaN(v) {
		t.Fatalf("NaN round trip failed: %v, %v", v, err)
	}
}

func TestEncapsulation(t *testing.T) {
	for _, outer := range orders {
		for _, inner := range orders {
			e := NewEncoder(outer)
			e.PutEncapsulation(inner, func(ie *Encoder) {
				ie.PutLong(99)
				ie.PutString("nested")
			})
			e.PutLong(7) // data after the encapsulation must still decode

			d := NewDecoder(outer, e.Bytes())
			id, err := d.Encapsulation()
			if err != nil {
				t.Fatal(err)
			}
			if id.Order() != inner {
				t.Fatalf("inner order = %v want %v", id.Order(), inner)
			}
			if v, _ := id.Long(); v != 99 {
				t.Fatalf("inner long = %d", v)
			}
			if s, _ := id.String(); s != "nested" {
				t.Fatalf("inner string = %q", s)
			}
			if v, _ := d.Long(); v != 7 {
				t.Fatalf("outer long after encap = %d", v)
			}
		}
	}
}

func TestTruncationErrors(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutDouble(1.0)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(BigEndian, full[:cut])
		if _, err := d.Double(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestStringErrors(t *testing.T) {
	// Length that exceeds the buffer.
	e := NewEncoder(BigEndian)
	e.PutULong(1000)
	e.PutOctets([]byte{'a'})
	d := NewDecoder(BigEndian, e.Bytes())
	if _, err := d.String(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize: %v", err)
	}
	// Zero-length count is illegal (must include NUL).
	e2 := NewEncoder(BigEndian)
	e2.PutULong(0)
	d2 := NewDecoder(BigEndian, e2.Bytes())
	if _, err := d2.String(); !errors.Is(err, ErrBadString) {
		t.Fatalf("zero len: %v", err)
	}
	// Missing NUL.
	e3 := NewEncoder(BigEndian)
	e3.PutULong(2)
	e3.PutOctets([]byte{'a', 'b'})
	d3 := NewDecoder(BigEndian, e3.Bytes())
	if _, err := d3.String(); !errors.Is(err, ErrBadString) {
		t.Fatalf("missing NUL: %v", err)
	}
}

func TestBadBoolean(t *testing.T) {
	d := NewDecoder(BigEndian, []byte{2})
	if _, err := d.Boolean(); !errors.Is(err, ErrBadBoolean) {
		t.Fatalf("bad boolean: %v", err)
	}
}

func TestHugeSequenceLengthRejected(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutULong(0xFFFFFFFF)
	d := NewDecoder(BigEndian, e.Bytes())
	if _, err := d.DoubleSeq(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("huge double seq: %v", err)
	}
	d2 := NewDecoder(BigEndian, e.Bytes())
	if _, err := d2.OctetSeq(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("huge octet seq: %v", err)
	}
	d3 := NewDecoder(BigEndian, e.Bytes())
	if _, err := d3.StringSeq(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("huge string seq: %v", err)
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutLong(1)
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("len after reset = %d", e.Len())
	}
	e.PutOctet(5)
	if !bytes.Equal(e.Bytes(), []byte{5}) {
		t.Fatalf("bytes after reset = %v", e.Bytes())
	}
}

// Property: any mix of primitive values round-trips in both byte orders.
func TestQuickPrimitiveRoundTrip(t *testing.T) {
	type rec struct {
		A int16
		B uint16
		C int32
		D uint32
		E int64
		F uint64
		G float32
		H float64
		I bool
		J byte
		S string
	}
	for _, o := range orders {
		o := o
		f := func(r rec) bool {
			e := NewEncoder(o)
			e.PutShort(r.A)
			e.PutUShort(r.B)
			e.PutLong(r.C)
			e.PutULong(r.D)
			e.PutLongLong(r.E)
			e.PutULongLong(r.F)
			e.PutFloat(r.G)
			e.PutDouble(r.H)
			e.PutBoolean(r.I)
			e.PutOctet(r.J)
			// CDR strings cannot carry interior NULs.
			s := r.S
			for i := 0; i < len(s); i++ {
				if s[i] == 0 {
					s = s[:i]
					break
				}
			}
			e.PutString(s)
			d := NewDecoder(o, e.Bytes())
			a, _ := d.Short()
			b, _ := d.UShort()
			c, _ := d.Long()
			dd, _ := d.ULong()
			ee, _ := d.LongLong()
			ff, _ := d.ULongLong()
			g, _ := d.Float()
			h, _ := d.Double()
			i, _ := d.Boolean()
			j, _ := d.Octet()
			ss, err := d.String()
			if err != nil {
				return false
			}
			eqF32 := g == r.G || (math.IsNaN(float64(g)) && math.IsNaN(float64(r.G)))
			eqF64 := h == r.H || (math.IsNaN(h) && math.IsNaN(r.H))
			return a == r.A && b == r.B && c == r.C && dd == r.D &&
				ee == r.E && ff == r.F && eqF32 && eqF64 &&
				i == r.I && j == r.J && ss == s && d.Remaining() == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%v: %v", o, err)
		}
	}
}

// Property: double sequences of arbitrary content and length round-trip.
func TestQuickDoubleSeqRoundTrip(t *testing.T) {
	for _, o := range orders {
		o := o
		f := func(v []float64) bool {
			e := NewEncoder(o)
			e.PutOctet(0) // misalign deliberately
			e.PutDoubleSeq(v)
			d := NewDecoder(o, e.Bytes())
			if _, err := d.Octet(); err != nil {
				return false
			}
			got, err := d.DoubleSeq()
			if err != nil || len(got) != len(v) {
				return false
			}
			for i := range v {
				same := got[i] == v[i] || (math.IsNaN(got[i]) && math.IsNaN(v[i]))
				if !same {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%v: %v", o, err)
		}
	}
}

// Property: cross-order encode/decode is NOT symmetric for multi-byte
// values (sanity check that byte order actually matters).
func TestByteOrderMatters(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutULong(0x01020304)
	d := NewDecoder(LittleEndian, e.Bytes())
	v, _ := d.ULong()
	if v != 0x04030201 {
		t.Fatalf("cross-order read = %#x, want 0x04030201", v)
	}
}
