// Native-endianness fast paths for the bulk sequence codecs. CDR is
// receiver-makes-right, so on the (overwhelmingly common) path where
// the stream's byte order matches the host's, a sequence of fixed-size
// primitives is bit-identical to the host representation and can move
// with a single memmove instead of an element-by-element shift/mask
// loop. The unsafe use is confined to reinterpreting a numeric slice
// as its backing bytes; no pointer outlives the call.
package cdr

import "unsafe"

// NativeOrder is the byte order of the host CPU, detected once at
// process start. Encoders default to it for the same-endianness
// memcpy fast path on both ends of a same-architecture pair.
var NativeOrder = func() ByteOrder {
	x := uint16(0x0102)
	if *(*byte)(unsafe.Pointer(&x)) == 0x02 {
		return LittleEndian
	}
	return BigEndian
}()

// f64Bytes reinterprets v's storage as bytes. v must be non-empty.
func f64Bytes(v []float64) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

// Float64Bytes reinterprets v's storage as its backing bytes, for
// callers that move native-order element data without an intermediate
// buffer (the window-put data plane reads payloads straight off the
// wire into the destination slice). The returned slice aliases v; it
// must not outlive it. Returns nil for an empty slice.
func Float64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return f64Bytes(v)
}

// u32Bytes reinterprets v's storage as bytes. v must be non-empty.
func u32Bytes(v []uint32) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
}

// i32AsU32 reinterprets a []int32 as []uint32 (same size, same bits).
// v must be non-empty.
func i32AsU32(v []int32) []uint32 {
	return unsafe.Slice((*uint32)(unsafe.Pointer(&v[0])), len(v))
}
