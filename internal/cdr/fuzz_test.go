package cdr

import (
	"math"
	"testing"
)

// The sequence decoders face wire input an arbitrary peer controls, so
// each bulk decoder is fuzzed differentially against its plain
// counterpart on the same bytes: same verdict, same values, same
// stream position — and no panic and no unbounded allocation on
// truncated or length-lying input (a header promising more elements
// than the stream holds must fail fast, not allocate first).

// fuzzOrder maps the fuzz engine's bool to a byte order.
func fuzzOrder(big bool) ByteOrder {
	if big {
		return BigEndian
	}
	return LittleEndian
}

func FuzzDoubleSeqInto(f *testing.F) {
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		e := NewEncoder(order)
		e.PutDoubleSeq([]float64{1.5, -2.25, math.NaN(), math.Inf(1)})
		f.Add(e.Bytes(), order == BigEndian)
	}
	f.Add([]byte{0, 0, 0, 5, 1, 2, 3}, true)             // length-lying
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0}, false)   // absurd length
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0}, true) // truncated element
	f.Fuzz(func(t *testing.T, data []byte, big bool) {
		order := fuzzOrder(big)
		d1 := NewDecoder(order, data)
		plain, err1 := d1.DoubleSeq()
		d2 := NewDecoder(order, data)
		into, err2 := d2.DoubleSeqInto(make([]float64, 0, 8))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("verdicts differ: plain %v, into %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if len(plain) != len(into) {
			t.Fatalf("lengths differ: plain %d, into %d", len(plain), len(into))
		}
		for i := range plain {
			if math.Float64bits(plain[i]) != math.Float64bits(into[i]) {
				t.Fatalf("element %d: plain %x, into %x",
					i, math.Float64bits(plain[i]), math.Float64bits(into[i]))
			}
		}
		if d1.Remaining() != d2.Remaining() {
			t.Fatalf("positions differ: plain %d remaining, into %d",
				d1.Remaining(), d2.Remaining())
		}
	})
}

func FuzzLongSeqInto(f *testing.F) {
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		e := NewEncoder(order)
		e.PutLongSeq([]int32{-1, 0, 1 << 30})
		f.Add(e.Bytes(), order == BigEndian)
	}
	f.Add([]byte{0, 0, 0, 9, 1}, true)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F}, false)
	f.Fuzz(func(t *testing.T, data []byte, big bool) {
		order := fuzzOrder(big)
		d1 := NewDecoder(order, data)
		plain, err1 := d1.LongSeq()
		d2 := NewDecoder(order, data)
		into, err2 := d2.LongSeqInto(make([]int32, 0, 8))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("verdicts differ: plain %v, into %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if len(plain) != len(into) {
			t.Fatalf("lengths differ: plain %d, into %d", len(plain), len(into))
		}
		for i := range plain {
			if plain[i] != into[i] {
				t.Fatalf("element %d: plain %d, into %d", i, plain[i], into[i])
			}
		}
		if d1.Remaining() != d2.Remaining() {
			t.Fatalf("positions differ: plain %d remaining, into %d",
				d1.Remaining(), d2.Remaining())
		}
	})
}

func FuzzULongSeqInto(f *testing.F) {
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		e := NewEncoder(order)
		e.PutULongSeq([]uint32{0, 7, 1 << 31})
		f.Add(e.Bytes(), order == BigEndian)
	}
	f.Add([]byte{0, 0, 1, 0, 9}, true)
	f.Fuzz(func(t *testing.T, data []byte, big bool) {
		order := fuzzOrder(big)
		d1 := NewDecoder(order, data)
		plain, err1 := d1.ULongSeq()
		d2 := NewDecoder(order, data)
		into, err2 := d2.ULongSeqInto(make([]uint32, 0, 8))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("verdicts differ: plain %v, into %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if len(plain) != len(into) {
			t.Fatalf("lengths differ: plain %d, into %d", len(plain), len(into))
		}
		for i := range plain {
			if plain[i] != into[i] {
				t.Fatalf("element %d: plain %d, into %d", i, plain[i], into[i])
			}
		}
		if d1.Remaining() != d2.Remaining() {
			t.Fatalf("positions differ: plain %d remaining, into %d",
				d1.Remaining(), d2.Remaining())
		}
	})
}

// FuzzStringSeq checks the variable-length case: decode must never
// panic, must fail cleanly on truncated or length-lying headers, and a
// successful decode must survive a re-encode/decode round trip
// byte-exactly (strings are raw octets, not validated text).
func FuzzStringSeq(f *testing.F) {
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		e := NewEncoder(order)
		e.PutStringSeq([]string{"", "a", "payload with \x00 bytes"})
		f.Add(e.Bytes(), order == BigEndian)
	}
	f.Add([]byte{0, 0, 0, 3, 0, 0, 0, 1, 'x'}, true)        // fewer strings than promised
	f.Add([]byte{0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF}, true) // string length lie
	f.Fuzz(func(t *testing.T, data []byte, big bool) {
		order := fuzzOrder(big)
		d := NewDecoder(order, data)
		seq, err := d.StringSeq()
		if err != nil {
			return
		}
		e := NewEncoder(order)
		e.PutStringSeq(seq)
		back, err := NewDecoder(order, e.Bytes()).StringSeq()
		if err != nil {
			t.Fatalf("re-decode of a decoded sequence failed: %v", err)
		}
		if len(back) != len(seq) {
			t.Fatalf("round trip length %d, want %d", len(back), len(seq))
		}
		for i := range seq {
			if back[i] != seq[i] {
				t.Fatalf("round trip element %d: %q, want %q", i, back[i], seq[i])
			}
		}
	})
}
