package cdr

import (
	"bytes"
	"math"
	"testing"
)

// TestVectorizedSeqWireCompat pins the vectorized sequence encoders to
// the scalar wire format: a bulk PutDoubleSeq/PutLongSeq/PutULongSeq/
// PutStringSeq must emit byte-for-byte what a count + element loop
// emits, in both byte orders (the fast native-copy path must not leak
// host endianness onto the wire).
func TestVectorizedSeqWireCompat(t *testing.T) {
	ds := make([]float64, 129) // odd length exercises the tail
	ls := make([]int32, 129)
	us := make([]uint32, 129)
	for i := range ds {
		ds[i] = math.Sqrt(float64(i)) * 1e10
		ls[i] = int32(i*2654435761) - 77
		us[i] = uint32(i * 2246822519)
	}
	ss := []string{"", "a", "pad-me", "longer string value here"}

	for _, o := range orders {
		fast := NewEncoder(o)
		fast.PutDoubleSeq(ds)
		fast.PutLongSeq(ls)
		fast.PutULongSeq(us)
		fast.PutStringSeq(ss)

		slow := NewEncoder(o)
		slow.PutULong(uint32(len(ds)))
		for _, v := range ds {
			slow.PutDouble(v)
		}
		slow.PutULong(uint32(len(ls)))
		for _, v := range ls {
			slow.PutLong(v)
		}
		slow.PutULong(uint32(len(us)))
		for _, v := range us {
			slow.PutULong(v)
		}
		slow.PutULong(uint32(len(ss)))
		for _, s := range ss {
			slow.PutString(s)
		}

		if !bytes.Equal(fast.Bytes(), slow.Bytes()) {
			t.Fatalf("%v: vectorized encoding diverges from scalar wire format", o)
		}
	}
}

// TestSeqIntoReuse: the Into decoders must fill a caller-supplied
// slice in place when its capacity suffices, rather than allocating.
func TestSeqIntoReuse(t *testing.T) {
	ds := []float64{1, 2, 3, 4, 5}
	ls := []int32{-9, 8, -7}
	for _, o := range orders {
		e := NewEncoder(o)
		e.PutDoubleSeq(ds)
		e.PutLongSeq(ls)
		d := NewDecoder(o, e.Bytes())

		dbuf := make([]float64, 0, 16)
		gotD, err := d.DoubleSeqInto(dbuf)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotD) != len(ds) || &gotD[0] != &dbuf[:1][0] {
			t.Fatalf("%v: DoubleSeqInto did not reuse the destination", o)
		}
		for i := range ds {
			if gotD[i] != ds[i] {
				t.Fatalf("double[%d] = %v want %v", i, gotD[i], ds[i])
			}
		}

		lbuf := make([]int32, 3)
		gotL, err := d.LongSeqInto(lbuf)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotL) != len(ls) || &gotL[0] != &lbuf[0] {
			t.Fatalf("%v: LongSeqInto did not reuse the destination", o)
		}
		for i := range ls {
			if gotL[i] != ls[i] {
				t.Fatalf("long[%d] = %v want %v", i, gotL[i], ls[i])
			}
		}
	}
}

// TestSeqIntoGrows: a too-small destination must not be written past
// its capacity — the decoder allocates instead.
func TestSeqIntoGrows(t *testing.T) {
	ds := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	e := NewEncoder(LittleEndian)
	e.PutDoubleSeq(ds)

	small := make([]float64, 0, 2)
	got, err := NewDecoder(LittleEndian, e.Bytes()).DoubleSeqInto(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("got %d doubles, want %d", len(got), len(ds))
	}
	for i := range ds {
		if got[i] != ds[i] {
			t.Fatalf("double[%d] = %v want %v", i, got[i], ds[i])
		}
	}
}

// TestULongSeqInto covers the unsigned variant's reuse and values.
func TestULongSeqInto(t *testing.T) {
	us := []uint32{0, 1, 1 << 31, 0xFFFFFFFF}
	for _, o := range orders {
		e := NewEncoder(o)
		e.PutULongSeq(us)
		buf := make([]uint32, 0, 8)
		got, err := NewDecoder(o, e.Bytes()).ULongSeqInto(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(us) || &got[0] != &buf[:1][0] {
			t.Fatalf("%v: ULongSeqInto did not reuse the destination", o)
		}
		for i := range us {
			if got[i] != us[i] {
				t.Fatalf("ulong[%d] = %v want %v", i, got[i], us[i])
			}
		}
	}
}

// TestSeqIntoEmpty: zero-length sequences return an empty (but non-nil
// when a destination was supplied) slice and leave the stream aligned.
func TestSeqIntoEmpty(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutDoubleSeq(nil)
	e.PutULong(42)
	d := NewDecoder(BigEndian, e.Bytes())
	got, err := d.DoubleSeqInto(make([]float64, 0, 4))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty seq: %v, %v", got, err)
	}
	tail, err := d.ULong()
	if err != nil || tail != 42 {
		t.Fatalf("stream misaligned after empty seq: %d, %v", tail, err)
	}
}

// TestResetTo: a recycled encoder must forget its previous order and
// base offset.
func TestResetTo(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutULong(7)
	e.ResetTo(LittleEndian, 0)
	e.PutULong(0x01020304)
	want := []byte{0x04, 0x03, 0x02, 0x01}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("after ResetTo: % x want % x", e.Bytes(), want)
	}
}
