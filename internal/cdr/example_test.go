package cdr_test

import (
	"fmt"

	"pardis/internal/cdr"
)

// Round-trip a request-like record through CDR in little-endian, the
// way a PARDIS stub marshals scalar arguments.
func ExampleEncoder() {
	e := cdr.NewEncoder(cdr.LittleEndian)
	e.PutLong(42)
	e.PutString("diffusion")
	e.PutDouble(0.25)

	d := cdr.NewDecoder(cdr.LittleEndian, e.Bytes())
	steps, _ := d.Long()
	op, _ := d.String()
	alpha, _ := d.Double()
	fmt.Println(steps, op, alpha)
	// Output:
	// 42 diffusion 0.25
}
