// Package dist implements the data-distribution model behind PARDIS
// distributed sequences: how the elements of a sequence of global
// length L are partitioned into contiguous blocks over the P computing
// threads of an SPMD object, and how blocks held under one distribution
// map onto blocks held under another (the transfer plan that drives
// multi-port argument transfer).
//
// Two layers are provided. A Spec is the distribution as written in
// IDL or chosen by a client/server before the length is known: uniform
// BLOCK, weighted Proportions, or explicit per-thread counts. A Layout
// is a Spec applied to a concrete (length, threads) pair: the exact
// block boundaries.
package dist

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the distribution families PARDIS defines.
type Kind int

const (
	// KindBlock is the uniform blockwise distribution (the PARDIS
	// BLOCK constant and the default for unspecified distributions).
	KindBlock Kind = iota
	// KindProportions distributes proportionally to integer weights,
	// the PARDIS Proportions(...) object.
	KindProportions
	// KindExplicit fixes an exact element count per thread.
	KindExplicit
)

func (k Kind) String() string {
	switch k {
	case KindBlock:
		return "BLOCK"
	case KindProportions:
		return "PROPORTIONS"
	case KindExplicit:
		return "EXPLICIT"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Errors returned by this package.
var (
	ErrBadSpec    = errors.New("dist: invalid distribution spec")
	ErrBadLayout  = errors.New("dist: invalid layout")
	ErrOutOfRange = errors.New("dist: index out of range")
)

// Spec is a distribution before it is applied to a concrete length and
// thread count. The zero value is the uniform BLOCK distribution.
type Spec struct {
	kind    Kind
	weights []int // Proportions weights or Explicit counts
}

// Block returns the uniform blockwise Spec.
func Block() Spec { return Spec{kind: KindBlock} }

// Proportions returns a Spec distributing elements in the ratio of the
// given positive weights; the number of weights fixes the thread count.
func Proportions(weights ...int) (Spec, error) {
	if len(weights) == 0 {
		return Spec{}, fmt.Errorf("%w: Proportions needs at least one weight", ErrBadSpec)
	}
	total := 0
	for i, w := range weights {
		if w <= 0 {
			return Spec{}, fmt.Errorf("%w: Proportions weight %d is %d (must be > 0)", ErrBadSpec, i, w)
		}
		total += w
	}
	if total <= 0 {
		return Spec{}, fmt.Errorf("%w: Proportions weights sum to %d", ErrBadSpec, total)
	}
	return Spec{kind: KindProportions, weights: append([]int(nil), weights...)}, nil
}

// Explicit returns a Spec assigning exactly counts[r] elements to
// thread r. Counts may be zero but not negative.
func Explicit(counts ...int) (Spec, error) {
	if len(counts) == 0 {
		return Spec{}, fmt.Errorf("%w: Explicit needs at least one count", ErrBadSpec)
	}
	for i, c := range counts {
		if c < 0 {
			return Spec{}, fmt.Errorf("%w: Explicit count %d is %d (must be >= 0)", ErrBadSpec, i, c)
		}
	}
	return Spec{kind: KindExplicit, weights: append([]int(nil), counts...)}, nil
}

// Kind reports the distribution family.
func (s Spec) Kind() Kind { return s.kind }

// Weights returns a copy of the Proportions weights or Explicit
// counts; nil for BLOCK.
func (s Spec) Weights() []int {
	if s.weights == nil {
		return nil
	}
	return append([]int(nil), s.weights...)
}

// Threads reports the thread count a Spec is pinned to, or 0 if the
// Spec applies to any thread count (BLOCK).
func (s Spec) Threads() int { return len(s.weights) }

func (s Spec) String() string {
	switch s.kind {
	case KindBlock:
		return "BLOCK"
	case KindProportions, KindExplicit:
		parts := make([]string, len(s.weights))
		for i, w := range s.weights {
			parts[i] = fmt.Sprint(w)
		}
		name := "Proportions"
		if s.kind == KindExplicit {
			name = "Explicit"
		}
		return name + "(" + strings.Join(parts, ",") + ")"
	default:
		return s.kind.String()
	}
}

// Equal reports whether two Specs denote the same distribution.
func (s Spec) Equal(t Spec) bool {
	if s.kind != t.kind || len(s.weights) != len(t.weights) {
		return false
	}
	for i := range s.weights {
		if s.weights[i] != t.weights[i] {
			return false
		}
	}
	return true
}

// Apply materializes the Spec for a sequence of length elements over p
// threads, returning the concrete Layout.
//
// BLOCK gives each of the first (length mod p) threads one extra
// element on top of length/p. Proportions allocates floor shares by
// weight and deals the remainder to the highest-remainder threads
// (ties to lower ranks), so the block sizes differ from the exact
// ratio by less than one element. Explicit requires p == len(counts)
// and sum(counts) == length.
func (s Spec) Apply(length, p int) (Layout, error) {
	if length < 0 {
		return Layout{}, fmt.Errorf("%w: negative length %d", ErrBadSpec, length)
	}
	if p <= 0 {
		return Layout{}, fmt.Errorf("%w: thread count %d (must be > 0)", ErrBadSpec, p)
	}
	if s.Threads() != 0 && s.Threads() != p {
		return Layout{}, fmt.Errorf("%w: %v is pinned to %d threads, got %d",
			ErrBadSpec, s, s.Threads(), p)
	}
	counts := make([]int, p)
	switch s.kind {
	case KindBlock:
		q, r := length/p, length%p
		for i := range counts {
			counts[i] = q
			if i < r {
				counts[i]++
			}
		}
	case KindProportions:
		total := 0
		for _, w := range s.weights {
			total += w
		}
		// Largest-remainder apportionment.
		type rem struct {
			idx  int
			frac int // remainder numerator, denominator is total
		}
		assigned := 0
		rems := make([]rem, p)
		for i, w := range s.weights {
			share := length * w
			counts[i] = share / total
			rems[i] = rem{idx: i, frac: share % total}
			assigned += counts[i]
		}
		sort.SliceStable(rems, func(a, b int) bool {
			if rems[a].frac != rems[b].frac {
				return rems[a].frac > rems[b].frac
			}
			return rems[a].idx < rems[b].idx
		})
		for i := 0; assigned < length; i++ {
			counts[rems[i%p].idx]++
			assigned++
		}
	case KindExplicit:
		sum := 0
		for i, c := range s.weights {
			counts[i] = c
			sum += c
		}
		if sum != length {
			return Layout{}, fmt.Errorf("%w: Explicit counts sum to %d, length is %d",
				ErrBadSpec, sum, length)
		}
	default:
		return Layout{}, fmt.Errorf("%w: unknown kind %v", ErrBadSpec, s.kind)
	}
	return FromCounts(counts)
}

// MustApply is Apply for statically correct arguments; it panics on
// error and is intended for tests and examples.
func (s Spec) MustApply(length, p int) Layout {
	l, err := s.Apply(length, p)
	if err != nil {
		panic(err)
	}
	return l
}

// Layout is a concrete partition of [0, Len()) into P() contiguous
// blocks, one per thread. It is immutable once constructed.
type Layout struct {
	// offs has P+1 entries; thread r owns [offs[r], offs[r+1]).
	offs []int
}

// FromCounts builds a Layout from per-thread element counts.
func FromCounts(counts []int) (Layout, error) {
	if len(counts) == 0 {
		return Layout{}, fmt.Errorf("%w: no threads", ErrBadLayout)
	}
	offs := make([]int, len(counts)+1)
	for i, c := range counts {
		if c < 0 {
			return Layout{}, fmt.Errorf("%w: negative count %d at thread %d", ErrBadLayout, c, i)
		}
		offs[i+1] = offs[i] + c
	}
	return Layout{offs: offs}, nil
}

// FromOffsets builds a Layout from the P+1 cumulative offsets
// directly; offsets must start at 0 and be non-decreasing.
func FromOffsets(offs []int) (Layout, error) {
	if len(offs) < 2 {
		return Layout{}, fmt.Errorf("%w: need at least 2 offsets", ErrBadLayout)
	}
	if offs[0] != 0 {
		return Layout{}, fmt.Errorf("%w: first offset %d != 0", ErrBadLayout, offs[0])
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return Layout{}, fmt.Errorf("%w: offsets decrease at %d", ErrBadLayout, i)
		}
	}
	return Layout{offs: append([]int(nil), offs...)}, nil
}

// P returns the number of threads.
func (l Layout) P() int { return len(l.offs) - 1 }

// Len returns the global sequence length.
func (l Layout) Len() int {
	if len(l.offs) == 0 {
		return 0
	}
	return l.offs[len(l.offs)-1]
}

// Lo returns the first global index owned by thread r.
func (l Layout) Lo(r int) int { return l.offs[r] }

// Hi returns one past the last global index owned by thread r.
func (l Layout) Hi(r int) int { return l.offs[r+1] }

// Count returns the number of elements owned by thread r.
func (l Layout) Count(r int) int { return l.offs[r+1] - l.offs[r] }

// Counts returns the per-thread element counts.
func (l Layout) Counts() []int {
	out := make([]int, l.P())
	for r := range out {
		out[r] = l.Count(r)
	}
	return out
}

// Offsets returns a copy of the P+1 cumulative offsets.
func (l Layout) Offsets() []int { return append([]int(nil), l.offs...) }

// Owner returns the thread owning global index i. For indices on a
// block boundary it returns the thread whose half-open block contains
// i. Threads with empty blocks never own anything.
func (l Layout) Owner(i int) (int, error) {
	if i < 0 || i >= l.Len() {
		return 0, fmt.Errorf("%w: index %d, length %d", ErrOutOfRange, i, l.Len())
	}
	// offs is sorted; find the last r with offs[r] <= i.
	r := sort.Search(len(l.offs), func(k int) bool { return l.offs[k] > i }) - 1
	// Skip backward over empty blocks that share the boundary: the
	// half-open interval containing i is the one with offs[r+1] > i.
	for l.offs[r+1] <= i {
		r++
	}
	return r, nil
}

// Equal reports whether two layouts have identical block boundaries.
func (l Layout) Equal(m Layout) bool {
	if len(l.offs) != len(m.offs) {
		return false
	}
	for i := range l.offs {
		if l.offs[i] != m.offs[i] {
			return false
		}
	}
	return true
}

func (l Layout) String() string {
	parts := make([]string, l.P())
	for r := 0; r < l.P(); r++ {
		parts[r] = fmt.Sprintf("[%d,%d)", l.Lo(r), l.Hi(r))
	}
	return "Layout{" + strings.Join(parts, " ") + "}"
}

// Validate checks internal consistency; FromCounts/FromOffsets outputs
// always validate, so this exists for layouts decoded off the wire.
func (l Layout) Validate() error {
	if len(l.offs) < 2 {
		return fmt.Errorf("%w: too few offsets", ErrBadLayout)
	}
	if l.offs[0] != 0 {
		return fmt.Errorf("%w: first offset not 0", ErrBadLayout)
	}
	for i := 1; i < len(l.offs); i++ {
		if l.offs[i] < l.offs[i-1] {
			return fmt.Errorf("%w: offsets decrease at %d", ErrBadLayout, i)
		}
	}
	return nil
}

// Relength returns the layout for the sequence after a run-time length
// change, following the PARDIS rule: shrinking discards data above the
// new length (blocks are truncated); growing assigns all new elements
// to the thread that owned the last element of the old sequence (the
// last thread with a non-empty block, or the last thread if the
// sequence was empty).
func (l Layout) Relength(newLen int) (Layout, error) {
	if newLen < 0 {
		return Layout{}, fmt.Errorf("%w: negative length %d", ErrBadLayout, newLen)
	}
	p := l.P()
	counts := make([]int, p)
	switch {
	case newLen == l.Len():
		copy(counts, l.Counts())
	case newLen < l.Len():
		for r := 0; r < p; r++ {
			lo, hi := l.Lo(r), l.Hi(r)
			if hi > newLen {
				hi = newLen
			}
			if lo > newLen {
				lo = newLen
			}
			counts[r] = hi - lo
		}
	default:
		copy(counts, l.Counts())
		owner := p - 1
		for r := p - 1; r >= 0; r-- {
			if l.Count(r) > 0 {
				owner = r
				break
			}
		}
		counts[owner] += newLen - l.Len()
	}
	return FromCounts(counts)
}

// Transfer is one contiguous block move in a redistribution plan:
// Count elements starting at the sender's local offset SrcOff (global
// index Global) land at the receiver's local offset DstOff.
type Transfer struct {
	From   int // sending thread (rank in the source layout)
	To     int // receiving thread (rank in the destination layout)
	Global int // global index of the first element moved
	SrcOff int // offset within the sender's local block
	DstOff int // offset within the receiver's local block
	Count  int // number of elements
}

func (t Transfer) String() string {
	return fmt.Sprintf("%d->%d global=%d src+%d dst+%d n=%d",
		t.From, t.To, t.Global, t.SrcOff, t.DstOff, t.Count)
}

// Plan computes the minimal set of contiguous transfers that move a
// sequence from layout src to layout dst. Both layouts must describe
// the same global length. Transfers are emitted in (From, Global)
// order and each global element appears in exactly one transfer.
//
// This is the computation the paper describes in §3.3: "The client ...
// first calculates to which threads of the server it should send
// data." The same plan drives the real multi-port engine and the
// discrete-event performance model.
func Plan(src, dst Layout) ([]Transfer, error) {
	if src.Len() != dst.Len() {
		return nil, fmt.Errorf("%w: source length %d != destination length %d",
			ErrBadLayout, src.Len(), dst.Len())
	}
	var plan []Transfer
	j := 0 // current destination block
	for i := 0; i < src.P(); i++ {
		sLo, sHi := src.Lo(i), src.Hi(i)
		if sLo == sHi {
			continue
		}
		// Advance j past destination blocks that end at or before sLo.
		for j < dst.P() && dst.Hi(j) <= sLo {
			j++
		}
		for k := j; k < dst.P() && dst.Lo(k) < sHi; k++ {
			lo := max(sLo, dst.Lo(k))
			hi := min(sHi, dst.Hi(k))
			if lo >= hi {
				continue
			}
			plan = append(plan, Transfer{
				From:   i,
				To:     k,
				Global: lo,
				SrcOff: lo - sLo,
				DstOff: lo - dst.Lo(k),
				Count:  hi - lo,
			})
		}
	}
	return plan, nil
}

// PlanFor filters a full plan down to the transfers a single sender
// participates in.
func PlanFor(plan []Transfer, sender int) []Transfer {
	var out []Transfer
	for _, t := range plan {
		if t.From == sender {
			out = append(out, t)
		}
	}
	return out
}

// PlanTo filters a full plan down to the transfers a single receiver
// participates in.
func PlanTo(plan []Transfer, receiver int) []Transfer {
	var out []Transfer
	for _, t := range plan {
		if t.To == receiver {
			out = append(out, t)
		}
	}
	return out
}

// Chunk splits every transfer in plan whose Count exceeds maxCount
// into consecutive sub-transfers of at most maxCount elements, with
// Global/SrcOff/DstOff advanced accordingly, so large blocks can be
// pipelined as independently routable chunks. A maxCount <= 0 disables
// chunking; if no transfer exceeds maxCount the original slice is
// returned unchanged (and unaliased growth is avoided).
func Chunk(plan []Transfer, maxCount int) []Transfer {
	if maxCount <= 0 {
		return plan
	}
	needed := false
	for _, t := range plan {
		if t.Count > maxCount {
			needed = true
			break
		}
	}
	if !needed {
		return plan
	}
	out := make([]Transfer, 0, len(plan)+4)
	for _, t := range plan {
		for off := 0; off < t.Count; off += maxCount {
			n := min(maxCount, t.Count-off)
			out = append(out, Transfer{
				From:   t.From,
				To:     t.To,
				Global: t.Global + off,
				SrcOff: t.SrcOff + off,
				DstOff: t.DstOff + off,
				Count:  n,
			})
		}
	}
	return out
}
