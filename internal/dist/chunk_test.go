package dist

import (
	"reflect"
	"testing"
)

func TestChunkPassthrough(t *testing.T) {
	plan := []Transfer{
		{From: 0, To: 1, Global: 0, SrcOff: 0, DstOff: 0, Count: 100},
		{From: 1, To: 0, Global: 100, SrcOff: 0, DstOff: 100, Count: 50},
	}
	// Disabled, and threshold not exceeded: same slice back, not a copy.
	for _, max := range []int{0, -1, 100, 1000} {
		got := Chunk(plan, max)
		if &got[0] != &plan[0] {
			t.Fatalf("maxCount=%d: plan was copied although no transfer needed splitting", max)
		}
	}
}

func TestChunkSplits(t *testing.T) {
	plan := []Transfer{
		{From: 0, To: 1, Global: 10, SrcOff: 2, DstOff: 5, Count: 7},
		{From: 0, To: 2, Global: 17, SrcOff: 9, DstOff: 0, Count: 3},
	}
	got := Chunk(plan, 3)
	want := []Transfer{
		{From: 0, To: 1, Global: 10, SrcOff: 2, DstOff: 5, Count: 3},
		{From: 0, To: 1, Global: 13, SrcOff: 5, DstOff: 8, Count: 3},
		{From: 0, To: 1, Global: 16, SrcOff: 8, DstOff: 11, Count: 1},
		{From: 0, To: 2, Global: 17, SrcOff: 9, DstOff: 0, Count: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Chunk = %v\nwant %v", got, want)
	}
}

func TestChunkPreservesTotals(t *testing.T) {
	src, err := FromCounts([]int{1000, 1000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := FromCounts([]int{1500, 1000, 500})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	chunked := Chunk(plan, 64)
	total := 0
	for _, tr := range chunked {
		if tr.Count <= 0 || tr.Count > 64 {
			t.Fatalf("chunk count %d out of (0, 64]", tr.Count)
		}
		total += tr.Count
	}
	planTotal := 0
	for _, tr := range plan {
		planTotal += tr.Count
	}
	if total != planTotal {
		t.Fatalf("chunked plan moves %d elements, original %d", total, planTotal)
	}
}
