package dist

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlockApply(t *testing.T) {
	cases := []struct {
		length, p int
		want      []int
	}{
		{10, 1, []int{10}},
		{10, 2, []int{5, 5}},
		{10, 3, []int{4, 3, 3}},
		{10, 4, []int{3, 3, 2, 2}},
		{3, 5, []int{1, 1, 1, 0, 0}},
		{0, 4, []int{0, 0, 0, 0}},
		{131072, 8, []int{16384, 16384, 16384, 16384, 16384, 16384, 16384, 16384}},
	}
	for _, c := range cases {
		l, err := Block().Apply(c.length, c.p)
		if err != nil {
			t.Fatalf("Block(%d,%d): %v", c.length, c.p, err)
		}
		got := l.Counts()
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("Block(%d,%d) = %v, want %v", c.length, c.p, got, c.want)
			}
		}
	}
}

func TestProportionsApply(t *testing.T) {
	// The paper's example: Proportions(2,4,2,4) over 12 elements
	// gives blocks in ratio 2:4:2:4 = 2,4,2,4.
	s, err := Proportions(2, 4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	l := s.MustApply(12, 4)
	want := []int{2, 4, 2, 4}
	for i, w := range want {
		if l.Count(i) != w {
			t.Fatalf("counts = %v, want %v", l.Counts(), want)
		}
	}
	// Non-divisible length still conserves elements and stays within
	// one element of the exact share.
	l2 := s.MustApply(13, 4)
	sum := 0
	for _, c := range l2.Counts() {
		sum += c
	}
	if sum != 13 {
		t.Fatalf("proportions lose elements: %v", l2.Counts())
	}
}

func TestProportionsErrors(t *testing.T) {
	if _, err := Proportions(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("empty weights: %v", err)
	}
	if _, err := Proportions(1, 0); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("zero weight: %v", err)
	}
	if _, err := Proportions(1, -2); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("negative weight: %v", err)
	}
	s, _ := Proportions(1, 2)
	if _, err := s.Apply(10, 3); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("pinned thread count: %v", err)
	}
}

func TestExplicit(t *testing.T) {
	s, err := Explicit(3, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	l := s.MustApply(10, 3)
	if l.Count(0) != 3 || l.Count(1) != 0 || l.Count(2) != 7 {
		t.Fatalf("explicit counts = %v", l.Counts())
	}
	if _, err := s.Apply(11, 3); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("length mismatch: %v", err)
	}
	if _, err := Explicit(-1); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("negative count: %v", err)
	}
}

func TestApplyErrors(t *testing.T) {
	if _, err := Block().Apply(-1, 2); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("negative length: %v", err)
	}
	if _, err := Block().Apply(10, 0); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("zero threads: %v", err)
	}
}

func TestSpecString(t *testing.T) {
	if Block().String() != "BLOCK" {
		t.Fatalf("block string = %q", Block().String())
	}
	s, _ := Proportions(2, 4)
	if s.String() != "Proportions(2,4)" {
		t.Fatalf("proportions string = %q", s.String())
	}
	e, _ := Explicit(1, 2)
	if e.String() != "Explicit(1,2)" {
		t.Fatalf("explicit string = %q", e.String())
	}
}

func TestSpecEqual(t *testing.T) {
	a, _ := Proportions(1, 2)
	b, _ := Proportions(1, 2)
	c, _ := Proportions(2, 1)
	if !a.Equal(b) || a.Equal(c) || a.Equal(Block()) {
		t.Fatal("Spec.Equal misbehaves")
	}
}

func TestOwner(t *testing.T) {
	l := Block().MustApply(10, 3) // 4,3,3
	wantOwners := []int{0, 0, 0, 0, 1, 1, 1, 2, 2, 2}
	for i, w := range wantOwners {
		got, err := l.Owner(i)
		if err != nil || got != w {
			t.Fatalf("Owner(%d) = %d,%v want %d", i, got, err, w)
		}
	}
	if _, err := l.Owner(-1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Owner(-1): %v", err)
	}
	if _, err := l.Owner(10); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Owner(10): %v", err)
	}
}

func TestOwnerWithEmptyBlocks(t *testing.T) {
	s, _ := Explicit(0, 5, 0, 5)
	l := s.MustApply(10, 4)
	for i := 0; i < 5; i++ {
		if o, _ := l.Owner(i); o != 1 {
			t.Fatalf("Owner(%d) = %d, want 1", i, o)
		}
	}
	for i := 5; i < 10; i++ {
		if o, _ := l.Owner(i); o != 3 {
			t.Fatalf("Owner(%d) = %d, want 3", i, o)
		}
	}
}

func TestFromOffsets(t *testing.T) {
	l, err := FromOffsets([]int{0, 4, 4, 10})
	if err != nil {
		t.Fatal(err)
	}
	if l.P() != 3 || l.Len() != 10 || l.Count(1) != 0 {
		t.Fatalf("layout = %v", l)
	}
	if _, err := FromOffsets([]int{1, 2}); !errors.Is(err, ErrBadLayout) {
		t.Fatalf("nonzero first: %v", err)
	}
	if _, err := FromOffsets([]int{0, 5, 3}); !errors.Is(err, ErrBadLayout) {
		t.Fatalf("decreasing: %v", err)
	}
	if _, err := FromOffsets([]int{0}); !errors.Is(err, ErrBadLayout) {
		t.Fatalf("too short: %v", err)
	}
}

func TestRelengthShrink(t *testing.T) {
	l := Block().MustApply(10, 3) // 4,3,3 → offsets 0,4,7,10
	s, err := l.Relength(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Counts(); got[0] != 4 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("shrink counts = %v", got)
	}
	z, err := l.Relength(0)
	if err != nil || z.Len() != 0 {
		t.Fatalf("shrink to zero: %v %v", z, err)
	}
}

func TestRelengthGrow(t *testing.T) {
	l := Block().MustApply(10, 3)
	g, err := l.Relength(20)
	if err != nil {
		t.Fatal(err)
	}
	// New elements go to the owner of the old last element (thread 2).
	if got := g.Counts(); got[0] != 4 || got[1] != 3 || got[2] != 13 {
		t.Fatalf("grow counts = %v", got)
	}
	// Growing an empty sequence assigns to the last thread.
	e := Block().MustApply(0, 3)
	g2, _ := e.Relength(6)
	if got := g2.Counts(); got[0] != 0 || got[1] != 0 || got[2] != 6 {
		t.Fatalf("grow-from-empty counts = %v", got)
	}
	if _, err := l.Relength(-1); !errors.Is(err, ErrBadLayout) {
		t.Fatalf("negative relength: %v", err)
	}
}

func TestRelengthGrowSkipsTrailingEmpty(t *testing.T) {
	s, _ := Explicit(5, 5, 0)
	l := s.MustApply(10, 3)
	g, _ := l.Relength(12)
	// Thread 1 owned the last element, so it receives the growth.
	if got := g.Counts(); got[0] != 5 || got[1] != 7 || got[2] != 0 {
		t.Fatalf("grow counts = %v", got)
	}
}

func TestPlanIdentity(t *testing.T) {
	l := Block().MustApply(100, 4)
	plan, err := Plan(l, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 4 {
		t.Fatalf("identity plan has %d transfers, want 4", len(plan))
	}
	for _, tr := range plan {
		if tr.From != tr.To || tr.SrcOff != 0 || tr.DstOff != 0 {
			t.Fatalf("identity transfer %v", tr)
		}
	}
}

func TestPlanPaperConfiguration(t *testing.T) {
	// The paper's fixed configuration: n=4 client threads, m=8 server
	// threads, 2^17 doubles, both sides uniform BLOCK. Each client
	// block of 32768 splits into exactly 2 server blocks of 16384:
	// the minimal number of sends (8 total), as §3.3 observes.
	src := Block().MustApply(1<<17, 4)
	dst := Block().MustApply(1<<17, 8)
	plan, err := Plan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 8 {
		t.Fatalf("plan size = %d, want 8", len(plan))
	}
	for _, tr := range plan {
		if tr.Count != 16384 {
			t.Fatalf("transfer %v: count != 16384", tr)
		}
		if tr.To/2 != tr.From {
			t.Fatalf("transfer %v: wrong pairing", tr)
		}
	}
}

func TestPlanUneven(t *testing.T) {
	// §3.3's n=3, m=5 uneven case.
	src := Block().MustApply(1<<17, 3)
	dst := Block().MustApply(1<<17, 5)
	plan, err := Plan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanCovers(t, plan, src, dst)
}

func TestPlanLengthMismatch(t *testing.T) {
	a := Block().MustApply(10, 2)
	b := Block().MustApply(11, 2)
	if _, err := Plan(a, b); !errors.Is(err, ErrBadLayout) {
		t.Fatalf("length mismatch: %v", err)
	}
}

func TestPlanForTo(t *testing.T) {
	src := Block().MustApply(100, 4)
	dst := Block().MustApply(100, 8)
	plan, _ := Plan(src, dst)
	mine := PlanFor(plan, 2)
	for _, tr := range mine {
		if tr.From != 2 {
			t.Fatalf("PlanFor returned %v", tr)
		}
	}
	theirs := PlanTo(plan, 5)
	for _, tr := range theirs {
		if tr.To != 5 {
			t.Fatalf("PlanTo returned %v", tr)
		}
	}
	if len(mine) == 0 || len(theirs) == 0 {
		t.Fatal("empty filtered plans")
	}
}

// checkPlanCovers verifies the conservation property: every global
// element is moved exactly once, with consistent local offsets.
func checkPlanCovers(t *testing.T, plan []Transfer, src, dst Layout) {
	t.Helper()
	seen := make([]int, src.Len())
	for _, tr := range plan {
		if tr.Count <= 0 {
			t.Fatalf("empty transfer %v", tr)
		}
		if tr.Global != src.Lo(tr.From)+tr.SrcOff {
			t.Fatalf("src offset inconsistent: %v", tr)
		}
		if tr.Global != dst.Lo(tr.To)+tr.DstOff {
			t.Fatalf("dst offset inconsistent: %v", tr)
		}
		for g := tr.Global; g < tr.Global+tr.Count; g++ {
			seen[g]++
			so, err := src.Owner(g)
			if err != nil || so != tr.From {
				t.Fatalf("element %d not owned by sender %d", g, tr.From)
			}
			do, err := dst.Owner(g)
			if err != nil || do != tr.To {
				t.Fatalf("element %d not owned by receiver %d", g, tr.To)
			}
		}
	}
	for g, c := range seen {
		if c != 1 {
			t.Fatalf("element %d moved %d times", g, c)
		}
	}
}

// Property: plans between random layouts conserve all elements.
func TestQuickPlanConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		length := r.Intn(5000)
		srcP := 1 + r.Intn(9)
		dstP := 1 + r.Intn(9)
		src := randomLayout(r, length, srcP)
		dst := randomLayout(r, length, dstP)
		plan, err := Plan(src, dst)
		if err != nil {
			return false
		}
		seen := make([]bool, length)
		for _, tr := range plan {
			for g := tr.Global; g < tr.Global+tr.Count; g++ {
				if seen[g] {
					return false
				}
				seen[g] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: plan transfer count is minimal — it equals the number of
// nonempty (src block ∩ dst block) intersections.
func TestQuickPlanMinimality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		length := 1 + r.Intn(3000)
		src := randomLayout(r, length, 1+r.Intn(8))
		dst := randomLayout(r, length, 1+r.Intn(8))
		plan, err := Plan(src, dst)
		if err != nil {
			return false
		}
		want := 0
		for i := 0; i < src.P(); i++ {
			for j := 0; j < dst.P(); j++ {
				lo := max(src.Lo(i), dst.Lo(j))
				hi := min(src.Hi(i), dst.Hi(j))
				if lo < hi {
					want++
				}
			}
		}
		return len(plan) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: BLOCK layouts partition the index space with sizes within
// one of each other and in non-increasing order.
func TestQuickBlockBalance(t *testing.T) {
	f := func(length uint16, p uint8) bool {
		pp := int(p%16) + 1
		l, err := Block().Apply(int(length), pp)
		if err != nil {
			return false
		}
		counts := l.Counts()
		minC, maxC := counts[0], counts[0]
		sum := 0
		for i, c := range counts {
			sum += c
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
			if i > 0 && counts[i] > counts[i-1] {
				return false
			}
		}
		return sum == int(length) && maxC-minC <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Relength then Relength back preserves total length, and
// shrinking never increases any block.
func TestQuickRelength(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		length := r.Intn(2000)
		p := 1 + r.Intn(8)
		l := randomLayout(r, length, p)
		newLen := r.Intn(2500)
		m, err := l.Relength(newLen)
		if err != nil || m.Len() != newLen || m.P() != p {
			return false
		}
		if newLen <= length {
			for i := 0; i < p; i++ {
				if m.Count(i) > l.Count(i) {
					return false
				}
			}
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomLayout(r *rand.Rand, length, p int) Layout {
	switch r.Intn(3) {
	case 0:
		return Block().MustApply(length, p)
	case 1:
		w := make([]int, p)
		for i := range w {
			w[i] = 1 + r.Intn(10)
		}
		s, err := Proportions(w...)
		if err != nil {
			panic(err)
		}
		return s.MustApply(length, p)
	default:
		// Random explicit cut points.
		counts := make([]int, p)
		rem := length
		for i := 0; i < p-1; i++ {
			c := 0
			if rem > 0 {
				c = r.Intn(rem + 1)
			}
			counts[i] = c
			rem -= c
		}
		counts[p-1] = rem
		s, err := Explicit(counts...)
		if err != nil {
			panic(err)
		}
		return s.MustApply(length, p)
	}
}
