package dist_test

import (
	"fmt"

	"pardis/internal/dist"
)

// The paper's experimental configuration: a sequence of 2^17 doubles
// distributed BLOCK over 4 client threads moving to 8 server threads.
func ExamplePlan() {
	src := dist.Block().MustApply(1<<17, 4)
	dst := dist.Block().MustApply(1<<17, 8)
	plan, _ := dist.Plan(src, dst)
	fmt.Println("transfers:", len(plan))
	fmt.Println("first:", plan[0].String())
	// Output:
	// transfers: 8
	// first: 0->0 global=0 src+0 dst+0 n=16384
}

// Server-side weighted distribution from §2.2 of the paper.
func ExampleProportions() {
	spec, _ := dist.Proportions(2, 4, 2, 4)
	layout := spec.MustApply(1200, 4)
	fmt.Println(spec, layout.Counts())
	// Output:
	// Proportions(2,4,2,4) [200 400 200 400]
}

func ExampleLayout_Relength() {
	layout := dist.Block().MustApply(10, 3)
	grown, _ := layout.Relength(16)
	fmt.Println(layout.Counts(), "->", grown.Counts())
	// Output:
	// [4 3 3] -> [4 3 9]
}
