package dist

import "testing"

func BenchmarkPlanBlockToBlock(b *testing.B) {
	src := Block().MustApply(1<<17, 4)
	dst := Block().MustApply(1<<17, 8)
	for i := 0; i < b.N; i++ {
		if _, err := Plan(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanManyThreads(b *testing.B) {
	src := Block().MustApply(1<<20, 64)
	dst := Block().MustApply(1<<20, 96)
	for i := 0; i < b.N; i++ {
		if _, err := Plan(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOwnerLookup(b *testing.B) {
	l := Block().MustApply(1<<20, 64)
	for i := 0; i < b.N; i++ {
		if _, err := l.Owner(i % (1 << 20)); err != nil {
			b.Fatal(err)
		}
	}
}
