// Package telemetry is the PARDIS observability substrate: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms with quantile snapshots), leveled
// structured logging that is off by default, and cross-process request
// tracing whose context rides the PIOP wire.
//
// The package sits below every other internal package (it imports only
// the standard library), so transport, giop, orb, spmd and naming can
// all record into the same process-wide Default registry, and a
// process can expose everything over HTTP with Handler.
//
// Metric names are stable and form the catalogue documented in
// DESIGN.md ("Observability"); all carry the "pardis_" prefix.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (in-flight requests, breaker
// state, queue depth).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc and Dec move the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets are the fixed histogram bucket upper bounds
// (seconds, inclusive) used for every latency histogram in the ORB:
// 25µs up to 10s, roughly 1-2.5-5 per decade. An observation larger
// than the last edge lands in the implicit +Inf bucket.
var DefaultLatencyBuckets = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic buckets. Quantiles
// are estimated by linear interpolation inside the bucket containing
// the target rank, clamped to the observed [min, max] — so a
// single-sample histogram reports that sample exactly at every
// quantile.
type Histogram struct {
	edges  []float64 // inclusive upper bounds, ascending
	counts []atomic.Uint64
	inf    atomic.Uint64 // overflow (+Inf) bucket

	mu    sync.Mutex // guards sum/min/max (floats)
	sum   float64
	min   float64
	max   float64
	count uint64

	exMu sync.Mutex // guards ex; taken only on the sampled-trace path
	ex   []Exemplar // lazily sized len(edges)+1; [len(edges)] is +Inf
}

// Exemplar ties one concrete observation to the trace that produced
// it, so a histogram bucket can point at an explorable trace in
// /debug/traces. A zero TraceID means "no exemplar recorded".
type Exemplar struct {
	Value   float64   `json:"value"`
	TraceID uint64    `json:"-"`
	Trace   string    `json:"trace_id"` // hex form of TraceID, filled at snapshot
	When    time.Time `json:"when"`
}

// exemplarsEnabled is the process-wide exemplar switch (default on).
// Capture is already gated on a sampled trace being present, so the
// switch exists for A/B overhead measurement, not normal operation.
var exemplarsEnabled atomic.Bool

func init() { exemplarsEnabled.Store(true) }

// SetExemplars toggles exemplar capture process-wide and returns the
// previous setting.
func SetExemplars(on bool) bool { return exemplarsEnabled.Swap(on) }

func newHistogram(edges []float64) *Histogram {
	if len(edges) == 0 {
		edges = DefaultLatencyBuckets
	}
	cp := make([]float64, len(edges))
	copy(cp, edges)
	sort.Float64s(cp)
	return &Histogram{edges: cp, counts: make([]atomic.Uint64, len(cp))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.edges, v) // first edge >= v: inclusive upper bound
	if i < len(h.edges) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records one sample and, when the observation comes
// from a sampled trace (traceID != 0) and exemplars are enabled,
// remembers it as the exemplar for the bucket it lands in. The
// exemplar path costs one mutex acquisition, but only sampled-trace
// observations pay it.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	h.Observe(v)
	if traceID == 0 || !exemplarsEnabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.edges, v)
	h.exMu.Lock()
	if h.ex == nil {
		h.ex = make([]Exemplar, len(h.edges)+1)
	}
	h.ex[i] = Exemplar{Value: v, TraceID: traceID, When: time.Now()}
	h.exMu.Unlock()
}

// ObserveDurationExemplar records a duration sample with an exemplar.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, traceID uint64) {
	h.ObserveExemplar(d.Seconds(), traceID)
}

// HistogramSnapshot is a consistent copy of a histogram's state.
type HistogramSnapshot struct {
	// Edges are the inclusive bucket upper bounds; Counts[i] samples
	// fell into (Edges[i-1], Edges[i]]. Inf counts samples beyond the
	// last edge.
	Edges  []float64
	Counts []uint64
	Inf    uint64
	Count  uint64
	Sum    float64
	Min    float64
	Max    float64
	// Exemplars holds the per-bucket trace exemplars that were
	// captured, sparse and ordered by bucket index.
	Exemplars []BucketExemplar `json:",omitempty"`
}

// BucketExemplar is an exemplar tagged with the bucket it belongs to;
// Bucket == len(Edges) denotes the +Inf bucket.
type BucketExemplar struct {
	Bucket int `json:"bucket"`
	Exemplar
}

// Snapshot captures the histogram. Buckets are read without a global
// lock, so a snapshot taken under concurrent Observe calls may be off
// by the in-flight samples — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Edges:  h.edges,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Inf = h.inf.Load()
	h.mu.Lock()
	s.Count, s.Sum, s.Min, s.Max = h.count, h.sum, h.min, h.max
	h.mu.Unlock()
	h.exMu.Lock()
	for i, ex := range h.ex {
		if ex.TraceID == 0 {
			continue
		}
		ex.Trace = fmt.Sprintf("%016x", ex.TraceID)
		s.Exemplars = append(s.Exemplars, BucketExemplar{Bucket: i, Exemplar: ex})
	}
	h.exMu.Unlock()
	return s
}

// Quantile estimates the q-quantile (q in [0, 1]) of the snapshot.
// It returns 0 for an empty histogram. The estimate interpolates
// linearly within the winning bucket and is clamped to the observed
// [Min, Max].
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	total += s.Inf
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = s.Edges[i-1]
			}
			hi := s.Edges[i]
			// Position of the target rank inside this bucket.
			frac := (rank - float64(cum)) / float64(c)
			return s.clamp(lo + (hi-lo)*frac)
		}
		cum += c
	}
	// Target rank lies in the +Inf bucket: the best point estimate is
	// the observed maximum.
	return s.clamp(s.Max)
}

func (s HistogramSnapshot) clamp(v float64) float64 {
	if s.Count == 0 {
		return v
	}
	if v < s.Min {
		return s.Min
	}
	if v > s.Max {
		return s.Max
	}
	return v
}

// Mean returns the arithmetic mean of the snapshot, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// metricKind discriminates the registry's value types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one named, labeled instrument in a registry.
type metric struct {
	name   string // bare metric name (no labels)
	labels []string
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. Lookups intern on the full
// name+labels key, so repeated Counter/Gauge/Histogram calls with the
// same arguments return the same instrument. The zero Registry is not
// usable; call NewRegistry (or use Default).
type Registry struct {
	mu sync.RWMutex
	m  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*metric)}
}

// Default is the process-wide registry every PARDIS layer records
// into.
var Default = NewRegistry()

// key builds the interning key "name{k="v",...}" from alternating
// key/value label pairs. Label order is normalized by sorting pairs.
func key(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	n := len(labels) / 2 * 2 // ignore a dangling key with no value
	pairs := make([]string, 0, n/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, labels[i]+`="`+labels[i+1]+`"`)
	}
	sort.Strings(pairs)
	return name + "{" + strings.Join(pairs, ",") + "}"
}

func (r *Registry) lookup(name string, labels []string, kind metricKind) *metric {
	k := key(name, labels)
	r.mu.RLock()
	m := r.m[k]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.m[k]; m != nil {
		return m
	}
	m = &metric{name: name, labels: append([]string(nil), labels...), kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = newHistogram(nil)
	}
	r.m[k] = m
	return m
}

// Counter returns (creating if needed) the counter with the given
// name and alternating key/value label pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup(name, labels, kindCounter).c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup(name, labels, kindGauge).g
}

// Histogram returns (creating if needed) the named latency histogram
// with the default bucket edges.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.lookup(name, labels, kindHistogram).h
}

// HistogramWithBuckets returns the named histogram, creating it with
// the given inclusive upper bucket edges. Edges are fixed at creation;
// a later call with different edges returns the existing histogram.
func (r *Registry) HistogramWithBuckets(name string, edges []float64, labels ...string) *Histogram {
	k := key(name, labels)
	r.mu.RLock()
	m := r.m[k]
	r.mu.RUnlock()
	if m != nil {
		return m.h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.m[k]; m != nil {
		return m.h
	}
	m = &metric{name: name, labels: append([]string(nil), labels...), kind: kindHistogram, h: newHistogram(edges)}
	r.m[k] = m
	return m.h
}

// sortedKeys returns the registry's interning keys in stable order.
func (r *Registry) sortedKeys() []string {
	keys := make([]string, 0, len(r.m))
	for k := range r.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EscapeLabelValue escapes a Prometheus text-format label value:
// backslash, double quote and newline.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// TextKey renders the exposition key "name{k="v",...}" with label
// values escaped and pairs sorted — the form WriteText emits. (The
// registry's interning key keeps values raw; escaping is a render-time
// concern.)
func TextKey(name string, labels ...string) string {
	return textKey(name, labels)
}

func textKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, labels[i]+`="`+EscapeLabelValue(labels[i+1])+`"`)
	}
	sort.Strings(pairs)
	return name + "{" + strings.Join(pairs, ",") + "}"
}

func kindName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// WriteText renders the registry in a Prometheus-style text format:
// a "# TYPE" line per metric name, counters and gauges as
// "name{labels} value", histograms as cumulative "_bucket{le=...}"
// series (with OpenMetrics-style exemplar suffixes on buckets that
// have one) plus _sum, _count and estimated quantile gauges. Label
// values are escaped per the text-format rules.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	typed := make(map[string]bool)
	for _, k := range r.sortedKeys() {
		m := r.m[k]
		if !typed[m.name] {
			typed[m.name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, kindName(m.kind)); err != nil {
				return err
			}
		}
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", textKey(m.name, m.labels), m.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", textKey(m.name, m.labels), m.g.Value()); err != nil {
				return err
			}
		case kindHistogram:
			if err := writeHistogramText(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogramText renders one histogram. Caller holds r.mu.
func writeHistogramText(w io.Writer, m *metric) error {
	return WriteHistogramSnapshotText(w, m.name, m.labels, m.h.Snapshot())
}

// WriteHistogramSnapshotText renders a histogram snapshot in the same
// exposition format WriteText uses — cumulative _bucket series with
// exemplar suffixes, _sum, _count and estimated quantile gauges —
// under the given name and labels. It lets a component re-expose
// histogram data it did not record itself (the agent's fleet plane
// re-exposing heartbeat digests).
func WriteHistogramSnapshotText(w io.Writer, name string, labels []string, s HistogramSnapshot) error {
	m := &metric{name: name, labels: labels}
	ex := make(map[int]Exemplar, len(s.Exemplars))
	for _, be := range s.Exemplars {
		ex[be.Bucket] = be.Exemplar
	}
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if c == 0 {
			continue // keep the exposition compact: only occupied edges
		}
		if _, err := fmt.Fprintf(w, "%s %d%s\n",
			textKey(m.name+"_bucket", append(labelsCopy(m.labels), "le", formatFloat(s.Edges[i]))),
			cum, exemplarSuffix(ex[i])); err != nil {
			return err
		}
	}
	cum += s.Inf
	if _, err := fmt.Fprintf(w, "%s %d%s\n",
		textKey(m.name+"_bucket", append(labelsCopy(m.labels), "le", "+Inf")),
		cum, exemplarSuffix(ex[len(s.Edges)])); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", textKey(m.name+"_sum", m.labels), formatFloat(s.Sum)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", textKey(m.name+"_count", m.labels), s.Count); err != nil {
		return err
	}
	for _, q := range [...]float64{0.5, 0.95, 0.99} {
		if _, err := fmt.Fprintf(w, "%s %s\n",
			textKey(m.name, append(labelsCopy(m.labels), "quantile", formatFloat(q))),
			formatFloat(s.Quantile(q))); err != nil {
			return err
		}
	}
	return nil
}

// exemplarSuffix renders the OpenMetrics exemplar tail for a bucket
// line ("" when the bucket has no exemplar): # {trace_id="…"} value ts.
func exemplarSuffix(ex Exemplar) string {
	if ex.TraceID == 0 {
		return ""
	}
	return fmt.Sprintf(` # {trace_id="%016x"} %s %d`, ex.TraceID, formatFloat(ex.Value), ex.When.Unix())
}

func labelsCopy(l []string) []string { return append([]string(nil), l...) }

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}

// Snapshot returns every metric's current value keyed by its full
// "name{labels}" string: counters and gauges as numbers, histograms as
// HistogramSnapshot. Used by /debug/vars and pardis-bench.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.m))
	for k, m := range r.m {
		switch m.kind {
		case kindCounter:
			out[k] = m.c.Value()
		case kindGauge:
			out[k] = m.g.Value()
		case kindHistogram:
			out[k] = m.h.Snapshot()
		}
	}
	return out
}

// CounterValue returns the summed value of every counter whose bare
// name matches (across all label sets), for tests and summaries.
func (r *Registry) CounterValue(name string) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total uint64
	for _, m := range r.m {
		if m.kind == kindCounter && m.name == name {
			total += m.c.Value()
		}
	}
	return total
}

// GaugeValue returns the summed value of every gauge whose bare name
// matches (across all label sets), for tests and status summaries.
func (r *Registry) GaugeValue(name string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for _, m := range r.m {
		if m.kind == kindGauge && m.name == name {
			total += m.g.Value()
		}
	}
	return total
}

// HistogramsByName returns the label sets and snapshots of every
// histogram with the given bare name.
func (r *Registry) HistogramsByName(name string) map[string]HistogramSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]HistogramSnapshot)
	for k, m := range r.m {
		if m.kind == kindHistogram && m.name == name {
			out[k] = m.h.Snapshot()
		}
	}
	return out
}

// Reset drops every metric — test isolation only.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.m = make(map[string]*metric)
	r.mu.Unlock()
}
