package telemetry

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
)

// The ORB's structured logger. Every internal layer logs through
// Logger() instead of fmt/log so that tests stay silent by default and
// operators get one leveled, structured stream. The default logger
// discards everything at zero cost (its handler reports every level
// disabled, so slog never materializes records).
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(discardHandler{}))
}

// Logger returns the current process-wide logger.
func Logger() *slog.Logger { return logger.Load() }

// SetLogger replaces the process-wide logger. Pass nil to restore the
// discarding default.
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(discardHandler{})
	}
	logger.Store(l)
}

// EnableLogging switches the process-wide logger to a text handler on
// w at the given level — the one-call setup used by the daemons.
func EnableLogging(w io.Writer, level slog.Level) {
	SetLogger(slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})))
}

// LogEnabled reports whether the current logger would emit at level —
// the guard hot paths use before assembling attributes.
func LogEnabled(level slog.Level) bool {
	return Logger().Handler().Enabled(context.Background(), level)
}

// discardHandler drops everything and reports every level disabled.
// (log/slog gained DiscardHandler in go 1.24; this keeps the module
// buildable at its declared go 1.22.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
