package telemetry

import (
	"context"
	"log/slog"
	"strings"
	"testing"
)

// withSampling runs f with the given root sampling rate, restoring the
// previous rate and resetting the default recorder afterwards.
func withSampling(t *testing.T, rate float64, f func()) {
	t.Helper()
	prev := TraceSampling()
	SetTraceSampling(rate)
	DefaultRecorder.Reset()
	defer func() {
		SetTraceSampling(prev)
		DefaultRecorder.Reset()
	}()
	f()
}

func TestStartSpanUnsampledIsFree(t *testing.T) {
	withSampling(t, 0, func() {
		ctx, span := StartSpan(context.Background(), "client:solve")
		if span != nil {
			t.Fatal("sampling 0 produced a span")
		}
		if TraceFromContext(ctx).Valid() {
			t.Fatal("sampling 0 installed a trace context")
		}
		span.End()              // nil-safe
		span.Annotate("k", "v") // nil-safe
		_ = span.Context()      // nil-safe
		if len(DefaultRecorder.TraceIDs()) != 0 {
			t.Fatal("recorder not empty")
		}
	})
}

func TestStartSpanPropagatesTrace(t *testing.T) {
	withSampling(t, 1, func() {
		ctx, root := StartSpan(context.Background(), "client:solve",
			Attr{"endpoint", "inproc:x"})
		if root == nil {
			t.Fatal("sampling 1 produced no span")
		}
		tc := TraceFromContext(ctx)
		if !tc.Valid() || !tc.Sampled {
			t.Fatalf("context trace = %+v", tc)
		}
		if tc.TraceID != root.TraceID || tc.SpanID != root.SpanID {
			t.Fatal("context does not name the root span")
		}
		_, child := StartSpan(ctx, "server:solve")
		if child.TraceID != root.TraceID {
			t.Fatal("child changed trace id")
		}
		if child.ParentID != root.SpanID {
			t.Fatal("child's parent is not the root span")
		}
		child.End()
		root.End()
		root.End() // double End ignored

		spans := DefaultRecorder.Trace(root.TraceID)
		if len(spans) != 2 {
			t.Fatalf("recorded %d spans, want 2", len(spans))
		}
		for _, s := range spans {
			if s.TraceIDHex == "" || s.SpanIDHex == "" {
				t.Fatalf("span %q missing hex ids", s.Name)
			}
		}
	})
}

func TestRemoteTraceContextContinuation(t *testing.T) {
	// A server receiving a wire TraceContext must attach its span to
	// the remote trace, not start a new one.
	withSampling(t, 0, func() {
		remote := TraceContext{TraceID: 0xabc, SpanID: 0xdef, Sampled: true}
		ctx := ContextWithTrace(context.Background(), remote)
		_, span := StartSpan(ctx, "server:handle")
		if span == nil {
			t.Fatal("sampled remote context produced no span")
		}
		if span.TraceID != 0xabc || span.ParentID != 0xdef {
			t.Fatalf("span ids = %x/%x, want abc/def", span.TraceID, span.ParentID)
		}
		span.End()
		if got := len(DefaultRecorder.Trace(0xabc)); got != 1 {
			t.Fatalf("recorded %d spans, want 1", got)
		}
	})
}

func TestUnsampledRemoteContextRecordsNothing(t *testing.T) {
	withSampling(t, 0, func() {
		ctx := ContextWithTrace(context.Background(),
			TraceContext{TraceID: 7, SpanID: 8, Sampled: false})
		_, span := StartSpan(ctx, "server:handle")
		if span != nil {
			t.Fatal("unsampled remote context produced a span")
		}
	})
}

func TestFormatTree(t *testing.T) {
	withSampling(t, 1, func() {
		ctx, root := StartSpan(context.Background(), "client:solve")
		ctx2, mid := StartSpan(ctx, "server:solve")
		_, leaf := StartSpan(ctx2, "client:resolve")
		leaf.End()
		mid.End()
		root.End()
		out := FormatTree(DefaultRecorder.Trace(root.TraceID))
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		if len(lines) != 3 {
			t.Fatalf("tree has %d lines:\n%s", len(lines), out)
		}
		if !strings.HasPrefix(lines[0], "client:solve") {
			t.Fatalf("root line %q", lines[0])
		}
		if !strings.HasPrefix(lines[1], "  server:solve") {
			t.Fatalf("mid line %q", lines[1])
		}
		if !strings.HasPrefix(lines[2], "    client:resolve") {
			t.Fatalf("leaf line %q", lines[2])
		}
	})
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 6; i++ {
		r.record(SpanRecord{Name: "s", TraceID: uint64(i), SpanID: uint64(i)})
	}
	ids := r.TraceIDs()
	if len(ids) != 4 {
		t.Fatalf("buffered %d traces, want 4", len(ids))
	}
	if ids[0] != 3 || ids[3] != 6 {
		t.Fatalf("ring kept %v, want oldest 3 .. newest 6", ids)
	}
}

func TestLoggerDefaultsSilent(t *testing.T) {
	if LogEnabled(slog.LevelError) {
		t.Fatal("default logger should be disabled at every level")
	}
	var b strings.Builder
	EnableLogging(&b, slog.LevelInfo)
	defer SetLogger(nil)
	if !LogEnabled(slog.LevelInfo) {
		t.Fatal("enabled logger reports disabled")
	}
	if LogEnabled(slog.LevelDebug) {
		t.Fatal("debug enabled at info level")
	}
	Logger().Info("hello", "k", "v")
	if !strings.Contains(b.String(), "hello") {
		t.Fatalf("log output %q", b.String())
	}
}

func TestNewIDNonZeroAndDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := newID()
		if id == 0 {
			t.Fatal("zero id")
		}
		if seen[id] {
			t.Fatal("duplicate id")
		}
		seen[id] = true
	}
}
