package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pardis_test_total", "op", "solve")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Interning: same name+labels → same instrument, label order
	// normalized.
	if r.Counter("pardis_test_total", "op", "solve") != c {
		t.Fatal("counter not interned")
	}
	g := r.Gauge("pardis_test_inflight")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge = %d, want -7", got)
	}
}

func TestCounterValueSumsLabelSets(t *testing.T) {
	r := NewRegistry()
	r.Counter("pardis_x_total", "ep", "a").Add(2)
	r.Counter("pardis_x_total", "ep", "b").Add(3)
	r.Counter("pardis_other_total").Add(100)
	if got := r.CounterValue("pardis_x_total"); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pardis_empty_seconds")
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("empty snapshot count=%d sum=%v", s.Count, s.Sum)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if got := s.Mean(); got != 0 {
		t.Fatalf("empty Mean = %v, want 0", got)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pardis_single_seconds")
	h.Observe(0.003)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	// Clamping to [min, max] makes every quantile of a single-sample
	// histogram exactly that sample.
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != 0.003 {
			t.Fatalf("Quantile(%v) = %v, want 0.003", q, got)
		}
	}
	if got := s.Mean(); got != 0.003 {
		t.Fatalf("Mean = %v, want 0.003", got)
	}
}

func TestHistogramExactBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWithBuckets("pardis_edges", []float64{1, 2, 4})
	// Upper bounds are inclusive: a sample exactly on an edge falls in
	// that edge's bucket, as in the Prometheus "le" convention.
	for _, v := range []float64{1, 2, 4} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{1, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, s.Edges[i], c, want[i])
		}
	}
	if s.Inf != 0 {
		t.Fatalf("overflow = %d, want 0", s.Inf)
	}
	// One past the last edge lands in +Inf.
	h.Observe(4.0001)
	if s = h.Snapshot(); s.Inf != 1 {
		t.Fatalf("overflow = %d, want 1", s.Inf)
	}
	// Quantiles stay clamped to the observed max even for ranks that
	// land in the +Inf bucket.
	if got := s.Quantile(1); got != 4.0001 {
		t.Fatalf("Quantile(1) = %v, want observed max 4.0001", got)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWithBuckets("pardis_interp", []float64{10, 20, 30})
	// 10 samples in (10, 20]: the median rank (5 of 10) sits halfway
	// into the bucket → 10 + (20-10)*0.5 = 15.
	for i := 0; i < 10; i++ {
		h.Observe(11 + float64(i))
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); math.Abs(got-15) > 1e-9 {
		t.Fatalf("Quantile(0.5) = %v, want 15", got)
	}
	// p99 rank 9.9 → 10 + 10*0.99 = 19.9.
	if got := s.Quantile(0.99); math.Abs(got-19.9) > 1e-9 {
		t.Fatalf("Quantile(0.99) = %v, want 19.9", got)
	}
	// Out-of-range q is clamped.
	if got := s.Quantile(2); got != s.Quantile(1) {
		t.Fatalf("Quantile(2) = %v, want %v", got, s.Quantile(1))
	}
}

func TestHistogramQuantileAcrossBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWithBuckets("pardis_multi", []float64{1, 2, 3, 4})
	// 1 sample ≤1, 97 in (1,2], 1 in (2,3], 1 in (3,4].
	h.Observe(0.5)
	for i := 0; i < 97; i++ {
		h.Observe(1.5)
	}
	h.Observe(2.5)
	h.Observe(3.5)
	s := h.Snapshot()
	if got := s.Quantile(0.5); got < 1 || got > 2 {
		t.Fatalf("p50 = %v, want within (1, 2]", got)
	}
	// Rank 99 of 100 is the 98th cumulative → falls in (2,3].
	if got := s.Quantile(0.99); got < 2 || got > 3 {
		t.Fatalf("p99 = %v, want within (2, 3]", got)
	}
	if got := s.Quantile(1); got != 3.5 {
		t.Fatalf("p100 = %v, want max 3.5", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pardis_conc_seconds")
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveDuration(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pardis_reqs_total", "op", "solve").Add(3)
	r.Gauge("pardis_inflight").Set(2)
	r.HistogramWithBuckets("pardis_lat_seconds", []float64{0.001, 0.01}).Observe(0.0005)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`pardis_reqs_total{op="solve"} 3`,
		"pardis_inflight 2",
		`pardis_lat_seconds_bucket{le="0.001"} 1`,
		`pardis_lat_seconds_bucket{le="+Inf"} 1`,
		"pardis_lat_seconds_count 1",
		`pardis_lat_seconds{quantile="0.5"} 0.0005`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(1)
	snap := r.Snapshot()
	if got, ok := snap["c"].(uint64); !ok || got != 1 {
		t.Fatalf("snapshot c = %#v", snap["c"])
	}
	if got, ok := snap["g"].(int64); !ok || got != 5 {
		t.Fatalf("snapshot g = %#v", snap["g"])
	}
	if hs, ok := snap["h"].(HistogramSnapshot); !ok || hs.Count != 1 {
		t.Fatalf("snapshot h = %#v", snap["h"])
	}
}
