package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler serves the process's operational surface:
//
//	/metrics       — the registry in Prometheus-style text format
//	/healthz       — 200 "ok" (503 with the error text when the
//	                 health callback reports one); with a status
//	                 callback the body is a JSON document carrying
//	                 the callback's live stats (admission queue
//	                 depth, SPMD leases, breaker states, ...) so one
//	                 endpoint serves both the load balancer's yes/no
//	                 and a human's why
//	/debug/vars    — the registry as JSON (expvar-style)
//	/debug/traces  — buffered trace ids; ?id=<hex> dumps one trace
//	                 (&format=tree for the indented text form, which
//	                 also lists the trace's flight-recorder entries)
//	/debug/slow    — the flight recorder: K slowest + recent errored
//	                 invocations per op (JSON; ?format=text for a
//	                 human-readable table); trace ids cross-link to
//	                 /debug/traces?id=
//	/debug/pprof/* — the standard runtime profiles
//
// reg, rec, healthy and status may be nil: they default to the
// process-wide registry, the default span recorder, "always healthy"
// and a bare ok/error body.
func Handler(reg *Registry, rec *Recorder, healthy func() error, status func() map[string]any) http.Handler {
	if reg == nil {
		reg = Default
	}
	if rec == nil {
		rec = DefaultRecorder
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		var herr error
		if healthy != nil {
			herr = healthy()
		}
		if status == nil {
			if herr != nil {
				http.Error(w, herr.Error(), http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
			return
		}
		body := map[string]any{"status": "ok"}
		if herr != nil {
			body["status"] = "unavailable"
			body["error"] = herr.Error()
		}
		for k, v := range status() {
			body[k] = v
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if herr != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if id := r.URL.Query().Get("id"); id != "" {
			tid, err := strconv.ParseUint(id, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
				return
			}
			spans := rec.Trace(tid)
			if r.URL.Query().Get("format") == "tree" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				fmt.Fprint(w, FormatTree(spans))
				if recs := DefaultFlight.ByTrace(tid); len(recs) > 0 {
					fmt.Fprintf(w, "\nflight records (see /debug/slow):\n")
					for _, fr := range recs {
						writeFlightRecordText(w, fr)
					}
				}
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(spans)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, tid := range rec.TraceIDs() {
			fmt.Fprintf(w, "%016x\n", tid)
		}
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		snap := DefaultFlight.Snapshot()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteFlightText(w, snap)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
