package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecord is one completed invocation as kept by the flight
// recorder: enough context to explain why it was slow (or failed)
// without re-running it — which attempt path it took, how long it sat
// in the admission queue, and how much deadline budget was left when
// the handler finally dispatched.
type FlightRecord struct {
	Side     string        `json:"side"` // "client" or "server"
	Op       string        `json:"op"`
	Key      string        `json:"key,omitempty"`      // object key
	Endpoint string        `json:"endpoint,omitempty"` // last endpoint tried (client)
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Error    string        `json:"error,omitempty"`
	TraceID  uint64        `json:"-"`
	Trace    string        `json:"trace_id,omitempty"` // hex; resolve at /debug/traces?id=
	// Client-side attempt accounting.
	Attempts   int `json:"attempts,omitempty"`
	Retries    int `json:"retries,omitempty"`
	Failovers  int `json:"failovers,omitempty"`
	ReResolves int `json:"reresolves,omitempty"`
	// Server-side dispatch accounting.
	QueueWait time.Duration `json:"queue_wait,omitempty"` // time inside the admission gate
	// DeadlineRemaining is the budget left when the request dispatched
	// (client: at send; server: at handler start). Zero means the
	// invocation carried no deadline.
	DeadlineRemaining time.Duration `json:"deadline_remaining,omitempty"`
}

// flightShard keeps the records for one (side, op) pair: the K slowest
// invocations plus a ring of the most recent errored ones. The floor
// atomic caches the slowest-set admission threshold so the common case
// (a fast, successful invocation) costs two atomic loads and no lock.
type flightShard struct {
	floor atomic.Int64 // min duration (ns) to enter the slow set once full

	mu      sync.Mutex
	slow    []FlightRecord // sorted by Duration descending, len <= k
	errs    []FlightRecord // ring, errNext points at the oldest slot
	errNext int
}

// FlightRecorder is a bounded in-memory recorder of the K slowest and
// all (up to errCap most recent) errored invocations per (side, op).
// It is safe for concurrent use and cheap when the observed invocation
// is neither slow nor errored.
type FlightRecorder struct {
	enabled atomic.Bool
	k       int
	errCap  int
	// Two-level map — side -> *sync.Map of op -> *flightShard — so the
	// per-record lookup is two lock-free reads with no key-string
	// concatenation (Record sits on every invocation's exit path).
	shards sync.Map
}

const (
	// DefaultFlightSlowK is how many slowest records each (side, op)
	// shard retains.
	DefaultFlightSlowK = 8
	// DefaultFlightErrCap bounds the per-shard errored-invocation ring.
	DefaultFlightErrCap = 32
)

// NewFlightRecorder returns an enabled recorder keeping the k slowest
// and errCap most recent errored records per (side, op).
func NewFlightRecorder(k, errCap int) *FlightRecorder {
	if k <= 0 {
		k = DefaultFlightSlowK
	}
	if errCap <= 0 {
		errCap = DefaultFlightErrCap
	}
	f := &FlightRecorder{k: k, errCap: errCap}
	f.enabled.Store(true)
	return f
}

// DefaultFlight is the process-wide flight recorder orb.Client and
// orb.Server record into; Handler serves it at /debug/slow.
var DefaultFlight = NewFlightRecorder(DefaultFlightSlowK, DefaultFlightErrCap)

// SetEnabled toggles recording and returns the previous setting.
// Disabling does not drop already-captured records.
func (f *FlightRecorder) SetEnabled(on bool) bool { return f.enabled.Swap(on) }

// Configure resets the recorder with new per-shard bounds, dropping
// all captured records. Call before traffic starts.
func (f *FlightRecorder) Configure(k, errCap int) {
	if k > 0 {
		f.k = k
	}
	if errCap > 0 {
		f.errCap = errCap
	}
	f.Reset()
}

// Reset drops every captured record.
func (f *FlightRecorder) Reset() {
	f.shards.Range(func(k, _ any) bool {
		f.shards.Delete(k)
		return true
	})
}

func (f *FlightRecorder) shard(side, op string) *flightShard {
	var ops *sync.Map
	if v, ok := f.shards.Load(side); ok {
		ops = v.(*sync.Map)
	} else {
		v, _ := f.shards.LoadOrStore(side, &sync.Map{})
		ops = v.(*sync.Map)
	}
	if s, ok := ops.Load(op); ok {
		return s.(*flightShard)
	}
	s, _ := ops.LoadOrStore(op, &flightShard{})
	return s.(*flightShard)
}

// Record offers one completed invocation to the recorder. Fast path:
// when the record is error-free and faster than the shard's current
// K-slowest floor, it is dropped without locking.
func (f *FlightRecorder) Record(r FlightRecord) {
	if !f.enabled.Load() {
		return
	}
	sh := f.shard(r.Side, r.Op)
	isErr := r.Error != ""
	if !isErr && int64(r.Duration) <= sh.floor.Load() {
		return
	}
	sh.mu.Lock()
	if isErr {
		if len(sh.errs) < f.errCap {
			sh.errs = append(sh.errs, r)
		} else {
			sh.errs[sh.errNext] = r
			sh.errNext = (sh.errNext + 1) % f.errCap
		}
		Default.Counter("pardis_flight_records_total", "kind", "error").Inc()
	}
	if int64(r.Duration) > sh.floor.Load() || len(sh.slow) < f.k {
		i := sort.Search(len(sh.slow), func(i int) bool {
			return sh.slow[i].Duration < r.Duration
		})
		sh.slow = append(sh.slow, FlightRecord{})
		copy(sh.slow[i+1:], sh.slow[i:])
		sh.slow[i] = r
		if len(sh.slow) > f.k {
			sh.slow = sh.slow[:f.k]
		}
		if len(sh.slow) == f.k {
			sh.floor.Store(int64(sh.slow[len(sh.slow)-1].Duration))
		}
		if !isErr {
			Default.Counter("pardis_flight_records_total", "kind", "slow").Inc()
		}
	}
	sh.mu.Unlock()
}

// FlightOp is the snapshot of one (side, op) shard.
type FlightOp struct {
	Side    string         `json:"side"`
	Op      string         `json:"op"`
	Slowest []FlightRecord `json:"slowest"`          // duration descending
	Errors  []FlightRecord `json:"errors,omitempty"` // newest first
}

// Snapshot returns every shard's records, sorted by (side, op), with
// hex trace ids filled in.
func (f *FlightRecorder) Snapshot() []FlightOp {
	var out []FlightOp
	f.shards.Range(func(sideKey, opsV any) bool {
		opsV.(*sync.Map).Range(func(opKey, v any) bool {
			sh := v.(*flightShard)
			sh.mu.Lock()
			op := FlightOp{
				Side:    sideKey.(string),
				Op:      opKey.(string),
				Slowest: append([]FlightRecord(nil), sh.slow...),
			}
			// Unroll the ring newest-first: the slot before errNext is
			// the most recently written.
			for i := 0; i < len(sh.errs); i++ {
				j := (sh.errNext - 1 - i + 2*len(sh.errs)) % len(sh.errs)
				if len(sh.errs) < f.errCap {
					j = len(sh.errs) - 1 - i
				}
				op.Errors = append(op.Errors, sh.errs[j])
			}
			sh.mu.Unlock()
			for i := range op.Slowest {
				if op.Slowest[i].TraceID != 0 {
					op.Slowest[i].Trace = fmt.Sprintf("%016x", op.Slowest[i].TraceID)
				}
			}
			for i := range op.Errors {
				if op.Errors[i].TraceID != 0 {
					op.Errors[i].Trace = fmt.Sprintf("%016x", op.Errors[i].TraceID)
				}
			}
			out = append(out, op)
			return true
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Side != out[j].Side {
			return out[i].Side < out[j].Side
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// writeFlightRecordText renders one record as a single indented line,
// shared by /debug/slow?format=text, the /debug/traces cross-link and
// pardis-bench summaries.
func writeFlightRecordText(w io.Writer, fr FlightRecord) {
	fmt.Fprintf(w, "  %10s %s/%s", fr.Duration.Round(time.Microsecond), fr.Side, fr.Op)
	if fr.Key != "" {
		fmt.Fprintf(w, " key=%s", fr.Key)
	}
	if fr.Endpoint != "" {
		fmt.Fprintf(w, " ep=%s", fr.Endpoint)
	}
	if fr.Attempts > 0 {
		fmt.Fprintf(w, " attempts=%d retries=%d failovers=%d", fr.Attempts, fr.Retries, fr.Failovers)
	}
	if fr.ReResolves > 0 {
		fmt.Fprintf(w, " reresolves=%d", fr.ReResolves)
	}
	if fr.QueueWait > 0 {
		fmt.Fprintf(w, " queue_wait=%s", fr.QueueWait.Round(time.Microsecond))
	}
	if fr.DeadlineRemaining > 0 {
		fmt.Fprintf(w, " deadline_rem=%s", fr.DeadlineRemaining.Round(time.Microsecond))
	}
	if fr.TraceID != 0 {
		fmt.Fprintf(w, " trace=%016x", fr.TraceID)
	}
	if fr.Error != "" {
		fmt.Fprintf(w, " error=%q", fr.Error)
	}
	fmt.Fprintln(w)
}

// WriteFlightText renders a recorder snapshot as the same text table
// /debug/slow?format=text serves, for CLI summaries.
func WriteFlightText(w io.Writer, snap []FlightOp) {
	for _, op := range snap {
		fmt.Fprintf(w, "%s %s — %d slowest, %d errored\n", op.Side, op.Op, len(op.Slowest), len(op.Errors))
		for _, fr := range op.Slowest {
			writeFlightRecordText(w, fr)
		}
		for _, fr := range op.Errors {
			writeFlightRecordText(w, fr)
		}
	}
}

// ByTrace returns every captured record belonging to the given trace,
// for cross-linking /debug/traces to the flight recorder.
func (f *FlightRecorder) ByTrace(traceID uint64) []FlightRecord {
	if traceID == 0 {
		return nil
	}
	var out []FlightRecord
	for _, op := range f.Snapshot() {
		for _, r := range op.Slowest {
			if r.TraceID == traceID {
				out = append(out, r)
			}
		}
		for _, r := range op.Errors {
			if r.TraceID == traceID {
				out = append(out, r)
			}
		}
	}
	return out
}
