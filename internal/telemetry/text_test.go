package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"
)

// parseTextLine splits one exposition line into the bare metric name,
// its decoded label map, and the raw value field, reversing the
// escaping WriteText applies. Exemplar suffixes (" # {...}") are
// stripped and returned separately.
func parseTextLine(t *testing.T, line string) (name string, labels map[string]string, value, exemplar string) {
	t.Helper()
	if i := strings.Index(line, " # "); i >= 0 {
		exemplar = line[i+3:]
		line = line[:i]
	}
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		t.Fatalf("no value separator in %q", line)
	}
	key, value := line[:sp], line[sp+1:]
	labels = map[string]string{}
	br := strings.IndexByte(key, '{')
	if br < 0 {
		return key, labels, value, exemplar
	}
	name = key[:br]
	body := strings.TrimSuffix(key[br+1:], "}")
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || body[eq+1] != '"' {
			t.Fatalf("bad label in %q", line)
		}
		k := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		labels[k] = val.String()
		body = strings.TrimPrefix(rest[i+1:], ",")
	}
	return name, labels, value, exemplar
}

// TestWriteTextRoundTrip writes metrics whose label values contain
// every character the text format must escape, renders the registry,
// and parses the exposition back to the original values.
func TestWriteTextRoundTrip(t *testing.T) {
	reg := NewRegistry()
	nasty := []string{
		`plain`,
		`quote"inside`,
		`back\slash`,
		"new\nline",
		`all"three\of` + "\nthem",
	}
	for i, v := range nasty {
		reg.Counter("pardis_rt_total", "val", v).Add(uint64(i + 1))
	}
	reg.Gauge("pardis_rt_gauge", "val", nasty[4]).Set(-7)
	reg.Histogram("pardis_rt_seconds", "val", nasty[1]).Observe(0.003)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := sb.String()

	got := map[string]string{}
	var types []string
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			types = append(types, strings.TrimPrefix(line, "# TYPE "))
			continue
		}
		name, labels, value, _ := parseTextLine(t, line)
		got[name+"|"+labels["val"]+"|"+labels["le"]+"|"+labels["quantile"]] = value
	}

	for i, v := range nasty {
		want := fmt.Sprintf("%d", i+1)
		if got["pardis_rt_total|"+v+"||"] != want {
			t.Errorf("counter with label %q: got %q, want %q", v, got["pardis_rt_total|"+v+"||"], want)
		}
	}
	if got["pardis_rt_gauge|"+nasty[4]+"||"] != "-7" {
		t.Errorf("gauge round-trip failed: %q", got["pardis_rt_gauge|"+nasty[4]+"||"])
	}
	if got["pardis_rt_seconds_bucket|"+nasty[1]+"|0.005|"] != "1" {
		t.Errorf("histogram bucket round-trip failed; text:\n%s", text)
	}
	if got["pardis_rt_seconds_count|"+nasty[1]+"||"] != "1" {
		t.Errorf("histogram count round-trip failed")
	}

	sort.Strings(types)
	wantTypes := []string{
		"pardis_rt_gauge gauge",
		"pardis_rt_seconds histogram",
		"pardis_rt_total counter",
	}
	if len(types) != len(wantTypes) {
		t.Fatalf("TYPE lines: got %v, want %v", types, wantTypes)
	}
	for i := range types {
		if types[i] != wantTypes[i] {
			t.Errorf("TYPE line %d: got %q, want %q", i, types[i], wantTypes[i])
		}
	}
}

// TestWriteTextTypeOncePerName checks that a metric name with several
// label sets gets exactly one # TYPE line.
func TestWriteTextTypeOncePerName(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pardis_multi_total", "a", "1").Inc()
	reg.Counter("pardis_multi_total", "a", "2").Inc()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "# TYPE pardis_multi_total counter"); n != 1 {
		t.Fatalf("want exactly one TYPE line, got %d:\n%s", n, sb.String())
	}
}

func TestHistogramExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("pardis_ex_seconds")
	h.ObserveExemplar(0.0003, 0xabcdef12)   // 250µs < v <= 500µs bucket
	h.ObserveExemplar(0.0004, 0xdeadbeef)   // same bucket: newest wins
	h.ObserveExemplar(0.002, 0)             // no trace: observed, no exemplar
	h.ObserveExemplar(100, 0x1122334455667) // +Inf bucket

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if len(s.Exemplars) != 2 {
		t.Fatalf("exemplars = %+v, want 2", s.Exemplars)
	}
	first := s.Exemplars[0]
	if first.TraceID != 0xdeadbeef || first.Value != 0.0004 {
		t.Errorf("bucket exemplar = %+v, want newest (trace deadbeef, 0.0004)", first)
	}
	inf := s.Exemplars[1]
	if inf.Bucket != len(s.Edges) || inf.TraceID != 0x1122334455667 {
		t.Errorf("+Inf exemplar = %+v", inf)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `# {trace_id="00000000deadbeef"} 0.0004`) {
		t.Errorf("bucket exemplar missing from exposition:\n%s", text)
	}
	if !strings.Contains(text, `le="+Inf"`) {
		t.Errorf("+Inf bucket missing:\n%s", text)
	}
	if !strings.Contains(text, `# {trace_id="0001122334455667"} 100`) {
		t.Errorf("+Inf exemplar missing from exposition:\n%s", text)
	}
}

func TestSetExemplarsDisables(t *testing.T) {
	prev := SetExemplars(false)
	defer SetExemplars(prev)
	h := NewRegistry().Histogram("pardis_exoff_seconds")
	h.ObserveExemplar(0.001, 42)
	if s := h.Snapshot(); len(s.Exemplars) != 0 {
		t.Fatalf("exemplars captured while disabled: %+v", s.Exemplars)
	}
	if s := h.Snapshot(); s.Count != 1 {
		t.Fatalf("observation lost while exemplars disabled")
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":       "plain",
		`a\b`:         `a\\b`,
		`a"b`:         `a\"b`,
		"a\nb":        `a\nb`,
		"\\\"\n":      `\\\"\n`,
		"µs — utf-8✓": "µs — utf-8✓",
	}
	for in, want := range cases {
		if got := EscapeLabelValue(in); got != want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExemplarTimestampRecent(t *testing.T) {
	h := NewRegistry().Histogram("pardis_exwhen_seconds")
	h.ObserveExemplar(0.001, 7)
	s := h.Snapshot()
	if len(s.Exemplars) != 1 {
		t.Fatal("no exemplar")
	}
	if d := time.Since(s.Exemplars[0].When); d < 0 || d > time.Minute {
		t.Fatalf("exemplar timestamp off: %v", d)
	}
}
