package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceContext is the identity a request carries across process
// boundaries: which trace it belongs to, which span is its immediate
// parent, and whether the trace is being recorded. It is encoded on
// the PIOP wire inside the request header (giop.RequestHeader.Trace)
// and inside a process it rides the context.Context.
type TraceContext struct {
	// TraceID identifies the whole request tree; 0 means "no trace".
	TraceID uint64
	// SpanID is the caller's span — the parent of whatever span the
	// callee starts.
	SpanID uint64
	// Sampled marks the trace as recorded; unsampled requests carry
	// zero IDs and cost nothing.
	Sampled bool
}

// Valid reports whether the context names a real trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// String renders the trace id in fixed-width hex — the form operators
// grep for across process logs.
func (tc TraceContext) String() string {
	return fmt.Sprintf("%016x/%016x", tc.TraceID, tc.SpanID)
}

type traceCtxKey struct{}

// ContextWithTrace returns ctx carrying tc.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext returns the trace identity carried by ctx, or the
// zero TraceContext.
func TraceFromContext(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}

// idState drives the process-wide span/trace id generator: a
// splitmix64 stream seeded from crypto/rand, lock-free and
// allocation-free.
var idState = func() *atomic.Uint64 {
	var s atomic.Uint64
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		s.Store(binary.BigEndian.Uint64(seed[:]))
	} else {
		s.Store(uint64(time.Now().UnixNano()))
	}
	return &s
}()

// newID returns a nonzero pseudorandom 64-bit id.
func newID() uint64 {
	for {
		x := idState.Add(0x9E3779B97F4A7C15)
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// sampleRate is the probability a root span starts sampled, stored as
// math.Float64bits. Child spans inherit the caller's decision.
var sampleRate atomic.Uint64 // default 0: tracing off

// SetTraceSampling sets the root-span sampling probability in [0, 1].
// 0 disables tracing (zero overhead); 1 records every request.
func SetTraceSampling(rate float64) {
	if rate < 0 {
		rate = 0
	} else if rate > 1 {
		rate = 1
	}
	sampleRate.Store(math.Float64bits(rate))
}

// TraceSampling returns the current root sampling probability.
func TraceSampling() float64 { return math.Float64frombits(sampleRate.Load()) }

// TraceActive reports whether StartSpan could record a span for ctx:
// either root sampling is on, or ctx already carries a sampled trace
// (e.g. continued from a remote peer). Hot paths use it to skip
// building span names and attribute lists when tracing is off — the
// off path costs one atomic load.
func TraceActive(ctx context.Context) bool {
	if sampleRate.Load() != 0 {
		return true
	}
	tc := TraceFromContext(ctx)
	return tc.Valid() && tc.Sampled
}

func sampleRoot() bool {
	rate := TraceSampling()
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return float64(newID())/float64(math.MaxUint64) < rate
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key, Value string
}

// Span is one timed operation in a trace. A nil *Span is a valid
// no-op (unsampled), so call sites never branch.
type Span struct {
	Name     string
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	Start    time.Time

	mu    sync.Mutex
	attrs []Attr
	rec   *Recorder
	done  bool
}

// Annotate attaches an attribute to the span. Nil-safe.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, value})
	s.mu.Unlock()
}

// End finishes the span and records it. Nil-safe; double End is
// ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	attrs := s.attrs
	s.mu.Unlock()
	s.rec.record(SpanRecord{
		Name:     s.Name,
		TraceID:  s.TraceID,
		SpanID:   s.SpanID,
		ParentID: s.ParentID,
		Start:    s.Start,
		Duration: time.Since(s.Start),
		Attrs:    attrs,
	})
}

// Context returns the trace identity a callee should inherit from
// this span. Nil-safe (returns the zero context).
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.TraceID, SpanID: s.SpanID, Sampled: true}
}

// StartSpan starts a span named name under the trace carried by ctx.
// With no trace in ctx it makes a root sampling decision; unsampled
// requests return (ctx, nil) untouched — the zero-overhead path.
// The returned context carries the new span as the parent for nested
// calls. Callers must End the span (nil-safe).
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := TraceFromContext(ctx)
	if !parent.Valid() || !parent.Sampled {
		if !sampleRoot() {
			return ctx, nil
		}
		parent = TraceContext{TraceID: newID(), Sampled: true}
	}
	s := &Span{
		Name:     name,
		TraceID:  parent.TraceID,
		SpanID:   newID(),
		ParentID: parent.SpanID,
		Start:    time.Now(),
		attrs:    attrs,
		rec:      DefaultRecorder,
	}
	return ContextWithTrace(ctx, s.Context()), s
}

// SpanRecord is one finished span as stored by a Recorder.
type SpanRecord struct {
	Name     string        `json:"name"`
	TraceID  uint64        `json:"-"`
	SpanID   uint64        `json:"-"`
	ParentID uint64        `json:"-"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Attrs    []Attr        `json:"attrs,omitempty"`

	// Hex forms for JSON consumers (filled by Recorder.Trace).
	TraceIDHex  string `json:"trace_id"`
	SpanIDHex   string `json:"span_id"`
	ParentIDHex string `json:"parent_id,omitempty"`
}

// Recorder keeps the most recent finished spans in a ring buffer, so
// a process can answer "show me everything that happened under trace
// X" without external infrastructure.
type Recorder struct {
	mu   sync.Mutex
	ring []SpanRecord
	next int
	full bool
}

// DefaultRecorderCapacity bounds the default recorder's ring.
const DefaultRecorderCapacity = 4096

// DefaultRecorder receives every span finished via StartSpan/End.
var DefaultRecorder = NewRecorder(DefaultRecorderCapacity)

// NewRecorder returns a recorder holding up to capacity spans.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{ring: make([]SpanRecord, capacity)}
}

func (r *Recorder) record(sr SpanRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ring[r.next] = sr
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// all returns the buffered spans, oldest first.
func (r *Recorder) all() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]SpanRecord(nil), r.ring[:r.next]...)
	}
	out := make([]SpanRecord, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// TraceIDs returns the distinct trace ids currently buffered, newest
// last.
func (r *Recorder) TraceIDs() []uint64 {
	seen := make(map[uint64]bool)
	var ids []uint64
	for _, sr := range r.all() {
		if !seen[sr.TraceID] {
			seen[sr.TraceID] = true
			ids = append(ids, sr.TraceID)
		}
	}
	return ids
}

// Trace returns every buffered span of one trace, parents before
// children where the hierarchy allows, with hex id forms filled in.
func (r *Recorder) Trace(traceID uint64) []SpanRecord {
	var spans []SpanRecord
	for _, sr := range r.all() {
		if sr.TraceID == traceID {
			sr.TraceIDHex = fmt.Sprintf("%016x", sr.TraceID)
			sr.SpanIDHex = fmt.Sprintf("%016x", sr.SpanID)
			if sr.ParentID != 0 {
				sr.ParentIDHex = fmt.Sprintf("%016x", sr.ParentID)
			}
			spans = append(spans, sr)
		}
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	return spans
}

// Reset drops all buffered spans — test isolation only.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.next, r.full = 0, false
	r.mu.Unlock()
}

// FormatTree renders a trace's spans as an indented tree:
//
//	client:solve endpoint=tcp:... 1.2ms
//	  server:solve key=example 0.9ms
//	    client:resolve endpoint=tcp:... 0.1ms
//
// Orphan spans (parent not in the buffer, e.g. evicted or remote and
// never shipped) are shown at top level.
func FormatTree(spans []SpanRecord) string {
	children := make(map[uint64][]SpanRecord)
	have := make(map[uint64]bool)
	for _, s := range spans {
		have[s.SpanID] = true
	}
	var roots []SpanRecord
	for _, s := range spans {
		if s.ParentID != 0 && have[s.ParentID] {
			children[s.ParentID] = append(children[s.ParentID], s)
		} else {
			roots = append(roots, s)
		}
	}
	var b strings.Builder
	var walk func(s SpanRecord, depth int)
	walk = func(s SpanRecord, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.Name)
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		fmt.Fprintf(&b, " %v\n", s.Duration.Round(time.Microsecond))
		for _, c := range children[s.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
