package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderKeepsKSlowest(t *testing.T) {
	f := NewFlightRecorder(3, 8)
	for i := 1; i <= 10; i++ {
		f.Record(FlightRecord{
			Side: "client", Op: "echo",
			Duration: time.Duration(i) * time.Millisecond,
		})
	}
	snap := f.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("shards = %d, want 1", len(snap))
	}
	op := snap[0]
	if op.Side != "client" || op.Op != "echo" {
		t.Fatalf("shard identity = %s/%s", op.Side, op.Op)
	}
	if len(op.Slowest) != 3 {
		t.Fatalf("slowest = %d records, want 3", len(op.Slowest))
	}
	for i, want := range []time.Duration{10, 9, 8} {
		if op.Slowest[i].Duration != want*time.Millisecond {
			t.Errorf("slowest[%d] = %v, want %vms", i, op.Slowest[i].Duration, want)
		}
	}
	if len(op.Errors) != 0 {
		t.Errorf("unexpected errors: %+v", op.Errors)
	}
}

func TestFlightRecorderErrorRing(t *testing.T) {
	f := NewFlightRecorder(2, 3)
	for i := 1; i <= 5; i++ {
		f.Record(FlightRecord{
			Side: "server", Op: "solve",
			Duration: time.Microsecond, // fast: only the error ring keeps these
			Error:    fmt.Sprintf("boom %d", i),
		})
	}
	op := f.Snapshot()[0]
	if len(op.Errors) != 3 {
		t.Fatalf("errors = %d, want ring cap 3", len(op.Errors))
	}
	// Newest first: boom 5, boom 4, boom 3.
	for i, want := range []string{"boom 5", "boom 4", "boom 3"} {
		if op.Errors[i].Error != want {
			t.Errorf("errors[%d] = %q, want %q", i, op.Errors[i].Error, want)
		}
	}
}

func TestFlightRecorderFastPathBelowFloor(t *testing.T) {
	f := NewFlightRecorder(2, 2)
	f.Record(FlightRecord{Side: "client", Op: "x", Duration: 100 * time.Millisecond})
	f.Record(FlightRecord{Side: "client", Op: "x", Duration: 90 * time.Millisecond})
	// Floor is now 90ms; a faster, error-free record must be dropped.
	f.Record(FlightRecord{Side: "client", Op: "x", Duration: time.Millisecond})
	op := f.Snapshot()[0]
	if len(op.Slowest) != 2 || op.Slowest[1].Duration != 90*time.Millisecond {
		t.Fatalf("slow set corrupted: %+v", op.Slowest)
	}
	// A slower record evicts the floor entry.
	f.Record(FlightRecord{Side: "client", Op: "x", Duration: 95 * time.Millisecond})
	op = f.Snapshot()[0]
	if op.Slowest[0].Duration != 100*time.Millisecond || op.Slowest[1].Duration != 95*time.Millisecond {
		t.Fatalf("eviction wrong: %+v", op.Slowest)
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	f := NewFlightRecorder(2, 2)
	f.SetEnabled(false)
	f.Record(FlightRecord{Side: "client", Op: "x", Duration: time.Second, Error: "nope"})
	if snap := f.Snapshot(); len(snap) != 0 {
		t.Fatalf("recorded while disabled: %+v", snap)
	}
}

func TestFlightRecorderByTrace(t *testing.T) {
	f := NewFlightRecorder(4, 4)
	f.Record(FlightRecord{Side: "client", Op: "a", Duration: time.Second, TraceID: 0xf00})
	f.Record(FlightRecord{Side: "server", Op: "a", Duration: time.Second / 2, TraceID: 0xf00})
	f.Record(FlightRecord{Side: "client", Op: "a", Duration: time.Second / 4, TraceID: 0xbaa})
	recs := f.ByTrace(0xf00)
	if len(recs) != 2 {
		t.Fatalf("ByTrace = %d records, want 2: %+v", len(recs), recs)
	}
	for _, r := range recs {
		if r.Trace != fmt.Sprintf("%016x", 0xf00) {
			t.Errorf("hex trace not filled: %+v", r)
		}
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(8, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r := FlightRecord{
					Side:     "client",
					Op:       fmt.Sprintf("op%d", i%3),
					Duration: time.Duration(i*g+1) * time.Microsecond,
				}
				if i%17 == 0 {
					r.Error = "transient"
				}
				f.Record(r)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			f.Snapshot()
		}
		close(done)
	}()
	wg.Wait()
	<-done
	snap := f.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("shards = %d, want 3", len(snap))
	}
	for _, op := range snap {
		if len(op.Slowest) == 0 || len(op.Slowest) > 8 {
			t.Errorf("%s/%s slowest = %d", op.Side, op.Op, len(op.Slowest))
		}
		for i := 1; i < len(op.Slowest); i++ {
			if op.Slowest[i].Duration > op.Slowest[i-1].Duration {
				t.Errorf("%s/%s not sorted at %d", op.Side, op.Op, i)
			}
		}
	}
}

func TestWriteFlightText(t *testing.T) {
	f := NewFlightRecorder(2, 2)
	f.Record(FlightRecord{
		Side: "client", Op: "echo", Key: "objects/e", Endpoint: "tcp:1.2.3.4:5",
		Duration: 3 * time.Millisecond, Attempts: 2, Retries: 1, Failovers: 1,
		ReResolves: 1, TraceID: 0xabc, DeadlineRemaining: 40 * time.Millisecond,
	})
	var sb strings.Builder
	WriteFlightText(&sb, f.Snapshot())
	out := sb.String()
	for _, want := range []string{
		"client echo", "attempts=2", "retries=1", "failovers=1",
		"reresolves=1", "trace=0000000000000abc", "deadline_rem=40ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
