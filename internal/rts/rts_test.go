package rts_test

import (
	"fmt"
	"sync"
	"testing"

	"pardis/internal/mp"
	"pardis/internal/rts"
	"pardis/internal/rts/onesided"
)

// harness runs fn on every thread of a size-P section for each RTS
// flavor, so the same conformance suite exercises both adapters.
func harness(t *testing.T, size int, fn func(th rts.Thread) error) {
	t.Helper()
	t.Run("message-passing", func(t *testing.T) {
		err := mp.Run(size, func(p *mp.Proc) error {
			return fn(rts.NewMessagePassing(p))
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	t.Run("one-sided", func(t *testing.T) {
		d := onesided.MustDomain(size)
		defer d.Close()
		var wg sync.WaitGroup
		errc := make(chan error, size)
		for r := 0; r < size; r++ {
			wg.Add(1)
			go func(th rts.Thread) {
				defer wg.Done()
				if err := fn(th); err != nil {
					errc <- err
					d.Close()
				}
			}(d.Thread(r))
		}
		wg.Wait()
		select {
		case err := <-errc:
			t.Fatal(err)
		default:
		}
	})
}

func TestRankSize(t *testing.T) {
	seen := make(map[string]map[int]bool)
	var mu sync.Mutex
	harness(t, 4, func(th rts.Thread) error {
		if th.Size() != 4 {
			return fmt.Errorf("size = %d", th.Size())
		}
		mu.Lock()
		key := fmt.Sprintf("%T", th)
		if seen[key] == nil {
			seen[key] = map[int]bool{}
		}
		if seen[key][th.Rank()] {
			mu.Unlock()
			return fmt.Errorf("duplicate rank %d", th.Rank())
		}
		seen[key][th.Rank()] = true
		mu.Unlock()
		return nil
	})
}

func TestBcast(t *testing.T) {
	harness(t, 3, func(th rts.Thread) error {
		var in []byte
		if th.Rank() == 1 {
			in = []byte("spmd header")
		}
		out, err := th.Bcast(1, in)
		if err != nil {
			return err
		}
		if string(out) != "spmd header" {
			return fmt.Errorf("rank %d: bcast = %q", th.Rank(), out)
		}
		return nil
	})
}

func TestGatherScatter(t *testing.T) {
	counts := []int{4, 1, 0, 3}
	harness(t, 4, func(th rts.Thread) error {
		base := 0
		for r := 0; r < th.Rank(); r++ {
			base += counts[r]
		}
		local := make([]float64, counts[th.Rank()])
		for i := range local {
			local[i] = float64(base+i) * 1.5
		}
		g, err := th.GatherDoubles(0, local, counts)
		if err != nil {
			return err
		}
		if th.Rank() == 0 {
			if len(g) != 8 {
				return fmt.Errorf("gathered %d elements", len(g))
			}
			for i, v := range g {
				if v != float64(i)*1.5 {
					return fmt.Errorf("gathered[%d] = %v", i, v)
				}
			}
		}
		var data []float64
		if th.Rank() == 0 {
			data = g
		}
		s, err := th.ScatterDoubles(0, data, counts)
		if err != nil {
			return err
		}
		if len(s) != counts[th.Rank()] {
			return fmt.Errorf("scattered %d elements, want %d", len(s), counts[th.Rank()])
		}
		for i, v := range s {
			if v != float64(base+i)*1.5 {
				return fmt.Errorf("scattered[%d] = %v", i, v)
			}
		}
		return nil
	})
}

func TestAllgatherU64(t *testing.T) {
	harness(t, 5, func(th rts.Thread) error {
		got, err := th.AllgatherU64(uint64(th.Rank()+1) * 7)
		if err != nil {
			return err
		}
		if len(got) != 5 {
			return fmt.Errorf("len = %d", len(got))
		}
		for i, v := range got {
			if v != uint64(i+1)*7 {
				return fmt.Errorf("rank %d: got[%d] = %d", th.Rank(), i, v)
			}
		}
		return nil
	})
}

func TestBarrierSequence(t *testing.T) {
	// Repeated collectives must not interfere across epochs.
	harness(t, 3, func(th rts.Thread) error {
		for round := 0; round < 10; round++ {
			if err := th.Barrier(); err != nil {
				return err
			}
			got, err := th.AllgatherU64(uint64(round))
			if err != nil {
				return err
			}
			for _, v := range got {
				if v != uint64(round) {
					return fmt.Errorf("round %d saw value %d", round, v)
				}
			}
		}
		return nil
	})
}

func TestSingleThreadSection(t *testing.T) {
	harness(t, 1, func(th rts.Thread) error {
		if err := th.Barrier(); err != nil {
			return err
		}
		g, err := th.GatherDoubles(0, []float64{1, 2}, []int{2})
		if err != nil || len(g) != 2 {
			return fmt.Errorf("gather: %v %v", g, err)
		}
		s, err := th.ScatterDoubles(0, g, []int{2})
		if err != nil || len(s) != 2 || s[1] != 2 {
			return fmt.Errorf("scatter: %v %v", s, err)
		}
		return nil
	})
}

func TestSendRecvBytes(t *testing.T) {
	harness(t, 3, func(th rts.Thread) error {
		// Ring: each thread sends to (rank+1) mod 3, tagged by sender.
		next := (th.Rank() + 1) % 3
		prev := (th.Rank() + 2) % 3
		if err := th.SendBytes(next, th.Rank(), []byte{byte(th.Rank())}); err != nil {
			return err
		}
		b, err := th.RecvBytes(prev, prev)
		if err != nil {
			return err
		}
		if len(b) != 1 || b[0] != byte(prev) {
			return fmt.Errorf("rank %d got %v from %d", th.Rank(), b, prev)
		}
		return nil
	})
}

func TestSendRecvBytesFIFO(t *testing.T) {
	harness(t, 2, func(th rts.Thread) error {
		const N = 20
		if th.Rank() == 0 {
			for i := 0; i < N; i++ {
				if err := th.SendBytes(1, 9, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < N; i++ {
			b, err := th.RecvBytes(0, 9)
			if err != nil {
				return err
			}
			if b[0] != byte(i) {
				return fmt.Errorf("message %d overtaken by %d", i, b[0])
			}
		}
		return nil
	})
}

func TestMessagePassingExposesProc(t *testing.T) {
	w := mp.MustWorld(2)
	defer w.Close()
	m := rts.NewMessagePassing(w.Rank(1))
	if m.Proc() != w.Rank(1) {
		t.Fatal("Proc() does not return the wrapped rank")
	}
}

// TestWindowPutFence is the one-sided conformance test: every thread
// exposes a window expecting one put from each peer, scatters its
// block into every thread's window (including a self-put) at
// rank-derived offsets, and after the fence each window must hold the
// fully assembled vector. Both RTS flavors must satisfy it — the
// message-passing adapter through the buffered put queue, the
// one-sided domain through direct epoch copies.
func TestWindowPutFence(t *testing.T) {
	const blk = 8
	harness(t, 3, func(th rts.Thread) error {
		wt, ok := rts.AsWindowThread(th)
		if !ok {
			return fmt.Errorf("%T does not expose windows", th)
		}
		size, rank := th.Size(), th.Rank()
		window := make([]float64, size*blk)
		local := make([]float64, blk)
		for i := range local {
			local[i] = float64(rank*blk + i)
		}
		expect := make([]int, size)
		for i := range expect {
			if i != rank {
				expect[i] = 1
			}
		}
		w, err := wt.ExposeWindow(window, expect)
		if err != nil {
			return err
		}
		for dst := 0; dst < size; dst++ {
			if err := w.Put(dst, rank*blk, local); err != nil {
				return err
			}
		}
		if err := w.Fence(); err != nil {
			return err
		}
		for i := range window {
			if window[i] != float64(i) {
				return fmt.Errorf("rank %d: window[%d] = %v", rank, i, window[i])
			}
		}
		return nil
	})
}

func TestWindowArgumentErrors(t *testing.T) {
	harness(t, 2, func(th rts.Thread) error {
		wt, ok := rts.AsWindowThread(th)
		if !ok {
			return fmt.Errorf("%T does not expose windows", th)
		}
		if _, err := wt.ExposeWindow(make([]float64, 4), []int{1}); err == nil {
			return fmt.Errorf("expectFrom of wrong length accepted")
		}
		// A clean epoch with no remote puts: a self-put beyond the
		// window must fail without poisoning the fence.
		w, err := wt.ExposeWindow(make([]float64, 4), make([]int, th.Size()))
		if err != nil {
			return err
		}
		if err := w.Put(th.Rank(), 3, []float64{1, 2}); err == nil {
			return fmt.Errorf("out-of-range self put accepted")
		}
		if err := w.Put(th.Rank(), 0, []float64{1}); err != nil {
			return err
		}
		return w.Fence()
	})
}
