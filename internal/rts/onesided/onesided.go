// Package onesided implements the rts.Thread interface on a one-sided
// (remote-memory-access) runtime model: each thread exposes memory
// windows, and collectives are realized by the root directly reading
// from or writing into peers' windows after a synchronization epoch.
//
// The PARDIS paper lists a one-sided RTS interface as future work ("In
// the future PARDIS will provide an alternative run-time system
// interface capturing the functionality of the more flexible one-sided
// run-time systems"); this package realizes that design point so the
// ORB can be exercised against both runtime flavors, and so the RTS
// ablation benchmark can compare them.
package onesided

import (
	"errors"
	"fmt"
	"sync"

	"pardis/internal/rts"
)

// ErrClosed is returned by operations on a closed domain.
var ErrClosed = errors.New("onesided: domain closed")

// Domain is a one-sided runtime instance shared by Size threads.
type Domain struct {
	size    int
	threads []*thread

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool

	// Cyclic barrier state.
	barrierWaiting int
	barrierPhase   uint64

	// Exposure epochs: each collective opens an epoch in which
	// every thread deposits a window (a slice it owns); once all
	// windows are exposed, the root performs direct copies and then
	// the epoch closes. Epochs are identified by a monotonically
	// increasing sequence number so consecutive collectives do not
	// interfere.
	windowsF64  map[uint64][][]float64
	windowsByte map[uint64][][]byte
	exposed     map[uint64]int
	// results written by the root for all to read before epoch close
	resultU64 map[uint64][]uint64
	doneCount map[uint64]int

	// p2p[r] is rank r's message region for emulated point-to-point
	// sends (remote PUT + notification).
	p2p [][]p2pMsg
}

// p2pMsg is one message PUT into a thread's region.
type p2pMsg struct {
	src, tag int
	data     []byte
}

// NewDomain creates a one-sided domain for size threads.
func NewDomain(size int) (*Domain, error) {
	if size <= 0 {
		return nil, fmt.Errorf("onesided: domain size %d", size)
	}
	d := &Domain{
		size:        size,
		windowsF64:  make(map[uint64][][]float64),
		windowsByte: make(map[uint64][][]byte),
		exposed:     make(map[uint64]int),
		resultU64:   make(map[uint64][]uint64),
		doneCount:   make(map[uint64]int),
	}
	d.cond = sync.NewCond(&d.mu)
	d.p2p = make([][]p2pMsg, size)
	d.threads = make([]*thread, size)
	for r := range d.threads {
		d.threads[r] = &thread{d: d, rank: r}
	}
	return d, nil
}

// MustDomain is NewDomain that panics on error.
func MustDomain(size int) *Domain {
	d, err := NewDomain(size)
	if err != nil {
		panic(err)
	}
	return d
}

// Size returns the number of threads in the domain.
func (d *Domain) Size() int { return d.size }

// Thread returns the rts.Thread handle for rank r. The handle is
// stateful (it tracks the thread's collective epoch) and must be used
// by a single goroutine.
func (d *Domain) Thread(r int) rts.Thread { return d.threads[r] }

// Close aborts the domain; blocked threads return ErrClosed.
func (d *Domain) Close() {
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
}

type thread struct {
	d    *Domain
	rank int
	// seq is this thread's local count of collectives entered; all
	// threads enter collectives in the same order (SPMD discipline),
	// so it doubles as the epoch id.
	seq uint64
}

func (t *thread) Rank() int { return t.rank }
func (t *thread) Size() int { return t.d.size }

// Barrier is a classic cyclic (phase-flipping) barrier.
func (t *thread) Barrier() error {
	d := t.d
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	phase := d.barrierPhase
	d.barrierWaiting++
	if d.barrierWaiting == d.size {
		d.barrierWaiting = 0
		d.barrierPhase++
		d.cond.Broadcast()
		return nil
	}
	for d.barrierPhase == phase && !d.closed {
		d.cond.Wait()
	}
	if d.closed {
		return ErrClosed
	}
	return nil
}

// expose deposits this thread's windows for the current epoch and
// blocks until every thread has exposed. Returns the epoch id.
func (t *thread) expose(f64 []float64, b []byte) (uint64, error) {
	d := t.d
	epoch := t.seq
	t.seq++
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	wf, ok := d.windowsF64[epoch]
	if !ok {
		wf = make([][]float64, d.size)
		d.windowsF64[epoch] = wf
		d.windowsByte[epoch] = make([][]byte, d.size)
	}
	wf[t.rank] = f64
	d.windowsByte[epoch][t.rank] = b
	d.exposed[epoch]++
	if d.exposed[epoch] == d.size {
		d.cond.Broadcast()
	}
	for d.exposed[epoch] < d.size && !d.closed {
		d.cond.Wait()
	}
	if d.closed {
		return 0, ErrClosed
	}
	return epoch, nil
}

// finish marks this thread done with the epoch; the last thread out
// garbage-collects the epoch state.
func (d *Domain) finish(epoch uint64) {
	d.mu.Lock()
	d.doneCount[epoch]++
	if d.doneCount[epoch] == d.size {
		delete(d.windowsF64, epoch)
		delete(d.windowsByte, epoch)
		delete(d.exposed, epoch)
		delete(d.resultU64, epoch)
		delete(d.doneCount, epoch)
	}
	d.mu.Unlock()
}

func (t *thread) waitResultU64(epoch uint64) ([]uint64, error) {
	d := t.d
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.resultU64[epoch] == nil && !d.closed {
		d.cond.Wait()
	}
	if d.closed {
		return nil, ErrClosed
	}
	return d.resultU64[epoch], nil
}

// Bcast: root exposes the payload; every thread GETs it directly.
func (t *thread) Bcast(root int, data []byte) ([]byte, error) {
	if root < 0 || root >= t.d.size {
		return nil, fmt.Errorf("onesided: root %d of %d", root, t.d.size)
	}
	var win []byte
	if t.rank == root {
		win = data
	}
	epoch, err := t.expose(nil, win)
	if err != nil {
		return nil, err
	}
	defer t.d.finish(epoch)
	// Direct one-sided read from the root's window.
	t.d.mu.Lock()
	src := t.d.windowsByte[epoch][root]
	t.d.mu.Unlock()
	out := make([]byte, len(src))
	copy(out, src)
	// All threads must finish reading before the epoch closes; the
	// copy above happened under no lock on the window, which is safe
	// because windows are read-only during an epoch. Synchronize exit.
	if err := t.Barrier(); err != nil {
		return nil, err
	}
	return out, nil
}

// GatherDoubles: every thread exposes its block; the root GETs all
// blocks directly — no intermediate messages, the defining advantage
// of the one-sided flavor.
func (t *thread) GatherDoubles(root int, local []float64, counts []int) ([]float64, error) {
	if err := t.checkCollective(root, counts, len(local)); err != nil {
		return nil, err
	}
	epoch, err := t.expose(local, nil)
	if err != nil {
		return nil, err
	}
	defer t.d.finish(epoch)
	var out []float64
	if t.rank == root {
		total := 0
		for _, c := range counts {
			total += c
		}
		out = make([]float64, 0, total)
		t.d.mu.Lock()
		wins := t.d.windowsF64[epoch]
		t.d.mu.Unlock()
		for r := 0; r < t.d.size; r++ {
			out = append(out, wins[r]...)
		}
	}
	if err := t.Barrier(); err != nil {
		return nil, err
	}
	return out, nil
}

// ScatterDoubles: the root exposes the full array; every thread GETs
// its own block directly.
func (t *thread) ScatterDoubles(root int, data []float64, counts []int) ([]float64, error) {
	if err := t.checkCollective(root, counts, -1); err != nil {
		return nil, err
	}
	var win []float64
	if t.rank == root {
		total := 0
		for _, c := range counts {
			total += c
		}
		if len(data) != total {
			return nil, fmt.Errorf("onesided: scatter data %d != counts sum %d", len(data), total)
		}
		win = data
	}
	epoch, err := t.expose(win, nil)
	if err != nil {
		return nil, err
	}
	defer t.d.finish(epoch)
	t.d.mu.Lock()
	src := t.d.windowsF64[epoch][root]
	t.d.mu.Unlock()
	lo := 0
	for r := 0; r < t.rank; r++ {
		lo += counts[r]
	}
	out := make([]float64, counts[t.rank])
	copy(out, src[lo:lo+counts[t.rank]])
	if err := t.Barrier(); err != nil {
		return nil, err
	}
	return out, nil
}

// AllgatherU64: thread 0 aggregates from exposed single-value windows
// and publishes the vector for direct reads.
func (t *thread) AllgatherU64(v uint64) ([]uint64, error) {
	win := make([]byte, 8)
	for i := 0; i < 8; i++ {
		win[i] = byte(v >> (56 - 8*i))
	}
	epoch, err := t.expose(nil, win)
	if err != nil {
		return nil, err
	}
	defer t.d.finish(epoch)
	d := t.d
	if t.rank == 0 {
		d.mu.Lock()
		wins := d.windowsByte[epoch]
		out := make([]uint64, d.size)
		for r := range out {
			var x uint64
			for i := 0; i < 8; i++ {
				x = x<<8 | uint64(wins[r][i])
			}
			out[r] = x
		}
		d.resultU64[epoch] = out
		d.cond.Broadcast()
		d.mu.Unlock()
	}
	out, err := t.waitResultU64(epoch)
	if err != nil {
		return nil, err
	}
	cp := make([]uint64, len(out))
	copy(cp, out)
	if err := t.Barrier(); err != nil {
		return nil, err
	}
	return cp, nil
}

// SendBytes emulates a point-to-point send the way one-sided runtimes
// do: a remote PUT into the destination's message region followed by a
// notification. The payload is copied.
func (t *thread) SendBytes(dst, tag int, data []byte) error {
	if dst < 0 || dst >= t.d.size {
		return fmt.Errorf("onesided: dst %d of %d", dst, t.d.size)
	}
	if tag < 0 {
		return fmt.Errorf("onesided: tag %d (must be >= 0)", tag)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	d := t.d
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.p2p[dst] = append(d.p2p[dst], p2pMsg{src: t.rank, tag: tag, data: cp})
	d.cond.Broadcast()
	return nil
}

// RecvBytes blocks until a message matching (src, tag) has been PUT
// into this thread's region. Matching is FIFO per (src, tag).
func (t *thread) RecvBytes(src, tag int) ([]byte, error) {
	d := t.d
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed {
			return nil, ErrClosed
		}
		q := d.p2p[t.rank]
		for i, m := range q {
			if m.src == src && m.tag == tag {
				d.p2p[t.rank] = append(q[:i:i], q[i+1:]...)
				return m.data, nil
			}
		}
		d.cond.Wait()
	}
}

// osWindow is one exposure epoch over the domain's window machinery —
// the true one-sided realization of rts.Window: Put is a direct
// bounds-checked copy into the destination thread's exposed slice (no
// message, no queue), and Fence is a plain barrier because every copy
// already landed synchronously.
type osWindow struct {
	t     *thread
	epoch uint64
	local []float64
}

// ExposeWindow implements rts.WindowThread: the destination slice is
// deposited in the epoch's window table and every thread blocks until
// all have exposed, after which remote puts may copy directly.
// expectFrom is validated for shape but otherwise unused — direct
// copies need no receive-side counting.
func (t *thread) ExposeWindow(local []float64, expectFrom []int) (rts.Window, error) {
	if len(expectFrom) != t.d.size {
		return nil, fmt.Errorf("onesided: ExposeWindow expectFrom has %d entries for %d threads",
			len(expectFrom), t.d.size)
	}
	epoch, err := t.expose(local, nil)
	if err != nil {
		return nil, err
	}
	return &osWindow{t: t, epoch: epoch, local: local}, nil
}

// Put implements rts.Window by remote-memory write: the destination
// window was pinned at expose time, and the SPMD transfer plan makes
// put ranges disjoint, so the copy runs outside the domain lock.
func (w *osWindow) Put(dst, off int, data []float64) error {
	d := w.t.d
	if dst < 0 || dst >= d.size {
		return fmt.Errorf("onesided: put dst %d of %d", dst, d.size)
	}
	var win []float64
	if dst == w.t.rank {
		win = w.local
	} else {
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return ErrClosed
		}
		win = d.windowsF64[w.epoch][dst]
		d.mu.Unlock()
	}
	if off < 0 || off+len(data) > len(win) {
		return fmt.Errorf("onesided: put [%d,%d) exceeds window of %d elements on thread %d",
			off, off+len(data), len(win), dst)
	}
	copy(win[off:], data)
	return nil
}

// Fence implements rts.Window. Puts are synchronous copies, so the
// epoch completes as soon as every thread has stopped putting — a
// barrier — after which the last thread out reclaims the epoch state.
func (w *osWindow) Fence() error {
	err := w.t.Barrier()
	w.t.d.finish(w.epoch)
	return err
}

func (t *thread) checkCollective(root int, counts []int, localLen int) error {
	if root < 0 || root >= t.d.size {
		return fmt.Errorf("onesided: root %d of %d", root, t.d.size)
	}
	if len(counts) != t.d.size {
		return fmt.Errorf("onesided: counts has %d entries for %d threads", len(counts), t.d.size)
	}
	if localLen >= 0 && counts[t.rank] != localLen {
		return fmt.Errorf("onesided: rank %d exposes %d elements, counts says %d",
			t.rank, localLen, counts[t.rank])
	}
	return nil
}

var (
	_ rts.Thread       = (*thread)(nil)
	_ rts.WindowThread = (*thread)(nil)
)
