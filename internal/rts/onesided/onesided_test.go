package onesided

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pardis/internal/rts"
)

func TestNewDomainValidation(t *testing.T) {
	if _, err := NewDomain(0); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := NewDomain(-3); err == nil {
		t.Fatal("negative size accepted")
	}
	d, err := NewDomain(2)
	if err != nil || d.Size() != 2 {
		t.Fatalf("NewDomain(2): %v %v", d, err)
	}
}

func TestCloseUnblocksBarrier(t *testing.T) {
	d := MustDomain(2)
	done := make(chan error, 1)
	go func() { done <- d.Thread(0).Barrier() }()
	time.Sleep(10 * time.Millisecond)
	d.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("barrier never unblocked")
	}
	// Operations after close fail fast.
	if err := d.Thread(1).Barrier(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close barrier: %v", err)
	}
	if _, err := d.Thread(1).Bcast(0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close bcast: %v", err)
	}
}

func TestCollectiveArgumentErrors(t *testing.T) {
	d := MustDomain(2)
	defer d.Close()
	th := d.Thread(0)
	if _, err := th.Bcast(5, nil); err == nil {
		t.Fatal("bad root accepted")
	}
	if _, err := th.GatherDoubles(0, []float64{1}, []int{1}); err == nil {
		t.Fatal("short counts accepted")
	}
	if _, err := th.GatherDoubles(0, []float64{1, 2}, []int{1, 1}); err == nil {
		t.Fatal("count/local mismatch accepted")
	}
}

func TestThreadHandleIsStable(t *testing.T) {
	d := MustDomain(3)
	defer d.Close()
	if d.Thread(1) != d.Thread(1) {
		t.Fatal("Thread(r) must return a stable handle (epoch state lives on it)")
	}
}

// runAll drives fn on every thread and fails on any error.
func runAll(t *testing.T, d *Domain, fn func(th rts.Thread) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, d.Size())
	for r := 0; r < d.Size(); r++ {
		wg.Add(1)
		go func(th rts.Thread) {
			defer wg.Done()
			if err := fn(th); err != nil {
				errs <- err
				d.Close()
			}
		}(d.Thread(r))
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestDirectCollectives(t *testing.T) {
	d := MustDomain(4)
	defer d.Close()
	counts := []int{2, 0, 3, 1}
	runAll(t, d, func(th rts.Thread) error {
		// Bcast.
		var in []byte
		if th.Rank() == 2 {
			in = []byte("window")
		}
		out, err := th.Bcast(2, in)
		if err != nil || string(out) != "window" {
			return fmt.Errorf("bcast: %q %v", out, err)
		}
		// Gather + scatter round trip.
		base := 0
		for r := 0; r < th.Rank(); r++ {
			base += counts[r]
		}
		local := make([]float64, counts[th.Rank()])
		for i := range local {
			local[i] = float64(base + i)
		}
		full, err := th.GatherDoubles(0, local, counts)
		if err != nil {
			return err
		}
		if th.Rank() == 0 {
			for i, v := range full {
				if v != float64(i) {
					return fmt.Errorf("gather[%d] = %v", i, v)
				}
			}
		}
		blk, err := th.ScatterDoubles(0, full, counts)
		if err != nil {
			return err
		}
		for i, v := range blk {
			if v != float64(base+i) {
				return fmt.Errorf("scatter[%d] = %v", i, v)
			}
		}
		// Allgather.
		vals, err := th.AllgatherU64(uint64(th.Rank() * 11))
		if err != nil {
			return err
		}
		for i, v := range vals {
			if v != uint64(i*11) {
				return fmt.Errorf("allgather[%d] = %d", i, v)
			}
		}
		// Point-to-point ring.
		next := (th.Rank() + 1) % th.Size()
		prev := (th.Rank() + 3) % th.Size()
		if err := th.SendBytes(next, 5, []byte{byte(th.Rank())}); err != nil {
			return err
		}
		got, err := th.RecvBytes(prev, 5)
		if err != nil || got[0] != byte(prev) {
			return fmt.Errorf("ring: %v %v", got, err)
		}
		return th.Barrier()
	})
}

func TestDirectRepeatedEpochs(t *testing.T) {
	d := MustDomain(3)
	defer d.Close()
	counts := []int{1, 1, 1}
	runAll(t, d, func(th rts.Thread) error {
		for round := 0; round < 25; round++ {
			full, err := th.GatherDoubles(round%3, []float64{float64(round)}, counts)
			if err != nil {
				return err
			}
			if th.Rank() == round%3 {
				for _, v := range full {
					if v != float64(round) {
						return fmt.Errorf("round %d saw %v", round, v)
					}
				}
			}
		}
		return nil
	})
}

func TestScatterDataSizeError(t *testing.T) {
	d := MustDomain(2)
	defer d.Close()
	runAll(t, d, func(th rts.Thread) error {
		if th.Rank() == 0 {
			_, err := th.ScatterDoubles(0, []float64{1}, []int{1, 1})
			if err == nil {
				return fmt.Errorf("short scatter data accepted")
			}
			return nil
		}
		return nil
	})
}

func TestP2PArgumentErrors(t *testing.T) {
	d := MustDomain(2)
	defer d.Close()
	th := d.Thread(0)
	if err := th.SendBytes(9, 0, nil); err == nil {
		t.Fatal("bad dst accepted")
	}
	if err := th.SendBytes(1, -1, nil); err == nil {
		t.Fatal("negative tag accepted")
	}
}
