// Package rts defines PARDIS's generic run-time-system interface: the
// portal through which the ORB and compiler-generated stubs interact
// with the parallel runtime underlying an SPMD application (figure 1
// of the paper). PARDIS specified one such interface, covering the
// functionality of message-passing runtimes (tested against MPI and
// Tulip), and planned a second capturing one-sided runtimes; this
// package provides both:
//
//   - MessagePassing adapts an mp.Proc (the MPI stand-in), and
//   - the onesided subpackage implements the interface with direct
//     remote-memory access over exposed windows.
//
// The ORB only ever sees the Thread interface, so an application built
// on either runtime flavor can be made into an SPMD object without
// rewriting its internals — the property the paper contrasts against
// Nexus-style metacomputing, where the application must be coded
// against the metacomputing runtime itself.
package rts

import (
	"fmt"

	"pardis/internal/mp"
)

// Thread is the per-computing-thread portal into the application's
// runtime. All collective methods must be entered by every thread of
// the SPMD section, with equal root and counts arguments.
type Thread interface {
	// Rank identifies this computing thread within the SPMD section.
	Rank() int
	// Size is the number of computing threads.
	Size() int
	// Barrier blocks until all threads have entered it.
	Barrier() error
	// Bcast distributes root's byte payload to every thread.
	Bcast(root int, data []byte) ([]byte, error)
	// GatherDoubles gathers counts[r] float64s from each thread r to
	// root, concatenated in rank order; non-roots return nil.
	GatherDoubles(root int, local []float64, counts []int) ([]float64, error)
	// ScatterDoubles splits data at root into counts[r]-sized blocks
	// and returns each thread its block.
	ScatterDoubles(root int, data []float64, counts []int) ([]float64, error)
	// AllgatherU64 gathers one uint64 per thread to all threads, in
	// rank order. It backs the identical-scalar-argument check.
	AllgatherU64(v uint64) ([]uint64, error)
	// SendBytes delivers a tagged byte payload to thread dst within
	// the section (tags must be >= 0). The payload is copied.
	SendBytes(dst, tag int, data []byte) error
	// RecvBytes blocks until a payload matching (src, tag) arrives.
	RecvBytes(src, tag int) ([]byte, error)
}

// Window is one collectively exposed put epoch: between ExposeWindow
// and Fence, every thread may Put element blocks into any thread's
// exposed destination slice. Put ranges are bounds-checked against the
// destination; the caller guarantees they are disjoint (the SPMD
// transfer plan both sides computed partitions the destination index
// space). Source blocks handed to Put and the exposed destination are
// owned by the window until Fence returns: the runtime may alias both
// without copying.
type Window interface {
	// Put writes data into thread dst's exposed slice at element
	// offset off. Put to the calling thread's own rank copies
	// directly.
	Put(dst, off int, data []float64) error
	// Fence completes the epoch. Collective: it returns only when
	// every put of the epoch, from every thread, has landed.
	Fence() error
}

// WindowThread is the optional one-sided capability of a Thread
// implementation — the "put into remote window" primitive PARDIS
// named as the second RTS flavor. ExposeWindow is collective: every
// thread exposes its destination slice for one epoch of puts.
// expectFrom[src] is the number of puts thread src will direct here
// (derived from the transfer plan); expectFrom[Rank()] is ignored.
// The slice is aliased until Fence. Use AsWindowThread to discover
// the capability.
type WindowThread interface {
	ExposeWindow(local []float64, expectFrom []int) (Window, error)
}

// AsWindowThread reports whether th supports one-sided window
// delivery, returning the capability when it does. Callers must keep
// a tagged-send fallback for Thread implementations that do not.
func AsWindowThread(th Thread) (WindowThread, bool) {
	w, ok := th.(WindowThread)
	return w, ok
}

// MessagePassing adapts an mp rank to the RTS interface. It is the
// flavor PARDIS shipped first, corresponding to MPI/Tulip.
type MessagePassing struct {
	proc *mp.Proc
}

// NewMessagePassing wraps an mp rank.
func NewMessagePassing(p *mp.Proc) *MessagePassing {
	return &MessagePassing{proc: p}
}

// Proc exposes the underlying mp rank for application code that wants
// to use the runtime directly alongside the ORB.
func (m *MessagePassing) Proc() *mp.Proc { return m.proc }

// Rank implements Thread.
func (m *MessagePassing) Rank() int { return m.proc.Rank() }

// Size implements Thread.
func (m *MessagePassing) Size() int { return m.proc.Size() }

// Barrier implements Thread.
func (m *MessagePassing) Barrier() error { return m.proc.Barrier() }

// Bcast implements Thread.
func (m *MessagePassing) Bcast(root int, data []byte) ([]byte, error) {
	return m.proc.Bcast(root, data)
}

// GatherDoubles implements Thread.
func (m *MessagePassing) GatherDoubles(root int, local []float64, counts []int) ([]float64, error) {
	return m.proc.GatherV(root, local, counts)
}

// ScatterDoubles implements Thread.
func (m *MessagePassing) ScatterDoubles(root int, data []float64, counts []int) ([]float64, error) {
	return m.proc.ScatterV(root, data, counts)
}

// AllgatherU64 implements Thread.
func (m *MessagePassing) AllgatherU64(v uint64) ([]uint64, error) {
	return m.proc.AllgatherU64(v)
}

// SendBytes implements Thread.
func (m *MessagePassing) SendBytes(dst, tag int, data []byte) error {
	return m.proc.Send(dst, tag, data)
}

// RecvBytes implements Thread.
func (m *MessagePassing) RecvBytes(src, tag int) ([]byte, error) {
	b, _, err := m.proc.Recv(src, tag)
	return b, err
}

// mpWindow is the tagged-send window fallback: puts ride mp's
// always-buffered put queue (aliasing the source block — the epoch
// discipline makes that race-free) and the fence drains the expected
// counts into the exposed slice.
type mpWindow struct {
	m      *MessagePassing
	local  []float64
	expect []int
}

// ExposeWindow implements WindowThread, falling back to tagged sends:
// there is no true remote-memory access between mp ranks, but the put
// queue still moves each block with exactly one copy (receiver side)
// and zero encodes.
func (m *MessagePassing) ExposeWindow(local []float64, expectFrom []int) (Window, error) {
	if len(expectFrom) != m.proc.Size() {
		return nil, fmt.Errorf("rts: ExposeWindow expectFrom has %d entries for %d threads",
			len(expectFrom), m.proc.Size())
	}
	return &mpWindow{m: m, local: local, expect: expectFrom}, nil
}

// Put implements Window.
func (w *mpWindow) Put(dst, off int, data []float64) error {
	if dst == w.m.proc.Rank() {
		if off < 0 || off+len(data) > len(w.local) {
			return fmt.Errorf("rts: self put [%d,%d) exceeds window of %d elements",
				off, off+len(data), len(w.local))
		}
		copy(w.local[off:], data)
		return nil
	}
	return w.m.proc.PutF64(dst, off, data)
}

// Fence implements Window.
func (w *mpWindow) Fence() error { return w.m.proc.FenceF64(w.local, w.expect) }

var (
	_ Thread       = (*MessagePassing)(nil)
	_ WindowThread = (*MessagePassing)(nil)
)
