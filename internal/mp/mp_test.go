package mp

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var modes = []SendMode{Eager, Rendezvous}

func TestPointToPoint(t *testing.T) {
	for _, mode := range modes {
		err := Run(2, func(p *Proc) error {
			if p.Rank() == 0 {
				return p.Send(1, 7, []byte("hello"))
			}
			b, st, err := p.Recv(0, 7)
			if err != nil {
				return err
			}
			if string(b) != "hello" || st.Source != 0 || st.Tag != 7 {
				return fmt.Errorf("got %q %+v", b, st)
			}
			return nil
		}, WithSendMode(mode))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, func(p *Proc) error {
		if p.Rank() == 0 {
			data := []byte{1, 2, 3}
			if err := p.Send(1, 0, data); err != nil {
				return err
			}
			data[0] = 99 // must not affect receiver
			return nil
		}
		b, _, err := p.Recv(0, 0)
		if err != nil {
			return err
		}
		if !bytes.Equal(b, []byte{1, 2, 3}) {
			return fmt.Errorf("payload mutated: %v", b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	err := Run(2, func(p *Proc) error {
		if p.Rank() == 0 {
			if err := p.Send(1, 1, []byte("one")); err != nil {
				return err
			}
			return p.Send(1, 2, []byte("two"))
		}
		// Receive out of order by tag.
		b2, _, err := p.Recv(0, 2)
		if err != nil {
			return err
		}
		b1, _, err := p.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(b1) != "one" || string(b2) != "two" {
			return fmt.Errorf("tag matching broken: %q %q", b1, b2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertaking(t *testing.T) {
	// Messages with the same (src, tag) must arrive in send order.
	const N = 50
	err := Run(2, func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < N; i++ {
				if err := p.Send(1, 5, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < N; i++ {
			b, _, err := p.Recv(0, 5)
			if err != nil {
				return err
			}
			if b[0] != byte(i) {
				return fmt.Errorf("message %d overtaken by %d", i, b[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWildcards(t *testing.T) {
	err := Run(3, func(p *Proc) error {
		if p.Rank() != 0 {
			return p.Send(0, p.Rank(), []byte{byte(p.Rank())})
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			b, st, err := p.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if int(b[0]) != st.Source || st.Tag != st.Source {
				return fmt.Errorf("bad status %+v for %v", st, b)
			}
			seen[st.Source] = true
		}
		if !seen[1] || !seen[2] {
			return fmt.Errorf("missing sources: %v", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousBlocksUntilRecv(t *testing.T) {
	w := MustWorld(2, WithSendMode(Rendezvous))
	defer w.Close()
	sent := make(chan struct{})
	go func() {
		_ = w.Rank(0).Send(1, 0, []byte("x"))
		close(sent)
	}()
	select {
	case <-sent:
		t.Fatal("rendezvous send completed before receive")
	case <-time.After(20 * time.Millisecond):
	}
	if _, _, err := w.Rank(1).Recv(0, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sent:
	case <-time.After(time.Second):
		t.Fatal("rendezvous send never completed")
	}
}

func TestF64RoundTrip(t *testing.T) {
	err := Run(2, func(p *Proc) error {
		if p.Rank() == 0 {
			return p.SendF64(1, 3, []float64{1.5, 2.5, -3.25})
		}
		f, _, err := p.RecvF64(0, 3)
		if err != nil {
			return err
		}
		if len(f) != 3 || f[0] != 1.5 || f[2] != -3.25 {
			return fmt.Errorf("f64 payload %v", f)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypeMismatch(t *testing.T) {
	err := Run(2, func(p *Proc) error {
		if p.Rank() == 0 {
			return p.SendF64(1, 0, []float64{1})
		}
		_, _, err := p.Recv(0, 0)
		if !errors.Is(err, ErrTypeMism) {
			return fmt.Errorf("want ErrTypeMism, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBadArguments(t *testing.T) {
	w := MustWorld(2)
	defer w.Close()
	p := w.Rank(0)
	if err := p.Send(5, 0, nil); !errors.Is(err, ErrBadRank) {
		t.Fatalf("bad dst: %v", err)
	}
	if err := p.Send(1, -3, nil); !errors.Is(err, ErrBadTag) {
		t.Fatalf("bad tag: %v", err)
	}
	if _, err := p.Bcast(9, nil); !errors.Is(err, ErrBadRank) {
		t.Fatalf("bad root: %v", err)
	}
	if _, err := NewWorld(0); !errors.Is(err, ErrBadRank) {
		t.Fatalf("bad size: %v", err)
	}
}

func TestBarrier(t *testing.T) {
	for _, size := range []int{1, 2, 4, 8} {
		var mu sync.Mutex
		phase := make(map[int]int)
		err := Run(size, func(p *Proc) error {
			for round := 0; round < 3; round++ {
				mu.Lock()
				phase[p.Rank()] = round
				// Every rank still in this round or the previous
				// barrier exit; never two rounds ahead.
				for r, ph := range phase {
					if ph > round+1 || ph < round-1 {
						mu.Unlock()
						return fmt.Errorf("rank %d at phase %d while rank %d at %d", r, ph, p.Rank(), round)
					}
				}
				mu.Unlock()
				if err := p.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestBarrierActuallyWaits(t *testing.T) {
	w := MustWorld(2)
	defer w.Close()
	done := make(chan struct{})
	go func() {
		_ = w.Rank(0).Barrier()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("barrier released with a missing rank")
	case <-time.After(20 * time.Millisecond):
	}
	go func() { _ = w.Rank(1).Barrier() }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("barrier never released")
	}
}

func TestBcast(t *testing.T) {
	for _, root := range []int{0, 2} {
		err := Run(4, func(p *Proc) error {
			var in []byte
			if p.Rank() == root {
				in = []byte("payload")
			}
			out, err := p.Bcast(root, in)
			if err != nil {
				return err
			}
			if string(out) != "payload" {
				return fmt.Errorf("rank %d got %q", p.Rank(), out)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
	}
}

func TestGatherVScatterV(t *testing.T) {
	counts := []int{3, 0, 2, 5}
	total := 10
	err := Run(4, func(p *Proc) error {
		local := make([]float64, counts[p.Rank()])
		base := 0
		for r := 0; r < p.Rank(); r++ {
			base += counts[r]
		}
		for i := range local {
			local[i] = float64(base + i)
		}
		g, err := p.GatherV(0, local, counts)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			if len(g) != total {
				return fmt.Errorf("gathered %d", len(g))
			}
			for i, v := range g {
				if v != float64(i) {
					return fmt.Errorf("gathered[%d] = %v", i, v)
				}
			}
		} else if g != nil {
			return fmt.Errorf("non-root got gather result")
		}
		// Scatter back and verify each rank recovers its block.
		var data []float64
		if p.Rank() == 0 {
			data = g
		}
		s, err := p.ScatterV(0, data, counts)
		if err != nil {
			return err
		}
		if len(s) != counts[p.Rank()] {
			return fmt.Errorf("scatter size %d", len(s))
		}
		for i, v := range s {
			if v != float64(base+i) {
				return fmt.Errorf("scatter[%d] = %v", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherVErrors(t *testing.T) {
	err := Run(2, func(p *Proc) error {
		if p.Rank() == 0 {
			_, err := p.GatherV(0, []float64{1}, []int{2, 0})
			if err == nil {
				return fmt.Errorf("size mismatch accepted")
			}
			return nil
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherU64(t *testing.T) {
	err := Run(5, func(p *Proc) error {
		got, err := p.AllgatherU64(uint64(p.Rank() * 100))
		if err != nil {
			return err
		}
		for i, v := range got {
			if v != uint64(i*100) {
				return fmt.Errorf("rank %d: allgather[%d] = %d", p.Rank(), i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	err := Run(4, func(p *Proc) error {
		s, err := p.ReduceSum(0, float64(p.Rank()+1))
		if err != nil {
			return err
		}
		if p.Rank() == 0 && s != 10 {
			return fmt.Errorf("sum = %v", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCloseUnblocksReceivers(t *testing.T) {
	w := MustWorld(2)
	done := make(chan error, 1)
	go func() {
		_, _, err := w.Rank(0).Recv(1, 0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("receiver never unblocked")
	}
}

func TestCloseUnblocksRendezvousSender(t *testing.T) {
	w := MustWorld(2, WithSendMode(Rendezvous))
	done := make(chan error, 1)
	go func() {
		done <- w.Rank(0).Send(1, 0, []byte("x"))
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("sender never unblocked")
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := Run(3, func(p *Proc) error {
		if p.Rank() == 1 {
			return sentinel
		}
		// Other ranks block; Close must release them.
		_, _, err := p.Recv(AnySource, AnyTag)
		if errors.Is(err, ErrClosed) {
			return nil
		}
		return err
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

// Property: GatherV(ScatterV(x)) == x for random data and counts.
func TestQuickScatterGatherInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := 1 + r.Intn(6)
		counts := make([]int, size)
		total := 0
		for i := range counts {
			counts[i] = r.Intn(50)
			total += counts[i]
		}
		data := make([]float64, total)
		for i := range data {
			data[i] = r.NormFloat64()
		}
		var back []float64
		err := Run(size, func(p *Proc) error {
			var in []float64
			if p.Rank() == 0 {
				in = data
			}
			blk, err := p.ScatterV(0, in, counts)
			if err != nil {
				return err
			}
			out, err := p.GatherV(0, blk, counts)
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				back = out
			}
			return nil
		})
		if err != nil || len(back) != total {
			return false
		}
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: AllgatherU64 is consistent across all ranks for random
// world sizes and values.
func TestQuickAllgatherConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := 1 + r.Intn(7)
		vals := make([]uint64, size)
		for i := range vals {
			vals[i] = r.Uint64()
		}
		var mu sync.Mutex
		results := make([][]uint64, size)
		err := Run(size, func(p *Proc) error {
			got, err := p.AllgatherU64(vals[p.Rank()])
			if err != nil {
				return err
			}
			mu.Lock()
			results[p.Rank()] = got
			mu.Unlock()
			return nil
		})
		if err != nil {
			return false
		}
		for _, res := range results {
			for i, v := range res {
				if v != vals[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeDoesNotConsume(t *testing.T) {
	err := Run(2, func(p *Proc) error {
		if p.Rank() == 0 {
			return p.Send(1, 4, []byte("probe-me"))
		}
		st, err := p.Probe(0, 4)
		if err != nil || st.Source != 0 || st.Tag != 4 {
			return fmt.Errorf("probe: %+v %v", st, err)
		}
		// The message is still there.
		b, _, err := p.Recv(0, 4)
		if err != nil || string(b) != "probe-me" {
			return fmt.Errorf("recv after probe: %q %v", b, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecv(t *testing.T) {
	w := MustWorld(2)
	defer w.Close()
	p1 := w.Rank(1)
	// Nothing queued: ok=false immediately.
	if _, _, ok, err := p1.TryRecv(0, 3); ok || err != nil {
		t.Fatalf("empty TryRecv: %v %v", ok, err)
	}
	if err := w.Rank(0).Send(1, 3, []byte{7}); err != nil {
		t.Fatal(err)
	}
	b, st, ok, err := p1.TryRecv(0, 3)
	if err != nil || !ok || b[0] != 7 || st.Source != 0 {
		t.Fatalf("TryRecv: %v %v %v %v", b, st, ok, err)
	}
	// Consumed.
	if _, _, ok, _ := p1.TryRecv(0, 3); ok {
		t.Fatal("message not consumed")
	}
}

func TestTryRecvUnblocksRendezvousSender(t *testing.T) {
	w := MustWorld(2, WithSendMode(Rendezvous))
	defer w.Close()
	done := make(chan error, 1)
	go func() { done <- w.Rank(0).Send(1, 0, []byte("x")) }()
	deadline := time.After(2 * time.Second)
	for {
		if _, _, ok, err := w.Rank(1).TryRecv(0, 0); err != nil {
			t.Fatal(err)
		} else if ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("message never arrived")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("rendezvous sender not released by TryRecv")
	}
}

// TestSendOwnedTransfersOwnership pins the ownership contract that
// separates SendOwned from Send: the receiver gets the sender's backing
// array, not a copy. The receiver writes through the received slice,
// and after a barrier (which orders the write before the read) the
// sender observes the write through its original slice. The same
// experiment through Send must leave the original untouched. Run under
// -race, this also proves the handoff itself is properly synchronized.
func TestSendOwnedTransfersOwnership(t *testing.T) {
	for _, owned := range []bool{true, false} {
		payload := make([]byte, 3)
		err := Run(2, func(p *Proc) error {
			if p.Rank() == 0 {
				copy(payload, []byte{1, 2, 3})
				var err error
				if owned {
					err = p.SendOwned(1, 0, payload)
				} else {
					err = p.Send(1, 0, payload)
				}
				if err != nil {
					return err
				}
				if err := p.Barrier(); err != nil {
					return err
				}
				if owned && payload[0] != 99 {
					return fmt.Errorf("SendOwned copied: receiver write not visible, got %v", payload)
				}
				if !owned && payload[0] != 1 {
					return fmt.Errorf("Send aliased: receiver write visible, got %v", payload)
				}
				return nil
			}
			b, _, err := p.Recv(0, 0)
			if err != nil {
				return err
			}
			b[0] = 99
			return p.Barrier()
		})
		if err != nil {
			t.Fatalf("owned=%v: %v", owned, err)
		}
	}
}

func TestSendF64OwnedDelivers(t *testing.T) {
	err := Run(2, func(p *Proc) error {
		if p.Rank() == 0 {
			return p.SendF64Owned(1, 5, []float64{2.5, -1, 8})
		}
		f, st, err := p.RecvF64(0, 5)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 5 || len(f) != 3 || f[0] != 2.5 || f[2] != 8 {
			return fmt.Errorf("got %v %+v", f, st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPutFenceLandsAtOffsets drives the one-sided fallback primitive
// directly: every rank puts its block into every other rank's window
// at a rank-derived offset, and after FenceF64 each window holds the
// full assembled vector.
func TestPutFenceLandsAtOffsets(t *testing.T) {
	const ranks, blk = 4, 8
	err := Run(ranks, func(p *Proc) error {
		window := make([]float64, ranks*blk)
		local := make([]float64, blk)
		for i := range local {
			local[i] = float64(p.Rank()*blk + i)
		}
		for dst := 0; dst < ranks; dst++ {
			if dst == p.Rank() {
				copy(window[p.Rank()*blk:], local)
				continue
			}
			if err := p.PutF64(dst, p.Rank()*blk, local); err != nil {
				return err
			}
		}
		expect := make([]int, ranks)
		for i := range expect {
			expect[i] = 1
		}
		if err := p.FenceF64(window, expect); err != nil {
			return err
		}
		for i := range window {
			if window[i] != float64(i) {
				return fmt.Errorf("rank %d: window[%d] = %v", p.Rank(), i, window[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFencePutBoundsChecked(t *testing.T) {
	err := Run(2, func(p *Proc) error {
		if p.Rank() == 0 {
			// Lands beyond rank 1's 4-element window.
			return p.PutF64(1, 2, []float64{1, 2, 3})
		}
		err := p.FenceF64(make([]float64, 4), []int{1, 0})
		if err == nil {
			return fmt.Errorf("out-of-range put accepted")
		}
		return nil
	})
	// Rank 0 only puts (puts are buffered and never synchronize), and
	// rank 1 fails out of the fence before its closing barrier — so
	// neither rank blocks and Run surfaces only unexpected errors.
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutFenceArgumentErrors(t *testing.T) {
	err := Run(2, func(p *Proc) error {
		if err := p.PutF64(0, -1, nil); err == nil && p.Rank() == 1 {
			return fmt.Errorf("negative offset accepted")
		}
		if err := p.FenceF64(nil, []int{1}); err == nil {
			return fmt.Errorf("short expectFrom accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
