package mp

import "math"

func putU64(b []byte, v uint64) {
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

func getU64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func f64bits(v float64) uint64     { return math.Float64bits(v) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }
