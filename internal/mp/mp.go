// Package mp is a message-passing runtime in the style of MPI: a fixed
// set of ranks exchanging tagged point-to-point messages, plus the
// collective operations (barrier, broadcast, gather, scatter, reduce)
// that PARDIS's centralized argument transfer relies on.
//
// The original PARDIS evaluation used MPICH 1.0.12 compiled for shared
// memory as the run-time system underlying both client and server; mp
// plays that role here, with ranks mapped to goroutines in one address
// space. The PARDIS ORB never calls mp directly — it goes through the
// generic run-time-system interface in package rts, exactly as the
// paper's ORB goes through its RTS interface (figure 1).
//
// Send semantics are configurable per world: Eager sends copy the
// payload and return immediately (MPI buffered mode), Rendezvous sends
// block until a matching receive arrives (MPI synchronous mode — what
// MPICH does for large messages, and the behavior the paper observes:
// "the sends and receives for large data sizes are in practice
// synchronous operations").
package mp

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
)

// Wildcards for Recv matching.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -1
)

// Internal tag space used by collectives; user tags must be >= 0.
const (
	tagBarrierUp = -2 - iota
	tagBarrierDown
	tagBcast
	tagGather
	tagScatter
	tagReduce
	tagAllgather
	tagPut
)

// SendMode selects the point-to-point send protocol.
type SendMode int

const (
	// Eager copies the payload into the receiver's mailbox and
	// returns immediately.
	Eager SendMode = iota
	// Rendezvous blocks the sender until a matching receive consumes
	// the message (synchronous send).
	Rendezvous
)

func (m SendMode) String() string {
	if m == Eager {
		return "eager"
	}
	return "rendezvous"
}

// Errors returned by world operations.
var (
	ErrClosed   = errors.New("mp: world closed")
	ErrBadRank  = errors.New("mp: rank out of range")
	ErrBadTag   = errors.New("mp: user tags must be >= 0")
	ErrTypeMism = errors.New("mp: payload type mismatch between send and receive")
)

// message is one in-flight point-to-point message. Exactly one of b/f
// is set, according to which typed send produced it.
type message struct {
	src, tag int
	b        []byte
	f        []float64
	// off is the destination element offset of a window put (tagPut
	// messages only).
	off  int
	done chan struct{} // non-nil for rendezvous sends
	// consumedFlag records that a rendezvous message was matched
	// rather than aborted; written under the mailbox lock before done
	// is closed, read by the sender only after done is closed.
	consumedFlag bool
}

// mailbox holds unmatched messages destined for one rank.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	msgs   []*message
	closed bool
}

// World is a communicator: Size ranks with a private tag space. All
// ranks must be driven by distinct goroutines; collective calls must
// be entered by every rank.
type World struct {
	size  int
	mode  SendMode
	boxes []*mailbox
	procs []*Proc
}

// Option configures a World.
type Option func(*World)

// WithSendMode selects eager or rendezvous point-to-point sends.
func WithSendMode(m SendMode) Option {
	return func(w *World) { w.mode = m }
}

// NewWorld creates a world of size ranks. Rank handles are retrieved
// with Rank and are not safe for concurrent use by multiple
// goroutines (like an MPI rank, each belongs to one thread).
func NewWorld(size int, opts ...Option) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("%w: world size %d", ErrBadRank, size)
	}
	w := &World{size: size, mode: Eager}
	for _, o := range opts {
		o(w)
	}
	w.boxes = make([]*mailbox, size)
	w.procs = make([]*Proc, size)
	for i := range w.boxes {
		b := &mailbox{}
		b.cond = sync.NewCond(&b.mu)
		w.boxes[i] = b
		w.procs[i] = &Proc{rank: i, w: w}
	}
	return w, nil
}

// MustWorld is NewWorld for statically valid sizes; panics on error.
func MustWorld(size int, opts ...Option) *World {
	w, err := NewWorld(size, opts...)
	if err != nil {
		panic(err)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Mode returns the configured send mode.
func (w *World) Mode() SendMode { return w.mode }

// Rank returns the handle for rank r.
func (w *World) Rank(r int) *Proc { return w.procs[r] }

// Close aborts the world: all pending and future operations return
// ErrClosed. It is safe to call more than once.
func (w *World) Close() {
	for _, b := range w.boxes {
		b.mu.Lock()
		if !b.closed {
			b.closed = true
			// Release any rendezvous senders parked on this box.
			for _, m := range b.msgs {
				if m.done != nil {
					close(m.done)
				}
			}
			b.msgs = nil
		}
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// Run drives fn concurrently on every rank of a fresh world and waits
// for all of them; any error aborts the world and is returned (the
// first one wins). It is the standard harness for SPMD sections.
func Run(size int, fn func(p *Proc) error, opts ...Option) error {
	w, err := NewWorld(size, opts...)
	if err != nil {
		return err
	}
	defer w.Close()
	errc := make(chan error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			if e := fn(p); e != nil {
				errc <- e
				w.Close()
			}
		}(w.Rank(r))
	}
	wg.Wait()
	select {
	case e := <-errc:
		return e
	default:
		return nil
	}
}

// Status describes a received message.
type Status struct {
	Source int
	Tag    int
}

// Proc is one rank's handle into the world.
type Proc struct {
	rank int
	w    *World
}

// Rank returns this handle's rank.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.w.size }

// World returns the world this rank belongs to.
func (p *Proc) World() *World { return p.w }

func (p *Proc) checkDst(dst, tag int, user bool) error {
	if dst < 0 || dst >= p.w.size {
		return fmt.Errorf("%w: dst %d of %d", ErrBadRank, dst, p.w.size)
	}
	if user && tag < 0 {
		return fmt.Errorf("%w: tag %d", ErrBadTag, tag)
	}
	return nil
}

func (p *Proc) send(dst int, m *message) error {
	box := p.w.boxes[dst]
	if p.w.mode == Rendezvous {
		m.done = make(chan struct{})
	}
	box.mu.Lock()
	if box.closed {
		box.mu.Unlock()
		return ErrClosed
	}
	box.msgs = append(box.msgs, m)
	box.cond.Broadcast()
	box.mu.Unlock()
	if m.done != nil {
		<-m.done
		// Distinguish "consumed by receiver" from "world closed".
		box.mu.Lock()
		closed := box.closed
		box.mu.Unlock()
		if closed && !m.consumedFlag {
			return ErrClosed
		}
	}
	return nil
}

// consumedFlag records that a rendezvous message was matched rather
// than aborted; it is written under the mailbox lock before done is
// closed, and read by the sender only after done is closed.
func (m *message) markConsumed() { m.consumedFlag = true }

// Send delivers a byte payload to rank dst with the given tag. The
// payload is copied; the caller keeps ownership of data.
func (p *Proc) Send(dst, tag int, data []byte) error {
	return p.sendTagged(dst, tag, data, true)
}

func (p *Proc) sendTagged(dst, tag int, data []byte, user bool) error {
	if err := p.checkDst(dst, tag, user); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return p.send(dst, &message{src: p.rank, tag: tag, b: cp})
}

// SendF64 delivers a float64 payload to rank dst; the slice is copied.
func (p *Proc) SendF64(dst, tag int, data []float64) error {
	return p.sendF64Tagged(dst, tag, data, true)
}

func (p *Proc) sendF64Tagged(dst, tag int, data []float64, user bool) error {
	if err := p.checkDst(dst, tag, user); err != nil {
		return err
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	return p.send(dst, &message{src: p.rank, tag: tag, f: cp})
}

// SendOwned delivers a byte payload without the defensive copy Send
// pays: ownership of data transfers to the runtime and then to the
// receiver, so the caller must not read or write the slice after the
// call returns. It is the ownership-transferring mode for senders that
// build a fresh buffer per message anyway — the copy Send would add is
// pure waste there.
func (p *Proc) SendOwned(dst, tag int, data []byte) error {
	if err := p.checkDst(dst, tag, true); err != nil {
		return err
	}
	return p.send(dst, &message{src: p.rank, tag: tag, b: data})
}

// SendF64Owned is SendOwned for float64 payloads.
func (p *Proc) SendF64Owned(dst, tag int, data []float64) error {
	if err := p.checkDst(dst, tag, true); err != nil {
		return err
	}
	return p.send(dst, &message{src: p.rank, tag: tag, f: data})
}

// PutF64 deposits data into rank dst's put queue together with a
// destination element offset — the tagged-send fallback of the
// one-sided window primitive. data is aliased, never copied: the
// window discipline (no writer touches the source block between the
// put and the closing FenceF64) is what makes that safe. Puts are
// always buffered regardless of the world's send mode, because a
// one-sided put does not synchronize with its target.
func (p *Proc) PutF64(dst, off int, data []float64) error {
	if err := p.checkDst(dst, 0, false); err != nil {
		return err
	}
	if off < 0 {
		return fmt.Errorf("mp: negative put offset %d", off)
	}
	box := p.w.boxes[dst]
	box.mu.Lock()
	if box.closed {
		box.mu.Unlock()
		return ErrClosed
	}
	box.msgs = append(box.msgs, &message{src: p.rank, tag: tagPut, f: data, off: off})
	box.cond.Broadcast()
	box.mu.Unlock()
	return nil
}

// FenceF64 completes a put epoch: it drains the expected puts from
// every other rank, landing each into window[off:off+len] with bounds
// checking, then barriers — so when FenceF64 returns on every rank,
// every put of the epoch has landed and a new epoch may begin.
// expectFrom[src] is the number of puts rank src directed here;
// expectFrom[p.Rank()] is ignored (self-puts are local copies above
// this layer). The closing barrier is what keeps epochs from mixing:
// no rank can start the next epoch's puts until every rank has drained
// this one.
func (p *Proc) FenceF64(window []float64, expectFrom []int) error {
	if len(expectFrom) != p.w.size {
		return fmt.Errorf("mp: FenceF64 expectFrom has %d entries for %d ranks",
			len(expectFrom), p.w.size)
	}
	remaining := 0
	for src, n := range expectFrom {
		if src != p.rank {
			remaining += n
		}
	}
	for ; remaining > 0; remaining-- {
		m, err := p.recvMatch(AnySource, tagPut)
		if err != nil {
			return err
		}
		end := m.off + len(m.f)
		if end > len(window) {
			return fmt.Errorf("mp: put [%d,%d) from rank %d exceeds window of %d elements",
				m.off, end, m.src, len(window))
		}
		copy(window[m.off:end], m.f)
	}
	return p.Barrier()
}

// recvMatch blocks until a message matching (src, tag) is available in
// this rank's mailbox and removes it. Wildcards AnySource/AnyTag match
// anything. Matching is FIFO among eligible messages, which preserves
// MPI's non-overtaking guarantee per (source, tag) pair.
func (p *Proc) recvMatch(src, tag int) (*message, error) {
	box := p.w.boxes[p.rank]
	box.mu.Lock()
	defer box.mu.Unlock()
	for {
		if box.closed {
			return nil, ErrClosed
		}
		for i, m := range box.msgs {
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				box.msgs = append(box.msgs[:i], box.msgs[i+1:]...)
				if m.done != nil {
					m.markConsumed()
					close(m.done)
				}
				return m, nil
			}
		}
		box.cond.Wait()
	}
}

// Probe blocks until a message matching (src, tag) is available
// without consuming it, returning its envelope — MPI_Probe.
func (p *Proc) Probe(src, tag int) (Status, error) {
	box := p.w.boxes[p.rank]
	box.mu.Lock()
	defer box.mu.Unlock()
	for {
		if box.closed {
			return Status{}, ErrClosed
		}
		for _, m := range box.msgs {
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				return Status{Source: m.src, Tag: m.tag}, nil
			}
		}
		box.cond.Wait()
	}
}

// TryRecv is a non-blocking receive: if a matching byte message is
// queued it is consumed and returned with ok=true; otherwise ok=false
// without blocking — the MPI_Iprobe+recv idiom.
func (p *Proc) TryRecv(src, tag int) (data []byte, st Status, ok bool, err error) {
	box := p.w.boxes[p.rank]
	box.mu.Lock()
	defer box.mu.Unlock()
	if box.closed {
		return nil, Status{}, false, ErrClosed
	}
	for i, m := range box.msgs {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			if m.f != nil {
				return nil, Status{}, false, fmt.Errorf("%w: float64 payload via TryRecv", ErrTypeMism)
			}
			box.msgs = append(box.msgs[:i], box.msgs[i+1:]...)
			if m.done != nil {
				m.markConsumed()
				close(m.done)
			}
			return m.b, Status{Source: m.src, Tag: m.tag}, true, nil
		}
	}
	return nil, Status{}, false, nil
}

// Recv blocks until a byte message matching (src, tag) arrives.
func (p *Proc) Recv(src, tag int) ([]byte, Status, error) {
	m, err := p.recvMatch(src, tag)
	if err != nil {
		return nil, Status{}, err
	}
	if m.f != nil {
		return nil, Status{}, fmt.Errorf("%w: received float64 payload via Recv", ErrTypeMism)
	}
	return m.b, Status{Source: m.src, Tag: m.tag}, nil
}

// RecvF64 blocks until a float64 message matching (src, tag) arrives.
func (p *Proc) RecvF64(src, tag int) ([]float64, Status, error) {
	m, err := p.recvMatch(src, tag)
	if err != nil {
		return nil, Status{}, err
	}
	if m.b != nil && m.f == nil {
		return nil, Status{}, fmt.Errorf("%w: received byte payload via RecvF64", ErrTypeMism)
	}
	return m.f, Status{Source: m.src, Tag: m.tag}, nil
}

// Barrier blocks until every rank has entered it. Implemented as a
// gather-to-0 followed by a broadcast, which is what small-way MPICH
// does on shared memory.
func (p *Proc) Barrier() error {
	if p.w.size == 1 {
		return nil
	}
	if p.rank == 0 {
		for i := 1; i < p.w.size; i++ {
			if _, _, err := p.Recv(AnySource, tagBarrierUp); err != nil {
				return err
			}
		}
		for i := 1; i < p.w.size; i++ {
			if err := p.sendTagged(i, tagBarrierDown, nil, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := p.sendTagged(0, tagBarrierUp, nil, false); err != nil {
		return err
	}
	_, _, err := p.Recv(0, tagBarrierDown)
	return err
}

// Bcast distributes root's byte payload to every rank; every rank
// returns the payload.
func (p *Proc) Bcast(root int, data []byte) ([]byte, error) {
	if root < 0 || root >= p.w.size {
		return nil, fmt.Errorf("%w: root %d", ErrBadRank, root)
	}
	if p.rank == root {
		for i := 0; i < p.w.size; i++ {
			if i == root {
				continue
			}
			if err := p.sendTagged(i, tagBcast, data, false); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	b, _, err := p.Recv(root, tagBcast)
	return b, err
}

// GatherV gathers variable-size float64 blocks to root. counts[r] is
// the number of elements rank r contributes; every rank must pass the
// same counts. At root the return value is the concatenation in rank
// order; at other ranks it is nil.
func (p *Proc) GatherV(root int, local []float64, counts []int) ([]float64, error) {
	if root < 0 || root >= p.w.size {
		return nil, fmt.Errorf("%w: root %d", ErrBadRank, root)
	}
	if len(counts) != p.w.size {
		return nil, fmt.Errorf("mp: GatherV counts has %d entries for %d ranks", len(counts), p.w.size)
	}
	if len(local) != counts[p.rank] {
		return nil, fmt.Errorf("mp: GatherV rank %d contributes %d elements, counts says %d",
			p.rank, len(local), counts[p.rank])
	}
	if p.rank != root {
		return nil, p.sendF64Tagged(root, tagGather, local, false)
	}
	total := 0
	offs := make([]int, p.w.size+1)
	for i, c := range counts {
		offs[i+1] = offs[i] + c
		total += c
	}
	out := make([]float64, total)
	copy(out[offs[root]:], local)
	for i := 0; i < p.w.size; i++ {
		if i == root {
			continue
		}
		blk, _, err := p.RecvF64(i, tagGather)
		if err != nil {
			return nil, err
		}
		if len(blk) != counts[i] {
			return nil, fmt.Errorf("mp: GatherV rank %d sent %d elements, counts says %d",
				i, len(blk), counts[i])
		}
		copy(out[offs[i]:], blk)
	}
	return out, nil
}

// ScatterV splits data at root into blocks of counts[r] elements and
// delivers block r to rank r; every rank returns its block. data is
// only read at root.
func (p *Proc) ScatterV(root int, data []float64, counts []int) ([]float64, error) {
	if root < 0 || root >= p.w.size {
		return nil, fmt.Errorf("%w: root %d", ErrBadRank, root)
	}
	if len(counts) != p.w.size {
		return nil, fmt.Errorf("mp: ScatterV counts has %d entries for %d ranks", len(counts), p.w.size)
	}
	if p.rank == root {
		total := 0
		for _, c := range counts {
			total += c
		}
		if len(data) != total {
			return nil, fmt.Errorf("mp: ScatterV data has %d elements, counts sum to %d", len(data), total)
		}
		off := 0
		var mine []float64
		for i, c := range counts {
			blk := data[off : off+c]
			off += c
			if i == root {
				mine = make([]float64, c)
				copy(mine, blk)
				continue
			}
			if err := p.sendF64Tagged(i, tagScatter, blk, false); err != nil {
				return nil, err
			}
		}
		return mine, nil
	}
	blk, _, err := p.RecvF64(root, tagScatter)
	return blk, err
}

// AllgatherU64 gathers one uint64 from every rank to every rank, in
// rank order. It is the primitive behind the identical-scalar-argument
// consistency check in SPMD invocations.
func (p *Proc) AllgatherU64(v uint64) ([]uint64, error) {
	enc := make([]byte, 8)
	putU64(enc, v)
	if p.rank == 0 {
		out := make([]uint64, p.w.size)
		out[0] = v
		for i := 1; i < p.w.size; i++ {
			b, st, err := p.Recv(AnySource, tagAllgather)
			if err != nil {
				return nil, err
			}
			out[st.Source] = getU64(b)
		}
		flat := make([]byte, 8*p.w.size)
		for i, x := range out {
			putU64(flat[i*8:], x)
		}
		for i := 1; i < p.w.size; i++ {
			if err := p.sendTagged(i, tagAllgather, flat, false); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if err := p.sendTagged(0, tagAllgather, enc, false); err != nil {
		return nil, err
	}
	flat, _, err := p.Recv(0, tagAllgather)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, p.w.size)
	for i := range out {
		out[i] = getU64(flat[i*8:])
	}
	return out, nil
}

// ReduceSum reduces float64 values by summation to root; non-root
// ranks return 0.
func (p *Proc) ReduceSum(root int, v float64) (float64, error) {
	vals, err := p.AllgatherF64(v)
	if err != nil {
		return 0, err
	}
	if p.rank != root {
		return 0, nil
	}
	sum := 0.0
	for _, x := range vals {
		sum += x
	}
	return sum, nil
}

// AllgatherF64 gathers one float64 from every rank to every rank.
func (p *Proc) AllgatherF64(v float64) ([]float64, error) {
	bits, err := p.AllgatherU64(f64bits(v))
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(bits))
	for i, b := range bits {
		out[i] = f64frombits(b)
	}
	return out, nil
}

// HashBytes is the canonical digest used for cross-rank consistency
// checks of non-distributed arguments.
func HashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
