package spmd

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/orb"
	"pardis/internal/rts"
)

// TestLeaseTableSweep pins the table semantics: acquire creates and
// renews, touch renews but never creates, sweep expires exactly the
// silent leases and closes their channels.
func TestLeaseTableSweep(t *testing.T) {
	lt := newLeaseTable(100 * time.Millisecond)
	a := lt.acquire(1)
	lt.acquire(2)
	if lt.size() != 2 {
		t.Fatalf("size = %d, want 2", lt.size())
	}
	// touch must not fabricate a lease for an unknown client.
	lt.touch(3)
	if lt.size() != 2 {
		t.Fatalf("stray touch created a lease: size = %d", lt.size())
	}
	// A fresh sweep expires nothing.
	if n := lt.sweep(time.Now()); n != 0 {
		t.Fatalf("fresh sweep expired %d leases", n)
	}
	// Renew client 1 into the future, then sweep past client 2's TTL.
	a.last.Store(time.Now().Add(time.Second).UnixNano())
	if n := lt.sweep(time.Now().Add(200 * time.Millisecond)); n != 1 {
		t.Fatalf("sweep expired %d leases, want 1", n)
	}
	if lt.size() != 1 {
		t.Fatalf("size after sweep = %d, want 1", lt.size())
	}
	select {
	case <-a.expired:
		t.Fatal("renewed lease's expired channel closed")
	default:
	}
	lt.drop()
	if lt.size() != 0 {
		t.Fatalf("size after drop = %d, want 0", lt.size())
	}
}

// TestFaultLeaseReclaimsAbandonedTransfer is the headline reclamation
// scenario: a client engages the collective (the invocation control
// reaches every rank and every rank registers a block sink) and then
// dies without shipping a single argument block. Lease expiry must
// unwind every rank's wait, reclaim every block sink, answer the
// orphaned request with a timeout-class verdict, and leave the object
// serving other clients.
func TestFaultLeaseReclaimsAbandonedTransfer(t *testing.T) {
	reg := newReg()
	obj := startObjectCfg(t, reg, 3, true, diffusionOps, func(cfg *ObjectConfig) {
		cfg.LeaseTTL = 150 * time.Millisecond
	})

	// The dying client: raw control traffic only, declaring a
	// multi-port inout argument it will never send.
	cli := orb.NewClient(reg)
	scal := cdr.NewEncoder(cdr.BigEndian)
	scal.PutOctet(byte(cdr.BigEndian))
	inner := cdr.NewEncoderAt(cdr.BigEndian, 1)
	inner.PutLong(1)
	scal.PutOctets(inner.Bytes())
	hdr := giop.RequestHeader{
		InvocationID:     cli.NewInvocationID(),
		ResponseExpected: true,
		ObjectKey:        obj.ref.Key,
		Operation:        "diffusion",
		ThreadRank:       0,
		ThreadCount:      1,
	}
	w := &invocationWire{Method: MultiPort, Scalars: scal.Bytes(),
		Args: []*argWire{{Mode: InOut, Length: 300, ClientCounts: []int{300},
			ClientEndpoints: []string{"inproc:nowhere"}}}}
	done := make(chan error, 1)
	go func() {
		_, _, _, err := cli.Invoke(context.Background(), obj.ref.Endpoints[0], hdr, w.encode)
		done <- err
	}()

	// Every rank parks in block assembly; the lease expires TTL later
	// and the communicator reports the abandoned dispatch as a timeout.
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("abandoned invocation succeeded without its blocks")
		}
		if !errors.Is(err, orb.ErrDeadlineExpired) {
			t.Fatalf("abandoned invocation: want a TIMEOUT-class error, got %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("abandoned invocation never unwound — lease expiry did not fire")
	}
	cli.Close()

	// Every rank's block sink and lease must be reclaimed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		sinks, leases := 0, 0
		for _, o := range obj.threadObjects() {
			if o == nil {
				continue
			}
			st := o.BlockStats()
			sinks += st.Sinks + st.Pending
			leases += o.Leases()
		}
		if sinks == 0 && leases == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank state not reclaimed: %d sinks/pending, %d leases", sinks, leases)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The object must still serve a well-behaved client end to end.
	runClient(t, reg, 2, MultiPort, obj.ref, func(b *Binding, th rts.Thread) error {
		return invokeDiffusion(b, th, 200, 2)
	})

	// And every serve loop must unwind cleanly — no rank is stranded
	// in a dispatch the dead client abandoned.
	obj.close()
	for i := 0; i < 3; i++ {
		select {
		case <-obj.donech:
		case <-time.After(20 * time.Second):
			t.Fatal("a server thread did not unwind after Close")
		}
	}
}

// TestFaultLeaseExpiresAbandonedBind covers the client killed between
// _spmd_bind and its first invocation: the bind's describe traffic
// created leases, and with no invocation (and no renew pings) they
// must expire and leave zero rank-side state behind.
func TestFaultLeaseExpiresAbandonedBind(t *testing.T) {
	reg := newReg()
	obj := startObjectCfg(t, reg, 2, true, diffusionOps, func(cfg *ObjectConfig) {
		cfg.LeaseTTL = 80 * time.Millisecond
	})
	defer obj.close()

	b, w, err := BindPlain(context.Background(), reg, MultiPort, "inproc:*", obj.ref)
	if err != nil {
		t.Fatal(err)
	}
	total := func() int {
		n := 0
		for _, o := range obj.threadObjects() {
			if o != nil {
				n += o.Leases()
			}
		}
		return n
	}
	if total() == 0 {
		t.Fatal("bind left no lease — describe traffic did not acquire one")
	}
	// The client dies here: no invoke, no renew, no close handshake.
	deadline := time.Now().Add(10 * time.Second)
	for total() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d leases survived an abandoned bind", total())
		}
		time.Sleep(10 * time.Millisecond)
	}
	b.Close()
	w.Close()
}

// TestLeaseRenewKeepsIdleBindingAlive: an idle-but-alive binding keeps
// its lease with explicit Renew pings across several TTLs, and can
// still invoke afterwards.
func TestLeaseRenewKeepsIdleBindingAlive(t *testing.T) {
	reg := newReg()
	obj := startObjectCfg(t, reg, 2, true, diffusionOps, func(cfg *ObjectConfig) {
		cfg.LeaseTTL = 100 * time.Millisecond
	})
	defer obj.close()
	runClient(t, reg, 1, MultiPort, obj.ref, func(b *Binding, th rts.Thread) error {
		stop := time.Now().Add(400 * time.Millisecond)
		for time.Now().Before(stop) {
			if err := b.Renew(context.Background()); err != nil {
				return err
			}
			time.Sleep(20 * time.Millisecond)
		}
		n := 0
		for _, o := range obj.threadObjects() {
			if o != nil {
				n += o.Leases()
			}
		}
		if n == 0 {
			return fmt.Errorf("lease expired despite renew pings")
		}
		return invokeDiffusion(b, th, 100, 1)
	})
}
