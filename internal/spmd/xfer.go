// Parallel SPMD data plane: the shared machinery both sides of a
// multi-port transfer use to ship and assemble distributed-argument
// blocks.
//
// Sending: sendPlanBlocks fans a thread's share of a transfer plan out
// to the destination threads with a bounded in-flight window, after
// splitting oversized blocks into pipelined chunks (dist.Chunk), so
// the encode of chunk N overlaps the write of chunk N-1 and transfers
// to different ranks ride different connections simultaneously.
// Chunks also stay under the pooled-encoder retention cap, so the
// encode path reuses pooled buffers instead of allocating
// multi-megabyte one-offs.
//
// Receiving: blockAssembler decodes each arriving block straight into
// the destination slice (DoubleSeqInto — no intermediate copy) on the
// delivering connection's read goroutine, counting elements rather
// than messages, so chunks may arrive out of order, interleaved
// across senders, and concurrently. Safety argument: the transfer
// plan partitions the destination index space, every block carries
// its own disjoint [DstOff, DstOff+Count) window (bounds-checked
// before decode), and completion is the element count reaching the
// planned total — so no ordering between blocks is ever required.
package spmd

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pardis/internal/cdr"
	"pardis/internal/dist"
	"pardis/internal/giop"
	"pardis/internal/orb"
	"pardis/internal/telemetry"
	"pardis/internal/tune"
)

// Package-wide data-plane defaults, overridable per binding/object via
// BindConfig/ObjectConfig and process-wide via the -xfer-window /
// -xfer-chunk flags of pardisd and pardis-bench.
var (
	// DefaultXferWindow is the default bound on concurrently in-flight
	// block sends per transfer (0 = min(4, GOMAXPROCS)).
	DefaultXferWindow = 0
	// DefaultXferChunkBytes is the default payload-size threshold above
	// which a block is split into pipelined chunks (<0 disables
	// chunking). 256 KiB keeps chunks inside the pooled-encoder
	// retention cap.
	DefaultXferChunkBytes = 256 << 10
	// DefaultPeerXfer enables the one-sided peer data plane (window
	// puts straight into the destination rank's registered slice) when
	// both sides are capable. The PeerXfer knobs default to it; a
	// negative knob forces the routed block path.
	DefaultPeerXfer = true
	// DefaultAutoTune resolves the per-endpoint self-tuning transport
	// (AutoTune knobs on BindConfig/ObjectConfig; the pardisd and
	// pardis-bench -auto-tune flags flip it process-wide). Off by
	// default: tuning changes knobs between transfers, which A/B
	// benchmarks and wire-identical tests must be able to rely on not
	// happening.
	DefaultAutoTune = false
)

// AutoTuner is the process-wide path estimator self-tuning bindings
// and objects share: transfer engines feed it per-transfer
// bytes/seconds (plus the bind-time RTT probe) and re-resolve their
// chunk, window and stripe knobs from it before every transfer.
// Sharing one tuner means every binding to the same endpoint benefits
// from every other binding's samples.
var AutoTuner = tune.New(tune.Config{})

// resolveAutoTune maps an AutoTune knob to the effective wish:
// 0 = package default, negative = off.
func resolveAutoTune(v int) bool {
	if v == 0 {
		return DefaultAutoTune
	}
	return v > 0
}

// ResolvedXferWindow reports the effective process-wide default
// transfer window (what a zero XferWindow config resolves to).
func ResolvedXferWindow() int { return resolveWindow(0) }

// ResolvedXferChunkBytes reports the effective process-wide default
// chunk threshold in bytes (0 when chunking is disabled).
func ResolvedXferChunkBytes() int { return resolveChunkElems(0) * 8 }

// ResolvedPeerXfer reports the effective process-wide default peer
// data-plane wish.
func ResolvedPeerXfer() bool { return resolvePeer(0) }

// tunedKnobs re-resolves (window, chunkElems) from the shared tuner
// for one transfer, falling back to the statically resolved values
// until the path has enough samples.
func tunedKnobs(pathKey string, window, chunkElems int) (int, int) {
	rec, ok := AutoTuner.Recommend(pathKey)
	if !ok {
		return window, chunkElems
	}
	return rec.XferWindow, max(rec.XferChunkBytes/8, 1)
}

// resolveWindow maps a config value to an effective send window:
// 0 = package default, negative = serial (window 1).
func resolveWindow(w int) int {
	if w == 0 {
		w = DefaultXferWindow
	}
	if w == 0 {
		w = min(4, runtime.GOMAXPROCS(0))
	}
	return max(w, 1)
}

// resolveChunkElems maps a config byte threshold to a per-chunk
// element cap for float64 payloads: 0 = package default, negative =
// chunking disabled.
func resolveChunkElems(bytes int) int {
	if bytes == 0 {
		bytes = DefaultXferChunkBytes
	}
	if bytes < 0 {
		return 0
	}
	return max(bytes/8, 1)
}

// resolvePeer maps a PeerXfer knob to the effective peer-data-plane
// wish: 0 = package default, negative = routed only.
func resolvePeer(v int) bool {
	if v == 0 {
		return DefaultPeerXfer
	}
	return v > 0
}

// Interned once: the data-plane counters are touched per chunk.
var (
	blocksInflight = telemetry.Default.Gauge("pardis_spmd_blocks_inflight")
	chunkBytesHist = telemetry.Default.HistogramWithBuckets("pardis_spmd_chunk_bytes",
		[]float64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20})
	// peerBlocksTotal counts window-put chunks shipped over the peer
	// data plane (the direct counterpart of routed block transfers).
	peerBlocksTotal = telemetry.Default.Counter("pardis_spmd_peer_blocks_total")
	// peerFallback* count transfers that wanted the peer plane but took
	// the routed path, by reason: the knob disabled it, or the remote
	// endpoint did not advertise the capability.
	peerFallbackDisabled = telemetry.Default.Counter("pardis_spmd_peer_fallback_total", "reason", "disabled")
	peerFallbackEndpoint = telemetry.Default.Counter("pardis_spmd_peer_fallback_total", "reason", "endpoint")
)

// blockSender abstracts orb.Client.SendBlock for the shared send path.
type blockSender interface {
	SendBlock(endpoint string, hdr giop.BlockTransferHeader, payload func(*cdr.Encoder)) (int, error)
}

// sendPlanBlocks ships rank's share of a block-transfer plan for one
// argument, chunked and windowed. endpointFor maps a destination
// thread to its endpoint. It returns the total encoded payload bytes
// shipped (actual wire accounting, any element type).
//
// With window <= 1 and chunkElems == 0 the sends are issued serially
// in plan order — byte-identical wire traffic to the legacy serial
// path (pinned by TestSerialWireIdentical).
func sendPlanBlocks(oc blockSender, inv uint64, argIdx uint32, rank int,
	plan []dist.Transfer, local []float64, endpointFor func(int) string,
	window, chunkElems int) (uint64, error) {
	if _, err := giop.BlockSinkKey(inv, argIdx); err != nil {
		return 0, err
	}
	mine := dist.PlanFor(plan, rank)
	if len(mine) == 0 {
		return 0, nil
	}
	for _, tr := range mine {
		if err := giop.CheckBlockRange(tr.DstOff, tr.Count); err != nil {
			return 0, err
		}
	}
	mine = dist.Chunk(mine, chunkElems)
	lastIdx := make(map[int]int, len(mine))
	for idx, tr := range mine {
		lastIdx[tr.To] = idx
	}
	header := func(idx int, tr dist.Transfer) giop.BlockTransferHeader {
		return giop.BlockTransferHeader{
			InvocationID: inv<<8 | uint64(argIdx),
			ArgIndex:     argIdx,
			FromThread:   int32(rank),
			ToThread:     int32(tr.To),
			DstOff:       uint32(tr.DstOff),
			Count:        uint32(tr.Count),
			Last:         lastIdx[tr.To] == idx,
		}
	}

	if window <= 1 || len(mine) == 1 {
		var total uint64
		for idx, tr := range mine {
			blk := local[tr.SrcOff : tr.SrcOff+tr.Count]
			blocksInflight.Inc()
			n, err := oc.SendBlock(endpointFor(tr.To), header(idx, tr),
				func(e *cdr.Encoder) { e.PutDoubleSeq(blk) })
			blocksInflight.Dec()
			chunkBytesHist.Observe(float64(n))
			if err != nil {
				return total, err
			}
			total += uint64(n)
		}
		return total, nil
	}

	var (
		sem      = make(chan struct{}, window)
		wg       sync.WaitGroup
		total    atomic.Uint64
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
	)
	for idx, tr := range mine {
		if failed.Load() {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		blocksInflight.Inc()
		go func(idx int, tr dist.Transfer) {
			defer func() {
				blocksInflight.Dec()
				<-sem
				wg.Done()
			}()
			blk := local[tr.SrcOff : tr.SrcOff+tr.Count]
			n, err := oc.SendBlock(endpointFor(tr.To), header(idx, tr),
				func(e *cdr.Encoder) { e.PutDoubleSeq(blk) })
			chunkBytesHist.Observe(float64(n))
			if err != nil {
				if failed.CompareAndSwap(false, true) {
					errMu.Lock()
					firstErr = err
					errMu.Unlock()
				}
				return
			}
			total.Add(uint64(n))
		}(idx, tr)
	}
	wg.Wait()
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	return total.Load(), err
}

// peerPutter abstracts orb.Client.PutWindow for the peer send path.
type peerPutter interface {
	PutWindow(endpoint string, hdr giop.WindowPutHeader, blk []float64) (int, error)
}

// sendPlanPuts is sendPlanBlocks' one-sided twin: rank's share of the
// plan ships as MsgWindowPut frames straight to the destination ranks'
// endpoints, landing in the window they registered under
// BlockSinkKey(inv, argIdx) — no CDR sequence framing, no sink hop,
// and (native order) no payload copy on either side. Chunking and the
// in-flight window work exactly as on the routed path, and the same
// plan-derived bounds checks apply before anything is sent.
func sendPlanPuts(pc peerPutter, inv uint64, argIdx uint32, rank int,
	plan []dist.Transfer, local []float64, endpointFor func(int) string,
	window, chunkElems int) (uint64, error) {
	key, err := giop.BlockSinkKey(inv, argIdx)
	if err != nil {
		return 0, err
	}
	mine := dist.PlanFor(plan, rank)
	if len(mine) == 0 {
		return 0, nil
	}
	for _, tr := range mine {
		if err := giop.CheckBlockRange(tr.DstOff, tr.Count); err != nil {
			return 0, err
		}
	}
	mine = dist.Chunk(mine, chunkElems)
	lastIdx := make(map[int]int, len(mine))
	for idx, tr := range mine {
		lastIdx[tr.To] = idx
	}
	header := func(idx int, tr dist.Transfer) giop.WindowPutHeader {
		return giop.WindowPutHeader{
			WindowID:   key,
			FromThread: int32(rank),
			DstOff:     uint32(tr.DstOff),
			Count:      uint32(tr.Count),
			Last:       lastIdx[tr.To] == idx,
		}
	}

	if window <= 1 || len(mine) == 1 {
		var total uint64
		for idx, tr := range mine {
			blk := local[tr.SrcOff : tr.SrcOff+tr.Count]
			blocksInflight.Inc()
			n, err := pc.PutWindow(endpointFor(tr.To), header(idx, tr), blk)
			blocksInflight.Dec()
			peerBlocksTotal.Inc()
			chunkBytesHist.Observe(float64(n))
			if err != nil {
				return total, err
			}
			total += uint64(n)
		}
		return total, nil
	}

	var (
		sem      = make(chan struct{}, window)
		wg       sync.WaitGroup
		total    atomic.Uint64
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
	)
	for idx, tr := range mine {
		if failed.Load() {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		blocksInflight.Inc()
		go func(idx int, tr dist.Transfer) {
			defer func() {
				blocksInflight.Dec()
				<-sem
				wg.Done()
			}()
			blk := local[tr.SrcOff : tr.SrcOff+tr.Count]
			n, err := pc.PutWindow(endpointFor(tr.To), header(idx, tr), blk)
			peerBlocksTotal.Inc()
			chunkBytesHist.Observe(float64(n))
			if err != nil {
				if failed.CompareAndSwap(false, true) {
					errMu.Lock()
					firstErr = err
					errMu.Unlock()
				}
				return
			}
			total.Add(uint64(n))
		}(idx, tr)
	}
	wg.Wait()
	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	return total.Load(), err
}

// waitWindow awaits a registered destination window the way
// blockAssembler.wait awaits routed assembly: until completion (or
// window failure), context cancellation, close, or lease expiry.
func waitWindow(w *orb.Window, ctx contextDoner, closed, expired <-chan struct{}) error {
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case <-w.Done():
		return w.Err()
	case <-ctxDone:
		return ctx.Err()
	case <-closed:
		return ErrClosed
	case <-expired:
		return ErrLeaseExpired
	}
}

// blockAssembler collects one (argument, receiver-rank) transfer's
// blocks, decoding each straight into the destination slice. accept
// runs on connection read goroutines and is safe for concurrent use:
// blocks write disjoint destination windows, and completion is
// tracked as an element count so arrival order is irrelevant.
type blockAssembler struct {
	rank   int
	local  []float64
	expect int64
	got    atomic.Int64
	nbytes atomic.Uint64 // encoded payload bytes accepted
	done   chan struct{}
	once   sync.Once
	mu     sync.Mutex
	err    error
}

// newBlockAssembler expects `expect` total elements addressed to rank
// landing in local. An expectation of zero is complete immediately.
func newBlockAssembler(rank int, local []float64, expect int) *blockAssembler {
	a := &blockAssembler{rank: rank, local: local, expect: int64(expect),
		done: make(chan struct{})}
	if expect <= 0 {
		a.once.Do(func() { close(a.done) })
	}
	return a
}

// finish records the terminal state (first error wins) and wakes
// waiters.
func (a *blockAssembler) finish(err error) error {
	a.mu.Lock()
	if err != nil && a.err == nil {
		a.err = err
	}
	a.mu.Unlock()
	a.once.Do(func() { close(a.done) })
	return err
}

// accept decodes one block into the destination. A non-nil return
// also tears down the delivering connection (the sender violated the
// plan or the payload is undecodable).
func (a *blockAssembler) accept(blk orb.Block) error {
	h := blk.Header
	if int(h.ToThread) != a.rank {
		return a.finish(fmt.Errorf("%w: block addressed to thread %d arrived at %d",
			ErrBadCall, h.ToThread, a.rank))
	}
	end := int(h.DstOff) + int(h.Count)
	if end > len(a.local) {
		return a.finish(fmt.Errorf("%w: block [%d,%d) overflows local block of %d",
			ErrBadCall, h.DstOff, end, len(a.local)))
	}
	d := cdr.NewDecoderAt(blk.Order, blk.Payload, blockPayloadBase(h, blk.Order))
	// The three-index slice caps capacity at the block's window, so
	// the decoder fills it in place and cannot write beyond it.
	data, err := d.DoubleSeqInto(a.local[h.DstOff:h.DstOff:end])
	if err != nil {
		return a.finish(err)
	}
	if len(data) != int(h.Count) {
		return a.finish(fmt.Errorf("%w: block count %d, payload %d",
			ErrBadCall, h.Count, len(data)))
	}
	a.nbytes.Add(uint64(len(blk.Payload)))
	got := a.got.Add(int64(h.Count))
	if got > a.expect {
		return a.finish(fmt.Errorf("%w: received %d of %d expected elements",
			ErrBadCall, got, a.expect))
	}
	if got == a.expect {
		a.finish(nil)
	}
	return nil
}

// wait blocks until assembly completes (or fails), the context is
// done, closed fires, or the sending client's lease expires (nil
// channels never fire).
func (a *blockAssembler) wait(ctx contextDoner, closed, expired <-chan struct{}) error {
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case <-a.done:
		a.mu.Lock()
		err := a.err
		a.mu.Unlock()
		return err
	case <-ctxDone:
		return ctx.Err()
	case <-closed:
		return ErrClosed
	case <-expired:
		return ErrLeaseExpired
	}
}

// contextDoner is the subset of context.Context wait needs.
type contextDoner interface {
	Done() <-chan struct{}
	Err() error
}

// planElemsTo sums the elements a plan addresses to one receiver.
func planElemsTo(plan []dist.Transfer, rank int) int {
	n := 0
	for _, tr := range plan {
		if tr.To == rank {
			n += tr.Count
		}
	}
	return n
}
