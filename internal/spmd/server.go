package spmd

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/giop"
	"pardis/internal/ior"
	"pardis/internal/orb"
	"pardis/internal/rts"
	"pardis/internal/telemetry"
	"pardis/internal/transport"
)

// Call is what a servant's operation handler receives on each
// computing thread of the SPMD object: the decoded scalar arguments
// and this thread's local blocks of every distributed argument.
type Call struct {
	// Op is the operation name.
	Op string
	// Thread is the computing thread's RTS handle (usable for
	// application-internal collectives during the call).
	Thread rts.Thread
	// Scalars decodes the non-distributed in-arguments; the same
	// values are delivered to every thread, as §2.1 promises.
	Scalars *cdr.Decoder
	// Args holds the distributed arguments. In and InOut arguments
	// arrive filled; Out arguments arrive zeroed at the length the
	// client declared. The servant mutates InOut/Out contents in
	// place.
	Args []*dseq.Doubles

	reply *cdr.Encoder
}

// Reply returns the encoder for scalar results. Every thread may
// write to it, but only the communicator thread's bytes travel; all
// threads must therefore write identical values (the same contract as
// scalar in-arguments).
func (c *Call) Reply() *cdr.Encoder { return c.reply }

// Handler implements one operation of an SPMD object. It is invoked
// collectively: once per computing thread per request. An error from
// any thread aborts the request with a system exception.
type Handler func(call *Call) error

// ObjectConfig configures one computing thread's share of an exported
// SPMD object. All threads must pass identical Key, TypeID, Ops
// (modulo Handler closures) and MultiPort settings.
type ObjectConfig struct {
	// Thread is this computing thread's RTS handle.
	Thread rts.Thread
	// Registry supplies transports (nil means transport.Default).
	Registry *transport.Registry
	// ListenEndpoint is the endpoint template each thread listens on
	// ("inproc:*", "tcp:127.0.0.1:0", ...).
	ListenEndpoint string
	// Key is the object key; TypeID its repository id.
	Key    string
	TypeID string
	// MultiPort opens one port per computing thread and advertises
	// all of them in the object reference; otherwise only the
	// communicator listens and only centralized transfer is usable.
	MultiPort bool
	// Ops maps operation names to their distributed-argument
	// declarations and handlers.
	Ops map[string]*Op
	// Stripes caps how many connections this thread's outbound ORB
	// client (result blocks back to client ports) may open per
	// endpoint (0 = orb.DefaultStripeWidth()).
	Stripes int
	// XferWindow bounds how many out-block sends this thread keeps in
	// flight per transfer (0 = spmd.DefaultXferWindow, negative =
	// serial).
	XferWindow int
	// XferChunkBytes is the payload size above which an out-block is
	// split into pipelined chunks (0 = spmd.DefaultXferChunkBytes,
	// negative = chunking disabled).
	XferChunkBytes int
	// PeerXfer controls the one-sided peer data plane (0 =
	// spmd.DefaultPeerXfer, negative = routed blocks only). When
	// enabled and MultiPort, the object advertises window-put capable
	// ports in its describe reply and honors peer invocations with
	// registered windows and direct out-puts. All threads must pass
	// the same value.
	PeerXfer int
	// AutoTune enables the self-tuning transport for out-argument
	// transfers (0 = spmd.DefaultAutoTune, negative = off): each rank
	// feeds its out-transfer bytes/seconds into the process-wide tuner
	// (spmd.AutoTuner) and re-resolves its chunk, window, and stripe
	// knobs per transfer. The path is keyed by the invoking client's
	// first receive endpoint (its threads are assumed co-located).
	// All threads must pass the same value. An explicit Stripes pin
	// wins over the tuner's stripe recommendation.
	AutoTune int
	// LeaseTTL is how long a client's server-side lease survives
	// without traffic before its rank-side state (block sinks,
	// in-dispatch waits) is reclaimed. 0 = DefaultLeaseTTL, negative =
	// leases disabled (the pre-lease behavior: waits are bounded only
	// by the Serve context and Close).
	LeaseTTL time.Duration
}

// Op couples an operation's signature with its implementation.
type Op struct {
	Spec    OpSpec
	Handler Handler
}

// Object is one computing thread's handle on an exported SPMD object.
// Construction is collective; afterwards every thread must run Serve.
type Object struct {
	cfg    ObjectConfig
	th     rts.Thread
	rank   int
	size   int
	srv    *orb.Server // this thread's port (communicator always has one)
	out    *orb.Client // for sending out-blocks back to clients
	ref    *ior.Ref
	queue  chan *orb.Incoming // communicator only
	closed chan struct{}
	leases *leaseTable // nil = leases disabled

	served atomic.Uint64
	failed atomic.Uint64

	// window/chunkElems/peer are the resolved data-plane knobs (see
	// ObjectConfig.XferWindow / XferChunkBytes / PeerXfer); with
	// autoTune on, sendBlocks re-resolves window/chunkElems from the
	// shared tuner per transfer.
	window     int
	chunkElems int
	peer       bool
	autoTune   bool

	// rankLag is this rank's interned post-invocation barrier
	// histogram (rank is fixed for the object's lifetime).
	rankLag *telemetry.Histogram
	// xferIn/xferOut time this rank's transfer phases (in-argument
	// assembly / out-argument fan-out).
	xferIn, xferOut *telemetry.Histogram
}

// Interned once at package load — the per-dispatch phase histograms
// have fixed labels, so the registry lookup is hoisted out of the
// dispatch path.
var (
	phaseServerArgs    = telemetry.Default.Histogram("pardis_spmd_phase_seconds", "phase", "server_args")
	phaseServerHandler = telemetry.Default.Histogram("pardis_spmd_phase_seconds", "phase", "server_handler")
	phaseServerOut     = telemetry.Default.Histogram("pardis_spmd_phase_seconds", "phase", "server_out")
	// shedExpiredSPMD counts queued invocations whose propagated
	// deadline had already passed when the communicator popped them:
	// they are answered with TIMEOUT without engaging the collective.
	shedExpiredSPMD = telemetry.Default.Counter("pardis_spmd_shed_total", "reason", "expired")
)

// ObjectStats is a snapshot of a thread's request counters.
type ObjectStats struct {
	// Served counts requests this thread participated in
	// (collective dispatches, including failed ones).
	Served uint64
	// Failed counts dispatches that ended in an error.
	Failed uint64
}

// Stats returns this thread's counters.
func (o *Object) Stats() ObjectStats {
	return ObjectStats{Served: o.served.Load(), Failed: o.failed.Load()}
}

// BlockStats reports this thread's block-router state (registered
// sinks and buffered early blocks). After the serve loops exit it
// must be empty — a nonzero sink count is a leak.
func (o *Object) BlockStats() orb.BlockRouterStats {
	if o.srv == nil {
		return orb.BlockRouterStats{}
	}
	return o.srv.BlockStats()
}

// tagRefExchange keeps SPMD-engine RTS messages clear of application
// tags used inside servant handlers.
const tagRefExchange = 1 << 20

// Export creates the thread's share of an SPMD object: it opens this
// thread's port (communicator always; other threads only under
// MultiPort), exchanges endpoints, and assembles the object
// reference. It must be called collectively.
func Export(cfg ObjectConfig) (*Object, error) {
	if cfg.Thread == nil {
		return nil, fmt.Errorf("%w: nil RTS thread", ErrBadCall)
	}
	if cfg.Key == "" {
		return nil, fmt.Errorf("%w: empty object key", ErrBadCall)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = transport.Default
	}
	th := cfg.Thread
	o := &Object{
		cfg:    cfg,
		th:     th,
		rank:   th.Rank(),
		size:   th.Size(),
		closed: make(chan struct{}),
	}
	o.window = resolveWindow(cfg.XferWindow)
	o.chunkElems = resolveChunkElems(cfg.XferChunkBytes)
	o.peer = cfg.MultiPort && resolvePeer(cfg.PeerXfer)
	o.autoTune = resolveAutoTune(cfg.AutoTune)
	if cfg.LeaseTTL >= 0 {
		ttl := cfg.LeaseTTL
		if ttl == 0 {
			ttl = DefaultLeaseTTL
		}
		o.leases = newLeaseTable(ttl)
	}
	o.rankLag = telemetry.Default.Histogram("pardis_spmd_rank_lag_seconds",
		"side", "server", "rank", strconv.Itoa(o.rank))
	o.xferIn = telemetry.Default.Histogram("pardis_spmd_transfer_seconds",
		"side", "server", "dir", "in", "rank", strconv.Itoa(o.rank))
	o.xferOut = telemetry.Default.Histogram("pardis_spmd_transfer_seconds",
		"side", "server", "dir", "out", "rank", strconv.Itoa(o.rank))

	needPort := o.rank == 0 || cfg.MultiPort
	var myEndpoint string
	var listenErr error
	if needPort {
		o.srv = orb.NewServer(reg)
		ep, err := o.srv.Listen(cfg.ListenEndpoint)
		if err != nil {
			listenErr = err
		} else {
			myEndpoint = ep
		}
	}
	var outOpts []orb.ClientOption
	if cfg.Stripes > 0 {
		outOpts = append(outOpts, orb.WithStripes(cfg.Stripes))
	} else if o.autoTune {
		// Tuner-capped lazy stripe growth toward each client endpoint:
		// the out-client may open connections past the static width, up
		// to the tuner's recommendation for that destination, still only
		// under observed queueing.
		outOpts = append(outOpts, orb.WithStripeCap(func(ep string) int {
			if rec, ok := AutoTuner.Recommend(ep); ok {
				return rec.Stripes
			}
			return 0
		}))
	}
	o.out = orb.NewClient(reg, outOpts...)

	// Collective verdict on the listen phase: if any thread failed to
	// open its port, every thread learns which one and returns a
	// partial-failure error, instead of the communicator deadlocking
	// in the endpoint exchange waiting for a port that will never
	// exist.
	if err := collectiveVerdict(th, listenErr, "open its port"); err != nil {
		if o.srv != nil {
			o.srv.Close()
		}
		o.out.Close()
		return nil, err
	}

	// Endpoint exchange: every thread reports to the communicator,
	// which assembles and validates the reference, then broadcasts
	// the stringified form. The broadcast is tagged (1 + IOR on
	// success, 0 + error text on failure) so a communicator-side
	// failure reaches the peers as a named error instead of leaving
	// them deadlocked in the collective.
	if o.rank == 0 {
		endpoints := make([]string, o.size)
		endpoints[0] = myEndpoint
		var refErr error
		if cfg.MultiPort {
			for i := 1; i < o.size; i++ {
				b, err := th.RecvBytes(i, tagRefExchange)
				if err != nil {
					refErr = err
					break
				}
				endpoints[i] = string(b)
			}
		} else {
			endpoints = endpoints[:1]
		}
		if refErr == nil {
			o.ref = &ior.Ref{
				TypeID:    cfg.TypeID,
				Key:       cfg.Key,
				Threads:   o.size,
				Endpoints: endpoints,
			}
			refErr = o.ref.Validate()
		}
		var payload []byte
		if refErr != nil {
			payload = append([]byte{0}, refErr.Error()...)
		} else {
			payload = append([]byte{1}, o.ref.Stringify()...)
		}
		if _, err := th.Bcast(0, payload); err != nil {
			return nil, err
		}
		if refErr != nil {
			o.srv.Close()
			o.out.Close()
			return nil, refErr
		}
	} else {
		if cfg.MultiPort {
			if err := th.SendBytes(0, tagRefExchange, []byte(myEndpoint)); err != nil {
				return nil, err
			}
		}
		payload, err := th.Bcast(0, nil)
		if err != nil {
			return nil, err
		}
		if len(payload) == 0 || payload[0] == 0 {
			if o.srv != nil {
				o.srv.Close()
			}
			o.out.Close()
			msg := "unknown error"
			if len(payload) > 1 {
				msg = string(payload[1:])
			}
			return nil, fmt.Errorf("%w: thread 0 failed to assemble the object reference: %s",
				ErrPartialFailure, msg)
		}
		if o.ref, err = ior.Parse(string(payload[1:])); err != nil {
			return nil, err
		}
	}

	// The communicator accepts requests and queues them for the
	// collective serve loop; non-communicator ports only receive
	// block transfers (handled inside the ORB), but they still
	// answer describe/locate for robustness.
	if o.rank == 0 {
		o.queue = make(chan *orb.Incoming, 64)
		o.srv.Handle(cfg.Key, func(in *orb.Incoming) {
			// Any request is proof of client life: renew its lease
			// before anything else, so a queued invocation cannot lose
			// its own lease while waiting for the collective.
			if o.leases != nil {
				o.leases.acquire(leaseClient(in.Header.InvocationID))
			}
			switch in.Header.Operation {
			case DescribeOperation:
				o.replyDescribe(in)
				return
			case RenewOperation:
				// The explicit cheap renew for idle bindings: answered
				// inline on the communicator port, never engaging the
				// collective.
				_ = in.Reply(giop.ReplyOK, nil)
				return
			}
			select {
			case o.queue <- in:
			case <-o.closed:
				_ = in.ReplySystemException("OBJ_ADAPTER", "object closed")
			case <-in.Ctx.Done():
			}
		})
	} else if o.srv != nil {
		o.srv.Handle(cfg.Key, func(in *orb.Incoming) {
			if o.leases != nil {
				o.leases.acquire(leaseClient(in.Header.InvocationID))
			}
			switch in.Header.Operation {
			case DescribeOperation:
				o.replyDescribe(in)
				return
			case RenewOperation:
				_ = in.Reply(giop.ReplyOK, nil)
				return
			}
			_ = in.ReplySystemException("BAD_OPERATION",
				"requests must target the communicator port")
		})
	}
	if o.leases != nil {
		go o.leaseSweepLoop()
	}
	return o, nil
}

// leaseSweepLoop expires client leases that stopped renewing; it runs
// on every rank (each rank tracks the clients it has heard from) and
// exits on Close, dropping whatever leases remain.
func (o *Object) leaseSweepLoop() {
	t := time.NewTicker(leaseSweepInterval(o.leases.ttl))
	defer t.Stop()
	for {
		select {
		case <-t.C:
			o.leases.sweep(time.Now())
		case <-o.closed:
			o.leases.drop()
			return
		}
	}
}

// Leases reports the number of live client leases on this rank (0
// when leases are disabled).
func (o *Object) Leases() int {
	if o.leases == nil {
		return 0
	}
	return o.leases.size()
}

// Ref returns the object reference to register with the naming
// service. Valid on every thread.
func (o *Object) Ref() *ior.Ref { return o.ref }

func (o *Object) replyDescribe(in *orb.Incoming) {
	w := describeWire{Threads: o.size, MultiPort: o.cfg.MultiPort,
		PeerWindows: o.peer,
		Ops:         make(map[string]*OpSpec, len(o.cfg.Ops))}
	for name, op := range o.cfg.Ops {
		spec := op.Spec
		w.Ops[name] = &spec
	}
	_ = in.Reply(giop.ReplyOK, w.encode)
}

// Close shuts the object down. Serve loops return ErrClosed on all
// threads once in-flight requests complete. Collective. Every rank
// closes its own closed channel so worker threads blocked in block
// assembly (a sender died mid-transfer) unwind instead of waiting for
// blocks that will never arrive.
func (o *Object) Close() {
	select {
	case <-o.closed:
	default:
		close(o.closed)
	}
	if o.srv != nil {
		o.srv.Close()
	}
	o.out.Close()
}

// control is the per-invocation metadata the communicator broadcasts
// to the other computing threads before the collective dispatch.
type control struct {
	OK     bool // false: serve loop should exit
	Op     string
	Inv    uint64
	Method TransferMethod
	// DeadlineMicros is the client deadline budget still remaining when
	// the communicator broadcast the control record (0 = none). Every
	// rank rebases it onto its own clock and bounds its dispatch — in
	// particular the block-assembly waits — by it.
	DeadlineMicros uint64
	// PeerWindows means the client negotiated the one-sided peer data
	// plane for this invocation: every rank registers windows for its
	// in-argument shares and ships out-argument blocks as window puts.
	PeerWindows bool
	Scalars     []byte
	Args        []controlArg
	ErrMsg      string
}

type controlArg struct {
	Mode            ArgMode
	Length          int
	ClientCounts    []int
	ClientEndpoints []string
}

func (c *control) encode(e *cdr.Encoder) {
	e.PutBoolean(c.OK)
	e.PutString(c.Op)
	e.PutULongLong(c.Inv)
	e.PutOctet(byte(c.Method))
	e.PutULongLong(c.DeadlineMicros)
	e.PutBoolean(c.PeerWindows)
	e.PutOctetSeq(c.Scalars)
	e.PutULong(uint32(len(c.Args)))
	for _, a := range c.Args {
		e.PutOctet(byte(a.Mode))
		e.PutULong(uint32(a.Length))
		u := make([]uint32, len(a.ClientCounts))
		for i, x := range a.ClientCounts {
			u[i] = uint32(x)
		}
		e.PutULongSeq(u)
		e.PutStringSeq(a.ClientEndpoints)
	}
	e.PutString(c.ErrMsg)
}

func decodeControl(d *cdr.Decoder) (*control, error) {
	var c control
	var err error
	if c.OK, err = d.Boolean(); err != nil {
		return nil, err
	}
	if c.Op, err = d.String(); err != nil {
		return nil, err
	}
	if c.Inv, err = d.ULongLong(); err != nil {
		return nil, err
	}
	m, err := d.Octet()
	if err != nil {
		return nil, err
	}
	c.Method = TransferMethod(m)
	if c.DeadlineMicros, err = d.ULongLong(); err != nil {
		return nil, err
	}
	if c.PeerWindows, err = d.Boolean(); err != nil {
		return nil, err
	}
	if c.Scalars, err = d.OctetSeq(); err != nil {
		return nil, err
	}
	n, err := d.ULong()
	if err != nil {
		return nil, err
	}
	c.Args = make([]controlArg, n)
	for i := range c.Args {
		mo, err := d.Octet()
		if err != nil {
			return nil, err
		}
		c.Args[i].Mode = ArgMode(mo)
		l, err := d.ULong()
		if err != nil {
			return nil, err
		}
		c.Args[i].Length = int(l)
		u, err := d.ULongSeq()
		if err != nil {
			return nil, err
		}
		c.Args[i].ClientCounts = make([]int, len(u))
		for j, x := range u {
			c.Args[i].ClientCounts[j] = int(x)
		}
		if c.Args[i].ClientEndpoints, err = d.StringSeq(); err != nil {
			return nil, err
		}
	}
	if c.ErrMsg, err = d.String(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Serve processes requests until Close; it must run on every
// computing thread of the object concurrently. It returns ErrClosed
// after a clean shutdown.
func (o *Object) Serve(ctx context.Context) error {
	for {
		err := o.serveOne(ctx)
		if err != nil {
			return err
		}
	}
}

// ServeOne processes exactly one request collectively (useful for
// tests and lock-step servers); Serve is the loop over it.
func (o *Object) ServeOne(ctx context.Context) error { return o.serveOne(ctx) }

func (o *Object) serveOne(ctx context.Context) error {
	if o.rank == 0 {
		return o.communicatorServeOne(ctx)
	}
	return o.workerServeOne(ctx)
}

// communicatorServeOne pops one queued request, drives the collective
// dispatch, and replies.
func (o *Object) communicatorServeOne(ctx context.Context) error {
	var in *orb.Incoming
	select {
	case in = <-o.queue:
	case <-o.closed:
		o.bcastControl(&control{OK: false})
		return ErrClosed
	case <-ctx.Done():
		o.bcastControl(&control{OK: false})
		return ctx.Err()
	}

	// A queued invocation whose propagated deadline already passed is
	// shed here, before the collective is engaged: the client has given
	// up, so burning every rank on its dispatch would only add load.
	if !in.Expiry.IsZero() && !time.Now().Before(in.Expiry) {
		shedExpiredSPMD.Inc()
		_ = in.ReplySystemException("TIMEOUT",
			"request deadline expired before collective dispatch")
		return nil
	}

	// Decode the invocation body.
	w, err := decodeInvocationWire(in.Decoder())
	if err != nil {
		_ = in.ReplySystemException("MARSHAL", err.Error())
		// The collective is not engaged yet; keep serving.
		return nil
	}
	op, ok := o.cfg.Ops[in.Header.Operation]
	if !ok {
		_ = in.ReplySystemException("BAD_OPERATION", in.Header.Operation)
		return nil
	}
	if len(w.Args) != len(op.Spec.Args) {
		_ = in.ReplySystemException("BAD_PARAM",
			fmt.Sprintf("operation %s takes %d distributed args, got %d",
				in.Header.Operation, len(op.Spec.Args), len(w.Args)))
		return nil
	}
	for i, a := range w.Args {
		if a.Mode != op.Spec.Args[i].Mode {
			_ = in.ReplySystemException("BAD_PARAM",
				fmt.Sprintf("arg %d mode %v, declared %v", i, a.Mode, op.Spec.Args[i].Mode))
			return nil
		}
	}
	if w.Method == MultiPort && !o.cfg.MultiPort {
		_ = in.ReplySystemException("BAD_PARAM", "object does not export multi-port endpoints")
		return nil
	}

	ctrl := &control{
		OK:     true,
		Op:     in.Header.Operation,
		Inv:    in.Header.InvocationID,
		Method: w.Method,
		// Peer is taken only when the client asked for it AND this
		// object advertised it — an honest client asks only after
		// seeing the describe advertisement, so both legs agree.
		PeerWindows: w.PeerWindows && o.peer,
		// The scalar encapsulation reaches every thread byte-equal:
		// "the invocation mechanism provided by PARDIS will ensure
		// that the same value of non-distributed argument will be
		// delivered to all computing threads of the server" (§2.1).
		Scalars: w.Scalars,
		Args:    make([]controlArg, len(w.Args)),
	}
	for i, a := range w.Args {
		ctrl.Args[i] = controlArg{
			Mode:            a.Mode,
			Length:          a.Length,
			ClientCounts:    a.ClientCounts,
			ClientEndpoints: a.ClientEndpoints,
		}
	}
	if !in.Expiry.IsZero() {
		// Re-encode the remaining budget relatively, the same scheme the
		// PIOP header uses: workers rebase onto their own clocks, so rank
		// clock skew never shifts the deadline. Exhausted-but-present
		// clamps to 1µs (0 means "none").
		if rem := time.Until(in.Expiry); rem > 0 {
			ctrl.DeadlineMicros = uint64(rem / time.Microsecond)
		}
		if ctrl.DeadlineMicros == 0 {
			ctrl.DeadlineMicros = 1
		}
	}
	o.bcastControl(ctrl)

	replyBody, derr := o.dispatch(ctx, ctrl, w, in.Header)
	if derr != nil {
		// Deadline and lease failures are timeout-class: the client
		// stopped waiting (or stopped existing), so the verdict must not
		// look retryable-in-place or like a servant bug.
		if errors.Is(derr, context.DeadlineExceeded) || errors.Is(derr, ErrLeaseExpired) {
			_ = in.ReplySystemException("TIMEOUT", derr.Error())
			return nil
		}
		_ = in.ReplySystemException("UNKNOWN", derr.Error())
		return nil
	}
	return in.Reply(giop.ReplyOK, func(e *cdr.Encoder) { e.PutOctets(replyBody) })
}

// workerServeOne participates in one collective dispatch.
func (o *Object) workerServeOne(ctx context.Context) error {
	raw, err := o.th.Bcast(0, nil)
	if err != nil {
		return err
	}
	ctrl, err := decodeControl(cdr.NewDecoder(cdr.BigEndian, raw))
	if err != nil {
		return err
	}
	if !ctrl.OK {
		return ErrClosed
	}
	_, derr := o.dispatch(ctx, ctrl, nil, giop.RequestHeader{})
	// Worker-side dispatch errors were already folded into the
	// collective agreement; the communicator reported them.
	_ = derr
	return nil
}

func (o *Object) bcastControl(c *control) {
	e := cdr.NewEncoder(cdr.BigEndian)
	c.encode(e)
	_, _ = o.th.Bcast(0, e.Bytes())
}

// dispatch is the collective body run by every thread: materialize
// local argument blocks, invoke the handler, return out-data. Only
// the communicator (which passes w != nil) builds the reply body. ctx
// is the Serve context: it (or Close) unblocks threads waiting on
// block transfers whose sender died. (The per-request Incoming.Ctx is
// useless here — it is cancelled as soon as the request is queued.)
func (o *Object) dispatch(ctx context.Context, ctrl *control, w *invocationWire, hdr giop.RequestHeader) (_ []byte, err error) {
	o.served.Add(1)
	defer func() {
		if err != nil {
			o.failed.Add(1)
		}
	}()
	op := o.cfg.Ops[ctrl.Op]
	if op == nil {
		// Workers learn about unknown ops only here; communicator
		// filtered already.
		return nil, fmt.Errorf("%w: unknown operation %q", ErrBadCall, ctrl.Op)
	}

	// Bound the dispatch by the propagated deadline, rebased onto this
	// rank's clock: a client that stopped waiting must not strand the
	// collective in a block-assembly wait past the budget it asked for.
	if ctrl.DeadlineMicros > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx,
			time.Duration(ctrl.DeadlineMicros)*time.Microsecond)
		defer cancel()
	}

	// Phase 1: materialize argument sequences.
	phaseT := time.Now()
	args := make([]*dseq.Doubles, len(ctrl.Args))
	clientLayouts := make([]dist.Layout, len(ctrl.Args))
	var firstErr error
	for i, ca := range ctrl.Args {
		serverLayout, err := op.Spec.Args[i].Dist.Apply(ca.Length, o.size)
		if err != nil {
			firstErr = err
			break
		}
		clientLayout, err := dist.FromCounts(ca.ClientCounts)
		if err != nil {
			firstErr = err
			break
		}
		if clientLayout.Len() != ca.Length {
			firstErr = fmt.Errorf("%w: client layout sums to %d, length %d",
				ErrBadCall, clientLayout.Len(), ca.Length)
			break
		}
		clientLayouts[i] = clientLayout
		seq, err := dseq.DoublesFromLocal(serverLayout, o.rank,
			make([]float64, serverLayout.Count(o.rank)), dseq.Owner)
		if err != nil {
			firstErr = err
			break
		}
		args[i] = seq

		if ca.Mode == In || ca.Mode == InOut {
			switch ctrl.Method {
			case Centralized:
				// Communicator holds the full data; scatter by the
				// server layout.
				var full []float64
				if o.rank == 0 {
					full = w.Args[i].Data
					if len(full) != ca.Length {
						firstErr = fmt.Errorf("%w: inline data %d of %d elements",
							ErrBadCall, len(full), ca.Length)
					}
				}
				if firstErr == nil {
					if err := dseq.ScatterDoubles(seq, o.th, 0, full); err != nil {
						firstErr = err
					}
				}
			case MultiPort:
				plan, err := dist.Plan(clientLayout, seq.Layout())
				if err != nil {
					firstErr = err
					break
				}
				if err := o.receiveBlocks(ctx, ctrl.Inv, uint32(i), plan, seq, ctrl.PeerWindows); err != nil {
					firstErr = err
				}
			}
		}
		if firstErr != nil {
			break
		}
	}

	// Collective agreement on phase-1 status.
	if err := o.agree(firstErr); err != nil {
		return nil, err
	}
	phaseServerArgs.ObserveDuration(time.Since(phaseT))

	// Phase 2: invoke the handler on every thread.
	phaseT = time.Now()
	call := &Call{
		Op:      ctrl.Op,
		Thread:  o.th,
		Scalars: cdr.NewDecoderAt(cdr.BigEndian, nil, 0),
		Args:    args,
		// Reply bytes are embedded in an encapsulation whose payload
		// starts at stream offset 1 (after the byte-order flag).
		reply: cdr.NewEncoderAt(cdr.BigEndian, 1),
	}
	// The scalar encapsulation carries its own byte-order flag.
	if len(ctrl.Scalars) > 0 {
		flag := ctrl.Scalars[0]
		call.Scalars = cdr.NewDecoderAt(cdr.ByteOrder(flag&1), ctrl.Scalars[1:], 1)
	}
	herr := op.Handler(call)
	if err := o.agree(herr); err != nil {
		return nil, err
	}
	phaseServerHandler.ObserveDuration(time.Since(phaseT))

	// Phase 3: return out/inout data.
	phaseT = time.Now()
	var replyArgs [][]float64
	for i, ca := range ctrl.Args {
		if ca.Mode != Out && ca.Mode != InOut {
			continue
		}
		switch ctrl.Method {
		case Centralized:
			full, err := dseq.GatherDoubles(args[i], o.th, 0)
			if err != nil {
				firstErr = err
			} else if o.rank == 0 {
				replyArgs = append(replyArgs, full)
			}
		case MultiPort:
			plan, err := dist.Plan(args[i].Layout(), clientLayouts[i])
			if err != nil {
				firstErr = err
				break
			}
			if err := o.sendBlocks(ctrl.Inv, uint32(i), plan, args[i], ca.ClientEndpoints, ctrl.PeerWindows); err != nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			break
		}
	}
	if err := o.agree(firstErr); err != nil {
		return nil, err
	}
	phaseServerOut.ObserveDuration(time.Since(phaseT))

	// Post-invocation synchronization: "after the invocation the
	// server's computing threads synchronize and the communicator
	// informs the client of the completion status" (§3.2). The time a
	// rank spends here is its lag ahead of the slowest rank.
	phaseT = time.Now()
	if err := o.th.Barrier(); err != nil {
		return nil, err
	}
	o.rankLag.ObserveDuration(time.Since(phaseT))

	if o.rank != 0 {
		return nil, nil
	}
	// The reply body continues the reply message right after the
	// 8-octet ReplyHeader, so base the encoder there for correct
	// alignment. The server ORB marshals replies big-endian (its
	// default), matching this encoder.
	e := cdr.NewEncoderAt(cdr.BigEndian, 8)
	e.PutEncapsulation(cdr.BigEndian, func(ie *cdr.Encoder) {
		ie.PutOctets(call.reply.Bytes())
	})
	e.PutULong(uint32(len(replyArgs)))
	for _, full := range replyArgs {
		e.PutDoubleSeq(full)
	}
	return e.Bytes(), nil
}

// receiveBlocks collects this thread's share of a multi-port in
// transfer into seq's local block. Routed: each arriving block is
// decoded straight into the destination on its delivering connection's
// read goroutine (blocks from different senders assemble concurrently
// and out of order), while this thread waits for the element count to
// reach the plan's total. Peer: the destination is registered as a
// one-sided window and the sender's puts land straight off the read
// buffer — same bounds checks, same element-counted completion, no
// decode step at all. ctx (or object close) bounds the wait so a dead
// sender cannot strand the dispatch.
func (o *Object) receiveBlocks(ctx context.Context, inv uint64, argIdx uint32, plan []dist.Transfer, seq *dseq.Doubles, peer bool) error {
	expect := planElemsTo(plan, o.rank)
	if expect == 0 {
		return nil
	}
	if o.srv == nil {
		return fmt.Errorf("%w: thread %d has no port for multi-port transfer", ErrBadCall, o.rank)
	}
	key, err := giop.BlockSinkKey(inv, argIdx)
	if err != nil {
		return err
	}
	t := time.Now()
	// The wait rides the invoking client's lease: every block (or put)
	// it lands renews the lease, and if the client dies mid-transfer
	// the lease expiry unwinds the wait (teardown via the deferred
	// cancel) instead of stranding the collective until the Serve
	// context ends.
	var expired <-chan struct{}
	var l *lease
	if o.leases != nil {
		l = o.leases.acquire(leaseClient(inv))
		expired = l.expired
	}
	if peer {
		var onPut func()
		if l != nil {
			onPut = func() { l.last.Store(time.Now().UnixNano()) }
		}
		win, cancel, err := o.srv.RegisterWindow(key, seq.LocalData(), int64(expect), onPut)
		if err != nil {
			return err
		}
		defer cancel()
		err = waitWindow(win, ctx, o.closed, expired)
		o.xferIn.ObserveDuration(time.Since(t))
		return err
	}
	asm := newBlockAssembler(o.rank, seq.LocalData(), expect)
	accept := asm.accept
	if l != nil {
		accept = func(blk orb.Block) error {
			l.last.Store(time.Now().UnixNano())
			return asm.accept(blk)
		}
	}
	cancel, err := o.srv.ExpectBlocksFunc(key, accept)
	if err != nil {
		return err
	}
	defer cancel()
	err = asm.wait(ctx, o.closed, expired)
	o.xferIn.ObserveDuration(time.Since(t))
	return err
}

// sendBlocks ships this thread's share of a multi-port out transfer
// directly to the client threads' endpoints, chunked and windowed
// (see sendPlanBlocks); under the peer data plane the blocks travel as
// window puts into the destinations the client registered
// (sendPlanPuts).
func (o *Object) sendBlocks(inv uint64, argIdx uint32, plan []dist.Transfer, seq *dseq.Doubles, endpoints []string, peer bool) error {
	if len(dist.PlanFor(plan, o.rank)) == 0 {
		return nil
	}
	if len(endpoints) == 0 {
		return fmt.Errorf("%w: client sent no endpoints for multi-port out transfer", ErrBadCall)
	}
	endpointFor := func(to int) string {
		if to < len(endpoints) {
			return endpoints[to]
		}
		return endpoints[0]
	}
	window, chunkElems := o.window, o.chunkElems
	pathKey := ""
	if o.autoTune {
		// Keyed by the client's first receive endpoint: its threads are
		// assumed co-located, so one path model covers the fan-out.
		pathKey = endpoints[0]
		window, chunkElems = tunedKnobs(pathKey, window, chunkElems)
	}
	t := time.Now()
	var n uint64
	var err error
	if peer {
		n, err = sendPlanPuts(o.out, inv, argIdx, o.rank, plan, seq.LocalData(),
			endpointFor, window, chunkElems)
	} else {
		n, err = sendPlanBlocks(o.out, inv, argIdx, o.rank, plan, seq.LocalData(),
			endpointFor, window, chunkElems)
	}
	elapsed := time.Since(t)
	o.xferOut.ObserveDuration(elapsed)
	if o.autoTune && err == nil {
		AutoTuner.Record(pathKey, n, elapsed)
	}
	return err
}

// agree reaches a collective verdict: if any thread reports an error,
// every thread returns one (the communicator's message wins for
// reporting).
func (o *Object) agree(local error) error {
	flag := uint64(0)
	if local != nil {
		flag = 1
	}
	flags, err := o.th.AllgatherU64(flag)
	if err != nil {
		return err
	}
	for r, f := range flags {
		if f != 0 {
			if local != nil {
				return local
			}
			return fmt.Errorf("%w: thread %d failed", ErrRemote, r)
		}
	}
	return nil
}

// blockHeaderLen is the encoded size of a BlockTransferHeader — all
// fields are fixed-width and the encoding starts at stream offset 0,
// so the length is a constant (independent of values and byte order).
var blockHeaderLen = func() int {
	e := cdr.NewEncoder(cdr.BigEndian)
	new(giop.BlockTransferHeader).Encode(e)
	return e.Len()
}()

// blockPayloadBase returns the stream offset at which a block payload
// starts (right after its header), needed for alignment-correct
// decoding.
func blockPayloadBase(h giop.BlockTransferHeader, order cdr.ByteOrder) int {
	return blockHeaderLen
}
