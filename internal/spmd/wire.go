package spmd

import (
	"errors"
	"fmt"
	"sort"

	"pardis/internal/cdr"
	"pardis/internal/dist"
	"pardis/internal/rts"
)

// TransferMethod selects how distributed arguments move between the
// client's and the server's computing threads — the two methods of §3.
type TransferMethod int

const (
	// Centralized gathers the argument to the communicator thread,
	// ships it inside the request/reply message over the single
	// communicator connection, and scatters on the far side (§3.2).
	Centralized TransferMethod = iota
	// MultiPort ships the invocation header centrally but moves the
	// argument blocks point-to-point between computing threads over
	// per-thread ports (§3.3).
	MultiPort
)

func (m TransferMethod) String() string {
	if m == Centralized {
		return "centralized"
	}
	return "multi-port"
}

// ArgMode is the IDL parameter-passing mode of a distributed argument.
type ArgMode int

// Argument modes.
const (
	// In arguments travel client → server only.
	In ArgMode = iota
	// Out arguments travel server → client only.
	Out
	// InOut arguments travel both ways.
	InOut
)

func (m ArgMode) String() string {
	switch m {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	default:
		return fmt.Sprintf("ArgMode(%d)", int(m))
	}
}

// DescribeOperation is the implicit operation every SPMD object
// answers, returning its OpSpec table so clients can plan transfers
// (the server may have fixed non-default distributions before
// registering, §2.2).
const DescribeOperation = "_pardis_describe"

// RenewOperation is the implicit lease-renewal ping: a bound client
// whose binding has gone idle sends it (Binding.Renew) to keep its
// server-side lease — and with it any rank-side state — alive. The
// communicator answers inline without engaging the collective.
const RenewOperation = "_pardis_renew"

// Errors returned by the SPMD layer.
var (
	ErrInconsistent = errors.New("spmd: computing threads disagree on invocation")
	ErrBadCall      = errors.New("spmd: malformed call specification")
	ErrRemote       = errors.New("spmd: remote invocation failed")
	ErrClosed       = errors.New("spmd: object closed")
	// ErrPartialFailure reports that a collective phase failed on a
	// subset of the computing threads; the message names the first
	// failed rank. Every thread returns it instead of some ranks
	// deadlocking in a collective the failed thread never enters.
	ErrPartialFailure = errors.New("spmd: partial failure")
)

// collectiveVerdict agrees collectively on whether a per-thread setup
// phase succeeded everywhere. Each thread contributes its local error
// (nil for success); on any failure every thread returns an
// ErrPartialFailure naming the first failed rank (the failing thread
// itself additionally carries its local error detail). what describes
// the phase, e.g. "open its receive port".
func collectiveVerdict(th rts.Thread, localErr error, what string) error {
	flag := uint64(0)
	if localErr != nil {
		flag = 1
	}
	flags, err := th.AllgatherU64(flag)
	if err != nil {
		if localErr != nil {
			return localErr
		}
		return err
	}
	for r, f := range flags {
		if f == 0 {
			continue
		}
		if localErr != nil {
			return fmt.Errorf("%w: thread %d failed to %s: %w",
				ErrPartialFailure, th.Rank(), what, localErr)
		}
		return fmt.Errorf("%w: thread %d failed to %s", ErrPartialFailure, r, what)
	}
	return nil
}

// argWire is the per-argument metadata the client sends in the
// invocation body.
type argWire struct {
	Mode ArgMode
	// Length is the sequence's global length.
	Length int
	// ClientCounts is the client-side layout (per client thread), so
	// the server can compute both transfer plans.
	ClientCounts []int
	// ClientEndpoints carries the client threads' listening
	// endpoints when out-data must return multi-port.
	ClientEndpoints []string
	// Data is the full gathered sequence (centralized in/inout only;
	// nil otherwise, and nil on every thread but the communicator).
	Data []float64
}

func (a *argWire) encode(e *cdr.Encoder) {
	e.PutOctet(byte(a.Mode))
	e.PutULong(uint32(a.Length))
	counts := make([]uint32, len(a.ClientCounts))
	for i, c := range a.ClientCounts {
		counts[i] = uint32(c)
	}
	e.PutULongSeq(counts)
	e.PutStringSeq(a.ClientEndpoints)
	hasData := a.Data != nil
	e.PutBoolean(hasData)
	if hasData {
		e.PutDoubleSeq(a.Data)
	}
}

func decodeArgWire(d *cdr.Decoder) (*argWire, error) {
	var a argWire
	m, err := d.Octet()
	if err != nil {
		return nil, err
	}
	if m > byte(InOut) {
		return nil, fmt.Errorf("%w: argument mode %d", ErrBadCall, m)
	}
	a.Mode = ArgMode(m)
	n, err := d.ULong()
	if err != nil {
		return nil, err
	}
	a.Length = int(n)
	counts, err := d.ULongSeq()
	if err != nil {
		return nil, err
	}
	a.ClientCounts = make([]int, len(counts))
	for i, c := range counts {
		a.ClientCounts[i] = int(c)
	}
	if a.ClientEndpoints, err = d.StringSeq(); err != nil {
		return nil, err
	}
	hasData, err := d.Boolean()
	if err != nil {
		return nil, err
	}
	if hasData {
		if a.Data, err = d.DoubleSeq(); err != nil {
			return nil, err
		}
		if a.Data == nil {
			a.Data = []float64{}
		}
	}
	return &a, nil
}

// invocationWire is the invocation body the client communicator sends
// after the request header.
type invocationWire struct {
	Method  TransferMethod
	Scalars []byte // client-order CDR encapsulation of scalar in-args
	Args    []*argWire
	// PeerWindows asks for the one-sided peer data plane on this
	// invocation: the client has registered destination windows for its
	// out-arguments and will ship in-argument blocks as MsgWindowPut
	// frames. It is a trailing optional field (encoded only when set),
	// so the body stays byte-identical to the pre-peer wire for routed
	// invocations, and pre-peer servers — which stop decoding after the
	// argument list — interoperate unchanged. A client only sets it
	// after the object's describe advertised the capability.
	PeerWindows bool
}

func (w *invocationWire) encode(e *cdr.Encoder) {
	e.PutOctet(byte(w.Method))
	e.PutOctetSeq(w.Scalars)
	e.PutULong(uint32(len(w.Args)))
	for _, a := range w.Args {
		a.encode(e)
	}
	if w.PeerWindows {
		e.PutBoolean(true)
	}
}

func decodeInvocationWire(d *cdr.Decoder) (*invocationWire, error) {
	var w invocationWire
	m, err := d.Octet()
	if err != nil {
		return nil, err
	}
	if m > byte(MultiPort) {
		return nil, fmt.Errorf("%w: transfer method %d", ErrBadCall, m)
	}
	w.Method = TransferMethod(m)
	if w.Scalars, err = d.OctetSeq(); err != nil {
		return nil, err
	}
	n, err := d.ULong()
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(d.Remaining())+1 {
		return nil, fmt.Errorf("%w: %d arguments", ErrBadCall, n)
	}
	w.Args = make([]*argWire, n)
	for i := range w.Args {
		if w.Args[i], err = decodeArgWire(d); err != nil {
			return nil, err
		}
	}
	if d.Remaining() > 0 {
		if w.PeerWindows, err = d.Boolean(); err != nil {
			return nil, err
		}
	}
	return &w, nil
}

// ArgSpec describes one distributed parameter of an operation as the
// server declares it: its mode and the distribution the server wants
// the argument delivered in (§2.2: set before registering, defaulting
// to uniform BLOCK).
type ArgSpec struct {
	Mode ArgMode
	Dist dist.Spec
}

// OpSpec describes one operation of an SPMD object's interface.
type OpSpec struct {
	// Args lists the operation's distributed parameters in order.
	Args []ArgSpec
}

// describeWire is the payload of the DescribeOperation reply.
type describeWire struct {
	Threads   int
	MultiPort bool
	Ops       map[string]*OpSpec
	// PeerWindows advertises that every port of the object accepts
	// one-sided MsgWindowPut frames, so clients may take the peer data
	// plane. Trailing optional field, encoded only when set: pre-peer
	// clients stop decoding after the operation table and interoperate
	// unchanged, and pre-peer servers never emit it, steering new
	// clients onto the routed fallback.
	PeerWindows bool
}

func (w *describeWire) encode(e *cdr.Encoder) {
	e.PutULong(uint32(w.Threads))
	e.PutBoolean(w.MultiPort)
	e.PutULong(uint32(len(w.Ops)))
	// Deterministic order is unnecessary for correctness but keeps
	// byte-level tests stable.
	names := make([]string, 0, len(w.Ops))
	for name := range w.Ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		op := w.Ops[name]
		e.PutString(name)
		e.PutULong(uint32(len(op.Args)))
		for _, a := range op.Args {
			e.PutOctet(byte(a.Mode))
			e.PutOctet(byte(a.Dist.Kind()))
			ws := a.Dist.Weights()
			u := make([]uint32, len(ws))
			for i, x := range ws {
				u[i] = uint32(x)
			}
			e.PutULongSeq(u)
		}
	}
	if w.PeerWindows {
		e.PutBoolean(true)
	}
}

func decodeDescribeWire(d *cdr.Decoder) (*describeWire, error) {
	var w describeWire
	n, err := d.ULong()
	if err != nil {
		return nil, err
	}
	w.Threads = int(n)
	if w.MultiPort, err = d.Boolean(); err != nil {
		return nil, err
	}
	nops, err := d.ULong()
	if err != nil {
		return nil, err
	}
	if uint64(nops) > uint64(d.Remaining())+1 {
		return nil, fmt.Errorf("%w: %d operations", ErrBadCall, nops)
	}
	w.Ops = make(map[string]*OpSpec, nops)
	for i := uint32(0); i < nops; i++ {
		name, err := d.String()
		if err != nil {
			return nil, err
		}
		nargs, err := d.ULong()
		if err != nil {
			return nil, err
		}
		if uint64(nargs) > uint64(d.Remaining())+1 {
			return nil, fmt.Errorf("%w: %d args", ErrBadCall, nargs)
		}
		op := &OpSpec{Args: make([]ArgSpec, nargs)}
		for j := range op.Args {
			m, err := d.Octet()
			if err != nil {
				return nil, err
			}
			k, err := d.Octet()
			if err != nil {
				return nil, err
			}
			u, err := d.ULongSeq()
			if err != nil {
				return nil, err
			}
			ws := make([]int, len(u))
			for x, v := range u {
				ws[x] = int(v)
			}
			spec, err := specFromWire(dist.Kind(k), ws)
			if err != nil {
				return nil, err
			}
			op.Args[j] = ArgSpec{Mode: ArgMode(m), Dist: spec}
		}
		w.Ops[name] = op
	}
	if d.Remaining() > 0 {
		if w.PeerWindows, err = d.Boolean(); err != nil {
			return nil, err
		}
	}
	return &w, nil
}

func specFromWire(k dist.Kind, weights []int) (dist.Spec, error) {
	switch k {
	case dist.KindBlock:
		return dist.Block(), nil
	case dist.KindProportions:
		return dist.Proportions(weights...)
	case dist.KindExplicit:
		return dist.Explicit(weights...)
	default:
		return dist.Spec{}, fmt.Errorf("%w: distribution kind %d", ErrBadCall, k)
	}
}
