package spmd

import (
	"context"
	"fmt"
	"testing"

	"pardis/internal/mp"
	"pardis/internal/rts"
)

// TestAutoTuneEndToEnd runs the diffusion invocation with AutoTune on
// both sides: results must stay element-exact while the shared tuner
// accumulates the bind-time RTT probe and per-transfer samples for the
// object's path, proving the re-resolution loop is actually engaged.
func TestAutoTuneEndToEnd(t *testing.T) {
	reg := newReg()
	obj := startObjectCfg(t, reg, 3, true, diffusionOps, func(cfg *ObjectConfig) {
		cfg.AutoTune = 1
	})
	defer obj.close()
	err := mp.Run(2, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		b, err := Bind(context.Background(), BindConfig{
			Thread: th, Registry: reg, Method: MultiPort,
			ListenEndpoint: "inproc:*",
			AutoTune:       1,
		}, obj.ref)
		if err != nil {
			return err
		}
		defer b.Close()
		if !b.autoTune {
			return fmt.Errorf("rank %d: binding did not resolve AutoTune on", th.Rank())
		}
		// Enough invocations (and bytes) for the tuner to pass its
		// MinSamples gate and start re-deriving knobs mid-run; every
		// invocation still verifies element-exact results.
		for i := 0; i < 6; i++ {
			if err := invokeDiffusion(b, th, 40000, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	key := obj.ref.Endpoints[0]
	found := false
	for _, st := range AutoTuner.Snapshot() {
		if st.Endpoint != key {
			continue
		}
		found = true
		if st.Samples == 0 {
			t.Errorf("path %s recorded no transfer samples", key)
		}
		if st.RTTSeconds <= 0 {
			t.Errorf("path %s has no RTT estimate — the bind-time probe never fired", key)
		}
	}
	if !found {
		t.Fatalf("shared tuner has no path for %s", key)
	}
}

// TestAutoTuneOffByDefault: with the knob at its zero value and the
// package default off, a binding must not touch the tuner.
func TestAutoTuneOffByDefault(t *testing.T) {
	if resolveAutoTune(0) != DefaultAutoTune {
		t.Fatal("resolveAutoTune(0) does not follow DefaultAutoTune")
	}
	if resolveAutoTune(-1) {
		t.Fatal("resolveAutoTune(-1) must force tuning off")
	}
	if !resolveAutoTune(1) {
		t.Fatal("resolveAutoTune(1) must force tuning on")
	}
}
