package spmd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/mp"
	"pardis/internal/rts"
	"pardis/internal/transport"
)

// TestPeerTransferEndToEnd pins the peer data plane's happy path: with
// both sides capable (the default), the binding negotiates peer mode,
// the transfer moves as window puts, and neither side leaks a window.
func TestPeerTransferEndToEnd(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 3, true, diffusionOps)
	defer obj.close()
	before := peerBlocksTotal.Value()
	runClient(t, reg, 2, MultiPort, obj.ref, func(b *Binding, th rts.Thread) error {
		if !b.peer {
			return fmt.Errorf("capable endpoint did not negotiate peer windows")
		}
		if err := invokeDiffusion(b, th, 600, 2); err != nil {
			return err
		}
		if st := b.BlockStats(); st.Windows != 0 || st.Sinks != 0 {
			return fmt.Errorf("rank %d: client leak: %+v", th.Rank(), st)
		}
		return nil
	})
	if got := peerBlocksTotal.Value(); got == before {
		t.Fatal("no window puts counted — the transfer did not take the peer plane")
	}
	for rank, o := range obj.threadObjects() {
		if o == nil || o.srv == nil {
			continue
		}
		if st := o.BlockStats(); st.Windows != 0 {
			t.Fatalf("server thread %d leaked windows: %+v", rank, st)
		}
	}
}

// TestPeerFallbackToRoutedServer binds a peer-capable client to an
// object exported with the peer plane disabled: the describe does not
// advertise the capability, the client must fall back to the routed
// path (counted under reason="endpoint"), and the invocation still
// succeeds.
func TestPeerFallbackToRoutedServer(t *testing.T) {
	reg := newReg()
	obj := startObjectCfg(t, reg, 3, true, diffusionOps, func(cfg *ObjectConfig) {
		cfg.PeerXfer = -1
	})
	defer obj.close()
	before := peerFallbackEndpoint.Value()
	runClient(t, reg, 2, MultiPort, obj.ref, func(b *Binding, th rts.Thread) error {
		if b.peer {
			return fmt.Errorf("negotiated peer windows against a routed-only endpoint")
		}
		return invokeDiffusion(b, th, 600, 1)
	})
	if got := peerFallbackEndpoint.Value(); got == before {
		t.Fatal("endpoint fallback not counted")
	}
}

// TestPeerDisabledByClientKnob forces the routed path from the client
// side: the knob wins over a capable endpoint and is counted under
// reason="disabled".
func TestPeerDisabledByClientKnob(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 3, true, diffusionOps)
	defer obj.close()
	before := peerFallbackDisabled.Value()
	err := mp.Run(2, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		b, err := Bind(context.Background(), BindConfig{
			Thread: th, Registry: reg, Method: MultiPort,
			ListenEndpoint: "inproc:*", PeerXfer: -1,
		}, obj.ref)
		if err != nil {
			return err
		}
		defer b.Close()
		if b.peer {
			return fmt.Errorf("knob did not disable peer windows")
		}
		return invokeDiffusion(b, th, 600, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peerFallbackDisabled.Value(); got == before {
		t.Fatal("disabled fallback not counted")
	}
}

// TestPeerWireTrailingFlagCompat pins the interop encoding: the peer
// capability travels as a trailing optional field, so a routed
// invocation (and a non-advertising describe) stays byte-identical to
// the pre-peer wire, and decoders treat the missing field as false.
func TestPeerWireTrailingFlagCompat(t *testing.T) {
	inv := &invocationWire{
		Method:  MultiPort,
		Scalars: []byte{1, 2, 3},
		Args: []*argWire{{
			Mode: In, Length: 10,
			ClientCounts:    []int{5, 5},
			ClientEndpoints: []string{"inproc:a", "inproc:b"},
		}},
	}
	encode := func(w *invocationWire) []byte {
		e := cdr.NewEncoder(cdr.BigEndian)
		w.encode(e)
		return append([]byte(nil), e.Bytes()...)
	}
	legacy := encode(inv)
	inv.PeerWindows = true
	flagged := encode(inv)
	if !bytes.Equal(legacy, flagged[:len(flagged)-1]) {
		t.Fatal("peer flag is not a pure trailing addition to the invocation wire")
	}
	if len(flagged) != len(legacy)+1 {
		t.Fatalf("peer flag added %d bytes, want 1", len(flagged)-len(legacy))
	}
	got, err := decodeInvocationWire(cdr.NewDecoder(cdr.BigEndian, legacy))
	if err != nil {
		t.Fatal(err)
	}
	if got.PeerWindows {
		t.Fatal("legacy invocation decoded with peer windows set")
	}
	got, err = decodeInvocationWire(cdr.NewDecoder(cdr.BigEndian, flagged))
	if err != nil {
		t.Fatal(err)
	}
	if !got.PeerWindows {
		t.Fatal("flagged invocation decoded without peer windows")
	}

	desc := &describeWire{
		Threads: 2, MultiPort: true,
		Ops: map[string]*OpSpec{"op": {Args: []ArgSpec{{Mode: InOut, Dist: dist.Block()}}}},
	}
	e := cdr.NewEncoder(cdr.BigEndian)
	desc.encode(e)
	legacyDesc := append([]byte(nil), e.Bytes()...)
	desc.PeerWindows = true
	e = cdr.NewEncoder(cdr.BigEndian)
	desc.encode(e)
	flaggedDesc := append([]byte(nil), e.Bytes()...)
	if !bytes.Equal(legacyDesc, flaggedDesc[:len(flaggedDesc)-1]) {
		t.Fatal("peer flag is not a pure trailing addition to the describe wire")
	}
	gotDesc, err := decodeDescribeWire(cdr.NewDecoder(cdr.BigEndian, legacyDesc))
	if err != nil {
		t.Fatal(err)
	}
	if gotDesc.PeerWindows {
		t.Fatal("legacy describe decoded with peer windows set")
	}
	gotDesc, err = decodeDescribeWire(cdr.NewDecoder(cdr.BigEndian, flaggedDesc))
	if err != nil {
		t.Fatal(err)
	}
	if !gotDesc.PeerWindows {
		t.Fatal("flagged describe decoded without peer windows")
	}
}

// TestFaultCutPeerWindowStream is TestFaultCutBlockStream on the peer
// data plane: one client rank's direct window-put stream dies
// mid-transfer. Every healthy rank must fail the invocation with
// ErrPartialFailure naming the cut rank, nothing deadlocks, and both
// sides come out with zero registered windows, sinks, or pending puts.
func TestFaultCutPeerWindowStream(t *testing.T) {
	inproc := transport.NewInproc()
	okReg := transport.NewRegistry()
	okReg.Register(inproc)
	cut := transport.NewFaulty(inproc, transport.FaultPlan{
		Seed: 11, Cut: 1, CutAfter: 8 << 10,
	})
	cutReg := transport.NewRegistry()
	cutReg.Register(cutDialTransport{listen: inproc, dial: cut})

	obj := startObject(t, okReg, 3, true, diffusionOps)

	clientErr := mp.Run(3, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		reg := okReg
		if th.Rank() == 1 {
			reg = cutReg
		}
		b, err := Bind(context.Background(), BindConfig{
			Thread: th, Registry: reg, Method: MultiPort, ListenEndpoint: "inproc:*",
		}, obj.ref)
		if err != nil {
			return err
		}
		defer b.Close()
		if !b.peer {
			return fmt.Errorf("rank %d: binding did not negotiate the peer plane", th.Rank())
		}
		// 30000 doubles: every rank streams 80 KB of window puts to its
		// server thread; rank 1's connection dies after 8 KB.
		seq, err := dseq.NewDoubles(30000, dist.Block(), th.Size(), th.Rank())
		if err != nil {
			return err
		}
		done := make(chan error, 1)
		go func() {
			done <- b.Invoke(context.Background(), &CallSpec{
				Operation: "diffusion",
				Scalars:   func(e *cdr.Encoder) { e.PutLong(1) },
				Args:      []DistArg{{Mode: InOut, Seq: seq}},
			})
		}()
		var ierr error
		select {
		case ierr = <-done:
		case <-time.After(20 * time.Second):
			return fmt.Errorf("rank %d: invocation deadlocked on the cut put stream", th.Rank())
		}
		if ierr == nil {
			return fmt.Errorf("rank %d: invocation succeeded despite the cut", th.Rank())
		}
		if th.Rank() != 1 {
			if !errors.Is(ierr, ErrPartialFailure) {
				return fmt.Errorf("rank %d: want ErrPartialFailure, got %v", th.Rank(), ierr)
			}
			if !strings.Contains(ierr.Error(), "thread 1") {
				return fmt.Errorf("rank %d: error does not name the cut rank: %v", th.Rank(), ierr)
			}
		}
		if st := b.BlockStats(); st.Windows != 0 || st.Sinks != 0 {
			return fmt.Errorf("rank %d: client leak after failure: %+v", th.Rank(), st)
		}
		return nil
	})
	if clientErr != nil {
		t.Fatal(clientErr)
	}

	// The server thread whose sender died is parked on a window that
	// will never fill; Close must unwind it on every rank, and the
	// deferred cancels must leave no window registered.
	obj.close()
	for i := 0; i < 3; i++ {
		select {
		case <-obj.donech:
		case <-time.After(20 * time.Second):
			t.Fatal("a server thread did not unwind after Close")
		}
	}
	for rank, o := range obj.threadObjects() {
		if o == nil || o.srv == nil {
			continue
		}
		if st := o.BlockStats(); st.Windows != 0 || st.Sinks != 0 {
			t.Fatalf("server thread %d leaked after cut: %+v", rank, st)
		}
	}
	if st := cut.Stats(); st.CutConns == 0 {
		t.Fatal("fault plan injected no cut — the test exercised nothing")
	}
}
