package spmd

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/future"
	"pardis/internal/giop"
	"pardis/internal/ior"
	"pardis/internal/mp"
	"pardis/internal/orb"
	"pardis/internal/rts"
	"pardis/internal/telemetry"
	"pardis/internal/transport"
)

// BindConfig configures one client computing thread's binding to a
// remote SPMD object. All threads must pass equal Method and
// equivalent endpoints.
type BindConfig struct {
	// Thread is this client thread's RTS handle. For a plain
	// (non-parallel) client, wrap a single-rank world.
	Thread rts.Thread
	// Registry supplies transports (nil means transport.Default).
	Registry *transport.Registry
	// Method selects centralized or multi-port argument transfer.
	Method TransferMethod
	// ListenEndpoint is the template each client thread listens on
	// for multi-port out-argument blocks ("inproc:*",
	// "tcp:127.0.0.1:0"). Unused under Centralized.
	ListenEndpoint string
	// Retry is the invocation retry policy for this binding's ORB
	// client. The zero value enables failover-grade defaults: at
	// least one attempt per replica endpoint of the bound reference.
	Retry orb.RetryPolicy
	// Deadline is the default per-invocation deadline applied when a
	// call's context has none (0 = no default deadline).
	Deadline time.Duration
	// Stripes caps how many connections this thread's ORB client may
	// open per endpoint (0 = orb.DefaultStripeWidth()). Concurrent
	// invocations and block sends spread across the stripe.
	Stripes int
	// XferWindow bounds how many block sends this thread keeps in
	// flight per transfer (0 = spmd.DefaultXferWindow, negative =
	// serial).
	XferWindow int
	// XferChunkBytes is the payload size above which a block is split
	// into pipelined chunks (0 = spmd.DefaultXferChunkBytes, negative
	// = chunking disabled).
	XferChunkBytes int
	// PeerXfer controls the one-sided peer data plane (0 =
	// spmd.DefaultPeerXfer, negative = routed blocks only). It takes
	// effect only when the bound object advertises window-put capable
	// ports; otherwise the binding falls back to the routed path
	// (counted in pardis_spmd_peer_fallback_total).
	PeerXfer int
	// AutoTune enables the self-tuning transport (0 =
	// spmd.DefaultAutoTune, negative = off): the binding probes the
	// path RTT at bind time, feeds every transfer's bytes/seconds into
	// the process-wide tuner (spmd.AutoTuner), and re-resolves its
	// chunk, window, and stripe knobs from the tuner's recommendation
	// before each transfer. Until the path has enough samples — and
	// whenever tuning is off — the statically resolved XferWindow /
	// XferChunkBytes / Stripes values apply unchanged. The path is
	// keyed by the reference's first endpoint: replicas of one object
	// are assumed co-located enough to share a path model. An explicit
	// Stripes pin always wins over the tuner's stripe recommendation.
	AutoTune int
}

// Binding is one client thread's stub-side connection to an SPMD
// object — what _spmd_bind returns in the paper's client code. All
// collective methods must be entered by every client thread.
type Binding struct {
	cfg    BindConfig
	th     rts.Thread
	rank   int
	size   int
	ref    *ior.Ref
	desc   *describeWire
	oc     *orb.Client // this thread's outbound connections
	recv   *orb.Server // this thread's port for out-blocks (multi-port)
	recvEP string
	method TransferMethod
	// allEndpoints is the per-thread receive endpoint list, known on
	// the communicator only (it alone builds the argument wire).
	allEndpoints []string

	stats bindingStats

	// window/chunkElems/peer are the resolved data-plane knobs (see
	// BindConfig.XferWindow / XferChunkBytes / PeerXfer); peer is true
	// only after the object's describe advertised the capability.
	window     int
	chunkElems int
	peer       bool
	// autoTune/pathKey: when tuning is on, sendBlocks re-resolves
	// (window, chunkElems) from AutoTuner's recommendation for pathKey
	// before each transfer and records the observed rate after it.
	autoTune bool
	pathKey  string

	// rankLag is this rank's interned exit-barrier histogram (rank is
	// fixed for the binding's lifetime, so resolve the labels once).
	rankLag *telemetry.Histogram
	// xferIn/xferOut time this rank's transfer phases (in-argument
	// fan-out / out-argument collection).
	xferIn, xferOut *telemetry.Histogram
}

// Interned once at package load: the registry's per-call label-key
// building is too hot for the collective invocation path.
var (
	bindSeconds    = telemetry.Default.Histogram("pardis_spmd_bind_seconds")
	bindErrors     = telemetry.Default.Counter("pardis_spmd_bind_errors_total")
	phaseStartHist = telemetry.Default.Histogram("pardis_spmd_phase_seconds", "phase", "start")
	phaseWaitHist  = telemetry.Default.Histogram("pardis_spmd_phase_seconds", "phase", "wait")
)

// bindingStats accumulates per-thread operational counters.
type bindingStats struct {
	invocations atomic.Uint64
	errors      atomic.Uint64
	bytesOut    atomic.Uint64 // distributed-argument bytes this thread shipped
	bytesIn     atomic.Uint64 // distributed-argument bytes this thread received
}

// Stats is a snapshot of a binding's per-thread counters.
type Stats struct {
	// Invocations counts completed collective invocations entered
	// through this thread's binding handle (successes and failures).
	Invocations uint64
	// Errors counts invocations that returned an error.
	Errors uint64
	// BytesOut / BytesIn count distributed-argument payload bytes
	// this thread shipped to / received from the server (multi-port
	// blocks, or this thread's share of centralized gathers and
	// scatters).
	BytesOut, BytesIn uint64
}

// Stats returns a snapshot of this thread's counters.
func (b *Binding) Stats() Stats {
	return Stats{
		Invocations: b.stats.invocations.Load(),
		Errors:      b.stats.errors.Load(),
		BytesOut:    b.stats.bytesOut.Load(),
		BytesIn:     b.stats.bytesIn.Load(),
	}
}

// BlockStats reports this thread's receive-port block-router state.
// Between invocations it must be empty — a nonzero sink count means
// an out-block sink leaked.
func (b *Binding) BlockStats() orb.BlockRouterStats {
	if b.recv == nil {
		return orb.BlockRouterStats{}
	}
	return b.recv.BlockStats()
}

// DistArg pairs a distributed sequence with its parameter mode for
// one invocation.
type DistArg struct {
	Mode ArgMode
	Seq  *dseq.Doubles
}

// CallSpec describes one invocation as generated stubs assemble it.
type CallSpec struct {
	// Operation is the IDL operation name.
	Operation string
	// Scalars marshals the non-distributed in-arguments; every
	// thread must produce identical bytes (§2.1: "It is assumed that
	// all threads will invoke the request with identical values of
	// non-distributed arguments" — PARDIS-Go verifies and errors
	// instead of leaving behavior undefined).
	Scalars func(e *cdr.Encoder)
	// Args lists the distributed arguments in declaration order.
	Args []DistArg
	// DecodeReply consumes the scalar results on every thread.
	DecodeReply func(d *cdr.Decoder) error
	// Oneway suppresses the reply: the invocation returns as soon as
	// the arguments are shipped. Oneway calls cannot have Out/InOut
	// arguments or a DecodeReply.
	Oneway bool
}

// Bind establishes a collective binding from every client computing
// thread to the object named by ref (the stub-level _spmd_bind). It
// fetches the object's interface description so transfer plans can be
// computed client-side.
//
// The collective bind is timed into pardis_spmd_bind_seconds and runs
// under an "spmd:bind" span, so the describe invocation the
// communicator issues appears nested in the trace.
func Bind(ctx context.Context, cfg BindConfig, ref *ior.Ref) (*Binding, error) {
	start := time.Now()
	var span *telemetry.Span
	if telemetry.TraceActive(ctx) {
		key := ""
		if ref != nil {
			key = ref.Key
		}
		ctx, span = telemetry.StartSpan(ctx, "spmd:bind",
			telemetry.Attr{Key: "key", Value: key})
	}
	b, err := bind(ctx, cfg, ref)
	bindSeconds.ObserveDuration(time.Since(start))
	if err != nil {
		bindErrors.Inc()
		span.Annotate("error", err.Error())
	}
	span.End()
	return b, err
}

func bind(ctx context.Context, cfg BindConfig, ref *ior.Ref) (*Binding, error) {
	if cfg.Thread == nil {
		return nil, fmt.Errorf("%w: nil RTS thread", ErrBadCall)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = transport.Default
	}
	// The binding's ORB client defaults to a failover-grade retry
	// policy: enough attempts to try every replica endpoint of the
	// reference at least once (the "retry the next endpoint when one
	// thread's dial fails" behavior of a fault-tolerant bind).
	pol := cfg.Retry
	if pol.MaxAttempts == 0 {
		pol = orb.DefaultRetryPolicy()
		if n := len(ref.FailoverEndpoints()); n > pol.MaxAttempts {
			pol.MaxAttempts = n
		}
	}
	clientOpts := []orb.ClientOption{orb.WithRetryPolicy(pol)}
	if cfg.Deadline > 0 {
		clientOpts = append(clientOpts, orb.WithDefaultDeadline(cfg.Deadline))
	}
	if cfg.Stripes > 0 {
		clientOpts = append(clientOpts, orb.WithStripes(cfg.Stripes))
	}
	autoTune := resolveAutoTune(cfg.AutoTune)
	pathKey := ""
	if autoTune && len(ref.Endpoints) > 0 {
		pathKey = ref.Endpoints[0]
	}
	autoTune = autoTune && pathKey != ""
	if autoTune && cfg.Stripes == 0 {
		// Tuner-capped lazy stripe growth: the ORB client may open
		// connections past the static width, up to the tuner's stripe
		// recommendation, still one at a time and only under observed
		// queueing (an explicit Stripes pin wins — see BindConfig).
		clientOpts = append(clientOpts, orb.WithStripeCap(func(string) int {
			if rec, ok := AutoTuner.Recommend(pathKey); ok {
				return rec.Stripes
			}
			return 0
		}))
	}
	b := &Binding{
		cfg:    cfg,
		th:     cfg.Thread,
		rank:   cfg.Thread.Rank(),
		size:   cfg.Thread.Size(),
		ref:    ref,
		oc:     orb.NewClient(reg, clientOpts...),
		method: cfg.Method,
	}
	b.window = resolveWindow(cfg.XferWindow)
	b.chunkElems = resolveChunkElems(cfg.XferChunkBytes)
	b.autoTune = autoTune
	b.pathKey = pathKey
	b.rankLag = telemetry.Default.Histogram("pardis_spmd_rank_lag_seconds",
		"side", "client", "rank", strconv.Itoa(b.rank))
	b.xferIn = telemetry.Default.Histogram("pardis_spmd_transfer_seconds",
		"side", "client", "dir", "in", "rank", strconv.Itoa(b.rank))
	b.xferOut = telemetry.Default.Histogram("pardis_spmd_transfer_seconds",
		"side", "client", "dir", "out", "rank", strconv.Itoa(b.rank))
	if cfg.Method == MultiPort && !ref.MultiPort() {
		b.oc.Close()
		return nil, fmt.Errorf("%w: object %s does not export multi-port endpoints",
			ErrBadCall, ref.Key)
	}
	// Per-thread receive port for out-argument blocks, with a
	// collective verdict on the listen phase: a thread whose port
	// failed to open must not leave its peers deadlocked in the
	// endpoint exchange — every thread instead learns which rank
	// failed and returns a partial-failure error naming it.
	if cfg.Method == MultiPort {
		var listenErr error
		if cfg.ListenEndpoint == "" {
			listenErr = fmt.Errorf("%w: multi-port binding needs a ListenEndpoint", ErrBadCall)
		} else {
			b.recv = orb.NewServer(reg)
			ep, err := b.recv.Listen(cfg.ListenEndpoint)
			if err != nil {
				listenErr = err
			} else {
				b.recvEP = ep
			}
		}
		if err := collectiveVerdict(b.th, listenErr, "open its receive port"); err != nil {
			b.Close()
			return nil, err
		}
	}

	// Exchange receive endpoints so the communicator can advertise
	// them for out-argument transfers.
	if cfg.Method == MultiPort {
		if b.rank == 0 {
			b.allEndpoints = make([]string, b.size)
			b.allEndpoints[0] = b.recvEP
			for i := 1; i < b.size; i++ {
				raw, err := b.th.RecvBytes(i, tagRefExchange)
				if err != nil {
					b.Close()
					return nil, err
				}
				b.allEndpoints[i] = string(raw)
			}
		} else {
			if err := b.th.SendBytes(0, tagRefExchange, []byte(b.recvEP)); err != nil {
				b.Close()
				return nil, err
			}
		}
	}

	// The communicator fetches the interface description once and
	// broadcasts it (collective part of _spmd_bind). The describe
	// invocation fails over across every replica endpoint of the
	// reference (InvokeRef), so a dead first endpoint does not doom
	// the bind. The broadcast payload is tagged: 1 + describe bytes
	// on success, 0 + error text on failure, so the peers report the
	// failed thread and cause instead of a bare "bind failed".
	var raw []byte
	if b.rank == 0 {
		hdr := giop.RequestHeader{
			InvocationID:     b.oc.NewInvocationID(),
			ResponseExpected: true,
			ObjectKey:        ref.Key,
			Operation:        DescribeOperation,
			ThreadRank:       0,
			ThreadCount:      int32(b.size),
		}
		describeT := time.Now()
		rh, order, body, err := b.oc.InvokeRef(ctx, ref, hdr, nil)
		// The describe round trip doubles as the bind-time RTT probe: it
		// is the cheapest request/reply pair the binding ever issues, and
		// it happens exactly once, before any transfer needs the model.
		if b.autoTune && err == nil {
			AutoTuner.Probe(b.pathKey, time.Since(describeT))
		}
		if err == nil && rh.Status != giop.ReplyOK {
			err = fmt.Errorf("%w: describe returned %v", ErrRemote, rh.Status)
		}
		// Re-encode big-endian so every thread decodes uniformly.
		if err == nil && order != cdr.BigEndian {
			w, derr := decodeDescribeWire(cdr.NewDecoder(order, body))
			if derr != nil {
				err = derr
			} else {
				e := cdr.NewEncoder(cdr.BigEndian)
				w.encode(e)
				body = e.Bytes()
			}
		}
		var payload []byte
		if err != nil {
			payload = append([]byte{0}, err.Error()...)
		} else {
			payload = append([]byte{1}, body...)
		}
		if _, berr := b.th.Bcast(0, payload); berr != nil {
			b.Close()
			return nil, berr
		}
		if err != nil {
			b.Close()
			return nil, err
		}
		raw = body
	} else {
		payload, err := b.th.Bcast(0, nil)
		if err != nil {
			b.Close()
			return nil, err
		}
		if len(payload) == 0 {
			b.Close()
			return nil, fmt.Errorf("%w: bind failed on communicator", ErrRemote)
		}
		if payload[0] == 0 {
			b.Close()
			return nil, fmt.Errorf("%w: bind failed on thread 0: %s",
				ErrPartialFailure, payload[1:])
		}
		raw = payload[1:]
	}
	if len(raw) == 0 {
		b.Close()
		return nil, fmt.Errorf("%w: bind failed on communicator", ErrRemote)
	}
	desc, err := decodeDescribeWire(cdr.NewDecoder(cdr.BigEndian, raw))
	if err != nil {
		b.Close()
		return nil, err
	}
	if desc.Threads != ref.Threads {
		b.Close()
		return nil, fmt.Errorf("%w: reference says %d threads, object says %d",
			ErrRemote, ref.Threads, desc.Threads)
	}
	if cfg.Method == MultiPort && !desc.MultiPort {
		b.Close()
		return nil, fmt.Errorf("%w: object %s was not exported multi-port",
			ErrBadCall, ref.Key)
	}
	b.desc = desc
	// Peer-data-plane negotiation: the binding goes one-sided only when
	// the knob allows it AND the object advertised window-put capable
	// ports. Either miss is a counted fallback onto the routed path,
	// which stays byte-identical to the pre-peer wire.
	if cfg.Method == MultiPort {
		switch {
		case !resolvePeer(cfg.PeerXfer):
			peerFallbackDisabled.Inc()
		case !desc.PeerWindows:
			peerFallbackEndpoint.Inc()
		default:
			b.peer = true
		}
	}
	return b, nil
}

// BindPlain establishes a non-collective binding for a conventional
// (single-threaded) client — the stub-level _bind. It is implemented
// as a one-thread SPMD section, which is exactly what the paper's
// semantics reduce to for n = 1.
func BindPlain(ctx context.Context, reg *transport.Registry, method TransferMethod, listenEndpoint string, ref *ior.Ref) (*Binding, *mp.World, error) {
	w := mp.MustWorld(1)
	b, err := Bind(ctx, BindConfig{
		Thread:         rts.NewMessagePassing(w.Rank(0)),
		Registry:       reg,
		Method:         method,
		ListenEndpoint: listenEndpoint,
	}, ref)
	if err != nil {
		w.Close()
		return nil, nil, err
	}
	return b, w, nil
}

// Ref returns the bound object's reference.
func (b *Binding) Ref() *ior.Ref { return b.ref }

// Describe returns the bound object's operation table.
func (b *Binding) Describe() map[string]*OpSpec { return b.desc.Ops }

// Method returns the binding's transfer method.
func (b *Binding) Method() TransferMethod { return b.method }

// Close releases the binding's connections and receive port.
func (b *Binding) Close() {
	b.oc.Close()
	if b.recv != nil {
		b.recv.Close()
	}
}

// Renew pings the object's communicator to keep this binding's
// server-side lease alive while the binding is idle (invocations renew
// it implicitly). Only the communicator thread sends; other threads
// return nil immediately, so Renew need not be collective. Worker-rank
// leases are re-established by the block traffic of the next
// invocation, so the communicator ping is all an idle binding needs.
func (b *Binding) Renew(ctx context.Context) error {
	if b.rank != 0 {
		return nil
	}
	hdr := giop.RequestHeader{
		InvocationID:     b.oc.NewInvocationID(),
		ResponseExpected: true,
		ObjectKey:        b.ref.Key,
		Operation:        RenewOperation,
		ThreadRank:       0,
		ThreadCount:      int32(b.size),
	}
	rh, _, _, err := b.oc.InvokeRef(ctx, b.ref, hdr, nil)
	if err != nil {
		return err
	}
	if rh.Status != giop.ReplyOK {
		return fmt.Errorf("%w: renew returned %v", ErrRemote, rh.Status)
	}
	return nil
}

// Invoke performs one blocking collective invocation.
func (b *Binding) Invoke(ctx context.Context, spec *CallSpec) error {
	p, err := b.start(ctx, spec)
	if err != nil {
		b.stats.invocations.Add(1)
		b.stats.errors.Add(1)
		return err
	}
	return p.Wait(ctx)
}

// InvokeAsync begins a non-blocking invocation: all argument transfer
// happens before it returns, but the reply is awaited by Pending.Wait
// (collective), letting the client overlap remote computation with
// its own — the futures model of the paper's diffusion_nb stub.
func (b *Binding) InvokeAsync(ctx context.Context, spec *CallSpec) (*Pending, error) {
	return b.start(ctx, spec)
}

// Pending is an in-flight invocation. Wait must be called
// collectively by every client thread exactly once.
type Pending struct {
	b        *Binding
	spec     *CallSpec
	inv      uint64
	fut      *future.Future[replyEnvelope]
	outSinks []*outCollector
	span     *telemetry.Span // covers start through Wait; nil unsampled
}

type replyEnvelope struct {
	order cdr.ByteOrder
	body  []byte
}

// outCollector owns the concurrent assembly of one argument's
// multi-port out-blocks on this client thread. Routed: server threads
// decode straight into the sequence's local block via the assembler,
// on their delivering connections' read goroutines. Peer: the local
// block is registered as a one-sided window and the server's puts land
// straight off the read buffers — exactly one of asm/win is set.
type outCollector struct {
	arg    int
	asm    *blockAssembler
	win    *orb.Window
	cancel func()
	seq    *dseq.Doubles
}

// wait blocks until the argument's out-transfer completes or fails.
func (c *outCollector) wait(ctx contextDoner) error {
	if c.win != nil {
		return waitWindow(c.win, ctx, nil, nil)
	}
	return c.asm.wait(ctx, nil, nil)
}

// bytes is the payload volume received for this argument.
func (c *outCollector) bytes() uint64 {
	if c.win != nil {
		return uint64(c.win.Bytes())
	}
	return c.asm.nbytes.Load()
}

// start validates the call collectively, ships in-arguments, issues
// the request, and returns a Pending for the reply. The start phase
// (validation, argument fan-out, request issue) is timed into
// pardis_spmd_phase_seconds{phase="start"}; a per-invocation
// "spmd:<op>" span covers start through Wait, so the communicator's
// wire invocation (and the server's handler span beyond it) nest
// under this collective call.
func (b *Binding) start(ctx context.Context, spec *CallSpec) (*Pending, error) {
	op := ""
	if spec != nil {
		op = spec.Operation
	}
	phaseStart := time.Now()
	var span *telemetry.Span
	if telemetry.TraceActive(ctx) {
		ctx, span = telemetry.StartSpan(ctx, "spmd:"+op,
			telemetry.Attr{Key: "rank", Value: strconv.Itoa(b.rank)})
	}
	p, err := b.startPhase(ctx, spec)
	phaseStartHist.ObserveDuration(time.Since(phaseStart))
	if err != nil {
		span.Annotate("error", err.Error())
		span.End()
		return nil, err
	}
	p.span = span
	return p, nil
}

// startPhase is the uninstrumented body of start.
func (b *Binding) startPhase(ctx context.Context, spec *CallSpec) (*Pending, error) {
	if spec == nil || spec.Operation == "" {
		return nil, fmt.Errorf("%w: missing operation", ErrBadCall)
	}
	op, ok := b.desc.Ops[spec.Operation]
	if !ok {
		return nil, fmt.Errorf("%w: object has no operation %q", ErrBadCall, spec.Operation)
	}
	if len(spec.Args) != len(op.Args) {
		return nil, fmt.Errorf("%w: operation %s takes %d distributed args, got %d",
			ErrBadCall, spec.Operation, len(op.Args), len(spec.Args))
	}
	if spec.Oneway && spec.DecodeReply != nil {
		return nil, fmt.Errorf("%w: oneway call with DecodeReply", ErrBadCall)
	}
	for i, a := range spec.Args {
		if spec.Oneway && a.Mode != In {
			return nil, fmt.Errorf("%w: oneway call with %v argument", ErrBadCall, a.Mode)
		}
		if a.Mode != op.Args[i].Mode {
			return nil, fmt.Errorf("%w: arg %d is %v, interface declares %v",
				ErrBadCall, i, a.Mode, op.Args[i].Mode)
		}
		if a.Seq == nil {
			return nil, fmt.Errorf("%w: arg %d is nil", ErrBadCall, i)
		}
		if a.Seq.Layout().P() != b.size {
			return nil, fmt.Errorf("%w: arg %d distributed over %d threads, client has %d",
				ErrBadCall, i, a.Seq.Layout().P(), b.size)
		}
	}

	// Marshal scalars into an encapsulation and verify all threads
	// agree on them and on the operation (§2.1's identical-values
	// contract, checked rather than undefined).
	scalarEnc := cdr.NewEncoder(cdr.BigEndian)
	scalarEnc.PutOctet(byte(cdr.BigEndian))
	if spec.Scalars != nil {
		inner := cdr.NewEncoderAt(cdr.BigEndian, 1)
		spec.Scalars(inner)
		scalarEnc.PutOctets(inner.Bytes())
	}
	scalarBytes := scalarEnc.Bytes()
	sigSrc := cdr.NewEncoder(cdr.BigEndian)
	sigSrc.PutString(spec.Operation)
	sigSrc.PutOctetSeq(scalarBytes)
	for _, a := range spec.Args {
		sigSrc.PutOctet(byte(a.Mode))
		sigSrc.PutULong(uint32(a.Seq.Len()))
		for _, c := range a.Seq.Layout().Counts() {
			sigSrc.PutULong(uint32(c))
		}
	}
	sig := mp.HashBytes(sigSrc.Bytes())
	sigs, err := b.th.AllgatherU64(sig)
	if err != nil {
		return nil, err
	}
	for r, s := range sigs {
		if s != sigs[0] {
			return nil, fmt.Errorf("%w: thread %d invoked with different operation or scalars",
				ErrInconsistent, r)
		}
	}

	// The communicator allocates the invocation id and shares it.
	var inv uint64
	if b.rank == 0 {
		inv = b.oc.NewInvocationID()
	}
	invs, err := b.th.AllgatherU64(inv)
	if err != nil {
		return nil, err
	}
	inv = invs[0]

	p := &Pending{b: b, spec: spec, inv: inv}

	// Server-side layouts for planning.
	serverLayouts := make([]dist.Layout, len(spec.Args))
	for i := range spec.Args {
		sl, err := op.Args[i].Dist.Apply(spec.Args[i].Seq.Len(), b.desc.Threads)
		if err != nil {
			return nil, err
		}
		serverLayouts[i] = sl
	}

	// Register out-block sinks before anything is sent.
	if b.method == MultiPort {
		for i, a := range spec.Args {
			if a.Mode != Out && a.Mode != InOut {
				continue
			}
			plan, err := dist.Plan(serverLayouts[i], a.Seq.Layout())
			if err != nil {
				p.cancelSinks()
				return nil, err
			}
			expect := planElemsTo(plan, b.rank)
			if expect == 0 {
				continue
			}
			key, err := giop.BlockSinkKey(inv, uint32(i))
			if err != nil {
				p.cancelSinks()
				return nil, err
			}
			col := &outCollector{arg: i, seq: a.Seq}
			if b.peer {
				win, cancel, err := b.recv.RegisterWindow(key, a.Seq.LocalData(), int64(expect), nil)
				if err != nil {
					p.cancelSinks()
					return nil, err
				}
				col.win = win
				col.cancel = cancel
			} else {
				col.asm = newBlockAssembler(b.rank, a.Seq.LocalData(), expect)
				cancel, err := b.recv.ExpectBlocksFunc(key, col.asm.accept)
				if err != nil {
					p.cancelSinks()
					return nil, err
				}
				col.cancel = cancel
			}
			p.outSinks = append(p.outSinks, col)
		}
	}

	// Gather (centralized) — "the distributed arguments are gathered
	// and scattered by the communicators of the client and server as
	// part of the marshaling or unmarshaling process" (§3.2).
	gathered := make([][]float64, len(spec.Args))
	if b.method == Centralized {
		for i, a := range spec.Args {
			if a.Mode != In && a.Mode != InOut {
				continue
			}
			full, err := dseq.GatherDoubles(a.Seq, b.th, 0)
			if err != nil {
				p.cancelSinks()
				return nil, err
			}
			gathered[i] = full
			b.stats.bytesOut.Add(uint64(a.Seq.LocalLen()) * 8)
		}
	}

	// The communicator issues the request.
	if b.rank == 0 {
		w := &invocationWire{Method: b.method, Scalars: scalarBytes,
			PeerWindows: b.peer,
			Args:        make([]*argWire, len(spec.Args))}
		for i, a := range spec.Args {
			aw := &argWire{
				Mode:         a.Mode,
				Length:       a.Seq.Len(),
				ClientCounts: a.Seq.Layout().Counts(),
			}
			if b.method == MultiPort && (a.Mode == Out || a.Mode == InOut) {
				aw.ClientEndpoints = b.allEndpoints
			}
			if b.method == Centralized && (a.Mode == In || a.Mode == InOut) {
				data := gathered[i]
				if data == nil {
					data = []float64{}
				}
				aw.Data = data
			}
			w.Args[i] = aw
		}
		hdr := giop.RequestHeader{
			InvocationID:     inv,
			ResponseExpected: !spec.Oneway,
			ObjectKey:        b.ref.Key,
			Operation:        spec.Operation,
			ThreadRank:       0,
			ThreadCount:      int32(b.size),
		}
		fut, resolver := future.New[replyEnvelope]()
		p.fut = fut
		// InvokeRef rather than a pinned communicator endpoint: for a
		// conventional (Threads==1) object it fails over across every
		// replica endpoint; for an SPMD object the failover set is
		// exactly the communicator port.
		go func() {
			rh, order, body, err := b.oc.InvokeRef(ctx, b.ref, hdr, w.encode)
			if err != nil {
				resolver.Reject(err)
				return
			}
			switch rh.Status {
			case giop.ReplyOK:
				resolver.Resolve(replyEnvelope{order: order, body: body})
			case giop.ReplySystemException:
				ex, derr := giop.DecodeSystemException(cdr.NewDecoder(order, body))
				if derr != nil {
					resolver.Reject(fmt.Errorf("%w: undecodable system exception", ErrRemote))
					return
				}
				resolver.Reject(fmt.Errorf("%w: %v", ErrRemote, ex))
			default:
				resolver.Reject(fmt.Errorf("%w: reply status %v", ErrRemote, rh.Status))
			}
		}()
	}

	// Multi-port data transfer: every client thread ships its blocks
	// directly to the owning server threads (§3.3).
	var sendErr error
	if b.method == MultiPort {
		for i, a := range spec.Args {
			if a.Mode != In && a.Mode != InOut {
				continue
			}
			plan, err := dist.Plan(a.Seq.Layout(), serverLayouts[i])
			if err != nil {
				sendErr = err
				break
			}
			if err := b.sendBlocks(inv, uint32(i), plan, a.Seq); err != nil {
				sendErr = err
				break
			}
		}
	}

	// Collective verdict on the send phase: either every thread
	// proceeds to Wait or none does, so a per-thread transport
	// failure cannot strand the others in a collective.
	flag := uint64(0)
	if sendErr != nil {
		flag = 1
	}
	flags, err := b.th.AllgatherU64(flag)
	if err != nil {
		p.cancelSinks()
		return nil, err
	}
	for r, f := range flags {
		if f != 0 {
			p.cancelSinks()
			if sendErr != nil {
				return nil, sendErr
			}
			return nil, fmt.Errorf("%w: in-transfer failed on thread %d", ErrPartialFailure, r)
		}
	}
	return p, nil
}

// sendBlocks ships this client thread's share of an in transfer,
// chunked and windowed (see sendPlanBlocks); a peer binding ships the
// blocks as one-sided puts into the windows the server's ranks
// registered (sendPlanPuts).
func (b *Binding) sendBlocks(inv uint64, argIdx uint32, plan []dist.Transfer, seq *dseq.Doubles) error {
	window, chunkElems := b.window, b.chunkElems
	if b.autoTune {
		window, chunkElems = tunedKnobs(b.pathKey, window, chunkElems)
	}
	t := time.Now()
	var n uint64
	var err error
	if b.peer {
		n, err = sendPlanPuts(b.oc, inv, argIdx, b.rank, plan, seq.LocalData(),
			b.ref.ThreadEndpoint, window, chunkElems)
	} else {
		n, err = sendPlanBlocks(b.oc, inv, argIdx, b.rank, plan, seq.LocalData(),
			b.ref.ThreadEndpoint, window, chunkElems)
	}
	elapsed := time.Since(t)
	b.stats.bytesOut.Add(n)
	b.xferIn.ObserveDuration(elapsed)
	if b.autoTune && err == nil {
		AutoTuner.Record(b.pathKey, n, elapsed)
	}
	return err
}

func (p *Pending) cancelSinks() {
	for _, c := range p.outSinks {
		if c.cancel != nil {
			c.cancel()
			c.cancel = nil
		}
	}
	p.outSinks = nil
}

// Wait completes the invocation collectively: the communicator
// receives the reply and broadcasts the completion status (§3.2);
// on success every thread collects its multi-port out-blocks (the
// ORB buffers blocks that arrived before or after the reply), the
// scalar results and centralized out-data are distributed, and the
// threads synchronize on the exit barrier (§3.3).
//
// Status travels before block collection so that a failed invocation
// cannot strand threads waiting for out-blocks the server never sent.
func (p *Pending) Wait(ctx context.Context) (err error) {
	b := p.b
	waitStart := time.Now()
	defer func() {
		b.stats.invocations.Add(1)
		if err != nil {
			b.stats.errors.Add(1)
			p.span.Annotate("error", err.Error())
		}
		p.span.End()
		phaseWaitHist.ObserveDuration(time.Since(waitStart))
	}()

	// A oneway invocation has nothing to collect or decode; the
	// threads only resynchronize.
	if p.spec.Oneway {
		return b.exitBarrier()
	}
	defer p.cancelSinks()

	// The communicator awaits the reply; every thread then learns
	// the outcome (completion status broadcast of §3.2).
	var envBytes []byte
	if b.rank == 0 {
		env, err := p.fut.GetContext(ctx)
		e := cdr.NewEncoder(cdr.BigEndian)
		if err != nil {
			e.PutBoolean(false)
			e.PutString(err.Error())
		} else {
			e.PutBoolean(true)
			// Re-encode the reply body big-endian if needed so all
			// threads decode uniformly.
			body := env.body
			if env.order != cdr.BigEndian {
				var rerr error
				body, rerr = reencodeReplyBody(env.order, env.body)
				if rerr != nil {
					e.Reset()
					e.PutBoolean(false)
					e.PutString(rerr.Error())
					body = nil
				}
			}
			if body != nil {
				e.PutOctetSeq(body)
			}
		}
		envBytes = e.Bytes()
		if _, err := b.th.Bcast(0, envBytes); err != nil {
			return err
		}
	} else {
		var err error
		envBytes, err = b.th.Bcast(0, nil)
		if err != nil {
			return err
		}
	}

	d := cdr.NewDecoder(cdr.BigEndian, envBytes)
	okFlag, err := d.Boolean()
	if err != nil {
		return err
	}
	if !okFlag {
		msg, _ := d.String()
		return fmt.Errorf("%w: %s", ErrRemote, msg)
	}
	body, err := d.OctetSeq()
	if err != nil {
		return err
	}

	// Collect multi-port out-blocks destined for this thread. The
	// server completed successfully, so every planned block was (or
	// is being) sent; blocks were (and still are) decoded straight
	// into the sequences' local data by the per-argument assemblers —
	// this loop only awaits completion.
	var localErr error
	if len(p.outSinks) > 0 {
		t := time.Now()
		for _, col := range p.outSinks {
			if localErr == nil {
				localErr = col.wait(ctx)
			}
			b.stats.bytesIn.Add(col.bytes())
			col.cancel()
			col.cancel = nil
		}
		b.xferOut.ObserveDuration(time.Since(t))
	}

	// Collective verdict on the collection phase.
	flag := uint64(0)
	if localErr != nil {
		flag = 1
	}
	flags, aerr := b.th.AllgatherU64(flag)
	if aerr != nil {
		return aerr
	}
	for r, f := range flags {
		if f != 0 {
			if localErr != nil {
				return localErr
			}
			return fmt.Errorf("%w: out-transfer failed on thread %d", ErrPartialFailure, r)
		}
	}

	// Reply body layout (from Object.dispatch): scalar encapsulation
	// then centralized out-args. It was encoded at stream base 8; the
	// octet-seq embedding shifts offsets, so decode from a copy at
	// base 8 for alignment correctness.
	rd := cdr.NewDecoderAt(cdr.BigEndian, body, 8)
	scalarEnc, err := rd.Encapsulation()
	if err != nil {
		return err
	}
	nOut, err := rd.ULong()
	if err != nil {
		return err
	}
	outs := make([][]float64, nOut)
	for i := range outs {
		if outs[i], err = rd.DoubleSeq(); err != nil {
			return err
		}
	}

	// Scatter centralized out-args back into the caller's sequences.
	if b.method == Centralized {
		idx := 0
		for _, a := range p.spec.Args {
			if a.Mode != Out && a.Mode != InOut {
				continue
			}
			var full []float64
			if b.rank == 0 {
				if idx >= len(outs) {
					return fmt.Errorf("%w: reply missing out argument %d", ErrRemote, idx)
				}
				full = outs[idx]
			}
			idx++
			if err := dseq.ScatterDoubles(a.Seq, b.th, 0, full); err != nil {
				return err
			}
			b.stats.bytesIn.Add(uint64(a.Seq.LocalLen()) * 8)
		}
	}

	// Deliver scalar results on every thread.
	if p.spec.DecodeReply != nil {
		if err := p.spec.DecodeReply(scalarEnc); err != nil {
			return err
		}
	}

	// Exit barrier (§3.3's texit_barrier).
	return b.exitBarrier()
}

// exitBarrier runs the collective exit barrier, recording how long
// this rank waited in it. A rank's wait time is its lag ahead of the
// slowest rank: near-zero means this rank was the straggler, a large
// value means it sat idle — the skew operators look at when a
// collective invocation underperforms.
func (b *Binding) exitBarrier() error {
	t := time.Now()
	err := b.th.Barrier()
	b.rankLag.ObserveDuration(time.Since(t))
	return err
}

// reencodeReplyBody normalizes a foreign-order reply body to
// big-endian. Bodies are produced by Object.dispatch at stream base 8:
// a scalar encapsulation (order-tagged internally, copied verbatim)
// followed by the centralized out-argument sequences.
func reencodeReplyBody(order cdr.ByteOrder, body []byte) ([]byte, error) {
	d := cdr.NewDecoderAt(order, body, 8)
	raw, err := d.OctetSeq()
	if err != nil {
		return nil, err
	}
	n, err := d.ULong()
	if err != nil {
		return nil, err
	}
	outs := make([][]float64, n)
	for i := range outs {
		if outs[i], err = d.DoubleSeq(); err != nil {
			return nil, err
		}
	}
	e := cdr.NewEncoderAt(cdr.BigEndian, 8)
	e.PutOctetSeq(raw)
	e.PutULong(n)
	for _, o := range outs {
		e.PutDoubleSeq(o)
	}
	return e.Bytes(), nil
}
