package spmd

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"pardis/internal/cdr"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/ior"
	"pardis/internal/mp"
	"pardis/internal/rts"
	"pardis/internal/transport"
)

// testObject describes a server fixture: an SPMD object with m
// computing threads exporting the given operations.
type testObject struct {
	ref    *ior.Ref
	close  func()
	donech chan error

	mu   sync.Mutex
	objs []*Object
}

// threadObjects returns the per-thread Object handles (for stats
// assertions after the serve loops exit).
func (o *testObject) threadObjects() []*Object {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*Object(nil), o.objs...)
}

// startObject launches an m-thread SPMD object serving ops until the
// returned close function runs. Each server thread loops Serve.
func startObject(t *testing.T, reg *transport.Registry, m int, multiPort bool,
	ops func(th rts.Thread) map[string]*Op) *testObject {
	t.Helper()
	return startObjectCfg(t, reg, m, multiPort, ops, nil)
}

// startObjectCfg is startObject with a per-thread config hook (e.g.
// data-plane knobs).
func startObjectCfg(t *testing.T, reg *transport.Registry, m int, multiPort bool,
	ops func(th rts.Thread) map[string]*Op, mutate func(*ObjectConfig)) *testObject {
	t.Helper()
	w := mp.MustWorld(m)
	refs := make(chan *ior.Ref, 1)
	to := &testObject{donech: make(chan error, m), objs: make([]*Object, m)}
	for r := 0; r < m; r++ {
		go func(rank int) {
			th := rts.NewMessagePassing(w.Rank(rank))
			cfg := ObjectConfig{
				Thread:         th,
				Registry:       reg,
				ListenEndpoint: "inproc:*",
				Key:            "objects/test",
				TypeID:         "IDL:test_object:1.0",
				MultiPort:      multiPort,
				Ops:            ops(th),
			}
			if mutate != nil {
				mutate(&cfg)
			}
			obj, err := Export(cfg)
			if err != nil {
				to.donech <- err
				return
			}
			to.mu.Lock()
			to.objs[rank] = obj
			to.mu.Unlock()
			if rank == 0 {
				refs <- obj.Ref()
			}
			to.donech <- obj.Serve(context.Background())
		}(r)
	}
	to.ref = <-refs
	to.close = func() {
		to.mu.Lock()
		for _, o := range to.objs {
			if o != nil {
				o.Close()
			}
		}
		to.mu.Unlock()
		w.Close()
	}
	return to
}

// diffusionOps returns the paper's diffusion interface: one in scalar
// (timesteps) and one inout distributed array. The "diffusion" here
// multiplies each element by 2^timesteps so correctness is easy to
// verify from any distribution.
func diffusionOps(th rts.Thread) map[string]*Op {
	return map[string]*Op{
		"diffusion": {
			Spec: OpSpec{Args: []ArgSpec{{Mode: InOut, Dist: dist.Block()}}},
			Handler: func(call *Call) error {
				steps, err := call.Scalars.Long()
				if err != nil {
					return err
				}
				local := call.Args[0].LocalData()
				for s := int32(0); s < steps; s++ {
					for i := range local {
						local[i] *= 2
					}
				}
				call.Reply().PutLong(steps)
				return nil
			},
		},
	}
}

// runClient drives fn on an n-thread SPMD client bound to ref.
func runClient(t *testing.T, reg *transport.Registry, n int, method TransferMethod,
	ref *ior.Ref, fn func(b *Binding, th rts.Thread) error) {
	t.Helper()
	err := mp.Run(n, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		b, err := Bind(context.Background(), BindConfig{
			Thread:         th,
			Registry:       reg,
			Method:         method,
			ListenEndpoint: "inproc:*",
		}, ref)
		if err != nil {
			return err
		}
		defer b.Close()
		return fn(b, th)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func newReg() *transport.Registry {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	reg.Register(transport.TCP{})
	return reg
}

// invokeDiffusion performs the paper's example invocation and checks
// the result on every client thread.
func invokeDiffusion(b *Binding, th rts.Thread, length int, steps int32) error {
	seq, err := dseq.NewDoubles(length, dist.Block(), th.Size(), th.Rank())
	if err != nil {
		return err
	}
	for i := range seq.LocalData() {
		seq.LocalData()[i] = float64(seq.Lo() + i)
	}
	var echoed int32
	err = b.Invoke(context.Background(), &CallSpec{
		Operation: "diffusion",
		Scalars:   func(e *cdr.Encoder) { e.PutLong(steps) },
		Args:      []DistArg{{Mode: InOut, Seq: seq}},
		DecodeReply: func(d *cdr.Decoder) error {
			v, err := d.Long()
			echoed = v
			return err
		},
	})
	if err != nil {
		return err
	}
	if echoed != steps {
		return fmt.Errorf("scalar reply = %d, want %d", echoed, steps)
	}
	scale := 1.0
	for s := int32(0); s < steps; s++ {
		scale *= 2
	}
	for i, v := range seq.LocalData() {
		want := float64(seq.Lo()+i) * scale
		if v != want {
			return fmt.Errorf("thread %d: [%d] = %v, want %v", th.Rank(), i, v, want)
		}
	}
	return nil
}

func TestDiffusionCentralized(t *testing.T) {
	for _, cfg := range []struct{ n, m int }{{1, 1}, {1, 4}, {2, 2}, {4, 2}, {3, 5}} {
		t.Run(fmt.Sprintf("n%d_m%d", cfg.n, cfg.m), func(t *testing.T) {
			reg := newReg()
			obj := startObject(t, reg, cfg.m, false, diffusionOps)
			defer obj.close()
			runClient(t, reg, cfg.n, Centralized, obj.ref, func(b *Binding, th rts.Thread) error {
				return invokeDiffusion(b, th, 1000, 3)
			})
		})
	}
}

func TestDiffusionMultiPort(t *testing.T) {
	for _, cfg := range []struct{ n, m int }{{1, 1}, {1, 4}, {2, 2}, {4, 2}, {3, 5}, {4, 8}} {
		t.Run(fmt.Sprintf("n%d_m%d", cfg.n, cfg.m), func(t *testing.T) {
			reg := newReg()
			obj := startObject(t, reg, cfg.m, true, diffusionOps)
			defer obj.close()
			runClient(t, reg, cfg.n, MultiPort, obj.ref, func(b *Binding, th rts.Thread) error {
				return invokeDiffusion(b, th, 1000, 3)
			})
		})
	}
}

func TestBothMethodsAgreeBitForBit(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 4, true, diffusionOps)
	defer obj.close()
	results := make(map[TransferMethod][]float64)
	var mu sync.Mutex
	for _, method := range []TransferMethod{Centralized, MultiPort} {
		runClient(t, reg, 3, method, obj.ref, func(b *Binding, th rts.Thread) error {
			seq, err := dseq.NewDoubles(257, dist.Block(), th.Size(), th.Rank())
			if err != nil {
				return err
			}
			for i := range seq.LocalData() {
				seq.LocalData()[i] = float64(seq.Lo()+i) * 0.5
			}
			if err := b.Invoke(context.Background(), &CallSpec{
				Operation: "diffusion",
				Scalars:   func(e *cdr.Encoder) { e.PutLong(2) },
				Args:      []DistArg{{Mode: InOut, Seq: seq}},
			}); err != nil {
				return err
			}
			full, err := dseq.GatherDoubles(seq, th, 0)
			if err != nil {
				return err
			}
			if th.Rank() == 0 {
				mu.Lock()
				results[method] = full
				mu.Unlock()
			}
			return nil
		})
	}
	c, m := results[Centralized], results[MultiPort]
	if len(c) != 257 || len(m) != 257 {
		t.Fatalf("lengths %d %d", len(c), len(m))
	}
	for i := range c {
		if c[i] != m[i] {
			t.Fatalf("methods disagree at %d: %v vs %v", i, c[i], m[i])
		}
	}
}

func TestServerSideProportions(t *testing.T) {
	// §2.2: server fixes Distribution(Proportions(2,4,2,4)) before
	// registering; the client still sees a plain BLOCK sequence.
	prop, _ := dist.Proportions(2, 4, 2, 4)
	ops := func(th rts.Thread) map[string]*Op {
		return map[string]*Op{
			"scale": {
				Spec: OpSpec{Args: []ArgSpec{{Mode: InOut, Dist: prop}}},
				Handler: func(call *Call) error {
					// Verify this thread's share matches the
					// proportions layout.
					want := prop.MustApply(call.Args[0].Len(), call.Thread.Size()).Count(call.Thread.Rank())
					if call.Args[0].LocalLen() != want {
						return fmt.Errorf("thread %d got %d elements, want %d",
							call.Thread.Rank(), call.Args[0].LocalLen(), want)
					}
					for i := range call.Args[0].LocalData() {
						call.Args[0].LocalData()[i] += 100
					}
					return nil
				},
			},
		}
	}
	for _, method := range []TransferMethod{Centralized, MultiPort} {
		t.Run(method.String(), func(t *testing.T) {
			reg := newReg()
			obj := startObject(t, reg, 4, true, ops)
			defer obj.close()
			runClient(t, reg, 2, method, obj.ref, func(b *Binding, th rts.Thread) error {
				seq, err := dseq.NewDoubles(120, dist.Block(), th.Size(), th.Rank())
				if err != nil {
					return err
				}
				for i := range seq.LocalData() {
					seq.LocalData()[i] = float64(seq.Lo() + i)
				}
				if err := b.Invoke(context.Background(), &CallSpec{
					Operation: "scale",
					Args:      []DistArg{{Mode: InOut, Seq: seq}},
				}); err != nil {
					return err
				}
				for i, v := range seq.LocalData() {
					if v != float64(seq.Lo()+i)+100 {
						return fmt.Errorf("[%d] = %v", i, v)
					}
				}
				return nil
			})
		})
	}
}

func TestInOnlyAndOutOnlyArgs(t *testing.T) {
	ops := func(th rts.Thread) map[string]*Op {
		return map[string]*Op{
			"copy": {
				Spec: OpSpec{Args: []ArgSpec{
					{Mode: In, Dist: dist.Block()},
					{Mode: Out, Dist: dist.Block()},
				}},
				Handler: func(call *Call) error {
					src, dst := call.Args[0], call.Args[1]
					if src.Len() != dst.Len() {
						return errors.New("length mismatch")
					}
					// Same layout on both: direct local copy works.
					copy(dst.LocalData(), src.LocalData())
					for i := range dst.LocalData() {
						dst.LocalData()[i] *= -1
					}
					return nil
				},
			},
		}
	}
	for _, method := range []TransferMethod{Centralized, MultiPort} {
		t.Run(method.String(), func(t *testing.T) {
			reg := newReg()
			obj := startObject(t, reg, 3, true, ops)
			defer obj.close()
			runClient(t, reg, 2, method, obj.ref, func(b *Binding, th rts.Thread) error {
				in, _ := dseq.NewDoubles(77, dist.Block(), th.Size(), th.Rank())
				out, _ := dseq.NewDoubles(77, dist.Block(), th.Size(), th.Rank())
				for i := range in.LocalData() {
					in.LocalData()[i] = float64(in.Lo() + i)
				}
				if err := b.Invoke(context.Background(), &CallSpec{
					Operation: "copy",
					Args: []DistArg{
						{Mode: In, Seq: in},
						{Mode: Out, Seq: out},
					},
				}); err != nil {
					return err
				}
				for i, v := range out.LocalData() {
					if v != -float64(out.Lo()+i) {
						return fmt.Errorf("out[%d] = %v", i, v)
					}
				}
				return nil
			})
		})
	}
}

func TestNonBlockingInvocationFutures(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 2, true, diffusionOps)
	defer obj.close()
	runClient(t, reg, 2, MultiPort, obj.ref, func(b *Binding, th rts.Thread) error {
		seq, _ := dseq.NewDoubles(64, dist.Block(), th.Size(), th.Rank())
		for i := range seq.LocalData() {
			seq.LocalData()[i] = 1
		}
		pending, err := b.InvokeAsync(context.Background(), &CallSpec{
			Operation: "diffusion",
			Scalars:   func(e *cdr.Encoder) { e.PutLong(1) },
			Args:      []DistArg{{Mode: InOut, Seq: seq}},
		})
		if err != nil {
			return err
		}
		// Overlap local work with the remote call.
		localWork := 0.0
		for i := 0; i < 1000; i++ {
			localWork += float64(i)
		}
		if localWork == 0 {
			return errors.New("unreachable")
		}
		if err := pending.Wait(context.Background()); err != nil {
			return err
		}
		for i, v := range seq.LocalData() {
			if v != 2 {
				return fmt.Errorf("[%d] = %v", i, v)
			}
		}
		return nil
	})
}

func TestSequentialInvocations(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 3, true, diffusionOps)
	defer obj.close()
	runClient(t, reg, 2, MultiPort, obj.ref, func(b *Binding, th rts.Thread) error {
		for k := 0; k < 5; k++ {
			if err := invokeDiffusion(b, th, 50+k, 1); err != nil {
				return fmt.Errorf("invocation %d: %w", k, err)
			}
		}
		return nil
	})
}

func TestScalarConsistencyViolationDetected(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 2, true, diffusionOps)
	defer obj.close()
	err := mp.Run(2, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		b, err := Bind(context.Background(), BindConfig{
			Thread: th, Registry: reg, Method: MultiPort, ListenEndpoint: "inproc:*",
		}, obj.ref)
		if err != nil {
			return err
		}
		defer b.Close()
		seq, _ := dseq.NewDoubles(10, dist.Block(), th.Size(), th.Rank())
		// Each thread passes a DIFFERENT timestep value — the §2.1
		// contract violation the paper leaves undefined; PARDIS-Go
		// must detect it.
		err = b.Invoke(context.Background(), &CallSpec{
			Operation: "diffusion",
			Scalars:   func(e *cdr.Encoder) { e.PutLong(int32(th.Rank())) },
			Args:      []DistArg{{Mode: InOut, Seq: seq}},
		})
		if !errors.Is(err, ErrInconsistent) {
			return fmt.Errorf("want ErrInconsistent, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnknownOperation(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 2, false, diffusionOps)
	defer obj.close()
	runClient(t, reg, 1, Centralized, obj.ref, func(b *Binding, th rts.Thread) error {
		err := b.Invoke(context.Background(), &CallSpec{Operation: "melt"})
		if !errors.Is(err, ErrBadCall) {
			return fmt.Errorf("want ErrBadCall, got %v", err)
		}
		return nil
	})
}

func TestModeMismatchRejected(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 2, false, diffusionOps)
	defer obj.close()
	runClient(t, reg, 1, Centralized, obj.ref, func(b *Binding, th rts.Thread) error {
		seq, _ := dseq.NewDoubles(10, dist.Block(), 1, 0)
		err := b.Invoke(context.Background(), &CallSpec{
			Operation: "diffusion",
			Scalars:   func(e *cdr.Encoder) { e.PutLong(1) },
			Args:      []DistArg{{Mode: In, Seq: seq}},
		})
		if !errors.Is(err, ErrBadCall) {
			return fmt.Errorf("want ErrBadCall, got %v", err)
		}
		return nil
	})
}

func TestHandlerErrorBecomesRemoteError(t *testing.T) {
	ops := func(th rts.Thread) map[string]*Op {
		return map[string]*Op{
			"fail": {
				Spec: OpSpec{},
				Handler: func(call *Call) error {
					return errors.New("numerical instability")
				},
			},
		}
	}
	reg := newReg()
	obj := startObject(t, reg, 2, false, ops)
	defer obj.close()
	runClient(t, reg, 1, Centralized, obj.ref, func(b *Binding, th rts.Thread) error {
		err := b.Invoke(context.Background(), &CallSpec{Operation: "fail"})
		if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "numerical instability") {
			return fmt.Errorf("want wrapped handler error, got %v", err)
		}
		// The object must keep serving afterwards.
		err = b.Invoke(context.Background(), &CallSpec{Operation: "fail"})
		if !errors.Is(err, ErrRemote) {
			return fmt.Errorf("second call: %v", err)
		}
		return nil
	})
}

func TestMultiPortBindToCentralOnlyObjectFails(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 3, false, diffusionOps) // no per-thread ports
	defer obj.close()
	err := mp.Run(1, func(proc *mp.Proc) error {
		_, err := Bind(context.Background(), BindConfig{
			Thread:         rts.NewMessagePassing(proc),
			Registry:       reg,
			Method:         MultiPort,
			ListenEndpoint: "inproc:*",
		}, obj.ref)
		if !errors.Is(err, ErrBadCall) {
			return fmt.Errorf("want ErrBadCall, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBindPlain(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 4, true, diffusionOps)
	defer obj.close()
	b, w, err := BindPlain(context.Background(), reg, MultiPort, "inproc:*", obj.ref)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	defer b.Close()
	seq, _ := dseq.NewDoubles(100, dist.Block(), 1, 0)
	for i := range seq.LocalData() {
		seq.LocalData()[i] = float64(i)
	}
	if err := b.Invoke(context.Background(), &CallSpec{
		Operation: "diffusion",
		Scalars:   func(e *cdr.Encoder) { e.PutLong(1) },
		Args:      []DistArg{{Mode: InOut, Seq: seq}},
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range seq.LocalData() {
		if v != float64(i)*2 {
			t.Fatalf("[%d] = %v", i, v)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	// Several independent clients invoking the same SPMD object must
	// serialize without deadlock (the §3.3 footnote scenario: the
	// centralized header path prevents threads accepting different
	// invocations).
	reg := newReg()
	obj := startObject(t, reg, 3, true, diffusionOps)
	defer obj.close()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			err := mp.Run(2, func(proc *mp.Proc) error {
				th := rts.NewMessagePassing(proc)
				b, err := Bind(context.Background(), BindConfig{
					Thread: th, Registry: reg,
					Method: MultiPort, ListenEndpoint: "inproc:*",
				}, obj.ref)
				if err != nil {
					return err
				}
				defer b.Close()
				return invokeDiffusion(b, th, 100+c, 2)
			})
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 2, true, diffusionOps)
	defer obj.close()
	runClient(t, reg, 1, Centralized, obj.ref, func(b *Binding, th rts.Thread) error {
		ops := b.Describe()
		op, ok := ops["diffusion"]
		if !ok {
			return fmt.Errorf("describe missing diffusion: %v", ops)
		}
		if len(op.Args) != 1 || op.Args[0].Mode != InOut {
			return fmt.Errorf("describe args: %+v", op.Args)
		}
		return nil
	})
}

func TestLargeSequenceTransfer(t *testing.T) {
	// 2^17 doubles — the paper's experimental size — through both
	// methods over inproc.
	if testing.Short() {
		t.Skip("large transfer")
	}
	const L = 1 << 17
	for _, method := range []TransferMethod{Centralized, MultiPort} {
		t.Run(method.String(), func(t *testing.T) {
			reg := newReg()
			obj := startObject(t, reg, 8, true, diffusionOps)
			defer obj.close()
			runClient(t, reg, 4, method, obj.ref, func(b *Binding, th rts.Thread) error {
				return invokeDiffusion(b, th, L, 1)
			})
		})
	}
}

// Property: for random (n, m, length, server distribution), both
// transfer methods produce bit-identical results — the methods are
// interchangeable implementations of one semantics.
func TestQuickMethodsEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns many SPMD sections")
	}
	rng := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < 12; trial++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(6)
		length := rng.Intn(3000)
		var serverDist dist.Spec
		if rng.Intn(2) == 0 {
			serverDist = dist.Block()
		} else {
			w := make([]int, m)
			for i := range w {
				w[i] = 1 + rng.Intn(5)
			}
			var err error
			serverDist, err = dist.Proportions(w...)
			if err != nil {
				t.Fatal(err)
			}
		}
		steps := int32(1 + rng.Intn(3))
		seed := rng.Int63()

		ops := func(th rts.Thread) map[string]*Op {
			return map[string]*Op{
				"diffusion": {
					Spec: OpSpec{Args: []ArgSpec{{Mode: InOut, Dist: serverDist}}},
					Handler: func(call *Call) error {
						s, err := call.Scalars.Long()
						if err != nil {
							return err
						}
						for k := int32(0); k < s; k++ {
							for i := range call.Args[0].LocalData() {
								call.Args[0].LocalData()[i] = call.Args[0].LocalData()[i]*1.5 + 1
							}
						}
						return nil
					},
				},
			}
		}
		reg := newReg()
		obj := startObject(t, reg, m, true, ops)
		results := map[TransferMethod][]float64{}
		var mu sync.Mutex
		for _, method := range []TransferMethod{Centralized, MultiPort} {
			method := method
			runClient(t, reg, n, method, obj.ref, func(b *Binding, th rts.Thread) error {
				seq, err := dseq.NewDoubles(length, dist.Block(), th.Size(), th.Rank())
				if err != nil {
					return err
				}
				local := rand.New(rand.NewSource(seed + int64(th.Rank())))
				for i := range seq.LocalData() {
					seq.LocalData()[i] = local.NormFloat64()
				}
				if err := b.Invoke(context.Background(), &CallSpec{
					Operation: "diffusion",
					Scalars:   func(e *cdr.Encoder) { e.PutLong(steps) },
					Args:      []DistArg{{Mode: InOut, Seq: seq}},
				}); err != nil {
					return err
				}
				full, err := dseq.GatherDoubles(seq, th, 0)
				if err != nil {
					return err
				}
				if th.Rank() == 0 {
					mu.Lock()
					results[method] = full
					mu.Unlock()
				}
				return nil
			})
		}
		obj.close()
		c, mp_ := results[Centralized], results[MultiPort]
		if len(c) != length || len(mp_) != length {
			t.Fatalf("trial %d (n=%d m=%d L=%d): lengths %d/%d",
				trial, n, m, length, len(c), len(mp_))
		}
		for i := range c {
			if c[i] != mp_[i] {
				t.Fatalf("trial %d (n=%d m=%d L=%d %v): methods disagree at %d: %v vs %v",
					trial, n, m, length, serverDist, i, c[i], mp_[i])
			}
		}
	}
}

// TestEmptySequence: zero-length distributed arguments must work
// through both methods.
func TestEmptySequence(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 3, true, diffusionOps)
	defer obj.close()
	for _, method := range []TransferMethod{Centralized, MultiPort} {
		runClient(t, reg, 2, method, obj.ref, func(b *Binding, th rts.Thread) error {
			seq, err := dseq.NewDoubles(0, dist.Block(), th.Size(), th.Rank())
			if err != nil {
				return err
			}
			return b.Invoke(context.Background(), &CallSpec{
				Operation: "diffusion",
				Scalars:   func(e *cdr.Encoder) { e.PutLong(1) },
				Args:      []DistArg{{Mode: InOut, Seq: seq}},
			})
		})
	}
}

func TestStatsCounters(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 2, true, diffusionOps)
	defer obj.close()
	runClient(t, reg, 2, MultiPort, obj.ref, func(b *Binding, th rts.Thread) error {
		if err := invokeDiffusion(b, th, 128, 1); err != nil {
			return err
		}
		if err := invokeDiffusion(b, th, 128, 1); err != nil {
			return err
		}
		st := b.Stats()
		if st.Invocations != 2 || st.Errors != 0 {
			return fmt.Errorf("stats = %+v", st)
		}
		// Each thread ships its half (64 doubles) and receives it
		// back, twice (inout under multi-port). The default peer data
		// plane moves raw element payloads — window puts carry no CDR
		// sequence framing — so the counters account exactly 64*8
		// bytes per block.
		const blockBytes = 64 * 8
		if st.BytesOut != 2*blockBytes || st.BytesIn != 2*blockBytes {
			return fmt.Errorf("byte counters = %+v", st)
		}
		// A failing invocation increments Errors.
		err := b.Invoke(context.Background(), &CallSpec{Operation: "nope"})
		if !errors.Is(err, ErrBadCall) {
			return fmt.Errorf("unexpected: %v", err)
		}
		if got := b.Stats(); got.Errors != 1 || got.Invocations != 3 {
			return fmt.Errorf("after failure: %+v", got)
		}
		return nil
	})
}
