// Lease-based reclamation of rank-side binding state.
//
// Every client of an SPMD object holds an implicit lease on each
// server rank, identified by the 24-bit random prefix of its
// invocation ids (one prefix per client ORB process). Traffic renews
// the lease: requests and describe/renew calls at the communicator,
// block arrivals at every rank. When a client dies — between
// `_spmd_bind` and invoke, or mid-transfer — its traffic stops, the
// lease expires TTL later, and every rank-side wait tied to it
// unwinds with ErrLeaseExpired: block sinks are cancelled by their
// owning dispatch, the collective agrees on the failure, and the
// object keeps serving other clients. Idle-but-alive clients keep
// their lease with the cheap RenewOperation ping (Binding.Renew).
package spmd

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"pardis/internal/telemetry"
)

// DefaultLeaseTTL is how long a client lease survives without traffic
// before its rank-side state is reclaimed.
const DefaultLeaseTTL = 30 * time.Second

// ErrLeaseExpired means a dispatch was abandoned because its client's
// lease ran out: the client stopped sending traffic (and renew pings)
// for a full TTL, so the ranks stopped waiting for it.
var ErrLeaseExpired = errors.New("spmd: client lease expired")

// Interned once; both are process-wide and accounted in deltas, so
// they stay correct across any number of objects and ranks.
var (
	leasesActive  = telemetry.Default.Gauge("pardis_spmd_leases_active")
	leasesExpired = telemetry.Default.Counter("pardis_spmd_leases_expired_total")
)

// ActiveLeases reports the live client leases across every SPMD rank
// in this process (the pardis_spmd_leases_active gauge) — the load
// signal agent heartbeats piggyback: each lease is a client holding
// rank-side transfer state here.
func ActiveLeases() int { return int(leasesActive.Value()) }

// ExpiredLeases reports the cumulative count of client leases this
// process has reclaimed (the pardis_spmd_leases_expired_total
// counter) — the slow-moving companion to ActiveLeases that heartbeat
// metrics digests and /healthz carry so an agent can see a replica
// shedding abandoned rank state.
func ExpiredLeases() uint64 { return leasesExpired.Value() }

// leaseClient extracts the lease identity from an invocation id: the
// client ORB's random prefix (bits 32-55), shared by every invocation
// and block the same client process sends.
func leaseClient(inv uint64) uint64 { return inv >> 32 }

// lease is one client's liveness record on one rank.
type lease struct {
	// expired closes exactly once, when the sweep declares the client
	// dead; waits select on it alongside their other unwind channels.
	expired chan struct{}
	// last is the unix-nano timestamp of the client's most recent
	// traffic on this rank.
	last atomic.Int64
}

// leaseTable tracks the live clients of one rank.
type leaseTable struct {
	ttl time.Duration
	mu  sync.Mutex
	m   map[uint64]*lease
}

func newLeaseTable(ttl time.Duration) *leaseTable {
	return &leaseTable{ttl: ttl, m: make(map[uint64]*lease)}
}

// acquire returns the client's lease, created fresh on first contact,
// and renews it. The renewal happens under the table lock so a lease
// handed out here can never be swept in the same instant it was
// touched.
func (t *leaseTable) acquire(client uint64) *lease {
	now := time.Now().UnixNano()
	t.mu.Lock()
	l := t.m[client]
	if l == nil {
		l = &lease{expired: make(chan struct{})}
		t.m[client] = l
		leasesActive.Inc()
	}
	l.last.Store(now)
	t.mu.Unlock()
	return l
}

// touch renews the client's lease if it exists (block arrivals renew
// without creating: a stray block from an unknown client must not
// fabricate liveness state — the orb pending sweep handles strays).
func (t *leaseTable) touch(client uint64) {
	now := time.Now().UnixNano()
	t.mu.Lock()
	if l := t.m[client]; l != nil {
		l.last.Store(now)
	}
	t.mu.Unlock()
}

// sweep expires every lease without traffic for the TTL: the lease
// leaves the table (the client's next contact starts a fresh one) and
// its expired channel closes, unblocking any dispatch waiting on that
// client's blocks. Returns the number of leases expired.
func (t *leaseTable) sweep(now time.Time) int {
	cut := now.UnixNano() - int64(t.ttl)
	n := 0
	t.mu.Lock()
	for id, l := range t.m {
		if l.last.Load() > cut {
			continue
		}
		delete(t.m, id)
		close(l.expired)
		n++
	}
	t.mu.Unlock()
	if n > 0 {
		leasesActive.Add(-int64(n))
		leasesExpired.Add(uint64(n))
	}
	return n
}

// size reports the number of live leases.
func (t *leaseTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// drop clears the table without counting expirations — object
// teardown, not client death.
func (t *leaseTable) drop() {
	t.mu.Lock()
	n := len(t.m)
	t.m = make(map[uint64]*lease)
	t.mu.Unlock()
	if n > 0 {
		leasesActive.Add(-int64(n))
	}
}

// leaseSweepInterval picks the sweep cadence for a TTL: a quarter of
// it, clamped to stay responsive for test-sized TTLs and cheap for
// production ones.
func leaseSweepInterval(ttl time.Duration) time.Duration {
	iv := ttl / 4
	if iv < 5*time.Millisecond {
		iv = 5 * time.Millisecond
	}
	if iv > 5*time.Second {
		iv = 5 * time.Second
	}
	return iv
}
