package spmd

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/giop"
	"pardis/internal/ior"
	"pardis/internal/mp"
	"pardis/internal/orb"
	"pardis/internal/rts"
)

// TestMaliciousBlockRejected: a block transfer whose header points
// outside the receiver's local block must fail the invocation, not
// corrupt memory or crash.
func TestMaliciousBlockRejected(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 2, true, diffusionOps)
	defer obj.close()

	// A legitimate client connection is used to push a forged block
	// ahead of an invocation: craft an invocation id, send a bogus
	// block to server thread 1, then run a real invocation under the
	// same id by... — invocation ids are client-chosen, so instead we
	// verify the server's bounds check directly by sending a block
	// with an absurd DstOff for a pending invocation and checking the
	// invocation fails rather than crashing.
	err := mp.Run(2, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		b, err := Bind(context.Background(), BindConfig{
			Thread: th, Registry: reg, Method: MultiPort, ListenEndpoint: "inproc:*",
		}, obj.ref)
		if err != nil {
			return err
		}
		defer b.Close()
		seq, _ := dseq.NewDoubles(100, dist.Block(), th.Size(), th.Rank())

		// Thread 0 forges a block under the NEXT invocation id this
		// binding will use (ids are sequential per client).
		if th.Rank() == 0 {
			// Peek the id the next start() will allocate: send a
			// forged block for a range of plausible upcoming ids so
			// one of them collides.
			base := b.oc.NewInvocationID()
			for k := uint64(1); k <= 3; k++ {
				h := giop.BlockTransferHeader{
					InvocationID: (base + k) << 8,
					ArgIndex:     0,
					FromThread:   0,
					ToThread:     1,
					DstOff:       1 << 30, // way outside
					Count:        4,
					Last:         false,
				}
				ep := obj.ref.ThreadEndpoint(1)
				if _, err := b.oc.SendBlock(ep, h, func(e *cdr.Encoder) {
					e.PutDoubleSeq([]float64{1, 2, 3, 4})
				}); err != nil {
					return err
				}
			}
		}
		if err := th.Barrier(); err != nil {
			return err
		}
		err = b.Invoke(context.Background(), &CallSpec{
			Operation: "diffusion",
			Scalars:   func(e *cdr.Encoder) { e.PutLong(1) },
			Args:      []DistArg{{Mode: InOut, Seq: seq}},
		})
		// Either the forged block hit this invocation (remote error)
		// or it landed on an unused id (success); both are sound —
		// the requirement is no crash and no hang.
		if err != nil && !errors.Is(err, ErrRemote) {
			return fmt.Errorf("unexpected error class: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestInvocationContextCancel: canceling the context while the server
// is stuck aborts the client-side wait collectively.
func TestInvocationContextCancel(t *testing.T) {
	hang := make(chan struct{})
	ops := func(th rts.Thread) map[string]*Op {
		return map[string]*Op{
			"hang": {
				Spec: OpSpec{},
				Handler: func(call *Call) error {
					<-hang
					return nil
				},
			},
		}
	}
	reg := newReg()
	obj := startObject(t, reg, 2, false, ops)
	defer obj.close()
	defer close(hang)

	err := mp.Run(2, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		b, err := Bind(context.Background(), BindConfig{
			Thread: th, Registry: reg, Method: Centralized,
		}, obj.ref)
		if err != nil {
			return err
		}
		defer b.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		start := time.Now()
		err = b.Invoke(ctx, &CallSpec{Operation: "hang"})
		if err == nil {
			return errors.New("hung invocation succeeded")
		}
		if time.Since(start) > 5*time.Second {
			return errors.New("cancellation did not take effect promptly")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestServerClosedDuringInvocation: closing the object mid-request
// surfaces an error on the client and leaves no goroutine stuck.
func TestServerClosedDuringInvocation(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	ops := func(th rts.Thread) map[string]*Op {
		return map[string]*Op{
			"slow": {
				Spec: OpSpec{},
				Handler: func(call *Call) error {
					if call.Thread.Rank() == 0 {
						close(started)
					}
					<-release
					return nil
				},
			},
		}
	}
	reg := newReg()
	obj := startObject(t, reg, 2, false, ops)

	done := make(chan error, 1)
	go func() {
		done <- mp.Run(1, func(proc *mp.Proc) error {
			th := rts.NewMessagePassing(proc)
			b, err := Bind(context.Background(), BindConfig{
				Thread: th, Registry: reg, Method: Centralized,
			}, obj.ref)
			if err != nil {
				return err
			}
			defer b.Close()
			return b.Invoke(context.Background(), &CallSpec{Operation: "slow"})
		})
	}()
	<-started
	close(release)
	obj.close()
	select {
	case err := <-done:
		// Any outcome except a hang is acceptable: the reply may
		// have squeaked out before the close, or the connection
		// dropped.
		_ = err
	case <-time.After(5 * time.Second):
		t.Fatal("client hung after server close")
	}
}

// TestArgumentLengthMismatchAcrossThreads: client threads passing
// sequences of different global lengths violate the SPMD contract and
// must be caught by the consistency check.
func TestArgumentLengthMismatchAcrossThreads(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 2, true, diffusionOps)
	defer obj.close()
	err := mp.Run(2, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		b, err := Bind(context.Background(), BindConfig{
			Thread: th, Registry: reg, Method: MultiPort, ListenEndpoint: "inproc:*",
		}, obj.ref)
		if err != nil {
			return err
		}
		defer b.Close()
		// Different lengths per thread — each thread builds a
		// "globally consistent" sequence of a different length.
		length := 100 + th.Rank()*10
		seq, err := dseq.NewDoubles(length, dist.Block(), th.Size(), th.Rank())
		if err != nil {
			return err
		}
		err = b.Invoke(context.Background(), &CallSpec{
			Operation: "diffusion",
			Scalars:   func(e *cdr.Encoder) { e.PutLong(1) },
			Args:      []DistArg{{Mode: InOut, Seq: seq}},
		})
		if !errors.Is(err, ErrInconsistent) {
			return fmt.Errorf("want ErrInconsistent, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExportValidation covers Export argument errors.
func TestExportValidation(t *testing.T) {
	if _, err := Export(ObjectConfig{}); !errors.Is(err, ErrBadCall) {
		t.Fatalf("nil thread: %v", err)
	}
	w := mp.MustWorld(1)
	defer w.Close()
	_, err := Export(ObjectConfig{Thread: rts.NewMessagePassing(w.Rank(0))})
	if !errors.Is(err, ErrBadCall) {
		t.Fatalf("empty key: %v", err)
	}
}

// TestBindValidation covers Bind argument errors.
func TestBindValidation(t *testing.T) {
	if _, err := Bind(context.Background(), BindConfig{}, nil); !errors.Is(err, ErrBadCall) {
		t.Fatalf("nil thread: %v", err)
	}
	reg := newReg()
	obj := startObject(t, reg, 2, true, diffusionOps)
	defer obj.close()
	err := mp.Run(1, func(proc *mp.Proc) error {
		_, err := Bind(context.Background(), BindConfig{
			Thread:   rts.NewMessagePassing(proc),
			Registry: reg,
			Method:   MultiPort, // no ListenEndpoint
		}, obj.ref)
		if !errors.Is(err, ErrBadCall) {
			return fmt.Errorf("missing listen endpoint: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOnewayWithOutArgRejected: the §2.1 contract — oneway cannot
// return data.
func TestOnewayWithOutArgRejected(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 2, true, diffusionOps)
	defer obj.close()
	err := mp.Run(1, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		b, err := Bind(context.Background(), BindConfig{
			Thread: th, Registry: reg, Method: MultiPort, ListenEndpoint: "inproc:*",
		}, obj.ref)
		if err != nil {
			return err
		}
		defer b.Close()
		seq, _ := dseq.NewDoubles(10, dist.Block(), 1, 0)
		err = b.Invoke(context.Background(), &CallSpec{
			Operation: "diffusion",
			Oneway:    true,
			Scalars:   func(e *cdr.Encoder) { e.PutLong(1) },
			Args:      []DistArg{{Mode: InOut, Seq: seq}},
		})
		if !errors.Is(err, ErrBadCall) {
			return fmt.Errorf("oneway inout accepted: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

var _ = orb.ErrClosed // keep the orb import for documentation parity

// TestFaultBindPartialFailure: one client thread failing to open its
// multi-port receive port must surface ErrPartialFailure naming that
// rank on EVERY thread, instead of the healthy ranks deadlocking in
// the endpoint exchange.
func TestFaultBindPartialFailure(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 2, true, diffusionOps)
	defer obj.close()
	err := mp.Run(2, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		listen := "inproc:*"
		if th.Rank() == 1 {
			listen = "bogus:*" // unregistered scheme: Listen fails on this rank only
		}
		done := make(chan error, 1)
		go func() {
			_, err := Bind(context.Background(), BindConfig{
				Thread: th, Registry: reg, Method: MultiPort, ListenEndpoint: listen,
			}, obj.ref)
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, ErrPartialFailure) {
				return fmt.Errorf("rank %d: want ErrPartialFailure, got %v", th.Rank(), err)
			}
			if !strings.Contains(err.Error(), "thread 1") {
				return fmt.Errorf("rank %d: error does not name the failed rank: %v", th.Rank(), err)
			}
			return nil
		case <-time.After(10 * time.Second):
			return fmt.Errorf("rank %d: Bind deadlocked on a peer's listen failure", th.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFaultExportPartialFailure: same contract on the server side —
// if one computing thread cannot open its port, Export fails
// collectively with the rank named, rather than wedging the
// communicator in the endpoint exchange.
func TestFaultExportPartialFailure(t *testing.T) {
	reg := newReg()
	err := mp.Run(2, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		listen := "inproc:*"
		if th.Rank() == 1 {
			listen = "bogus:*"
		}
		done := make(chan error, 1)
		go func() {
			_, err := Export(ObjectConfig{
				Thread: th, Registry: reg, ListenEndpoint: listen,
				Key: "objects/partial", TypeID: "IDL:partial:1.0",
				MultiPort: true, Ops: diffusionOps(th),
			})
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, ErrPartialFailure) {
				return fmt.Errorf("rank %d: want ErrPartialFailure, got %v", th.Rank(), err)
			}
			if !strings.Contains(err.Error(), "thread 1") {
				return fmt.Errorf("rank %d: error does not name the failed rank: %v", th.Rank(), err)
			}
			return nil
		case <-time.After(10 * time.Second):
			return fmt.Errorf("rank %d: Export deadlocked on a peer's listen failure", th.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFaultBindRetriesAcrossReplicas: Bind's describe call rides the
// retry/failover layer, so a conventional object whose first listed
// endpoint is dead still binds via the second.
func TestFaultBindRetriesAcrossReplicas(t *testing.T) {
	reg := newReg()
	obj := startObject(t, reg, 1, false, diffusionOps)
	defer obj.close()
	// A stale first endpoint in front of the real communicator.
	stale := &ior.Ref{
		TypeID:  obj.ref.TypeID,
		Key:     obj.ref.Key,
		Threads: 1,
		Endpoints: append([]string{"inproc:long-gone"},
			obj.ref.Endpoints...),
	}
	err := mp.Run(1, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		b, err := Bind(context.Background(), BindConfig{
			Thread: th, Registry: reg, Method: Centralized,
		}, stale)
		if err != nil {
			return fmt.Errorf("bind did not fail over past the dead endpoint: %v", err)
		}
		defer b.Close()
		return invokeDiffusion(b, th, 64, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
}
