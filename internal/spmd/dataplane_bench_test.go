package spmd

// Figure-4-style data-plane benchmarks: wall clock and allocations
// for streaming a block-distributed dsequence<double> into a multi-
// port SPMD object. Self-contained (no test-harness helpers beyond
// newReg) so the file can be dropped into an older tree unchanged for
// A/B comparison.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/ior"
	"pardis/internal/mp"
	"pardis/internal/rts"
	"pardis/internal/transport"
)

// benchSinkOps exports a "sink" op with one In distributed argument:
// the invocation cost is dominated by the in-transfer itself.
func benchSinkOps(th rts.Thread) map[string]*Op {
	return map[string]*Op{
		"sink": {
			Spec: OpSpec{Args: []ArgSpec{{Mode: In, Dist: dist.Block()}}},
			Handler: func(call *Call) error {
				call.Reply().PutLong(int32(len(call.Args[0].LocalData())))
				return nil
			},
		},
	}
}

type benchObject struct {
	ref   *ior.Ref
	close func()
}

func startBenchObject(b *testing.B, reg *transport.Registry, m int) *benchObject {
	b.Helper()
	w := mp.MustWorld(m)
	refs := make(chan *ior.Ref, 1)
	objs := make([]*Object, m)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < m; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			th := rts.NewMessagePassing(w.Rank(rank))
			obj, err := Export(ObjectConfig{
				Thread:         th,
				Registry:       reg,
				ListenEndpoint: "inproc:*",
				Key:            "objects/bench",
				TypeID:         "IDL:bench_object:1.0",
				MultiPort:      true,
				Ops:            benchSinkOps(th),
			})
			if err != nil {
				b.Error(err)
				return
			}
			mu.Lock()
			objs[rank] = obj
			mu.Unlock()
			if rank == 0 {
				refs <- obj.Ref()
			}
			_ = obj.Serve(context.Background())
		}(r)
	}
	ref := <-refs
	return &benchObject{ref: ref, close: func() {
		mu.Lock()
		for _, o := range objs {
			if o != nil {
				o.Close()
			}
		}
		mu.Unlock()
		wg.Wait()
		w.Close()
	}}
}

func benchInTransfer(b *testing.B, length, threads, peerXfer, autoTune int) {
	reg := newReg()
	obj := startBenchObject(b, reg, threads)
	defer obj.close()
	b.SetBytes(int64(length) * 8)
	b.ResetTimer()
	err := mp.Run(1, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		bind, err := Bind(context.Background(), BindConfig{
			Thread:         th,
			Registry:       reg,
			Method:         MultiPort,
			ListenEndpoint: "inproc:*",
			PeerXfer:       peerXfer,
			AutoTune:       autoTune,
		}, obj.ref)
		if err != nil {
			return err
		}
		defer bind.Close()
		seq, err := dseq.NewDoubles(length, dist.Block(), 1, 0)
		if err != nil {
			return err
		}
		for i := range seq.LocalData() {
			seq.LocalData()[i] = float64(i)
		}
		for i := 0; i < b.N; i++ {
			err := bind.Invoke(context.Background(), &CallSpec{
				Operation: "sink",
				Args:      []DistArg{{Mode: In, Seq: seq}},
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
}

// The plane dimension A/Bs the data planes over the same server
// object: peer (one-sided window puts, the default) against routed
// (block frames through the sink router, forced by PeerXfer=-1 on the
// binding), plus tuned (the peer plane with the self-tuning transport
// re-resolving chunk/window per transfer, AutoTune=1 on the binding),
// so the allocation ledger covers the tuner's hot path too.
func BenchmarkMultiPortInTransfer(b *testing.B) {
	planes := []struct {
		name     string
		peer     int
		autoTune int
	}{{"peer", 0, 0}, {"routed", -1, 0}, {"tuned", 0, 1}}
	for _, length := range []int{16 << 10, 128 << 10, 1 << 20} {
		for _, threads := range []int{1, 4} {
			for _, plane := range planes {
				b.Run(fmt.Sprintf("len=%dKi/threads=%d/plane=%s", length>>10, threads, plane.name),
					func(b *testing.B) { benchInTransfer(b, length, threads, plane.peer, plane.autoTune) })
			}
		}
	}
}
