package spmd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/dist"
	"pardis/internal/dseq"
	"pardis/internal/giop"
	"pardis/internal/mp"
	"pardis/internal/orb"
	"pardis/internal/rts"
	"pardis/internal/transport"
)

// recordingSender captures SendBlock traffic exactly as the ORB
// client would encode it (header then payload on one CDR stream).
type recordingSender struct {
	endpoints []string
	frames    [][]byte
}

func (r *recordingSender) SendBlock(ep string, hdr giop.BlockTransferHeader,
	payload func(*cdr.Encoder)) (int, error) {
	e := cdr.NewEncoder(cdr.BigEndian)
	hdr.Encode(e)
	hdrLen := e.Len()
	if payload != nil {
		payload(e)
	}
	r.endpoints = append(r.endpoints, ep)
	r.frames = append(r.frames, append([]byte(nil), e.Bytes()...))
	return e.Len() - hdrLen, nil
}

// legacySendBlocks is the pre-data-plane serial send loop, retained
// verbatim as the reference encoding.
func legacySendBlocks(oc *recordingSender, inv uint64, argIdx uint32, rank int,
	plan []dist.Transfer, local []float64, endpointFor func(int) string) {
	mine := dist.PlanFor(plan, rank)
	lastIdx := make(map[int]int)
	for idx, tr := range mine {
		lastIdx[tr.To] = idx
	}
	for idx, tr := range mine {
		h := giop.BlockTransferHeader{
			InvocationID: inv<<8 | uint64(argIdx),
			ArgIndex:     argIdx,
			FromThread:   int32(rank),
			ToThread:     int32(tr.To),
			DstOff:       uint32(tr.DstOff),
			Count:        uint32(tr.Count),
			Last:         lastIdx[tr.To] == idx,
		}
		blk := local[tr.SrcOff : tr.SrcOff+tr.Count]
		_, _ = oc.SendBlock(endpointFor(tr.To), h, func(e *cdr.Encoder) { e.PutDoubleSeq(blk) })
	}
}

// TestSerialWireIdentical pins the serial-semantics guarantee: with
// window=1 and chunking disabled, sendPlanBlocks produces exactly the
// frames (order, headers, payload bytes) the legacy serial loop did.
func TestSerialWireIdentical(t *testing.T) {
	// Misaligned layouts so several transfers cross rank boundaries.
	src, err := dist.FromCounts([]int{7, 13, 5})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := dist.FromCounts([]int{10, 10, 5})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dist.Plan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	epFor := func(to int) string { return fmt.Sprintf("inproc:t%d", to) }
	const inv, argIdx = uint64(0xABCDE), uint32(1)
	for rank := 0; rank < 3; rank++ {
		local := make([]float64, src.Count(rank))
		for i := range local {
			local[i] = float64(src.Lo(rank) + i)
		}
		legacy := &recordingSender{}
		legacySendBlocks(legacy, inv, argIdx, rank, plan, local, epFor)
		got := &recordingSender{}
		if _, err := sendPlanBlocks(got, inv, argIdx, rank, plan, local, epFor, 1, 0); err != nil {
			t.Fatal(err)
		}
		if len(got.frames) != len(legacy.frames) {
			t.Fatalf("rank %d: %d frames, legacy %d", rank, len(got.frames), len(legacy.frames))
		}
		for i := range got.frames {
			if got.endpoints[i] != legacy.endpoints[i] {
				t.Fatalf("rank %d frame %d: endpoint %q, legacy %q",
					rank, i, got.endpoints[i], legacy.endpoints[i])
			}
			if !bytes.Equal(got.frames[i], legacy.frames[i]) {
				t.Fatalf("rank %d frame %d: wire bytes differ", rank, i)
			}
		}
	}
}

// TestChunkedSendCoversPlan: with chunking and a concurrent window,
// the chunk set must tile exactly the legacy transfer set (same
// destinations, disjoint offsets, same total elements), with every
// chunk's payload under the threshold.
func TestChunkedSendCoversPlan(t *testing.T) {
	src, err := dist.FromCounts([]int{1000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := dist.FromCounts([]int{500, 1500})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dist.Plan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	local := make([]float64, 1000)
	rec := &recordingSender{}
	// Note: recordingSender is not safe for concurrent use, so pin
	// window=1 here; chunking is what is under test.
	const chunkElems = 128
	n, err := sendPlanBlocks(rec, 7, 0, 0, plan, local,
		func(int) string { return "inproc:x" }, 1, chunkElems)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no bytes accounted")
	}
	covered := make(map[int]bool)
	for _, frame := range rec.frames {
		d := cdr.NewDecoder(cdr.BigEndian, frame)
		h, err := giop.DecodeBlockTransferHeader(d)
		if err != nil {
			t.Fatal(err)
		}
		if h.Count > chunkElems {
			t.Fatalf("chunk of %d elements exceeds threshold %d", h.Count, chunkElems)
		}
		for i := int(h.DstOff); i < int(h.DstOff)+int(h.Count); i++ {
			key := int(h.ToThread)<<24 | i
			if covered[key] {
				t.Fatalf("destination (%d, %d) covered twice", h.ToThread, i)
			}
			covered[key] = true
		}
	}
	want := 0
	for _, tr := range dist.PlanFor(plan, 0) {
		want += tr.Count
	}
	if len(covered) != want {
		t.Fatalf("chunks cover %d destination elements, plan has %d", len(covered), want)
	}
}

// TestCrossOrderBlockAssembly: a little-endian client and a
// big-endian client ship interleaved chunks of one argument to the
// same sink; the assembler must decode both orders straight into the
// destination, out of order, from concurrent connections.
func TestCrossOrderBlockAssembly(t *testing.T) {
	reg := newReg()
	srv := orb.NewServer(reg)
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 1024
	local := make([]float64, n)
	asm := newBlockAssembler(0, local, n)
	key, err := giop.BlockSinkKey(99, 0)
	if err != nil {
		t.Fatal(err)
	}
	cancel, err := srv.ExpectBlocksFunc(key, asm.accept)
	if err != nil {
		t.Fatal(err)
	}

	le := orb.NewClient(reg, orb.WithByteOrder(cdr.LittleEndian))
	be := orb.NewClient(reg, orb.WithByteOrder(cdr.BigEndian))
	defer le.Close()
	defer be.Close()

	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i) * 1.5
	}
	send := func(cli *orb.Client, from int32, off, count int) {
		h := giop.BlockTransferHeader{
			InvocationID: key, ArgIndex: 0, FromThread: from, ToThread: 0,
			DstOff: uint32(off), Count: uint32(count), Last: true,
		}
		blk := want[off : off+count]
		if _, err := cli.SendBlock(ep, h, func(e *cdr.Encoder) { e.PutDoubleSeq(blk) }); err != nil {
			t.Error(err)
		}
	}
	// Interleave the two senders, highest offsets first.
	send(le, 1, 768, 256)
	send(be, 0, 512, 256)
	send(le, 1, 256, 256)
	send(be, 0, 0, 256)

	ctx, cancelCtx := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelCtx()
	if err := asm.wait(ctx, nil, nil); err != nil {
		t.Fatal(err)
	}
	cancel()
	for i := range want {
		if local[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, local[i], want[i])
		}
	}
	if st := srv.BlockStats(); st.Sinks != 0 {
		t.Fatalf("sink leak: %+v", st)
	}
}

// TestChunkedTransferEndToEnd runs the diffusion invocation with a
// tiny chunk threshold and a concurrent window on both sides, so in-
// and out-transfers exercise chunked, windowed, out-of-order
// assembly, and verifies element-exact results.
func TestChunkedTransferEndToEnd(t *testing.T) {
	reg := newReg()
	obj := startObjectCfg(t, reg, 3, true, diffusionOps, func(cfg *ObjectConfig) {
		cfg.XferWindow = 3
		cfg.XferChunkBytes = 1 << 10 // 128 doubles per chunk
	})
	defer obj.close()
	err := mp.Run(2, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		b, err := Bind(context.Background(), BindConfig{
			Thread: th, Registry: reg, Method: MultiPort,
			ListenEndpoint: "inproc:*",
			XferWindow:     4,
			XferChunkBytes: 1 << 10,
		}, obj.ref)
		if err != nil {
			return err
		}
		defer b.Close()
		// 4000 doubles: each client rank ships 2000 (16 chunks), and
		// the uneven 2->3 rank mapping splits blocks across threads.
		if err := invokeDiffusion(b, th, 4000, 2); err != nil {
			return err
		}
		if st := b.BlockStats(); st.Sinks != 0 {
			return fmt.Errorf("rank %d: sink leak: %+v", th.Rank(), st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// cutDialTransport serves "inproc" endpoints but routes dials through
// a fault-injecting wrapper, so only this process's outbound block
// streams are cut — listeners stay clean and keep their scheme.
type cutDialTransport struct {
	listen transport.Transport // plain shared inproc
	dial   transport.Transport // faulty-wrapped view of the same inproc
}

func (c cutDialTransport) Scheme() string { return c.listen.Scheme() }
func (c cutDialTransport) Listen(a string) (transport.Listener, error) {
	return c.listen.Listen(a)
}
func (c cutDialTransport) Dial(a string) (transport.Conn, error) { return c.dial.Dial(a) }

// TestFaultCutBlockStream cuts one of several concurrent in-block
// streams mid-transfer: the cut rank sees its transport error, every
// other client rank fails the same invocation with ErrPartialFailure,
// no thread deadlocks, and neither side leaks a block sink. Pinned to
// the routed data plane (PeerXfer -1 on both sides) so the routed path
// keeps fault coverage now that peer windows are the default; the peer
// twin is TestFaultCutPeerWindowStream.
func TestFaultCutBlockStream(t *testing.T) {
	inproc := transport.NewInproc()
	okReg := transport.NewRegistry()
	okReg.Register(inproc)
	cut := transport.NewFaulty(inproc, transport.FaultPlan{
		Seed: 7, Cut: 1, CutAfter: 8 << 10,
	})
	cutReg := transport.NewRegistry()
	cutReg.Register(cutDialTransport{listen: inproc, dial: cut})

	// AutoTune rides along so the chaos sweep covers the self-tuning
	// transport under faults: a failed send must not feed the tuner, and
	// tuning must not change the failure verdict or leak sinks.
	obj := startObjectCfg(t, okReg, 3, true, diffusionOps, func(cfg *ObjectConfig) {
		cfg.PeerXfer = -1
		cfg.AutoTune = 1
	})

	clientErr := mp.Run(3, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		reg := okReg
		if th.Rank() == 1 {
			reg = cutReg
		}
		b, err := Bind(context.Background(), BindConfig{
			Thread: th, Registry: reg, Method: MultiPort, ListenEndpoint: "inproc:*",
			PeerXfer: -1, AutoTune: 1,
		}, obj.ref)
		if err != nil {
			return err
		}
		defer b.Close()
		// 30000 doubles: every rank streams 80 KB to its server
		// thread concurrently; rank 1's connection dies after 8 KB.
		seq, err := dseq.NewDoubles(30000, dist.Block(), th.Size(), th.Rank())
		if err != nil {
			return err
		}
		done := make(chan error, 1)
		go func() {
			done <- b.Invoke(context.Background(), &CallSpec{
				Operation: "diffusion",
				Scalars:   func(e *cdr.Encoder) { e.PutLong(1) },
				Args:      []DistArg{{Mode: InOut, Seq: seq}},
			})
		}()
		var ierr error
		select {
		case ierr = <-done:
		case <-time.After(20 * time.Second):
			return fmt.Errorf("rank %d: invocation deadlocked on the cut stream", th.Rank())
		}
		if ierr == nil {
			return fmt.Errorf("rank %d: invocation succeeded despite the cut", th.Rank())
		}
		if th.Rank() != 1 {
			if !errors.Is(ierr, ErrPartialFailure) {
				return fmt.Errorf("rank %d: want ErrPartialFailure, got %v", th.Rank(), ierr)
			}
			if !strings.Contains(ierr.Error(), "thread 1") {
				return fmt.Errorf("rank %d: error does not name the cut rank: %v", th.Rank(), ierr)
			}
		}
		if st := b.BlockStats(); st.Sinks != 0 {
			return fmt.Errorf("rank %d: client sink leak after failure: %+v", th.Rank(), st)
		}
		return nil
	})
	if clientErr != nil {
		t.Fatal(clientErr)
	}

	// The server thread whose sender died is parked waiting for
	// elements that will never arrive; Close must unwind it on every
	// rank (not just the communicator).
	obj.close()
	for i := 0; i < 3; i++ {
		select {
		case <-obj.donech:
		case <-time.After(20 * time.Second):
			t.Fatal("a server thread did not unwind after Close")
		}
	}
	for rank, o := range obj.threadObjects() {
		if o == nil {
			continue
		}
		if st := o.BlockStats(); st.Sinks != 0 {
			t.Fatalf("server thread %d leaked block sinks: %+v", rank, st)
		}
	}
	if st := cut.Stats(); st.CutConns == 0 {
		t.Fatal("fault plan injected no cut — the test exercised nothing")
	}
}
