package transport

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestSplitJoinEndpoint(t *testing.T) {
	s, a, err := SplitEndpoint("tcp:127.0.0.1:80")
	if err != nil || s != "tcp" || a != "127.0.0.1:80" {
		t.Fatalf("split = %q %q %v", s, a, err)
	}
	if JoinEndpoint("inproc", "x") != "inproc:x" {
		t.Fatal("join broken")
	}
	for _, bad := range []string{"", "tcp", ":addr", "tcp:"} {
		if _, _, err := SplitEndpoint(bad); !errors.Is(err, ErrBadEndpoint) {
			t.Fatalf("SplitEndpoint(%q) = %v", bad, err)
		}
	}
}

func TestRegistryUnknownScheme(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Dial("bogus:x"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown scheme: %v", err)
	}
	if _, err := r.Listen("bogus:x"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown scheme: %v", err)
	}
}

// exerciseTransport runs a connect/echo/close conversation.
func exerciseTransport(t *testing.T, r *Registry, listenEndpoint string) {
	t.Helper()
	l, err := r.Listen(listenEndpoint)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ep := l.Endpoint()
	if !strings.Contains(ep, ":") {
		t.Fatalf("endpoint %q", ep)
	}
	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			done <- err
			return
		}
		_, err = c.Write(buf)
		done <- err
	}()
	c, err := r.Dial(ep)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echo = %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTCPEcho(t *testing.T) {
	exerciseTransport(t, Default, "tcp:127.0.0.1:0")
}

func TestInprocEcho(t *testing.T) {
	exerciseTransport(t, Default, "inproc:echo-test")
}

func TestInprocAutoAddress(t *testing.T) {
	tr := NewInproc()
	l1, err := tr.Listen("*")
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	l2, err := tr.Listen("*")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l1.Endpoint() == l2.Endpoint() {
		t.Fatalf("auto addresses collide: %s", l1.Endpoint())
	}
}

func TestInprocDuplicateBind(t *testing.T) {
	tr := NewInproc()
	l, err := tr.Listen("dup")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := tr.Listen("dup"); err == nil {
		t.Fatal("duplicate bind accepted")
	}
}

func TestInprocDialNoListener(t *testing.T) {
	tr := NewInproc()
	if _, err := tr.Dial("nobody"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dial: %v", err)
	}
}

func TestInprocCloseUnblocksAccept(t *testing.T) {
	tr := NewInproc()
	l, _ := tr.Listen("closer")
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("accept after close: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("accept never unblocked")
	}
	// The name is released.
	if _, err := tr.Listen("closer"); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	// Dialing the closed name fails.
	if _, err := tr.Dial("gone"); !errorsIsNotFound(err) {
		t.Fatalf("dial closed: %v", err)
	}
}

func errorsIsNotFound(err error) bool { return errors.Is(err, ErrNotFound) }

func TestInprocConcurrentConnections(t *testing.T) {
	tr := NewInproc()
	l, _ := tr.Listen("multi")
	defer l.Close()
	const N = 8
	go func() {
		for i := 0; i < N; i++ {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c Conn) {
				defer c.Close()
				buf := make([]byte, 1)
				if _, err := io.ReadFull(c, buf); err == nil {
					c.Write(buf)
				}
			}(c)
		}
	}()
	for i := 0; i < N; i++ {
		c, err := tr.Dial("multi")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		if _, err := io.ReadFull(c, buf); err != nil || buf[0] != byte(i) {
			t.Fatalf("conn %d echo: %v %v", i, buf, err)
		}
		c.Close()
	}
}
