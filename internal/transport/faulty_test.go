package transport

import (
	"errors"
	"io"
	"testing"
	"time"
)

// faultyPair builds an inproc transport wrapped in a Faulty layer and
// a listener with a goroutine that drains every accepted connection,
// returning the wrapper, the address, and a channel of per-connection
// byte counts observed by the reader side.
func faultyPair(t *testing.T, plan FaultPlan) (*Faulty, string, <-chan []byte) {
	t.Helper()
	inner := NewInproc()
	f := NewFaulty(inner, plan)
	l, err := f.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	got := make(chan []byte, 64)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				data, _ := io.ReadAll(c)
				got <- data
				c.Close()
			}()
		}
	}()
	return f, "srv", got
}

func TestFaultySchemeComposition(t *testing.T) {
	inner := NewInproc()
	f := NewFaulty(inner, FaultPlan{})
	if f.Scheme() != "faulty+inproc" {
		t.Fatalf("scheme = %q", f.Scheme())
	}
	reg := NewRegistry()
	reg.Register(f)
	l, err := reg.Listen("faulty+inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ep := l.Endpoint()
	scheme, _, err := SplitEndpoint(ep)
	if err != nil || scheme != "faulty+inproc" {
		t.Fatalf("listener endpoint %q does not carry the composed scheme", ep)
	}
	// Dialing the advertised endpoint goes back through the wrapper.
	c, err := reg.Dial(ep)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if f.Stats().Dials != 1 {
		t.Fatalf("stats = %+v", f.Stats())
	}
}

func TestFaultyDialRefused(t *testing.T) {
	f, addr, _ := faultyPair(t, FaultPlan{Seed: 1, DialRefuse: 1})
	for i := 0; i < 3; i++ {
		if _, err := f.Dial(addr); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("dial %d: %v", i, err)
		}
	}
	if s := f.Stats(); s.RefusedDials != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFaultyCutMidMessage(t *testing.T) {
	f, addr, got := faultyPair(t, FaultPlan{Seed: 1, Cut: 1, CutAfter: 20})
	c, err := f.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 64)
	n, werr := c.Write(msg)
	if !errors.Is(werr, ErrInjectedFault) {
		t.Fatalf("write: n=%d err=%v", n, werr)
	}
	// A clean (non-truncating) cut delivers the fatal write whole,
	// then closes: the peer sees the bytes followed by EOF.
	select {
	case data := <-got:
		if len(data) != 64 {
			t.Fatalf("peer saw %d bytes, want 64", len(data))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer never observed the cut")
	}
	// The connection is dead for further writes.
	if _, err := c.Write([]byte("more")); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("post-cut write: %v", err)
	}
	if s := f.Stats(); s.CutConns != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFaultyTruncatedWrite(t *testing.T) {
	f, addr, got := faultyPair(t, FaultPlan{Seed: 1, Cut: 1, Truncate: 1, CutAfter: 20})
	c, err := f.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 64)
	if _, err := c.Write(msg); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("write: %v", err)
	}
	select {
	case data := <-got:
		if len(data) != 20 {
			t.Fatalf("peer saw %d bytes, want the torn 20", len(data))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer never observed the truncation")
	}
	if s := f.Stats(); s.TruncatedWrites != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFaultyBlackhole(t *testing.T) {
	f, addr, _ := faultyPair(t, FaultPlan{Seed: 1, Blackhole: 1})
	c, err := f.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Writes report success but deliver nothing.
	if n, err := c.Write([]byte("into the void")); err != nil || n != 13 {
		t.Fatalf("blackholed write: n=%d err=%v", n, err)
	}
	if s := f.Stats(); s.BlackholedConns != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestFaultyDeterministic: the same seed replays the same fault
// sequence; a different seed diverges (eventually).
func TestFaultyDeterministic(t *testing.T) {
	outcomes := func(seed int64) []bool {
		inner := NewInproc()
		f := NewFaulty(inner, FaultPlan{Seed: seed, DialRefuse: 0.5})
		l, err := f.Listen("d")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				c.Close()
			}
		}()
		var out []bool
		for i := 0; i < 32; i++ {
			c, err := f.Dial("d")
			out = append(out, err == nil)
			if c != nil {
				c.Close()
			}
		}
		return out
	}
	a, b := outcomes(42), outcomes(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at dial %d", i)
		}
	}
	c := outcomes(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// TestInprocDialTimeout: a full, never-drained backlog fails dials
// with ErrDialTimeout instead of blocking forever.
func TestInprocDialTimeout(t *testing.T) {
	i := NewInproc()
	i.DialTimeout = 50 * time.Millisecond
	l, err := i.Listen("stuck")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Fill the backlog (16) without ever accepting.
	for n := 0; n < 16; n++ {
		if _, err := i.Dial("stuck"); err != nil {
			t.Fatalf("backlog fill dial %d: %v", n, err)
		}
	}
	start := time.Now()
	_, err = i.Dial("stuck")
	if !errors.Is(err, ErrDialTimeout) {
		t.Fatalf("err = %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("dial blocked %v before timing out", d)
	}
}

// TestInprocDialRespectsClose: dialers blocked on a full backlog are
// released when the listener closes.
func TestInprocDialRespectsClose(t *testing.T) {
	i := NewInproc()
	i.DialTimeout = 5 * time.Second
	l, err := i.Listen("closing")
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 16; n++ {
		if _, err := i.Dial("closing"); err != nil {
			t.Fatalf("backlog fill dial %d: %v", n, err)
		}
	}
	errc := make(chan error, 1)
	go func() {
		_, err := i.Dial("closing")
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	l.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dial not released by listener close")
	}
}
