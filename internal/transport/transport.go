// Package transport abstracts the byte-stream transports the PARDIS
// ORB runs over. The original system used NexusLite for network
// transport; here two transports are provided behind one interface:
//
//   - "tcp"    — real sockets via the net package, used by the
//     daemons, the examples, and the cross-process tests;
//   - "inproc" — synchronous in-memory pipes (net.Pipe), used to wire
//     client and server threads inside one test process without
//     touching the network stack.
//
// Endpoints are strings of the form "scheme:address", e.g.
// "tcp:127.0.0.1:9050" or "inproc:diffusion-server-3". The Registry
// maps schemes to transports; the package-level Default registry has
// both built-in transports installed.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"pardis/internal/telemetry"
)

// Errors returned by transports.
var (
	ErrBadEndpoint = errors.New("transport: malformed endpoint")
	ErrUnknown     = errors.New("transport: unknown scheme")
	ErrClosed      = errors.New("transport: closed")
	ErrNotFound    = errors.New("transport: no listener at address")
	ErrDialTimeout = errors.New("transport: dial timeout")
)

// Conn is a reliable, ordered, full-duplex byte stream.
type Conn = net.Conn

// Listener accepts inbound connections at a bound endpoint.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Endpoint returns the full "scheme:address" this listener is
	// reachable at (with any wildcard port resolved).
	Endpoint() string
	// Close stops accepting; blocked Accepts return ErrClosed.
	Close() error
}

// Transport creates listeners and outbound connections for one scheme.
type Transport interface {
	// Scheme returns the endpoint prefix this transport serves.
	Scheme() string
	// Listen binds to address (the part after "scheme:").
	Listen(address string) (Listener, error)
	// Dial connects to address.
	Dial(address string) (Conn, error)
}

// SplitEndpoint separates "scheme:address" into its parts.
func SplitEndpoint(endpoint string) (scheme, address string, err error) {
	i := strings.IndexByte(endpoint, ':')
	if i <= 0 || i == len(endpoint)-1 {
		return "", "", fmt.Errorf("%w: %q", ErrBadEndpoint, endpoint)
	}
	return endpoint[:i], endpoint[i+1:], nil
}

// JoinEndpoint forms "scheme:address".
func JoinEndpoint(scheme, address string) string { return scheme + ":" + address }

// Registry resolves endpoint schemes to transports.
type Registry struct {
	mu         sync.RWMutex
	transports map[string]Transport
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{transports: make(map[string]Transport)}
}

// Register installs a transport for its scheme, replacing any previous
// one.
func (r *Registry) Register(t Transport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.transports[t.Scheme()] = t
}

// Lookup returns the transport for a scheme.
func (r *Registry) Lookup(scheme string) (Transport, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.transports[scheme]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, scheme)
	}
	return t, nil
}

// Listen binds a listener at the given "scheme:address" endpoint.
// Accepted connections are metered into the telemetry registry.
func (r *Registry) Listen(endpoint string) (Listener, error) {
	scheme, addr, err := SplitEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	t, err := r.Lookup(scheme)
	if err != nil {
		return nil, err
	}
	l, err := t.Listen(addr)
	if err != nil {
		return nil, err
	}
	return meteredListener{
		Listener: l,
		scheme:   scheme,
		accepts:  telemetry.Default.Counter("pardis_transport_accepts_total", "scheme", scheme),
	}, nil
}

// Dial connects to the given "scheme:address" endpoint. The returned
// connection is metered into the telemetry registry.
func (r *Registry) Dial(endpoint string) (Conn, error) {
	scheme, addr, err := SplitEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	t, err := r.Lookup(scheme)
	if err != nil {
		return nil, err
	}
	c, err := t.Dial(addr)
	recordDial(scheme, err)
	if err != nil {
		return nil, err
	}
	return meterConn(c, scheme), nil
}

// Default is the process-wide registry with "tcp" and a process-wide
// "inproc" transport installed.
var Default = func() *Registry {
	r := NewRegistry()
	r.Register(TCP{})
	r.Register(NewInproc())
	return r
}()

// Default TCP timers, used when the corresponding TCP field is zero.
const (
	// DefaultDialTimeout bounds how long a TCP dial may block; an
	// unreachable host fails fast instead of waiting out the kernel's
	// SYN retransmission schedule (minutes).
	DefaultDialTimeout = 10 * time.Second
	// DefaultKeepAlive is the TCP keep-alive probe period, so a peer
	// that vanished without a FIN (power loss, cable pull) is detected
	// instead of holding the connection open forever.
	DefaultKeepAlive = 30 * time.Second
)

// TCP is the sockets transport. The zero value uses the default dial
// timeout and keep-alive period; set the fields (and re-Register) to
// override, or a negative KeepAlive to disable probes.
type TCP struct {
	// DialTimeout bounds Dial (0 means DefaultDialTimeout).
	DialTimeout time.Duration
	// KeepAlive is the keep-alive probe period for dialed and
	// accepted connections (0 means DefaultKeepAlive, < 0 disables).
	KeepAlive time.Duration
}

// Scheme implements Transport.
func (TCP) Scheme() string { return "tcp" }

func (t TCP) keepAlive() time.Duration {
	if t.KeepAlive == 0 {
		return DefaultKeepAlive
	}
	return t.KeepAlive
}

// Listen implements Transport. Address "127.0.0.1:0" binds an
// ephemeral port, reported by the listener's Endpoint.
func (t TCP) Listen(address string) (Listener, error) {
	lc := net.ListenConfig{KeepAlive: t.keepAlive()}
	l, err := lc.Listen(context.Background(), "tcp", address)
	if err != nil {
		return nil, err
	}
	return tcpListener{l}, nil
}

// Dial implements Transport.
func (t TCP) Dial(address string) (Conn, error) {
	timeout := t.DialTimeout
	if timeout == 0 {
		timeout = DefaultDialTimeout
	}
	d := net.Dialer{Timeout: timeout, KeepAlive: t.keepAlive()}
	c, err := d.Dial("tcp", address)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return nil, fmt.Errorf("%w: tcp:%s after %v", ErrDialTimeout, address, timeout)
		}
		return nil, err
	}
	return c, nil
}

type tcpListener struct{ l net.Listener }

func (t tcpListener) Accept() (Conn, error) { return t.l.Accept() }
func (t tcpListener) Endpoint() string      { return "tcp:" + t.l.Addr().String() }
func (t tcpListener) Close() error          { return t.l.Close() }

// DefaultInprocDialTimeout bounds how long an inproc Dial waits for a
// backlog slot when Inproc.DialTimeout is zero. A listener whose
// backlog (16) is full and never drained used to block dialers
// forever; now they fail with ErrDialTimeout.
const DefaultInprocDialTimeout = 5 * time.Second

// Inproc is an in-memory transport: listeners are registered in a
// name table and Dial pairs the caller with an Accept via net.Pipe.
type Inproc struct {
	// DialTimeout bounds how long Dial waits for a backlog slot
	// (0 means DefaultInprocDialTimeout, < 0 waits forever). Set it
	// before sharing the transport.
	DialTimeout time.Duration

	mu        sync.Mutex
	listeners map[string]*inprocListener
	nextAuto  int
}

// NewInproc returns a fresh in-process transport (its own namespace).
func NewInproc() *Inproc {
	return &Inproc{listeners: make(map[string]*inprocListener)}
}

// Scheme implements Transport.
func (i *Inproc) Scheme() string { return "inproc" }

// Listen implements Transport. The address "*" allocates a unique
// name.
func (i *Inproc) Listen(address string) (Listener, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if address == "*" {
		i.nextAuto++
		address = fmt.Sprintf("auto-%d", i.nextAuto)
	}
	if _, exists := i.listeners[address]; exists {
		return nil, fmt.Errorf("transport: inproc address %q already bound", address)
	}
	l := &inprocListener{
		owner:   i,
		address: address,
		backlog: make(chan Conn, 16),
		closed:  make(chan struct{}),
	}
	i.listeners[address] = l
	return l, nil
}

// Dial implements Transport. It fails with ErrNotFound when no
// listener is bound (or the listener closes while the dial is
// queued), and with ErrDialTimeout when the listener's backlog stays
// full past the dial timeout.
func (i *Inproc) Dial(address string) (Conn, error) {
	i.mu.Lock()
	l, ok := i.listeners[address]
	i.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: inproc:%s", ErrNotFound, address)
	}
	client, server := net.Pipe()
	refuse := func(err error) (Conn, error) {
		client.Close()
		server.Close()
		return nil, err
	}
	// Fast path; also guarantees a closed listener is seen even when
	// a backlog slot is free (select picks ready cases at random).
	select {
	case <-l.closed:
		return refuse(fmt.Errorf("%w: inproc:%s", ErrNotFound, address))
	default:
	}
	timeout := i.DialTimeout
	if timeout == 0 {
		timeout = DefaultInprocDialTimeout
	}
	var expired <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expired = t.C
	}
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.closed:
		return refuse(fmt.Errorf("%w: inproc:%s", ErrNotFound, address))
	case <-expired:
		return refuse(fmt.Errorf("%w: inproc:%s backlog full after %v", ErrDialTimeout, address, timeout))
	}
}

type inprocListener struct {
	owner     *Inproc
	address   string
	backlog   chan Conn
	closed    chan struct{}
	closeOnce sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Endpoint() string { return "inproc:" + l.address }

func (l *inprocListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.owner.mu.Lock()
		delete(l.owner.listeners, l.address)
		l.owner.mu.Unlock()
		// Drain and close queued, never-accepted connections.
		for {
			select {
			case c := <-l.backlog:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}
