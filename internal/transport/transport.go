// Package transport abstracts the byte-stream transports the PARDIS
// ORB runs over. The original system used NexusLite for network
// transport; here two transports are provided behind one interface:
//
//   - "tcp"    — real sockets via the net package, used by the
//     daemons, the examples, and the cross-process tests;
//   - "inproc" — synchronous in-memory pipes (net.Pipe), used to wire
//     client and server threads inside one test process without
//     touching the network stack.
//
// Endpoints are strings of the form "scheme:address", e.g.
// "tcp:127.0.0.1:9050" or "inproc:diffusion-server-3". The Registry
// maps schemes to transports; the package-level Default registry has
// both built-in transports installed.
package transport

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Errors returned by transports.
var (
	ErrBadEndpoint = errors.New("transport: malformed endpoint")
	ErrUnknown     = errors.New("transport: unknown scheme")
	ErrClosed      = errors.New("transport: closed")
	ErrNotFound    = errors.New("transport: no listener at address")
)

// Conn is a reliable, ordered, full-duplex byte stream.
type Conn = net.Conn

// Listener accepts inbound connections at a bound endpoint.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Endpoint returns the full "scheme:address" this listener is
	// reachable at (with any wildcard port resolved).
	Endpoint() string
	// Close stops accepting; blocked Accepts return ErrClosed.
	Close() error
}

// Transport creates listeners and outbound connections for one scheme.
type Transport interface {
	// Scheme returns the endpoint prefix this transport serves.
	Scheme() string
	// Listen binds to address (the part after "scheme:").
	Listen(address string) (Listener, error)
	// Dial connects to address.
	Dial(address string) (Conn, error)
}

// SplitEndpoint separates "scheme:address" into its parts.
func SplitEndpoint(endpoint string) (scheme, address string, err error) {
	i := strings.IndexByte(endpoint, ':')
	if i <= 0 || i == len(endpoint)-1 {
		return "", "", fmt.Errorf("%w: %q", ErrBadEndpoint, endpoint)
	}
	return endpoint[:i], endpoint[i+1:], nil
}

// JoinEndpoint forms "scheme:address".
func JoinEndpoint(scheme, address string) string { return scheme + ":" + address }

// Registry resolves endpoint schemes to transports.
type Registry struct {
	mu         sync.RWMutex
	transports map[string]Transport
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{transports: make(map[string]Transport)}
}

// Register installs a transport for its scheme, replacing any previous
// one.
func (r *Registry) Register(t Transport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.transports[t.Scheme()] = t
}

// Lookup returns the transport for a scheme.
func (r *Registry) Lookup(scheme string) (Transport, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.transports[scheme]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, scheme)
	}
	return t, nil
}

// Listen binds a listener at the given "scheme:address" endpoint.
func (r *Registry) Listen(endpoint string) (Listener, error) {
	scheme, addr, err := SplitEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	t, err := r.Lookup(scheme)
	if err != nil {
		return nil, err
	}
	return t.Listen(addr)
}

// Dial connects to the given "scheme:address" endpoint.
func (r *Registry) Dial(endpoint string) (Conn, error) {
	scheme, addr, err := SplitEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	t, err := r.Lookup(scheme)
	if err != nil {
		return nil, err
	}
	return t.Dial(addr)
}

// Default is the process-wide registry with "tcp" and a process-wide
// "inproc" transport installed.
var Default = func() *Registry {
	r := NewRegistry()
	r.Register(TCP{})
	r.Register(NewInproc())
	return r
}()

// TCP is the sockets transport.
type TCP struct{}

// Scheme implements Transport.
func (TCP) Scheme() string { return "tcp" }

// Listen implements Transport. Address "127.0.0.1:0" binds an
// ephemeral port, reported by the listener's Endpoint.
func (TCP) Listen(address string) (Listener, error) {
	l, err := net.Listen("tcp", address)
	if err != nil {
		return nil, err
	}
	return tcpListener{l}, nil
}

// Dial implements Transport.
func (TCP) Dial(address string) (Conn, error) {
	return net.Dial("tcp", address)
}

type tcpListener struct{ l net.Listener }

func (t tcpListener) Accept() (Conn, error) { return t.l.Accept() }
func (t tcpListener) Endpoint() string      { return "tcp:" + t.l.Addr().String() }
func (t tcpListener) Close() error          { return t.l.Close() }

// Inproc is an in-memory transport: listeners are registered in a
// name table and Dial pairs the caller with an Accept via net.Pipe.
type Inproc struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
	nextAuto  int
}

// NewInproc returns a fresh in-process transport (its own namespace).
func NewInproc() *Inproc {
	return &Inproc{listeners: make(map[string]*inprocListener)}
}

// Scheme implements Transport.
func (i *Inproc) Scheme() string { return "inproc" }

// Listen implements Transport. The address "*" allocates a unique
// name.
func (i *Inproc) Listen(address string) (Listener, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if address == "*" {
		i.nextAuto++
		address = fmt.Sprintf("auto-%d", i.nextAuto)
	}
	if _, exists := i.listeners[address]; exists {
		return nil, fmt.Errorf("transport: inproc address %q already bound", address)
	}
	l := &inprocListener{
		owner:   i,
		address: address,
		backlog: make(chan Conn, 16),
		closed:  make(chan struct{}),
	}
	i.listeners[address] = l
	return l, nil
}

// Dial implements Transport.
func (i *Inproc) Dial(address string) (Conn, error) {
	i.mu.Lock()
	l, ok := i.listeners[address]
	i.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: inproc:%s", ErrNotFound, address)
	}
	client, server := net.Pipe()
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("%w: inproc:%s", ErrNotFound, address)
	}
}

type inprocListener struct {
	owner     *Inproc
	address   string
	backlog   chan Conn
	closed    chan struct{}
	closeOnce sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Endpoint() string { return "inproc:" + l.address }

func (l *inprocListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.owner.mu.Lock()
		delete(l.owner.listeners, l.address)
		l.owner.mu.Unlock()
		// Drain and close queued, never-accepted connections.
		for {
			select {
			case c := <-l.backlog:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}
