// Fault-injection transport. Faulty wraps any Transport and injects
// network failures according to a deterministic, seedable plan:
// refused dials, added dial and write latency, connections cut after
// a byte budget (mid-message), byte-level truncation of a final
// write, and one-way partitions (writes silently vanish). It exists
// so the ORB's retry, deadline, failover and drain machinery can be
// exercised in-process, repeatably, without touching a real network.
//
// The wrapper is scheme-composable: wrapping a transport with scheme
// "inproc" yields scheme "faulty+inproc", so endpoints read
// "faulty+inproc:name" and a listener bound through the wrapper
// advertises a faulty endpoint — references minted by a server behind
// the wrapper automatically route clients through the fault plan.
package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pardis/internal/telemetry"
)

// recordFault mirrors one injected fault into the process-wide
// telemetry registry, so chaos runs can reconcile the faults the plan
// injected against the retries and failovers the ORB recorded:
//
//	pardis_faults_injected_total{class="dial_refused"|"cut"|
//	                             "truncated_write"|"blackhole"}
func recordFault(class string) {
	telemetry.Default.Counter("pardis_faults_injected_total", "class", class).Inc()
}

// ErrInjectedFault marks failures manufactured by a Faulty transport,
// so tests can tell injected faults from real bugs.
var ErrInjectedFault = fmt.Errorf("transport: injected fault")

// FaultPlan describes the fault mix a Faulty transport injects. All
// probabilities are in [0, 1] and are evaluated against a private
// RNG seeded from Seed, so a given (plan, dial sequence) replays
// identically.
type FaultPlan struct {
	// Seed seeds the plan's RNG (0 is a valid, fixed seed).
	Seed int64

	// DialRefuse is the probability a Dial fails outright.
	DialRefuse float64
	// DialLatency is added to every successful dial.
	DialLatency time.Duration

	// Cut is the probability a dialed connection is doomed: after
	// CutAfter bytes have been written through it (in either
	// adjacent call's direction on this wrapped side), the
	// connection is closed — typically mid-message.
	Cut float64
	// CutAfter is the write-byte budget of a doomed connection. Zero
	// picks a small budget (inside the first message) from the RNG.
	CutAfter int

	// Truncate is the probability a doomed connection's final write
	// is split: only part of the fatal write is delivered before the
	// close, exercising torn-frame handling on the peer.
	Truncate float64

	// Blackhole is the probability a dialed connection is one-way
	// partitioned: writes report success but deliver nothing, so the
	// peer sees silence rather than a close. Victims hang until a
	// deadline fires — pair with client deadlines.
	Blackhole float64

	// WriteLatency is added to every delivered write.
	WriteLatency time.Duration
}

// FaultStats counts the faults a Faulty transport has injected.
type FaultStats struct {
	// Dials counts dial attempts seen.
	Dials int
	// RefusedDials counts dials failed by DialRefuse.
	RefusedDials int
	// CutConns counts connections closed by a byte-budget cut.
	CutConns int
	// TruncatedWrites counts fatal writes that were split.
	TruncatedWrites int
	// BlackholedConns counts one-way partitioned connections.
	BlackholedConns int
}

// Faulty wraps an inner Transport, injecting faults on dialed
// connections per its FaultPlan. Listeners pass through (accepted
// conns are not wrapped); their endpoints carry the composed scheme
// so clients dial back through the fault layer.
type Faulty struct {
	inner Transport

	mu    sync.Mutex
	rng   *rand.Rand
	plan  FaultPlan
	stats FaultStats
}

// NewFaulty wraps inner with the given fault plan.
func NewFaulty(inner Transport, plan FaultPlan) *Faulty {
	return &Faulty{
		inner: inner,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		plan:  plan,
	}
}

// Scheme implements Transport: "faulty+" + the inner scheme.
func (f *Faulty) Scheme() string { return "faulty+" + f.inner.Scheme() }

// Stats returns a snapshot of the injected-fault counters.
func (f *Faulty) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// SetPlan replaces the fault plan (and reseeds the RNG), e.g. to heal
// the network partway through a test.
func (f *Faulty) SetPlan(plan FaultPlan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan = plan
	f.rng = rand.New(rand.NewSource(plan.Seed))
}

// Listen implements Transport, delegating to the inner transport. The
// listener's Endpoint is rewritten to the composed scheme.
func (f *Faulty) Listen(address string) (Listener, error) {
	l, err := f.inner.Listen(address)
	if err != nil {
		return nil, err
	}
	return faultyListener{l: l, scheme: f.Scheme()}, nil
}

// connFate is what the dial-time dice decided for one connection.
type connFate struct {
	cutAfter  int  // >0: close after this many written bytes
	truncate  bool // split the fatal write before closing
	blackhole bool // writes vanish instead of being delivered
	latency   time.Duration
}

// Dial implements Transport. Fault rolls happen here, under one lock,
// in dial order — the sequence of fates is a pure function of the
// plan's seed and the number of dials, independent of goroutine
// scheduling after the dial.
func (f *Faulty) Dial(address string) (Conn, error) {
	f.mu.Lock()
	f.stats.Dials++
	p := f.plan
	refuse := f.roll(p.DialRefuse)
	if refuse {
		f.stats.RefusedDials++
		recordFault("dial_refused")
	}
	var fate connFate
	fate.latency = p.WriteLatency
	if !refuse {
		switch {
		case f.roll(p.Cut):
			fate.cutAfter = p.CutAfter
			if fate.cutAfter == 0 {
				// Inside a typical first message: past the 12-byte
				// PIOP header, short of a full request.
				fate.cutAfter = giopHeaderLen + f.rng.Intn(32)
			}
			fate.truncate = f.roll(p.Truncate)
		case f.roll(p.Blackhole):
			fate.blackhole = true
			f.stats.BlackholedConns++
			recordFault("blackhole")
		}
	}
	f.mu.Unlock()

	if refuse {
		return nil, fmt.Errorf("%w: dial %s:%s refused", ErrInjectedFault, f.Scheme(), address)
	}
	if p.DialLatency > 0 {
		time.Sleep(p.DialLatency)
	}
	c, err := f.inner.Dial(address)
	if err != nil {
		return nil, err
	}
	if fate.cutAfter == 0 && !fate.blackhole && fate.latency == 0 {
		return c, nil // healthy connection, no per-write overhead
	}
	return &faultyConn{Conn: c, owner: f, fate: fate}, nil
}

// giopHeaderLen mirrors giop.HeaderLen without importing the package
// (transport sits below giop in the dependency order).
const giopHeaderLen = 12

// roll consumes one RNG sample and reports whether an event with
// probability p fires. Must be called with f.mu held.
func (f *Faulty) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return f.rng.Float64() < p
}

type faultyListener struct {
	l      Listener
	scheme string
}

func (fl faultyListener) Accept() (Conn, error) { return fl.l.Accept() }
func (fl faultyListener) Close() error          { return fl.l.Close() }

func (fl faultyListener) Endpoint() string {
	_, addr, err := SplitEndpoint(fl.l.Endpoint())
	if err != nil {
		return fl.l.Endpoint()
	}
	return JoinEndpoint(fl.scheme, addr)
}

// faultyConn carries out a connection's fate on the write path. Reads
// pass through: a cut closes the underlying conn, which both sides
// observe.
type faultyConn struct {
	Conn
	owner *Faulty
	fate  connFate

	mu      sync.Mutex
	written int
	dead    bool
}

func (fc *faultyConn) Write(b []byte) (int, error) {
	fc.mu.Lock()
	if fc.dead {
		fc.mu.Unlock()
		return 0, fmt.Errorf("%w: connection cut", ErrInjectedFault)
	}
	fate := fc.fate
	cut := fate.cutAfter > 0 && fc.written+len(b) >= fate.cutAfter
	keep := len(b)
	if cut {
		fc.dead = true
		if fate.truncate {
			// Tear mid-frame at the byte budget: only the prefix of
			// the fatal write is delivered.
			keep = fate.cutAfter - fc.written
			if keep < 0 {
				keep = 0
			}
		}
	}
	fc.written += keep
	fc.mu.Unlock()

	if fate.latency > 0 {
		time.Sleep(fate.latency)
	}
	if fate.blackhole {
		return len(b), nil // swallowed; peer never sees it
	}
	if !cut {
		return fc.Conn.Write(b)
	}
	if keep > 0 {
		// Deliver the surviving bytes (all of them for a clean cut,
		// a torn prefix under Truncate), then kill the connection.
		_, _ = fc.Conn.Write(b[:keep])
	}
	fc.owner.mu.Lock()
	fc.owner.stats.CutConns++
	if fate.truncate {
		fc.owner.stats.TruncatedWrites++
	}
	fc.owner.mu.Unlock()
	recordFault("cut")
	if fate.truncate {
		recordFault("truncated_write")
	}
	fc.Conn.Close()
	return keep, fmt.Errorf("%w: connection cut after %d bytes", ErrInjectedFault, fc.written)
}
