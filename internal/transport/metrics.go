// Transport-level telemetry. Every connection obtained through a
// Registry (dialed or accepted) is wrapped in a metered conn that
// feeds the process-wide registry:
//
//	pardis_transport_dials_total{scheme}        dial attempts
//	pardis_transport_dial_errors_total{scheme}  failed dials
//	pardis_transport_accepts_total{scheme}      accepted connections
//	pardis_transport_bytes_read_total{scheme}   bytes off the wire
//	pardis_transport_bytes_written_total{scheme} bytes onto the wire
//	pardis_transport_conns_open{scheme}         currently open conns
//
// The wrapper is a straight pass-through net.Conn: byte accounting is
// two atomic adds per Read/Write, so the hot path stays allocation
// free.
package transport

import (
	"log/slog"
	"net"
	"sync"

	"pardis/internal/telemetry"
)

// meteredConn counts bytes and open-conn state for one connection.
type meteredConn struct {
	Conn
	in, out   *telemetry.Counter
	open      *telemetry.Gauge
	closeOnce sync.Once
}

// meterConn wraps c with byte and open-connection accounting for its
// scheme. The instruments are interned once per wrap, not per I/O call.
func meterConn(c Conn, scheme string) Conn {
	mc := &meteredConn{
		Conn: c,
		in:   telemetry.Default.Counter("pardis_transport_bytes_read_total", "scheme", scheme),
		out:  telemetry.Default.Counter("pardis_transport_bytes_written_total", "scheme", scheme),
		open: telemetry.Default.Gauge("pardis_transport_conns_open", "scheme", scheme),
	}
	mc.open.Inc()
	return mc
}

func (m *meteredConn) Read(b []byte) (int, error) {
	n, err := m.Conn.Read(b)
	if n > 0 {
		m.in.Add(uint64(n))
	}
	return n, err
}

func (m *meteredConn) Write(b []byte) (int, error) {
	n, err := m.Conn.Write(b)
	if n > 0 {
		m.out.Add(uint64(n))
	}
	return n, err
}

// WriteBuffers forwards a gather write to the wrapped connection,
// preserving the single-writev path (net.Buffers only vectorizes for
// a raw *net.TCPConn, which the metering wrapper would otherwise
// hide). Frame writers discover this method via giop.BuffersWriter.
func (m *meteredConn) WriteBuffers(v *net.Buffers) (int64, error) {
	var n int64
	var err error
	if bw, ok := m.Conn.(interface {
		WriteBuffers(*net.Buffers) (int64, error)
	}); ok {
		n, err = bw.WriteBuffers(v)
	} else {
		n, err = v.WriteTo(m.Conn)
	}
	if n > 0 {
		m.out.Add(uint64(n))
	}
	return n, err
}

// Close decrements the open gauge exactly once, however many times the
// connection is closed.
func (m *meteredConn) Close() error {
	m.closeOnce.Do(m.open.Dec)
	return m.Conn.Close()
}

// meteredListener wraps accepted connections and counts accepts.
type meteredListener struct {
	Listener
	scheme  string
	accepts *telemetry.Counter
}

func (ml meteredListener) Accept() (Conn, error) {
	c, err := ml.Listener.Accept()
	if err != nil {
		return nil, err
	}
	ml.accepts.Inc()
	return meterConn(c, ml.scheme), nil
}

// recordDial updates the dial counters and logs failures at debug.
func recordDial(scheme string, err error) {
	telemetry.Default.Counter("pardis_transport_dials_total", "scheme", scheme).Inc()
	if err != nil {
		telemetry.Default.Counter("pardis_transport_dial_errors_total", "scheme", scheme).Inc()
		if telemetry.LogEnabled(slog.LevelDebug) {
			telemetry.Logger().Debug("transport dial failed", "scheme", scheme, "err", err)
		}
	}
}
