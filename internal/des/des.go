// Package des is a process-oriented discrete-event simulation engine:
// simulated processes run as goroutines that advance a shared virtual
// clock by waiting on events, with exactly one process executing at a
// time (sequential semantics, deterministic given a seed).
//
// It exists to model the paper's 1996 testbed — synchronous sends over
// a dedicated ATM link between two SMPs with OS scheduler interference
// — so that Tables 1-2 and Figure 4 can be regenerated on hardware
// that no longer exists. The engine itself is general: virtual clock,
// process spawn/wait, FCFS resources, and condition synchronization.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Sim is one simulation run. Create with New, add processes with
// Spawn, execute with Run. Not safe for concurrent external use; all
// interaction happens from inside process functions.
type Sim struct {
	now     float64
	events  eventHeap
	seq     int64 // tie-breaker for deterministic ordering
	rng     *rand.Rand
	current *Proc
	running int // live processes
	nextID  int

	// scheduler handshake
	yield chan struct{}

	failure any // panic payload from a process, re-raised by Run
}

// New creates a simulation with a seeded deterministic RNG.
func New(seed int64) *Sim {
	return &Sim{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time (milliseconds by convention).
func (s *Sim) Now() float64 { return s.now }

// Rand returns the simulation's deterministic RNG.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Exp draws an exponentially distributed duration with the given
// mean; a zero or negative mean returns 0.
func (s *Sim) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.rng.ExpFloat64() * mean
}

// Proc is a simulated process. Its methods must only be called from
// inside the process's own function.
type Proc struct {
	sim  *Sim
	id   int
	name string
	wake chan struct{}
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Now returns the virtual time.
func (p *Proc) Now() float64 { return p.sim.now }

// event is a scheduled wakeup.
type event struct {
	at   float64
	seq  int64
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (s *Sim) schedule(at float64, p *Proc) {
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, proc: p})
}

// Spawn adds a process starting at the current virtual time. It may
// be called before Run or from inside another process.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	s.nextID++
	p := &Proc{sim: s, id: s.nextID, name: name, wake: make(chan struct{})}
	s.running++
	go func() {
		<-p.wake // wait for the scheduler to start us
		defer func() {
			if r := recover(); r != nil {
				if s.failure == nil {
					s.failure = fmt.Sprintf("des: process %s panicked: %v", p.name, r)
				}
			}
			s.running--
			s.yield <- struct{}{}
		}()
		fn(p)
	}()
	s.schedule(s.now, p)
	return p
}

// Run executes events until none remain, then returns the final
// virtual time. It panics if a process panicked or if processes
// remain blocked with no pending events (deadlock).
func (s *Sim) Run() float64 {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		if e.at < s.now {
			panic("des: time went backwards")
		}
		s.now = e.at
		s.current = e.proc
		e.proc.wake <- struct{}{}
		<-s.yield
		if s.failure != nil {
			panic(s.failure)
		}
	}
	if s.running > 0 {
		panic(fmt.Sprintf("des: deadlock: %d processes blocked with no pending events", s.running))
	}
	return s.now
}

// pause returns control to the scheduler; the process resumes when
// its next event fires or it is activated.
func (p *Proc) pause() {
	p.sim.yield <- struct{}{}
	<-p.wake
}

// Wait advances the process by d virtual time units (d < 0 is
// treated as 0).
func (p *Proc) Wait(d float64) {
	if d < 0 || math.IsNaN(d) {
		d = 0
	}
	p.sim.schedule(p.sim.now+d, p)
	p.pause()
}

// Suspend blocks the process until another process Activates it.
func (p *Proc) Suspend() {
	p.pause()
}

// Activate schedules a suspended process to resume now. Calling it
// for a process that is not suspended corrupts the simulation; use
// higher-level primitives (Resource, Gate) where possible.
func (p *Proc) Activate(target *Proc) {
	p.sim.schedule(p.sim.now, target)
}

// Resource is a FCFS server pool: up to Capacity processes hold it
// concurrently; the rest queue.
type Resource struct {
	sim      *Sim
	capacity int
	inUse    int
	queue    []*Proc
	// busy accumulates capacity-weighted busy time for utilization
	// reporting.
	busy     float64
	lastTick float64
}

// NewResource creates a resource with the given capacity.
func (s *Sim) NewResource(capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{sim: s, capacity: capacity}
}

func (r *Resource) tick() {
	r.busy += float64(r.inUse) * (r.sim.now - r.lastTick)
	r.lastTick = r.sim.now
}

// Acquire blocks until a slot is free and takes it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.tick()
		r.inUse++
		return
	}
	r.queue = append(r.queue, p)
	p.Suspend()
	// Ownership was transferred by Release; inUse already counts us.
}

// Release frees a slot, waking the head of the queue if any.
func (r *Resource) Release(p *Proc) {
	r.tick()
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		// Slot passes directly to next (inUse unchanged).
		p.sim.schedule(p.sim.now, next)
		return
	}
	r.inUse--
}

// Use acquires the resource, waits d, and releases — the common
// "occupy a server for a service time" pattern.
func (r *Resource) Use(p *Proc, d float64) {
	r.Acquire(p)
	p.Wait(d)
	r.Release(p)
}

// BusyTime returns capacity-weighted busy time accumulated so far.
func (r *Resource) BusyTime() float64 {
	r.tick()
	return r.busy
}

// QueueLen returns the number of waiting processes.
func (r *Resource) QueueLen() int { return len(r.queue) }

// InUse returns the number of held slots.
func (r *Resource) InUse() int { return r.inUse }

// Gate is a broadcast barrier: processes Wait on it; Open releases
// all current and future waiters.
type Gate struct {
	sim     *Sim
	open    bool
	waiters []*Proc
}

// NewGate creates a closed gate.
func (s *Sim) NewGate() *Gate { return &Gate{sim: s} }

// WaitOpen blocks until the gate opens (returns immediately if
// already open).
func (g *Gate) WaitOpen(p *Proc) {
	if g.open {
		return
	}
	g.waiters = append(g.waiters, p)
	p.Suspend()
}

// Open releases all waiters.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	for _, w := range g.waiters {
		g.sim.schedule(g.sim.now, w)
	}
	g.waiters = nil
}

// IsOpen reports whether the gate has opened.
func (g *Gate) IsOpen() bool { return g.open }

// Barrier synchronizes a fixed party count: the k-th arrival releases
// everyone; the barrier then resets for reuse.
type Barrier struct {
	sim     *Sim
	parties int
	waiting []*Proc
}

// NewBarrier creates a barrier for the given party count.
func (s *Sim) NewBarrier(parties int) *Barrier {
	return &Barrier{sim: s, parties: parties}
}

// Arrive blocks until all parties have arrived.
func (b *Barrier) Arrive(p *Proc) {
	if len(b.waiting)+1 == b.parties {
		for _, w := range b.waiting {
			b.sim.schedule(b.sim.now, w)
		}
		b.waiting = nil
		return
	}
	b.waiting = append(b.waiting, p)
	p.Suspend()
}

// Series collects (x, y) samples during a run, for reporting.
type Series struct {
	Xs, Ys []float64
}

// Add appends a sample.
func (s *Series) Add(x, y float64) {
	s.Xs = append(s.Xs, x)
	s.Ys = append(s.Ys, y)
}

// Sorted returns the samples ordered by x.
func (s *Series) Sorted() ([]float64, []float64) {
	idx := make([]int, len(s.Xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.Xs[idx[a]] < s.Xs[idx[b]] })
	xs := make([]float64, len(idx))
	ys := make([]float64, len(idx))
	for i, j := range idx {
		xs[i] = s.Xs[j]
		ys[i] = s.Ys[j]
	}
	return xs, ys
}
