package des_test

import (
	"fmt"

	"pardis/internal/des"
)

// Two simulated senders share one link; the second queues behind the
// first — the arbitration at the heart of the testbed model.
func ExampleSim() {
	sim := des.New(1)
	wire := sim.NewResource(1)
	for i := 0; i < 2; i++ {
		i := i
		sim.Spawn(fmt.Sprintf("sender-%d", i), func(p *des.Proc) {
			wire.Use(p, 10) // occupy the link for 10 ms
			fmt.Printf("sender-%d done at t=%v\n", i, p.Now())
		})
	}
	sim.Run()
	// Output:
	// sender-0 done at t=10
	// sender-1 done at t=20
}
