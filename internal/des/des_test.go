package des

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestClockAdvances(t *testing.T) {
	s := New(1)
	var times []float64
	s.Spawn("a", func(p *Proc) {
		times = append(times, p.Now())
		p.Wait(5)
		times = append(times, p.Now())
		p.Wait(2.5)
		times = append(times, p.Now())
	})
	end := s.Run()
	if end != 7.5 {
		t.Fatalf("end = %v", end)
	}
	want := []float64{0, 5, 7.5}
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("times = %v", times)
		}
	}
}

func TestTwoProcessesInterleave(t *testing.T) {
	s := New(1)
	var order []string
	s.Spawn("a", func(p *Proc) {
		p.Wait(1)
		order = append(order, "a1")
		p.Wait(2) // fires at 3
		order = append(order, "a3")
	})
	s.Spawn("b", func(p *Proc) {
		p.Wait(2)
		order = append(order, "b2")
		p.Wait(2) // fires at 4
		order = append(order, "b4")
	})
	s.Run()
	got := strings.Join(order, ",")
	if got != "a1,b2,a3,b4" {
		t.Fatalf("order = %s", got)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Events at the same instant run in schedule order.
	run := func() string {
		s := New(7)
		var order []string
		for _, n := range []string{"x", "y", "z"} {
			n := n
			s.Spawn(n, func(p *Proc) {
				p.Wait(1)
				order = append(order, n)
			})
		}
		s.Run()
		return strings.Join(order, ",")
	}
	a, b := run(), run()
	if a != b || a != "x,y,z" {
		t.Fatalf("runs differ or unordered: %q vs %q", a, b)
	}
}

func TestNegativeWaitClamped(t *testing.T) {
	s := New(1)
	s.Spawn("a", func(p *Proc) {
		p.Wait(-5)
		p.Wait(math.NaN())
	})
	if end := s.Run(); end != 0 {
		t.Fatalf("end = %v", end)
	}
}

func TestResourceSerializes(t *testing.T) {
	s := New(1)
	r := s.NewResource(1)
	var done []float64
	for i := 0; i < 3; i++ {
		s.Spawn("w", func(p *Proc) {
			r.Use(p, 10)
			done = append(done, p.Now())
		})
	}
	s.Run()
	want := []float64{10, 20, 30}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("done = %v", done)
		}
	}
	if bt := r.BusyTime(); bt != 30 {
		t.Fatalf("busy time = %v", bt)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	s := New(1)
	r := s.NewResource(2)
	var done []float64
	for i := 0; i < 4; i++ {
		s.Spawn("w", func(p *Proc) {
			r.Use(p, 10)
			done = append(done, p.Now())
		})
	}
	end := s.Run()
	if end != 20 {
		t.Fatalf("end = %v, want 20 (two waves of two)", end)
	}
	if done[0] != 10 || done[1] != 10 || done[2] != 20 || done[3] != 20 {
		t.Fatalf("done = %v", done)
	}
}

func TestResourceFCFS(t *testing.T) {
	s := New(1)
	r := s.NewResource(1)
	var order []string
	spawnAt := func(name string, at float64) {
		s.Spawn(name, func(p *Proc) {
			p.Wait(at)
			r.Acquire(p)
			p.Wait(5)
			r.Release(p)
			order = append(order, name)
		})
	}
	spawnAt("first", 0)
	spawnAt("second", 1)
	spawnAt("third", 2)
	s.Run()
	if got := strings.Join(order, ","); got != "first,second,third" {
		t.Fatalf("order = %s", got)
	}
}

func TestGate(t *testing.T) {
	s := New(1)
	var woke []float64
	g := s.NewGate()
	for i := 0; i < 3; i++ {
		s.Spawn("waiter", func(p *Proc) {
			g.WaitOpen(p)
			woke = append(woke, p.Now())
		})
	}
	s.Spawn("opener", func(p *Proc) {
		p.Wait(42)
		g.Open()
	})
	s.Run()
	if len(woke) != 3 {
		t.Fatalf("woke = %v", woke)
	}
	for _, w := range woke {
		if w != 42 {
			t.Fatalf("woke = %v", woke)
		}
	}
	if !g.IsOpen() {
		t.Fatal("gate not open")
	}
	// Late waiter passes immediately.
	s2 := New(1)
	g2 := s2.NewGate()
	g2.Open()
	passed := false
	s2.Spawn("late", func(p *Proc) {
		g2.WaitOpen(p)
		passed = true
	})
	s2.Run()
	if !passed {
		t.Fatal("late waiter blocked on open gate")
	}
}

func TestBarrier(t *testing.T) {
	s := New(1)
	b := s.NewBarrier(3)
	var released []float64
	delays := []float64{5, 10, 15}
	for _, d := range delays {
		d := d
		s.Spawn("p", func(p *Proc) {
			for round := 0; round < 2; round++ {
				p.Wait(d)
				b.Arrive(p)
				released = append(released, p.Now())
			}
		})
	}
	s.Run()
	// First round releases everyone at t=15, second at t=30.
	if len(released) != 6 {
		t.Fatalf("released = %v", released)
	}
	for i, r := range released {
		want := 15.0
		if i >= 3 {
			want = 30
		}
		if r != want {
			t.Fatalf("released = %v", released)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	s := New(1)
	var childRan float64
	s.Spawn("parent", func(p *Proc) {
		p.Wait(3)
		p.sim.Spawn("child", func(c *Proc) {
			c.Wait(4)
			childRan = c.Now()
		})
		p.Wait(10)
	})
	s.Run()
	if childRan != 7 {
		t.Fatalf("child ran at %v", childRan)
	}
}

func TestDeadlockDetected(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("deadlock not detected")
		}
	}()
	s := New(1)
	r := s.NewResource(1)
	s.Spawn("a", func(p *Proc) {
		r.Acquire(p)
		r.Acquire(p) // self-deadlock
	})
	s.Run()
}

func TestProcessPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "boom") {
			t.Fatalf("recover = %v", r)
		}
	}()
	s := New(1)
	s.Spawn("bad", func(p *Proc) {
		p.Wait(1)
		panic("boom")
	})
	s.Run()
}

func TestExpDeterministic(t *testing.T) {
	a := New(99)
	b := New(99)
	for i := 0; i < 10; i++ {
		if a.Exp(2) != b.Exp(2) {
			t.Fatal("same seed diverged")
		}
	}
	if a.Exp(0) != 0 || a.Exp(-1) != 0 {
		t.Fatal("nonpositive mean must give 0")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 20)
	xs, ys := s.Sorted()
	if xs[0] != 1 || ys[0] != 10 || xs[2] != 3 || ys[2] != 30 {
		t.Fatalf("sorted = %v %v", xs, ys)
	}
}

// Property: the mean of Exp samples approximates the requested mean.
func TestQuickExpMean(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		const N = 4000
		sum := 0.0
		for i := 0; i < N; i++ {
			sum += s.Exp(3.0)
		}
		mean := sum / N
		return mean > 2.5 && mean < 3.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: resource busy time never exceeds capacity * elapsed time.
func TestQuickResourceUtilizationBound(t *testing.T) {
	f := func(seed int64, nproc uint8, capacity uint8) bool {
		n := int(nproc%8) + 1
		c := int(capacity%4) + 1
		s := New(seed)
		r := s.NewResource(c)
		for i := 0; i < n; i++ {
			s.Spawn("w", func(p *Proc) {
				for k := 0; k < 3; k++ {
					r.Use(p, s.Exp(2)+0.1)
					p.Wait(s.Exp(1))
				}
			})
		}
		end := s.Run()
		return r.BusyTime() <= float64(c)*end+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
