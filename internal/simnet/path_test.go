package simnet

import "testing"

// TestPathWireFloor: no configuration transfers faster than the wire.
func TestPathWireFloor(t *testing.T) {
	for _, pt := range []Path{LANPath(), WANPath()} {
		bytes := 8 << 20
		floor := float64(bytes) / pt.BandwidthBps
		for _, window := range []int{1, 4, 64} {
			got := pt.TransferSeconds(bytes, 256<<10, window, 4)
			if got < floor {
				t.Errorf("%s window=%d: %.6gs beat the wire floor %.6gs", pt.Name, window, got, floor)
			}
		}
	}
}

// TestPathWindowMonotone: a deeper window never slows a transfer (it
// only admits more in-flight chunks), and on a long-RTT path it must
// strictly help a bulk transfer.
func TestPathWindowMonotone(t *testing.T) {
	pt := WANPath()
	bytes := 8 << 20
	prev := pt.TransferSeconds(bytes, 256<<10, 1, 4)
	for _, window := range []int{2, 4, 8, 16} {
		got := pt.TransferSeconds(bytes, 256<<10, window, 4)
		if got > prev*(1+1e-9) {
			t.Errorf("window %d slower than shallower window: %.6g > %.6g", window, got, prev)
		}
		prev = got
	}
	deep := pt.TransferSeconds(bytes, 1<<20, 8, 8)
	shallow := pt.TransferSeconds(bytes, 256<<10, 4, 4)
	if shallow/deep < 2 {
		t.Errorf("deep window speedup on WAN only %.2fx (shallow %.4gs, deep %.4gs)",
			shallow/deep, shallow, deep)
	}
}

// TestPathChunkAmortization: on a fast path, larger chunks pay fewer
// per-chunk fixed costs for the same bytes.
func TestPathChunkAmortization(t *testing.T) {
	pt := LANPath()
	bytes := 16 << 20
	small := pt.TransferSeconds(bytes, 64<<10, 8, 4)
	large := pt.TransferSeconds(bytes, 1<<20, 8, 4)
	if large >= small {
		t.Errorf("1 MiB chunks (%.6gs) not faster than 64 KiB chunks (%.6gs) on LAN", large, small)
	}
}

// TestPathSingleChunkDegenerate: tiny and chunking-disabled transfers
// reduce to setup + per-chunk cost + wire + RTT.
func TestPathSingleChunkDegenerate(t *testing.T) {
	pt := LANPath()
	bytes := 80
	want := pt.Setup + pt.PerChunkCost + float64(bytes)/pt.BandwidthBps + pt.RTT
	for _, chunk := range []int{0, -1, 256 << 10} {
		got := pt.TransferSeconds(bytes, chunk, 4, 4)
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("chunk=%d: %.9gs, want %.9gs", chunk, got, want)
		}
	}
	if got := pt.TransferSeconds(0, 256<<10, 4, 4); got != pt.Setup {
		t.Errorf("zero-byte transfer %.9gs, want setup %.9gs", got, pt.Setup)
	}
}
