// Package simnet models the paper's 1996 testbed so its experiments
// can be regenerated: a 4-CPU SGI R4400 client and a 10-CPU SGI Power
// Challenge R8000 server joined by one dedicated 155 Mb/s ATM link
// (LAN Emulation), with MPICH 1.0.12 shared-memory runtimes on both
// sides and NexusLite network transport whose large-message sends are
// effectively synchronous.
//
// The model executes the same protocol steps as the real PARDIS
// engines in package spmd — gather → pack → send → unpack → scatter
// for the centralized method; header delivery followed by planned
// point-to-point block transfers for the multi-port method, using the
// very same dist.Plan computation — on a discrete-event simulation of
// the hardware. Two mechanisms carry the phenomena the paper observes:
//
//  1. Synchronous chunked sends: a send progresses chunk by chunk and
//     each chunk requires a rendezvous whose latency grows with the
//     number of runnable threads on both nodes (MPICH shared-memory
//     processes spin-wait, so blocked SPMD threads still consume CPU
//     and stretch scheduling latency — the paper's "scheduler
//     interference" hypothesis in §3.2).
//  2. A shared wire: chunk transmissions from concurrent streams
//     interleave on one FCFS link, so while one stream waits on its
//     rendezvous another can transmit — which is why multi-port
//     transfer recovers link utilization that the centralized method
//     loses (§3.3).
//
// Parameters are calibrated against Tables 1-2 (see DefaultParams and
// EXPERIMENTS.md); the calibration targets the tables' shape, not
// digit-exact replay.
package simnet

import (
	"fmt"
	"math"

	"pardis/internal/des"
	"pardis/internal/dist"
)

func mathPow(x, y float64) float64 { return math.Pow(x, y) }

// erlangShape controls the variance of per-chunk rendezvous draws:
// delays are Erlang(k, mean) — the sum of k exponentials — giving a
// coefficient of variation 1/sqrt(k). Real rendezvous latencies are
// far less dispersed than exponential; k = 8 reproduces the paper's
// tight synchronization of symmetric configurations (t_exit_barrier
// of 3.9 ms at n = m = 2).
const erlangShape = 8

// drawDelay samples an Erlang-distributed delay with the given mean.
func drawDelay(sim *des.Sim, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	d := 0.0
	for i := 0; i < erlangShape; i++ {
		d += sim.Exp(mean / erlangShape)
	}
	return d
}

// Params holds the calibrated testbed constants. All rates are MB/s
// (MB = 1e6 bytes), times are milliseconds, sizes are bytes.
type Params struct {
	// WireMBps is the raw effective link bandwidth available to
	// chunk transmissions (ATM LANE + 1996 TCP overhead).
	WireMBps float64
	// ChunkBytes is the transfer granularity of the synchronous
	// send protocol.
	ChunkBytes int
	// Delta0 is the base per-chunk rendezvous latency with a single
	// runnable thread on each node.
	Delta0 float64
	// SigmaClient/SigmaServer scale rendezvous latency per extra
	// runnable thread on the client/server node (multiplicative).
	SigmaClient float64
	SigmaServer float64
	// Cross is the additive interaction term per (n-1)*(m-1).
	Cross float64

	// ClientPackMBps is the communicator's marshaling rate; PackFloor
	// is the fixed per-thread marshaling setup cost.
	ClientPackMBps float64
	PackFloor      float64
	// ClientShmMBps is the MPI shared-memory gather rate on the
	// client; ShmParallelGain is the relative speedup per additional
	// concurrent shm sender beyond the second.
	ClientShmMBps   float64
	ServerShmMBps   float64
	ShmParallelGain float64
	// GatherFloor is the fixed cost of the gather/scatter step.
	GatherFloor float64

	// ServerUnpackMBps is the server-side unmarshal rate;
	// UnpackInterference scales it per extra runnable server thread.
	ServerUnpackMBps   float64
	UnpackInterference float64

	// RequestOverhead is the fixed invocation cost (header delivery,
	// dispatch, reply); OverheadPerClientThread/ServerThread add the
	// per-thread synchronization cost.
	RequestOverhead         float64
	OverheadPerClientThread float64
	OverheadPerServerThread float64

	// PerBlockCost is the multi-port per-block handling cost
	// (transfer header, matching) on each side.
	PerBlockCost float64

	// EagerBytes is the threshold below which a transfer is sent
	// eagerly (buffered, no rendezvous): the paper notes that only
	// sends of LARGE data are "in practice synchronous operations".
	// EagerCost is the fixed per-message cost of an eager send.
	EagerBytes int
	EagerCost  float64

	// Multi-port stream contention: with n concurrent sender threads
	// the per-chunk rendezvous latency of each stream rises steeply
	// (all threads do protocol work and contend for CPU and NIC),
	// tempered by receiver-side parallelism. The per-chunk delay is
	//   n == 1: delta(n, m) (same as centralized)
	//   n >= 2: (Delta0 + MPDeltaSlope*(n-1)^MPDeltaExp) /
	//           (1 + MPRecvGain*(m-1))
	MPDeltaSlope float64
	MPDeltaExp   float64
	MPRecvGain   float64

	// CacheBytes is the client working-set size beyond which pack and
	// send rates degrade by CachePenalty (secondary-cache overflow on
	// the R4400 node) — responsible for the centralized method's
	// bandwidth peak at 2^16 doubles in Figure 4.
	CacheBytes   int
	CachePenalty float64

	// Seed drives the exponential rendezvous draws; Reps averages
	// that many simulated invocations (the paper averaged 1000; a
	// handful suffices for stable means here).
	Reps int
	Seed int64
}

// DefaultParams returns the constants calibrated against Tables 1-2.
func DefaultParams() Params {
	return Params{
		WireMBps:    4.6,
		ChunkBytes:  16384,
		Delta0:      1.80,
		SigmaClient: 0.32,
		SigmaServer: 0.017,
		Cross:       0.044,

		ClientPackMBps:  28.5,
		PackFloor:       4.0,
		ClientShmMBps:   15.0,
		ServerShmMBps:   26.0,
		ShmParallelGain: 0.08,
		GatherFloor:     0.7,

		ServerUnpackMBps:   63.0,
		UnpackInterference: 0.044,

		RequestOverhead:         18.5,
		OverheadPerClientThread: 0.9,
		OverheadPerServerThread: 1.0,

		PerBlockCost: 2.0,
		EagerBytes:   16384,
		EagerCost:    0.4,

		MPDeltaSlope: 5.8,
		MPDeltaExp:   0.6,
		MPRecvGain:   0.035,

		CacheBytes:   1 << 20,
		CachePenalty: 0.06,

		Reps: 4,
		Seed: 1996,
	}
}

// delta returns the mean per-chunk rendezvous latency with n runnable
// threads on the client node and m on the server node (centralized
// method: one active sender, the rest spinning).
func (p Params) delta(n, m int) float64 {
	return p.Delta0*(1+p.SigmaClient*float64(n-1))*(1+p.SigmaServer*float64(m-1)) +
		p.Cross*float64(n-1)*float64(m-1)
}

// mpDelta returns the mean per-chunk rendezvous latency of one
// multi-port stream with n concurrent sender threads and m receiver
// threads.
func (p Params) mpDelta(n, m int) float64 {
	if n <= 1 {
		return p.delta(n, m)
	}
	base := p.Delta0 + p.MPDeltaSlope*pow(float64(n-1), p.MPDeltaExp)
	return base / (1 + p.MPRecvGain*float64(m-1))
}

// pow is math.Pow; aliased to keep the import list honest.
func pow(x, y float64) float64 { return mathPow(x, y) }

// wireMs returns the transmission time of size bytes on the link.
func (p Params) wireMs(size int) float64 {
	return float64(size) / p.WireMBps / 1000.0
}

// packMs returns the communicator-side marshaling time for size
// bytes, including the large-working-set penalty.
func (p Params) packMs(size int) float64 {
	rate := p.ClientPackMBps
	if size > p.CacheBytes {
		rate /= 1 + p.CachePenalty
	}
	return p.PackFloor + float64(size)/rate/1000.0
}

// unpackMs returns the server-side unmarshal time for size bytes with
// m runnable threads.
func (p Params) unpackMs(size, m int) float64 {
	rate := p.ServerUnpackMBps / (1 + p.UnpackInterference*float64(m-1))
	return float64(size) / rate / 1000.0
}

// shmMoveMs returns the time to gather/scatter a sequence of size
// bytes between k threads over the node's shared memory (the
// communicator exchanges (k-1)/k of the data with k-1 peers, who
// proceed partly in parallel).
func (p Params) shmMoveMs(size, k int, rate float64) float64 {
	if k <= 1 {
		return p.GatherFloor
	}
	moved := float64(size) * float64(k-1) / float64(k)
	eff := rate * (1 + p.ShmParallelGain*float64(k-2))
	return p.GatherFloor + moved/eff/1000.0
}

// overheadMs returns the fixed invocation overhead.
func (p Params) overheadMs(n, m int) float64 {
	return p.RequestOverhead +
		p.OverheadPerClientThread*float64(n-1) +
		p.OverheadPerServerThread*float64(m-1)
}

// CentralizedBreakdown mirrors the columns of Table 1.
type CentralizedBreakdown struct {
	N, M  int
	Bytes int
	// Gather and Scatter are the RTS collective times; PackSend is
	// the communicator's marshal+send (the paper's t_p&s); Unpack is
	// the server's receive+unmarshal (t_u); Overhead is everything
	// else (header, dispatch, reply, synchronization).
	Gather, PackSend, Unpack, Scatter, Overhead float64
	// Total is t_c.
	Total float64
}

// MultiPortBreakdown mirrors the columns of Table 2.
type MultiPortBreakdown struct {
	N, M  int
	Bytes int
	// Pack is the per-thread marshal max (t_p); Send the per-stream
	// transfer max (t_send); Unpack the per-server-thread unmarshal
	// max (t_u); ExitBarrier the communicator's post-invocation
	// barrier wait (t_exit_barrier, measured on processor 0).
	Pack, Send, Unpack, ExitBarrier float64
	// Total is t_mp.
	Total float64
}

// Centralized simulates one centralized-method invocation carrying an
// "in" dsequence of the given byte size from an n-thread client to an
// m-thread server, averaged over Params.Reps runs.
func Centralized(p Params, n, m, bytes int) CentralizedBreakdown {
	if n < 1 || m < 1 || bytes < 0 {
		panic(fmt.Sprintf("simnet: bad configuration n=%d m=%d bytes=%d", n, m, bytes))
	}
	var acc CentralizedBreakdown
	for rep := 0; rep < p.Reps; rep++ {
		b := centralizedOnce(p, n, m, bytes, p.Seed+int64(rep)*7919)
		acc.Gather += b.Gather
		acc.PackSend += b.PackSend
		acc.Unpack += b.Unpack
		acc.Scatter += b.Scatter
		acc.Overhead += b.Overhead
		acc.Total += b.Total
	}
	inv := 1 / float64(p.Reps)
	acc.Gather *= inv
	acc.PackSend *= inv
	acc.Unpack *= inv
	acc.Scatter *= inv
	acc.Overhead *= inv
	acc.Total *= inv
	acc.N, acc.M, acc.Bytes = n, m, bytes
	return acc
}

func centralizedOnce(p Params, n, m, bytes int, seed int64) CentralizedBreakdown {
	sim := des.New(seed)
	wire := sim.NewResource(1)
	var b CentralizedBreakdown

	sim.Spawn("centralized", func(pr *des.Proc) {
		// Phase 1: gather to the client communicator over MPI shm.
		t0 := pr.Now()
		pr.Wait(p.shmMoveMs(bytes, n, p.ClientShmMBps))
		b.Gather = pr.Now() - t0

		// Phase 2+3: the communicator packs, then sends the single
		// message chunk by chunk; every chunk needs a rendezvous
		// with the (possibly descheduled) server communicator.
		t0 = pr.Now()
		pr.Wait(p.packMs(bytes))
		sendRate := 1.0
		if bytes > p.CacheBytes {
			sendRate = 1 + p.CachePenalty
		}
		if bytes <= p.EagerBytes {
			// Small messages go out eagerly (buffered send): no
			// rendezvous with the receiver.
			pr.Wait(p.EagerCost)
			wire.Use(pr, p.wireMs(bytes))
		} else {
			remaining := bytes
			for remaining > 0 {
				c := p.ChunkBytes
				if c > remaining {
					c = remaining
				}
				remaining -= c
				pr.Wait(drawDelay(sim, p.delta(n, m)))
				wire.Use(pr, p.wireMs(c)*sendRate)
			}
		}
		b.PackSend = pr.Now() - t0

		// Phase 4: server communicator unpacks.
		t0 = pr.Now()
		pr.Wait(p.unpackMs(bytes, m))
		b.Unpack = pr.Now() - t0

		// Phase 5: scatter over server MPI shm.
		t0 = pr.Now()
		pr.Wait(p.shmMoveMs(bytes, m, p.ServerShmMBps))
		b.Scatter = pr.Now() - t0

		// Fixed overhead: header, dispatch, reply, synchronization.
		b.Overhead = p.overheadMs(n, m)
		pr.Wait(b.Overhead)
	})
	b.Total = sim.Run()
	return b
}

// MultiPort simulates one multi-port invocation carrying an "in"
// dsequence of the given byte size, block-distributed from n client
// threads to m server threads, averaged over Params.Reps runs. Both
// sides use the uniform BLOCK distribution, as in the experiment.
func MultiPort(p Params, n, m, bytes int) MultiPortBreakdown {
	if n < 1 || m < 1 || bytes < 0 {
		panic(fmt.Sprintf("simnet: bad configuration n=%d m=%d bytes=%d", n, m, bytes))
	}
	var acc MultiPortBreakdown
	for rep := 0; rep < p.Reps; rep++ {
		b := multiPortOnce(p, n, m, bytes, p.Seed+int64(rep)*7919)
		acc.Pack += b.Pack
		acc.Send += b.Send
		acc.Unpack += b.Unpack
		acc.ExitBarrier += b.ExitBarrier
		acc.Total += b.Total
	}
	inv := 1 / float64(p.Reps)
	acc.Pack *= inv
	acc.Send *= inv
	acc.Unpack *= inv
	acc.ExitBarrier *= inv
	acc.Total *= inv
	acc.N, acc.M, acc.Bytes = n, m, bytes
	return acc
}

func multiPortOnce(p Params, n, m, bytes int, seed int64) MultiPortBreakdown {
	const elem = 8 // doubles
	length := bytes / elem
	src := dist.Block().MustApply(length, n)
	dst := dist.Block().MustApply(length, m)
	return multiPortLayoutsOnce(p, src, dst, seed)
}

// MultiPortLayouts simulates a multi-port invocation whose argument
// uses arbitrary client/server layouts — the §5 future-work study of
// transfer strategies "under different assumptions about argument
// distribution". Layout lengths are in doubles.
func MultiPortLayouts(p Params, src, dst dist.Layout) MultiPortBreakdown {
	if src.Len() != dst.Len() {
		panic("simnet: layout length mismatch")
	}
	var acc MultiPortBreakdown
	for rep := 0; rep < p.Reps; rep++ {
		b := multiPortLayoutsOnce(p, src, dst, p.Seed+int64(rep)*7919)
		acc.Pack += b.Pack
		acc.Send += b.Send
		acc.Unpack += b.Unpack
		acc.ExitBarrier += b.ExitBarrier
		acc.Total += b.Total
	}
	inv := 1 / float64(p.Reps)
	acc.Pack *= inv
	acc.Send *= inv
	acc.Unpack *= inv
	acc.ExitBarrier *= inv
	acc.Total *= inv
	acc.N, acc.M, acc.Bytes = src.P(), dst.P(), src.Len()*8
	return acc
}

func multiPortLayoutsOnce(p Params, src, dst dist.Layout, seed int64) MultiPortBreakdown {
	const elem = 8 // doubles
	n, m := src.P(), dst.P()
	plan, err := dist.Plan(src, dst)
	if err != nil {
		panic(err)
	}

	sim := des.New(seed)
	wire := sim.NewResource(1)
	var b MultiPortBreakdown

	// Header delivery: centralized, before data transfer begins
	// (§3.3 separates invocation from argument transfer).
	headerDone := sim.NewGate()
	sim.Spawn("header", func(pr *des.Proc) {
		pr.Wait(p.overheadMs(n, m))
		headerDone.Open()
	})

	// Per-server-thread accounting.
	recvDone := make([]float64, m)
	recvBytes := make([]int, m)
	recvBlocks := make([]int, m)
	for _, tr := range plan {
		recvBytes[tr.To] += tr.Count * elem
		recvBlocks[tr.To]++
	}

	// One stream per client thread, sending its plan share block by
	// block (sequentially within a thread, concurrently across
	// threads — the wire resource arbitrates).
	done := sim.NewBarrier(n + 1)
	sendEnd := make([]float64, n)
	packEnd := make([]float64, n)
	for i := 0; i < n; i++ {
		i := i
		mine := dist.PlanFor(plan, i)
		sim.Spawn(fmt.Sprintf("stream-%d", i), func(pr *des.Proc) {
			headerDone.WaitOpen(pr)
			// Per-thread pack of the local share.
			myBytes := src.Count(i) * elem
			if myBytes > 0 {
				pr.Wait(p.PackFloor + float64(myBytes)/p.ClientPackMBps/1000.0)
			}
			packEnd[i] = pr.Now()
			for _, tr := range mine {
				pr.Wait(p.PerBlockCost) // transfer header, matching
				blockBytes := tr.Count * elem
				if blockBytes <= p.EagerBytes {
					pr.Wait(p.EagerCost)
					wire.Use(pr, p.wireMs(blockBytes))
				} else {
					remaining := blockBytes
					for remaining > 0 {
						c := p.ChunkBytes
						if c > remaining {
							c = remaining
						}
						remaining -= c
						pr.Wait(drawDelay(sim, p.mpDelta(n, m)))
						wire.Use(pr, p.wireMs(c))
					}
				}
				if pr.Now() > recvDone[tr.To] {
					recvDone[tr.To] = pr.Now()
				}
			}
			sendEnd[i] = pr.Now()
			done.Arrive(pr)
		})
	}
	var unpackMax, lastServer, firstServer float64
	sim.Spawn("collector", func(pr *des.Proc) {
		done.Arrive(pr)
		// Every server thread unpacks its blocks after its last one
		// arrives; completion skew becomes the exit-barrier wait.
		serverDone := make([]float64, m)
		for j := 0; j < m; j++ {
			u := float64(recvBlocks[j])*p.PerBlockCost + p.unpackMs(recvBytes[j], m)
			serverDone[j] = recvDone[j] + u
			if u > unpackMax {
				unpackMax = u
			}
		}
		firstServer, lastServer = serverDone[0], serverDone[0]
		for _, d := range serverDone {
			if d > lastServer {
				lastServer = d
			}
			if d < firstServer {
				firstServer = d
			}
		}
		if wait := lastServer - pr.Now(); wait > 0 {
			pr.Wait(wait)
		}
	})
	total := sim.Run()

	// Columns: per-thread maxima, as in Table 2.
	for i := 0; i < n; i++ {
		if pk := packEnd[i] - p.overheadMs(n, m); pk > b.Pack {
			b.Pack = pk
		}
		if sd := sendEnd[i] - packEnd[i]; sd > b.Send {
			b.Send = sd
		}
	}
	b.Unpack = unpackMax
	// The paper reports processor 0's barrier wait; server thread 0
	// receives the earliest blocks under block distributions, so its
	// wait is the full skew.
	b.ExitBarrier = lastServer - (recvDone[0] + float64(recvBlocks[0])*p.PerBlockCost + p.unpackMs(recvBytes[0], m))
	if b.ExitBarrier < 0 {
		b.ExitBarrier = 0
	}
	b.Total = total
	return b
}
