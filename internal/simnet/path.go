// Modern calibrated path topologies: where simnet.go replays the
// paper's 1996 ATM testbed, Path models the networks today's
// deployments actually sit on (datacenter LAN, cross-site WAN) at the
// granularity the data-plane knobs act on — chunked, windowed,
// striped block streams. The transfer model is independent of
// internal/tune's recommendation heuristic (it executes the windowed
// send protocol on a discrete-event simulation rather than inverting
// the BDP formula), so the Figure-4 sweep test that asserts
// tuned ≥ static is non-circular.
package simnet

import "pardis/internal/des"

// Path describes one calibrated client→server network path.
type Path struct {
	// Name labels the topology in test output.
	Name string
	// BandwidthBps is the bottleneck wire rate in bytes per second.
	BandwidthBps float64
	// RTT is the round-trip time in seconds: a chunk's window credit
	// is held from send start until its acknowledgment returns, so
	// in-flight data must cover BandwidthBps×RTT to keep the wire busy.
	RTT float64
	// PerChunkCost is the fixed per-chunk sender cost in seconds
	// (framing, encode, syscall) paid before the chunk touches the
	// wire; it is what chunk-size amortization buys back.
	PerChunkCost float64
	// Setup is the one-time per-transfer cost (invocation header,
	// plan exchange) in seconds.
	Setup float64
}

// LANPath is a calibrated 10 GbE datacenter path: 1.25 GB/s wire,
// 200 µs RTT through the kernel stack and one switch, 20 µs fixed
// cost per chunk.
func LANPath() Path {
	return Path{Name: "lan", BandwidthBps: 1.25e9, RTT: 200e-6,
		PerChunkCost: 20e-6, Setup: 300e-6}
}

// WANPath is a calibrated cross-site 1 Gb/s path: 125 MB/s wire,
// 40 ms RTT, the same 20 µs per-chunk sender cost.
func WANPath() Path {
	return Path{Name: "wan", BandwidthBps: 125e6, RTT: 40e-3,
		PerChunkCost: 20e-6, Setup: 300e-6}
}

// TransferSeconds simulates one windowed, chunked, striped transfer of
// `bytes` payload bytes over the path and returns its wall-clock time.
//
// The simulation executes the data plane's actual send protocol
// (sendPlanBlocks/sendPlanPuts): the transfer splits into
// ceil(bytes/chunkBytes) chunks issued in order under a window-credit
// semaphore; each chunk occupies one of `stripes` connection slots
// while it pays the fixed per-chunk cost, transmits over the shared
// bottleneck wire (capacity 1, FCFS — transmissions from concurrent
// chunks serialize), and holds its window credit until the
// acknowledgment returns one RTT after send start. chunkBytes <= 0
// means chunking disabled (the whole transfer is one chunk); window
// and stripes below 1 clamp to 1.
func (pt Path) TransferSeconds(bytes, chunkBytes, window, stripes int) float64 {
	if bytes <= 0 {
		return pt.Setup
	}
	if chunkBytes <= 0 || chunkBytes > bytes {
		chunkBytes = bytes
	}
	window = max(window, 1)
	stripes = max(stripes, 1)

	sim := des.New(1)
	credits := sim.NewResource(window)
	slots := sim.NewResource(stripes)
	wire := sim.NewResource(1)

	sim.Spawn("sender", func(p *des.Proc) {
		p.Wait(pt.Setup)
		for off := 0; off < bytes; off += chunkBytes {
			n := min(chunkBytes, bytes-off)
			// The issue loop acquires the credit (the in-flight window
			// bound) before the chunk goroutine exists, exactly like
			// the semaphore in sendPlanBlocks.
			credits.Acquire(p)
			sim.Spawn("chunk", func(cp *des.Proc) {
				slots.Acquire(cp)
				cp.Wait(pt.PerChunkCost)
				wire.Use(cp, float64(n)/pt.BandwidthBps)
				slots.Release(cp)
				// The credit returns when the ack does: one RTT after
				// the chunk cleared the sender.
				cp.Wait(pt.RTT)
				credits.Release(cp)
			})
		}
	})
	return sim.Run()
}
