package simnet

import (
	"fmt"
	"os"
	"testing"
)

// TestPrintCalibration prints model vs paper for manual calibration.
// Run with PARDIS_CALIB=1.
func TestPrintCalibration(t *testing.T) {
	if os.Getenv("PARDIS_CALIB") == "" {
		t.Skip("set PARDIS_CALIB=1 to print the calibration grid")
	}
	p := DefaultParams()
	const L = (1 << 17) * 8
	fmt.Println("== centralized (paper: tc, tgather, tp&s, tu, tscatter) ==")
	paper1 := map[[2]int][5]float64{
		{1, 1}: {417, 0.74, 380, 16.7, 0.2}, {1, 2}: {442, 0.74, 382, 20.5, 21.3},
		{1, 4}: {451, 0.74, 385, 21.1, 25}, {1, 8}: {461, 0.74, 394, 21.8, 25.8},
		{2, 1}: {497, 33.6, 421, 17.1, 0.2}, {2, 2}: {529, 33.6, 430, 20.3, 20.2},
		{2, 4}: {538, 33.6, 433, 21.2, 24.6}, {2, 8}: {552, 33.6, 446, 21.7, 26.2},
		{4, 1}: {571, 43.2, 486, 15.9, 0.2}, {4, 2}: {634, 43.2, 528, 20, 18.9},
		{4, 4}: {685, 43.2, 571, 21.1, 25.5}, {4, 8}: {697, 43.2, 577, 21.6, 26.7},
	}
	for _, n := range []int{1, 2, 4} {
		for _, m := range []int{1, 2, 4, 8} {
			b := Centralized(p, n, m, L)
			pp := paper1[[2]int{n, m}]
			fmt.Printf("n=%d m=%d  tc %6.0f/%6.0f (%+5.1f%%)  tg %5.1f/%5.1f  tps %5.0f/%5.0f  tu %5.1f/%5.1f  tsc %5.1f/%5.1f\n",
				n, m, b.Total, pp[0], 100*(b.Total-pp[0])/pp[0],
				b.Gather, pp[1], b.PackSend, pp[2], b.Unpack, pp[3], b.Scatter, pp[4])
		}
	}
	fmt.Println("== multiport (paper: tmp, tp, tsend, tu, texit) ==")
	paper2 := map[[2]int][5]float64{
		{1, 1}: {420, 37.2, 338, 23.5, 0.03}, {1, 2}: {417, 38.4, 348, 18.3, 165},
		{1, 4}: {408, 35.1, 347, 8.1, 256}, {1, 8}: {412, 30.9, 356, 3.5, 307},
		{2, 1}: {431, 15.9, 361, 23.6, 0.03}, {2, 2}: {425, 16.4, 358, 12.6, 3.9},
		{2, 4}: {412, 17, 352, 7.5, 169}, {2, 8}: {393, 16.4, 336, 3.5, 240},
		{4, 1}: {367, 13.1, 285, 25.8, 0.03}, {4, 2}: {376, 13.8, 298, 13.5, 3.9},
		{4, 4}: {368, 13.4, 296, 6.4, 8.3}, {4, 8}: {336, 13.1, 261, 3.4, 129},
	}
	for _, n := range []int{1, 2, 4} {
		for _, m := range []int{1, 2, 4, 8} {
			b := MultiPort(p, n, m, L)
			pp := paper2[[2]int{n, m}]
			fmt.Printf("n=%d m=%d  tmp %6.0f/%6.0f (%+5.1f%%)  tp %5.1f/%5.1f  tsend %5.0f/%5.0f  tu %5.1f/%5.1f  texit %5.0f/%5.0f\n",
				n, m, b.Total, pp[0], 100*(b.Total-pp[0])/pp[0],
				b.Pack, pp[1], b.Send, pp[2], b.Unpack, pp[3], b.ExitBarrier, pp[4])
		}
	}
}
