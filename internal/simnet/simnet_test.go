package simnet

import (
	"testing"
	"testing/quick"
)

const expBytes = (1 << 17) * 8

func TestDeterministicAcrossRuns(t *testing.T) {
	p := DefaultParams()
	a := Centralized(p, 4, 8, expBytes)
	b := Centralized(p, 4, 8, expBytes)
	if a != b {
		t.Fatalf("centralized not deterministic: %+v vs %+v", a, b)
	}
	ma := MultiPort(p, 4, 8, expBytes)
	mb := MultiPort(p, 4, 8, expBytes)
	if ma != mb {
		t.Fatalf("multiport not deterministic: %+v vs %+v", ma, mb)
	}
}

func TestBreakdownSumsBelowTotal(t *testing.T) {
	p := DefaultParams()
	for _, n := range []int{1, 2, 4} {
		for _, m := range []int{1, 2, 4, 8} {
			b := Centralized(p, n, m, expBytes)
			sum := b.Gather + b.PackSend + b.Unpack + b.Scatter + b.Overhead
			if sum > b.Total*1.0001 || b.Total <= 0 {
				t.Fatalf("n=%d m=%d: phases %.1f exceed total %.1f", n, m, sum, b.Total)
			}
		}
	}
}

// Shape invariant (Table 1): centralized time grows with both n and m
// — "the time of argument transfer grows with the increase of
// computational resources at client and server".
func TestCentralizedGrowsWithThreads(t *testing.T) {
	p := DefaultParams()
	prevN := 0.0
	for _, n := range []int{1, 2, 4} {
		b := Centralized(p, n, 8, expBytes)
		if b.Total <= prevN {
			t.Fatalf("t_c not increasing in n: n=%d gives %.1f, previous %.1f", n, b.Total, prevN)
		}
		prevN = b.Total
	}
	prevM := 0.0
	for _, m := range []int{1, 2, 4, 8} {
		b := Centralized(p, 4, m, expBytes)
		if b.Total <= prevM {
			t.Fatalf("t_c not increasing in m: m=%d gives %.1f, previous %.1f", m, b.Total, prevM)
		}
		prevM = b.Total
	}
}

// Shape invariant (Table 1): gather cost grows with n; scatter with m;
// pack time is essentially constant.
func TestCentralizedCollectiveCosts(t *testing.T) {
	p := DefaultParams()
	g1 := Centralized(p, 1, 1, expBytes).Gather
	g4 := Centralized(p, 4, 1, expBytes).Gather
	if g4 < 10*g1 {
		t.Fatalf("gather cost must jump once n > 1: %v vs %v", g1, g4)
	}
	s1 := Centralized(p, 1, 1, expBytes).Scatter
	s8 := Centralized(p, 1, 8, expBytes).Scatter
	if s8 < 10*s1 {
		t.Fatalf("scatter cost must jump once m > 1: %v vs %v", s1, s8)
	}
}

// Shape invariant (Table 2): multi-port per-thread pack decreases as n
// grows (each thread handles 1/n of the data).
func TestMultiPortPackShrinksWithN(t *testing.T) {
	p := DefaultParams()
	p1 := MultiPort(p, 1, 8, expBytes).Pack
	p4 := MultiPort(p, 4, 8, expBytes).Pack
	if p4 >= p1/2 {
		t.Fatalf("per-thread pack must shrink with n: n=1 %.1f, n=4 %.1f", p1, p4)
	}
}

// Shape invariant (Table 2): with a single client thread, sends are
// sequentialized and the exit-barrier skew grows with m; with n = m
// the threads are nearly synchronized.
func TestMultiPortExitBarrierSkew(t *testing.T) {
	p := DefaultParams()
	prev := -1.0
	for _, m := range []int{2, 4, 8} {
		b := MultiPort(p, 1, m, expBytes)
		if b.ExitBarrier <= prev {
			t.Fatalf("exit barrier must grow with m at n=1: m=%d gives %.1f, prev %.1f",
				m, b.ExitBarrier, prev)
		}
		prev = b.ExitBarrier
	}
	sym := MultiPort(p, 2, 2, expBytes)
	asym := MultiPort(p, 1, 2, expBytes)
	if sym.ExitBarrier > asym.ExitBarrier/3 {
		t.Fatalf("n=m must be nearly synchronized: sym %.1f vs asym %.1f",
			sym.ExitBarrier, asym.ExitBarrier)
	}
}

// Shape invariant (§3.4): multi-port total decreases as resources
// grow, and never loses to centralized at the experimental size.
func TestMultiPortScalesDown(t *testing.T) {
	p := DefaultParams()
	t11 := MultiPort(p, 1, 1, expBytes).Total
	t48 := MultiPort(p, 4, 8, expBytes).Total
	if t48 >= t11 {
		t.Fatalf("multi-port must speed up with resources: (1,1)=%.1f (4,8)=%.1f", t11, t48)
	}
	for _, n := range []int{1, 2, 4} {
		for _, m := range []int{1, 2, 4, 8} {
			mp := MultiPort(p, n, m, expBytes).Total
			ce := Centralized(p, n, m, expBytes).Total
			if mp > ce*1.10 {
				t.Fatalf("multi-port loses at n=%d m=%d: %.1f vs %.1f", n, m, mp, ce)
			}
		}
	}
}

// Quantitative fidelity: every total within 12% of the paper's value.
func TestTotalsWithinTolerance(t *testing.T) {
	p := DefaultParams()
	paper1 := map[[2]int]float64{
		{1, 1}: 417, {1, 2}: 442, {1, 4}: 451, {1, 8}: 461,
		{2, 1}: 497, {2, 2}: 529, {2, 4}: 538, {2, 8}: 552,
		{4, 1}: 571, {4, 2}: 634, {4, 4}: 685, {4, 8}: 697,
	}
	paper2 := map[[2]int]float64{
		{1, 1}: 420, {1, 2}: 417, {1, 4}: 408, {1, 8}: 412,
		{2, 1}: 431, {2, 2}: 425, {2, 4}: 412, {2, 8}: 393,
		{4, 1}: 367, {4, 2}: 376, {4, 4}: 368, {4, 8}: 336,
	}
	const tol = 0.12
	for k, want := range paper1 {
		got := Centralized(p, k[0], k[1], expBytes).Total
		if rel := (got - want) / want; rel > tol || rel < -tol {
			t.Errorf("centralized n=%d m=%d: model %.0f, paper %.0f (%+.1f%%)",
				k[0], k[1], got, want, rel*100)
		}
	}
	for k, want := range paper2 {
		got := MultiPort(p, k[0], k[1], expBytes).Total
		if rel := (got - want) / want; rel > tol || rel < -tol {
			t.Errorf("multi-port n=%d m=%d: model %.0f, paper %.0f (%+.1f%%)",
				k[0], k[1], got, want, rel*100)
		}
	}
}

// §3.3 spot check: uneven splits stay comparable to even ones.
func TestUnevenSplitComparable(t *testing.T) {
	p := DefaultParams()
	got := MultiPort(p, 3, 5, expBytes).Total
	if got < 330 || got > 410 {
		t.Fatalf("n=3 m=5 total = %.0f, paper reports ~370", got)
	}
}

// Small sizes: both methods cost about the same (eager sends).
func TestSmallSizesComparable(t *testing.T) {
	p := DefaultParams()
	for _, L := range []int{10, 100, 1000} {
		c := Centralized(p, 4, 8, L*8).Total
		m := MultiPort(p, 4, 8, L*8).Total
		if m > c*1.6 || c > m*1.6 {
			t.Fatalf("L=%d: methods diverge at small sizes: cent %.1f, mp %.1f", L, c, m)
		}
	}
}

// Large sizes: multi-port wins by roughly the paper's factor (~2.2x
// at 2^17 doubles).
func TestLargeSizeAdvantage(t *testing.T) {
	p := DefaultParams()
	c := Centralized(p, 4, 8, expBytes).Total
	m := MultiPort(p, 4, 8, expBytes).Total
	ratio := c / m
	if ratio < 1.8 || ratio > 2.6 {
		t.Fatalf("advantage at 2^17 = %.2fx, paper shows ~2.1x", ratio)
	}
}

func TestBadConfigPanics(t *testing.T) {
	p := DefaultParams()
	for _, f := range []func(){
		func() { Centralized(p, 0, 1, 10) },
		func() { Centralized(p, 1, 0, 10) },
		func() { Centralized(p, 1, 1, -1) },
		func() { MultiPort(p, 0, 1, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad configuration accepted")
				}
			}()
			f()
		}()
	}
}

// Property: totals are positive and monotone in size for both
// methods over random configurations.
func TestQuickMonotoneInSize(t *testing.T) {
	p := DefaultParams()
	p.Reps = 2
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%4) + 1
		m := int(mRaw%8) + 1
		prevC, prevM := 0.0, 0.0
		for _, L := range []int{1 << 12, 1 << 15, 1 << 18, 1 << 21} {
			c := Centralized(p, n, m, L)
			mp := MultiPort(p, n, m, L)
			if c.Total <= prevC || mp.Total <= prevM {
				return false
			}
			prevC, prevM = c.Total, mp.Total
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
