package dseq

import (
	"fmt"
	"math"
	"testing"

	"pardis/internal/dist"
	"pardis/internal/mp"
	"pardis/internal/rts"
)

func TestFillAndMapLocal(t *testing.T) {
	s, _ := NewDoubles(10, dist.Block(), 2, 1) // owns [5,10)
	s.Fill(3)
	for _, v := range s.LocalData() {
		if v != 3 {
			t.Fatalf("fill: %v", s.LocalData())
		}
	}
	s.FillIndexed(func(g int) float64 { return float64(g) })
	if s.LocalData()[0] != 5 || s.LocalData()[4] != 9 {
		t.Fatalf("fill indexed: %v", s.LocalData())
	}
	s.MapLocal(func(g int, v float64) float64 { return v * 10 })
	if s.LocalData()[0] != 50 {
		t.Fatalf("map: %v", s.LocalData())
	}
}

func TestClone(t *testing.T) {
	s, _ := NewDoubles(6, dist.Block(), 2, 0)
	s.Fill(1)
	c := s.Clone()
	c.LocalData()[0] = 99
	if s.LocalData()[0] != 1 {
		t.Fatal("clone aliases original")
	}
	if c.Rank() != s.Rank() || c.Len() != s.Len() || c.Owned() != Owner {
		t.Fatal("clone metadata wrong")
	}
}

func TestReductions(t *testing.T) {
	runSPMD(t, 3, func(th rts.Thread) error {
		s, err := NewDoubles(9, dist.Block(), 3, th.Rank())
		if err != nil {
			return err
		}
		s.FillIndexed(func(g int) float64 { return float64(g + 1) }) // 1..9
		sum, err := ReduceSum(s, th)
		if err != nil {
			return err
		}
		if sum != 45 {
			return fmt.Errorf("sum = %v", sum)
		}
		maxV, err := ReduceMax(s, th)
		if err != nil {
			return err
		}
		if maxV != 9 {
			return fmt.Errorf("max = %v", maxV)
		}
		norm, err := Norm2(s, th)
		if err != nil {
			return err
		}
		if math.Abs(norm-math.Sqrt(285)) > 1e-12 {
			return fmt.Errorf("norm = %v", norm)
		}
		return nil
	})
}

func TestReduceMaxEmpty(t *testing.T) {
	w := mp.MustWorld(1)
	defer w.Close()
	th := rts.NewMessagePassing(w.Rank(0))
	s, _ := NewDoubles(0, dist.Block(), 1, 0)
	v, err := ReduceMax(s, th)
	if err != nil || !math.IsInf(v, -1) {
		t.Fatalf("empty max = %v, %v", v, err)
	}
}

// The plane dimension A/Bs the one-sided window fast path (the
// default for float64 sequences on a window-capable thread) against
// the tagged-send fallback (capability hidden behind noWindow).
func BenchmarkRedistributeBlockToProportions(b *testing.B) {
	for _, plane := range []string{"window", "fallback"} {
		b.Run("plane="+plane, func(b *testing.B) {
			prop, _ := dist.Proportions(1, 2, 3, 2)
			const L = 1 << 15
			b.SetBytes(L * 8)
			err := mp.Run(4, func(proc *mp.Proc) error {
				var th rts.Thread = rts.NewMessagePassing(proc)
				if plane == "fallback" {
					th = noWindow{th}
				}
				blockL := dist.Block().MustApply(L, 4)
				propL := prop.MustApply(L, 4)
				s, err := NewDoubles(L, dist.Block(), 4, proc.Rank())
				if err != nil {
					return err
				}
				for i := 0; i < b.N; i++ {
					target := propL
					if i%2 == 1 {
						target = blockL
					}
					if err := s.Redistribute(th, target); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkGatherDoubles(b *testing.B) {
	const L = 1 << 15
	b.SetBytes(L * 8)
	err := mp.Run(4, func(proc *mp.Proc) error {
		th := rts.NewMessagePassing(proc)
		s, err := NewDoubles(L, dist.Block(), 4, th.Rank())
		if err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			if _, err := GatherDoubles(s, th, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
