// Package dseq implements the PARDIS distributed sequence: a
// generalization of the CORBA sequence whose elements are distributed
// over the address spaces of the computing threads of an SPMD object
// (§2.2 of the paper). A sequence has an element type, a run-time
// length, and a distribution; each computing thread holds one
// contiguous block.
//
// As in PARDIS, all methods that move data are SPMD-style: they must
// be called collectively from every computing thread. Purely local
// accessors (LocalData, LocalLen, Len, Layout) are thread-private.
//
// The IDL-mapped type dsequence_double of the paper corresponds to
// Seq[float64] here; the conversion constructor (FromLocal) and the
// local access operations (LocalData/LocalLen) mirror the generated
// C++ mapping, letting applications keep their own memory-management
// scheme, with ownership recorded explicitly.
package dseq

import (
	"errors"
	"fmt"

	"pardis/internal/cdr"
	"pardis/internal/dist"
	"pardis/internal/giop"
	"pardis/internal/rts"
)

// Ownership records whether the sequence owns its local storage (and
// may grow or free it) or borrows the application's buffer, matching
// the PARDIS::ownership constructor argument.
type Ownership bool

const (
	// Owner means the sequence owns its storage.
	Owner Ownership = true
	// NotOwner means the storage belongs to the application.
	NotOwner Ownership = false
)

// Errors returned by sequence operations.
var (
	ErrBounds     = errors.New("dseq: index out of bounds")
	ErrMismatch   = errors.New("dseq: local data inconsistent with layout")
	ErrCollective = errors.New("dseq: collective call inconsistency")
)

// Codec marshals a block of elements for transport between computing
// threads or onto the wire. Implementations must be stateless.
type Codec[T any] interface {
	// Encode appends the elements to the encoder.
	Encode(e *cdr.Encoder, v []T)
	// Decode reads exactly n elements.
	Decode(d *cdr.Decoder, n int) ([]T, error)
	// DecodeInto reads exactly len(dst) elements straight into dst
	// (no intermediate slice).
	DecodeInto(d *cdr.Decoder, dst []T) error
}

// DoubleCodec marshals float64 blocks (the dsequence<double> of the
// paper's experiments).
type DoubleCodec struct{}

// Encode implements Codec.
func (DoubleCodec) Encode(e *cdr.Encoder, v []float64) { e.PutDoubleSeq(v) }

// Decode implements Codec. The destination is sized up front from the
// declared count, so the bulk decoder fills it in one pass (a single
// memcpy when the wire order matches the host).
func (DoubleCodec) Decode(d *cdr.Decoder, n int) ([]float64, error) {
	v, err := d.DoubleSeqInto(make([]float64, 0, n))
	if err != nil {
		return nil, err
	}
	if len(v) != n {
		return nil, fmt.Errorf("dseq: decoded %d doubles, want %d", len(v), n)
	}
	return v, nil
}

// DecodeInto implements Codec. The three-index slice caps the bulk
// decoder's capacity at len(dst), so on success the elements are
// guaranteed to have been written in place.
func (DoubleCodec) DecodeInto(d *cdr.Decoder, dst []float64) error {
	v, err := d.DoubleSeqInto(dst[:0:len(dst)])
	if err != nil {
		return err
	}
	if len(v) != len(dst) {
		return fmt.Errorf("dseq: decoded %d doubles, want %d", len(v), len(dst))
	}
	return nil
}

// LongCodec marshals int32 blocks.
type LongCodec struct{}

// Encode implements Codec.
func (LongCodec) Encode(e *cdr.Encoder, v []int32) { e.PutLongSeq(v) }

// Decode implements Codec.
func (LongCodec) Decode(d *cdr.Decoder, n int) ([]int32, error) {
	v, err := d.LongSeqInto(make([]int32, 0, n))
	if err != nil {
		return nil, err
	}
	if len(v) != n {
		return nil, fmt.Errorf("dseq: decoded %d longs, want %d", len(v), n)
	}
	return v, nil
}

// DecodeInto implements Codec.
func (LongCodec) DecodeInto(d *cdr.Decoder, dst []int32) error {
	v, err := d.LongSeqInto(dst[:0:len(dst)])
	if err != nil {
		return err
	}
	if len(v) != len(dst) {
		return fmt.Errorf("dseq: decoded %d longs, want %d", len(v), len(dst))
	}
	return nil
}

// Seq is one computing thread's view of a distributed sequence of T.
type Seq[T any] struct {
	layout dist.Layout
	rank   int
	local  []T
	owned  Ownership
	codec  Codec[T]

	// Redistribute scratch state, recycled across calls so a steady
	// redistribution pattern (e.g. alternating between two layouts in
	// a solver loop) stops allocating: the displaced local block
	// becomes the next call's destination buffer, transfer plans are
	// memoized per (src, dst) layout pair, and the send-completion
	// channel is reused.
	scratch  []T
	plans    [2]redistPlan
	nextPlan int
	sendDone chan error
}

// redistPlan memoizes one dist.Plan result keyed by its layout pair,
// along with the put-count vector the one-sided window path needs
// (expect[src] = transfers src directs at this rank, self excluded).
type redistPlan struct {
	src, dst dist.Layout
	plan     []dist.Transfer
	expect   []int
	ok       bool
}

// planFor returns the (read-only) transfer plan from s.layout to dst
// and the rank's expected-put vector, serving repeat layout pairs from
// a two-entry memo — enough to make an alternating redistribution loop
// plan-allocation-free.
func (s *Seq[T]) planFor(dst dist.Layout) ([]dist.Transfer, []int, error) {
	for _, p := range s.plans {
		if p.ok && p.src.Equal(s.layout) && p.dst.Equal(dst) {
			return p.plan, p.expect, nil
		}
	}
	plan, err := dist.Plan(s.layout, dst)
	if err != nil {
		return nil, nil, err
	}
	expect := make([]int, s.layout.P())
	for _, tr := range plan {
		if tr.To == s.rank && tr.From != s.rank {
			expect[tr.From]++
		}
	}
	s.plans[s.nextPlan] = redistPlan{src: s.layout, dst: dst, plan: plan, expect: expect, ok: true}
	s.nextPlan = (s.nextPlan + 1) % len(s.plans)
	return plan, expect, nil
}

// New allocates a distributed sequence of the given global length,
// distributed by spec over p threads; rank identifies the calling
// thread. Every thread of the SPMD section must construct with equal
// arguments.
func New[T any](codec Codec[T], length int, spec dist.Spec, p, rank int) (*Seq[T], error) {
	layout, err := spec.Apply(length, p)
	if err != nil {
		return nil, err
	}
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("%w: rank %d of %d", ErrBounds, rank, p)
	}
	return &Seq[T]{
		layout: layout,
		rank:   rank,
		local:  make([]T, layout.Count(rank)),
		owned:  Owner,
		codec:  codec,
	}, nil
}

// FromLocal is the conversion constructor: it wraps an existing local
// block, recording whether the sequence takes ownership. The block
// length must equal the thread's share under layout.
func FromLocal[T any](codec Codec[T], layout dist.Layout, rank int, data []T, owned Ownership) (*Seq[T], error) {
	if rank < 0 || rank >= layout.P() {
		return nil, fmt.Errorf("%w: rank %d of %d", ErrBounds, rank, layout.P())
	}
	if len(data) != layout.Count(rank) {
		return nil, fmt.Errorf("%w: local block has %d elements, layout assigns %d to rank %d",
			ErrMismatch, len(data), layout.Count(rank), rank)
	}
	return &Seq[T]{layout: layout, rank: rank, local: data, owned: owned, codec: codec}, nil
}

// Len returns the global length.
func (s *Seq[T]) Len() int { return s.layout.Len() }

// Layout returns the sequence's block layout.
func (s *Seq[T]) Layout() dist.Layout { return s.layout }

// Rank returns the calling thread's rank.
func (s *Seq[T]) Rank() int { return s.rank }

// Owned reports whether the sequence owns its local storage.
func (s *Seq[T]) Owned() Ownership { return s.owned }

// Codec returns the element codec.
func (s *Seq[T]) Codec() Codec[T] { return s.codec }

// LocalData returns the thread's local block (aliased, not copied) —
// the local_data() accessor of the PARDIS mapping.
func (s *Seq[T]) LocalData() []T { return s.local }

// LocalLen returns the number of locally owned elements.
func (s *Seq[T]) LocalLen() int { return len(s.local) }

// Lo returns the global index of the first local element.
func (s *Seq[T]) Lo() int { return s.layout.Lo(s.rank) }

// LocalIndex translates a global index into a local offset, reporting
// whether this thread owns it.
func (s *Seq[T]) LocalIndex(global int) (int, bool) {
	if global < s.layout.Lo(s.rank) || global >= s.layout.Hi(s.rank) {
		return 0, false
	}
	return global - s.layout.Lo(s.rank), true
}

// SetLength changes the sequence length at run time following the
// PARDIS rules: shrinking discards the data above the new length;
// growing appends zero elements owned by the thread that owned the
// last element. Every thread must call it with the same argument. It
// is a local operation (no communication): the layout change is
// deterministic.
//
// Growing a borrowed (NotOwner) block reallocates and the sequence
// becomes the owner of the new storage, as the C++ mapping does when
// it must resize a user buffer.
func (s *Seq[T]) SetLength(newLen int) error {
	nl, err := s.layout.Relength(newLen)
	if err != nil {
		return err
	}
	oldCount := s.layout.Count(s.rank)
	newCount := nl.Count(s.rank)
	switch {
	case newCount == oldCount:
		// Block unchanged.
	case newCount < oldCount:
		s.local = s.local[:newCount]
	default:
		grown := make([]T, newCount)
		copy(grown, s.local)
		s.local = grown
		s.owned = Owner
	}
	s.layout = nl
	return nil
}

// At performs a location-transparent element read: the owning thread
// broadcasts the value to all threads. It is collective — every
// thread of the section must call it with the same index — matching
// the paper's SPMD-style operator[] contract.
func (s *Seq[T]) At(th rts.Thread, global int) (T, error) {
	var zero T
	owner, err := s.layout.Owner(global)
	if err != nil {
		return zero, err
	}
	var payload []byte
	if th.Rank() == owner {
		local, _ := s.LocalIndex(global)
		e := cdr.NewEncoder(cdr.BigEndian)
		s.codec.Encode(e, s.local[local:local+1])
		payload = e.Bytes()
	}
	out, err := th.Bcast(owner, payload)
	if err != nil {
		return zero, err
	}
	d := cdr.NewDecoder(cdr.BigEndian, out)
	vs, err := s.codec.Decode(d, 1)
	if err != nil {
		return zero, err
	}
	return vs[0], nil
}

// Set performs a location-transparent element write, collectively:
// every thread must call it with the same index and value; the owner
// stores it.
func (s *Seq[T]) Set(th rts.Thread, global int, v T) error {
	owner, err := s.layout.Owner(global)
	if err != nil {
		return err
	}
	if th.Rank() == owner {
		local, _ := s.LocalIndex(global)
		s.local[local] = v
	}
	// A barrier keeps the SPMD threads in lockstep so a following At
	// observes the write.
	return th.Barrier()
}

// Redistribute moves the sequence contents to a new layout with the
// same global length, exchanging blocks point-to-point according to
// the dist.Plan — the same block-intersection computation that drives
// multi-port argument transfer. After it returns on every thread, the
// sequence has the new layout and the same global contents.
func (s *Seq[T]) Redistribute(th rts.Thread, newLayout dist.Layout) error {
	if newLayout.Len() != s.Len() {
		return fmt.Errorf("%w: redistribute to length %d, have %d",
			ErrMismatch, newLayout.Len(), s.Len())
	}
	if newLayout.P() != s.layout.P() {
		return fmt.Errorf("%w: redistribute to %d threads, have %d",
			ErrMismatch, newLayout.P(), s.layout.P())
	}
	plan, expect, err := s.planFor(newLayout)
	if err != nil {
		return err
	}
	// Destination storage: recycle the scratch block (the local slice
	// displaced by the previous redistribution) when it is big enough.
	// Every destination element is covered by exactly one transfer, so
	// stale contents need no clearing.
	need := newLayout.Count(s.rank)
	var fresh []T
	if cap(s.scratch) >= need {
		fresh = s.scratch[:need]
	} else {
		fresh = make([]T, need)
	}
	rank := th.Rank()

	// One-sided fast path for double sequences: expose the destination
	// block as a put window and land every transfer directly — no
	// encode, no payload copy, no send goroutine; the fence subsumes
	// the closing barrier.
	if src, isF64 := any(s.local).([]float64); isF64 {
		if wt, ok := rts.AsWindowThread(th); ok {
			dst := any(fresh).([]float64)
			if err := redistributeWindow(wt, plan, expect, rank, src, dst); err != nil {
				return err
			}
			s.commit(newLayout, fresh)
			return nil
		}
	}

	// Local intersection first: a straight copy, no encoding.
	for _, tr := range plan {
		if tr.From == rank && tr.To == rank {
			copy(fresh[tr.DstOff:tr.DstOff+tr.Count], s.local[tr.SrcOff:tr.SrcOff+tr.Count])
		}
	}

	// Post all sends from their own goroutine, then drain receives on
	// this one: the RTS tags every message (by its index in the global
	// plan, so concurrent blocks between the same pair stay distinct),
	// which makes the posting order deadlock-free even under a
	// rendezvous-style RTS where SendBytes blocks until the receiver
	// arrives. Payloads are encoded native-order (flag octet + block)
	// on pooled encoders — within a process both directions are then a
	// single memcpy, and the buffers recycle instead of allocating per
	// transfer.
	if s.sendDone == nil {
		s.sendDone = make(chan error, 1)
	}
	sendDone := s.sendDone
	go func() {
		for i, tr := range plan {
			if tr.From != rank || tr.To == rank {
				continue
			}
			e := giop.AcquireEncoder(cdr.NativeOrder)
			e.PutOctet(byte(cdr.NativeOrder) & 1)
			s.codec.Encode(e.Encoder, s.local[tr.SrcOff:tr.SrcOff+tr.Count])
			err := th.SendBytes(tr.To, i, e.Bytes())
			e.Release() // SendBytes copies (or fully consumes) the payload
			if err != nil {
				sendDone <- err
				return
			}
		}
		sendDone <- nil
	}()

	var recvErr error
	for i, tr := range plan {
		if tr.To != rank || tr.From == rank {
			continue
		}
		raw, err := th.RecvBytes(tr.From, i)
		if err != nil {
			recvErr = err
			break
		}
		if len(raw) < 1 {
			recvErr = fmt.Errorf("%w: empty redistribute payload", ErrMismatch)
			break
		}
		d := cdr.NewDecoderAt(cdr.ByteOrder(raw[0]&1), raw[1:], 1)
		if err := s.codec.DecodeInto(d, fresh[tr.DstOff:tr.DstOff+tr.Count]); err != nil {
			recvErr = err
			break
		}
	}
	sendErr := <-sendDone
	if recvErr != nil {
		return recvErr
	}
	if sendErr != nil {
		return sendErr
	}
	if err := th.Barrier(); err != nil {
		return err
	}
	s.commit(newLayout, fresh)
	return nil
}

// commit installs the redistributed block: the displaced local slice
// becomes the next call's scratch — but only when this sequence owned
// it; a borrowed block still belongs to the caller and must not be
// written through later.
func (s *Seq[T]) commit(newLayout dist.Layout, fresh []T) {
	s.layout = newLayout
	if s.owned == Owner {
		s.scratch = s.local
	} else {
		s.scratch = nil
	}
	s.local = fresh
	s.owned = Owner
}

// redistributeWindow executes a transfer plan over the RTS one-sided
// window primitive: dst is exposed for one put epoch, every source
// block this rank owns is put straight at its destination offset
// (self-puts copy locally), and the fence completes the epoch — each
// block moves with at most one copy end to end and zero encodes.
func redistributeWindow(wt rts.WindowThread, plan []dist.Transfer, expect []int, rank int, src, dst []float64) error {
	w, err := wt.ExposeWindow(dst, expect)
	if err != nil {
		return err
	}
	for _, tr := range plan {
		if tr.From != rank {
			continue
		}
		if err := w.Put(tr.To, tr.DstOff, src[tr.SrcOff:tr.SrcOff+tr.Count]); err != nil {
			return err
		}
	}
	return w.Fence()
}

// Doubles is the dsequence<double> of the paper: a Seq[float64] with
// the double codec and direct RTS gather/scatter fast paths.
type Doubles = Seq[float64]

// NewDoubles allocates a distributed double sequence.
func NewDoubles(length int, spec dist.Spec, p, rank int) (*Doubles, error) {
	return New[float64](DoubleCodec{}, length, spec, p, rank)
}

// DoublesFromLocal wraps an application-owned block of doubles.
func DoublesFromLocal(layout dist.Layout, rank int, data []float64, owned Ownership) (*Doubles, error) {
	return FromLocal[float64](DoubleCodec{}, layout, rank, data, owned)
}

// GatherDoubles collects the full sequence at root using the RTS
// gather (the centralized method's building block); non-roots return
// nil.
func GatherDoubles(s *Doubles, th rts.Thread, root int) ([]float64, error) {
	return th.GatherDoubles(root, s.LocalData(), s.Layout().Counts())
}

// ScatterDoubles overwrites the sequence contents from a full array
// present at root, splitting by the sequence's layout.
func ScatterDoubles(s *Doubles, th rts.Thread, root int, data []float64) error {
	if th.Rank() == root && len(data) != s.Len() {
		return fmt.Errorf("%w: scatter %d elements into sequence of %d",
			ErrMismatch, len(data), s.Len())
	}
	blk, err := th.ScatterDoubles(root, data, s.Layout().Counts())
	if err != nil {
		return err
	}
	copy(s.LocalData(), blk)
	return nil
}
