package dseq

import (
	"math"

	"pardis/internal/rts"
)

// Fill sets every local element to v (thread-local; call from every
// thread to fill the whole sequence).
func (s *Seq[T]) Fill(v T) {
	for i := range s.local {
		s.local[i] = v
	}
}

// FillIndexed sets each local element from its global index
// (thread-local).
func (s *Seq[T]) FillIndexed(f func(global int) T) {
	lo := s.Lo()
	for i := range s.local {
		s.local[i] = f(lo + i)
	}
}

// MapLocal applies f to every local element in place (thread-local).
func (s *Seq[T]) MapLocal(f func(global int, v T) T) {
	lo := s.Lo()
	for i, v := range s.local {
		s.local[i] = f(lo+i, v)
	}
}

// Clone returns an owning copy of the thread's view.
func (s *Seq[T]) Clone() *Seq[T] {
	cp := make([]T, len(s.local))
	copy(cp, s.local)
	return &Seq[T]{layout: s.layout, rank: s.rank, local: cp, owned: Owner, codec: s.codec}
}

// ReduceSum computes the global sum of a double sequence on every
// thread. Collective.
func ReduceSum(s *Doubles, th rts.Thread) (float64, error) {
	local := 0.0
	for _, v := range s.LocalData() {
		local += v
	}
	bits, err := th.AllgatherU64(math.Float64bits(local))
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, b := range bits {
		total += math.Float64frombits(b)
	}
	return total, nil
}

// ReduceMax computes the global maximum of a double sequence on every
// thread; it returns -Inf for an empty sequence. Collective.
func ReduceMax(s *Doubles, th rts.Thread) (float64, error) {
	local := math.Inf(-1)
	for _, v := range s.LocalData() {
		if v > local {
			local = v
		}
	}
	bits, err := th.AllgatherU64(math.Float64bits(local))
	if err != nil {
		return 0, err
	}
	out := math.Inf(-1)
	for _, b := range bits {
		if v := math.Float64frombits(b); v > out {
			out = v
		}
	}
	return out, nil
}

// Norm2 computes the global Euclidean norm on every thread.
// Collective.
func Norm2(s *Doubles, th rts.Thread) (float64, error) {
	local := 0.0
	for _, v := range s.LocalData() {
		local += v * v
	}
	bits, err := th.AllgatherU64(math.Float64bits(local))
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, b := range bits {
		total += math.Float64frombits(b)
	}
	return math.Sqrt(total), nil
}
