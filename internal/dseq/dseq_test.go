package dseq

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"pardis/internal/dist"
	"pardis/internal/mp"
	"pardis/internal/rts"
	"pardis/internal/rts/onesided"
)

func TestNewAllocatesBlocks(t *testing.T) {
	for rank := 0; rank < 3; rank++ {
		s, err := NewDoubles(10, dist.Block(), 3, rank)
		if err != nil {
			t.Fatal(err)
		}
		want := []int{4, 3, 3}[rank]
		if s.LocalLen() != want || s.Len() != 10 || s.Rank() != rank {
			t.Fatalf("rank %d: local=%d len=%d", rank, s.LocalLen(), s.Len())
		}
		if s.Owned() != Owner {
			t.Fatal("New must produce an owning sequence")
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := NewDoubles(10, dist.Block(), 3, 3); !errors.Is(err, ErrBounds) {
		t.Fatalf("rank out of range: %v", err)
	}
	if _, err := NewDoubles(-1, dist.Block(), 3, 0); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestFromLocal(t *testing.T) {
	layout := dist.Block().MustApply(10, 2)
	buf := []float64{1, 2, 3, 4, 5}
	s, err := DoublesFromLocal(layout, 0, buf, NotOwner)
	if err != nil {
		t.Fatal(err)
	}
	if s.Owned() != NotOwner {
		t.Fatal("ownership not recorded")
	}
	// The block is aliased, not copied (conversion constructor).
	s.LocalData()[0] = 42
	if buf[0] != 42 {
		t.Fatal("FromLocal must alias the caller's buffer")
	}
	if _, err := DoublesFromLocal(layout, 0, buf[:3], Owner); !errors.Is(err, ErrMismatch) {
		t.Fatalf("short block: %v", err)
	}
	if _, err := DoublesFromLocal(layout, 7, buf, Owner); !errors.Is(err, ErrBounds) {
		t.Fatalf("bad rank: %v", err)
	}
}

func TestLocalIndex(t *testing.T) {
	layout := dist.Block().MustApply(10, 2)
	s, _ := DoublesFromLocal(layout, 1, make([]float64, 5), Owner)
	if _, ok := s.LocalIndex(2); ok {
		t.Fatal("index 2 is not local to rank 1")
	}
	off, ok := s.LocalIndex(7)
	if !ok || off != 2 {
		t.Fatalf("LocalIndex(7) = %d, %v", off, ok)
	}
	if s.Lo() != 5 {
		t.Fatalf("Lo = %d", s.Lo())
	}
}

func TestSetLengthShrinkGrow(t *testing.T) {
	s, _ := NewDoubles(10, dist.Block(), 2, 1) // rank 1 owns [5,10)
	for i := range s.LocalData() {
		s.LocalData()[i] = float64(i + 5)
	}
	if err := s.SetLength(7); err != nil { // rank 1 keeps [5,7)
		t.Fatal(err)
	}
	if s.LocalLen() != 2 || s.LocalData()[1] != 6 {
		t.Fatalf("after shrink: len=%d data=%v", s.LocalLen(), s.LocalData())
	}
	// Growth goes to the owner of the last element (rank 1).
	if err := s.SetLength(12); err != nil {
		t.Fatal(err)
	}
	if s.LocalLen() != 7 {
		t.Fatalf("after grow: len=%d", s.LocalLen())
	}
	if s.LocalData()[0] != 5 || s.LocalData()[1] != 6 || s.LocalData()[2] != 0 {
		t.Fatalf("grow corrupted data: %v", s.LocalData())
	}
	if err := s.SetLength(-1); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestSetLengthGrowTakesOwnership(t *testing.T) {
	layout := dist.Block().MustApply(4, 2)
	buf := []float64{8, 9}
	s, _ := DoublesFromLocal(layout, 1, buf, NotOwner)
	if err := s.SetLength(8); err != nil {
		t.Fatal(err)
	}
	if s.Owned() != Owner {
		t.Fatal("growing a borrowed block must take ownership")
	}
	s.LocalData()[0] = 99
	if buf[0] == 99 {
		t.Fatal("grown block still aliases the user buffer")
	}
}

// runSPMD drives fn on p threads over BOTH RTS flavors, so every
// collective sequence operation is conformance-tested against the
// message-passing and the one-sided runtime.
func runSPMD(t *testing.T, p int, fn func(th rts.Thread) error) {
	t.Helper()
	t.Run("mp", func(t *testing.T) {
		err := mp.Run(p, func(proc *mp.Proc) error {
			return fn(rts.NewMessagePassing(proc))
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	t.Run("onesided", func(t *testing.T) {
		d := onesided.MustDomain(p)
		defer d.Close()
		var wg sync.WaitGroup
		errs := make(chan error, p)
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(th rts.Thread) {
				defer wg.Done()
				if err := fn(th); err != nil {
					errs <- err
					d.Close()
				}
			}(d.Thread(r))
		}
		wg.Wait()
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	})
}

func TestAtCollective(t *testing.T) {
	runSPMD(t, 3, func(th rts.Thread) error {
		s, err := NewDoubles(9, dist.Block(), 3, th.Rank())
		if err != nil {
			return err
		}
		for i := range s.LocalData() {
			s.LocalData()[i] = float64(s.Lo()+i) * 2
		}
		for g := 0; g < 9; g++ {
			v, err := s.At(th, g)
			if err != nil {
				return err
			}
			if v != float64(g)*2 {
				return fmt.Errorf("rank %d: At(%d) = %v", th.Rank(), g, v)
			}
		}
		_, err = s.At(th, 9)
		if !errors.Is(err, dist.ErrOutOfRange) {
			return fmt.Errorf("At(9): %v", err)
		}
		return nil
	})
}

func TestSetCollective(t *testing.T) {
	runSPMD(t, 2, func(th rts.Thread) error {
		s, err := NewDoubles(6, dist.Block(), 2, th.Rank())
		if err != nil {
			return err
		}
		if err := s.Set(th, 4, 7.5); err != nil {
			return err
		}
		v, err := s.At(th, 4)
		if err != nil {
			return err
		}
		if v != 7.5 {
			return fmt.Errorf("At after Set = %v", v)
		}
		return nil
	})
}

func TestRedistributeBlockToProportions(t *testing.T) {
	prop, _ := dist.Proportions(2, 4, 2, 4)
	runSPMD(t, 4, func(th rts.Thread) error {
		s, err := NewDoubles(24, dist.Block(), 4, th.Rank())
		if err != nil {
			return err
		}
		for i := range s.LocalData() {
			s.LocalData()[i] = float64(s.Lo() + i)
		}
		if err := s.Redistribute(th, prop.MustApply(24, 4)); err != nil {
			return err
		}
		// Contents must be preserved at the new offsets.
		for i, v := range s.LocalData() {
			if v != float64(s.Lo()+i) {
				return fmt.Errorf("rank %d: after redistribute [%d] = %v, want %v",
					th.Rank(), i, v, float64(s.Lo()+i))
			}
		}
		if s.LocalLen() != s.Layout().Count(th.Rank()) {
			return fmt.Errorf("local length mismatch")
		}
		return nil
	})
}

func TestRedistributeErrors(t *testing.T) {
	s, _ := NewDoubles(10, dist.Block(), 2, 0)
	w := mp.MustWorld(2)
	defer w.Close()
	th := rts.NewMessagePassing(w.Rank(0))
	if err := s.Redistribute(th, dist.Block().MustApply(11, 2)); !errors.Is(err, ErrMismatch) {
		t.Fatalf("length mismatch: %v", err)
	}
	if err := s.Redistribute(th, dist.Block().MustApply(10, 3)); !errors.Is(err, ErrMismatch) {
		t.Fatalf("thread mismatch: %v", err)
	}
}

func TestGatherScatterDoubles(t *testing.T) {
	runSPMD(t, 3, func(th rts.Thread) error {
		s, err := NewDoubles(10, dist.Block(), 3, th.Rank())
		if err != nil {
			return err
		}
		for i := range s.LocalData() {
			s.LocalData()[i] = float64(s.Lo() + i)
		}
		full, err := GatherDoubles(s, th, 0)
		if err != nil {
			return err
		}
		if th.Rank() == 0 {
			for i, v := range full {
				if v != float64(i) {
					return fmt.Errorf("gathered[%d] = %v", i, v)
				}
			}
			for i := range full {
				full[i] *= 10
			}
		}
		if err := ScatterDoubles(s, th, 0, full); err != nil {
			return err
		}
		for i, v := range s.LocalData() {
			if v != float64(s.Lo()+i)*10 {
				return fmt.Errorf("scattered [%d] = %v", i, v)
			}
		}
		return nil
	})
}

func TestScatterSizeError(t *testing.T) {
	runSPMD(t, 2, func(th rts.Thread) error {
		s, err := NewDoubles(4, dist.Block(), 2, th.Rank())
		if err != nil {
			return err
		}
		if th.Rank() == 0 {
			err := ScatterDoubles(s, th, 0, []float64{1, 2, 3})
			if !errors.Is(err, ErrMismatch) {
				return fmt.Errorf("short scatter: %v", err)
			}
			return nil
		}
		return nil
	})
}

func TestLongCodecSequence(t *testing.T) {
	runSPMD(t, 2, func(th rts.Thread) error {
		s, err := New[int32](LongCodec{}, 7, dist.Block(), 2, th.Rank())
		if err != nil {
			return err
		}
		for i := range s.LocalData() {
			s.LocalData()[i] = int32(s.Lo() + i)
		}
		// Redistribute to the reversed explicit layout.
		ex, _ := dist.Explicit(3, 4)
		if err := s.Redistribute(th, ex.MustApply(7, 2)); err != nil {
			return err
		}
		for i, v := range s.LocalData() {
			if v != int32(s.Lo()+i) {
				return fmt.Errorf("rank %d: [%d] = %d", th.Rank(), i, v)
			}
		}
		return nil
	})
}

// Property: redistribution between random layouts is contents-
// preserving for random data.
func TestQuickRedistributePreservesContents(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := 1 + r.Intn(5)
		length := r.Intn(300)
		src := randomLayout(r, length, p)
		dst := randomLayout(r, length, p)
		data := make([]float64, length)
		for i := range data {
			data[i] = r.NormFloat64()
		}
		ok := true
		err := mp.Run(p, func(proc *mp.Proc) error {
			th := rts.NewMessagePassing(proc)
			local := make([]float64, src.Count(th.Rank()))
			copy(local, data[src.Lo(th.Rank()):src.Hi(th.Rank())])
			s, err := DoublesFromLocal(src, th.Rank(), local, Owner)
			if err != nil {
				return err
			}
			if err := s.Redistribute(th, dst); err != nil {
				return err
			}
			for i, v := range s.LocalData() {
				if v != data[dst.Lo(th.Rank())+i] {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func randomLayout(r *rand.Rand, length, p int) dist.Layout {
	if r.Intn(2) == 0 {
		return dist.Block().MustApply(length, p)
	}
	counts := make([]int, p)
	rem := length
	for i := 0; i < p-1; i++ {
		c := 0
		if rem > 0 {
			c = r.Intn(rem + 1)
		}
		counts[i] = c
		rem -= c
	}
	counts[p-1] = rem
	s, err := dist.Explicit(counts...)
	if err != nil {
		panic(err)
	}
	return s.MustApply(length, p)
}

// noWindow hides a thread's WindowThread capability, pinning
// Redistribute onto the tagged-send fallback path.
type noWindow struct{ rts.Thread }

// TestRedistributeWindowMatchesFallback redistributes the same
// sequence twice on the same threads — once with the one-sided window
// fast path, once with the capability hidden so the tagged-send
// fallback runs — and requires element-identical results. This is the
// equivalence bound that lets the window path replace the fallback
// without a semantic flag day.
func TestRedistributeWindowMatchesFallback(t *testing.T) {
	ex, err := dist.Explicit(9, 2, 7, 6)
	if err != nil {
		t.Fatal(err)
	}
	runSPMD(t, 4, func(th rts.Thread) error {
		if _, ok := rts.AsWindowThread(th); !ok {
			return fmt.Errorf("%T lost its window capability", th)
		}
		mk := func() (*Doubles, error) {
			s, err := NewDoubles(24, dist.Block(), 4, th.Rank())
			if err != nil {
				return nil, err
			}
			for i := range s.LocalData() {
				s.LocalData()[i] = float64(s.Lo()+i) * 1.5
			}
			return s, nil
		}
		win, err := mk()
		if err != nil {
			return err
		}
		fb, err := mk()
		if err != nil {
			return err
		}
		if err := win.Redistribute(th, ex.MustApply(24, 4)); err != nil {
			return err
		}
		if err := fb.Redistribute(noWindow{th}, ex.MustApply(24, 4)); err != nil {
			return err
		}
		if win.LocalLen() != fb.LocalLen() {
			return fmt.Errorf("rank %d: window path %d elements, fallback %d",
				th.Rank(), win.LocalLen(), fb.LocalLen())
		}
		for i := range win.LocalData() {
			if win.LocalData()[i] != fb.LocalData()[i] {
				return fmt.Errorf("rank %d: element %d differs: window %v, fallback %v",
					th.Rank(), i, win.LocalData()[i], fb.LocalData()[i])
			}
		}
		return nil
	})
}
