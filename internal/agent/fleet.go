package agent

import (
	"fmt"
	"io"
	"sort"
	"time"

	"pardis/internal/telemetry"
)

// FleetReplica is one live replica's row in the fleet snapshot: its
// identity and ranking plus the RED view (rate, error rate, latency
// quantiles) computed by differencing its two most recent heartbeat
// digests.
type FleetReplica struct {
	Name     string  `json:"name"`
	Instance string  `json:"instance"`
	Score    float64 `json:"score"`
	Draining bool    `json:"draining,omitempty"`
	// SinceSeen is how long ago the last heartbeat arrived; DigestAge
	// is the same measured against the digest (they differ only when a
	// registration carried no digest).
	SinceSeen time.Duration `json:"since_seen_ns"`
	DigestAge time.Duration `json:"digest_age_ns"`
	// Window is the heartbeat interval the rates below cover; zero
	// until two digests have arrived (quantiles then fall back to the
	// cumulative histogram).
	Window time.Duration `json:"window_ns,omitempty"`

	Requests        uint64  `json:"requests"` // cumulative since replica start
	Errors          uint64  `json:"errors"`
	RatePerSec      float64 `json:"rate_per_sec"`
	ErrorRatePerSec float64 `json:"error_rate_per_sec"`
	P50             float64 `json:"p50_seconds"`
	P95             float64 `json:"p95_seconds"`
	P99             float64 `json:"p99_seconds"`

	QueueDepth        int    `json:"queue_depth"`
	Running           int    `json:"running"`
	Inflight          int    `json:"inflight"`
	Leases            int    `json:"leases"`
	BreakersOpen      int    `json:"breakers_open"`
	SPMDLeasesExpired uint64 `json:"spmd_leases_expired,omitempty"`
	SPMDShed          uint64 `json:"spmd_shed,omitempty"`

	// Buckets is the replica's cumulative request-latency histogram
	// over telemetry.DefaultLatencyBuckets (trailing +Inf), as carried
	// by its latest digest; LatencySum the matching sum of seconds.
	Buckets    []uint64 `json:"buckets,omitempty"`
	LatencySum float64  `json:"latency_sum_seconds,omitempty"`

	Exemplars []FleetExemplar `json:"exemplars,omitempty"`
}

// FleetExemplar is a tail-latency exemplar as served in the fleet
// snapshot, its trace id in the hex form /debug/traces accepts.
type FleetExemplar struct {
	Bucket  int       `json:"bucket"`
	Value   float64   `json:"value_seconds"`
	Trace   string    `json:"trace_id"`
	TraceID uint64    `json:"-"`
	When    time.Time `json:"when,omitempty"`
}

// FleetSnapshot is the agent's aggregate view of every live replica.
type FleetSnapshot struct {
	Names    int            `json:"names"`
	Replicas int            `json:"replicas"`
	Rows     []FleetReplica `json:"rows"`
}

// FleetSummary condenses the snapshot for /healthz: enough to tell at
// a glance whether the fleet is whole and its digests fresh.
type FleetSummary struct {
	Names         int           `json:"names"`
	Replicas      int           `json:"replicas"`
	Draining      int           `json:"draining"`
	WorstScore    float64       `json:"worst_score"`
	WorstInstance string        `json:"worst_instance,omitempty"`
	MaxDigestAge  time.Duration `json:"max_digest_age_ns"`
	// Expired is the cumulative count of replicas that aged out
	// (pardis_agent_replicas_expired_total).
	Expired uint64 `json:"replicas_expired_total"`
}

// Fleet returns the live fleet snapshot, rows sorted by (name,
// instance).
func (t *Table) Fleet() FleetSnapshot {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := FleetSnapshot{Names: len(t.names)}
	for name, reps := range t.names {
		for _, rep := range reps {
			if !now.Before(rep.deadline) {
				continue // lapsed; the sweeper just hasn't run yet
			}
			snap.Replicas++
			snap.Rows = append(snap.Rows, fleetRow(name, rep, now))
		}
	}
	sort.Slice(snap.Rows, func(i, j int) bool {
		if snap.Rows[i].Name != snap.Rows[j].Name {
			return snap.Rows[i].Name < snap.Rows[j].Name
		}
		return snap.Rows[i].Instance < snap.Rows[j].Instance
	})
	return snap
}

// fleetRow builds one replica's RED row. Caller holds t.mu.
func fleetRow(name string, rep *replica, now time.Time) FleetReplica {
	row := FleetReplica{
		Name:              name,
		Instance:          rep.instance,
		Score:             rep.load.Score(),
		Draining:          rep.load.Draining,
		SinceSeen:         now.Sub(rep.lastSeen),
		DigestAge:         now.Sub(rep.digestAt),
		Requests:          rep.digest.Requests,
		Errors:            rep.digest.Errors,
		QueueDepth:        rep.load.AdmissionQueued,
		Running:           rep.load.AdmissionRunning,
		Inflight:          rep.load.Inflight,
		Leases:            rep.load.SPMDLeases,
		BreakersOpen:      rep.load.BreakersOpen,
		SPMDLeasesExpired: rep.digest.SPMDLeasesExpired,
		SPMDShed:          rep.digest.SPMDShed,
		Buckets:           rep.digest.Buckets,
		LatencySum:        rep.digest.LatencySum,
	}
	counts := rep.digest.Buckets
	if window := rep.digestAt.Sub(rep.prevAt); !rep.prevAt.IsZero() && window > 0 {
		row.Window = window
		row.RatePerSec = float64(sub(rep.digest.Requests, rep.prev.Requests)) / window.Seconds()
		row.ErrorRatePerSec = float64(sub(rep.digest.Errors, rep.prev.Errors)) / window.Seconds()
		// Quantiles over the last window when it saw traffic; an idle
		// window falls back to the lifetime histogram.
		if d := bucketDelta(rep.digest.Buckets, rep.prev.Buckets); countTotal(d) > 0 {
			counts = d
		}
	}
	edges := telemetry.DefaultLatencyBuckets
	row.P50 = digestQuantile(edges, counts, 0.5)
	row.P95 = digestQuantile(edges, counts, 0.95)
	row.P99 = digestQuantile(edges, counts, 0.99)
	for _, ex := range rep.digest.Exemplars {
		row.Exemplars = append(row.Exemplars, FleetExemplar{
			Bucket:  ex.Bucket,
			Value:   ex.Value,
			Trace:   fmt.Sprintf("%016x", ex.TraceID),
			TraceID: ex.TraceID,
			When:    ex.When,
		})
	}
	return row
}

func countTotal(counts []uint64) uint64 {
	var n uint64
	for _, c := range counts {
		n += c
	}
	return n
}

// Summary condenses the fleet for the agent's /healthz body.
func (t *Table) Summary() FleetSummary {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := FleetSummary{Names: len(t.names), Expired: tableExpired.Value()}
	for _, reps := range t.names {
		for _, rep := range reps {
			if !now.Before(rep.deadline) {
				continue
			}
			s.Replicas++
			if rep.load.Draining {
				s.Draining++
			}
			if score := rep.load.Score(); score > s.WorstScore || s.WorstInstance == "" {
				s.WorstScore, s.WorstInstance = score, rep.instance
			}
			if age := now.Sub(rep.digestAt); age > s.MaxDigestAge {
				s.MaxDigestAge = age
			}
		}
	}
	return s
}

// WriteFleetMetrics renders the fleet as Prometheus text: every
// replica's digest re-exposed under pardis_agent_fleet_* names with
// {name, instance} labels (exemplars preserved on their buckets), so
// one scrape of the agent covers the whole fleet.
func (t *Table) WriteFleetMetrics(w io.Writer) error {
	snap := t.Fleet()
	if len(snap.Rows) == 0 {
		return nil
	}
	for _, s := range [][2]string{
		{"pardis_agent_fleet_requests_total", "counter"},
		{"pardis_agent_fleet_errors_total", "counter"},
		{"pardis_agent_fleet_queue_depth", "gauge"},
		{"pardis_agent_fleet_leases", "gauge"},
		{"pardis_agent_fleet_breakers_open", "gauge"},
		{"pardis_agent_fleet_draining", "gauge"},
		{"pardis_agent_fleet_score", "gauge"},
		{"pardis_agent_fleet_digest_age_seconds", "gauge"},
		{"pardis_agent_fleet_request_seconds", "histogram"},
	} {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s[0], s[1]); err != nil {
			return err
		}
	}
	edges := telemetry.DefaultLatencyBuckets
	for _, row := range snap.Rows {
		lk := func(metric string, extra ...string) string {
			return telemetry.TextKey(metric,
				append([]string{"name", row.Name, "instance", row.Instance}, extra...)...)
		}
		draining := 0
		if row.Draining {
			draining = 1
		}
		if _, err := fmt.Fprintf(w,
			"%s %d\n%s %d\n%s %d\n%s %d\n%s %d\n%s %d\n%s %g\n%s %.3f\n",
			lk("pardis_agent_fleet_requests_total"), row.Requests,
			lk("pardis_agent_fleet_errors_total"), row.Errors,
			lk("pardis_agent_fleet_queue_depth"), row.QueueDepth,
			lk("pardis_agent_fleet_leases"), row.Leases,
			lk("pardis_agent_fleet_breakers_open"), row.BreakersOpen,
			lk("pardis_agent_fleet_draining"), draining,
			lk("pardis_agent_fleet_score"), row.Score,
			lk("pardis_agent_fleet_digest_age_seconds"), row.DigestAge.Seconds(),
		); err != nil {
			return err
		}
		if err := writeFleetHistogram(w, edges, row); err != nil {
			return err
		}
	}
	return nil
}

// writeFleetHistogram re-exposes one replica's cumulative digest
// histogram under the fleet name, attaching its tail exemplars to the
// buckets they belong to. A replica that has served nothing (empty
// digest) gets no histogram series.
func writeFleetHistogram(w io.Writer, edges []float64, row FleetReplica) error {
	if len(row.Buckets) != len(edges)+1 {
		return nil
	}
	s := telemetry.HistogramSnapshot{
		Edges:  edges,
		Counts: row.Buckets[:len(edges)],
		Inf:    row.Buckets[len(edges)],
		Count:  countTotal(row.Buckets),
		Sum:    row.LatencySum,
		// The digest carries no min/max; neutralize the snapshot's
		// [Min, Max] quantile clamp with the edge range.
		Min: 0,
		Max: edges[len(edges)-1],
	}
	for _, ex := range row.Exemplars {
		s.Exemplars = append(s.Exemplars, telemetry.BucketExemplar{
			Bucket: ex.Bucket,
			Exemplar: telemetry.Exemplar{
				Value: ex.Value, TraceID: ex.TraceID, When: ex.When,
			},
		})
	}
	sort.Slice(s.Exemplars, func(i, j int) bool { return s.Exemplars[i].Bucket < s.Exemplars[j].Bucket })
	return telemetry.WriteHistogramSnapshotText(w, "pardis_agent_fleet_request_seconds",
		[]string{"name", row.Name, "instance", row.Instance}, s)
}
