package agent

import (
	"context"
	"fmt"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/ior"
	"pardis/internal/orb"
)

// Client talks to a remote agent service.
type Client struct {
	orb      *orb.Client
	endpoint string
}

// NewClient returns an agent client talking to the service at
// endpoint through oc.
func NewClient(oc *orb.Client, endpoint string) *Client {
	return &Client{orb: oc, endpoint: endpoint}
}

// Endpoint returns the agent service endpoint this client targets.
func (c *Client) Endpoint() string { return c.endpoint }

func (c *Client) invoke(ctx context.Context, op string, body func(*cdr.Encoder)) (*cdr.Decoder, error) {
	hdr := giop.RequestHeader{
		InvocationID:     c.orb.NewInvocationID(),
		ResponseExpected: true,
		ObjectKey:        ServiceKey,
		Operation:        op,
		ThreadRank:       -1,
		ThreadCount:      1,
	}
	rh, order, raw, err := c.orb.Invoke(ctx, c.endpoint, hdr, body)
	if err != nil {
		return nil, err
	}
	d := cdr.NewDecoder(order, raw)
	switch rh.Status {
	case giop.ReplyOK:
		return d, nil
	case giop.ReplyUserException:
		code, err1 := d.String()
		msg, err2 := d.String()
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: undecodable user exception", ErrProtocol)
		}
		if code == "NotFound" {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, msg)
		}
		return nil, fmt.Errorf("%w: %s: %s", ErrProtocol, code, msg)
	case giop.ReplySystemException:
		ex, err := giop.DecodeSystemException(d)
		if err != nil {
			return nil, fmt.Errorf("%w: undecodable system exception", ErrProtocol)
		}
		return nil, ex
	default:
		return nil, fmt.Errorf("%w: unexpected reply status %v", ErrProtocol, rh.Status)
	}
}

// Register upserts (and renews) a registration — the heartbeat call.
func (c *Client) Register(ctx context.Context, r Registration) error {
	_, err := c.invoke(ctx, "register", func(e *cdr.Encoder) {
		encodeRegistration(e, r)
	})
	return err
}

// Deregister removes every replica the instance registered.
func (c *Client) Deregister(ctx context.Context, instance string) error {
	_, err := c.invoke(ctx, "deregister", func(e *cdr.Encoder) {
		e.PutString(instance)
	})
	return err
}

// Resolve returns the load-ranked reference for name and the number
// of live replicas it merges.
func (c *Client) Resolve(ctx context.Context, name string) (*ior.Ref, int, error) {
	d, err := c.invoke(ctx, "resolve", func(e *cdr.Encoder) { e.PutString(name) })
	if err != nil {
		return nil, 0, err
	}
	s, err := d.String()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	replicas, err := d.ULong()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	ref, err := ior.Parse(s)
	if err != nil {
		return nil, 0, err
	}
	return ref, int(replicas), nil
}

// Sync exchanges replica-table snapshots with a peer agent: the
// request carries local, the reply the peer's table as of after it
// merged local in. The caller merges the returned snapshot to finish
// the round.
//
// The reply's ages are padded by the whole RPC's elapsed time before
// they reach the caller. Ages are relative to the sender's clock at
// snapshot time, so transit delay would otherwise make every row look
// *newer* on arrival — and two agents bouncing a dead instance's row
// back and forth would grant it a sliver of life per round. Padding
// anchors this side's reconstruction at the true renewal time or
// older, which cuts that feedback loop (the receiving agent's own
// inflation then stays bounded by one one-way delay).
func (c *Client) Sync(ctx context.Context, local SyncSnapshot) (SyncSnapshot, error) {
	start := time.Now()
	d, err := c.invoke(ctx, "sync", func(e *cdr.Encoder) {
		encodeSnapshot(e, local)
	})
	if err != nil {
		return SyncSnapshot{}, err
	}
	remote, err := decodeSnapshot(d)
	if err != nil {
		return SyncSnapshot{}, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	elapsed := time.Since(start)
	for i := range remote.Entries {
		remote.Entries[i].Age += elapsed
	}
	for i := range remote.Tombs {
		remote.Tombs[i].Age += elapsed
	}
	return remote, nil
}

// ListEntry is one row of a List answer.
type ListEntry struct {
	Name     string
	Replicas []ReplicaInfo
}

// List returns the agent's rows under prefix, names sorted, replicas
// best-ranked first.
func (c *Client) List(ctx context.Context, prefix string) ([]ListEntry, error) {
	d, err := c.invoke(ctx, "list", func(e *cdr.Encoder) { e.PutString(prefix) })
	if err != nil {
		return nil, err
	}
	n, err := d.ULong()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	out := make([]ListEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		var ent ListEntry
		if ent.Name, err = d.String(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		nrep, err := d.ULong()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		for j := uint32(0); j < nrep; j++ {
			var rep ReplicaInfo
			if rep.Instance, err = d.String(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
			}
			iorStr, err := d.String()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
			}
			if rep.Ref, err = ior.Parse(iorStr); err != nil {
				return nil, err
			}
			if rep.Score, err = d.Double(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
			}
			if rep.Draining, err = d.Boolean(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
			}
			sinceMicros, err := d.ULongLong()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
			}
			rep.SinceSeen = time.Duration(sinceMicros) * time.Microsecond
			ent.Replicas = append(ent.Replicas, rep)
		}
		out = append(out, ent)
	}
	return out, nil
}
