package agent

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"pardis/internal/telemetry"
)

func TestCollectDigestAggregates(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("pardis_server_requests_total", "key", "a").Add(100)
	reg.Counter("pardis_server_requests_total", "key", "b").Add(20)
	reg.Counter("pardis_server_shed_total", "reason", "queue_full").Add(3)
	reg.Counter("pardis_server_panics_total").Add(1)
	reg.Counter("pardis_spmd_leases_expired_total").Add(2)
	ha := reg.Histogram("pardis_server_request_seconds", "key", "a")
	hb := reg.Histogram("pardis_server_request_seconds", "key", "b")
	ha.ObserveExemplar(0.0004, 0x11) // 500µs bucket
	ha.Observe(0.0004)
	hb.ObserveExemplar(2.0, 0x22) // 2.5s bucket: the tail exemplar
	hb.Observe(0.00003)

	d := collectDigest(reg)
	if d.Requests != 120 {
		t.Errorf("requests = %d, want 120", d.Requests)
	}
	if d.Errors != 4 {
		t.Errorf("errors = %d, want 4", d.Errors)
	}
	if d.SPMDLeasesExpired != 2 {
		t.Errorf("leases expired = %d, want 2", d.SPMDLeasesExpired)
	}
	n := len(telemetry.DefaultLatencyBuckets)
	if len(d.Buckets) != n+1 {
		t.Fatalf("buckets = %d entries, want %d", len(d.Buckets), n+1)
	}
	if total := countTotal(d.Buckets); total != 4 {
		t.Errorf("bucket total = %d, want 4 observations", total)
	}
	if d.LatencySum == 0 {
		t.Errorf("latency sum = 0, want > 0")
	}
	if len(d.Exemplars) != 2 {
		t.Fatalf("exemplars = %+v, want 2", d.Exemplars)
	}
	// Tail first: the 2.0s exemplar (higher bucket) leads.
	if d.Exemplars[0].TraceID != 0x22 || d.Exemplars[1].TraceID != 0x11 {
		t.Errorf("exemplar order = %+v, want slowest bucket first", d.Exemplars)
	}
}

func TestCollectDigestCapsExemplars(t *testing.T) {
	reg := telemetry.NewRegistry()
	// One exemplar-bearing bucket per label set: more than the cap.
	for i := 0; i < MaxDigestExemplars+3; i++ {
		h := reg.Histogram("pardis_server_request_seconds", "key", fmt.Sprintf("k%d", i))
		h.ObserveExemplar(float64(i+1)*0.001, uint64(i+1))
	}
	d := collectDigest(reg)
	if len(d.Exemplars) != MaxDigestExemplars {
		t.Fatalf("exemplars = %d, want cap %d", len(d.Exemplars), MaxDigestExemplars)
	}
	for i := 1; i < len(d.Exemplars); i++ {
		if d.Exemplars[i].Bucket > d.Exemplars[i-1].Bucket {
			t.Errorf("exemplars not tail-first: %+v", d.Exemplars)
		}
	}
}

func TestDigestWireRoundTrip(t *testing.T) {
	tbl, ac := newWireFixture(t)
	n := len(telemetry.DefaultLatencyBuckets)
	buckets := make([]uint64, n+1)
	buckets[4] = 50 // 500µs bucket
	buckets[15] = 2 // 2.5s bucket
	buckets[n] = 1  // +Inf
	when := time.UnixMicro(time.Now().UnixMicro())
	digest := MetricsDigest{
		Requests: 120, Errors: 7, LatencySum: 1.25,
		SPMDLeasesExpired: 3, SPMDShed: 1,
		Buckets: buckets,
		Exemplars: []TailExemplar{
			{Bucket: n, Value: 42.0, TraceID: 0xfeed, When: when},
			{Bucket: 15, Value: 2.0, TraceID: 0xbeef, When: when},
		},
	}
	err := ac.Register(context.Background(), Registration{
		Instance: "inst-d", TTL: time.Minute,
		Names:  []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:d")}},
		Digest: digest,
	})
	if err != nil {
		t.Fatal(err)
	}
	fleet := tbl.Fleet()
	if len(fleet.Rows) != 1 {
		t.Fatalf("fleet rows = %d, want 1", len(fleet.Rows))
	}
	row := fleet.Rows[0]
	if row.Requests != 120 || row.Errors != 7 {
		t.Errorf("row R/E = %d/%d, want 120/7", row.Requests, row.Errors)
	}
	if row.SPMDLeasesExpired != 3 || row.SPMDShed != 1 {
		t.Errorf("row spmd = %d/%d, want 3/1", row.SPMDLeasesExpired, row.SPMDShed)
	}
	if row.LatencySum != 1.25 {
		t.Errorf("latency sum = %v, want 1.25", row.LatencySum)
	}
	if len(row.Buckets) != n+1 || row.Buckets[4] != 50 || row.Buckets[n] != 1 {
		t.Errorf("buckets did not survive the wire: %v", row.Buckets)
	}
	if len(row.Exemplars) != 2 {
		t.Fatalf("exemplars = %+v, want 2", row.Exemplars)
	}
	if row.Exemplars[0].Trace != fmt.Sprintf("%016x", 0xfeed) || row.Exemplars[0].Value != 42.0 {
		t.Errorf("exemplar[0] = %+v", row.Exemplars[0])
	}
	if !row.Exemplars[1].When.Equal(when) {
		t.Errorf("exemplar capture time: got %v, want %v", row.Exemplars[1].When, when)
	}
}

func TestFleetREDFromDigestDeltas(t *testing.T) {
	tbl, clk := newFakeTable()
	n := len(telemetry.DefaultLatencyBuckets)
	mk := func(requests, errors uint64, bucket4 uint64) MetricsDigest {
		b := make([]uint64, n+1)
		b[4] = bucket4 // 500µs bucket
		return MetricsDigest{Requests: requests, Errors: errors, Buckets: b}
	}
	reg := func(d MetricsDigest) {
		err := tbl.Register(Registration{
			Instance: "i1", TTL: time.Minute,
			Names:  []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:a")}},
			Load:   LoadReport{AdmissionQueued: 2, SPMDLeases: 1},
			Digest: d,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	reg(mk(1000, 10, 100))
	first := tbl.Fleet().Rows[0]
	if first.Window != 0 || first.RatePerSec != 0 {
		t.Errorf("single digest must have no rate window: %+v", first)
	}
	// Quantiles fall back to the cumulative histogram meanwhile.
	if first.P50 <= 0.00025 || first.P50 > 0.0005 {
		t.Errorf("cumulative p50 = %v, want in (250µs, 500µs]", first.P50)
	}

	clk.advance(2 * time.Second)
	reg(mk(1200, 14, 180))
	row := tbl.Fleet().Rows[0]
	if row.Window != 2*time.Second {
		t.Fatalf("window = %v, want 2s", row.Window)
	}
	if row.RatePerSec != 100 {
		t.Errorf("rate = %v/s, want 100", row.RatePerSec)
	}
	if row.ErrorRatePerSec != 2 {
		t.Errorf("error rate = %v/s, want 2", row.ErrorRatePerSec)
	}
	if row.Requests != 1200 || row.Errors != 14 {
		t.Errorf("cumulative R/E = %d/%d", row.Requests, row.Errors)
	}
	if row.P99 <= 0.00025 || row.P99 > 0.0005 {
		t.Errorf("delta p99 = %v, want in the 500µs bucket", row.P99)
	}
	if row.QueueDepth != 2 || row.Leases != 1 {
		t.Errorf("load fields lost: %+v", row)
	}

	// An idle window (no new observations) keeps lifetime quantiles
	// instead of reporting p50=0.
	clk.advance(2 * time.Second)
	reg(mk(1200, 14, 180))
	idle := tbl.Fleet().Rows[0]
	if idle.RatePerSec != 0 {
		t.Errorf("idle rate = %v, want 0", idle.RatePerSec)
	}
	if idle.P50 == 0 {
		t.Errorf("idle window p50 = 0, want lifetime fallback")
	}

	// A replica restart (counters reset) must clamp deltas at zero,
	// not underflow.
	clk.advance(2 * time.Second)
	reg(mk(5, 0, 1))
	restart := tbl.Fleet().Rows[0]
	if restart.RatePerSec != 0 || restart.ErrorRatePerSec != 0 {
		t.Errorf("restart rates = %v/%v, want 0/0", restart.RatePerSec, restart.ErrorRatePerSec)
	}
}

func TestFleetMetricsExposition(t *testing.T) {
	tbl, _ := newFakeTable()
	n := len(telemetry.DefaultLatencyBuckets)
	buckets := make([]uint64, n+1)
	buckets[15] = 3 // 2.5s bucket
	err := tbl.Register(Registration{
		Instance: `inst"one`, TTL: time.Minute,
		Names: []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:a")}},
		Load:  LoadReport{AdmissionQueued: 4, BreakersOpen: 1, Draining: true},
		Digest: MetricsDigest{
			Requests: 33, Errors: 2, LatencySum: 6.0, Buckets: buckets,
			Exemplars: []TailExemplar{{Bucket: 15, Value: 2.2, TraceID: 0xabc, When: time.Unix(1000, 0)}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteFleetMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pardis_agent_fleet_requests_total counter",
		"# TYPE pardis_agent_fleet_request_seconds histogram",
		`pardis_agent_fleet_requests_total{instance="inst\"one",name="svc/e"} 33`,
		`pardis_agent_fleet_errors_total{instance="inst\"one",name="svc/e"} 2`,
		`pardis_agent_fleet_queue_depth{instance="inst\"one",name="svc/e"} 4`,
		`pardis_agent_fleet_breakers_open{instance="inst\"one",name="svc/e"} 1`,
		`pardis_agent_fleet_draining{instance="inst\"one",name="svc/e"} 1`,
		`le="2.5"`,
		`# {trace_id="0000000000000abc"} 2.2`,
		`pardis_agent_fleet_request_seconds_count{instance="inst\"one",name="svc/e"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet exposition missing %q; got:\n%s", want, out)
		}
	}
}

func TestFleetSummary(t *testing.T) {
	tbl, clk := newFakeTable()
	reg := func(inst string, queued int, draining bool) {
		err := tbl.Register(Registration{
			Instance: inst, TTL: time.Minute,
			Names: []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:"+inst)}},
			Load:  LoadReport{AdmissionQueued: queued, Draining: draining},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	reg("i-idle", 0, false)
	clk.advance(500 * time.Millisecond)
	reg("i-busy", 9, false)
	reg("i-drain", 0, true)

	s := tbl.Summary()
	if s.Names != 1 || s.Replicas != 3 {
		t.Fatalf("summary = %+v, want 1 name / 3 replicas", s)
	}
	if s.Draining != 1 {
		t.Errorf("draining = %d, want 1", s.Draining)
	}
	// i-drain carries the draining penalty, so it is the worst replica.
	if s.WorstInstance != "i-drain" {
		t.Errorf("worst = %q (score %v), want i-drain", s.WorstInstance, s.WorstScore)
	}
	// i-idle's digest is 500ms older than the rest.
	if s.MaxDigestAge != 500*time.Millisecond {
		t.Errorf("max digest age = %v, want 500ms", s.MaxDigestAge)
	}
}

func TestDigestQuantile(t *testing.T) {
	edges := telemetry.DefaultLatencyBuckets
	n := len(edges)
	empty := make([]uint64, n+1)
	if q := digestQuantile(edges, empty, 0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	if q := digestQuantile(edges, nil, 0.5); q != 0 {
		t.Errorf("mismatched shape quantile = %v, want 0", q)
	}
	inf := make([]uint64, n+1)
	inf[n] = 10
	if q := digestQuantile(edges, inf, 0.99); q != edges[n-1] {
		t.Errorf("+Inf-only quantile = %v, want last edge %v", q, edges[n-1])
	}
	mid := make([]uint64, n+1)
	mid[6] = 100 // (1ms, 2.5ms]
	q := digestQuantile(edges, mid, 0.5)
	if q <= edges[5] || q > edges[6] {
		t.Errorf("mid quantile = %v, want in (%v, %v]", q, edges[5], edges[6])
	}
}

// TestFleetDigestAggregationRace hammers one table with concurrent
// digest-bearing heartbeats, sweeper ticks, fleet snapshots, fleet
// metric expositions and resolves — the -race companion to the wire
// tests. Run under `go test -race` (make verify) it proves digest
// aggregation in the table is data-race free.
func TestFleetDigestAggregationRace(t *testing.T) {
	tbl := NewTable()
	stop := tbl.StartSweeper(time.Millisecond)
	defer stop()

	n := len(telemetry.DefaultLatencyBuckets)
	const instances = 4
	var wg sync.WaitGroup
	done := make(chan struct{})

	for i := 0; i < instances; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inst := fmt.Sprintf("inst-%d", i)
			var reqs uint64
			for j := 0; ; j++ {
				select {
				case <-done:
					return
				default:
				}
				reqs += uint64(j % 7)
				b := make([]uint64, n+1)
				b[j%(n+1)] = reqs
				_ = tbl.Register(Registration{
					Instance: inst,
					TTL:      20 * time.Millisecond, // short: sweeper races renewals
					Names:    []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:"+inst)}},
					Load:     LoadReport{AdmissionQueued: j % 5},
					Digest: MetricsDigest{
						Requests: reqs, Errors: reqs / 10, Buckets: b,
						Exemplars: []TailExemplar{{Bucket: j % (n + 1), Value: 0.001, TraceID: uint64(j + 1)}},
					},
				})
			}
		}(i)
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = tbl.Fleet()
				_ = tbl.WriteFleetMetrics(io.Discard)
				_ = tbl.Summary()
				_, _, _ = tbl.Resolve("svc/e")
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	close(done)
	wg.Wait()

	// The table must still be coherent: every instance either live or
	// cleanly swept.
	fleet := tbl.Fleet()
	if fleet.Replicas > instances {
		t.Fatalf("fleet grew phantom replicas: %d", fleet.Replicas)
	}
}
