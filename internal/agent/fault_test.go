// Chaos suite for the agent: replica death mid-burst, heartbeat loss,
// agent restart and agent partition. All tests match -run Fault so the
// chaos tier (`go test -run Fault -race ./...`, `make chaos`, `make
// soak`) exercises exactly these paths.
package agent

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/ior"
	"pardis/internal/naming"
	"pardis/internal/orb"
	"pardis/internal/transport"
)

// chaosReplica is one echo server plus the registrar heartbeating it
// into the agent.
type chaosReplica struct {
	id  string
	srv *orb.Server
	ep  string
	reg *Registrar
}

// crash simulates process death: the server drops its connections and
// the heartbeats stop without a deregistration (Stop under an already-
// canceled context skips nothing but cannot reach the agent), so only
// the TTL can reap the table entry.
func (r *chaosReplica) crash() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = r.reg.Stop(ctx)
	r.srv.Close()
}

// chaosFixture is an agent plus n echo replicas registered with it
// over a shared transport registry.
type chaosFixture struct {
	reg      *transport.Registry
	table    *Table
	agentSrv *orb.Server
	agentEp  string
	replicas []*chaosReplica
	oc       *orb.Client // heartbeat-side orb client
	interval time.Duration
	ttl      time.Duration
}

const chaosName = "svc/echo"
const chaosKey = "objects/" + chaosName

// newChaos starts an agent (with sweeper) and n replicas whose
// registrars heartbeat every interval (TTL = TTLFactor x interval).
// agentScheme lets a test put the agent behind "faulty+inproc:" while
// the replicas stay on plain "inproc:".
func newChaos(t *testing.T, n int, interval time.Duration, agentScheme string) *chaosFixture {
	t.Helper()
	fx := &chaosFixture{
		reg:      transport.NewRegistry(),
		table:    NewTable(),
		interval: interval,
		ttl:      TTLFactor * interval,
	}
	fx.reg.Register(transport.NewInproc())

	fx.agentSrv = orb.NewServer(fx.reg)
	Serve(fx.agentSrv, fx.table)
	aep, err := fx.agentSrv.Listen(agentScheme + "*")
	if err != nil {
		t.Fatal(err)
	}
	fx.agentEp = aep
	stopSweep := fx.table.StartSweeper(interval / 2)
	t.Cleanup(stopSweep)

	fx.oc = orb.NewClient(fx.reg, orb.WithDefaultDeadline(2*time.Second))
	t.Cleanup(func() { fx.oc.Close() })

	for i := 0; i < n; i++ {
		fx.addReplica(t, fmt.Sprintf("replica-%d", i))
	}
	return fx
}

// addReplica starts one echo server (its reply names it) and begins
// heartbeating it into the agent.
func (fx *chaosFixture) addReplica(t *testing.T, id string) *chaosReplica {
	t.Helper()
	srv := orb.NewServer(fx.reg)
	srv.Handle(chaosKey, func(in *orb.Incoming) {
		s, err := in.Decoder().String()
		if err != nil {
			_ = in.ReplySystemException("MARSHAL", err.Error())
			return
		}
		_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) { e.PutString(id + ":" + s) })
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	r := &chaosReplica{id: id, srv: srv, ep: ep}
	r.reg = NewRegistrar(RegistrarConfig{
		Client:   NewClient(fx.oc, fx.agentEp),
		Instance: id,
		Interval: fx.interval,
	})
	r.reg.Add(chaosName, &ior.Ref{TypeID: "IDL:echo:1.0", Key: chaosKey,
		Threads: 1, Endpoints: []string{ep}})
	r.reg.Start()
	fx.replicas = append(fx.replicas, r)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = r.reg.Stop(ctx)
		cancel()
		srv.Close()
	})
	return r
}

// awaitReplicas polls until the table holds want replicas or the
// deadline passes.
func (fx *chaosFixture) awaitReplicas(t *testing.T, want int, deadline time.Duration) time.Duration {
	t.Helper()
	start := time.Now()
	for {
		if _, reps := fx.table.Size(); reps == want {
			return time.Since(start)
		}
		if time.Since(start) > deadline {
			_, reps := fx.table.Size()
			t.Fatalf("table holds %d replicas after %v, want %d", reps, deadline, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// echoHeader builds a request header for the chaos echo object.
func echoHeader(cli *orb.Client) giop.RequestHeader {
	return giop.RequestHeader{
		InvocationID:     cli.NewInvocationID(),
		ResponseExpected: true,
		ObjectKey:        chaosKey,
		Operation:        "echo",
		ThreadRank:       -1,
		ThreadCount:      1,
	}
}

// burstClient is an orb client + resolver wired for InvokeNamed
// against the fixture's agent.
func (fx *chaosFixture) burstClient(freshFor time.Duration) (*orb.Client, *Resolver) {
	cli := orb.NewClient(fx.reg,
		orb.WithRetryPolicy(orb.DefaultRetryPolicy()),
		orb.WithDefaultDeadline(5*time.Second))
	res := NewResolver(ResolverConfig{
		Agent:      NewClient(cli, fx.agentEp),
		FreshFor:   freshFor,
		RPCTimeout: 500 * time.Millisecond,
	})
	return cli, res
}

// TestFaultReplicaDeathMidBurst is the acceptance scenario: three
// heartbeat-tracked replicas under a sustained concurrent burst;
// killing one mid-burst must yield zero client-visible failures (the
// ranked reference's failover chain and re-resolution absorb it), and
// the dead replica must age out of the agent table within a few TTLs.
func TestFaultReplicaDeathMidBurst(t *testing.T) {
	fx := newChaos(t, 3, 25*time.Millisecond, "inproc:")
	fx.awaitReplicas(t, 3, 2*time.Second)

	cli, res := fx.burstClient(20 * time.Millisecond)
	defer cli.Close()

	const (
		workers = 4
		perW    = 60
		killAt  = workers * perW / 3
	)
	var done atomic.Int64
	killed := make(chan struct{})
	// The killer waits for the burst to be well underway, then crashes
	// replica 0 (connection drop + heartbeat stop, no deregistration).
	go func() {
		for done.Load() < killAt {
			time.Sleep(time.Millisecond)
		}
		fx.replicas[0].crash()
		close(killed)
	}()

	var wg sync.WaitGroup
	errs := make(chan error, workers*perW)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				msg := fmt.Sprintf("w%d-%d", w, i)
				rh, order, body, err := cli.InvokeNamed(context.Background(), res, chaosName,
					echoHeader(cli), func(e *cdr.Encoder) { e.PutString(msg) })
				if err != nil {
					errs <- fmt.Errorf("op %s: %w", msg, err)
					return
				}
				if rh.Status != giop.ReplyOK {
					errs <- fmt.Errorf("op %s: status %v", msg, rh.Status)
					return
				}
				if s, derr := cdr.NewDecoderAt(order, body, 8).String(); derr != nil || s == "" {
					errs <- fmt.Errorf("op %s: reply %q, %v", msg, s, derr)
					return
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("client-visible failure: %v", err)
	}
	<-killed

	// The dead replica misses heartbeats and ages out; resolution
	// converges on the two survivors.
	deadline := time.Now().Add(10 * fx.ttl)
	for {
		ref, n, err := fx.table.Resolve(chaosName)
		if err == nil && n == 2 && len(ref.Endpoints) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead replica still ranked after %v: n=%d err=%v", 10*fx.ttl, n, err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFaultHeartbeatLossExpiresReplica: a replica whose heartbeats
// stop (without deregistering) leaves the table by TTL — but not
// before it, so a healthy heartbeat cadence never flaps.
func TestFaultHeartbeatLossExpiresReplica(t *testing.T) {
	fx := newChaos(t, 2, 25*time.Millisecond, "inproc:")
	fx.awaitReplicas(t, 2, 2*time.Second)

	// A couple of TTLs of healthy cadence: nothing may expire.
	time.Sleep(2 * fx.ttl)
	if _, reps := fx.table.Size(); reps != 2 {
		t.Fatalf("healthy replicas flapped: table holds %d", reps)
	}

	fx.replicas[1].crash()
	fx.awaitReplicas(t, 1, 10*fx.ttl)
	ref, n, err := fx.table.Resolve(chaosName)
	if err != nil || n != 1 {
		t.Fatalf("resolve after expiry: n=%d err=%v", n, err)
	}
	if len(ref.Endpoints) != 1 || ref.Endpoints[0] != fx.replicas[0].ep {
		t.Fatalf("survivor endpoints = %v, want %v", ref.Endpoints, fx.replicas[0].ep)
	}
}

// TestFaultDrainDeregisters: a graceful drain (registrar.Stop, the
// pardisd -drain path) removes the replica synchronously — no TTL
// wait, no stale registration window.
func TestFaultDrainDeregisters(t *testing.T) {
	fx := newChaos(t, 2, 25*time.Millisecond, "inproc:")
	fx.awaitReplicas(t, 2, 2*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := fx.replicas[0].reg.Stop(ctx); err != nil {
		t.Fatalf("drain-stop: %v", err)
	}
	// Immediately — not within a TTL — the table holds one replica.
	ref, n, err := fx.table.Resolve(chaosName)
	if err != nil || n != 1 {
		t.Fatalf("resolve right after drain: n=%d err=%v", n, err)
	}
	if len(ref.Endpoints) != 1 || ref.Endpoints[0] != fx.replicas[1].ep {
		t.Fatalf("post-drain endpoints = %v, want only %v", ref.Endpoints, fx.replicas[1].ep)
	}
}

// TestFaultAgentRestartMidBurst: the agent dies and restarts empty;
// heartbeats must rebuild the full table within one TTL of the new
// agent listening, and a client burst spanning the outage sees zero
// failures (it degrades to its cached reference while the agent is
// away).
func TestFaultAgentRestartMidBurst(t *testing.T) {
	fx := newChaos(t, 3, 50*time.Millisecond, "inproc:")
	fx.awaitReplicas(t, 3, 2*time.Second)

	cli, res := fx.burstClient(25 * time.Millisecond)
	defer cli.Close()

	// Sustained background burst across the restart.
	stop := make(chan struct{})
	var burstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				msg := fmt.Sprintf("w%d-%d", w, i)
				_, _, _, err := cli.InvokeNamed(context.Background(), res, chaosName,
					echoHeader(cli), func(e *cdr.Encoder) { e.PutString(msg) })
				if err != nil {
					burstErr.Store(fmt.Errorf("op %s: %w", msg, err))
					return
				}
			}
		}(w)
	}

	// Prime the resolver cache, then kill the agent.
	time.Sleep(2 * fx.interval)
	fx.agentSrv.Close()
	time.Sleep(2 * fx.interval) // a whole outage's worth of burst ops

	// Restart: a fresh, empty table at the same endpoint (state is
	// soft — nothing is carried over).
	fx.table = NewTable()
	fx.agentSrv = orb.NewServer(fx.reg)
	Serve(fx.agentSrv, fx.table)
	var err error
	relisten := time.Now()
	for {
		if _, err = fx.agentSrv.Listen(fx.agentEp); err == nil {
			break
		}
		if time.Since(relisten) > 2*time.Second {
			t.Fatalf("relisten at %s: %v", fx.agentEp, err)
		}
		time.Sleep(time.Millisecond)
	}
	defer fx.agentSrv.Close()
	stopSweep := fx.table.StartSweeper(fx.interval / 2)
	defer stopSweep()

	// The rebuild contract: every replica is back within one TTL.
	rebuilt := fx.awaitReplicas(t, 3, fx.ttl)
	t.Logf("table rebuilt from heartbeats in %v (TTL %v)", rebuilt, fx.ttl)

	close(stop)
	wg.Wait()
	if err, _ := burstErr.Load().(error); err != nil {
		t.Fatalf("client-visible failure across agent restart: %v", err)
	}
}

// TestFaultAgentBlackhole: with the agent one-way partitioned (writes
// vanish, no close), resolution must degrade within its RPC timeout —
// to the stale cache when one exists, else to the static naming
// registry — and recover once the partition heals.
func TestFaultAgentBlackhole(t *testing.T) {
	reg := transport.NewRegistry()
	inner := transport.NewInproc()
	faulty := transport.NewFaulty(inner, transport.FaultPlan{Seed: 11})
	reg.Register(inner)
	reg.Register(faulty)

	// Agent behind the fault layer; its table holds a 3-endpoint row.
	tbl := NewTable()
	asrv := orb.NewServer(reg)
	Serve(asrv, tbl)
	aep, err := asrv.Listen("faulty+inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer asrv.Close()
	if err := tbl.Register(Registration{Instance: "inst-a", TTL: time.Hour,
		Names: []NameRef{{Name: chaosName, Ref: &ior.Ref{TypeID: "IDL:echo:1.0",
			Key: chaosKey, Threads: 1,
			Endpoints: []string{"inproc:r0", "inproc:r1", "inproc:r2"}}}}}); err != nil {
		t.Fatal(err)
	}

	// Static naming fallback with a distinguishable 1-endpoint binding,
	// reachable on the healthy transport.
	nreg := naming.NewRegistry()
	if err := nreg.Bind(chaosName, &ior.Ref{TypeID: "IDL:echo:1.0", Key: chaosKey,
		Threads: 1, Endpoints: []string{"inproc:static"}}, false); err != nil {
		t.Fatal(err)
	}
	nsrv := orb.NewServer(reg)
	naming.Serve(nsrv, nreg)
	nep, err := nsrv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer nsrv.Close()

	cli := orb.NewClient(reg, orb.WithDefaultDeadline(2*time.Second))
	defer cli.Close()
	freshFor := 30 * time.Millisecond
	rpcTimeout := 150 * time.Millisecond
	res := NewResolver(ResolverConfig{
		Agent:      NewClient(cli, aep),
		Naming:     naming.NewClient(cli, nep),
		FreshFor:   freshFor,
		RPCTimeout: rpcTimeout,
	})
	ctx := context.Background()

	// Healthy: the agent's ranked 3-endpoint merge.
	ref, err := res.RefFor(ctx, chaosName)
	if err != nil || len(ref.Endpoints) != 3 {
		t.Fatalf("healthy resolve: %v, %v", ref, err)
	}

	// Partition the agent. The resolver's pooled connection was dialed
	// pre-partition, so close the server side too: the client's next
	// dial goes through the blackhole plan.
	faulty.SetPlan(transport.FaultPlan{Seed: 11, Blackhole: 1})
	asrv.Close()

	// Past FreshFor, the resolver must try the agent, hang only for
	// RPCTimeout, and fall back — to the stale cached ranking first.
	time.Sleep(freshFor + 5*time.Millisecond)
	start := time.Now()
	ref, err = res.RefFor(ctx, chaosName)
	took := time.Since(start)
	if err != nil || len(ref.Endpoints) != 3 {
		t.Fatalf("degraded resolve: %v, %v", ref, err)
	}
	if took > rpcTimeout+time.Second {
		t.Fatalf("degraded resolve took %v, want ~%v (the partition must not stall clients)", took, rpcTimeout)
	}

	// With the cache invalidated (all three replicas "died"), the
	// ladder bottoms out at static naming.
	res.Invalidate(chaosName)
	ref, err = res.RefFor(ctx, chaosName)
	if err != nil || len(ref.Endpoints) != 1 || ref.Endpoints[0] != "inproc:static" {
		t.Fatalf("naming-fallback resolve: %v, %v", ref, err)
	}
	if faulty.Stats().BlackholedConns == 0 {
		t.Fatalf("fault plan injected nothing (stats %+v); the test proved nothing", faulty.Stats())
	}

	// Heal the partition and restart the agent at the same endpoint:
	// resolution must climb back to the ranked agent answer.
	faulty.SetPlan(transport.FaultPlan{Seed: 11})
	asrv2 := orb.NewServer(reg)
	Serve(asrv2, tbl)
	relisten := time.Now()
	for {
		if _, err = asrv2.Listen(aep); err == nil {
			break
		}
		if time.Since(relisten) > 2*time.Second {
			t.Fatalf("relisten: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	defer asrv2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		res.Invalidate(chaosName)
		ref, err = res.RefFor(ctx, chaosName)
		if err == nil && len(ref.Endpoints) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resolution never recovered to the agent: %v, %v", ref, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFaultRegistrarSurvivesAgentOutage: heartbeats failing (agent
// down) never crash or wedge the registrar; once the agent is back the
// next beat re-registers. This is the soft-dependency contract from
// the server's side.
func TestFaultRegistrarSurvivesAgentOutage(t *testing.T) {
	fx := newChaos(t, 1, 25*time.Millisecond, "inproc:")
	fx.awaitReplicas(t, 1, 2*time.Second)

	fx.agentSrv.Close()
	time.Sleep(4 * fx.interval) // several failed beats

	fx.table = NewTable()
	fx.agentSrv = orb.NewServer(fx.reg)
	Serve(fx.agentSrv, fx.table)
	var err error
	relisten := time.Now()
	for {
		if _, err = fx.agentSrv.Listen(fx.agentEp); err == nil {
			break
		}
		if time.Since(relisten) > 2*time.Second {
			t.Fatalf("relisten: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	defer fx.agentSrv.Close()

	fx.awaitReplicas(t, 1, fx.ttl)

	// And a graceful stop against the recovered agent still works.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := fx.replicas[0].reg.Stop(ctx); err != nil {
		t.Fatalf("stop after outage: %v", err)
	}
	if _, _, err := fx.table.Resolve(chaosName); !errors.Is(err, ErrNotFound) {
		t.Fatalf("resolve after stop: %v, want ErrNotFound", err)
	}
}
