// Package agent implements the NetSolve-style resource agent: the
// service that turns N independent PARDIS servers into one elastic,
// fault-tolerant object service. Servers register their objects at
// startup and renew the registration with periodic heartbeats that
// piggyback live load signals (admission gate occupancy, in-dispatch
// handlers, SPMD lease counts, drain state). The agent maintains a
// per-object-name weighted replica table, expires replicas that miss
// heartbeats, and answers Resolve with a load-ranked reference whose
// replica profile list feeds the client ORB's InvokeRef failover
// chain.
//
// The agent is a *soft* dependency by design. Its table is pure soft
// state: on agent restart it rebuilds from heartbeats within one TTL
// (default 3x the heartbeat interval), and while the agent is
// unreachable clients degrade down a ladder — the last agent-ranked
// answer they cached, then the static naming registry — instead of
// failing. Nothing a client needs to make progress lives only in the
// agent.
//
// Like the naming service, the agent is an ordinary PARDIS object
// (object key ServiceKey) served by an orb.Server: register,
// heartbeat renewal, deregister, resolve and list are IDL-style
// operations with CDR bodies.
package agent

import (
	"errors"
	"time"
)

// ServiceKey is the object key the agent service answers to.
const ServiceKey = "pardis/agent"

// Errors returned by the agent client and table.
var (
	ErrNotFound = errors.New("agent: no live replica for name")
	ErrProtocol = errors.New("agent: protocol error")
)

// DefaultHeartbeatInterval is how often a Registrar renews its
// registration when not configured otherwise.
const DefaultHeartbeatInterval = 2 * time.Second

// TTLFactor is the default registration time-to-live in heartbeat
// intervals: a replica survives two missed heartbeats, the third miss
// expires it.
const TTLFactor = 3

// LoadReport is the live load signal a server piggybacks on every
// registration heartbeat. All fields are point-in-time snapshots of
// instruments the server already exports on /metrics and /healthz.
type LoadReport struct {
	// AdmissionRunning and AdmissionQueued mirror orb.AdmissionStats:
	// admitted handler slots held and requests waiting for one.
	AdmissionRunning int
	AdmissionQueued  int
	// MaxConcurrent and MaxQueue echo the admission caps (0 when the
	// server runs without admission control).
	MaxConcurrent int
	MaxQueue      int
	// Inflight is the server's in-dispatch handler count
	// (pardis_server_inflight), the load signal when admission
	// control is off.
	Inflight int
	// SPMDLeases counts live client leases on this process's SPMD
	// ranks — each one a client holding rank-side transfer state.
	SPMDLeases int
	// BreakersOpen counts open circuit breakers on the process's
	// outbound clients: a proxy for how much of its own dependency
	// fan-out is failing.
	BreakersOpen int
	// Draining is set while the server is in graceful shutdown; a
	// draining replica ranks behind every live one.
	Draining bool
}

// Score is the agent's load rank for a replica: lower is better.
// Queued admissions dominate — a queue means the replica is past its
// concurrency cap and every queued request is paying latency — then
// running/in-dispatch work, then SPMD leases (clients parked on rank
// state), then open breakers. Draining replicas sort behind
// everything: they answer TRANSIENT to new work anyway.
func (lr LoadReport) Score() float64 {
	s := 4*float64(lr.AdmissionQueued) +
		float64(lr.AdmissionRunning) +
		float64(lr.Inflight) +
		0.25*float64(lr.SPMDLeases) +
		2*float64(lr.BreakersOpen)
	if lr.Draining {
		s += 1 << 30
	}
	return s
}
