// Chaos suite for the replicated control plane: killing one of N
// agents mid-burst, asymmetric blackholes between registrars, clients
// and agents, peer-link partitions that heal, and agent flap against
// the resolver's breaker. All tests match -run Fault so the chaos tier
// (`make chaos`, `make chaos-agent`, `make soak`) exercises exactly
// these paths.
package agent

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/ior"
	"pardis/internal/orb"
	"pardis/internal/telemetry"
	"pardis/internal/transport"
)

// haAgent is one member of a replicated control plane: a table, the
// server answering agent RPCs for it, and the peer-sync loop keeping
// it converged with the other members.
type haAgent struct {
	table     *Table
	srv       *orb.Server
	ep        string
	peers     *Peers
	stopSweep func()
}

// haFixture is a replicated control plane (n peer-synced agents) over
// a shared transport registry, plus echo replicas whose registrars fan
// heartbeats out to every agent.
type haFixture struct {
	reg      *transport.Registry
	oc       *orb.Client
	agents   []*haAgent
	replicas []*chaosReplica
	interval time.Duration // heartbeat interval
	sweep    time.Duration // sweep + peer-sync cadence
	ttl      time.Duration
}

// newHA starts n agents, each peer-synced with all the others over
// plain endpoints, sweeping (and syncing) every interval/2.
func newHA(t *testing.T, n int, interval time.Duration) *haFixture {
	t.Helper()
	fx := &haFixture{
		reg:      transport.NewRegistry(),
		interval: interval,
		sweep:    interval / 2,
		ttl:      TTLFactor * interval,
	}
	fx.reg.Register(transport.NewInproc())
	fx.oc = orb.NewClient(fx.reg, orb.WithDefaultDeadline(2*time.Second))
	t.Cleanup(func() { fx.oc.Close() })

	for i := 0; i < n; i++ {
		a := &haAgent{table: NewTable()}
		a.srv = orb.NewServer(fx.reg)
		Serve(a.srv, a.table)
		ep, err := a.srv.Listen("inproc:*")
		if err != nil {
			t.Fatal(err)
		}
		a.ep = ep
		a.stopSweep = a.table.StartSweeper(fx.sweep)
		fx.agents = append(fx.agents, a)
		t.Cleanup(func() { a.stopSweep(); a.srv.Close() })
	}
	for i, a := range fx.agents {
		var peers []*Client
		for j, b := range fx.agents {
			if j != i {
				peers = append(peers, NewClient(fx.oc, b.ep))
			}
		}
		a.peers = NewPeers(PeersConfig{Table: a.table, Clients: peers, Interval: fx.sweep})
		a.peers.Start()
		t.Cleanup(a.peers.Stop)
	}
	return fx
}

// agentEndpoints returns every agent's endpoint in fixture order.
func (fx *haFixture) agentEndpoints() []string {
	eps := make([]string, len(fx.agents))
	for i, a := range fx.agents {
		eps[i] = a.ep
	}
	return eps
}

// addReplica starts one echo server and fans its heartbeats out to the
// given agent endpoints every interval.
func (fx *haFixture) addReplica(t *testing.T, id string, interval time.Duration, agentEPs []string) *chaosReplica {
	t.Helper()
	srv := orb.NewServer(fx.reg)
	srv.Handle(chaosKey, func(in *orb.Incoming) {
		s, err := in.Decoder().String()
		if err != nil {
			_ = in.ReplySystemException("MARSHAL", err.Error())
			return
		}
		_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) { e.PutString(id + ":" + s) })
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, len(agentEPs))
	for i, aep := range agentEPs {
		clients[i] = NewClient(fx.oc, aep)
	}
	r := &chaosReplica{id: id, srv: srv, ep: ep}
	r.reg = NewRegistrar(RegistrarConfig{
		Clients:  clients,
		Instance: id,
		Interval: interval,
	})
	r.reg.Add(chaosName, &ior.Ref{TypeID: "IDL:echo:1.0", Key: chaosKey,
		Threads: 1, Endpoints: []string{ep}})
	r.reg.Start()
	fx.replicas = append(fx.replicas, r)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = r.reg.Stop(ctx)
		cancel()
		srv.Close()
	})
	return r
}

// awaitTable polls one agent's table until it holds want replicas.
// Returns how long convergence took.
func awaitTable(t *testing.T, tbl *Table, want int, deadline time.Duration, what string) time.Duration {
	t.Helper()
	start := time.Now()
	for {
		if _, reps := tbl.Size(); reps == want {
			return time.Since(start)
		}
		if time.Since(start) > deadline {
			_, reps := tbl.Size()
			t.Fatalf("%s: table holds %d replicas after %v, want %d", what, reps, deadline, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// kill stops agent i the hard way: peer loop, sweeper and server all
// die, connections drop, nothing deregisters.
func (fx *haFixture) kill(i int) {
	a := fx.agents[i]
	a.peers.Stop()
	a.stopSweep()
	a.srv.Close()
}

// restart brings agent i back at the same endpoint with a fresh, empty
// table (state is soft) and a fresh peer loop.
func (fx *haFixture) restart(t *testing.T, i int) {
	t.Helper()
	a := fx.agents[i]
	a.table = NewTable()
	a.srv = orb.NewServer(fx.reg)
	Serve(a.srv, a.table)
	relisten := time.Now()
	for {
		if _, err := a.srv.Listen(a.ep); err == nil {
			break
		} else if time.Since(relisten) > 2*time.Second {
			t.Fatalf("relisten at %s: %v", a.ep, err)
		}
		time.Sleep(time.Millisecond)
	}
	a.stopSweep = a.table.StartSweeper(fx.sweep)
	var peers []*Client
	for j, b := range fx.agents {
		if j != i {
			peers = append(peers, NewClient(fx.oc, b.ep))
		}
	}
	a.peers = NewPeers(PeersConfig{Table: a.table, Clients: peers, Interval: fx.sweep})
	a.peers.Start()
	t.Cleanup(func() { a.peers.Stop(); a.stopSweep(); a.srv.Close() })
}

// haResolver builds an InvokeNamed-ready client + resolver over the
// given agent endpoints.
func (fx *haFixture) haResolver(freshFor time.Duration, agentEPs []string) (*orb.Client, *Resolver) {
	cli := orb.NewClient(fx.reg,
		orb.WithRetryPolicy(orb.DefaultRetryPolicy()),
		orb.WithDefaultDeadline(5*time.Second))
	agents := make([]*Client, len(agentEPs))
	for i, aep := range agentEPs {
		agents[i] = NewClient(cli, aep)
	}
	res := NewResolver(ResolverConfig{
		Agents:          agents,
		FreshFor:        freshFor,
		RPCTimeout:      500 * time.Millisecond,
		BreakerCooldown: 250 * time.Millisecond,
	})
	return cli, res
}

// TestFaultAgentKillOneOfTwoMidBurst is the replicated-control-plane
// acceptance scenario: two peer-synced agents, three replicas fanning
// heartbeats to both, a sustained concurrent burst resolving through
// both agents. Killing one agent mid-burst must be invisible to
// clients (the resolver rotates to the survivor), and the restarted
// agent must converge — from empty — within about one sweep via peer
// sync, not one TTL via heartbeats.
func TestFaultAgentKillOneOfTwoMidBurst(t *testing.T) {
	fx := newHA(t, 2, 50*time.Millisecond)
	eps := fx.agentEndpoints()
	for i := 0; i < 3; i++ {
		fx.addReplica(t, fmt.Sprintf("replica-%d", i), fx.interval, eps)
	}
	awaitTable(t, fx.agents[0].table, 3, 2*time.Second, "agent 0 seed")
	awaitTable(t, fx.agents[1].table, 3, 2*time.Second, "agent 1 seed")

	cli, res := fx.haResolver(20*time.Millisecond, eps)
	defer cli.Close()

	const (
		workers = 4
		perW    = 60
		killAt  = workers * perW / 3
	)
	var done atomic.Int64
	killed := make(chan struct{})
	go func() {
		for done.Load() < killAt {
			time.Sleep(time.Millisecond)
		}
		fx.kill(0)
		close(killed)
	}()

	var wg sync.WaitGroup
	errs := make(chan error, workers*perW)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				msg := fmt.Sprintf("w%d-%d", w, i)
				rh, order, body, err := cli.InvokeNamed(context.Background(), res, chaosName,
					echoHeader(cli), func(e *cdr.Encoder) { e.PutString(msg) })
				if err != nil {
					errs <- fmt.Errorf("op %s: %w", msg, err)
					return
				}
				if rh.Status != giop.ReplyOK {
					errs <- fmt.Errorf("op %s: status %v", msg, rh.Status)
					return
				}
				if s, derr := cdr.NewDecoderAt(order, body, 8).String(); derr != nil || s == "" {
					errs <- fmt.Errorf("op %s: reply %q, %v", msg, s, derr)
					return
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("client-visible failure: %v", err)
	}
	<-killed

	// The survivor alone still answers a fresh resolution.
	res.Invalidate(chaosName)
	ref, err := res.RefFor(context.Background(), chaosName)
	if err != nil || len(ref.Endpoints) != 3 {
		t.Fatalf("resolve against survivor: %v, %v", ref, err)
	}

	// Restart the dead agent empty: its Peers loop's immediate first
	// round pulls the survivor's table, so it converges within about
	// one sweep — several times faster than the heartbeat TTL rebuild.
	fx.restart(t, 0)
	took := awaitTable(t, fx.agents[0].table, 3, fx.ttl, "restarted agent")
	t.Logf("restarted agent converged in %v (sweep %v, ttl %v)", took, fx.sweep, fx.ttl)
}

// TestFaultAgentAsymmetricBlackhole: the registrar can reach only
// agent A, the client can reach only agent B — every A-ward client
// dial and B-ward heartbeat dial is blackholed — while the peer link
// between A and B stays healthy. Peer sync must carry the replica row
// from A to B within about one sweep, and the client must resolve and
// invoke with zero visible failures.
func TestFaultAgentAsymmetricBlackhole(t *testing.T) {
	fx := newHA(t, 2, 50*time.Millisecond)
	// The faulty wrapper composes over the fixture's own inproc
	// transport, so faulty+inproc:X dials the same listener inproc:X
	// reaches — one listener, a healthy path and a blackholed path.
	faulty := transport.NewFaulty(fx.inproc(t), transport.FaultPlan{Seed: 7, Blackhole: 1})
	fx.reg.Register(faulty)

	epA, epB := fx.agents[0].ep, fx.agents[1].ep
	// Heartbeats: plain path to A, blackholed path to B.
	fx.addReplica(t, "replica-0", fx.interval, []string{epA, "faulty+" + epB})
	awaitTable(t, fx.agents[0].table, 1, 2*time.Second, "agent A via heartbeat")

	// Peer sync is now the only way the row can reach B.
	took := awaitTable(t, fx.agents[1].table, 1, 2*time.Second, "agent B via peer sync")
	t.Logf("asymmetric row reached B in %v (sweep %v, ttl %v)", took, fx.sweep, fx.ttl)

	// Client: blackholed path to A, plain path to B. Resolution rotates
	// past the blackholed agent inside its RPC timeout and answers from
	// B's synced table; the burst sees nothing.
	cli, res := fx.haResolver(20*time.Millisecond, []string{"faulty+" + epA, epB})
	defer cli.Close()
	for i := 0; i < 30; i++ {
		msg := fmt.Sprintf("op-%d", i)
		rh, order, body, err := cli.InvokeNamed(context.Background(), res, chaosName,
			echoHeader(cli), func(e *cdr.Encoder) { e.PutString(msg) })
		if err != nil || rh.Status != giop.ReplyOK {
			t.Fatalf("op %s: %v (status %v)", msg, err, rh.Status)
		}
		if s, derr := cdr.NewDecoderAt(order, body, 8).String(); derr != nil || s != "replica-0:"+msg {
			t.Fatalf("op %s: reply %q, %v", msg, s, derr)
		}
	}
	if faulty.Stats().BlackholedConns == 0 {
		t.Fatalf("fault plan injected nothing (stats %+v); the test proved nothing", faulty.Stats())
	}
}

// inproc digs the fixture's inproc transport back out of its registry
// so a faulty wrapper can compose over the same namespace.
func (fx *haFixture) inproc(t *testing.T) transport.Transport {
	t.Helper()
	tr, err := fx.reg.Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestFaultPeerPartitionHeal: two agents whose peer link runs through
// a fault layer. While the link is blackholed the tables diverge (a
// replica registered only at A never reaches B); once it heals, B
// converges within about one sweep — and a subsequent drain at A
// propagates its tombstone to B well before the row's TTL could have
// expired it.
func TestFaultPeerPartitionHeal(t *testing.T) {
	interval := 200 * time.Millisecond
	reg := transport.NewRegistry()
	inner := transport.NewInproc()
	faulty := transport.NewFaulty(inner, transport.FaultPlan{Seed: 23})
	reg.Register(inner)
	reg.Register(faulty)
	oc := orb.NewClient(reg, orb.WithDefaultDeadline(2*time.Second))
	defer oc.Close()

	fx := &haFixture{reg: reg, oc: oc, interval: interval,
		sweep: interval / 2, ttl: TTLFactor * interval}
	for i := 0; i < 2; i++ {
		a := &haAgent{table: NewTable()}
		a.srv = orb.NewServer(reg)
		Serve(a.srv, a.table)
		ep, err := a.srv.Listen("inproc:*")
		if err != nil {
			t.Fatal(err)
		}
		a.ep = ep
		a.stopSweep = a.table.StartSweeper(fx.sweep)
		fx.agents = append(fx.agents, a)
		t.Cleanup(func() { a.stopSweep(); a.srv.Close() })
	}
	// Peer links go through the fault layer, both directions.
	for i, a := range fx.agents {
		other := fx.agents[1-i]
		a.peers = NewPeers(PeersConfig{Table: a.table,
			Clients:  []*Client{NewClient(oc, "faulty+" + other.ep)},
			Interval: fx.sweep})
		a.peers.Start()
		t.Cleanup(a.peers.Stop)
	}

	epA := fx.agents[0].ep
	// replica-0 heartbeats to A only; B learns it over the (healthy)
	// peer link.
	fx.addReplica(t, "replica-0", interval, []string{epA})
	awaitTable(t, fx.agents[0].table, 1, 2*time.Second, "A direct")
	awaitTable(t, fx.agents[1].table, 1, 2*time.Second, "B via sync")

	// Partition the peer link: all future peer dials are blackholed,
	// and bouncing both servers drops the pooled pre-partition
	// connections (a real partition kills established flows too). The
	// tables survive the bounce — only the sockets die.
	faulty.SetPlan(transport.FaultPlan{Seed: 23, Blackhole: 1})
	for _, a := range fx.agents {
		a.srv.Close()
		a.srv = orb.NewServer(reg)
		Serve(a.srv, a.table)
		relisten := time.Now()
		for {
			if _, err := a.srv.Listen(a.ep); err == nil {
				break
			} else if time.Since(relisten) > 2*time.Second {
				t.Fatalf("relisten: %v", err)
			}
			time.Sleep(time.Millisecond)
		}
		srv := a.srv
		t.Cleanup(func() { srv.Close() })
	}

	// replica-1 arrives on A's side of the partition, with a long
	// heartbeat interval (TTL 3x) so tombstone propagation is clearly
	// distinguishable from TTL expiry later.
	fx.addReplica(t, "replica-1", 500*time.Millisecond, []string{epA})
	awaitTable(t, fx.agents[0].table, 2, 2*time.Second, "A sees replica-1")

	// Several sync cadences pass; B must NOT learn replica-1 through a
	// blackholed link.
	time.Sleep(4 * fx.sweep)
	if _, reps := fx.agents[1].table.Size(); reps != 1 {
		t.Fatalf("B holds %d replicas during partition, want 1 (the link is blackholed)", reps)
	}
	if faulty.Stats().BlackholedConns == 0 {
		t.Fatalf("partition injected nothing (stats %+v)", faulty.Stats())
	}

	// Heal. B converges on replica-1 within about one sweep (plus the
	// timeout the in-flight blackholed round still has to pay).
	faulty.SetPlan(transport.FaultPlan{Seed: 23})
	healed := awaitTable(t, fx.agents[1].table, 2, 5*time.Second, "B after heal")
	t.Logf("B converged %v after heal (sweep %v)", healed, fx.sweep)

	// Drain replica-1 at A. Its row at B was just renewed by sync (over
	// a second of TTL left), so only the tombstone travelling the peer
	// link can explain B dropping it quickly.
	drained := fx.replicas[1]
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	if err := drained.reg.Stop(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cancel()
	gone := awaitTable(t, fx.agents[1].table, 1, time.Second, "B after tombstone")
	t.Logf("tombstone reached B in %v (row TTL had ≥1s left)", gone)
}

// flakyAgent is an always-reachable agent stub whose resolve op can be
// switched between answering and failing, counting every resolve dial
// that actually lands — the probe-count oracle for breaker tests.
type flakyAgent struct {
	ep       string
	fail     atomic.Bool
	resolves atomic.Int64
}

func newFlakyAgent(t *testing.T, reg *transport.Registry, ref *ior.Ref) *flakyAgent {
	t.Helper()
	fa := &flakyAgent{}
	srv := orb.NewServer(reg)
	srv.Handle(ServiceKey, func(in *orb.Incoming) {
		if in.Header.Operation != "resolve" {
			_ = in.ReplySystemException("BAD_OPERATION", in.Header.Operation)
			return
		}
		fa.resolves.Add(1)
		if fa.fail.Load() {
			_ = in.ReplySystemException("COMM_FAILURE", "injected flap")
			return
		}
		_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) {
			e.PutString(ref.Stringify())
			e.PutULong(1)
		})
	})
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	fa.ep = ep
	t.Cleanup(func() { srv.Close() })
	return fa
}

// TestFaultAgentFlapBreakerCooldown: an agent flapping up and down
// must not thrash the resolver. While the breaker is open the resolver
// serves the stale cache without re-dialing the agent and without
// inflating pardis_agent_resolver_degraded_total; after the cooldown
// it probes exactly once per window; and when the agent comes back a
// probe closes the breaker and resolution returns to the agent rung.
func TestFaultAgentFlapBreakerCooldown(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	ref := convRef(chaosKey, "inproc:r1", "inproc:r2")
	fa := newFlakyAgent(t, reg, ref)

	cli := orb.NewClient(reg, orb.WithDefaultDeadline(2*time.Second))
	defer cli.Close()
	cooldown := 300 * time.Millisecond
	res := NewResolver(ResolverConfig{
		Agent:           NewClient(cli, fa.ep),
		FreshFor:        time.Millisecond, // every resolve walks the ladder
		RPCTimeout:      time.Second,
		BreakerCooldown: cooldown,
	})
	ctx := context.Background()
	degraded := func() uint64 {
		return telemetry.Default.CounterValue("pardis_agent_resolver_degraded_total")
	}

	// Up: resolve lands on the agent and primes the cache.
	got, err := res.RefFor(ctx, chaosName)
	if err != nil || len(got.Endpoints) != 2 {
		t.Fatalf("healthy resolve: %v, %v", got, err)
	}
	if n := fa.resolves.Load(); n != 1 {
		t.Fatalf("healthy resolve dialed %d times, want 1", n)
	}

	// Down: the next resolve pays one probe, opens the breaker, and
	// falls back to the stale cache.
	fa.fail.Store(true)
	time.Sleep(2 * time.Millisecond)
	d0 := degraded()
	opened := time.Now()
	got, err = res.RefFor(ctx, chaosName)
	if err != nil || len(got.Endpoints) != 2 {
		t.Fatalf("first degraded resolve: %v, %v", got, err)
	}
	if n := fa.resolves.Load(); n != 2 {
		t.Fatalf("first degraded resolve dialed %d times total, want 2", n)
	}
	if d := degraded() - d0; d != 1 {
		t.Fatalf("degraded counter moved by %d on breaker open, want 1", d)
	}

	// Hammer resolutions inside the cooldown window: all served from
	// the stale cache — zero new dials, zero degraded-counter thrash.
	d1 := degraded()
	for i := 0; i < 50 && time.Since(opened) < cooldown-50*time.Millisecond; i++ {
		got, err = res.RefFor(ctx, chaosName)
		if err != nil || len(got.Endpoints) != 2 {
			t.Fatalf("cooldown resolve %d: %v, %v", i, got, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := fa.resolves.Load(); n != 2 {
		t.Fatalf("breaker-open window re-dialed the agent (%d dials total, want 2)", n)
	}
	if d := degraded() - d1; d != 0 {
		t.Fatalf("degraded counter thrashed by %d inside the cooldown, want 0", d)
	}

	// Past the cooldown the resolver probes again — still down, so one
	// more dial, stale cache again.
	time.Sleep(time.Until(opened.Add(cooldown + 20*time.Millisecond)))
	if _, err = res.RefFor(ctx, chaosName); err != nil {
		t.Fatalf("post-cooldown resolve: %v", err)
	}
	if n := fa.resolves.Load(); n != 3 {
		t.Fatalf("post-cooldown probe count = %d dials total, want 3", n)
	}

	// Up again: after the new cooldown lapses, a probe succeeds, the
	// breaker closes, and the agent rung serves fresh answers.
	fa.fail.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err = res.RefFor(ctx, chaosName)
		if err == nil && res.AgentHealth()[fa.ep] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after the agent recovered: %v, %v", got, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil || len(got.Endpoints) != 2 {
		t.Fatalf("recovered resolve: %v, %v", got, err)
	}
}
