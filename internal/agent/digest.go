package agent

import (
	"sort"
	"time"

	"pardis/internal/telemetry"
)

// MetricsDigest is the compact observability summary a replica
// piggybacks on each heartbeat: the server-side request/error
// counters, the request-latency histogram buckets, the SPMD
// reclamation counters, and up to MaxDigestExemplars tail-latency
// trace exemplars. All counters are cumulative since process start —
// the agent's table differences consecutive digests to turn them into
// rates, so a missed heartbeat loses freshness, never correctness.
type MetricsDigest struct {
	// Requests counts dispatched server requests
	// (pardis_server_requests_total across all keys).
	Requests uint64
	// Errors counts requests that failed before or during dispatch:
	// admission sheds, handler panics, transient (drain) rejections
	// and unknown-object replies.
	Errors uint64
	// LatencySum is the cumulative pardis_server_request_seconds sum
	// (seconds) across all keys.
	LatencySum float64
	// Buckets holds the cumulative per-bucket observation counts of
	// pardis_server_request_seconds over
	// telemetry.DefaultLatencyBuckets; the final extra entry is the
	// +Inf bucket. Empty when the replica has served nothing.
	Buckets []uint64
	// SPMDLeasesExpired and SPMDShed carry the data-plane reclamation
	// counters (pardis_spmd_leases_expired_total, pardis_spmd_shed_total).
	SPMDLeasesExpired uint64
	SPMDShed          uint64
	// Exemplars are tail-latency trace exemplars, slowest bucket
	// first, so the fleet /metrics can point a p99 bucket at a
	// concrete trace on the replica that produced it.
	Exemplars []TailExemplar
}

// TailExemplar is one tail observation tied to its trace.
type TailExemplar struct {
	// Bucket indexes telemetry.DefaultLatencyBuckets;
	// len(DefaultLatencyBuckets) denotes +Inf.
	Bucket  int
	Value   float64
	TraceID uint64
	When    time.Time
}

// MaxDigestExemplars bounds the exemplars one heartbeat carries.
const MaxDigestExemplars = 4

// CollectDigest snapshots the process-wide telemetry registry into a
// heartbeat digest. It is the default Digest callback of a Registrar.
func CollectDigest() MetricsDigest { return collectDigest(telemetry.Default) }

func collectDigest(reg *telemetry.Registry) MetricsDigest {
	d := MetricsDigest{
		Requests: reg.CounterValue("pardis_server_requests_total"),
		Errors: reg.CounterValue("pardis_server_shed_total") +
			reg.CounterValue("pardis_server_panics_total") +
			reg.CounterValue("pardis_server_transient_rejections_total") +
			reg.CounterValue("pardis_server_no_object_total"),
		SPMDLeasesExpired: reg.CounterValue("pardis_spmd_leases_expired_total"),
		SPMDShed:          reg.CounterValue("pardis_spmd_shed_total"),
	}
	n := len(telemetry.DefaultLatencyBuckets)
	for _, s := range reg.HistogramsByName("pardis_server_request_seconds") {
		if len(s.Counts) != n {
			continue // custom-bucket histograms don't merge into the fleet edges
		}
		if d.Buckets == nil {
			d.Buckets = make([]uint64, n+1)
		}
		for i, c := range s.Counts {
			d.Buckets[i] += c
		}
		d.Buckets[n] += s.Inf
		d.LatencySum += s.Sum
		for _, be := range s.Exemplars {
			d.Exemplars = append(d.Exemplars, TailExemplar{
				Bucket: be.Bucket, Value: be.Value,
				TraceID: be.TraceID, When: be.When,
			})
		}
	}
	sort.Slice(d.Exemplars, func(i, j int) bool {
		if d.Exemplars[i].Bucket != d.Exemplars[j].Bucket {
			return d.Exemplars[i].Bucket > d.Exemplars[j].Bucket
		}
		return d.Exemplars[i].When.After(d.Exemplars[j].When)
	})
	if len(d.Exemplars) > MaxDigestExemplars {
		d.Exemplars = d.Exemplars[:MaxDigestExemplars]
	}
	return d
}

// sub returns a-b clamped at zero, so a replica restart (counters
// reset to zero) yields an empty delta instead of an underflow.
func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// delta returns the element-wise bucket difference cur-prev, nil when
// the shapes disagree (restart, version skew) or cur is empty.
func bucketDelta(cur, prev []uint64) []uint64 {
	if len(cur) == 0 {
		return nil
	}
	out := make([]uint64, len(cur))
	copy(out, cur)
	if len(prev) == len(cur) {
		for i := range out {
			out[i] = sub(out[i], prev[i])
		}
	}
	return out
}

// digestQuantile estimates the q-quantile of a bucket-count vector
// over the fleet's fixed edges (counts[len(edges)] is +Inf) by linear
// interpolation inside the winning bucket. An empty vector reports 0;
// a +Inf-bucket rank reports the last edge as the best point estimate
// available without the raw samples.
func digestQuantile(edges []float64, counts []uint64, q float64) float64 {
	if len(counts) != len(edges)+1 {
		return 0
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i, c := range counts[:len(edges)] {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = edges[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (edges[i]-lo)*frac
		}
		cum += c
	}
	return edges[len(edges)-1]
}
