// Tests for the replicated control plane's convergence machinery:
// table snapshot/merge semantics (newest-renewal-wins, tombstones, the
// per-instance renewal high-water mark), the sync wire codec, the
// registrar's multi-agent fan-out, the resolver's rotation, and the
// Peers exchange loop.
package agent

import (
	"context"
	"errors"
	"testing"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/orb"
	"pardis/internal/transport"
)

// regAt registers one (instance, name, endpoint) row on a fake-clock
// table.
func regAt(t *testing.T, tbl *Table, inst, name, ep string, ttl time.Duration) {
	t.Helper()
	if err := tbl.Register(Registration{
		Instance: inst, TTL: ttl,
		Names: []NameRef{{Name: name, Ref: convRef("e", ep)}},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTableSnapshotMergeConverges(t *testing.T) {
	a, clkA := newFakeTable()
	b, clkB := newFakeTable()
	// Deliberate wall-clock skew: B runs an hour ahead of A. Snapshots
	// carry ages, not timestamps, so the merge must not care.
	clkB.advance(time.Hour)

	regAt(t, a, "inst-1", "svc/e", "inproc:r1", time.Second)
	regAt(t, a, "inst-2", "svc/e", "inproc:r2", time.Second)

	adopted, removed := b.Merge(a.Snapshot())
	if adopted != 2 || removed != 0 {
		t.Fatalf("merge = (%d adopted, %d removed), want (2, 0)", adopted, removed)
	}
	ref, n, err := b.Resolve("svc/e")
	if err != nil || n != 2 || len(ref.Endpoints) != 2 {
		t.Fatalf("resolve on merged table: n=%d ref=%v err=%v", n, ref, err)
	}

	// Re-merging the same snapshot is a no-op: nothing is strictly
	// newer the second time.
	if adopted, removed = b.Merge(a.Snapshot()); adopted != 0 || removed != 0 {
		t.Fatalf("idempotent re-merge = (%d, %d), want (0, 0)", adopted, removed)
	}

	// The merged rows keep their original TTL budget: one second after
	// the registration (on B's skewed clock) they expire like any
	// directly heartbeated row.
	clkA.advance(1500 * time.Millisecond)
	clkB.advance(1500 * time.Millisecond)
	if n := b.Sweep(clkB.now()); n != 2 {
		t.Fatalf("sweep expired %d merged rows, want 2", n)
	}
}

func TestTableMergeNewestRenewalWins(t *testing.T) {
	a, clkA := newFakeTable()
	b, clkB := newFakeTable()

	regAt(t, a, "inst-1", "svc/e", "inproc:old", time.Second)
	old := a.Snapshot()

	// B hears a newer heartbeat directly (the instance moved ports).
	clkA.advance(100 * time.Millisecond)
	clkB.advance(100 * time.Millisecond)
	regAt(t, b, "inst-1", "svc/e", "inproc:new", time.Second)

	// The stale peer row must not displace the newer local one.
	if adopted, _ := b.Merge(old); adopted != 0 {
		t.Fatalf("stale peer row adopted (%d), want 0", adopted)
	}
	ref, _, err := b.Resolve("svc/e")
	if err != nil || ref.Endpoints[0] != "inproc:new" {
		t.Fatalf("resolve after stale merge: %v, %v (want inproc:new)", ref, err)
	}

	// The other direction: A adopts B's strictly newer renewal.
	if adopted, _ := a.Merge(b.Snapshot()); adopted != 1 {
		t.Fatalf("newer peer row not adopted")
	}
	ref, _, _ = a.Resolve("svc/e")
	if ref.Endpoints[0] != "inproc:new" {
		t.Fatalf("A after merge resolves %v, want inproc:new", ref.Endpoints)
	}
}

func TestTableMergeTombstoneBlocksResurrection(t *testing.T) {
	a, clkA := newFakeTable()
	b, clkB := newFakeTable()

	regAt(t, a, "inst-1", "svc/e", "inproc:r1", time.Second)
	preDrain := a.Snapshot() // a partitioned peer's stale view
	if adopted, _ := b.Merge(preDrain); adopted != 1 {
		t.Fatalf("seed merge failed")
	}

	// The instance drains at A; the tombstone travels to B and removes
	// the row B adopted earlier.
	clkA.advance(10 * time.Millisecond)
	clkB.advance(10 * time.Millisecond)
	a.Deregister("inst-1")
	if adopted, removed := b.Merge(a.Snapshot()); adopted != 0 || removed != 1 {
		t.Fatalf("tombstone merge = (%d, %d), want (0, 1)", adopted, removed)
	}
	if _, _, err := b.Resolve("svc/e"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("resolve after tombstone merge: %v, want ErrNotFound", err)
	}

	// The stale pre-drain snapshot bounces back (partition heals the
	// other way): the tombstone must veto resurrection.
	if adopted, _ := b.Merge(preDrain); adopted != 0 {
		t.Fatalf("tombstoned instance resurrected from stale snapshot")
	}

	// But the instance itself re-registering (restart under the same
	// identity) clears the tombstone — direct speech beats markers.
	clkB.advance(10 * time.Millisecond)
	regAt(t, b, "inst-1", "svc/e", "inproc:r1b", time.Second)
	if _, _, err := b.Resolve("svc/e"); err != nil {
		t.Fatalf("resolve after re-register: %v", err)
	}
}

func TestTableMergeSeenVetoesDroppedNames(t *testing.T) {
	a, clkA := newFakeTable()
	b, clkB := newFakeTable()

	// The instance serves two names; both tables know.
	reg2 := Registration{Instance: "inst-1", TTL: time.Second, Names: []NameRef{
		{Name: "svc/x", Ref: convRef("x", "inproc:r1")},
		{Name: "svc/y", Ref: convRef("y", "inproc:r1")},
	}}
	if err := a.Register(reg2); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(reg2); err != nil {
		t.Fatal(err)
	}

	// B hears a newer heartbeat carrying only svc/x — the instance
	// dropped svc/y. A (partitioned) still holds the old two-name view.
	clkA.advance(50 * time.Millisecond)
	clkB.advance(50 * time.Millisecond)
	regAt(t, b, "inst-1", "svc/x", "inproc:r1", time.Second)
	if _, _, err := b.Resolve("svc/y"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("svc/y survived the narrowing heartbeat: %v", err)
	}

	// Merging A's stale snapshot must not resurrect svc/y: the row is
	// older than the newest renewal B has seen from the instance.
	if adopted, _ := b.Merge(a.Snapshot()); adopted != 0 {
		t.Fatalf("dropped name resurrected by stale peer row (%d adopted)", adopted)
	}
	if _, _, err := b.Resolve("svc/y"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("svc/y resurrected: %v", err)
	}
}

func TestTableMergePingPongCannotExtendLife(t *testing.T) {
	a, clkA := newFakeTable()
	b, clkB := newFakeTable()

	regAt(t, a, "inst-1", "svc/e", "inproc:r1", 100*time.Millisecond)
	b.Merge(a.Snapshot())

	// The instance dies (no more heartbeats). A and B keep exchanging
	// snapshots; the row's deadline must never move, so both tables
	// forget it once its one registration's TTL lapses.
	for i := 0; i < 20; i++ {
		clkA.advance(10 * time.Millisecond)
		clkB.advance(10 * time.Millisecond)
		b.Merge(a.Snapshot())
		a.Merge(b.Snapshot())
		a.Sweep(clkA.now())
		b.Sweep(clkB.now())
	}
	if _, _, err := a.Resolve("svc/e"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("A kept a dead row alive through sync ping-pong: %v", err)
	}
	if _, _, err := b.Resolve("svc/e"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("B kept a dead row alive through sync ping-pong: %v", err)
	}
}

func TestSyncWireRoundTrip(t *testing.T) {
	in := SyncSnapshot{
		Entries: []SyncEntry{
			{Name: "svc/e", Instance: "inst-1", Ref: convRef("e", "inproc:r1", "inproc:r2"),
				Load: LoadReport{AdmissionQueued: 3, Inflight: 7, Draining: true},
				Age:  1500 * time.Microsecond, TTL: 75 * time.Millisecond},
			{Name: "svc/f", Instance: "inst-2", Ref: convRef("f", "inproc:r3"),
				Age: 0, TTL: time.Second},
		},
		Tombs: []SyncTombstone{{Instance: "inst-3", Age: 2 * time.Millisecond, TTL: time.Second}},
	}
	e := cdr.NewEncoder(cdr.BigEndian)
	encodeSnapshot(e, in)
	out, err := decodeSnapshot(cdr.NewDecoder(cdr.BigEndian, e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 2 || len(out.Tombs) != 1 {
		t.Fatalf("round trip sizes: %d entries, %d tombs", len(out.Entries), len(out.Tombs))
	}
	for i, want := range in.Entries {
		got := out.Entries[i]
		if got.Name != want.Name || got.Instance != want.Instance ||
			got.Age != want.Age || got.TTL != want.TTL ||
			got.Load.AdmissionQueued != want.Load.AdmissionQueued ||
			got.Load.Draining != want.Load.Draining ||
			got.Ref.Stringify() != want.Ref.Stringify() {
			t.Fatalf("entry %d round trip: got %+v, want %+v", i, got, want)
		}
	}
	if tb := out.Tombs[0]; tb != in.Tombs[0] {
		t.Fatalf("tombstone round trip: got %+v, want %+v", tb, in.Tombs[0])
	}

	// An empty snapshot travels too (a freshly started agent's first
	// sync is exactly this).
	e = cdr.NewEncoder(cdr.BigEndian)
	encodeSnapshot(e, SyncSnapshot{})
	if out, err = decodeSnapshot(cdr.NewDecoder(cdr.BigEndian, e.Bytes())); err != nil ||
		len(out.Entries) != 0 || len(out.Tombs) != 0 {
		t.Fatalf("empty round trip: %+v, %v", out, err)
	}
}

// newTwinAgents starts two agent services over one shared transport
// registry (distinct endpoints, unlike two independent wire fixtures
// whose inproc namespaces collide) and returns their tables and
// clients.
func newTwinAgents(t *testing.T) (tblA *Table, acA *Client, tblB *Table, acB *Client) {
	t.Helper()
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	oc := orb.NewClient(reg, orb.WithDefaultDeadline(2*time.Second))
	t.Cleanup(func() { oc.Close() })
	mk := func() (*Table, *Client) {
		tbl := NewTable()
		srv := orb.NewServer(reg)
		Serve(srv, tbl)
		ep, err := srv.Listen("inproc:*")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return tbl, NewClient(oc, ep)
	}
	tblA, acA = mk()
	tblB, acB = mk()
	return
}

func TestSyncOpConvergesBothSides(t *testing.T) {
	tblA, acA, tblB, acB := newTwinAgents(t)
	ctx := context.Background()

	if err := tblA.Register(Registration{Instance: "inst-a", TTL: time.Minute,
		Names: []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:ra")}}}); err != nil {
		t.Fatal(err)
	}
	if err := tblB.Register(Registration{Instance: "inst-b", TTL: time.Minute,
		Names: []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:rb")}}}); err != nil {
		t.Fatal(err)
	}

	// One exchange: A pushes its snapshot to B and merges B's reply —
	// both sides hold the union afterwards.
	remote, err := acB.Sync(ctx, tblA.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if adopted, _ := tblA.Merge(remote); adopted != 1 {
		t.Fatalf("A adopted %d rows from B's reply, want 1", adopted)
	}
	for side, tbl := range map[string]*Table{"A": tblA, "B": tblB} {
		if _, n, err := tbl.Resolve("svc/e"); err != nil || n != 2 {
			t.Fatalf("%s after one sync round: n=%d err=%v, want 2 replicas", side, n, err)
		}
	}
	_ = acA
}

func TestRegistrarFansOutToAllAgents(t *testing.T) {
	tblA, acA, tblB, acB := newTwinAgents(t)

	r := NewRegistrar(RegistrarConfig{
		Clients:  []*Client{acA, acB, acA}, // duplicate collapses
		Instance: "inst-1",
		Interval: 20 * time.Millisecond,
	})
	r.Add("svc/e", convRef("e", "inproc:r1"))
	r.Start()

	deadline := time.Now().Add(2 * time.Second)
	for {
		_, nA := tblA.Size()
		_, nB := tblB.Size()
		if nA == 1 && nB == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fan-out never landed: A=%d B=%d replicas", nA, nB)
		}
		time.Sleep(time.Millisecond)
	}

	// Stop deregisters from every agent, synchronously.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := r.Stop(ctx); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if _, nA := tblA.Size(); nA != 0 {
		t.Fatalf("A still holds %d replicas after Stop", nA)
	}
	if _, nB := tblB.Size(); nB != 0 {
		t.Fatalf("B still holds %d replicas after Stop", nB)
	}
}

func TestResolverRotatesAcrossAgents(t *testing.T) {
	// Agent A is a black void (nothing listens); agent B is live and
	// holds the row. The resolver must rotate past A within its RPC
	// timeout and answer from B.
	tblB, acB := newWireFixture(t)
	if err := tblB.Register(Registration{Instance: "inst-b", TTL: time.Minute,
		Names: []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:rb")}}}); err != nil {
		t.Fatal(err)
	}
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	oc := orb.NewClient(reg, orb.WithDefaultDeadline(time.Second))
	defer oc.Close()
	acDead := NewClient(oc, "inproc:no-such-agent")

	res := NewResolver(ResolverConfig{
		Agents:          []*Client{acDead, acB},
		FreshFor:        time.Millisecond,
		RPCTimeout:      250 * time.Millisecond,
		BreakerCooldown: 200 * time.Millisecond,
	})
	ref, err := res.RefFor(context.Background(), "svc/e")
	if err != nil || len(ref.Endpoints) != 1 || ref.Endpoints[0] != "inproc:rb" {
		t.Fatalf("rotated resolve: %v, %v", ref, err)
	}
	health := res.AgentHealth()
	if health[acDead.Endpoint()] {
		t.Fatalf("dead agent's breaker not open: %v", health)
	}
	if !health[acB.Endpoint()] {
		t.Fatalf("live agent's breaker open: %v", health)
	}

	// With lastGood set to B, later resolutions never pay A's timeout.
	time.Sleep(2 * time.Millisecond)
	start := time.Now()
	if _, err = res.RefFor(context.Background(), "svc/e"); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 200*time.Millisecond {
		t.Fatalf("last-known-good resolve took %v; it re-dialed the dead agent", took)
	}
}

func TestPeersLoopConvergesAndReportsStatus(t *testing.T) {
	tblA, _, tblB, acB := newTwinAgents(t)
	if err := tblB.Register(Registration{Instance: "inst-b", TTL: time.Minute,
		Names: []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:rb")}}}); err != nil {
		t.Fatal(err)
	}

	p := NewPeers(PeersConfig{
		Table:    tblA,
		Clients:  []*Client{acB},
		Interval: 20 * time.Millisecond,
	})
	p.Start()
	defer p.Stop()

	// The immediate first round pulls B's row into A.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, n := tblA.Size(); n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peer sync never converged A onto B's row")
		}
		time.Sleep(time.Millisecond)
	}

	sts := p.Status()
	if len(sts) != 1 || !sts[0].Live || sts[0].Endpoint != acB.Endpoint() {
		t.Fatalf("peer status = %+v, want one live peer at %s", sts, acB.Endpoint())
	}
	if sts[0].SinceSync < 0 {
		t.Fatalf("SinceSync = %v after a successful round", sts[0].SinceSync)
	}
	if sts[0].RemoteRows != 1 || sts[0].Divergence != 0 {
		t.Fatalf("peer status rows/divergence = %d/%d, want 1/0", sts[0].RemoteRows, sts[0].Divergence)
	}
	p.Stop() // idempotent with the deferred one
}
