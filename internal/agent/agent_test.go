package agent

import (
	"context"
	"errors"
	"testing"
	"time"

	"pardis/internal/ior"
	"pardis/internal/naming"
	"pardis/internal/orb"
	"pardis/internal/transport"
)

// convRef builds a conventional (single-thread) reference.
func convRef(key string, eps ...string) *ior.Ref {
	return &ior.Ref{TypeID: "IDL:echo:1.0", Key: key, Threads: 1, Endpoints: eps}
}

// fakeClock gives a table a hand-cranked time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newFakeTable() (*Table, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tbl := NewTable()
	tbl.now = clk.now
	return tbl, clk
}

func TestTableRegisterRanksByLoad(t *testing.T) {
	tbl, _ := newFakeTable()
	reg := func(inst, ep string, queued int) {
		err := tbl.Register(Registration{
			Instance: inst, TTL: time.Second,
			Names: []NameRef{{Name: "svc/e", Ref: convRef("e", ep)}},
			Load:  LoadReport{AdmissionQueued: queued},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	reg("inst-a", "inproc:a", 5)
	reg("inst-b", "inproc:b", 0)

	ref, n, err := tbl.Resolve("svc/e")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replicas = %d, want 2", n)
	}
	// b is less loaded: its endpoint must lead the merged profile list.
	if len(ref.Endpoints) != 2 || ref.Endpoints[0] != "inproc:b" || ref.Endpoints[1] != "inproc:a" {
		t.Fatalf("merged endpoints = %v, want [inproc:b inproc:a]", ref.Endpoints)
	}

	// A heartbeat carrying new load re-ranks: a drops to zero queue,
	// b reports queueing — a now leads.
	reg("inst-a", "inproc:a", 0)
	reg("inst-b", "inproc:b", 9)
	ref, _, err = tbl.Resolve("svc/e")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Endpoints[0] != "inproc:a" {
		t.Fatalf("after re-rank, endpoints = %v, want inproc:a first", ref.Endpoints)
	}
}

func TestTableDrainingRanksLast(t *testing.T) {
	tbl, _ := newFakeTable()
	for _, r := range []Registration{
		{Instance: "inst-a", TTL: time.Second,
			Names: []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:a")}},
			Load:  LoadReport{Draining: true}},
		{Instance: "inst-b", TTL: time.Second,
			Names: []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:b")}},
			Load:  LoadReport{AdmissionQueued: 100, AdmissionRunning: 100}},
	} {
		if err := tbl.Register(r); err != nil {
			t.Fatal(err)
		}
	}
	ref, _, err := tbl.Resolve("svc/e")
	if err != nil {
		t.Fatal(err)
	}
	// However loaded, a live replica outranks a draining one.
	if ref.Endpoints[0] != "inproc:b" {
		t.Fatalf("endpoints = %v, want the non-draining replica first", ref.Endpoints)
	}
}

func TestTableSweepExpiresMissedHeartbeats(t *testing.T) {
	tbl, clk := newFakeTable()
	r := Registration{Instance: "inst-a", TTL: 100 * time.Millisecond,
		Names: []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:a")}}}
	if err := tbl.Register(r); err != nil {
		t.Fatal(err)
	}

	// Renewals push the deadline out.
	clk.advance(80 * time.Millisecond)
	if err := tbl.Register(r); err != nil {
		t.Fatal(err)
	}
	clk.advance(80 * time.Millisecond)
	if n := tbl.Sweep(clk.now()); n != 0 {
		t.Fatalf("sweep expired %d replicas despite renewal", n)
	}
	if _, _, err := tbl.Resolve("svc/e"); err != nil {
		t.Fatalf("resolve after renewal: %v", err)
	}

	// A missed heartbeat ages the replica out.
	clk.advance(200 * time.Millisecond)
	if n := tbl.Sweep(clk.now()); n != 1 {
		t.Fatalf("sweep expired %d replicas, want 1", n)
	}
	if _, _, err := tbl.Resolve("svc/e"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("resolve after expiry: %v, want ErrNotFound", err)
	}
	if names, reps := tbl.Size(); names != 0 || reps != 0 {
		t.Fatalf("table still holds %d names / %d replicas", names, reps)
	}
}

func TestTableHeartbeatDropsAbandonedNames(t *testing.T) {
	tbl, _ := newFakeTable()
	if err := tbl.Register(Registration{Instance: "inst-a", TTL: time.Second,
		Names: []NameRef{
			{Name: "svc/x", Ref: convRef("x", "inproc:a")},
			{Name: "svc/y", Ref: convRef("y", "inproc:a")},
		}}); err != nil {
		t.Fatal(err)
	}
	// The next heartbeat no longer carries svc/y: it must leave
	// immediately, not age out.
	if err := tbl.Register(Registration{Instance: "inst-a", TTL: time.Second,
		Names: []NameRef{{Name: "svc/x", Ref: convRef("x", "inproc:a")}}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tbl.Resolve("svc/y"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("abandoned name still resolves: %v", err)
	}
	if _, _, err := tbl.Resolve("svc/x"); err != nil {
		t.Fatalf("kept name lost: %v", err)
	}
}

func TestTableDeregisterIsImmediateAndIdempotent(t *testing.T) {
	tbl, _ := newFakeTable()
	for _, inst := range []string{"inst-a", "inst-b"} {
		if err := tbl.Register(Registration{Instance: inst, TTL: time.Hour,
			Names: []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:"+inst)}}}); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Deregister("inst-a")
	ref, n, err := tbl.Resolve("svc/e")
	if err != nil || n != 1 || len(ref.Endpoints) != 1 || ref.Endpoints[0] != "inproc:inst-b" {
		t.Fatalf("after deregister: ref=%v n=%d err=%v", ref, n, err)
	}
	tbl.Deregister("inst-a") // repeat must be a no-op
	tbl.Deregister("inst-b")
	if _, _, err := tbl.Resolve("svc/e"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("resolve after full deregister: %v", err)
	}
}

func TestTableSPMDResolvePicksBestWithoutMerging(t *testing.T) {
	tbl, _ := newFakeTable()
	spmdRef := func(eps ...string) *ior.Ref {
		return &ior.Ref{TypeID: "IDL:sim:1.0", Key: "sim", Threads: len(eps), Endpoints: eps}
	}
	for _, r := range []Registration{
		{Instance: "inst-a", TTL: time.Second,
			Names: []NameRef{{Name: "svc/sim", Ref: spmdRef("inproc:a0", "inproc:a1")}},
			Load:  LoadReport{SPMDLeases: 40}},
		{Instance: "inst-b", TTL: time.Second,
			Names: []NameRef{{Name: "svc/sim", Ref: spmdRef("inproc:b0", "inproc:b1")}}},
	} {
		if err := tbl.Register(r); err != nil {
			t.Fatal(err)
		}
	}
	ref, n, err := tbl.Resolve("svc/sim")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replicas = %d, want 2", n)
	}
	// SPMD profiles pin threads to ports: no merging, the best-ranked
	// replica's reference comes back whole.
	if len(ref.Endpoints) != 2 || ref.Endpoints[0] != "inproc:b0" || ref.Endpoints[1] != "inproc:b1" {
		t.Fatalf("SPMD resolve merged endpoints: %v", ref.Endpoints)
	}
}

func TestTableRejectsBadRegistrations(t *testing.T) {
	tbl, _ := newFakeTable()
	if err := tbl.Register(Registration{TTL: time.Second,
		Names: []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:a")}}}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("empty instance accepted: %v", err)
	}
	if err := tbl.Register(Registration{Instance: "i", TTL: time.Second,
		Names: []NameRef{{Name: "", Ref: convRef("e", "inproc:a")}}}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("empty name accepted: %v", err)
	}
	if err := tbl.Register(Registration{Instance: "i", TTL: time.Second,
		Names: []NameRef{{Name: "svc/e", Ref: &ior.Ref{}}}}); err == nil {
		t.Fatal("invalid ref accepted")
	}
}

// newWireFixture starts an agent service over inproc and returns a
// client for it.
func newWireFixture(t *testing.T) (*Table, *Client) {
	t.Helper()
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())
	tbl := NewTable()
	srv := orb.NewServer(reg)
	Serve(srv, tbl)
	ep, err := srv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	oc := orb.NewClient(reg, orb.WithDefaultDeadline(2*time.Second))
	t.Cleanup(func() { oc.Close(); srv.Close() })
	return tbl, NewClient(oc, ep)
}

func TestAgentWireRoundTrip(t *testing.T) {
	_, ac := newWireFixture(t)
	ctx := context.Background()

	for _, r := range []Registration{
		{Instance: "inst-a", TTL: time.Minute,
			Names: []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:a")}},
			Load:  LoadReport{AdmissionRunning: 2, AdmissionQueued: 7, SPMDLeases: 1}},
		{Instance: "inst-b", TTL: time.Minute,
			Names: []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:b")}}},
	} {
		if err := ac.Register(ctx, r); err != nil {
			t.Fatal(err)
		}
	}

	ref, n, err := ac.Resolve(ctx, "svc/e")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(ref.Endpoints) != 2 || ref.Endpoints[0] != "inproc:b" {
		t.Fatalf("resolve = %v (n=%d), want b-first merge of 2", ref.Endpoints, n)
	}

	rows, err := ac.List(ctx, "svc/")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Name != "svc/e" || len(rows[0].Replicas) != 2 {
		t.Fatalf("list = %+v", rows)
	}
	best := rows[0].Replicas[0]
	if best.Instance != "inst-b" || best.Score != 0 {
		t.Fatalf("best replica = %+v, want idle inst-b", best)
	}
	if rows[0].Replicas[1].Score <= 0 {
		t.Fatalf("loaded replica scored %v, want > 0", rows[0].Replicas[1].Score)
	}

	if err := ac.Deregister(ctx, "inst-a"); err != nil {
		t.Fatal(err)
	}
	if err := ac.Deregister(ctx, "inst-b"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ac.Resolve(ctx, "svc/e"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("resolve after deregister = %v, want ErrNotFound", err)
	}
}

func TestRegistrarHeartbeatsAndStops(t *testing.T) {
	tbl, ac := newWireFixture(t)
	r := NewRegistrar(RegistrarConfig{
		Client:   ac,
		Interval: 20 * time.Millisecond,
		Load:     func() LoadReport { return LoadReport{Inflight: 3} },
	})
	r.Add("svc/e", convRef("e", "inproc:a"))
	r.Start()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, reps := tbl.Size(); reps == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("registration never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	rows := tbl.List("svc/")
	if len(rows["svc/e"]) != 1 || rows["svc/e"][0].Score != 3 {
		t.Fatalf("registered replica = %+v, want inflight load 3", rows["svc/e"])
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := r.Stop(ctx); err != nil {
		t.Fatalf("stop: %v", err)
	}
	// Deregistration is synchronous: the table is empty the moment
	// Stop returns, no TTL wait.
	if names, reps := tbl.Size(); names != 0 || reps != 0 {
		t.Fatalf("table after Stop: %d names / %d replicas", names, reps)
	}
	if err := r.Stop(ctx); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

func TestResolverLadder(t *testing.T) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewInproc())

	// Agent with one row.
	tbl := NewTable()
	asrv := orb.NewServer(reg)
	Serve(asrv, tbl)
	aep, err := asrv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Register(Registration{Instance: "inst-a", TTL: time.Hour,
		Names: []NameRef{{Name: "svc/e", Ref: convRef("e", "inproc:a", "inproc:b")}}}); err != nil {
		t.Fatal(err)
	}

	// Naming fallback with a different (distinguishable) binding.
	nreg := naming.NewRegistry()
	if err := nreg.Bind("svc/e", convRef("e", "inproc:static"), false); err != nil {
		t.Fatal(err)
	}
	nsrv := orb.NewServer(reg)
	naming.Serve(nsrv, nreg)
	nep, err := nsrv.Listen("inproc:*")
	if err != nil {
		t.Fatal(err)
	}
	defer nsrv.Close()

	oc := orb.NewClient(reg, orb.WithDefaultDeadline(time.Second))
	defer oc.Close()
	res := NewResolver(ResolverConfig{
		Agent:      NewClient(oc, aep),
		Naming:     naming.NewClient(oc, nep),
		FreshFor:   50 * time.Millisecond,
		RPCTimeout: 200 * time.Millisecond,
	})
	ctx := context.Background()

	// Rung 2: the agent answers with its 2-endpoint merge.
	ref, err := res.RefFor(ctx, "svc/e")
	if err != nil || len(ref.Endpoints) != 2 {
		t.Fatalf("agent rung: %v, %v", ref, err)
	}

	// Rung 1: within FreshFor the cache answers even with the agent
	// gone.
	asrv.Close()
	ref, err = res.RefFor(ctx, "svc/e")
	if err != nil || len(ref.Endpoints) != 2 {
		t.Fatalf("fresh-cache rung: %v, %v", ref, err)
	}

	// Rung 3: past FreshFor the agent is consulted, fails, and the
	// stale cache keeps the client going... but this resolver also has
	// a naming fallback, which outranks nothing — stale cache is only
	// used when the agent errs. Per the ladder, an unreachable agent
	// with a cached answer serves the stale cache.
	time.Sleep(60 * time.Millisecond)
	ref, err = res.RefFor(ctx, "svc/e")
	if err != nil || len(ref.Endpoints) != 2 {
		t.Fatalf("stale-cache rung: %v, %v", ref, err)
	}

	// Rung 4: with no cache at all, the static naming registry is the
	// last rung.
	res.Invalidate("svc/e")
	ref, err = res.RefFor(ctx, "svc/e")
	if err != nil || len(ref.Endpoints) != 1 || ref.Endpoints[0] != "inproc:static" {
		t.Fatalf("naming rung: %v, %v", ref, err)
	}

	// Unknown names miss every rung.
	if _, err := res.RefFor(ctx, "svc/none"); err == nil {
		t.Fatal("unknown name resolved")
	}
}

func TestLoadReportScoreOrdersSensibly(t *testing.T) {
	idle := LoadReport{}
	queued := LoadReport{AdmissionQueued: 3}
	busy := LoadReport{AdmissionRunning: 3}
	draining := LoadReport{Draining: true}
	if !(idle.Score() < busy.Score() && busy.Score() < queued.Score()) {
		t.Fatalf("score order: idle=%v busy=%v queued=%v", idle.Score(), busy.Score(), queued.Score())
	}
	if draining.Score() < queued.Score() {
		t.Fatalf("draining (%v) must outrank any load (%v)", draining.Score(), queued.Score())
	}
}
