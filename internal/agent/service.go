package agent

import (
	"errors"
	"log/slog"
	"sort"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/ior"
	"pardis/internal/orb"
	"pardis/internal/telemetry"
)

// Wire layout notes: the agent's operations are IDL-style CDR bodies,
// like the naming service's. A LoadReport travels as seven ULongs and
// a boolean in declaration order; a Registration as instance string,
// TTL in microseconds (ULongLong), the LoadReport, then a ULong-
// counted sequence of (name string, stringified IOR) pairs.

func encodeLoad(e *cdr.Encoder, lr LoadReport) {
	e.PutULong(uint32(lr.AdmissionRunning))
	e.PutULong(uint32(lr.AdmissionQueued))
	e.PutULong(uint32(lr.MaxConcurrent))
	e.PutULong(uint32(lr.MaxQueue))
	e.PutULong(uint32(lr.Inflight))
	e.PutULong(uint32(lr.SPMDLeases))
	e.PutULong(uint32(lr.BreakersOpen))
	e.PutBoolean(lr.Draining)
}

func decodeLoad(d *cdr.Decoder) (LoadReport, error) {
	var lr LoadReport
	fields := []*int{
		&lr.AdmissionRunning, &lr.AdmissionQueued,
		&lr.MaxConcurrent, &lr.MaxQueue,
		&lr.Inflight, &lr.SPMDLeases, &lr.BreakersOpen,
	}
	for _, f := range fields {
		v, err := d.ULong()
		if err != nil {
			return lr, err
		}
		*f = int(v)
	}
	var err error
	lr.Draining, err = d.Boolean()
	return lr, err
}

func encodeRegistration(e *cdr.Encoder, r Registration) {
	e.PutString(r.Instance)
	e.PutULongLong(uint64(r.TTL / time.Microsecond))
	encodeLoad(e, r.Load)
	e.PutULong(uint32(len(r.Names)))
	for _, nr := range r.Names {
		e.PutString(nr.Name)
		e.PutString(nr.Ref.Stringify())
	}
}

func decodeRegistration(d *cdr.Decoder) (Registration, error) {
	var r Registration
	var err error
	if r.Instance, err = d.String(); err != nil {
		return r, err
	}
	ttlMicros, err := d.ULongLong()
	if err != nil {
		return r, err
	}
	r.TTL = time.Duration(ttlMicros) * time.Microsecond
	if r.Load, err = decodeLoad(d); err != nil {
		return r, err
	}
	n, err := d.ULong()
	if err != nil {
		return r, err
	}
	r.Names = make([]NameRef, 0, n)
	for i := uint32(0); i < n; i++ {
		name, err := d.String()
		if err != nil {
			return r, err
		}
		iorStr, err := d.String()
		if err != nil {
			return r, err
		}
		ref, err := ior.Parse(iorStr)
		if err != nil {
			return r, err
		}
		r.Names = append(r.Names, NameRef{Name: name, Ref: ref})
	}
	return r, nil
}

// Serve installs the agent service on an ORB server under ServiceKey,
// backed by t.
func Serve(srv *orb.Server, t *Table) {
	srv.Handle(ServiceKey, func(in *orb.Incoming) {
		telemetry.Default.Counter("pardis_agent_requests_total",
			"op", in.Header.Operation).Inc()
		d := in.Decoder()
		switch in.Header.Operation {
		case "register":
			r, err := decodeRegistration(d)
			if err != nil {
				_ = in.ReplySystemException("MARSHAL", "bad register body: "+err.Error())
				return
			}
			if err := t.Register(r); err != nil {
				replyUserError(in, err)
				return
			}
			if telemetry.LogEnabled(slog.LevelDebug) {
				telemetry.Logger().Debug("agent: heartbeat",
					"instance", r.Instance, "names", len(r.Names), "ttl", r.TTL)
			}
			_ = in.Reply(giop.ReplyOK, nil)
		case "deregister":
			instance, err := d.String()
			if err != nil {
				_ = in.ReplySystemException("MARSHAL", "bad deregister body")
				return
			}
			t.Deregister(instance)
			_ = in.Reply(giop.ReplyOK, nil)
		case "resolve":
			name, err := d.String()
			if err != nil {
				_ = in.ReplySystemException("MARSHAL", "bad resolve body")
				return
			}
			ref, replicas, err := t.Resolve(name)
			if err != nil {
				replyUserError(in, err)
				return
			}
			_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) {
				e.PutString(ref.Stringify())
				e.PutULong(uint32(replicas))
			})
		case "list":
			prefix, err := d.String()
			if err != nil {
				_ = in.ReplySystemException("MARSHAL", "bad list body")
				return
			}
			rows := t.List(prefix)
			names := make([]string, 0, len(rows))
			for name := range rows {
				names = append(names, name)
			}
			sort.Strings(names)
			_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) {
				e.PutULong(uint32(len(names)))
				for _, name := range names {
					e.PutString(name)
					reps := rows[name]
					e.PutULong(uint32(len(reps)))
					for _, rep := range reps {
						e.PutString(rep.Instance)
						e.PutString(rep.Ref.Stringify())
						e.PutDouble(rep.Score)
						e.PutBoolean(rep.Draining)
						e.PutULongLong(uint64(rep.SinceSeen / time.Microsecond))
					}
				}
			})
		default:
			_ = in.ReplySystemException("BAD_OPERATION", in.Header.Operation)
		}
	})
}

// replyUserError maps table errors onto user exceptions with a
// machine-readable code string (the naming service's convention).
func replyUserError(in *orb.Incoming, err error) {
	code := "UNKNOWN"
	if errors.Is(err, ErrNotFound) {
		code = "NotFound"
	}
	msg := err.Error()
	_ = in.Reply(giop.ReplyUserException, func(e *cdr.Encoder) {
		e.PutString(code)
		e.PutString(msg)
	})
}
