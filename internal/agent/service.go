package agent

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"time"

	"pardis/internal/cdr"
	"pardis/internal/giop"
	"pardis/internal/ior"
	"pardis/internal/orb"
	"pardis/internal/telemetry"
)

// Wire layout notes: the agent's operations are IDL-style CDR bodies,
// like the naming service's. A LoadReport travels as seven ULongs and
// a boolean in declaration order; a Registration as instance string,
// TTL in microseconds (ULongLong), the LoadReport, a ULong-counted
// sequence of (name string, stringified IOR) pairs, then the metrics
// digest: requests/errors/spmd-leases-expired/spmd-shed (ULongLongs),
// latency sum (Double), a ULong-counted bucket vector (ULongLongs),
// and a ULong-counted exemplar sequence of (bucket ULong, value
// Double, trace id ULongLong, capture time in unix microseconds
// ULongLong).

func encodeLoad(e *cdr.Encoder, lr LoadReport) {
	e.PutULong(uint32(lr.AdmissionRunning))
	e.PutULong(uint32(lr.AdmissionQueued))
	e.PutULong(uint32(lr.MaxConcurrent))
	e.PutULong(uint32(lr.MaxQueue))
	e.PutULong(uint32(lr.Inflight))
	e.PutULong(uint32(lr.SPMDLeases))
	e.PutULong(uint32(lr.BreakersOpen))
	e.PutBoolean(lr.Draining)
}

func decodeLoad(d *cdr.Decoder) (LoadReport, error) {
	var lr LoadReport
	fields := []*int{
		&lr.AdmissionRunning, &lr.AdmissionQueued,
		&lr.MaxConcurrent, &lr.MaxQueue,
		&lr.Inflight, &lr.SPMDLeases, &lr.BreakersOpen,
	}
	for _, f := range fields {
		v, err := d.ULong()
		if err != nil {
			return lr, err
		}
		*f = int(v)
	}
	var err error
	lr.Draining, err = d.Boolean()
	return lr, err
}

func encodeDigest(e *cdr.Encoder, d MetricsDigest) {
	e.PutULongLong(d.Requests)
	e.PutULongLong(d.Errors)
	e.PutULongLong(d.SPMDLeasesExpired)
	e.PutULongLong(d.SPMDShed)
	e.PutDouble(d.LatencySum)
	e.PutULong(uint32(len(d.Buckets)))
	for _, c := range d.Buckets {
		e.PutULongLong(c)
	}
	e.PutULong(uint32(len(d.Exemplars)))
	for _, ex := range d.Exemplars {
		e.PutULong(uint32(ex.Bucket))
		e.PutDouble(ex.Value)
		e.PutULongLong(ex.TraceID)
		e.PutULongLong(uint64(ex.When.UnixMicro()))
	}
}

func decodeDigest(d *cdr.Decoder) (MetricsDigest, error) {
	var md MetricsDigest
	var err error
	for _, f := range []*uint64{&md.Requests, &md.Errors, &md.SPMDLeasesExpired, &md.SPMDShed} {
		if *f, err = d.ULongLong(); err != nil {
			return md, err
		}
	}
	if md.LatencySum, err = d.Double(); err != nil {
		return md, err
	}
	n, err := d.ULong()
	if err != nil {
		return md, err
	}
	// A digest's bucket vector is DefaultLatencyBuckets+Inf or empty;
	// cap defensively so a corrupt count cannot balloon the alloc.
	if n > 1024 {
		return md, fmt.Errorf("%w: digest bucket count %d", ErrProtocol, n)
	}
	if n > 0 {
		md.Buckets = make([]uint64, n)
		for i := range md.Buckets {
			if md.Buckets[i], err = d.ULongLong(); err != nil {
				return md, err
			}
		}
	}
	ne, err := d.ULong()
	if err != nil {
		return md, err
	}
	if ne > 1024 {
		return md, fmt.Errorf("%w: digest exemplar count %d", ErrProtocol, ne)
	}
	for i := uint32(0); i < ne; i++ {
		var ex TailExemplar
		b, err := d.ULong()
		if err != nil {
			return md, err
		}
		ex.Bucket = int(b)
		if ex.Value, err = d.Double(); err != nil {
			return md, err
		}
		if ex.TraceID, err = d.ULongLong(); err != nil {
			return md, err
		}
		micros, err := d.ULongLong()
		if err != nil {
			return md, err
		}
		ex.When = time.UnixMicro(int64(micros))
		md.Exemplars = append(md.Exemplars, ex)
	}
	return md, nil
}

// A SyncSnapshot travels as a ULong-counted entry sequence — name,
// instance, stringified IOR, LoadReport, renewal age and TTL in
// microseconds (ULongLongs) — then a ULong-counted tombstone sequence
// of (instance, age, ttl). Ages are relative to the sender's clock at
// snapshot time, so the merge is wall-clock-skew-free.

// syncMaxRows caps decoded snapshot sequences so a corrupt count
// cannot balloon the alloc.
const syncMaxRows = 1 << 20

// ageMicros rounds an age UP to whole microseconds: the wire must only
// ever make a row look older, never newer, or a snapshot bounced
// between two agents would gain a sliver of life per round trip.
func ageMicros(d time.Duration) uint64 {
	return uint64((d + time.Microsecond - 1) / time.Microsecond)
}

func encodeSnapshot(e *cdr.Encoder, s SyncSnapshot) {
	e.PutULong(uint32(len(s.Entries)))
	for _, en := range s.Entries {
		e.PutString(en.Name)
		e.PutString(en.Instance)
		e.PutString(en.Ref.Stringify())
		encodeLoad(e, en.Load)
		e.PutULongLong(ageMicros(en.Age))
		e.PutULongLong(uint64(en.TTL / time.Microsecond))
	}
	e.PutULong(uint32(len(s.Tombs)))
	for _, tb := range s.Tombs {
		e.PutString(tb.Instance)
		e.PutULongLong(ageMicros(tb.Age))
		e.PutULongLong(uint64(tb.TTL / time.Microsecond))
	}
}

func decodeSnapshot(d *cdr.Decoder) (SyncSnapshot, error) {
	var s SyncSnapshot
	n, err := d.ULong()
	if err != nil {
		return s, err
	}
	if n > syncMaxRows {
		return s, fmt.Errorf("%w: sync entry count %d", ErrProtocol, n)
	}
	for i := uint32(0); i < n; i++ {
		var en SyncEntry
		if en.Name, err = d.String(); err != nil {
			return s, err
		}
		if en.Instance, err = d.String(); err != nil {
			return s, err
		}
		iorStr, err := d.String()
		if err != nil {
			return s, err
		}
		if en.Ref, err = ior.Parse(iorStr); err != nil {
			return s, err
		}
		if en.Load, err = decodeLoad(d); err != nil {
			return s, err
		}
		ageMicros, err := d.ULongLong()
		if err != nil {
			return s, err
		}
		en.Age = time.Duration(ageMicros) * time.Microsecond
		ttlMicros, err := d.ULongLong()
		if err != nil {
			return s, err
		}
		en.TTL = time.Duration(ttlMicros) * time.Microsecond
		s.Entries = append(s.Entries, en)
	}
	nt, err := d.ULong()
	if err != nil {
		return s, err
	}
	if nt > syncMaxRows {
		return s, fmt.Errorf("%w: sync tombstone count %d", ErrProtocol, nt)
	}
	for i := uint32(0); i < nt; i++ {
		var tb SyncTombstone
		if tb.Instance, err = d.String(); err != nil {
			return s, err
		}
		ageMicros, err := d.ULongLong()
		if err != nil {
			return s, err
		}
		tb.Age = time.Duration(ageMicros) * time.Microsecond
		ttlMicros, err := d.ULongLong()
		if err != nil {
			return s, err
		}
		tb.TTL = time.Duration(ttlMicros) * time.Microsecond
		s.Tombs = append(s.Tombs, tb)
	}
	return s, nil
}

func encodeRegistration(e *cdr.Encoder, r Registration) {
	e.PutString(r.Instance)
	e.PutULongLong(uint64(r.TTL / time.Microsecond))
	encodeLoad(e, r.Load)
	e.PutULong(uint32(len(r.Names)))
	for _, nr := range r.Names {
		e.PutString(nr.Name)
		e.PutString(nr.Ref.Stringify())
	}
	encodeDigest(e, r.Digest)
}

func decodeRegistration(d *cdr.Decoder) (Registration, error) {
	var r Registration
	var err error
	if r.Instance, err = d.String(); err != nil {
		return r, err
	}
	ttlMicros, err := d.ULongLong()
	if err != nil {
		return r, err
	}
	r.TTL = time.Duration(ttlMicros) * time.Microsecond
	if r.Load, err = decodeLoad(d); err != nil {
		return r, err
	}
	n, err := d.ULong()
	if err != nil {
		return r, err
	}
	r.Names = make([]NameRef, 0, n)
	for i := uint32(0); i < n; i++ {
		name, err := d.String()
		if err != nil {
			return r, err
		}
		iorStr, err := d.String()
		if err != nil {
			return r, err
		}
		ref, err := ior.Parse(iorStr)
		if err != nil {
			return r, err
		}
		r.Names = append(r.Names, NameRef{Name: name, Ref: ref})
	}
	if r.Digest, err = decodeDigest(d); err != nil {
		return r, err
	}
	return r, nil
}

// Serve installs the agent service on an ORB server under ServiceKey,
// backed by t.
func Serve(srv *orb.Server, t *Table) {
	srv.Handle(ServiceKey, func(in *orb.Incoming) {
		telemetry.Default.Counter("pardis_agent_requests_total",
			"op", in.Header.Operation).Inc()
		d := in.Decoder()
		switch in.Header.Operation {
		case "register":
			r, err := decodeRegistration(d)
			if err != nil {
				_ = in.ReplySystemException("MARSHAL", "bad register body: "+err.Error())
				return
			}
			if err := t.Register(r); err != nil {
				replyUserError(in, err)
				return
			}
			if telemetry.LogEnabled(slog.LevelDebug) {
				telemetry.Logger().Debug("agent: heartbeat",
					"instance", r.Instance, "names", len(r.Names), "ttl", r.TTL)
			}
			_ = in.Reply(giop.ReplyOK, nil)
		case "deregister":
			instance, err := d.String()
			if err != nil {
				_ = in.ReplySystemException("MARSHAL", "bad deregister body")
				return
			}
			t.Deregister(instance)
			_ = in.Reply(giop.ReplyOK, nil)
		case "resolve":
			name, err := d.String()
			if err != nil {
				_ = in.ReplySystemException("MARSHAL", "bad resolve body")
				return
			}
			ref, replicas, err := t.Resolve(name)
			if err != nil {
				replyUserError(in, err)
				return
			}
			_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) {
				e.PutString(ref.Stringify())
				e.PutULong(uint32(replicas))
			})
		case "sync":
			// Peer-sync exchange: fold the caller's snapshot in, answer
			// with ours taken after the merge, so one round converges
			// both sides on the union.
			remote, err := decodeSnapshot(d)
			if err != nil {
				_ = in.ReplySystemException("MARSHAL", "bad sync body: "+err.Error())
				return
			}
			adopted, removed := t.Merge(remote)
			if adopted > 0 {
				peerAdopted.Add(uint64(adopted))
			}
			if removed > 0 {
				peerRemoved.Add(uint64(removed))
			}
			local := t.Snapshot()
			_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) {
				encodeSnapshot(e, local)
			})
		case "list":
			prefix, err := d.String()
			if err != nil {
				_ = in.ReplySystemException("MARSHAL", "bad list body")
				return
			}
			rows := t.List(prefix)
			names := make([]string, 0, len(rows))
			for name := range rows {
				names = append(names, name)
			}
			sort.Strings(names)
			_ = in.Reply(giop.ReplyOK, func(e *cdr.Encoder) {
				e.PutULong(uint32(len(names)))
				for _, name := range names {
					e.PutString(name)
					reps := rows[name]
					e.PutULong(uint32(len(reps)))
					for _, rep := range reps {
						e.PutString(rep.Instance)
						e.PutString(rep.Ref.Stringify())
						e.PutDouble(rep.Score)
						e.PutBoolean(rep.Draining)
						e.PutULongLong(uint64(rep.SinceSeen / time.Microsecond))
					}
				}
			})
		default:
			_ = in.ReplySystemException("BAD_OPERATION", in.Header.Operation)
		}
	})
}

// replyUserError maps table errors onto user exceptions with a
// machine-readable code string (the naming service's convention).
func replyUserError(in *orb.Incoming, err error) {
	code := "UNKNOWN"
	if errors.Is(err, ErrNotFound) {
		code = "NotFound"
	}
	msg := err.Error()
	_ = in.Reply(giop.ReplyUserException, func(e *cdr.Encoder) {
		e.PutString(code)
		e.PutString(msg)
	})
}
