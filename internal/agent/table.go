package agent

import (
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"pardis/internal/ior"
	"pardis/internal/telemetry"
)

// Interned once; the table is usually a process singleton and the
// gauges are accounted in deltas so several tables stay correct.
var (
	tableNames      = telemetry.Default.Gauge("pardis_agent_names")
	tableReplicas   = telemetry.Default.Gauge("pardis_agent_replicas")
	tableHeartbeats = telemetry.Default.Counter("pardis_agent_heartbeats_total")
	tableExpired    = telemetry.Default.Counter("pardis_agent_replicas_expired_total")
	tableDeregs     = telemetry.Default.Counter("pardis_agent_deregistrations_total")
	resolveHit      = telemetry.Default.Counter("pardis_agent_resolves_total", "result", "hit")
	resolveMiss     = telemetry.Default.Counter("pardis_agent_resolves_total", "result", "miss")
)

// NameRef is one name→reference pair carried by a registration.
type NameRef struct {
	Name string
	Ref  *ior.Ref
}

// Registration is one server instance's heartbeat payload: the names
// it serves, the TTL it asks for, and its current load.
type Registration struct {
	// Instance uniquely identifies the registering server process;
	// re-registrations under the same instance replace its previous
	// entries (and a deregistration removes them all at once).
	Instance string
	// TTL is how long the registration stays live without a renewal.
	// The registrar derives it from its heartbeat interval (TTLFactor
	// x interval); the table clamps unreasonable values.
	TTL time.Duration
	// Names lists the objects this instance serves.
	Names []NameRef
	// Load is the instance's point-in-time load signal.
	Load LoadReport
	// Digest is the instance's cumulative metrics digest (see
	// MetricsDigest); a zero digest is valid and simply yields empty
	// fleet rows.
	Digest MetricsDigest
}

// replica is one instance's live registration of one name. Alongside
// the load signal it keeps the two most recent metrics digests so the
// fleet view can difference them into rates.
type replica struct {
	instance string
	ref      *ior.Ref
	load     LoadReport
	lastSeen time.Time
	deadline time.Time

	digest   MetricsDigest
	digestAt time.Time
	prev     MetricsDigest
	prevAt   time.Time
}

// ReplicaInfo is an exported snapshot of one replica, for list/debug.
type ReplicaInfo struct {
	Instance  string
	Ref       *ior.Ref
	Score     float64
	Draining  bool
	SinceSeen time.Duration
}

// MinTTL floors the per-registration TTL so a misconfigured registrar
// cannot flap its replicas in and out of the table.
const MinTTL = 50 * time.Millisecond

// Table is the agent's weighted replica table: per object name, the
// set of live registrations ranked by load. All state is soft — it
// exists only between one heartbeat and the next TTL.
type Table struct {
	mu    sync.Mutex
	names map[string]map[string]*replica // name → instance → replica
	now   func() time.Time               // test seam
}

// NewTable returns an empty replica table.
func NewTable() *Table {
	return &Table{names: make(map[string]map[string]*replica), now: time.Now}
}

// Register upserts one instance's registration: every carried name
// gains (or renews) a replica owned by the instance, and names the
// instance previously registered but no longer carries are dropped.
// Register doubles as the heartbeat — the paths are deliberately the
// same so an agent restart needs nothing but the next heartbeat to
// rebuild the row.
func (t *Table) Register(r Registration) error {
	if r.Instance == "" {
		return fmt.Errorf("%w: empty instance", ErrProtocol)
	}
	ttl := r.TTL
	if ttl < MinTTL {
		ttl = MinTTL
	}
	for _, nr := range r.Names {
		if nr.Name == "" {
			return fmt.Errorf("%w: empty name in registration", ErrProtocol)
		}
		if err := nr.Ref.Validate(); err != nil {
			return err
		}
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	carried := make(map[string]bool, len(r.Names))
	for _, nr := range r.Names {
		carried[nr.Name] = true
		reps := t.names[nr.Name]
		if reps == nil {
			reps = make(map[string]*replica)
			t.names[nr.Name] = reps
			tableNames.Inc()
		}
		old := reps[r.Instance]
		if old == nil {
			tableReplicas.Inc()
		}
		rep := &replica{
			instance: r.Instance,
			ref:      nr.Ref,
			load:     r.Load,
			lastSeen: now,
			deadline: now.Add(ttl),
			digest:   r.Digest,
			digestAt: now,
		}
		if old != nil {
			// Shift the previous digest down so Fleet can difference
			// consecutive heartbeats into a rate window.
			rep.prev, rep.prevAt = old.digest, old.digestAt
		}
		reps[r.Instance] = rep
	}
	// Names the instance stopped carrying (object unexported, drain
	// of one object) leave immediately rather than aging out.
	for name, reps := range t.names {
		if carried[name] {
			continue
		}
		if _, had := reps[r.Instance]; had {
			t.removeLocked(name, r.Instance)
		}
	}
	tableHeartbeats.Inc()
	return nil
}

// Deregister removes every replica owned by instance — the graceful
// path, taken by a draining server so no stale registration outlives
// it. Unknown instances are a no-op: deregistration must be safe to
// repeat.
func (t *Table) Deregister(instance string) {
	t.mu.Lock()
	n := 0
	for name, reps := range t.names {
		if _, had := reps[instance]; had {
			t.removeLocked(name, instance)
			n++
		}
	}
	t.mu.Unlock()
	if n > 0 {
		tableDeregs.Inc()
		if telemetry.LogEnabled(slog.LevelInfo) {
			telemetry.Logger().Info("agent: instance deregistered",
				"instance", instance, "names", n)
		}
	}
}

// removeLocked drops one replica and, when it was the last, its name
// row. Caller holds t.mu.
func (t *Table) removeLocked(name, instance string) {
	reps := t.names[name]
	delete(reps, instance)
	tableReplicas.Dec()
	if len(reps) == 0 {
		delete(t.names, name)
		tableNames.Dec()
	}
}

// Sweep expires every replica whose TTL has lapsed — the crash path:
// a dead server stops heartbeating and its replicas age out of every
// row they were in. Returns the number of replicas expired.
func (t *Table) Sweep(now time.Time) int {
	n := 0
	t.mu.Lock()
	for name, reps := range t.names {
		for instance, rep := range reps {
			if now.Before(rep.deadline) {
				continue
			}
			t.removeLocked(name, instance)
			n++
		}
	}
	t.mu.Unlock()
	if n > 0 {
		tableExpired.Add(uint64(n))
		if telemetry.LogEnabled(slog.LevelInfo) {
			telemetry.Logger().Info("agent: replicas expired", "count", n)
		}
	}
	return n
}

// StartSweeper runs Sweep on a ticker until the returned stop
// function is called. The cadence is a quarter of the smallest TTL
// the agent expects (callers pass their heartbeat interval).
func (t *Table) StartSweeper(interval time.Duration) (stop func()) {
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				t.Sweep(time.Now())
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// ranked returns name's live replicas sorted best-first (score, then
// instance for determinism). Caller holds t.mu.
func (t *Table) ranked(name string, now time.Time) []*replica {
	reps := t.names[name]
	if len(reps) == 0 {
		return nil
	}
	out := make([]*replica, 0, len(reps))
	for _, rep := range reps {
		if now.Before(rep.deadline) {
			out = append(out, rep)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].load.Score(), out[j].load.Score()
		if si != sj {
			return si < sj
		}
		return out[i].instance < out[j].instance
	})
	return out
}

// Resolve answers a client's lookup with a load-ranked reference and
// the number of live replicas behind it.
//
// Conventional (single-thread) replicas merge into one multi-profile
// reference: the endpoints of every live replica, best-ranked first,
// exactly the replica profile list InvokeRef's failover chain walks.
// SPMD replicas pin each computing thread to its own port, so their
// profiles are not interchangeable — Resolve returns the best-ranked
// replica's full reference and failover happens by re-resolving.
func (t *Table) Resolve(name string) (*ior.Ref, int, error) {
	now := t.now()
	t.mu.Lock()
	reps := t.ranked(name, now)
	if len(reps) == 0 {
		t.mu.Unlock()
		resolveMiss.Inc()
		return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	best := reps[0]
	merged := *best.ref
	if !best.ref.IsSPMD() {
		seen := make(map[string]bool, len(reps))
		eps := make([]string, 0, len(reps))
		for _, rep := range reps {
			if rep.ref.IsSPMD() {
				continue // a mixed row merges only conventional profiles
			}
			for _, ep := range rep.ref.Endpoints {
				if !seen[ep] {
					seen[ep] = true
					eps = append(eps, ep)
				}
			}
		}
		merged.Endpoints = eps
	}
	n := len(reps)
	t.mu.Unlock()
	resolveHit.Inc()
	return &merged, n, nil
}

// List returns a snapshot of the table's rows with the given name
// prefix: name → replicas, best-ranked first.
func (t *Table) List(prefix string) map[string][]ReplicaInfo {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string][]ReplicaInfo)
	for name := range t.names {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		reps := t.ranked(name, now)
		infos := make([]ReplicaInfo, 0, len(reps))
		for _, rep := range reps {
			infos = append(infos, ReplicaInfo{
				Instance:  rep.instance,
				Ref:       rep.ref,
				Score:     rep.load.Score(),
				Draining:  rep.load.Draining,
				SinceSeen: now.Sub(rep.lastSeen),
			})
		}
		if len(infos) > 0 {
			out[name] = infos
		}
	}
	return out
}

// Size reports the table's row and replica counts.
func (t *Table) Size() (names, replicas int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, reps := range t.names {
		replicas += len(reps)
	}
	return len(t.names), replicas
}
