package agent

import (
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"pardis/internal/ior"
	"pardis/internal/telemetry"
)

// Interned once; the table is usually a process singleton and the
// gauges are accounted in deltas so several tables stay correct.
var (
	tableNames      = telemetry.Default.Gauge("pardis_agent_names")
	tableReplicas   = telemetry.Default.Gauge("pardis_agent_replicas")
	tableHeartbeats = telemetry.Default.Counter("pardis_agent_heartbeats_total")
	tableExpired    = telemetry.Default.Counter("pardis_agent_replicas_expired_total")
	tableDeregs     = telemetry.Default.Counter("pardis_agent_deregistrations_total")
	resolveHit      = telemetry.Default.Counter("pardis_agent_resolves_total", "result", "hit")
	resolveMiss     = telemetry.Default.Counter("pardis_agent_resolves_total", "result", "miss")
)

// NameRef is one name→reference pair carried by a registration.
type NameRef struct {
	Name string
	Ref  *ior.Ref
}

// Registration is one server instance's heartbeat payload: the names
// it serves, the TTL it asks for, and its current load.
type Registration struct {
	// Instance uniquely identifies the registering server process;
	// re-registrations under the same instance replace its previous
	// entries (and a deregistration removes them all at once).
	Instance string
	// TTL is how long the registration stays live without a renewal.
	// The registrar derives it from its heartbeat interval (TTLFactor
	// x interval); the table clamps unreasonable values.
	TTL time.Duration
	// Names lists the objects this instance serves.
	Names []NameRef
	// Load is the instance's point-in-time load signal.
	Load LoadReport
	// Digest is the instance's cumulative metrics digest (see
	// MetricsDigest); a zero digest is valid and simply yields empty
	// fleet rows.
	Digest MetricsDigest
}

// replica is one instance's live registration of one name. Alongside
// the load signal it keeps the two most recent metrics digests so the
// fleet view can difference them into rates.
type replica struct {
	instance string
	ref      *ior.Ref
	load     LoadReport
	lastSeen time.Time
	deadline time.Time

	digest   MetricsDigest
	digestAt time.Time
	prev     MetricsDigest
	prevAt   time.Time
}

// ReplicaInfo is an exported snapshot of one replica, for list/debug.
type ReplicaInfo struct {
	Instance  string
	Ref       *ior.Ref
	Score     float64
	Draining  bool
	SinceSeen time.Duration
}

// MinTTL floors the per-registration TTL so a misconfigured registrar
// cannot flap its replicas in and out of the table.
const MinTTL = 50 * time.Millisecond

// MinTombstoneTTL floors how long a deregistration tombstone is
// remembered, so a peer that held second-scale registrations cannot
// resurrect a drained instance after the tombstone of a
// millisecond-TTL test registration has been pruned.
const MinTombstoneTTL = time.Second

// tombstone remembers an explicit deregistration so peer-sync merges
// cannot resurrect the drained instance from a snapshot whose rows
// predate the drain. A tombstone loses to any strictly newer direct
// registration (a restarted instance under the same identity), and is
// pruned once every peer's copy of the old rows must have expired.
type tombstone struct {
	at  time.Time
	ttl time.Duration
}

// Table is the agent's weighted replica table: per object name, the
// set of live registrations ranked by load. All state is soft — it
// exists only between one heartbeat and the next TTL.
//
// With agent replication, several tables converge independently from
// the same heartbeat stream (registrars fan every beat out to all
// agents) and exchange snapshots at sweep cadence (Snapshot/Merge).
// Merge is newest-renewal-wins per (name, instance): `seen` holds the
// newest renewal this table knows per instance — a heartbeat is
// authoritative for the instance's whole name set, so a peer row
// older than it is a name the instance has since dropped — and
// `tombs` holds deregistration tombstones so a drained instance
// cannot be resurrected from a partitioned peer's stale rows.
type Table struct {
	mu    sync.Mutex
	names map[string]map[string]*replica // name → instance → replica
	seen  map[string]time.Time           // instance → newest renewal known
	tombs map[string]tombstone           // instance → deregistration marker
	now   func() time.Time               // test seam
}

// NewTable returns an empty replica table.
func NewTable() *Table {
	return &Table{
		names: make(map[string]map[string]*replica),
		seen:  make(map[string]time.Time),
		tombs: make(map[string]tombstone),
		now:   time.Now,
	}
}

// Register upserts one instance's registration: every carried name
// gains (or renews) a replica owned by the instance, and names the
// instance previously registered but no longer carries are dropped.
// Register doubles as the heartbeat — the paths are deliberately the
// same so an agent restart needs nothing but the next heartbeat to
// rebuild the row.
func (t *Table) Register(r Registration) error {
	if r.Instance == "" {
		return fmt.Errorf("%w: empty instance", ErrProtocol)
	}
	ttl := r.TTL
	if ttl < MinTTL {
		ttl = MinTTL
	}
	for _, nr := range r.Names {
		if nr.Name == "" {
			return fmt.Errorf("%w: empty name in registration", ErrProtocol)
		}
		if err := nr.Ref.Validate(); err != nil {
			return err
		}
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	// A direct registration is the instance itself speaking: it clears
	// any deregistration tombstone (restart under the same identity)
	// and advances the per-instance renewal high-water mark that
	// peer-sync merges compare against.
	delete(t.tombs, r.Instance)
	if now.After(t.seen[r.Instance]) {
		t.seen[r.Instance] = now
	}
	carried := make(map[string]bool, len(r.Names))
	for _, nr := range r.Names {
		carried[nr.Name] = true
		reps := t.names[nr.Name]
		if reps == nil {
			reps = make(map[string]*replica)
			t.names[nr.Name] = reps
			tableNames.Inc()
		}
		old := reps[r.Instance]
		if old == nil {
			tableReplicas.Inc()
		}
		rep := &replica{
			instance: r.Instance,
			ref:      nr.Ref,
			load:     r.Load,
			lastSeen: now,
			deadline: now.Add(ttl),
			digest:   r.Digest,
			digestAt: now,
		}
		if old != nil {
			// Shift the previous digest down so Fleet can difference
			// consecutive heartbeats into a rate window.
			rep.prev, rep.prevAt = old.digest, old.digestAt
		}
		reps[r.Instance] = rep
	}
	// Names the instance stopped carrying (object unexported, drain
	// of one object) leave immediately rather than aging out.
	for name, reps := range t.names {
		if carried[name] {
			continue
		}
		if _, had := reps[r.Instance]; had {
			t.removeLocked(name, r.Instance)
		}
	}
	tableHeartbeats.Inc()
	return nil
}

// Deregister removes every replica owned by instance — the graceful
// path, taken by a draining server so no stale registration outlives
// it. Unknown instances are a no-op: deregistration must be safe to
// repeat.
func (t *Table) Deregister(instance string) {
	t.mu.Lock()
	n := 0
	tombTTL := MinTombstoneTTL
	for name, reps := range t.names {
		if rep, had := reps[instance]; had {
			if ttl := 2 * rep.deadline.Sub(rep.lastSeen); ttl > tombTTL {
				tombTTL = ttl
			}
			t.removeLocked(name, instance)
			n++
		}
	}
	// Tombstone the instance (even when it held no rows here — a peer
	// may still hold some) so a subsequent peer-sync merge cannot
	// resurrect rows that predate the drain. The tombstone outlives
	// twice the instance's registration TTL: by then every peer's
	// stale copy has expired on its own.
	t.tombs[instance] = tombstone{at: t.now(), ttl: tombTTL}
	t.mu.Unlock()
	if n > 0 {
		tableDeregs.Inc()
		if telemetry.LogEnabled(slog.LevelInfo) {
			telemetry.Logger().Info("agent: instance deregistered",
				"instance", instance, "names", n)
		}
	}
}

// removeLocked drops one replica and, when it was the last, its name
// row. Caller holds t.mu.
func (t *Table) removeLocked(name, instance string) {
	reps := t.names[name]
	delete(reps, instance)
	tableReplicas.Dec()
	if len(reps) == 0 {
		delete(t.names, name)
		tableNames.Dec()
	}
}

// Sweep expires every replica whose TTL has lapsed — the crash path:
// a dead server stops heartbeating and its replicas age out of every
// row they were in. Returns the number of replicas expired.
func (t *Table) Sweep(now time.Time) int {
	n := 0
	t.mu.Lock()
	for name, reps := range t.names {
		for instance, rep := range reps {
			if now.Before(rep.deadline) {
				continue
			}
			t.removeLocked(name, instance)
			n++
		}
	}
	// Prune control metadata that can no longer matter: tombstones
	// past their own TTL, and renewal high-water marks for instances
	// with no live rows that have been silent long enough that any
	// peer row they could still veto has expired anyway.
	for instance, tb := range t.tombs {
		if !now.Before(tb.at.Add(tb.ttl)) {
			delete(t.tombs, instance)
		}
	}
	live := make(map[string]bool)
	for _, reps := range t.names {
		for instance := range reps {
			live[instance] = true
		}
	}
	for instance, at := range t.seen {
		if !live[instance] && now.Sub(at) > MinTombstoneTTL {
			delete(t.seen, instance)
		}
	}
	t.mu.Unlock()
	if n > 0 {
		tableExpired.Add(uint64(n))
		if telemetry.LogEnabled(slog.LevelInfo) {
			telemetry.Logger().Info("agent: replicas expired", "count", n)
		}
	}
	return n
}

// StartSweeper runs Sweep on a ticker until the returned stop
// function is called. The cadence is a quarter of the smallest TTL
// the agent expects (callers pass their heartbeat interval).
func (t *Table) StartSweeper(interval time.Duration) (stop func()) {
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				t.Sweep(time.Now())
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// ranked returns name's live replicas sorted best-first (score, then
// instance for determinism). Caller holds t.mu.
func (t *Table) ranked(name string, now time.Time) []*replica {
	reps := t.names[name]
	if len(reps) == 0 {
		return nil
	}
	out := make([]*replica, 0, len(reps))
	for _, rep := range reps {
		if now.Before(rep.deadline) {
			out = append(out, rep)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].load.Score(), out[j].load.Score()
		if si != sj {
			return si < sj
		}
		return out[i].instance < out[j].instance
	})
	return out
}

// Resolve answers a client's lookup with a load-ranked reference and
// the number of live replicas behind it.
//
// Conventional (single-thread) replicas merge into one multi-profile
// reference: the endpoints of every live replica, best-ranked first,
// exactly the replica profile list InvokeRef's failover chain walks.
// SPMD replicas pin each computing thread to its own port, so their
// profiles are not interchangeable — Resolve returns the best-ranked
// replica's full reference and failover happens by re-resolving.
func (t *Table) Resolve(name string) (*ior.Ref, int, error) {
	now := t.now()
	t.mu.Lock()
	reps := t.ranked(name, now)
	if len(reps) == 0 {
		t.mu.Unlock()
		resolveMiss.Inc()
		return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	best := reps[0]
	merged := *best.ref
	if !best.ref.IsSPMD() {
		seen := make(map[string]bool, len(reps))
		eps := make([]string, 0, len(reps))
		for _, rep := range reps {
			if rep.ref.IsSPMD() {
				continue // a mixed row merges only conventional profiles
			}
			for _, ep := range rep.ref.Endpoints {
				if !seen[ep] {
					seen[ep] = true
					eps = append(eps, ep)
				}
			}
		}
		merged.Endpoints = eps
	}
	n := len(reps)
	t.mu.Unlock()
	resolveHit.Inc()
	return &merged, n, nil
}

// List returns a snapshot of the table's rows with the given name
// prefix: name → replicas, best-ranked first.
func (t *Table) List(prefix string) map[string][]ReplicaInfo {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string][]ReplicaInfo)
	for name := range t.names {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		reps := t.ranked(name, now)
		infos := make([]ReplicaInfo, 0, len(reps))
		for _, rep := range reps {
			infos = append(infos, ReplicaInfo{
				Instance:  rep.instance,
				Ref:       rep.ref,
				Score:     rep.load.Score(),
				Draining:  rep.load.Draining,
				SinceSeen: now.Sub(rep.lastSeen),
			})
		}
		if len(infos) > 0 {
			out[name] = infos
		}
	}
	return out
}

// Size reports the table's row and replica counts.
func (t *Table) Size() (names, replicas int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, reps := range t.names {
		replicas += len(reps)
	}
	return len(t.names), replicas
}

// SyncEntry is one live replica row in a peer-sync snapshot. Renewal
// time travels as an age relative to the sender's clock at snapshot
// time, so merging is immune to wall-clock skew between agents. (Raw
// transit delay would make an arriving row look *newer* — the age is
// frozen at encode time — so Client.Sync pads reply ages by the RPC's
// elapsed time, erring old, never new.)
type SyncEntry struct {
	Name     string
	Instance string
	Ref      *ior.Ref
	Load     LoadReport
	// Age is how long before the snapshot the row was last renewed.
	Age time.Duration
	// TTL is the row's registration time-to-live from that renewal.
	TTL time.Duration
}

// SyncTombstone is one deregistration marker in a peer-sync snapshot.
type SyncTombstone struct {
	Instance string
	Age      time.Duration
	TTL      time.Duration
}

// SyncSnapshot is the peer-sync exchange unit: every live row plus
// the current tombstones. Metrics digests deliberately stay out — the
// fleet observability plane is fed by the direct heartbeat fan-out,
// not by peer sync, which only has to keep *resolution* converged.
type SyncSnapshot struct {
	Entries []SyncEntry
	Tombs   []SyncTombstone
}

// Snapshot captures the table's live rows and tombstones for a peer
// exchange. Expired-but-unswept rows are excluded so a zombie never
// travels.
func (t *Table) Snapshot() SyncSnapshot {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var s SyncSnapshot
	for name, reps := range t.names {
		for _, rep := range reps {
			if !now.Before(rep.deadline) {
				continue
			}
			s.Entries = append(s.Entries, SyncEntry{
				Name:     name,
				Instance: rep.instance,
				Ref:      rep.ref,
				Load:     rep.load,
				Age:      now.Sub(rep.lastSeen),
				TTL:      rep.deadline.Sub(rep.lastSeen),
			})
		}
	}
	for instance, tb := range t.tombs {
		s.Tombs = append(s.Tombs, SyncTombstone{
			Instance: instance,
			Age:      now.Sub(tb.at),
			TTL:      tb.ttl,
		})
	}
	return s
}

// Merge folds a peer's snapshot into the table, newest renewal wins:
//
//   - a row is adopted only if it is strictly newer than the local
//     row for the same (name, instance), and — when there is no local
//     row — strictly newer than the newest renewal this table has
//     seen from the instance at all (a heartbeat names the instance's
//     *whole* object set, so an older peer row for a missing name is
//     a name the instance has since dropped, not news);
//   - a tombstone removes every local row of its instance not renewed
//     after it, and is itself vetoed by newer direct knowledge (the
//     instance re-registered after the drain the peer saw).
//
// Merge never extends a deadline beyond what some heartbeat actually
// paid for, so a partitioned pair cannot keep each other's dead rows
// alive by bouncing snapshots back and forth. Returns the number of
// rows adopted (inserted or renewed) and removed by tombstones.
func (t *Table) Merge(s SyncSnapshot) (adopted, removed int) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ts := range s.Tombs {
		at := now.Add(-ts.Age)
		if t.seen[ts.Instance].After(at) {
			continue
		}
		if old, ok := t.tombs[ts.Instance]; !ok || at.After(old.at) {
			ttl := ts.TTL
			if ttl < MinTombstoneTTL {
				ttl = MinTombstoneTTL
			}
			t.tombs[ts.Instance] = tombstone{at: at, ttl: ttl}
		}
		for name, reps := range t.names {
			if rep, ok := reps[ts.Instance]; ok && !rep.lastSeen.After(at) {
				t.removeLocked(name, ts.Instance)
				removed++
			}
		}
	}
	for _, e := range s.Entries {
		if e.Name == "" || e.Instance == "" || e.Ref == nil || e.Ref.Validate() != nil {
			continue // a malformed peer row is dropped, never adopted
		}
		ls := now.Add(-e.Age)
		if tb, ok := t.tombs[e.Instance]; ok && !ls.After(tb.at) {
			continue
		}
		reps := t.names[e.Name]
		old := reps[e.Instance]
		if old != nil {
			if !ls.After(old.lastSeen) {
				continue
			}
		} else if !ls.After(t.seen[e.Instance]) {
			continue
		}
		ttl := e.TTL
		if ttl < MinTTL {
			ttl = MinTTL
		}
		if !now.Before(ls.Add(ttl)) {
			continue // aged past its own TTL in flight
		}
		if reps == nil {
			reps = make(map[string]*replica)
			t.names[e.Name] = reps
			tableNames.Inc()
		}
		rep := &replica{
			instance: e.Instance,
			ref:      e.Ref,
			load:     e.Load,
			lastSeen: ls,
			deadline: ls.Add(ttl),
		}
		if old != nil {
			// Keep the digest chain the direct heartbeats built; peer
			// rows carry no digests.
			rep.digest, rep.digestAt = old.digest, old.digestAt
			rep.prev, rep.prevAt = old.prev, old.prevAt
		} else {
			tableReplicas.Inc()
		}
		reps[e.Instance] = rep
		if ls.After(t.seen[e.Instance]) {
			t.seen[e.Instance] = ls
		}
		adopted++
	}
	return adopted, removed
}
