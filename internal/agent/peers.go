package agent

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"pardis/internal/telemetry"
)

var (
	peerSyncsOK    = telemetry.Default.Counter("pardis_agent_peer_syncs_total", "result", "ok")
	peerSyncErrors = telemetry.Default.Counter("pardis_agent_peer_syncs_total", "result", "error")
	peerAdopted    = telemetry.Default.Counter("pardis_agent_peer_rows_adopted_total")
	peerRemoved    = telemetry.Default.Counter("pardis_agent_peer_rows_tombstoned_total")
	peerGauge      = telemetry.Default.Gauge("pardis_agent_peers")
	peerDivergence = telemetry.Default.Gauge("pardis_agent_peer_divergence")
)

// PeersConfig configures an agent's peer-sync loop.
type PeersConfig struct {
	// Table is the local replica table snapshots are taken from and
	// peer snapshots merged into.
	Table *Table
	// Clients talk to the peer agents.
	Clients []*Client
	// Interval is the exchange cadence — by convention the agent's
	// sweep interval, so a partitioned-and-healed peer converges
	// within one sweep instead of one TTL (default: half the default
	// heartbeat interval, the standard sweep cadence).
	Interval time.Duration
	// RPCTimeout bounds each sync exchange (default: the interval,
	// clamped to [100ms, 2s]).
	RPCTimeout time.Duration
}

// PeerStatus is one peer's liveness as seen from this agent, served
// on /healthz.
type PeerStatus struct {
	Endpoint string `json:"endpoint"`
	// Live is true when the most recent exchange succeeded.
	Live bool `json:"live"`
	// SinceSync is the time since the last successful exchange
	// (negative when none has succeeded yet). JSON carries it in
	// nanoseconds, time.Duration's native unit.
	SinceSync time.Duration `json:"since_sync_ns"`
	// LastErr is the most recent exchange error ("" when none).
	LastErr string `json:"last_err,omitempty"`
	// RemoteRows is the peer's replica-row count at the last
	// successful exchange.
	RemoteRows int `json:"remote_rows"`
	// Divergence is |local rows − remote rows| at the last successful
	// exchange — a coarse convergence signal: two healthy peers fed
	// by the same heartbeat fan-out should sit at zero.
	Divergence int `json:"divergence"`
}

// Peers keeps a replicated agent's table converged with its peers: a
// lightweight snapshot exchange per peer at sweep cadence, plus one
// immediately at Start so a freshly (re)started agent catches up
// within one round instead of one TTL. Exchanges are symmetric — the
// request carries our snapshot, the reply the peer's (taken after it
// merged ours) — so one round converges both sides. Peer failures are
// counted and logged, never fatal: heartbeat fan-out alone keeps each
// reachable agent correct; peer sync only closes asymmetric
// partitions faster.
type Peers struct {
	cfg  PeersConfig
	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	started bool
	stopped bool
	status  []PeerStatus // parallel to cfg.Clients
	lastOK  []time.Time  // last successful exchange per peer
}

// NewPeers returns a peer-sync loop over the given peers; call Start
// to begin exchanging.
func NewPeers(cfg PeersConfig) *Peers {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultHeartbeatInterval / 2
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = cfg.Interval
		if cfg.RPCTimeout < 100*time.Millisecond {
			cfg.RPCTimeout = 100 * time.Millisecond
		}
		if cfg.RPCTimeout > 2*time.Second {
			cfg.RPCTimeout = 2 * time.Second
		}
	}
	p := &Peers{
		cfg:    cfg,
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
		status: make([]PeerStatus, len(cfg.Clients)),
		lastOK: make([]time.Time, len(cfg.Clients)),
	}
	for i, c := range cfg.Clients {
		p.status[i] = PeerStatus{Endpoint: c.Endpoint(), SinceSync: -1}
	}
	return p
}

// Start launches the sync loop (idempotent) with an immediate first
// round.
func (p *Peers) Start() {
	p.mu.Lock()
	if p.started || p.stopped {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.mu.Unlock()
	peerGauge.Add(int64(len(p.cfg.Clients)))
	p.wg.Add(1)
	go p.loop()
}

// Kick nudges the loop to run a round promptly (used by tests and by
// agents that just learned something worth spreading).
func (p *Peers) Kick() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// Stop ends the sync loop. Idempotent.
func (p *Peers) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	started := p.started
	p.mu.Unlock()
	if started {
		close(p.done)
		p.wg.Wait()
		peerGauge.Add(-int64(len(p.cfg.Clients)))
	}
}

func (p *Peers) loop() {
	defer p.wg.Done()
	p.round()
	tick := time.NewTicker(p.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			p.round()
		case <-p.kick:
			p.round()
		case <-p.done:
			return
		}
	}
}

// round exchanges snapshots with every peer concurrently, each
// bounded by RPCTimeout, then refreshes the divergence gauge.
func (p *Peers) round() {
	local := p.cfg.Table.Snapshot()
	var wg sync.WaitGroup
	for i, c := range p.cfg.Clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), p.cfg.RPCTimeout)
			remote, err := c.Sync(ctx, local)
			cancel()
			now := time.Now()
			if err != nil {
				peerSyncErrors.Inc()
				if telemetry.LogEnabled(slog.LevelWarn) {
					telemetry.Logger().Warn("agent peer sync failed",
						"peer", c.Endpoint(), "err", err)
				}
				p.mu.Lock()
				p.status[i].Live = false
				p.status[i].LastErr = err.Error()
				p.mu.Unlock()
				return
			}
			adopted, removed := p.cfg.Table.Merge(remote)
			peerSyncsOK.Inc()
			if adopted > 0 {
				peerAdopted.Add(uint64(adopted))
			}
			if removed > 0 {
				peerRemoved.Add(uint64(removed))
			}
			_, localRows := p.cfg.Table.Size()
			div := localRows - len(remote.Entries)
			if div < 0 {
				div = -div
			}
			p.mu.Lock()
			p.status[i] = PeerStatus{
				Endpoint:   c.Endpoint(),
				Live:       true,
				SinceSync:  0,
				RemoteRows: len(remote.Entries),
				Divergence: div,
			}
			p.lastOK[i] = now
			p.mu.Unlock()
		}(i, c)
	}
	wg.Wait()
	// The divergence gauge holds the worst known row-count delta
	// across peers; a dead peer keeps its last measured value (its
	// liveness is reported separately on /healthz).
	worst := 0
	p.mu.Lock()
	for _, st := range p.status {
		if st.Divergence > worst {
			worst = st.Divergence
		}
	}
	p.mu.Unlock()
	peerDivergence.Set(int64(worst))
}

// Status reports each peer's liveness, last error and divergence, in
// configured order.
func (p *Peers) Status() []PeerStatus {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerStatus, len(p.status))
	copy(out, p.status)
	for i := range out {
		if t := p.lastOK[i]; !t.IsZero() {
			out[i].SinceSync = now.Sub(t)
		} else {
			out[i].SinceSync = -1
		}
	}
	return out
}
