package agent

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"log/slog"
	"sync"
	"time"

	"pardis/internal/ior"
	"pardis/internal/telemetry"
)

var (
	heartbeatErrors = telemetry.Default.Counter("pardis_agent_heartbeat_errors_total")
	heartbeatsSent  = telemetry.Default.Counter("pardis_agent_heartbeats_sent_total")
)

// RegistrarConfig configures a server-side heartbeat loop.
type RegistrarConfig struct {
	// Client talks to the agent service.
	Client *Client
	// Clients extends the fan-out to a replicated control plane:
	// every beat (and the Stop-time deregistration) goes to each
	// configured agent, so every agent independently converges its
	// replica table from the same soft-state stream — no consensus,
	// the heartbeats are the anti-entropy channel. Client, when also
	// set, is folded in; duplicate endpoints collapse.
	Clients []*Client
	// Instance identifies this server process; empty generates a
	// random one.
	Instance string
	// Interval is the heartbeat cadence (default
	// DefaultHeartbeatInterval).
	Interval time.Duration
	// TTL is the registration time-to-live the heartbeats ask for
	// (default TTLFactor x Interval).
	TTL time.Duration
	// Load supplies the live load snapshot piggybacked on each
	// heartbeat (nil reports zeros).
	Load func() LoadReport
	// Digest supplies the metrics digest piggybacked on each heartbeat
	// (nil defaults to CollectDigest, which snapshots the process-wide
	// telemetry registry).
	Digest func() MetricsDigest
	// RPCTimeout bounds each heartbeat invocation (default: the
	// interval, clamped to [100ms, 2s]) so a hung agent cannot stall
	// the loop past its own cadence.
	RPCTimeout time.Duration
}

// Registrar keeps a server's objects registered with the agent: an
// immediate registration at Start, renewal every Interval, and a
// deregistration at Stop so a graceful drain leaves no stale entry.
// The agent is a soft dependency — heartbeat failures are counted and
// logged, never fatal, and the next tick simply tries again (which is
// also how the table repopulates after an agent restart).
type Registrar struct {
	cfg     RegistrarConfig
	clients []*Client // resolved fan-out set (Client + Clients, deduped)
	kick    chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup

	mu      sync.Mutex
	names   map[string]*ior.Ref
	started bool
	stopped bool
}

// NewRegistrar returns a registrar; call Add to give it names and
// Start to begin heartbeating.
func NewRegistrar(cfg RegistrarConfig) *Registrar {
	if cfg.Instance == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			cfg.Instance = "inst-" + hex.EncodeToString(b[:])
		} else {
			cfg.Instance = "inst-" + time.Now().Format("150405.000000000")
		}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultHeartbeatInterval
	}
	if cfg.TTL <= 0 {
		cfg.TTL = TTLFactor * cfg.Interval
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = cfg.Interval
		if cfg.RPCTimeout < 100*time.Millisecond {
			cfg.RPCTimeout = 100 * time.Millisecond
		}
		if cfg.RPCTimeout > 2*time.Second {
			cfg.RPCTimeout = 2 * time.Second
		}
	}
	clients := make([]*Client, 0, len(cfg.Clients)+1)
	seen := make(map[string]bool, len(cfg.Clients)+1)
	if cfg.Client != nil {
		clients = append(clients, cfg.Client)
		seen[cfg.Client.Endpoint()] = true
	}
	for _, c := range cfg.Clients {
		if c == nil || seen[c.Endpoint()] {
			continue
		}
		seen[c.Endpoint()] = true
		clients = append(clients, c)
	}
	return &Registrar{
		cfg:     cfg,
		clients: clients,
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		names:   make(map[string]*ior.Ref),
	}
}

// Instance returns the registrar's instance identity.
func (r *Registrar) Instance() string { return r.cfg.Instance }

// Add registers (or replaces) a name→reference pair and nudges the
// loop to heartbeat promptly, so a freshly exported object is
// resolvable without waiting out an interval.
func (r *Registrar) Add(name string, ref *ior.Ref) {
	r.mu.Lock()
	r.names[name] = ref
	r.mu.Unlock()
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// Remove drops a name; the next heartbeat no longer carries it, which
// deletes the replica at the agent.
func (r *Registrar) Remove(name string) {
	r.mu.Lock()
	delete(r.names, name)
	r.mu.Unlock()
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// Start launches the heartbeat loop (idempotent).
func (r *Registrar) Start() {
	r.mu.Lock()
	if r.started || r.stopped {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	r.wg.Add(1)
	go r.loop()
}

func (r *Registrar) loop() {
	defer r.wg.Done()
	r.beat()
	tick := time.NewTicker(r.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			r.beat()
		case <-r.kick:
			r.beat()
		case <-r.done:
			return
		}
	}
}

// beat sends one registration heartbeat — the current name set, load
// and digest sampled once — to every configured agent concurrently,
// each attempt bounded by RPCTimeout so one hung agent cannot starve
// the others of their renewal or stall the loop past its cadence.
func (r *Registrar) beat() {
	r.mu.Lock()
	names := make([]NameRef, 0, len(r.names))
	for name, ref := range r.names {
		names = append(names, NameRef{Name: name, Ref: ref})
	}
	r.mu.Unlock()
	if len(names) == 0 || len(r.clients) == 0 {
		return
	}
	reg := Registration{
		Instance: r.cfg.Instance,
		TTL:      r.cfg.TTL,
		Names:    names,
	}
	if r.cfg.Load != nil {
		reg.Load = r.cfg.Load()
	}
	if r.cfg.Digest != nil {
		reg.Digest = r.cfg.Digest()
	} else {
		reg.Digest = CollectDigest()
	}
	var wg sync.WaitGroup
	for _, c := range r.clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.RPCTimeout)
			err := c.Register(ctx, reg)
			cancel()
			if err != nil {
				heartbeatErrors.Inc()
				if telemetry.LogEnabled(slog.LevelWarn) {
					telemetry.Logger().Warn("agent heartbeat failed",
						"instance", r.cfg.Instance, "agent", c.Endpoint(), "err", err)
				}
				return
			}
			heartbeatsSent.Inc()
		}(c)
	}
	wg.Wait()
}

// Stop ends the heartbeat loop and deregisters the instance from
// every configured agent, concurrently, so a dying replica does not
// linger in any surviving agent's table for a full TTL. Each attempt
// is best-effort and bounded by both ctx and RPCTimeout: agents that
// cannot be reached expire the entries by TTL anyway (and the
// survivors' tombstones stop peer sync from resurrecting them).
// Returns the joined errors of the failed attempts. Idempotent.
func (r *Registrar) Stop(ctx context.Context) error {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return nil
	}
	r.stopped = true
	started := r.started
	r.mu.Unlock()
	if started {
		close(r.done)
		r.wg.Wait()
	}
	errs := make([]error, len(r.clients))
	var wg sync.WaitGroup
	for i, c := range r.clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			dctx, cancel := context.WithTimeout(ctx, r.cfg.RPCTimeout)
			err := c.Deregister(dctx, r.cfg.Instance)
			cancel()
			if err != nil {
				heartbeatErrors.Inc()
				if telemetry.LogEnabled(slog.LevelWarn) {
					telemetry.Logger().Warn("agent deregister failed",
						"instance", r.cfg.Instance, "agent", c.Endpoint(), "err", err)
				}
				errs[i] = err
			}
		}(i, c)
	}
	wg.Wait()
	return errors.Join(errs...)
}
