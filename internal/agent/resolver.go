package agent

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"pardis/internal/ior"
	"pardis/internal/naming"
	"pardis/internal/telemetry"
)

var (
	resolveFromAgent  = telemetry.Default.Counter("pardis_agent_resolver_total", "source", "agent")
	resolveFromFresh  = telemetry.Default.Counter("pardis_agent_resolver_total", "source", "fresh_cache")
	resolveFromStale  = telemetry.Default.Counter("pardis_agent_resolver_total", "source", "stale_cache")
	resolveFromNaming = telemetry.Default.Counter("pardis_agent_resolver_total", "source", "naming")
	resolverDegraded  = telemetry.Default.Counter("pardis_agent_resolver_degraded_total")
	resolverRotations = telemetry.Default.Counter("pardis_agent_resolver_rotations_total")
)

// DefaultFreshFor is how long a Resolver reuses an agent-ranked
// answer before asking again: long enough that a client burst does
// not turn the agent into a per-invoke hop, short enough that load
// ranking stays live.
const DefaultFreshFor = 500 * time.Millisecond

// DefaultBreakerCooldown is how long a Resolver leaves a failed agent
// untried before probing it again. While an agent's breaker is open
// the resolver rotates straight past it — no dial, no timeout paid —
// so a flapping agent costs one RPCTimeout per cooldown, not one per
// resolution.
const DefaultBreakerCooldown = time.Second

// ResolverConfig configures the client-side resolution ladder.
type ResolverConfig struct {
	// Agent talks to the agent service (nil = static naming only).
	Agent *Client
	// Agents extends the ladder's agent rung to a replicated control
	// plane: on resolve failure the resolver rotates through these,
	// preferring the last agent that answered, skipping agents whose
	// breaker is open. Agent, when also set, is folded in; duplicate
	// endpoints collapse.
	Agents []*Client
	// Naming is the static fallback registry (nil = agent only).
	Naming *naming.Client
	// FreshFor is how long an agent answer is served from cache
	// before the agent is consulted again (default DefaultFreshFor).
	FreshFor time.Duration
	// RPCTimeout bounds each agent resolve so an unreachable agent
	// degrades quickly instead of stalling invocations (default 1s;
	// a tighter caller deadline still wins).
	RPCTimeout time.Duration
	// BreakerCooldown is how long a failed agent is skipped before
	// the resolver probes it again (default DefaultBreakerCooldown).
	BreakerCooldown time.Duration
}

// Resolver resolves object names for clients, degrading gracefully
// when agents are unavailable:
//
//  1. a fresh cached agent answer is reused as-is;
//  2. otherwise any live agent is asked for a load-ranked reference —
//     the last-known-good agent first, then the rest in configured
//     order, skipping agents inside their breaker cooldown;
//  3. if every agent is unreachable, the last cached answer — however
//     stale — keeps the client going;
//  4. with no cache either, the static naming registry resolves the
//     name (filtered through the ORB's breaker table when the naming
//     client supports it);
//  5. and if naming fails too, a stale cache entry is still the last
//     resort before an error.
//
// No agent is ever a hard dependency: every rung of the ladder yields
// endpoints the InvokeRef failover chain can still walk. Resolver
// implements orb.RefSource, so orb.Client.InvokeNamed can invalidate
// and re-resolve mid-burst when ranked replicas die.
type Resolver struct {
	cfg    ResolverConfig
	agents []*Client

	mu       sync.Mutex
	cache    map[string]cachedRef
	breakers []resolverBreaker // parallel to agents
	lastGood int               // index of the last agent that answered
}

type cachedRef struct {
	ref    *ior.Ref
	stored time.Time
}

// resolverBreaker is the per-agent circuit state: one failure opens
// it for BreakerCooldown, one success closes it. There is no
// half-open subtlety — the ladder below absorbs a failed probe — so
// the only job here is bounding how often a dead agent is re-dialed.
type resolverBreaker struct {
	openUntil time.Time
}

// NewResolver builds a resolver over the given ladder.
func NewResolver(cfg ResolverConfig) *Resolver {
	if cfg.FreshFor <= 0 {
		cfg.FreshFor = DefaultFreshFor
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = time.Second
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	agents := make([]*Client, 0, len(cfg.Agents)+1)
	seen := make(map[string]bool, len(cfg.Agents)+1)
	if cfg.Agent != nil {
		agents = append(agents, cfg.Agent)
		seen[cfg.Agent.Endpoint()] = true
	}
	for _, c := range cfg.Agents {
		if c == nil || seen[c.Endpoint()] {
			continue
		}
		seen[c.Endpoint()] = true
		agents = append(agents, c)
	}
	return &Resolver{
		cfg:      cfg,
		agents:   agents,
		cache:    make(map[string]cachedRef),
		breakers: make([]resolverBreaker, len(agents)),
	}
}

// agentOrder returns the indices of agents worth trying now —
// last-known-good first, then configured order — excluding agents
// whose breaker is still inside its cooldown.
func (r *Resolver) agentOrder(now time.Time) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	order := make([]int, 0, len(r.agents))
	appendLive := func(i int) {
		if now.Before(r.breakers[i].openUntil) {
			return
		}
		order = append(order, i)
	}
	if r.lastGood >= 0 && r.lastGood < len(r.agents) {
		appendLive(r.lastGood)
	}
	for i := range r.agents {
		if i == r.lastGood {
			continue
		}
		appendLive(i)
	}
	return order
}

func (r *Resolver) recordAgent(i int, ok bool, now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ok {
		r.breakers[i].openUntil = time.Time{}
		r.lastGood = i
		return
	}
	r.breakers[i].openUntil = now.Add(r.cfg.BreakerCooldown)
}

// AgentHealth reports each configured agent's endpoint and whether
// its breaker currently holds it out of the rotation.
func (r *Resolver) AgentHealth() map[string]bool {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]bool, len(r.agents))
	for i, c := range r.agents {
		out[c.Endpoint()] = !now.Before(r.breakers[i].openUntil)
	}
	return out
}

// RefFor resolves name down the ladder. It implements orb.RefSource.
func (r *Resolver) RefFor(ctx context.Context, name string) (*ior.Ref, error) {
	now := time.Now()
	r.mu.Lock()
	ent, cached := r.cache[name]
	r.mu.Unlock()
	if cached && now.Sub(ent.stored) < r.cfg.FreshFor {
		resolveFromFresh.Inc()
		return ent.ref, nil
	}

	// The agent rung: rotate through the live agents, last-known-good
	// first. One reachable agent with the row ends the walk; agents
	// answering NotFound prove the control plane is up but rowless
	// (freshly restarted, still converging), which makes the static
	// registry the better fallback than a stale cache — it reflects
	// explicit unbinds.
	sawError := false
	sawNotFound := false
	order := r.agentOrder(now)
	// Every agent inside its cooldown means the rung is skipped with
	// no new evidence: stale cache keeps the client going without
	// re-dialing a breaker-open agent.
	allOpen := len(order) == 0 && len(r.agents) > 0
	for rank, i := range order {
		if rank > 0 {
			resolverRotations.Inc()
		}
		actx, cancel := context.WithTimeout(ctx, r.cfg.RPCTimeout)
		ref, _, err := r.agents[i].Resolve(actx, name)
		cancel()
		switch {
		case err == nil:
			r.recordAgent(i, true, now)
			r.store(name, ref)
			resolveFromAgent.Inc()
			return ref, nil
		case errors.Is(err, ErrNotFound):
			r.recordAgent(i, true, now) // the agent answered; it is live
			sawNotFound = true
		case ctx.Err() != nil:
			return nil, fmt.Errorf("agent: resolving %q: %w", name, ctx.Err())
		default:
			r.recordAgent(i, false, time.Now())
			sawError = true
			if telemetry.LogEnabled(slog.LevelWarn) {
				telemetry.Logger().Warn("agent unreachable; rotating",
					"name", name, "agent", r.agents[i].Endpoint(), "err", err)
			}
		}
	}
	// Degradation is counted once per resolution that actually lost an
	// agent — not per skipped breaker-open agent — so a flapping agent
	// cannot thrash the counter while the cache absorbs the flap.
	if sawError {
		resolverDegraded.Inc()
	}
	if (sawError || allOpen) && !sawNotFound && cached {
		// Agents unreachable (none proved the row gone): a stale
		// cached ranking still names real replicas; invocation-level
		// failover sorts out any that died since.
		resolveFromStale.Inc()
		return ent.ref, nil
	}

	if r.cfg.Naming != nil {
		ref, err := r.cfg.Naming.ResolveLive(ctx, name)
		if err == nil {
			r.store(name, ref)
			resolveFromNaming.Inc()
			return ref, nil
		}
		if !cached {
			return nil, err
		}
	}
	if cached {
		resolveFromStale.Inc()
		return ent.ref, nil
	}
	return nil, fmt.Errorf("%w: %q (no agent answer and no naming fallback)", ErrNotFound, name)
}

// Invalidate drops name's cached resolution so the next RefFor asks
// the ladder afresh. It implements orb.RefSource; the ORB calls it
// when every endpoint of a resolution failed.
func (r *Resolver) Invalidate(name string) {
	r.mu.Lock()
	delete(r.cache, name)
	r.mu.Unlock()
}

func (r *Resolver) store(name string, ref *ior.Ref) {
	r.mu.Lock()
	r.cache[name] = cachedRef{ref: ref, stored: time.Now()}
	r.mu.Unlock()
}
