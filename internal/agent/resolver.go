package agent

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"pardis/internal/ior"
	"pardis/internal/naming"
	"pardis/internal/telemetry"
)

var (
	resolveFromAgent  = telemetry.Default.Counter("pardis_agent_resolver_total", "source", "agent")
	resolveFromFresh  = telemetry.Default.Counter("pardis_agent_resolver_total", "source", "fresh_cache")
	resolveFromStale  = telemetry.Default.Counter("pardis_agent_resolver_total", "source", "stale_cache")
	resolveFromNaming = telemetry.Default.Counter("pardis_agent_resolver_total", "source", "naming")
	resolverDegraded  = telemetry.Default.Counter("pardis_agent_resolver_degraded_total")
)

// DefaultFreshFor is how long a Resolver reuses an agent-ranked
// answer before asking again: long enough that a client burst does
// not turn the agent into a per-invoke hop, short enough that load
// ranking stays live.
const DefaultFreshFor = 500 * time.Millisecond

// ResolverConfig configures the client-side resolution ladder.
type ResolverConfig struct {
	// Agent talks to the agent service (nil = static naming only).
	Agent *Client
	// Naming is the static fallback registry (nil = agent only).
	Naming *naming.Client
	// FreshFor is how long an agent answer is served from cache
	// before the agent is consulted again (default DefaultFreshFor).
	FreshFor time.Duration
	// RPCTimeout bounds each agent resolve so an unreachable agent
	// degrades quickly instead of stalling invocations (default 1s;
	// a tighter caller deadline still wins).
	RPCTimeout time.Duration
}

// Resolver resolves object names for clients, degrading gracefully
// when the agent is unavailable:
//
//  1. a fresh cached agent answer is reused as-is;
//  2. otherwise the agent is asked for a load-ranked reference;
//  3. if the agent is unreachable, the last cached answer — however
//     stale — keeps the client going;
//  4. and with no cache either, the static naming registry resolves
//     the name (filtered through the ORB's breaker table when the
//     naming client supports it).
//
// The agent is never a hard dependency: every rung of the ladder
// yields endpoints the InvokeRef failover chain can still walk.
// Resolver implements orb.RefSource, so orb.Client.InvokeNamed can
// invalidate and re-resolve mid-burst when ranked replicas die.
type Resolver struct {
	cfg ResolverConfig

	mu    sync.Mutex
	cache map[string]cachedRef
}

type cachedRef struct {
	ref    *ior.Ref
	stored time.Time
}

// NewResolver builds a resolver over the given ladder.
func NewResolver(cfg ResolverConfig) *Resolver {
	if cfg.FreshFor <= 0 {
		cfg.FreshFor = DefaultFreshFor
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = time.Second
	}
	return &Resolver{cfg: cfg, cache: make(map[string]cachedRef)}
}

// RefFor resolves name down the ladder. It implements orb.RefSource.
func (r *Resolver) RefFor(ctx context.Context, name string) (*ior.Ref, error) {
	now := time.Now()
	r.mu.Lock()
	ent, cached := r.cache[name]
	r.mu.Unlock()
	if cached && now.Sub(ent.stored) < r.cfg.FreshFor {
		resolveFromFresh.Inc()
		return ent.ref, nil
	}

	if r.cfg.Agent != nil {
		actx, cancel := context.WithTimeout(ctx, r.cfg.RPCTimeout)
		ref, _, err := r.cfg.Agent.Resolve(actx, name)
		cancel()
		switch {
		case err == nil:
			r.store(name, ref)
			resolveFromAgent.Inc()
			return ref, nil
		case errors.Is(err, ErrNotFound):
			// The agent is up but has no row — possibly freshly
			// restarted and still rebuilding from heartbeats. The
			// static registry is the better answer than a stale cache:
			// it reflects explicit unbinds.
		case ctx.Err() != nil:
			return nil, fmt.Errorf("agent: resolving %q: %w", name, ctx.Err())
		default:
			// Agent unreachable or erroring: degrade. A stale cached
			// ranking still names real replicas; invocation-level
			// failover sorts out any that died since.
			resolverDegraded.Inc()
			if telemetry.LogEnabled(slog.LevelWarn) {
				telemetry.Logger().Warn("agent unreachable; degrading resolution",
					"name", name, "err", err)
			}
			if cached {
				resolveFromStale.Inc()
				return ent.ref, nil
			}
		}
	}

	if r.cfg.Naming != nil {
		ref, err := r.cfg.Naming.ResolveLive(ctx, name)
		if err != nil {
			return nil, err
		}
		r.store(name, ref)
		resolveFromNaming.Inc()
		return ref, nil
	}
	if cached {
		resolveFromStale.Inc()
		return ent.ref, nil
	}
	return nil, fmt.Errorf("%w: %q (no agent answer and no naming fallback)", ErrNotFound, name)
}

// Invalidate drops name's cached resolution so the next RefFor asks
// the ladder afresh. It implements orb.RefSource; the ORB calls it
// when every endpoint of a resolution failed.
func (r *Resolver) Invalidate(name string) {
	r.mu.Lock()
	delete(r.cache, name)
	r.mu.Unlock()
}

func (r *Resolver) store(name string, ref *ior.Ref) {
	r.mu.Lock()
	r.cache[name] = cachedRef{ref: ref, stored: time.Now()}
	r.mu.Unlock()
}
